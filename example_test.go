package streamapprox_test

import (
	"fmt"
	"time"

	"streamapprox"
)

// exampleStream builds a small deterministic two-stratum stream.
func exampleStream() []streamapprox.Event {
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var events []streamapprox.Event
	for i := 0; i < 20000; i++ {
		t := base.Add(time.Duration(i) * time.Millisecond)
		events = append(events,
			streamapprox.Event{Stratum: "small", Value: 1, Time: t},
			streamapprox.Event{Stratum: "large", Value: 1000, Time: t},
		)
	}
	return events
}

// ExampleRun executes an approximate windowed SUM at a 25% sampling
// fraction. Values in both strata are constant, so the estimates are
// exact and the error bounds are zero.
func ExampleRun() {
	report, err := streamapprox.Run(streamapprox.Config{
		Sampler:  streamapprox.OASRS,
		Fraction: 0.25,
		Query:    streamapprox.Sum,
		Seed:     1,
	}, exampleStream())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := report.Results[1] // a full interior window
	fmt.Printf("window [%s, %s)\n", r.Start.Format("15:04:05"), r.End.Format("15:04:05"))
	fmt.Printf("estimate %.0f ± %.0f from %d of %d items\n",
		r.Overall.Value, r.Overall.Bound, r.Sampled, r.Items)
	// Output:
	// window [00:00:00, 00:00:10)
	// estimate 10010000 ± 0 from 4960 of 20000 items
}

// ExampleSession processes the same stream incrementally and polls
// completed windows as they fire.
func ExampleSession() {
	session := streamapprox.NewSession(streamapprox.SessionConfig{
		Query:    streamapprox.GroupByCount,
		Fraction: 0.5,
		Seed:     1,
	})
	for _, e := range exampleStream() {
		if err := session.Push(e); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	results := session.Close()
	r := results[1]
	fmt.Printf("window [%s, %s): small=%.0f large=%.0f\n",
		r.Start.Format("15:04:05"), r.End.Format("15:04:05"),
		r.Groups["small"].Value, r.Groups["large"].Value)
	// Output:
	// window [00:00:00, 00:00:10): small=10000 large=10000
}
