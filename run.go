package streamapprox

import (
	"fmt"
	"time"

	"streamapprox/internal/core"
)

// Config configures a Run.
type Config struct {
	// Engine selects batched or pipelined execution (default Batched).
	Engine Engine
	// Sampler selects the sampling strategy (default OASRS).
	Sampler Sampler
	// Fraction is the sampling fraction in (0, 1]; ignored when Sampler
	// is None (default 0.6, the paper's standard operating point).
	Fraction float64
	// Query is the per-window aggregate (default Sum).
	Query Query
	// Workers is the engine parallelism (default 4).
	Workers int
	// BatchInterval is the micro-batch interval for the batched engine
	// (default 500ms).
	BatchInterval time.Duration
	// WindowSize and WindowSlide configure the sliding window (defaults
	// 10s / 5s).
	WindowSize  time.Duration
	WindowSlide time.Duration
	// Confidence is the error-bound level (default Confidence95).
	Confidence Confidence
	// HistogramEdges defines the bucket edges for the Histogram query
	// (ignored otherwise).
	HistogramEdges []float64
	// Seed makes runs reproducible (default 1).
	Seed uint64
}

// Report is the outcome of a Run.
type Report struct {
	// Results holds one entry per completed window, in window order.
	Results []WindowResult
	// Items is the total number of items ingested.
	Items int64
	// Sampled is the total number of items that reached the query.
	Sampled int64
	// Elapsed is the wall-clock processing time for the whole stream.
	Elapsed time.Duration
	// Throughput is Items per second of Elapsed.
	Throughput float64
}

// system maps the public (Engine, Sampler) pair onto one of the six
// evaluated systems.
func (c Config) system() (core.System, error) {
	engine := c.Engine
	if engine == 0 {
		engine = Batched
	}
	sampler := c.Sampler
	if sampler == 0 {
		sampler = OASRS
	}
	switch engine {
	case Batched:
		switch sampler {
		case OASRS:
			return core.SparkApprox, nil
		case SimpleRandom:
			return core.SparkSRS, nil
		case Stratified:
			return core.SparkSTS, nil
		case None:
			return core.NativeSpark, nil
		}
	case Pipelined:
		switch sampler {
		case OASRS:
			return core.FlinkApprox, nil
		case None:
			return core.NativeFlink, nil
		case SimpleRandom, Stratified:
			return 0, fmt.Errorf("streamapprox: sampler %d is only available on the batched engine", sampler)
		}
	}
	return 0, fmt.Errorf("streamapprox: invalid engine/sampler combination (%d, %d)", engine, sampler)
}

func (c Config) coreConfig() (core.Config, error) {
	sys, err := c.system()
	if err != nil {
		return core.Config{}, err
	}
	fraction := c.Fraction
	if fraction == 0 {
		fraction = 0.6
	}
	conf := c.Confidence.internal()
	q := c.Query
	if q == 0 {
		q = Sum
	}
	return core.Config{
		System:        sys,
		Fraction:      fraction,
		Workers:       c.Workers,
		BatchInterval: c.BatchInterval,
		WindowSize:    c.WindowSize,
		WindowSlide:   c.WindowSlide,
		Query:         q.internal(conf, c.HistogramEdges),
		Confidence:    conf,
		Seed:          c.Seed,
	}, nil
}

// Run executes the configured query over a time-ordered event stream at
// full speed and returns the per-window approximate results with error
// bounds.
func Run(cfg Config, events []Event) (*Report, error) {
	ccfg, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	stats, err := core.Run(ccfg, toInternal(events))
	if err != nil {
		return nil, err
	}
	return &Report{
		Results:    convertResults(stats.Results),
		Items:      stats.Items,
		Sampled:    stats.Sampled,
		Elapsed:    stats.Elapsed,
		Throughput: stats.Throughput,
	}, nil
}

// Exact computes the ground-truth per-window results without sampling,
// for accuracy evaluation against a Run.
func Exact(cfg Config, events []Event) ([]WindowResult, error) {
	cfg.Sampler = None
	cfg.Engine = Batched
	ccfg, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	return convertResults(core.GroundTruth(ccfg, toInternal(events))), nil
}

func convertResults(in []core.WindowResult) []WindowResult {
	out := make([]WindowResult, len(in))
	for i, r := range in {
		out[i] = WindowResult{
			Start:   r.Window.Start,
			End:     r.Window.End,
			Overall: fromInternalEstimate(r.Result.Overall),
			Items:   r.Items,
			Sampled: r.Sampled,
		}
		if len(r.Result.Groups) > 0 {
			out[i].Groups = make(map[string]Estimate, len(r.Result.Groups))
			for k, v := range r.Result.Groups {
				out[i].Groups[k] = fromInternalEstimate(v)
			}
		}
		for _, b := range r.Result.Buckets {
			out[i].Buckets = append(out[i].Buckets, HistogramBucket{
				Lo: b.Lo, Hi: b.Hi, Count: fromInternalEstimate(b.Count),
			})
		}
	}
	return out
}
