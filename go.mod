module streamapprox

go 1.24
