// Package streamapprox's benchmark suite regenerates every figure of the
// paper's evaluation (one benchmark per figure/panel; see DESIGN.md's
// experiment index) plus the ablations. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the figure's full parameter sweep at a reduced
// dataset scale (BENCH_SCALE, default 0.1); `go run ./cmd/saprox run
// <id> -scale 1` reproduces the full-size sweep and prints the rows.
// Benchmarks report items/s over the whole sweep so regressions in any
// system on the figure are visible.
package streamapprox

import (
	"os"
	"strconv"
	"testing"

	"streamapprox/internal/experiment"
)

// benchScale reads the dataset scale for benchmarks from BENCH_SCALE.
func benchScale() float64 {
	if s := os.Getenv("BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// benchFigure runs one figure sweep per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	fn, ok := experiment.All()[id]
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	opts := experiment.Options{Scale: benchScale(), Seed: 42, Workers: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := fn(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Microbenchmarks (§5).

func BenchmarkFig4aThroughputVsFraction(b *testing.B)            { benchFigure(b, "fig4a") }
func BenchmarkFig4bAccuracyVsFraction(b *testing.B)              { benchFigure(b, "fig4b") }
func BenchmarkFig4cThroughputVsBatchInterval(b *testing.B)       { benchFigure(b, "fig4c") }
func BenchmarkFig5aAccuracyVsArrivalRates(b *testing.B)          { benchFigure(b, "fig5a") }
func BenchmarkFig5bcThroughputAccuracyVsWindowSize(b *testing.B) { benchFigure(b, "fig5bc") }
func BenchmarkFig6aScalability(b *testing.B)                     { benchFigure(b, "fig6a") }
func BenchmarkFig6bThroughputVsAccuracyLoss(b *testing.B)        { benchFigure(b, "fig6b") }
func BenchmarkFig6cPoissonSkewAccuracy(b *testing.B)             { benchFigure(b, "fig6c") }
func BenchmarkFig7MeanTimeSeries(b *testing.B)                   { benchFigure(b, "fig7") }

// Case studies (§6).

func BenchmarkFig8aNetflowThroughput(b *testing.B)       { benchFigure(b, "fig8a") }
func BenchmarkFig8bNetflowAccuracy(b *testing.B)         { benchFigure(b, "fig8b") }
func BenchmarkFig8cNetflowThroughputAtLoss(b *testing.B) { benchFigure(b, "fig8c") }
func BenchmarkFig9aTaxiThroughput(b *testing.B)          { benchFigure(b, "fig9a") }
func BenchmarkFig9bTaxiAccuracy(b *testing.B)            { benchFigure(b, "fig9b") }
func BenchmarkFig9cTaxiThroughputAtLoss(b *testing.B)    { benchFigure(b, "fig9c") }
func BenchmarkFig10Latency(b *testing.B)                 { benchFigure(b, "fig10") }

// Ablations (DESIGN.md).

func BenchmarkAblationSTSBarrier(b *testing.B)       { benchFigure(b, "abl-sync") }
func BenchmarkAblationWeighting(b *testing.B)        { benchFigure(b, "abl-weights") }
func BenchmarkAblationDistributedOASRS(b *testing.B) { benchFigure(b, "abl-dist") }
func BenchmarkAblationReservoirSkip(b *testing.B)    { benchFigure(b, "abl-skip") }

// End-to-end public API benchmarks.

func BenchmarkRunOASRSBatched(b *testing.B)   { benchRun(b, Batched, OASRS) }
func BenchmarkRunOASRSPipelined(b *testing.B) { benchRun(b, Pipelined, OASRS) }
func BenchmarkRunNativeBatched(b *testing.B)  { benchRun(b, Batched, None) }

func benchRun(b *testing.B, engine Engine, sampler Sampler) {
	b.Helper()
	events := benchEvents(b)
	cfg := Config{Engine: engine, Sampler: sampler, Fraction: 0.6, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var items int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(cfg, events)
		if err != nil {
			b.Fatal(err)
		}
		items += rep.Items
	}
	b.StopTimer()
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(items)/elapsed, "items/s")
	}
}

func benchEvents(b *testing.B) []Event {
	b.Helper()
	return testEvents(b, 10)
}

func BenchmarkSessionPush(b *testing.B) {
	s := NewSession(SessionConfig{Fraction: 0.4, Seed: 1})
	events := benchEvents(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Push(events[i%len(events)])
	}
}
