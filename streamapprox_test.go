package streamapprox

import (
	"errors"
	"math"
	"testing"
	"time"

	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

// testEvents builds a three-stratum Gaussian stream.
func testEvents(tb testing.TB, seconds int) []Event {
	tb.Helper()
	rng := xrand.New(42)
	internal := workload.Generate(rng, time.Duration(seconds)*time.Second,
		workload.PaperGaussian(2000, 2000, 2000)...)
	out := make([]Event, len(internal))
	for i, e := range internal {
		out[i] = Event(e)
	}
	return out
}

func TestRunDefaults(t *testing.T) {
	events := testEvents(t, 12)
	rep, err := Run(Config{}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items != int64(len(events)) {
		t.Errorf("Items = %d", rep.Items)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	if rep.Throughput <= 0 || rep.Elapsed <= 0 {
		t.Error("metrics not populated")
	}
	for _, r := range rep.Results {
		if r.Overall.Value <= 0 {
			t.Errorf("window [%v,%v) value %v", r.Start, r.End, r.Overall.Value)
		}
	}
}

func TestRunAgainstExact(t *testing.T) {
	events := testEvents(t, 12)
	cfg := Config{Fraction: 0.6, Seed: 9}
	rep, err := Run(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(exact) {
		t.Fatalf("windows %d vs %d", len(rep.Results), len(exact))
	}
	for i := range rep.Results {
		got, want := rep.Results[i].Overall.Value, exact[i].Overall.Value
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("window %d: %v vs exact %v", i, got, want)
		}
	}
}

func TestRunEngineSamplerMatrix(t *testing.T) {
	events := testEvents(t, 8)
	cases := []struct {
		engine  Engine
		sampler Sampler
		wantErr bool
	}{
		{Batched, OASRS, false},
		{Batched, SimpleRandom, false},
		{Batched, Stratified, false},
		{Batched, None, false},
		{Pipelined, OASRS, false},
		{Pipelined, None, false},
		{Pipelined, SimpleRandom, true},
		{Pipelined, Stratified, true},
	}
	for _, tc := range cases {
		_, err := Run(Config{Engine: tc.engine, Sampler: tc.sampler, Fraction: 0.5, Seed: 2}, events)
		if tc.wantErr && err == nil {
			t.Errorf("engine=%d sampler=%d: expected error", tc.engine, tc.sampler)
		}
		if !tc.wantErr && err != nil {
			t.Errorf("engine=%d sampler=%d: %v", tc.engine, tc.sampler, err)
		}
	}
}

func TestGroupByQueries(t *testing.T) {
	events := testEvents(t, 12)
	rep, err := Run(Config{Query: GroupByMean, Fraction: 0.6, Seed: 3}, events)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if len(r.Groups) != 3 {
			t.Fatalf("window has %d groups, want 3 (A, B, C): %v", len(r.Groups), r.Groups)
		}
		// Stratum means must be ordered A < B < C by construction.
		if !(r.Groups["A"].Value < r.Groups["B"].Value && r.Groups["B"].Value < r.Groups["C"].Value) {
			t.Errorf("group means out of order: %v", r.Groups)
		}
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{Value: 100, Bound: 10, Confidence: Confidence95}
	lo, hi := e.Interval()
	if lo != 90 || hi != 110 {
		t.Errorf("Interval = [%v, %v]", lo, hi)
	}
	if e.RelativeError() != 0.1 {
		t.Errorf("RelativeError = %v", e.RelativeError())
	}
	if (Estimate{}).RelativeError() != 0 {
		t.Error("zero estimate relative error")
	}
	neg := Estimate{Value: -100, Bound: 10}
	if neg.RelativeError() != 0.1 {
		t.Errorf("negative-value relative error = %v", neg.RelativeError())
	}
}

func TestSessionBasic(t *testing.T) {
	s := NewSession(SessionConfig{Fraction: 0.5, Seed: 4})
	events := testEvents(t, 20)
	for _, e := range events {
		if err := s.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	mid := s.Poll()
	rest := s.Close()
	total := len(mid) + len(rest)
	if total < 3 {
		t.Fatalf("session produced %d windows", total)
	}
	for _, r := range append(mid, rest...) {
		if r.Items <= 0 || r.Sampled <= 0 {
			t.Errorf("window %v: items=%d sampled=%d", r.Start, r.Items, r.Sampled)
		}
		if r.Sampled > int(r.Items) {
			t.Errorf("sampled %d > items %d", r.Sampled, r.Items)
		}
	}
}

func TestSessionAccuracy(t *testing.T) {
	events := testEvents(t, 20)
	s := NewSession(SessionConfig{Fraction: 0.6, Seed: 5})
	for _, e := range events {
		_ = s.Push(e)
	}
	results := s.Close()
	exact, err := Exact(Config{}, events)
	if err != nil {
		t.Fatal(err)
	}
	exactByStart := map[time.Time]float64{}
	for _, r := range exact {
		exactByStart[r.Start] = r.Overall.Value
	}
	checked := 0
	for _, r := range results {
		want, ok := exactByStart[r.Start]
		if !ok {
			continue
		}
		checked++
		if math.Abs(r.Overall.Value-want)/want > 0.08 {
			t.Errorf("window %v: %v vs exact %v", r.Start, r.Overall.Value, want)
		}
	}
	if checked == 0 {
		t.Fatal("no windows compared")
	}
}

func TestSessionClosed(t *testing.T) {
	s := NewSession(SessionConfig{})
	_ = s.Close()
	if err := s.Push(Event{Time: time.Now()}); !errors.Is(err, ErrClosedSession) {
		t.Errorf("push after close: %v", err)
	}
	if got := s.Close(); got != nil {
		t.Error("second close returned results")
	}
}

func TestSessionSetFractionAndDisableAdaptive(t *testing.T) {
	s := NewSession(SessionConfig{TargetError: 0.01, Fraction: 0.5})
	s.SetFraction(0.3)
	if got := s.Fraction(); got != 0.3 {
		t.Errorf("Fraction after SetFraction = %v, want 0.3", got)
	}
	s.SetFraction(0)   // out of range: ignored
	s.SetFraction(1.5) // out of range: ignored
	if got := s.Fraction(); got != 0.3 {
		t.Errorf("Fraction after invalid SetFraction = %v, want 0.3", got)
	}
	s.DisableAdaptive()
	if got := s.Fraction(); got != 0.3 {
		t.Errorf("Fraction after DisableAdaptive = %v, want 0.3", got)
	}
	// The disablement must survive a snapshot round trip: the restored
	// session keeps the frozen fraction and rebuilds no controller.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Fraction(); got != 0.3 {
		t.Errorf("restored Fraction = %v, want 0.3", got)
	}
	if r.controller != nil {
		t.Error("restored session rebuilt an adaptive controller after DisableAdaptive")
	}
}

func TestSessionLateEvents(t *testing.T) {
	s := NewSession(SessionConfig{Seed: 6})
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	_ = s.Push(Event{Stratum: "a", Value: 1, Time: base.Add(time.Minute)})
	_ = s.Push(Event{Stratum: "a", Value: 1, Time: base})
	if s.Late() != 1 {
		t.Errorf("Late = %d", s.Late())
	}
}

func TestSessionAdaptiveFeedback(t *testing.T) {
	// With a tight error target and a tiny initial fraction, the
	// controller must raise the fraction.
	s := NewSession(SessionConfig{
		Fraction:    0.02,
		TargetError: 0.0001,
		Seed:        7,
	})
	events := testEvents(t, 30)
	for _, e := range events {
		_ = s.Push(e)
	}
	_ = s.Close()
	if s.Fraction() <= 0.02 {
		t.Errorf("adaptive fraction did not grow: %v", s.Fraction())
	}
}

func TestSessionFixedFraction(t *testing.T) {
	s := NewSession(SessionConfig{Fraction: 0.4, Seed: 8})
	if s.Fraction() != 0.4 {
		t.Errorf("Fraction = %v", s.Fraction())
	}
}

func TestConfidenceMapping(t *testing.T) {
	if Confidence(0).internal().Sigmas() != 2 {
		t.Error("default confidence should be 95%")
	}
	if Confidence997.internal().Sigmas() != 3 {
		t.Error("Confidence997 mapping")
	}
}

func TestRunDeterminism(t *testing.T) {
	events := testEvents(t, 8)
	a, _ := Run(Config{Fraction: 0.4, Seed: 11}, events)
	b, _ := Run(Config{Fraction: 0.4, Seed: 11}, events)
	for i := range a.Results {
		if a.Results[i].Overall.Value != b.Results[i].Overall.Value {
			t.Fatalf("non-deterministic at window %d", i)
		}
	}
}

func TestSessionHistogram(t *testing.T) {
	s := NewSession(SessionConfig{
		Query:          Histogram,
		HistogramEdges: []float64{0, 100, 2000, 20000},
		Fraction:       0.5,
		Seed:           9,
	})
	for _, e := range testEvents(t, 12) {
		if err := s.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	results := s.Close()
	if len(results) == 0 {
		t.Fatal("no windows")
	}
	for _, r := range results {
		if len(r.Buckets) != 3 {
			t.Fatalf("window %v has %d buckets", r.Start, len(r.Buckets))
		}
		var total float64
		for _, b := range r.Buckets {
			total += b.Count.Value
		}
		// The three Gaussian strata lie one per bucket; bucket counts
		// must roughly reconstruct the window population.
		if rel := total / float64(r.Items); rel < 0.9 || rel > 1.1 {
			t.Errorf("window %v bucket total %v vs %d items", r.Start, total, r.Items)
		}
	}
}
