package streamapprox

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"streamapprox/internal/adaptive"
	"streamapprox/internal/sampling"
	"streamapprox/internal/window"
	"streamapprox/internal/xrand"
)

// ErrSnapshotUnsupported is returned by Snapshot for sessions using
// auto-stratification, whose stratifier state is not checkpointable yet.
var ErrSnapshotUnsupported = errors.New("streamapprox: snapshot of auto-stratified sessions is not supported")

// sessionState is the serialized form of a Session, versioned so the
// format can evolve.
type sessionState struct {
	Version int `json:"version"`

	Query           Query       `json:"query"`
	WindowSizeNS    int64       `json:"windowSizeNs"`
	WindowSlideNS   int64       `json:"windowSlideNs"`
	Fraction        float64     `json:"fraction"`
	TargetError     float64     `json:"targetError"`
	TargetLatencyNS int64       `json:"targetLatencyNs,omitempty"`
	Confidence      Confidence  `json:"confidence"`
	HistogramEdges  []float64   `json:"histogramEdges,omitempty"`
	Seed            uint64      `json:"seed"`
	RNG             xrand.State `json:"rng"`
	ControllerFrac  float64     `json:"controllerFraction"`

	SegStart  time.Time            `json:"segStart"`
	SegCount  int                  `json:"segCount"`
	LastCount int                  `json:"lastCount"`
	Watermark time.Time            `json:"watermark"`
	Late      int64                `json:"late"`
	Sampler   *sampling.OASRSState `json:"sampler,omitempty"`

	Pending map[string]pendingSample `json:"pending"`
	Ready   []WindowResult           `json:"ready,omitempty"`
}

// pendingSample is a window's accumulated sub-samples.
type pendingSample struct {
	Strata []sampling.StratumSample `json:"strata"`
}

const snapshotVersion = 1

// Snapshot serializes the session's full state — in-flight segment
// sampler, pending window samples, adaptive-controller position, RNG —
// so processing can resume after a crash via RestoreSession. The session
// remains usable after Snapshot.
func (s *Session) Snapshot() ([]byte, error) {
	if s.stratifier != nil {
		return nil, ErrSnapshotUnsupported
	}
	st := sessionState{
		Version:         snapshotVersion,
		Query:           s.cfg.Query,
		WindowSizeNS:    int64(s.cfg.WindowSize),
		WindowSlideNS:   int64(s.cfg.WindowSlide),
		Fraction:        s.cfg.Fraction,
		TargetError:     s.cfg.TargetError,
		TargetLatencyNS: int64(s.cfg.TargetLatency),
		Confidence:      s.cfg.Confidence,
		HistogramEdges:  s.cfg.HistogramEdges,
		Seed:            s.cfg.Seed,
		RNG:             s.rng.State(),
		ControllerFrac:  s.Fraction(),
		SegStart:        s.segStart,
		SegCount:        s.segCount,
		LastCount:       s.lastCount,
		Watermark:       s.watermark,
		Late:            s.late,
		Pending:         make(map[string]pendingSample, len(s.pending)),
		Ready:           s.ready,
	}
	if s.sampler != nil {
		samplerState := s.sampler.State()
		st.Sampler = &samplerState
	}
	for start, sample := range s.pending {
		st.Pending[start.Format(time.RFC3339Nano)] = pendingSample{Strata: sample.Strata}
	}
	return json.Marshal(st)
}

// RestoreSession rebuilds a session from a Snapshot. The restored
// session continues the event-time stream where the snapshot left off:
// pending windows, the in-flight segment's reservoirs, the watermark and
// the adaptive fraction are all recovered.
func RestoreSession(data []byte) (*Session, error) {
	var st sessionState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("streamapprox: decode snapshot: %w", err)
	}
	if st.Version != snapshotVersion {
		return nil, fmt.Errorf("streamapprox: unsupported snapshot version %d", st.Version)
	}
	// The latency cost model (if any) is rebuilt empty: it re-fits from
	// the first post-restore segment, which is cheap and avoids
	// serializing a wall-clock-dependent model.
	s := NewSession(SessionConfig{
		Query:          st.Query,
		WindowSize:     time.Duration(st.WindowSizeNS),
		WindowSlide:    time.Duration(st.WindowSlideNS),
		Fraction:       st.Fraction,
		TargetError:    st.TargetError,
		TargetLatency:  time.Duration(st.TargetLatencyNS),
		Confidence:     st.Confidence,
		HistogramEdges: st.HistogramEdges,
		Seed:           st.Seed,
	})
	s.rng.SetState(st.RNG)
	if st.TargetError > 0 {
		// Resume the controller from its snapshot position.
		s.controller = adaptive.NewController(st.TargetError, st.ControllerFrac)
	}
	s.segStart = st.SegStart
	s.cacheSegBounds()
	s.segCount = st.SegCount
	s.lastCount = st.LastCount
	s.watermark = st.Watermark
	s.late = st.Late
	s.ready = st.Ready
	if st.Sampler != nil {
		s.sampler = sampling.RestoreOASRS(*st.Sampler, nil, s.rng)
	}
	for key, ps := range st.Pending {
		start, err := time.Parse(time.RFC3339Nano, key)
		if err != nil {
			return nil, fmt.Errorf("streamapprox: bad pending-window key %q: %w", key, err)
		}
		s.pending[start] = &sampling.Sample{Strata: ps.Strata}
	}
	// Defensive: the assigner is cheap to rebuild and guards against a
	// zero-window config slipping through.
	s.assigner = window.NewAssigner(s.cfg.WindowSize, s.cfg.WindowSlide)
	return s, nil
}
