package streamapprox

import (
	"errors"
	"time"

	"streamapprox/internal/adaptive"
	"streamapprox/internal/budget"
	"streamapprox/internal/query"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stratify"
	"streamapprox/internal/stream"
	"streamapprox/internal/window"
	"streamapprox/internal/xrand"
)

// SessionConfig configures an incremental Session.
type SessionConfig struct {
	// Query is the per-window aggregate (default Sum).
	Query Query
	// WindowSize and WindowSlide configure the sliding window (defaults
	// 10s / 5s).
	WindowSize  time.Duration
	WindowSlide time.Duration
	// Fraction is the initial sampling fraction (default 0.6).
	Fraction float64
	// TargetError, when positive, enables the adaptive feedback
	// mechanism (§4.2.1): if a window's relative error bound exceeds
	// TargetError, the sampling fraction is increased for subsequent
	// windows; when comfortably below it, the fraction decays to reclaim
	// throughput.
	TargetError float64
	// TargetLatency, when positive, bounds the *processing* time per
	// slide segment via the §7 latency cost function: a per-item cost
	// model is fitted online from observed segment processing times, and
	// the next segment's sample budget is capped at what fits in the
	// target. It composes with Fraction/TargetError: the effective
	// budget is the minimum of the two.
	TargetLatency time.Duration
	// Confidence is the error-bound level (default Confidence95).
	Confidence Confidence
	// HistogramEdges defines the bucket edges for the Histogram query
	// (ignored otherwise).
	HistogramEdges []float64
	// Stratify selects how strata are assigned when the stream has no
	// reliable source labels (default: trust Event.Stratum).
	Stratify Stratify
	// StratifyK is the number of synthetic strata for StratifyQuantile /
	// StratifyKMeans (default 4).
	StratifyK int
	// Seed makes the session reproducible (default 1).
	Seed uint64
}

// Session processes an unbounded stream incrementally: Push events in
// event-time order, collect completed windows from Poll (or all of them
// from Close). Each slide segment is sampled on-the-fly with OASRS; the
// per-segment budget follows the previous segment's arrival count times
// the current sampling fraction.
//
// Session is not safe for concurrent use.
type Session struct {
	cfg        SessionConfig
	q          query.Query
	assigner   *window.Assigner
	sampler    *sampling.OASRS
	rng        *xrand.Rand
	controller *adaptive.Controller
	stratifier stratify.Stratifier
	latency    *budget.Latency
	segWork    time.Duration // processing time spent in the current segment
	now        func() time.Time

	segStart  time.Time
	segCount  int
	lastCount int
	pending   map[time.Time]*sampling.Sample
	ready     []WindowResult
	watermark time.Time
	late      int64
	closed    bool

	// Cached bounds of the current slide segment in unix nanos, so the
	// common in-order event (and PushBatch's run loop) skips the
	// time.Truncate per record. Valid only when segBoundsOK: segments
	// starting at the zero time (or outside the unix-nano range) fall
	// back to the Truncate path.
	segStartN   int64
	segEndN     int64
	segBoundsOK bool
}

// ErrClosedSession is returned by Push after Close.
var ErrClosedSession = errors.New("streamapprox: session closed")

// NewSession returns a ready Session.
func NewSession(cfg SessionConfig) *Session {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 10 * time.Second
	}
	if cfg.WindowSlide <= 0 {
		cfg.WindowSlide = 5 * time.Second
	}
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		cfg.Fraction = 0.6
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Query == 0 {
		cfg.Query = Sum
	}
	if cfg.StratifyK < 2 {
		cfg.StratifyK = 4
	}
	s := &Session{
		cfg:      cfg,
		q:        cfg.Query.internal(cfg.Confidence.internal(), cfg.HistogramEdges),
		assigner: window.NewAssigner(cfg.WindowSize, cfg.WindowSlide),
		rng:      xrand.New(cfg.Seed),
		pending:  make(map[time.Time]*sampling.Sample),
	}
	if cfg.TargetError > 0 {
		s.controller = adaptive.NewController(cfg.TargetError, cfg.Fraction)
	}
	switch cfg.Stratify {
	case StratifyQuantile:
		s.stratifier = stratify.NewQuantile(cfg.StratifyK, 64*cfg.StratifyK, 1024, s.rng.Split())
	case StratifyKMeans:
		s.stratifier = stratify.NewKMeans(cfg.StratifyK, s.rng.Split())
	}
	if cfg.TargetLatency > 0 {
		s.latency = budget.NewLatency(cfg.TargetLatency)
		s.now = time.Now
	}
	return s
}

// Fraction returns the session's current sampling fraction (moved by the
// adaptive controller when TargetError is set).
func (s *Session) Fraction() float64 {
	if s.controller != nil {
		return s.controller.Fraction()
	}
	return s.cfg.Fraction
}

// SetFraction overrides the sampling fraction from outside the session,
// taking effect at the next slide segment. It is the control surface an
// external budget scheduler uses to apportion a shared sampling budget
// across many sessions; with TargetError set, the adaptive controller is
// re-based at f and keeps adjusting from there. Values outside (0, 1]
// are ignored.
func (s *Session) SetFraction(f float64) {
	if f <= 0 || f > 1 {
		return
	}
	s.cfg.Fraction = f
	if s.controller != nil {
		s.controller.SetFraction(f)
	}
}

// DisableAdaptive turns the per-session adaptive controller off,
// freezing the fraction at its current value until SetFraction moves
// it — and keeping it off across future Snapshot/RestoreSession
// round trips. An external scheduler that owns the feedback loop calls
// this on sessions restored from snapshots that still carry a
// TargetError, so the restored local loop cannot fight its grants.
func (s *Session) DisableAdaptive() {
	if s.controller != nil {
		s.cfg.Fraction = s.controller.Fraction()
		s.cfg.TargetError = 0
		s.controller = nil
	}
}

// Late returns the number of dropped late events.
func (s *Session) Late() int64 { return s.late }

// Push offers one event. Events must arrive in non-decreasing event-time
// order; events behind the watermark are counted and dropped.
func (s *Session) Push(e Event) error {
	if s.closed {
		return ErrClosedSession
	}
	if e.Time.Before(s.watermark) {
		s.late++
		return nil
	}
	// Fast path: an event inside the cached segment bounds needs no
	// Truncate and no segment transition. The range check rejects the
	// zero time (its UnixNano is far outside any cached segment).
	if !s.segBoundsOK || e.Time.UnixNano() < s.segStartN || e.Time.UnixNano() >= s.segEndN {
		seg := e.Time.Truncate(s.cfg.WindowSlide)
		if s.segStart.IsZero() {
			s.startSegment(seg)
		} else if seg.After(s.segStart) {
			s.finishSegment()
			s.startSegment(seg)
		}
	}
	s.segCount++
	ie := stream.Event(e)
	if s.stratifier != nil {
		ie.Stratum = s.stratifier.Assign(ie)
	}
	if s.latency != nil {
		start := s.now()
		s.sampler.Add(ie)
		s.segWork += s.now().Sub(start)
	} else {
		s.sampler.Add(ie)
	}
	if e.Time.After(s.watermark) {
		s.watermark = e.Time
	}
	return nil
}

// EventBatch is the pooled columnar record batch of the vectorized
// serving tier (see internal/stream): interned stratum IDs, dense value
// and unix-nano time columns. NewEventBatch draws one from the shared
// pool with a single reference held by the caller.
type EventBatch = stream.EventBatch

// NewEventBatch returns an empty pooled batch (Release returns it).
func NewEventBatch() *EventBatch { return stream.GetEventBatch() }

// PushBatch offers records [from, to) of a columnar batch, equivalent
// to pushing each record through Push in order but vectorized: the
// batch is segmented into runs of records that fall inside the current
// slide segment and ahead of the watermark, so the window-boundary
// computation happens once per run instead of once per record, and each
// run is bulk-offered to the sampler via OASRS.AddBatch. Sessions with
// a stratifier or a latency budget take the per-record path (stratum
// assignment must not mutate the shared batch; latency timing brackets
// every add).
//
// The batch is treated as read-only; callers sharing one batch across
// sessions Retain/Release around the call.
func (s *Session) PushBatch(b *EventBatch, from, to int) error {
	if s.closed {
		return ErrClosedSession
	}
	if from < 0 {
		from = 0
	}
	if to > b.Len() {
		to = b.Len()
	}
	if s.stratifier != nil || s.latency != nil {
		for i := from; i < to; i++ {
			if err := s.Push(Event(b.EventAt(i))); err != nil {
				return err
			}
		}
		return nil
	}
	// Watermark in unix nanos; the zero watermark (drops nothing) maps
	// below every representable time.
	wmN := int64(stream.ZeroTimeNanos)
	if !s.watermark.IsZero() {
		wmN = s.watermark.UnixNano()
	}
	advanced := false
	flushWM := func() {
		if advanced {
			s.watermark = time.Unix(0, wmN).UTC()
			advanced = false
		}
	}
	for i := from; i < to; {
		tn := b.Times[i]
		if tn < wmN {
			// Late — the zero-time sentinel lands here too once a real
			// watermark exists, exactly as the scalar path drops it.
			s.late++
			i++
			continue
		}
		if tn == stream.ZeroTimeNanos {
			// Zero-time record against a zero watermark: scalar edge
			// semantics for the remainder.
			flushWM()
			for ; i < to; i++ {
				if err := s.Push(Event(b.EventAt(i))); err != nil {
					return err
				}
			}
			return nil
		}
		if !s.segBoundsOK || tn < s.segStartN || tn >= s.segEndN {
			t := time.Unix(0, tn).UTC()
			seg := t.Truncate(s.cfg.WindowSlide)
			if s.segStart.IsZero() {
				s.startSegment(seg)
			} else if seg.After(s.segStart) {
				s.finishSegment()
				s.startSegment(seg)
			}
		}
		if !s.segBoundsOK {
			// Segment bounds not representable in nanos: per-record path.
			flushWM()
			if err := s.Push(Event(b.EventAt(i))); err != nil {
				return err
			}
			if !s.watermark.IsZero() {
				wmN = s.watermark.UnixNano()
			}
			i++
			continue
		}
		// The run: consecutive records that are neither late nor past
		// the segment end — exactly the records the scalar loop would
		// add to the current sampler without a segment transition.
		j, endN := i, s.segEndN
		for j < to {
			v := b.Times[j]
			if v < wmN || v >= endN {
				break
			}
			if v > wmN {
				wmN = v
				advanced = true
			}
			j++
		}
		s.segCount += j - i
		s.sampler.AddBatch(b, i, j)
		i = j
	}
	flushWM()
	return nil
}

// Poll returns windows completed so far and clears the ready list.
func (s *Session) Poll() []WindowResult {
	out := s.ready
	s.ready = nil
	return out
}

// Advance moves the session's event-time watermark to now without
// consuming an event — a punctuation/heartbeat for push-based serving.
// It finishes the in-flight slide segment when now has moved past it and
// fires every pending window that can no longer receive events (end at
// or before now's segment start). Subsequent events older than now are
// dropped as late. Advance lets a served shard flush windows on an idle
// or gappy partition by adopting the progress of its peers.
func (s *Session) Advance(now time.Time) {
	if s.closed {
		return
	}
	if now.After(s.watermark) {
		s.watermark = now
	}
	seg := now.Truncate(s.cfg.WindowSlide)
	if !s.segStart.IsZero() && seg.After(s.segStart) {
		s.finishSegment()
		s.startSegment(seg)
	}
	// Events in the current segment [seg, seg+slide) may still belong to
	// windows ending inside it, so only windows ending at or before seg
	// are complete.
	fired := false
	for start := range s.pending {
		if !start.Add(s.cfg.WindowSize).After(seg) {
			s.fireWindow(start)
			fired = true
		}
	}
	if fired {
		sortWindowResults(s.ready)
	}
}

// Close flushes the in-progress segment and all pending windows and
// returns every remaining result. Further Push calls fail.
func (s *Session) Close() []WindowResult {
	if s.closed {
		return nil
	}
	s.closed = true
	if !s.segStart.IsZero() {
		s.finishSegment()
	}
	for start := range s.pending {
		s.fireWindow(start)
	}
	sortWindowResults(s.ready)
	out := s.ready
	s.ready = nil
	return out
}

func (s *Session) startSegment(seg time.Time) {
	s.segStart = seg
	s.segCount = 0
	s.cacheSegBounds()
	size := int(s.Fraction() * float64(s.lastCount))
	if size < 1 {
		size = 64 // bootstrap before any arrival count is known
	}
	// The latency cost function caps the budget at what the observed
	// per-item cost says fits in the target (§7).
	if s.latency != nil && s.lastCount > 0 {
		if fit := s.latency.SampleSize(s.lastCount); fit < size {
			size = fit
		}
	}
	if s.sampler == nil {
		s.sampler = sampling.NewOASRS(size, nil, s.rng)
		return
	}
	s.sampler.SetBudget(size)
}

// cacheSegBounds caches the current segment's bounds in unix nanos for
// the Push fast path and PushBatch's run loop. The round-trip check
// rejects segments whose UnixNano is undefined (the zero time, or times
// outside years 1678–2262).
func (s *Session) cacheSegBounds() {
	seg := s.segStart
	end := seg.Add(s.cfg.WindowSlide)
	s.segStartN, s.segEndN = seg.UnixNano(), end.UnixNano()
	s.segBoundsOK = !seg.IsZero() && s.segStartN < s.segEndN &&
		time.Unix(0, s.segStartN).Equal(seg) && time.Unix(0, s.segEndN).Equal(end)
}

func (s *Session) finishSegment() {
	sample := s.sampler.Finish()
	if s.latency != nil && s.segCount > 0 && s.segWork > 0 {
		s.latency.Observe(s.segCount, s.segWork)
		s.segWork = 0
	}
	s.lastCount = s.segCount
	for _, win := range s.assigner.Assign(s.segStart) {
		agg, ok := s.pending[win.Start]
		if !ok {
			agg = &sampling.Sample{}
			s.pending[win.Start] = agg
		}
		agg.Strata = append(agg.Strata, sample.Strata...)
	}
	// Fire every pending window that ended at or before the segment end.
	segEnd := s.segStart.Add(s.cfg.WindowSlide)
	for start := range s.pending {
		if !start.Add(s.cfg.WindowSize).After(segEnd) {
			s.fireWindow(start)
		}
	}
	sortWindowResults(s.ready)
}

func (s *Session) fireWindow(start time.Time) {
	agg := s.pending[start]
	delete(s.pending, start)
	res := s.q.Evaluate(agg)
	wr := WindowResult{
		Start:   start,
		End:     start.Add(s.cfg.WindowSize),
		Overall: fromInternalEstimate(res.Overall),
		Items:   agg.TotalCount(),
		Sampled: agg.SampledCount(),
	}
	if len(res.Groups) > 0 {
		wr.Groups = make(map[string]Estimate, len(res.Groups))
		for k, v := range res.Groups {
			wr.Groups[k] = fromInternalEstimate(v)
		}
		wr.GroupItems = make(map[string]int64, len(agg.Strata))
		for i := range agg.Strata {
			wr.GroupItems[agg.Strata[i].Stratum] += agg.Strata[i].Count
		}
	}
	for _, b := range res.Buckets {
		wr.Buckets = append(wr.Buckets, HistogramBucket{
			Lo: b.Lo, Hi: b.Hi, Count: fromInternalEstimate(b.Count),
		})
	}
	s.ready = append(s.ready, wr)
	// Adaptive feedback: grow the fraction when the bound is too loose,
	// decay it when comfortably tight (§4.2.1).
	if s.controller != nil {
		s.controller.Observe(wr.Overall.RelativeError())
	}
}

func sortWindowResults(rs []WindowResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Start.Before(rs[j-1].Start); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
