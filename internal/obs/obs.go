// Package obs is the structured logging half of the observability
// plane: a small leveled key=value logger shared by brokerd, saproxd
// and the bench tools, plus trace-ID helpers for following one request
// edge → ingest plane → partition leader → follower across process
// boundaries. It replaces the scattered log.Printf calls so every
// operational line is machine-parseable (level=, msg=, trace=) and a
// whole pipeline is grep-able by one trace ID.
package obs

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown level %q", s)
}

// Logger writes timestamped key=value lines. Loggers derived with With
// share one mutex and writer, so lines from every component interleave
// whole. A nil *Logger is valid and silent, so optional wiring needs no
// guards.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	bound string // pre-rendered " k=v" pairs from With
	now   func() time.Time
}

// New returns a logger writing lines at or above level to w.
func New(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, now: time.Now}
}

// With returns a child logger with kv pairs bound to every line. The
// pairs render after the message, before per-call pairs.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	child := *l
	var b strings.Builder
	b.WriteString(l.bound)
	appendPairs(&b, kv)
	child.bound = b.String()
	return &child
}

// Enabled reports whether lines at level would be written — the guard
// for callers that must not even assemble debug arguments on hot paths.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug, Info, Warn and Error emit one line at that level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Logf adapts the Printf-style Logf plumbing already threaded through
// NodeConfig and server.Config: the formatted string becomes an Info
// line's msg.
func (l *Logger) Logf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	writeValue(&b, msg)
	b.WriteString(l.bound)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendPairs renders " k=v" for each pair; a trailing odd value is
// rendered under the "!BADKEY" key rather than dropped.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		if i+1 < len(kv) {
			fmt.Fprintf(b, "%v", kv[i])
			b.WriteByte('=')
			writeValue(b, kv[i+1])
		} else {
			b.WriteString("!BADKEY=")
			writeValue(b, kv[i])
		}
	}
}

// writeValue renders one value, quoting strings that would break the
// space-separated k=v grammar.
func writeValue(b *strings.Builder, v any) {
	s, ok := v.(string)
	if !ok {
		if err, isErr := v.(error); isErr {
			s = err.Error()
			ok = true
		}
	}
	if !ok {
		s = fmt.Sprintf("%v", v)
	}
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		fmt.Fprintf(b, "%q", s)
		return
	}
	b.WriteString(s)
}

// traceRand is seeded once per process; trace IDs need uniqueness, not
// cryptographic strength, and must not disturb callers' rand usage.
var traceMu sync.Mutex
var traceRand = rand.New(rand.NewSource(time.Now().UnixNano()))

// NewTraceID returns a non-zero 64-bit request/trace ID. Zero is
// reserved as "no trace" on the wire.
func NewTraceID() uint64 {
	traceMu.Lock()
	defer traceMu.Unlock()
	for {
		if id := traceRand.Uint64(); id != 0 {
			return id
		}
	}
}

// TraceHex renders a trace ID the way every log line spells it, so one
// grep matches producer, leader and follower.
func TraceHex(id uint64) string { return fmt.Sprintf("%016x", id) }
