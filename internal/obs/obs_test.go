package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixed(l *Logger) *Logger {
	l.now = func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 60e6, time.UTC) }
	return l
}

func TestLineFormat(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	l := fixed(&Logger{mu: &mu, w: &b, level: LevelDebug})
	l.Info("registered query", "query", "q-0", "fraction", 0.05, "note", "two words")
	got := b.String()
	want := `ts=2026-01-02T03:04:05.060Z level=info msg="registered query" query=q-0 fraction=0.05 note="two words"` + "\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestLevelGating(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := b.String()
	if strings.Contains(out, "level=debug") || strings.Contains(out, "level=info") {
		t.Fatalf("gated levels leaked:\n%s", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Fatalf("passing levels missing:\n%s", out)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with gating")
	}
}

func TestWithBindsFields(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelInfo).With("comp", "brokerd", "node", "a")
	l2 := l.With("trace", TraceHex(0xabc))
	l2.Info("hello")
	out := b.String()
	for _, want := range []string{"comp=brokerd", "node=a", "trace=0000000000000abc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
	// The parent logger must not have inherited the child's fields.
	b.Reset()
	l.Info("again")
	if strings.Contains(b.String(), "trace=") {
		t.Fatalf("With mutated parent: %q", b.String())
	}
}

func TestNilLoggerIsSilent(t *testing.T) {
	var l *Logger
	l.Info("nothing")
	l.With("a", "b").Error("still nothing")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger enabled")
	}
}

func TestOddPairsAndErrors(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelInfo)
	l.Info("m", "err", errors.New("boom boom"), "dangling")
	out := b.String()
	if !strings.Contains(out, `err="boom boom"`) || !strings.Contains(out, "!BADKEY=dangling") {
		t.Fatalf("pair rendering: %q", out)
	}
}

func TestLogfAdapter(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelInfo)
	l.Logf("node %s: %d partitions", "a", 4)
	if !strings.Contains(b.String(), `msg="node a: 4 partitions"`) {
		t.Fatalf("Logf: %q", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"WARN": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("no error for unknown level")
	}
}

func TestNewTraceIDNonZeroAndConcurrent(t *testing.T) {
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := NewTraceID()
				if id == 0 {
					t.Error("zero trace ID")
					return
				}
				mu.Lock()
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) < 1500 {
		t.Fatalf("too many collisions: %d unique of 1600", len(seen))
	}
}

func TestConcurrentLinesInterleaveWhole(t *testing.T) {
	var b safeBuilder
	l := New(&b, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("tick", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("torn line: %q", line)
		}
	}
}

type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
