package stratify

import (
	"math"
	"testing"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func TestQuantileSeparatesModes(t *testing.T) {
	rng := xrand.New(1)
	q := NewQuantile(2, 256, 128, rng.Split())
	// A bimodal stream: values near 10 and values near 10000.
	assignments := map[string]map[string]int{"low": {}, "high": {}}
	for i := 0; i < 20000; i++ {
		var e stream.Event
		var truth string
		if i%2 == 0 {
			e = stream.Event{Value: rng.Gaussian(10, 2)}
			truth = "low"
		} else {
			e = stream.Event{Value: rng.Gaussian(10000, 200)}
			truth = "high"
		}
		assignments[truth][q.Assign(e)]++
	}
	// After warm-up, the two modes must land in different strata almost
	// always. Find each truth's dominant stratum and check purity.
	dom := func(m map[string]int) (string, float64) {
		best, total := "", 0
		bn := 0
		for s, n := range m {
			total += n
			if n > bn {
				best, bn = s, n
			}
		}
		return best, float64(bn) / float64(total)
	}
	lowS, lowP := dom(assignments["low"])
	highS, highP := dom(assignments["high"])
	if lowS == highS {
		t.Fatalf("both modes assigned to stratum %q", lowS)
	}
	if lowP < 0.95 || highP < 0.95 {
		t.Errorf("purity too low: low %.3f high %.3f", lowP, highP)
	}
}

func TestQuantileEdgesRefresh(t *testing.T) {
	rng := xrand.New(2)
	q := NewQuantile(4, 512, 64, rng.Split())
	for i := 0; i < 1000; i++ {
		q.Assign(stream.Event{Value: rng.Gaussian(100, 10)})
	}
	edges := q.Edges()
	if len(edges) == 0 {
		t.Fatal("no edges estimated")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not strictly increasing: %v", edges)
		}
	}
	// Edges of N(100,10) quartiles should be near 93, 100, 107.
	if edges[0] < 80 || edges[len(edges)-1] > 120 {
		t.Errorf("edges implausible for N(100,10): %v", edges)
	}
}

func TestQuantileConstantStreamCollapses(t *testing.T) {
	rng := xrand.New(3)
	q := NewQuantile(4, 64, 16, rng.Split())
	s := map[string]bool{}
	for i := 0; i < 500; i++ {
		s[q.Assign(stream.Event{Value: 42})] = true
	}
	if len(s) != 1 {
		t.Errorf("constant stream split into %d strata: %v", len(s), s)
	}
}

func TestQuantileClamps(t *testing.T) {
	rng := xrand.New(4)
	q := NewQuantile(1, 0, 0, rng)
	if q.k != 2 {
		t.Errorf("k clamped to %d, want 2", q.k)
	}
	q2 := NewQuantile(1000, 10, 10, rng)
	if q2.k != 64 {
		t.Errorf("k clamped to %d, want 64", q2.k)
	}
}

func TestKMeansSeparatesModes(t *testing.T) {
	rng := xrand.New(5)
	m := NewKMeans(2, rng.Split())
	counts := map[string]map[string]int{"low": {}, "high": {}}
	for i := 0; i < 20000; i++ {
		var e stream.Event
		var truth string
		if i%2 == 0 {
			e = stream.Event{Value: rng.Gaussian(10, 2)}
			truth = "low"
		} else {
			e = stream.Event{Value: rng.Gaussian(1000, 50)}
			truth = "high"
		}
		counts[truth][m.Assign(e)]++
	}
	// Centroids must converge near the two modes.
	cs := m.Centroids()
	if len(cs) != 2 {
		t.Fatalf("centroids = %v", cs)
	}
	lo, hi := math.Min(cs[0], cs[1]), math.Max(cs[0], cs[1])
	if math.Abs(lo-10) > 5 || math.Abs(hi-1000) > 100 {
		t.Errorf("centroids did not converge to modes: %v", cs)
	}
}

func TestKMeansSemiSupervisedPinning(t *testing.T) {
	rng := xrand.New(6)
	m := NewKMeans(2, rng.Split())
	// Labeled events pin cluster c01.
	for i := 0; i < 100; i++ {
		got := m.Assign(stream.Event{Stratum: "c01", Value: 500})
		if got != "c01" {
			t.Fatalf("labeled event assigned to %q", got)
		}
	}
	cs := m.Centroids()
	found := false
	for _, c := range cs {
		if math.Abs(c-500) <= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("pinned centroid = %v, want one ≈500", cs)
	}
}

func TestKMeansAdaptsToDrift(t *testing.T) {
	rng := xrand.New(7)
	m := NewKMeans(2, rng.Split())
	for i := 0; i < 5000; i++ {
		m.Assign(stream.Event{Value: rng.Gaussian(10, 1)})
		m.Assign(stream.Event{Value: rng.Gaussian(100, 5)})
	}
	// The upper mode drifts to 200; the rate floor lets the centroid
	// follow.
	for i := 0; i < 200000; i++ {
		m.Assign(stream.Event{Value: rng.Gaussian(200, 5)})
	}
	cs := m.Centroids()
	hi := math.Max(cs[0], cs[1])
	if math.Abs(hi-200) > 20 {
		t.Errorf("centroid did not follow drift: %v", cs)
	}
}

func TestPassthrough(t *testing.T) {
	var p Passthrough
	if got := p.Assign(stream.Event{Stratum: "tcp"}); got != "tcp" {
		t.Errorf("Assign = %q", got)
	}
	if got := p.Assign(stream.Event{}); got != "default" {
		t.Errorf("empty stratum = %q", got)
	}
}
