package stratify

import (
	"math"
	"testing"

	"streamapprox/internal/estimate"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func TestMergeSamplesUnionsDisjointShards(t *testing.T) {
	rng := xrand.New(3)
	shards := make([]*sampling.OASRS, 3)
	for i := range shards {
		shards[i] = sampling.NewOASRS(120, nil, rng.Split())
	}
	var exactSum float64
	var total int64
	for i := 0; i < 3000; i++ {
		stratum := []string{"a", "b", "c", "d"}[i%4]
		v := rng.Gaussian(50, 10)
		exactSum += v
		total++
		shards[i%3].Add(stream.Event{Stratum: stratum, Value: v})
	}
	parts := make([]*sampling.Sample, len(shards))
	for i, sh := range shards {
		parts[i] = sh.Finish()
	}

	merged := MergeSamples(parts...)
	if got := merged.TotalCount(); got != total {
		t.Fatalf("merged TotalCount = %d, want %d", got, total)
	}
	// Entries must be ordered by stratum and keep one entry per
	// (shard, stratum) — 3 shards × 4 strata.
	if len(merged.Strata) != 12 {
		t.Fatalf("merged has %d entries, want 12", len(merged.Strata))
	}
	for i := 1; i < len(merged.Strata); i++ {
		if merged.Strata[i].Stratum < merged.Strata[i-1].Stratum {
			t.Fatalf("entries not ordered: %q after %q",
				merged.Strata[i].Stratum, merged.Strata[i-1].Stratum)
		}
	}

	// The merged sample must estimate the union population: its SUM must
	// match the sum of the per-shard estimates exactly (same algebra) and
	// land near the exact answer.
	var partSum float64
	for _, p := range parts {
		partSum += estimate.Sum(p, estimate.Conf95).Value
	}
	mergedEst := estimate.Sum(merged, estimate.Conf95)
	if d := math.Abs(mergedEst.Value - partSum); d > 1e-6 {
		t.Errorf("merged estimate %v != sum of part estimates %v", mergedEst.Value, partSum)
	}
	if rel := math.Abs(mergedEst.Value-exactSum) / exactSum; rel > 0.1 {
		t.Errorf("merged estimate %v vs exact %v (rel %.3f)", mergedEst.Value, exactSum, rel)
	}
}

func TestMergeSamplesSkipsNil(t *testing.T) {
	s := &sampling.Sample{Strata: []sampling.StratumSample{{Stratum: "x", Count: 2, Weight: 1}}}
	merged := MergeSamples(nil, s, nil)
	if len(merged.Strata) != 1 || merged.Strata[0].Stratum != "x" {
		t.Fatalf("merged = %+v", merged)
	}
	if empty := MergeSamples(); empty == nil || len(empty.Strata) != 0 {
		t.Fatalf("empty merge = %+v", empty)
	}
}
