// Package stratify implements the pre-processing step the paper leaves
// as a pluggable assumption (§7.II): assigning strata to data items when
// the stream is NOT naturally stratified by source.
//
// StreamApprox assumes each sub-stream (stratum) is identified by the
// item's source and that items within a stratum are identically
// distributed. When sources are unknown or unreliable, the paper
// proposes stratifying "evolving streams" with bootstrap-based
// estimation or semi-supervised classification. This package provides
// two online stratifiers in that spirit:
//
//   - QuantileStratifier: value-quantile binning against a bootstrap
//     sample of the stream (the bootstrap proposal): items are assigned
//     to strata by which quantile band of the observed distribution
//     their value falls into. Bands are re-estimated per interval from a
//     reservoir, so the stratification tracks distribution drift.
//   - KMeansStratifier: online k-means in value space (the
//     semi-supervised proposal with zero labels): cluster centroids are
//     updated per item, and the stratum is the nearest centroid. Labeled
//     items (events that already carry a stratum) pin centroids, which
//     is the semi-supervised half.
//
// Both satisfy the Stratifier interface consumed by the public API's
// AutoStratify option.
package stratify

import (
	"fmt"
	"math"
	"sort"

	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// Stratifier assigns a stratum to an event. Implementations are used in
// front of OASRS when the input stream has no reliable source labels.
type Stratifier interface {
	// Assign returns the stratum for the event. It may observe the
	// event's value to update internal state.
	Assign(e stream.Event) string
}

// BatchStratifier is a Stratifier that can observe and re-label a whole
// columnar batch at once, rewriting b.Strata[from:to] (and the batch
// dictionary) in place with the assigned strata. Only the OWNER of a
// batch may use it — a batch fanned out to several consumers is
// read-only. The assignments are identical to calling Assign per record
// in order; batching hoists the per-record bookkeeping (refresh-due
// checks, label interning) out of the loop.
type BatchStratifier interface {
	Stratifier
	AssignBatch(b *stream.EventBatch, from, to int)
}

// QuantileStratifier bins events into k strata by value quantiles. The
// quantile edges are estimated from a reservoir sample ("bootstrap
// sample") and refreshed every refreshEvery observations, so the
// stratifier adapts to drifting distributions while staying O(1) per
// item between refreshes.
type QuantileStratifier struct {
	k            int
	refreshEvery int64

	reservoir *sampling.Reservoir
	edges     []float64
	seen      int64
	labels    []string
}

// NewQuantile returns a quantile stratifier with k strata, estimating
// edges from a reservoir of the given capacity and refreshing them every
// refreshEvery items. k is clamped to [2, 64].
func NewQuantile(k int, reservoirCap int, refreshEvery int64, rng *xrand.Rand) *QuantileStratifier {
	if k < 2 {
		k = 2
	}
	if k > 64 {
		k = 64
	}
	if reservoirCap < k*8 {
		reservoirCap = k * 8
	}
	if refreshEvery < 1 {
		refreshEvery = 1024
	}
	labels := make([]string, k)
	for i := range labels {
		labels[i] = fmt.Sprintf("q%02d", i)
	}
	return &QuantileStratifier{
		k:            k,
		refreshEvery: refreshEvery,
		reservoir:    sampling.NewReservoir(reservoirCap, rng),
		labels:       labels,
	}
}

var _ BatchStratifier = (*QuantileStratifier)(nil)

// Edges returns the current quantile edges (nil before the first
// refresh).
func (q *QuantileStratifier) Edges() []float64 {
	out := make([]float64, len(q.edges))
	copy(out, q.edges)
	return out
}

// Assign implements Stratifier.
func (q *QuantileStratifier) Assign(e stream.Event) string {
	q.reservoir.Add(e)
	q.seen++
	if q.edges == nil || q.seen%q.refreshEvery == 0 {
		q.refresh()
	}
	// Binary search for the band: edges[i-1] <= v < edges[i].
	v := e.Value
	lo, hi := 0, len(q.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.edges[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return q.labels[lo]
}

// AssignBatch implements BatchStratifier: identical assignments to the
// scalar Assign loop (including the exact refresh schedule), with the
// band labels interned into the batch dictionary once per refresh
// instead of hashed per record.
func (q *QuantileStratifier) AssignBatch(b *stream.EventBatch, from, to int) {
	ids := make([]int32, 0, q.k)
	fill := func() {
		ids = ids[:0]
		for i := 0; i <= len(q.edges); i++ {
			ids = append(ids, b.Intern(q.labels[i]))
		}
	}
	fill()
	for i := from; i < to; i++ {
		q.reservoir.Add(b.EventAt(i))
		q.seen++
		if q.edges == nil || q.seen%q.refreshEvery == 0 {
			bands := len(q.edges)
			q.refresh()
			if len(q.edges) != bands {
				fill()
			}
		}
		v := b.Values[i]
		lo, hi := 0, len(q.edges)
		for lo < hi {
			mid := (lo + hi) / 2
			if q.edges[mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b.Strata[i] = ids[lo]
	}
}

// refresh re-estimates the k-1 interior quantile edges from the
// bootstrap reservoir.
func (q *QuantileStratifier) refresh() {
	items := q.reservoir.Items()
	if len(items) < q.k {
		return
	}
	vals := make([]float64, len(items))
	for i, it := range items {
		vals[i] = it.Value
	}
	sort.Float64s(vals)
	edges := make([]float64, 0, q.k-1)
	for i := 1; i < q.k; i++ {
		idx := i * len(vals) / q.k
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		edge := vals[idx]
		// Keep only edges strictly inside the observed range and strictly
		// increasing: heavily repeated values collapse their bands rather
		// than splitting identical items across strata.
		if edge <= vals[0] || edge >= vals[len(vals)-1] {
			continue
		}
		if len(edges) == 0 || edge > edges[len(edges)-1] {
			edges = append(edges, edge)
		}
	}
	q.edges = edges
}

// KMeansStratifier clusters event values online into k strata. Each
// arriving item moves its nearest centroid toward the item's value with
// a per-cluster learning rate of 1/n (the standard online k-means
// update, equivalent to a running mean). Events that already carry a
// stratum label matching a cluster name pin that item to the labeled
// cluster — the semi-supervised mode of §7.
type KMeansStratifier struct {
	centroids []float64
	seeded    []bool
	counts    []int64
	labels    []string
	byLabel   map[string]int
	rng       *xrand.Rand
}

// NewKMeans returns an online k-means stratifier with k clusters.
// Unlabeled centroids are seeded from the first unassigned observations;
// labeled events seed (and pin) their named cluster directly.
func NewKMeans(k int, rng *xrand.Rand) *KMeansStratifier {
	if k < 2 {
		k = 2
	}
	if k > 64 {
		k = 64
	}
	labels := make([]string, k)
	byLabel := make(map[string]int, k)
	for i := range labels {
		labels[i] = fmt.Sprintf("c%02d", i)
		byLabel[labels[i]] = i
	}
	return &KMeansStratifier{
		centroids: make([]float64, k),
		seeded:    make([]bool, k),
		counts:    make([]int64, k),
		labels:    labels,
		byLabel:   byLabel,
		rng:       rng,
	}
}

var _ BatchStratifier = (*KMeansStratifier)(nil)

// Centroids returns a copy of the seeded centroids, in cluster order.
func (m *KMeansStratifier) Centroids() []float64 {
	out := make([]float64, 0, len(m.centroids))
	for i, c := range m.centroids {
		if m.seeded[i] {
			out = append(out, c)
		}
	}
	return out
}

// Assign implements Stratifier.
func (m *KMeansStratifier) Assign(e stream.Event) string {
	// Semi-supervised: a pre-labeled event seeds and pins its cluster.
	if idx, ok := m.byLabel[e.Stratum]; ok {
		m.seed(idx, e.Value)
		m.update(idx, e.Value)
		return m.labels[idx]
	}
	// Warm-up: seed the first unseeded cluster.
	for idx := range m.centroids {
		if !m.seeded[idx] {
			m.seed(idx, e.Value)
			return m.labels[idx]
		}
	}
	idx := m.nearest(e.Value)
	m.update(idx, e.Value)
	return m.labels[idx]
}

// AssignBatch implements BatchStratifier: the same per-record clustering
// as Assign (pre-labeled records still pin their named cluster, read
// from the batch's existing strata), with cluster labels interned into
// the batch dictionary lazily once each.
func (m *KMeansStratifier) AssignBatch(b *stream.EventBatch, from, to int) {
	ids := make([]int32, len(m.labels))
	for i := range ids {
		ids[i] = -1
	}
	id := func(idx int) int32 {
		if ids[idx] < 0 {
			ids[idx] = b.Intern(m.labels[idx])
		}
		return ids[idx]
	}
	for i := from; i < to; i++ {
		v := b.Values[i]
		if idx, ok := m.byLabel[b.Dict[b.Strata[i]]]; ok {
			m.seed(idx, v)
			m.update(idx, v)
			b.Strata[i] = id(idx)
			continue
		}
		assigned := false
		for idx := range m.centroids {
			if !m.seeded[idx] {
				m.seed(idx, v)
				b.Strata[i] = id(idx)
				assigned = true
				break
			}
		}
		if assigned {
			continue
		}
		idx := m.nearest(v)
		m.update(idx, v)
		b.Strata[i] = id(idx)
	}
}

func (m *KMeansStratifier) seed(idx int, v float64) {
	if m.seeded[idx] {
		return
	}
	// Spread exact duplicates slightly so clusters can separate.
	for i, c := range m.centroids {
		if m.seeded[i] && c == v {
			v += (math.Abs(v) + 1) * 1e-9 * (m.rng.Float64() - 0.5)
		}
	}
	m.centroids[idx] = v
	m.seeded[idx] = true
	m.counts[idx] = 1
}

func (m *KMeansStratifier) nearest(v float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, c := range m.centroids {
		if !m.seeded[i] {
			continue
		}
		d := math.Abs(v - c)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func (m *KMeansStratifier) update(idx int, v float64) {
	m.counts[idx]++
	// Running-mean update with a floor on the learning rate so the
	// stratifier keeps adapting to drift instead of freezing.
	rate := 1 / float64(m.counts[idx])
	if rate < 1e-4 {
		rate = 1e-4
	}
	m.centroids[idx] += rate * (v - m.centroids[idx])
}

// Passthrough is the identity stratifier: it trusts the event's existing
// stratum, mapping empty strata to "default". It is the behaviour of the
// system when the input stream is already stratified by source (§2.3).
type Passthrough struct{}

var _ Stratifier = Passthrough{}

// Assign implements Stratifier.
func (Passthrough) Assign(e stream.Event) string {
	if e.Stratum == "" {
		return "default"
	}
	return e.Stratum
}
