package stratify

import (
	"sort"

	"streamapprox/internal/sampling"
)

// MergeSamples combines stratified samples taken by independent shards
// over *disjoint* slices of the stream (e.g. one broker partition each)
// into a single sample covering the union.
//
// Each shard's per-stratum entry keeps its own (Count, Weight): the
// shards observed disjoint sub-populations, so an entry remains a valid
// independent sub-sample of the union and the estimators in
// internal/estimate already sum variance contributions across entries.
// This is deliberately different from DistributedOASRS.Finish, which
// merges workers sampling the *same* population and therefore must
// concatenate items and recompute one weight from the summed counters.
//
// Entries are ordered by stratum key (ties keep the parts' order) so the
// merged sample is deterministic. Nil parts are skipped.
func MergeSamples(parts ...*sampling.Sample) *sampling.Sample {
	var strata []sampling.StratumSample
	for _, p := range parts {
		if p == nil {
			continue
		}
		strata = append(strata, p.Strata...)
	}
	sort.SliceStable(strata, func(i, j int) bool {
		return strata[i].Stratum < strata[j].Stratum
	})
	return &sampling.Sample{Strata: strata}
}
