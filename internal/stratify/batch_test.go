package stratify

import (
	"testing"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// The batch stratifiers promise bit-identical assignments to the scalar
// loop — same labels per record, same internal state evolution — so a
// serving tier that switches a session between the two paths never
// changes which stratum a record lands in.

func valueStream(n int, seed uint64) []stream.Event {
	rng := xrand.New(seed)
	out := make([]stream.Event, n)
	for i := range out {
		out[i] = stream.Event{Value: rng.Float64()*200 - 100}
	}
	return out
}

// assignBatched runs events through AssignBatch in chunks and returns
// the per-record labels read back from the rewritten batch.
func assignBatched(s BatchStratifier, events []stream.Event, chunk int) []string {
	var got []string
	for i := 0; i < len(events); i += chunk {
		j := i + chunk
		if j > len(events) {
			j = len(events)
		}
		b := stream.GetEventBatch()
		for _, e := range events[i:j] {
			b.AppendEvent(e)
		}
		s.AssignBatch(b, 0, b.Len())
		for k := 0; k < b.Len(); k++ {
			got = append(got, b.Dict[b.Strata[k]])
		}
		b.Release()
	}
	return got
}

func TestQuantileAssignBatchMatchesAssign(t *testing.T) {
	events := valueStream(5000, 11)
	scalar := NewQuantile(4, 64, 256, xrand.New(1))
	var want []string
	for _, e := range events {
		want = append(want, scalar.Assign(e))
	}
	for _, chunk := range []int{1, 7, 100, 4096} {
		vec := NewQuantile(4, 64, 256, xrand.New(1))
		got := assignBatched(vec, events, chunk)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d record %d: batch assigned %q, scalar %q", chunk, i, got[i], want[i])
			}
		}
		se, ve := scalar.Edges(), vec.Edges()
		if len(se) != len(ve) {
			t.Fatalf("chunk %d: edge count diverged: scalar %v, batch %v", chunk, se, ve)
		}
		for i := range se {
			if se[i] != ve[i] {
				t.Fatalf("chunk %d: edges diverged: scalar %v, batch %v", chunk, se, ve)
			}
		}
	}
}

func TestKMeansAssignBatchMatchesAssign(t *testing.T) {
	events := valueStream(5000, 12)
	// Pin a few records to a named cluster — the semi-supervised path
	// must survive batching too.
	for i := 0; i < len(events); i += 97 {
		events[i].Stratum = "c01"
	}
	scalar := NewKMeans(3, xrand.New(2))
	var want []string
	for _, e := range events {
		want = append(want, scalar.Assign(e))
	}
	for _, chunk := range []int{1, 13, 512} {
		vec := NewKMeans(3, xrand.New(2))
		got := assignBatched(vec, events, chunk)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d record %d: batch assigned %q, scalar %q", chunk, i, got[i], want[i])
			}
		}
		sc, vc := scalar.Centroids(), vec.Centroids()
		if len(sc) != len(vc) {
			t.Fatalf("chunk %d: centroid count diverged: %v vs %v", chunk, sc, vc)
		}
		for i := range sc {
			if sc[i] != vc[i] {
				t.Fatalf("chunk %d: centroids diverged: %v vs %v", chunk, sc, vc)
			}
		}
	}
}
