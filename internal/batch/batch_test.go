package batch

import (
	"sync/atomic"
	"testing"
	"time"

	"streamapprox/internal/stream"
)

func newTestPool(t *testing.T, workers int) *Pool {
	t.Helper()
	p := NewPool(workers)
	t.Cleanup(p.Close)
	return p
}

func seqEvents(n int) []stream.Event {
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Event, n)
	for i := range out {
		out[i] = stream.Event{
			Stratum: string(rune('a' + i%3)),
			Value:   float64(i),
			Time:    base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := newTestPool(t, 4)
	var n atomic.Int64
	p.RunN(100, func(int) { n.Add(1) })
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolSizeClamp(t *testing.T) {
	p := newTestPool(t, 0)
	if p.Size() != 1 {
		t.Errorf("Size = %d, want 1", p.Size())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestPoolStageBarrier(t *testing.T) {
	p := newTestPool(t, 4)
	var stage1 atomic.Int64
	p.RunN(8, func(int) {
		time.Sleep(time.Millisecond)
		stage1.Add(1)
	})
	// Run returns only after all tasks completed.
	if stage1.Load() != 8 {
		t.Errorf("stage barrier violated: %d/8 tasks done at Run return", stage1.Load())
	}
}

func TestDatasetCountAndCollect(t *testing.T) {
	p := newTestPool(t, 4)
	d := NewDataset(p, seqEvents(100))
	if d.Count() != 100 {
		t.Errorf("Count = %d", d.Count())
	}
	if d.NumPartitions() != 4 {
		t.Errorf("NumPartitions = %d", d.NumPartitions())
	}
	if got := len(d.Collect()); got != 100 {
		t.Errorf("Collect len = %d", got)
	}
}

func TestDatasetMap(t *testing.T) {
	p := newTestPool(t, 3)
	d := NewDataset(p, seqEvents(10)).Map(func(e stream.Event) stream.Event {
		e.Value *= 2
		return e
	})
	var sum float64
	for _, e := range d.Collect() {
		sum += e.Value
	}
	if sum != 90 { // 2 * (0+..+9)
		t.Errorf("sum after map = %v, want 90", sum)
	}
}

func TestDatasetFilter(t *testing.T) {
	p := newTestPool(t, 3)
	d := NewDataset(p, seqEvents(10)).Filter(func(e stream.Event) bool {
		return e.Value >= 5
	})
	if d.Count() != 5 {
		t.Errorf("filtered count = %d, want 5", d.Count())
	}
}

func TestGroupByKeyColocatesStrata(t *testing.T) {
	p := newTestPool(t, 4)
	d := NewDataset(p, seqEvents(99)).GroupByKey()
	if d.Count() != 99 {
		t.Fatalf("shuffle lost events: %d", d.Count())
	}
	// Each stratum must live in exactly one partition.
	where := map[string]map[int]bool{}
	for i := 0; i < d.NumPartitions(); i++ {
		for _, e := range d.Partition(i) {
			if where[e.Stratum] == nil {
				where[e.Stratum] = map[int]bool{}
			}
			where[e.Stratum][i] = true
		}
	}
	for s, parts := range where {
		if len(parts) != 1 {
			t.Errorf("stratum %q spread over %d partitions", s, len(parts))
		}
	}
}

func TestReduceByKey(t *testing.T) {
	p := newTestPool(t, 4)
	events := []stream.Event{
		{Stratum: "x", Value: 1}, {Stratum: "x", Value: 2},
		{Stratum: "y", Value: 10}, {Stratum: "y", Value: 20}, {Stratum: "y", Value: 30},
	}
	got := NewDataset(p, events).ReduceByKey(func(a, b float64) float64 { return a + b })
	if got["x"] != 3 || got["y"] != 60 {
		t.Errorf("ReduceByKey = %v", got)
	}
}

func TestDatasetSum(t *testing.T) {
	p := newTestPool(t, 4)
	if got := NewDataset(p, seqEvents(100)).Sum(); got != 4950 {
		t.Errorf("Sum = %v, want 4950", got)
	}
}

func TestAggregateGeneric(t *testing.T) {
	p := newTestPool(t, 2)
	d := NewDataset(p, seqEvents(10))
	maxVal := Aggregate(d, func() float64 { return -1 },
		func(acc float64, e stream.Event) float64 {
			if e.Value > acc {
				return e.Value
			}
			return acc
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	if maxVal != 9 {
		t.Errorf("max = %v, want 9", maxVal)
	}
}

func TestForeachPartitionCoversAll(t *testing.T) {
	p := newTestPool(t, 4)
	d := NewDataset(p, seqEvents(50))
	var n atomic.Int64
	d.ForeachPartition(func(_ int, events []stream.Event) {
		n.Add(int64(len(events)))
	})
	if n.Load() != 50 {
		t.Errorf("visited %d events", n.Load())
	}
}

func TestBatcherCutsAtInterval(t *testing.T) {
	b := NewBatcher(10 * time.Millisecond)
	var batches []Batch
	for _, e := range seqEvents(35) { // 1 event/ms
		batches = append(batches, b.Add(e)...)
	}
	batches = append(batches, b.Flush()...)
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4", len(batches))
	}
	for i, bt := range batches[:3] {
		if len(bt.Events) != 10 {
			t.Errorf("batch %d has %d events, want 10", i, len(bt.Events))
		}
		if bt.End.Sub(bt.Start) != 10*time.Millisecond {
			t.Errorf("batch %d span %v", i, bt.End.Sub(bt.Start))
		}
	}
	if len(batches[3].Events) != 5 {
		t.Errorf("final partial batch has %d events, want 5", len(batches[3].Events))
	}
}

func TestBatcherEmptyFlush(t *testing.T) {
	b := NewBatcher(time.Second)
	if got := b.Flush(); got != nil {
		t.Errorf("empty flush = %v", got)
	}
}

func TestBatcherHandlesGaps(t *testing.T) {
	b := NewBatcher(10 * time.Millisecond)
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	b.Add(stream.Event{Time: base, Value: 1})
	// A gap of one hour must not generate 360000 empty batches.
	fired := b.Add(stream.Event{Time: base.Add(time.Hour), Value: 2})
	if len(fired) > 200 {
		t.Errorf("gap produced %d batches; empty-interval skipping broken", len(fired))
	}
	total := 0
	for _, bt := range fired {
		total += len(bt.Events)
	}
	if total != 1 {
		t.Errorf("events in fired batches = %d, want 1", total)
	}
}

func TestBatcherClampsBadInterval(t *testing.T) {
	b := NewBatcher(0)
	if b.Interval() != time.Millisecond {
		t.Errorf("Interval = %v", b.Interval())
	}
}

func TestSplit(t *testing.T) {
	src := stream.NewSliceSource(seqEvents(100))
	batches := Split(src, 25*time.Millisecond)
	total := 0
	for _, bt := range batches {
		total += len(bt.Events)
	}
	if total != 100 {
		t.Errorf("Split lost events: %d/100", total)
	}
	if len(batches) != 4 {
		t.Errorf("got %d batches, want 4", len(batches))
	}
}
