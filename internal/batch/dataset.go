package batch

import (
	"hash/fnv"

	"streamapprox/internal/stream"
)

// Dataset is an immutable, partitioned collection of events — the RDD
// analogue. Transformations return new Datasets; the input partitions are
// never mutated. All transformations execute as data-parallel stages on
// the owning pool, one task per partition.
type Dataset struct {
	pool       *Pool
	partitions [][]stream.Event
}

// NewDataset forms a Dataset from a materialized batch, splitting it
// round-robin into as many partitions as the pool has workers. This is
// the "forming RDDs" step whose cost StreamApprox's pre-RDD sampling
// avoids paying for discarded items.
func NewDataset(pool *Pool, events []stream.Event) *Dataset {
	return &Dataset{
		pool:       pool,
		partitions: stream.PartitionRoundRobin(events, pool.Size()),
	}
}

// FromPartitions wraps pre-partitioned data without copying.
func FromPartitions(pool *Pool, partitions [][]stream.Event) *Dataset {
	return &Dataset{pool: pool, partitions: partitions}
}

// NumPartitions returns the partition count.
func (d *Dataset) NumPartitions() int { return len(d.partitions) }

// Count returns the total number of events.
func (d *Dataset) Count() int {
	total := 0
	for _, p := range d.partitions {
		total += len(p)
	}
	return total
}

// Partition returns partition i (not a copy; callers must not mutate).
func (d *Dataset) Partition(i int) []stream.Event { return d.partitions[i] }

// Collect gathers all partitions into one slice, in partition order.
func (d *Dataset) Collect() []stream.Event {
	out := make([]stream.Event, 0, d.Count())
	for _, p := range d.partitions {
		out = append(out, p...)
	}
	return out
}

// Map applies fn to every event in parallel (narrow dependency, no
// shuffle).
func (d *Dataset) Map(fn func(stream.Event) stream.Event) *Dataset {
	out := make([][]stream.Event, len(d.partitions))
	d.pool.RunN(len(d.partitions), func(i int) {
		src := d.partitions[i]
		dst := make([]stream.Event, len(src))
		for j, e := range src {
			dst[j] = fn(e)
		}
		out[i] = dst
	})
	return FromPartitions(d.pool, out)
}

// Filter keeps the events for which fn returns true (narrow dependency).
func (d *Dataset) Filter(fn func(stream.Event) bool) *Dataset {
	out := make([][]stream.Event, len(d.partitions))
	d.pool.RunN(len(d.partitions), func(i int) {
		src := d.partitions[i]
		dst := make([]stream.Event, 0, len(src))
		for _, e := range src {
			if fn(e) {
				dst = append(dst, e)
			}
		}
		out[i] = dst
	})
	return FromPartitions(d.pool, out)
}

// GroupByKey shuffles events so that all events of one stratum land in
// one partition (hash partitioning by stratum). This is the expensive
// wide dependency underlying Spark's sampleByKey: a full map-side
// partition pass, a cross-partition exchange, and a stage barrier.
func (d *Dataset) GroupByKey() *Dataset {
	n := len(d.partitions)
	// Map side: each task splits its partition into n outboxes.
	outboxes := make([][][]stream.Event, n)
	d.pool.RunN(n, func(i int) {
		boxes := make([][]stream.Event, n)
		for _, e := range d.partitions[i] {
			dst := hashStratum(e.Stratum, n)
			boxes[dst] = append(boxes[dst], e)
		}
		outboxes[i] = boxes
	})
	// The stage barrier is implicit in RunN returning.
	// Reduce side: each task concatenates its inboxes.
	out := make([][]stream.Event, n)
	d.pool.RunN(n, func(i int) {
		var inbox []stream.Event
		for from := 0; from < n; from++ {
			inbox = append(inbox, outboxes[from][i]...)
		}
		out[i] = inbox
	})
	return FromPartitions(d.pool, out)
}

// ReduceByKey aggregates values per stratum: first a map-side combine
// within each partition, then a shuffle of the combined pairs, then the
// final reduce. fn must be associative and commutative.
func (d *Dataset) ReduceByKey(fn func(a, b float64) float64) map[string]float64 {
	n := len(d.partitions)
	partials := make([]map[string]float64, n)
	d.pool.RunN(n, func(i int) {
		local := make(map[string]float64)
		seen := make(map[string]bool)
		for _, e := range d.partitions[i] {
			if !seen[e.Stratum] {
				local[e.Stratum] = e.Value
				seen[e.Stratum] = true
				continue
			}
			local[e.Stratum] = fn(local[e.Stratum], e.Value)
		}
		partials[i] = local
	})
	// Driver-side final merge (small: one entry per stratum per partition).
	out := make(map[string]float64)
	seen := make(map[string]bool)
	for _, local := range partials {
		for k, v := range local {
			if !seen[k] {
				out[k] = v
				seen[k] = true
				continue
			}
			out[k] = fn(out[k], v)
		}
	}
	return out
}

// Aggregate folds every partition with seqOp and merges the per-partition
// results with combOp on the driver.
func Aggregate[T any](d *Dataset, zero func() T, seqOp func(T, stream.Event) T, combOp func(T, T) T) T {
	n := len(d.partitions)
	partials := make([]T, n)
	d.pool.RunN(n, func(i int) {
		acc := zero()
		for _, e := range d.partitions[i] {
			acc = seqOp(acc, e)
		}
		partials[i] = acc
	})
	acc := zero()
	for _, p := range partials {
		acc = combOp(acc, p)
	}
	return acc
}

// Sum returns the sum of all event values — the simplest data-parallel
// job the experiments run.
func (d *Dataset) Sum() float64 {
	return Aggregate(d, func() float64 { return 0 },
		func(acc float64, e stream.Event) float64 { return acc + e.Value },
		func(a, b float64) float64 { return a + b })
}

// ForeachPartition runs fn over each partition in parallel; fn receives
// the partition index and its events. Any shared state inside fn must be
// synchronized by the caller.
func (d *Dataset) ForeachPartition(fn func(i int, events []stream.Event)) {
	d.pool.RunN(len(d.partitions), func(i int) {
		fn(i, d.partitions[i])
	})
}

func hashStratum(stratum string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(stratum))
	return int(h.Sum32()) % n
}
