// Package batch implements the batched stream processing substrate
// (§2.2): the micro-batch model of Apache Spark Streaming. An input
// stream is cut into batches at a fixed batch interval; each batch
// becomes a partitioned, RDD-like Dataset; and data-parallel jobs run
// over the partitions on a worker pool.
//
// The package is the substrate under three of the six evaluated systems:
// native Spark, Spark-based SRS/STS baselines (which sample after the
// Dataset is formed) and Spark-based StreamApprox (which samples before
// Dataset formation, the ApproxKafkaRDD analogue).
package batch

import (
	"sync"
)

// Pool is a fixed-size worker pool executing partition tasks. It models a
// cluster worker set: Workers = nodes × coresPerNode. Tasks submitted via
// Run are executed by exactly the pool's goroutines, so engine
// parallelism — and thus the scalability experiments (Fig. 6a) — is
// controlled by pool size rather than by GOMAXPROCS.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
	size  int
}

// NewPool starts a pool with the given number of worker goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		tasks: make(chan func()),
		size:  workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

func (p *Pool) worker() {
	defer p.wg.Done()
	for task := range p.tasks {
		task()
	}
}

// Run executes the tasks on the pool and blocks until all complete — one
// Spark "stage" with its implicit barrier.
func (p *Pool) Run(tasks []func()) {
	var stage sync.WaitGroup
	stage.Add(len(tasks))
	for _, task := range tasks {
		task := task
		p.tasks <- func() {
			defer stage.Done()
			task()
		}
	}
	stage.Wait()
}

// RunN is shorthand for running fn(i) for i in [0, n) as one stage.
func (p *Pool) RunN(n int, fn func(i int)) {
	tasks := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() { fn(i) }
	}
	p.Run(tasks)
}

// Close shuts the pool down and waits for workers to exit. Tasks
// submitted after Close panic; submit nothing after closing. Close is
// idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		close(p.tasks)
		p.wg.Wait()
	})
}
