package batch

import (
	"time"

	"streamapprox/internal/stream"
)

// Batch is one micro-batch: the events whose times fall in
// [Start, Start+Interval).
type Batch struct {
	Start  time.Time
	End    time.Time
	Events []stream.Event
}

// Batcher cuts a time-ordered event stream into micro-batches at a fixed
// batch interval — the batch generator in Figure 3. Each batch is then
// turned into a Dataset by the engine.
//
// Batcher is event-time driven: a batch closes when the first event at or
// past its end arrives. This keeps experiments deterministic and lets the
// harness replay historical datasets at full speed, which is how the
// paper measures saturated throughput (§6.1).
type Batcher struct {
	interval time.Duration
	cur      *Batch
}

// NewBatcher returns a batcher with the given batch interval (must be
// positive; clamped to 1ms otherwise).
func NewBatcher(interval time.Duration) *Batcher {
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &Batcher{interval: interval}
}

// Interval returns the batch interval.
func (b *Batcher) Interval() time.Duration { return b.interval }

// Add routes an event; it returns the batches completed by this event's
// timestamp (possibly several if the stream has gaps), oldest first.
func (b *Batcher) Add(e stream.Event) []Batch {
	var fired []Batch
	if b.cur == nil {
		start := e.Time.Truncate(b.interval)
		b.cur = &Batch{Start: start, End: start.Add(b.interval)}
	}
	for !e.Time.Before(b.cur.End) {
		fired = append(fired, *b.cur)
		start := b.cur.End
		b.cur = &Batch{Start: start, End: start.Add(b.interval)}
		// Skip empty intervals quickly when the stream has a gap.
		if e.Time.Sub(b.cur.Start) > 100*b.interval {
			start = e.Time.Truncate(b.interval)
			b.cur = &Batch{Start: start, End: start.Add(b.interval)}
		}
	}
	b.cur.Events = append(b.cur.Events, e)
	return fired
}

// Flush closes and returns the in-progress batch, if any.
func (b *Batcher) Flush() []Batch {
	if b.cur == nil || len(b.cur.Events) == 0 {
		b.cur = nil
		return nil
	}
	out := []Batch{*b.cur}
	b.cur = nil
	return out
}

// Split materializes a whole source into micro-batches — the offline path
// used by the experiment harness.
func Split(src stream.Source, interval time.Duration) []Batch {
	b := NewBatcher(interval)
	var out []Batch
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, b.Add(e)...)
	}
	return append(out, b.Flush()...)
}
