package query

import (
	"math"
	"testing"

	"streamapprox/internal/estimate"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
)

// A stratum-blind (SRS-style) sample must still yield per-stratum group
// estimates, derived from the items' own strata with expansion counts.
func TestGroupByOnMixedStrataSample(t *testing.T) {
	// 4 items sampled out of 40 (weight 10): 3 tcp, 1 udp.
	s := &sampling.Sample{Strata: []sampling.StratumSample{{
		Stratum: sampling.SRSPseudoStratum,
		Items: []stream.Event{
			{Stratum: "tcp", Value: 100},
			{Stratum: "tcp", Value: 200},
			{Stratum: "tcp", Value: 300},
			{Stratum: "udp", Value: 50},
		},
		Count:  40,
		Weight: 10,
	}}}

	sums := NewGroupBySum(estimate.Conf95).Evaluate(s)
	if len(sums.Groups) != 2 {
		t.Fatalf("groups = %v", sums.Groups)
	}
	// tcp sum estimate = (100+200+300) * 10 = 6000.
	if got := sums.Groups["tcp"].Value; got != 6000 {
		t.Errorf("tcp sum = %v, want 6000", got)
	}
	if got := sums.Groups["udp"].Value; got != 500 {
		t.Errorf("udp sum = %v, want 500", got)
	}

	counts := NewGroupByCount(estimate.Conf95).Evaluate(s)
	// Expansion estimator: tcp count ≈ 3*10 = 30, udp ≈ 10.
	if got := counts.Groups["tcp"].Value; got != 30 {
		t.Errorf("tcp count = %v, want 30", got)
	}
	if got := counts.Groups["udp"].Value; got != 10 {
		t.Errorf("udp count = %v, want 10", got)
	}

	means := NewGroupByMean(estimate.Conf95).Evaluate(s)
	if got := means.Groups["tcp"].Value; math.Abs(got-200) > 1e-9 {
		t.Errorf("tcp mean = %v, want 200", got)
	}
}

// A rare stratum entirely absent from the SRS sample must be absent from
// the groups (the failure mode Fig. 7 visualizes).
func TestGroupByMixedSampleMissesAbsentStratum(t *testing.T) {
	s := &sampling.Sample{Strata: []sampling.StratumSample{{
		Stratum: sampling.SRSPseudoStratum,
		Items:   []stream.Event{{Stratum: "tcp", Value: 1}},
		Count:   1000,
		Weight:  1000,
	}}}
	res := NewGroupBySum(estimate.Conf95).Evaluate(s)
	if _, ok := res.Groups["icmp"]; ok {
		t.Error("absent stratum conjured from nowhere")
	}
	if len(res.Groups) != 1 {
		t.Errorf("groups = %v", res.Groups)
	}
}
