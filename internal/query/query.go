// Package query defines the approximate linear queries StreamApprox
// supports (§3.2): SUM, COUNT, MEAN, histograms, and per-stratum group-by
// aggregates, all evaluated over weighted samples with rigorous error
// bounds from internal/estimate.
//
// A Query is evaluated once per sliding-window interval (Algorithm 2):
// the engine samples the interval's items, and the query turns the
// weighted sample into a Result.
package query

import (
	"fmt"
	"sort"

	"streamapprox/internal/estimate"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
)

// Kind enumerates the built-in aggregate kinds.
type Kind int

// Supported aggregates.
const (
	KindSum Kind = iota + 1
	KindCount
	KindMean
	KindHistogram
)

// String returns the aggregate's name.
func (k Kind) String() string {
	switch k {
	case KindSum:
		return "sum"
	case KindCount:
		return "count"
	case KindMean:
		return "mean"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result is the output of one query evaluation over one window: the
// overall estimate, plus per-group estimates for group-by queries, plus
// per-bucket estimates for histogram queries.
type Result struct {
	Kind    Kind
	Overall estimate.Estimate
	Groups  map[string]estimate.Estimate
	Buckets []HistogramBucket
}

// Query evaluates an aggregate over one interval's weighted sample.
type Query interface {
	// Name identifies the query in logs and experiment output.
	Name() string
	// Evaluate computes the approximate result for the sample.
	Evaluate(s *sampling.Sample) Result
}

// Aggregate is a whole-stream aggregate (SUM/COUNT/MEAN over all items
// from all sub-streams).
type Aggregate struct {
	kind Kind
	conf estimate.Confidence
}

// NewSum returns a query computing the approximate sum of all items.
func NewSum(conf estimate.Confidence) *Aggregate { return &Aggregate{kind: KindSum, conf: conf} }

// NewCount returns a query computing the total item count.
func NewCount(conf estimate.Confidence) *Aggregate { return &Aggregate{kind: KindCount, conf: conf} }

// NewMean returns a query computing the approximate mean of all items.
func NewMean(conf estimate.Confidence) *Aggregate { return &Aggregate{kind: KindMean, conf: conf} }

var _ Query = (*Aggregate)(nil)

// Name implements Query.
func (a *Aggregate) Name() string { return a.kind.String() }

// Evaluate implements Query.
func (a *Aggregate) Evaluate(s *sampling.Sample) Result {
	var est estimate.Estimate
	switch a.kind {
	case KindSum:
		est = estimate.Sum(s, a.conf)
	case KindCount:
		est = estimate.Count(s, a.conf)
	default:
		est = estimate.Mean(s, a.conf)
	}
	return Result{Kind: a.kind, Overall: est}
}

// GroupBy aggregates per stratum: e.g. "total traffic size per protocol"
// (§6.2) or "mean trip distance per borough" (§6.3). Each group's estimate
// is computed over the single-stratum restriction of the sample.
type GroupBy struct {
	kind Kind
	conf estimate.Confidence
}

// NewGroupBySum returns a per-stratum SUM query.
func NewGroupBySum(conf estimate.Confidence) *GroupBy { return &GroupBy{kind: KindSum, conf: conf} }

// NewGroupByMean returns a per-stratum MEAN query.
func NewGroupByMean(conf estimate.Confidence) *GroupBy { return &GroupBy{kind: KindMean, conf: conf} }

// NewGroupByCount returns a per-stratum COUNT query.
func NewGroupByCount(conf estimate.Confidence) *GroupBy { return &GroupBy{kind: KindCount, conf: conf} }

var _ Query = (*GroupBy)(nil)

// Name implements Query.
func (g *GroupBy) Name() string { return "groupby-" + g.kind.String() }

// Evaluate implements Query.
//
// Groups are formed from the *items'* strata, not from the sample-entry
// keys. For stratified samplers the two coincide, but a stratum-blind
// sampler (simple random sampling) reports one pseudo-stratum holding a
// mixed-strata sample; its per-group population counts are unknown and
// estimated by the expansion estimator (weight × items seen in the
// group), which is exactly why SRS group estimates are noisier and can
// miss rare groups entirely (§5.7).
//
// A sample may carry several entries with the same stratum key (one per
// micro-batch or slide segment); all entries of a key are evaluated
// together as independent sub-samples of that group.
func (g *GroupBy) Evaluate(s *sampling.Sample) Result {
	byKey := make(map[string][]sampling.StratumSample, len(s.Strata))
	for i := range s.Strata {
		st := &s.Strata[i]
		if itemsMatchKey(st) {
			byKey[st.Stratum] = append(byKey[st.Stratum], *st)
			continue
		}
		// Mixed-strata entry: explode by item stratum with expansion
		// counts.
		for key, items := range groupItems(st.Items) {
			byKey[key] = append(byKey[key], sampling.StratumSample{
				Stratum: key,
				Items:   items,
				Count:   int64(st.Weight*float64(len(items)) + 0.5),
				Weight:  st.Weight,
			})
		}
	}
	groups := make(map[string]estimate.Estimate, len(byKey))
	for key, strata := range byKey {
		sub := &sampling.Sample{Strata: strata}
		switch g.kind {
		case KindSum:
			groups[key] = estimate.Sum(sub, g.conf)
		case KindCount:
			groups[key] = estimate.Count(sub, g.conf)
		default:
			groups[key] = estimate.Mean(sub, g.conf)
		}
	}
	var overall estimate.Estimate
	switch g.kind {
	case KindSum:
		overall = estimate.Sum(s, g.conf)
	case KindCount:
		overall = estimate.Count(s, g.conf)
	default:
		overall = estimate.Mean(s, g.conf)
	}
	return Result{Kind: g.kind, Overall: overall, Groups: groups}
}

// itemsMatchKey reports whether every item in the entry belongs to the
// entry's stratum key (true for stratified samplers).
func itemsMatchKey(st *sampling.StratumSample) bool {
	for i := range st.Items {
		if st.Items[i].Stratum != st.Stratum {
			return false
		}
	}
	return true
}

// groupItems partitions items by their stratum.
func groupItems(items []stream.Event) map[string][]stream.Event {
	out := make(map[string][]stream.Event)
	for _, it := range items {
		out[it.Stratum] = append(out[it.Stratum], it)
	}
	return out
}

// HistogramBucket is one bucket of an approximate histogram.
type HistogramBucket struct {
	Lo, Hi float64
	Count  estimate.Estimate
}

// Histogram estimates the count of items per value bucket — a family of
// indicator-function linear queries (§3.2).
type Histogram struct {
	edges []float64
	conf  estimate.Confidence
}

// NewHistogram returns a histogram query over the buckets defined by the
// sorted edge values: bucket i covers [edges[i], edges[i+1]).
func NewHistogram(edges []float64, conf estimate.Confidence) *Histogram {
	sorted := make([]float64, len(edges))
	copy(sorted, edges)
	sort.Float64s(sorted)
	return &Histogram{edges: sorted, conf: conf}
}

var _ Query = (*Histogram)(nil)

// Name implements Query.
func (h *Histogram) Name() string { return "histogram" }

// Evaluate implements Query: the overall estimate is the total COUNT and
// Buckets carries the per-bucket counts.
func (h *Histogram) Evaluate(s *sampling.Sample) Result {
	return Result{
		Kind:    KindHistogram,
		Overall: estimate.Count(s, h.conf),
		Buckets: h.Buckets(s),
	}
}

// Buckets estimates per-bucket item counts in the original stream.
func (h *Histogram) Buckets(s *sampling.Sample) []HistogramBucket {
	if len(h.edges) < 2 {
		return nil
	}
	out := make([]HistogramBucket, len(h.edges)-1)
	for i := range out {
		lo, hi := h.edges[i], h.edges[i+1]
		out[i] = HistogramBucket{
			Lo: lo,
			Hi: hi,
			Count: estimate.LinearFunc(s, func(v float64) float64 {
				if v >= lo && v < hi {
					return 1
				}
				return 0
			}, h.conf),
		}
	}
	return out
}
