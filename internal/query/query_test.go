package query

import (
	"math"
	"testing"

	"streamapprox/internal/estimate"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
)

func fullSample(strata map[string][]float64) *sampling.Sample {
	var s sampling.Sample
	for key, vals := range strata {
		evs := make([]stream.Event, len(vals))
		for i, v := range vals {
			evs[i] = stream.Event{Stratum: key, Value: v}
		}
		s.Strata = append(s.Strata, sampling.StratumSample{
			Stratum: key, Items: evs, Count: int64(len(vals)), Weight: 1,
		})
	}
	return &s
}

func TestAggregateSum(t *testing.T) {
	q := NewSum(estimate.Conf95)
	if q.Name() != "sum" {
		t.Errorf("Name = %q", q.Name())
	}
	res := q.Evaluate(fullSample(map[string][]float64{"a": {1, 2}, "b": {3}}))
	if res.Overall.Value != 6 {
		t.Errorf("sum = %v, want 6", res.Overall.Value)
	}
	if res.Kind != KindSum {
		t.Errorf("Kind = %v", res.Kind)
	}
}

func TestAggregateCount(t *testing.T) {
	res := NewCount(estimate.Conf95).Evaluate(fullSample(map[string][]float64{"a": {1, 2, 3}}))
	if res.Overall.Value != 3 {
		t.Errorf("count = %v", res.Overall.Value)
	}
}

func TestAggregateMean(t *testing.T) {
	res := NewMean(estimate.Conf95).Evaluate(fullSample(map[string][]float64{"a": {2, 4}, "b": {6}}))
	if res.Overall.Value != 4 {
		t.Errorf("mean = %v, want 4", res.Overall.Value)
	}
}

func TestGroupByMeanPerStratum(t *testing.T) {
	q := NewGroupByMean(estimate.Conf95)
	if q.Name() != "groupby-mean" {
		t.Errorf("Name = %q", q.Name())
	}
	res := q.Evaluate(fullSample(map[string][]float64{"tcp": {10, 20}, "udp": {100}}))
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}
	if res.Groups["tcp"].Value != 15 || res.Groups["udp"].Value != 100 {
		t.Errorf("group means = %v", res.Groups)
	}
	if math.Abs(res.Overall.Value-130.0/3) > 1e-9 {
		t.Errorf("overall mean = %v", res.Overall.Value)
	}
}

func TestGroupBySumAndCount(t *testing.T) {
	s := fullSample(map[string][]float64{"a": {1, 2}, "b": {5}})
	sums := NewGroupBySum(estimate.Conf95).Evaluate(s)
	if sums.Groups["a"].Value != 3 || sums.Groups["b"].Value != 5 {
		t.Errorf("group sums = %v", sums.Groups)
	}
	counts := NewGroupByCount(estimate.Conf95).Evaluate(s)
	if counts.Groups["a"].Value != 2 || counts.Groups["b"].Value != 1 {
		t.Errorf("group counts = %v", counts.Groups)
	}
}

func TestGroupByWeightedSample(t *testing.T) {
	// 2 items sampled out of 10, weight 5: group sum estimate must scale.
	s := &sampling.Sample{Strata: []sampling.StratumSample{{
		Stratum: "a",
		Items: []stream.Event{
			{Stratum: "a", Value: 4}, {Stratum: "a", Value: 6},
		},
		Count:  10,
		Weight: 5,
	}}}
	res := NewGroupBySum(estimate.Conf95).Evaluate(s)
	if res.Groups["a"].Value != 50 {
		t.Errorf("weighted group sum = %v, want 50", res.Groups["a"].Value)
	}
	if res.Groups["a"].Bound <= 0 {
		t.Error("partial sample should carry a positive error bound")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 20, 30}, estimate.Conf95)
	if h.Name() != "histogram" {
		t.Errorf("Name = %q", h.Name())
	}
	s := fullSample(map[string][]float64{"a": {1, 5, 15, 25, 25}})
	buckets := h.Buckets(s)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(buckets))
	}
	wants := []float64{2, 1, 2}
	for i, b := range buckets {
		if b.Count.Value != wants[i] {
			t.Errorf("bucket [%v,%v) count = %v, want %v", b.Lo, b.Hi, b.Count.Value, wants[i])
		}
	}
}

func TestHistogramUnsortedEdges(t *testing.T) {
	h := NewHistogram([]float64{30, 0, 10}, estimate.Conf95)
	buckets := h.Buckets(fullSample(map[string][]float64{"a": {5}}))
	if len(buckets) != 2 || buckets[0].Lo != 0 {
		t.Errorf("edges not sorted: %+v", buckets)
	}
}

func TestHistogramDegenerateEdges(t *testing.T) {
	h := NewHistogram([]float64{1}, estimate.Conf95)
	if got := h.Buckets(fullSample(map[string][]float64{"a": {5}})); got != nil {
		t.Errorf("single-edge histogram should be nil, got %v", got)
	}
}

func TestKindString(t *testing.T) {
	if KindSum.String() != "sum" || KindCount.String() != "count" || KindMean.String() != "mean" {
		t.Error("Kind.String broken")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind = %q", Kind(42).String())
	}
}
