package query

import (
	"math"
	"testing"

	"streamapprox/internal/estimate"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
)

// When a window combines several per-batch sub-samples, the same stratum
// appears in multiple entries; GroupBy must merge them.
func TestGroupByMergesDuplicateStrata(t *testing.T) {
	s := &sampling.Sample{Strata: []sampling.StratumSample{
		{
			Stratum: "tcp",
			Items:   []stream.Event{{Stratum: "tcp", Value: 10}},
			Count:   2, Weight: 2,
		},
		{
			Stratum: "tcp",
			Items:   []stream.Event{{Stratum: "tcp", Value: 30}},
			Count:   3, Weight: 3,
		},
		{
			Stratum: "udp",
			Items:   []stream.Event{{Stratum: "udp", Value: 5}},
			Count:   1, Weight: 1,
		},
	}}
	res := NewGroupBySum(estimate.Conf95).Evaluate(s)
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}
	// tcp sum = 10*2 + 30*3 = 110.
	if got := res.Groups["tcp"].Value; got != 110 {
		t.Errorf("tcp sum = %v, want 110", got)
	}
	counts := NewGroupByCount(estimate.Conf95).Evaluate(s)
	if got := counts.Groups["tcp"].Value; got != 5 {
		t.Errorf("tcp count = %v, want 5", got)
	}
	means := NewGroupByMean(estimate.Conf95).Evaluate(s)
	// tcp mean = weighted by entry counts: (2/5)*10 + (3/5)*30 = 22.
	if got := means.Groups["tcp"].Value; math.Abs(got-22) > 1e-9 {
		t.Errorf("tcp mean = %v, want 22", got)
	}
}
