package experiment

import (
	"time"

	"streamapprox/internal/core"
	"streamapprox/internal/estimate"
	"streamapprox/internal/query"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

// netflowDataset synthesizes the §6.2 case-study input: the query is
// "total size of TCP/UDP/ICMP traffic per window", i.e. group-by-sum over
// the protocol strata.
func netflowDataset(o Options) ([]stream.Event, query.Query) {
	rng := xrand.New(o.Seed)
	n := o.scaled(150000)
	return workload.NetFlowEvents(rng, n, 30*time.Second), query.NewGroupBySum(estimate.Conf95)
}

// taxiDataset synthesizes the §6.3 case-study input: the query is
// "average trip distance per start borough", i.e. group-by-mean.
func taxiDataset(o Options) ([]stream.Event, query.Query) {
	rng := xrand.New(o.Seed)
	n := o.scaled(150000)
	return workload.TaxiEvents(rng, n, 30*time.Second), query.NewGroupByMean(estimate.Conf95)
}

// caseStudyThroughput regenerates the "(a) Throughput vs sampling
// fraction" panel shared by Figs. 8 and 9.
func caseStudyThroughput(o Options, id, title string, events []stream.Event, q query.Query) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"system", "fraction", "throughput(items/s)"},
	}
	for _, frac := range []float64{0.10, 0.20, 0.40, 0.60, 0.80} {
		for _, sys := range samplingSystems() {
			tput, _, _, err := runOnce(core.Config{
				System: sys, Fraction: frac, Workers: o.Workers, Seed: o.Seed, Query: q,
			}, events, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), fmtFraction(frac), fmtThroughput(tput)})
		}
	}
	for _, sys := range []core.System{core.NativeFlink, core.NativeSpark} {
		tput, _, _, err := runOnce(core.Config{
			System: sys, Workers: o.Workers, Seed: o.Seed, Query: q,
		}, events, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{sys.String(), "native", fmtThroughput(tput)})
	}
	return t, nil
}

// caseStudyAccuracy regenerates the "(b) Accuracy loss vs sampling
// fraction" panel shared by Figs. 8 and 9.
func caseStudyAccuracy(o Options, id, title string, events []stream.Event, q query.Query) (*Table, error) {
	cfg := core.Config{Workers: o.Workers, Seed: o.Seed, Query: q}
	truth := core.GroundTruth(cfg, events)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"system", "fraction", "accuracy-loss"},
	}
	for _, frac := range []float64{0.10, 0.20, 0.40, 0.60, 0.80, 0.90} {
		for _, sys := range samplingSystems() {
			_, loss, _, err := runOnce(core.Config{
				System: sys, Fraction: frac, Workers: o.Workers, Seed: o.Seed, Query: q,
			}, events, truth)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), fmtFraction(frac), fmtLoss(loss)})
		}
	}
	return t, nil
}

// Fig8a: network-traffic throughput vs sampling fraction.
func Fig8a(o Options) (*Table, error) {
	o = o.withDefaults()
	events, q := netflowDataset(o)
	return caseStudyThroughput(o, "fig8a",
		"Network traffic analytics: throughput vs sampling fraction", events, q)
}

// Fig8b: network-traffic accuracy loss vs sampling fraction.
func Fig8b(o Options) (*Table, error) {
	o = o.withDefaults()
	events, q := netflowDataset(o)
	return caseStudyAccuracy(o, "fig8b",
		"Network traffic analytics: accuracy loss vs sampling fraction", events, q)
}

// Fig8c: network-traffic throughput at fixed accuracy loss.
func Fig8c(o Options) (*Table, error) {
	o = o.withDefaults()
	events, q := netflowDataset(o)
	return throughputAtLoss(o, "fig8c",
		"Network traffic analytics: throughput at fixed accuracy loss",
		events, q, []float64{0.01, 0.02})
}

// Fig9a: taxi throughput vs sampling fraction.
func Fig9a(o Options) (*Table, error) {
	o = o.withDefaults()
	events, q := taxiDataset(o)
	return caseStudyThroughput(o, "fig9a",
		"NYC taxi analytics: throughput vs sampling fraction", events, q)
}

// Fig9b: taxi accuracy loss vs sampling fraction.
func Fig9b(o Options) (*Table, error) {
	o = o.withDefaults()
	events, q := taxiDataset(o)
	return caseStudyAccuracy(o, "fig9b",
		"NYC taxi analytics: accuracy loss vs sampling fraction", events, q)
}

// Fig9c: taxi throughput at fixed accuracy loss.
func Fig9c(o Options) (*Table, error) {
	o = o.withDefaults()
	events, q := taxiDataset(o)
	return throughputAtLoss(o, "fig9c",
		"NYC taxi analytics: throughput at fixed accuracy loss",
		events, q, []float64{0.001, 0.004})
}

// Fig10: dataset-processing latency for the three Spark-based systems on
// both case-study datasets (fraction 60%).
func Fig10(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "fig10",
		Title:   "Latency to process the case-study datasets (fraction 60%)",
		Columns: []string{"system", "dataset", "latency"},
	}
	type ds struct {
		name   string
		events []stream.Event
		q      query.Query
	}
	nf, nfq := netflowDataset(o)
	tx, txq := taxiDataset(o)
	for _, d := range []ds{{"network-traffic", nf, nfq}, {"nyc-taxi", tx, txq}} {
		for _, sys := range []core.System{core.SparkSTS, core.SparkSRS, core.SparkApprox} {
			_, _, elapsed, err := runOnce(core.Config{
				System: sys, Fraction: 0.6, Workers: o.Workers, Seed: o.Seed, Query: d.q,
			}, d.events, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), d.name, elapsed.Round(time.Millisecond).String()})
		}
	}
	return t, nil
}
