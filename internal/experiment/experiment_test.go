package experiment

import (
	"strconv"
	"strings"
	"testing"

	"streamapprox/internal/core"
	"streamapprox/internal/estimate"
	"streamapprox/internal/window"
)

// tiny returns options small enough for unit tests.
func tiny() Options { return Options{Scale: 0.05, Seed: 7, Workers: 2} }

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
	}
	out := tbl.Format()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-column") {
		t.Errorf("Format output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header line + column line + 2 rows
		t.Errorf("got %d lines", len(lines))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Seed == 0 || o.Workers != 4 {
		t.Errorf("defaults = %+v", o)
	}
	if got := (Options{Scale: 0.0001}).scaled(100); got != 1 {
		t.Errorf("scaled floor = %d", got)
	}
}

func TestMeanAccuracyLossOverall(t *testing.T) {
	w := window.Window{}
	truth := []core.WindowResult{{Window: w}}
	truth[0].Result.Overall = estimate.Estimate{Value: 100}
	results := []core.WindowResult{{Window: w}}
	results[0].Result.Overall = estimate.Estimate{Value: 110}
	if got := meanAccuracyLoss(results, truth); got != 0.1 {
		t.Errorf("loss = %v, want 0.1", got)
	}
}

func TestMeanAccuracyLossGroups(t *testing.T) {
	w := window.Window{}
	truth := []core.WindowResult{{Window: w}}
	truth[0].Result.Groups = map[string]estimate.Estimate{
		"a": {Value: 100}, "b": {Value: 200},
	}
	results := []core.WindowResult{{Window: w}}
	results[0].Result.Groups = map[string]estimate.Estimate{
		"a": {Value: 110}, "b": {Value: 180},
	}
	if got := meanAccuracyLoss(results, truth); got != 0.1 {
		t.Errorf("group loss = %v, want 0.1 (mean of 0.1 and 0.1)", got)
	}
}

func TestMeanAccuracyLossEmpty(t *testing.T) {
	if got := meanAccuracyLoss(nil, nil); got != 0 {
		t.Errorf("empty loss = %v", got)
	}
}

// checkTable validates the generic shape of a figure table.
func checkTable(t *testing.T, tbl *Table, err error, minRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < minRows {
		t.Fatalf("%s has %d rows, want >= %d", tbl.ID, len(tbl.Rows), minRows)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Errorf("%s row %d has %d cells, want %d", tbl.ID, i, len(row), len(tbl.Columns))
		}
	}
}

func parseThroughput(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad throughput cell %q: %v", cell, err)
	}
	return v
}

func TestFig4aShape(t *testing.T) {
	tbl, err := Fig4a(tiny())
	checkTable(t, tbl, err, 22) // 4 systems x 5 fractions + 2 native
	// Throughputs must be positive.
	for _, row := range tbl.Rows {
		if parseThroughput(t, row[2]) <= 0 {
			t.Errorf("non-positive throughput in row %v", row)
		}
	}
}

func TestFig4bShape(t *testing.T) {
	tbl, err := Fig4b(tiny())
	checkTable(t, tbl, err, 24) // 4 systems x 6 fractions
	// Losses must parse as percentages.
	for _, row := range tbl.Rows {
		if !strings.HasSuffix(row[2], "%") {
			t.Errorf("loss cell %q not a percentage", row[2])
		}
	}
}

func TestFig4cShape(t *testing.T) {
	tbl, err := Fig4c(tiny())
	checkTable(t, tbl, err, 9) // 3 systems x 3 intervals
}

func TestFig5aShape(t *testing.T) {
	tbl, err := Fig5a(tiny())
	checkTable(t, tbl, err, 12) // 4 systems x 3 rate configs
}

func TestFig6cShape(t *testing.T) {
	tbl, err := Fig6c(tiny())
	checkTable(t, tbl, err, 24)
}

func TestFig7Shape(t *testing.T) {
	tbl, err := Fig7(Options{Scale: 0.5, Seed: 7, Workers: 2})
	checkTable(t, tbl, err, 3)
	// Every row must carry a ground-truth value and three estimates.
	for _, row := range tbl.Rows[1 : len(tbl.Rows)-1] { // interior windows
		for i := 1; i < 5; i++ {
			if row[i] == "" {
				t.Errorf("fig7 row %v missing series %d", row, i)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tbl, err := Fig10(tiny())
	checkTable(t, tbl, err, 6) // 3 systems x 2 datasets
}

func TestAblationTables(t *testing.T) {
	o := tiny()
	tbl, err := AblationWeighting(o)
	checkTable(t, tbl, err, 2)
	tbl, err = AblationDistributedOASRS(o)
	checkTable(t, tbl, err, 4)
	tbl, err = AblationReservoirSkip(Options{Scale: 0.01, Seed: 7})
	checkTable(t, tbl, err, 4)
}

func TestAllRegistryComplete(t *testing.T) {
	all := All()
	for _, id := range []string{
		"fig4a", "fig4b", "fig4c", "fig5a", "fig5bc", "fig6a", "fig6b", "fig6c",
		"fig7", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c", "fig10",
		"abl-sync", "abl-weights", "abl-dist", "abl-skip",
	} {
		if _, ok := all[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	if len(all) != 20 {
		t.Errorf("registry has %d entries, want 20", len(all))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "with,comma"}},
	}
	got := tbl.CSV()
	want := "a,b\n1,\"with,comma\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFig5bcShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	tbl, err := Fig5bc(Options{Scale: 0.02, Seed: 7, Workers: 2})
	checkTable(t, tbl, err, 16) // 4 systems x 4 window sizes
}

func TestFig6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	tbl, err := Fig6a(Options{Scale: 0.02, Seed: 7, Workers: 2})
	checkTable(t, tbl, err, 32) // 4 systems x 8 configs
}

func TestFig6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	tbl, err := Fig6b(Options{Scale: 0.02, Seed: 7, Workers: 2})
	checkTable(t, tbl, err, 8) // 4 systems x 2 targets
}

func TestCaseStudyFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	o := Options{Scale: 0.02, Seed: 7, Workers: 2}
	for name, fn := range map[string]func(Options) (*Table, error){
		"fig8a": Fig8a, "fig8b": Fig8b, "fig8c": Fig8c,
		"fig9a": Fig9a, "fig9b": Fig9b, "fig9c": Fig9c,
	} {
		fn := fn
		t.Run(name, func(t *testing.T) {
			tbl, err := fn(o)
			checkTable(t, tbl, err, 8)
		})
	}
}

func TestAblationSTSBarrierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	tbl, err := AblationSTSBarrier(Options{Scale: 0.02, Seed: 7, Workers: 2})
	checkTable(t, tbl, err, 3)
	// OASRS (no sync) must beat full STS in the decomposition.
	var full, oasrs float64
	for _, row := range tbl.Rows {
		v := parseThroughput(t, row[1])
		switch row[0] {
		case "sts-shuffle+sort":
			full = v
		case "oasrs-no-sync":
			oasrs = v
		}
	}
	if oasrs <= full {
		t.Errorf("OASRS (%v) should out-sample full STS (%v)", oasrs, full)
	}
}
