package experiment

import (
	"fmt"
	"time"

	"streamapprox/internal/core"
	"streamapprox/internal/estimate"
	"streamapprox/internal/query"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

// gaussianDataset builds the §5.1 synthetic Gaussian workload.
func gaussianDataset(o Options, seconds int, rates [3]int) []stream.Event {
	rng := xrand.New(o.Seed)
	return workload.Generate(rng, time.Duration(seconds)*time.Second,
		workload.PaperGaussian(o.scaled(rates[0]), o.scaled(rates[1]), o.scaled(rates[2]))...)
}

// Fig4a: throughput with varying sampling fractions — all six systems.
func Fig4a(o Options) (*Table, error) {
	o = o.withDefaults()
	events := gaussianDataset(o, 15, [3]int{2000, 2000, 2000})
	t := &Table{
		ID:      "fig4a",
		Title:   "Throughput vs sampling fraction (Gaussian microbenchmark)",
		Columns: []string{"system", "fraction", "throughput(items/s)"},
	}
	for _, frac := range []float64{0.10, 0.20, 0.40, 0.60, 0.80} {
		for _, sys := range samplingSystems() {
			tput, _, _, err := runOnce(core.Config{
				System: sys, Fraction: frac, Workers: o.Workers, Seed: o.Seed,
			}, events, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), fmtFraction(frac), fmtThroughput(tput)})
		}
	}
	for _, sys := range []core.System{core.NativeFlink, core.NativeSpark} {
		tput, _, _, err := runOnce(core.Config{
			System: sys, Workers: o.Workers, Seed: o.Seed,
		}, events, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{sys.String(), "native", fmtThroughput(tput)})
	}
	return t, nil
}

// Fig4b: accuracy loss with varying sampling fractions.
func Fig4b(o Options) (*Table, error) {
	o = o.withDefaults()
	events := gaussianDataset(o, 15, [3]int{2000, 2000, 2000})
	cfg := core.Config{Workers: o.Workers, Seed: o.Seed}
	truth := core.GroundTruth(cfg, events)
	t := &Table{
		ID:      "fig4b",
		Title:   "Accuracy loss vs sampling fraction (Gaussian microbenchmark)",
		Columns: []string{"system", "fraction", "accuracy-loss"},
	}
	for _, frac := range []float64{0.10, 0.20, 0.40, 0.60, 0.80, 0.90} {
		for _, sys := range samplingSystems() {
			_, loss, _, err := runOnce(core.Config{
				System: sys, Fraction: frac, Workers: o.Workers, Seed: o.Seed,
			}, events, truth)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), fmtFraction(frac), fmtLoss(loss)})
		}
	}
	return t, nil
}

// Fig4c: throughput with different batch intervals (Spark systems only).
func Fig4c(o Options) (*Table, error) {
	o = o.withDefaults()
	events := gaussianDataset(o, 15, [3]int{2000, 2000, 2000})
	t := &Table{
		ID:      "fig4c",
		Title:   "Throughput vs batch interval (fraction 60%)",
		Columns: []string{"system", "batch-interval", "throughput(items/s)"},
	}
	for _, interval := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second} {
		for _, sys := range []core.System{core.SparkApprox, core.SparkSRS, core.SparkSTS} {
			tput, _, _, err := runOnce(core.Config{
				System: sys, Fraction: 0.6, Workers: o.Workers,
				BatchInterval: interval, Seed: o.Seed,
			}, events, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), interval.String(), fmtThroughput(tput)})
		}
	}
	return t, nil
}

// Fig5a: accuracy loss with varying sub-stream arrival rates.
func Fig5a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "fig5a",
		Title:   "Accuracy loss vs arrival rates A:B:C (fraction 60%)",
		Columns: []string{"system", "rates(A:B:C)", "accuracy-loss"},
	}
	for _, rates := range [][3]int{{8000, 2000, 100}, {3000, 3000, 3000}, {100, 2000, 8000}} {
		events := gaussianDataset(o, 15, rates)
		cfg := core.Config{Workers: o.Workers, Seed: o.Seed}
		truth := core.GroundTruth(cfg, events)
		label := fmt.Sprintf("%d:%d:%d", rates[0], rates[1], rates[2])
		for _, sys := range samplingSystems() {
			_, loss, _, err := runOnce(core.Config{
				System: sys, Fraction: 0.6, Workers: o.Workers, Seed: o.Seed,
			}, events, truth)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), label, fmtLoss(loss)})
		}
	}
	return t, nil
}

// Fig5bc: throughput and accuracy with varying window sizes.
func Fig5bc(o Options) (*Table, error) {
	o = o.withDefaults()
	events := gaussianDataset(o, 50, [3]int{1600, 400, 20})
	t := &Table{
		ID:      "fig5bc",
		Title:   "Throughput and accuracy loss vs window size (slide 5s, fraction 60%)",
		Columns: []string{"system", "window", "throughput(items/s)", "accuracy-loss"},
	}
	for _, win := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second, 40 * time.Second} {
		cfg := core.Config{Workers: o.Workers, Seed: o.Seed, WindowSize: win}
		truth := core.GroundTruth(cfg, events)
		for _, sys := range samplingSystems() {
			tput, loss, _, err := runOnce(core.Config{
				System: sys, Fraction: 0.6, Workers: o.Workers,
				WindowSize: win, Seed: o.Seed,
			}, events, truth)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				sys.String(), win.String(), fmtThroughput(tput), fmtLoss(loss),
			})
		}
	}
	return t, nil
}

// Fig6a: scalability — throughput with varying worker counts (scale-up:
// cores on one node; scale-out: nodes of 8 cores).
func Fig6a(o Options) (*Table, error) {
	o = o.withDefaults()
	events := gaussianDataset(o, 15, [3]int{2000, 2000, 2000})
	t := &Table{
		ID:      "fig6a",
		Title:   "Scalability: throughput vs cores and nodes (fraction 40%)",
		Columns: []string{"system", "config", "workers", "throughput(items/s)"},
	}
	type point struct {
		label   string
		workers int
	}
	points := []point{
		{"cores=2", 2}, {"cores=4", 4}, {"cores=6", 6}, {"cores=8", 8},
		{"nodes=1", 8}, {"nodes=2", 16}, {"nodes=3", 24}, {"nodes=4", 32},
	}
	for _, pt := range points {
		for _, sys := range samplingSystems() {
			tput, _, _, err := runOnce(core.Config{
				System: sys, Fraction: 0.4, Workers: pt.workers, Seed: o.Seed,
			}, events, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				sys.String(), pt.label, fmt.Sprintf("%d", pt.workers), fmtThroughput(tput),
			})
		}
	}
	return t, nil
}

// Fig6b: throughput at a fixed accuracy loss (Gaussian skew workload).
func Fig6b(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := xrand.New(o.Seed)
	events := workload.Generate(rng, 15*time.Second, workload.SkewGaussian(o.scaled(6000))...)
	return throughputAtLoss(o, "fig6b",
		"Throughput at fixed accuracy loss (Gaussian skew 80/19/1)",
		events, nil, []float64{0.005, 0.01})
}

// Fig6c: accuracy loss vs sampling fraction under Poisson skew.
func Fig6c(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := xrand.New(o.Seed)
	events := workload.Generate(rng, 15*time.Second, workload.SkewPoisson(o.scaled(6000))...)
	cfg := core.Config{Workers: o.Workers, Seed: o.Seed}
	truth := core.GroundTruth(cfg, events)
	t := &Table{
		ID:      "fig6c",
		Title:   "Accuracy loss vs sampling fraction (Poisson skew 80/19.99/0.01)",
		Columns: []string{"system", "fraction", "accuracy-loss"},
	}
	for _, frac := range []float64{0.10, 0.20, 0.40, 0.60, 0.80, 0.90} {
		for _, sys := range samplingSystems() {
			_, loss, _, err := runOnce(core.Config{
				System: sys, Fraction: frac, Workers: o.Workers, Seed: o.Seed,
			}, events, truth)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{sys.String(), fmtFraction(frac), fmtLoss(loss)})
		}
	}
	return t, nil
}

// Fig7: per-slide mean-value time series for SRS, STS and StreamApprox
// against the ground truth (Gaussian skew; w=10s, δ=5s).
func Fig7(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := xrand.New(o.Seed)
	// The paper observes 10 minutes; the quick default covers 60s and
	// Scale extends it.
	seconds := o.scaled(60)
	events := workload.Generate(rng, time.Duration(seconds)*time.Second,
		workload.SkewGaussian(2000)...)
	q := query.NewMean(estimate.Conf95)
	cfg := core.Config{Workers: o.Workers, Seed: o.Seed, Query: q}
	truth := core.GroundTruth(cfg, events)
	truthByStart := make(map[time.Time]float64, len(truth))
	for _, tr := range truth {
		truthByStart[tr.Window.Start] = tr.Result.Overall.Value
	}

	t := &Table{
		ID:      "fig7",
		Title:   "Mean-value time series vs ground truth (w=10s, slide=5s)",
		Columns: []string{"window-start", "ground-truth", "streamapprox", "srs", "sts"},
	}
	series := make(map[time.Time][3]string)
	for i, sys := range []core.System{core.SparkApprox, core.SparkSRS, core.SparkSTS} {
		stats, err := core.Run(core.Config{
			System: sys, Fraction: 0.6, Workers: o.Workers, Seed: o.Seed, Query: q,
		}, events)
		if err != nil {
			return nil, err
		}
		for _, r := range stats.Results {
			vals := series[r.Window.Start]
			vals[i] = fmt.Sprintf("%.2f", r.Result.Overall.Value)
			series[r.Window.Start] = vals
		}
	}
	for _, tr := range truth {
		vals := series[tr.Window.Start]
		t.Rows = append(t.Rows, []string{
			tr.Window.Start.Format("15:04:05"),
			fmt.Sprintf("%.2f", tr.Result.Overall.Value),
			vals[0], vals[1], vals[2],
		})
	}
	return t, nil
}

// throughputAtLoss implements the "fix the accuracy loss, compare
// throughput" methodology (Figs. 6b, 8c, 9c): per system, search the
// sampling fraction until the measured loss is at or under the target,
// then report the throughput at that fraction.
func throughputAtLoss(o Options, id, title string, events []stream.Event, q query.Query, targets []float64) (*Table, error) {
	cfg := core.Config{Workers: o.Workers, Seed: o.Seed, Query: q}
	truth := core.GroundTruth(cfg, events)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"system", "target-loss", "fraction", "throughput(items/s)", "measured-loss"},
	}
	for _, target := range targets {
		for _, sys := range samplingSystems() {
			frac, tput, loss, err := searchFraction(o, sys, events, truth, q, target)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				sys.String(), fmtLoss(target), fmtFraction(frac),
				fmtThroughput(tput), fmtLoss(loss),
			})
		}
	}
	return t, nil
}

// searchFraction finds the smallest fraction from a fixed ladder whose
// measured loss is at or below the target; it returns the highest
// fraction if none qualifies.
func searchFraction(o Options, sys core.System, events []stream.Event, truth []core.WindowResult, q query.Query, target float64) (frac, tput, loss float64, err error) {
	ladder := []float64{0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 0.95}
	for _, f := range ladder {
		tp, l, _, e := runOnce(core.Config{
			System: sys, Fraction: f, Workers: o.Workers, Seed: o.Seed, Query: q,
		}, events, truth)
		if e != nil {
			return 0, 0, 0, e
		}
		frac, tput, loss = f, tp, l
		if l <= target {
			return frac, tput, loss, nil
		}
	}
	return frac, tput, loss, nil
}
