// Package experiment regenerates every figure of the paper's evaluation
// (§5 microbenchmarks, §6 case studies) plus the ablations listed in
// DESIGN.md. Each figure function returns a Table whose rows correspond
// to the points of the published plot; cmd/saprox prints them and
// bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers differ from the paper (different hardware, substrate
// simulators instead of real Spark/Flink clusters); EXPERIMENTS.md
// records how the *shape* — orderings, ratios, crossovers — compares.
package experiment

import (
	"encoding/csv"
	"fmt"
	"strings"
	"time"

	"streamapprox/internal/core"
	"streamapprox/internal/estimate"
	"streamapprox/internal/stream"
)

// Table is one regenerated figure: a titled grid of result rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// CSV renders the table as RFC-4180 CSV with a header row, for piping
// into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Columns)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Options scales and seeds an experiment run.
type Options struct {
	// Scale multiplies dataset sizes; 1.0 is the quick default used by
	// the benchmarks, larger values approach the paper's runs.
	Scale float64
	// Seed drives all generators and samplers.
	Seed uint64
	// Workers is the engine parallelism (default 4).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
	return o
}

// scaled returns n scaled by the options multiplier, min 1.
func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// meanAccuracyLoss measures a run's accuracy as the mean over windows of
// the relative error of the overall estimate versus ground truth; for
// group-by queries it averages over groups as well (the paper reports a
// single accuracy-loss number per configuration).
func meanAccuracyLoss(results, truth []core.WindowResult) float64 {
	byStart := make(map[time.Time]core.WindowResult, len(truth))
	for _, tr := range truth {
		byStart[tr.Window.Start] = tr
	}
	var sum float64
	var n int
	for _, r := range results {
		tr, ok := byStart[r.Window.Start]
		if !ok {
			continue
		}
		if len(r.Result.Groups) > 0 {
			for g, est := range r.Result.Groups {
				want, ok := tr.Result.Groups[g]
				if !ok || want.Value == 0 {
					continue
				}
				sum += estimate.AccuracyLoss(est.Value, want.Value)
				n++
			}
			continue
		}
		if tr.Result.Overall.Value == 0 {
			continue
		}
		sum += estimate.AccuracyLoss(r.Result.Overall.Value, tr.Result.Overall.Value)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// runOnce executes one configuration and returns (throughput items/s,
// mean accuracy loss, elapsed).
func runOnce(cfg core.Config, events []stream.Event, truth []core.WindowResult) (float64, float64, time.Duration, error) {
	stats, err := core.Run(cfg, events)
	if err != nil {
		return 0, 0, 0, err
	}
	loss := meanAccuracyLoss(stats.Results, truth)
	return stats.Throughput, loss, stats.Elapsed, nil
}

func fmtThroughput(v float64) string {
	return fmt.Sprintf("%.0f", v)
}

func fmtLoss(v float64) string {
	return fmt.Sprintf("%.4f%%", v*100)
}

func fmtFraction(f float64) string {
	return fmt.Sprintf("%d%%", int(f*100+0.5))
}

// samplingSystems are the four systems that sample.
func samplingSystems() []core.System {
	return []core.System{core.FlinkApprox, core.SparkApprox, core.SparkSRS, core.SparkSTS}
}
