package experiment

import (
	"fmt"
	"time"

	"streamapprox/internal/estimate"
	"streamapprox/internal/metrics"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

// AblationSTSBarrier separates the two costs of Spark-style stratified
// sampling the paper blames for its poor scaling (§4.1, §5.2): the
// groupByKey shuffle+barrier and the per-stratum random sort. It measures
// per-batch sampling time of (a) full STS (shuffle + exact sort), (b) STS
// without the sort (Bernoulli per stratum, shuffle retained) and (c)
// OASRS (no shuffle, no sort).
func AblationSTSBarrier(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := xrand.New(o.Seed)
	events := workload.Generate(rng, 5*time.Second,
		workload.PaperGaussian(o.scaled(8000), o.scaled(8000), o.scaled(8000))...)
	t := &Table{
		ID:      "abl-sync",
		Title:   "STS cost decomposition: shuffle barrier vs sort vs OASRS",
		Columns: []string{"variant", "throughput(items/s)"},
	}
	const trials = 5
	measure := func(name string, sampleFn func() int) {
		sw := metrics.Start()
		for i := 0; i < trials; i++ {
			sw.Add(int64(sampleFn()))
		}
		t.Rows = append(t.Rows, []string{name, fmtThroughput(sw.Throughput())})
	}
	measure("sts-shuffle+sort", func() int {
		s := sampling.NewStratifiedSTS(0.6, o.Workers, true, rng.Split())
		return int(s.SampleBatch(events).TotalCount())
	})
	measure("sts-shuffle-only", func() int {
		s := sampling.NewStratifiedSTS(0.6, o.Workers, false, rng.Split())
		return int(s.SampleBatch(events).TotalCount())
	})
	measure("oasrs-no-sync", func() int {
		d := sampling.NewDistributedOASRS(int(0.6*float64(len(events))), o.Workers, nil, rng.Split())
		shards := stream.PartitionRoundRobin(events, o.Workers)
		done := make(chan struct{})
		for i := range shards {
			go func(i int) {
				defer func() { done <- struct{}{} }()
				for _, e := range shards[i] {
					d.AddAt(i, e)
				}
			}(i)
		}
		for range shards {
			<-done
		}
		return int(d.Finish().TotalCount())
	})
	return t, nil
}

// AblationWeighting quantifies the value of the OASRS weights (Eq. 1) on
// a skewed stream: the same reservoir sample evaluated with and without
// the Ci/Yi weighting.
func AblationWeighting(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := xrand.New(o.Seed)
	events := workload.Generate(rng, 15*time.Second, workload.SkewGaussian(o.scaled(6000))...)
	var trueSum float64
	for _, e := range events {
		trueSum += e.Value
	}
	t := &Table{
		ID:      "abl-weights",
		Title:   "Effect of Eq.1 weighting on a skewed stream (sum estimate)",
		Columns: []string{"variant", "accuracy-loss"},
	}
	o2 := sampling.NewOASRS(o.scaled(6000), nil, rng.Split())
	for _, e := range events {
		o2.Add(e)
	}
	s := o2.Finish()

	weighted := estimate.Sum(s, estimate.Conf95).Value
	var unweighted float64
	for i := range s.Strata {
		for _, it := range s.Strata[i].Items {
			unweighted += it.Value
		}
	}
	// Naive scale-up: multiply the unweighted sum by the global inverse
	// sampling fraction, ignoring stratum imbalance.
	globalScale := float64(s.TotalCount()) / float64(s.SampledCount())
	t.Rows = append(t.Rows, []string{"with-eq1-weights", fmtLoss(estimate.AccuracyLoss(weighted, trueSum))})
	t.Rows = append(t.Rows, []string{"global-scale-only", fmtLoss(estimate.AccuracyLoss(unweighted*globalScale, trueSum))})
	return t, nil
}

// AblationDistributedOASRS compares sample quality and throughput of the
// single-reservoir OASRS against DistributedOASRS at 1..8 workers.
func AblationDistributedOASRS(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := xrand.New(o.Seed)
	events := workload.Generate(rng, 10*time.Second,
		workload.PaperGaussian(o.scaled(4000), o.scaled(4000), o.scaled(4000))...)
	var trueSum float64
	for _, e := range events {
		trueSum += e.Value
	}
	budget := int(0.4 * float64(len(events)))
	t := &Table{
		ID:      "abl-dist",
		Title:   "DistributedOASRS vs single reservoir: quality and speed",
		Columns: []string{"workers", "throughput(items/s)", "accuracy-loss"},
	}
	for _, w := range []int{1, 2, 4, 8} {
		d := sampling.NewDistributedOASRS(budget, w, nil, rng.Split())
		shards := stream.PartitionRoundRobin(events, w)
		sw := metrics.Start()
		done := make(chan struct{})
		for i := range shards {
			go func(i int) {
				defer func() { done <- struct{}{} }()
				for _, e := range shards[i] {
					d.AddAt(i, e)
				}
			}(i)
		}
		for range shards {
			<-done
		}
		sw.Add(int64(len(events)))
		tput := sw.Throughput()
		est := estimate.Sum(d.Finish(), estimate.Conf95).Value
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w), fmtThroughput(tput),
			fmtLoss(estimate.AccuracyLoss(est, trueSum)),
		})
	}
	return t, nil
}

// AblationReservoirSkip compares Algorithm R against the skip-based
// Algorithm L reservoir at several sampling ratios.
func AblationReservoirSkip(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := xrand.New(o.Seed)
	n := o.scaled(2000000)
	events := make([]stream.Event, n)
	for i := range events {
		events[i] = stream.Event{Stratum: "s", Value: float64(i)}
	}
	t := &Table{
		ID:      "abl-skip",
		Title:   "Reservoir Algorithm R vs skip-based Algorithm L",
		Columns: []string{"algorithm", "reservoir-size", "throughput(items/s)"},
	}
	for _, capN := range []int{100, 10000} {
		r := sampling.NewReservoir(capN, rng.Split())
		sw := metrics.Start()
		for _, e := range events {
			r.Add(e)
		}
		sw.Add(int64(n))
		t.Rows = append(t.Rows, []string{"algorithm-r", fmt.Sprintf("%d", capN), fmtThroughput(sw.Throughput())})

		sk := sampling.NewSkipReservoir(capN, rng.Split())
		sw = metrics.Start()
		for _, e := range events {
			sk.Add(e)
		}
		sw.Add(int64(n))
		t.Rows = append(t.Rows, []string{"algorithm-l", fmt.Sprintf("%d", capN), fmtThroughput(sw.Throughput())})
	}
	return t, nil
}

// All returns every figure/ablation generator keyed by id.
func All() map[string]func(Options) (*Table, error) {
	return map[string]func(Options) (*Table, error){
		"fig4a":       Fig4a,
		"fig4b":       Fig4b,
		"fig4c":       Fig4c,
		"fig5a":       Fig5a,
		"fig5bc":      Fig5bc,
		"fig6a":       Fig6a,
		"fig6b":       Fig6b,
		"fig6c":       Fig6c,
		"fig7":        Fig7,
		"fig8a":       Fig8a,
		"fig8b":       Fig8b,
		"fig8c":       Fig8c,
		"fig9a":       Fig9a,
		"fig9b":       Fig9b,
		"fig9c":       Fig9c,
		"fig10":       Fig10,
		"abl-sync":    AblationSTSBarrier,
		"abl-weights": AblationWeighting,
		"abl-dist":    AblationDistributedOASRS,
		"abl-skip":    AblationReservoirSkip,
	}
}
