package sampling

import (
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// SizePolicy determines the per-stratum reservoir size Ni given the total
// sample-size budget from the cost function and the set of strata seen so
// far in the interval (the paper's getSampleSize step in Algorithm 3).
type SizePolicy interface {
	// StratumSize returns Ni for a (possibly new) stratum when numStrata
	// sub-streams have been observed in the current interval.
	StratumSize(totalBudget, numStrata int) int
}

// EqualShare divides the total budget equally among the strata observed so
// far, with a floor of one item per stratum. This is the paper's default:
// each sub-stream gets a fixed-size reservoir regardless of its arrival
// rate, which is exactly what makes OASRS cheaper than proportional STS.
type EqualShare struct{}

// StratumSize implements SizePolicy.
func (EqualShare) StratumSize(totalBudget, numStrata int) int {
	if numStrata <= 0 {
		numStrata = 1
	}
	n := totalBudget / numStrata
	if n < 1 {
		n = 1
	}
	return n
}

// FixedPerStratum gives every stratum the same constant reservoir size,
// ignoring the total budget. Useful when the budget is expressed directly
// as "keep N items per sub-stream".
type FixedPerStratum struct{ N int }

// StratumSize implements SizePolicy.
func (f FixedPerStratum) StratumSize(int, int) int {
	if f.N < 1 {
		return 1
	}
	return f.N
}

// OASRS implements Online Adaptive Stratified Reservoir Sampling (paper
// Algorithm 3). It stratifies the input stream by Event.Stratum, runs an
// independent reservoir per stratum, counts arrivals per stratum (Ci), and
// on Finish emits the weighted sample of the interval with weights per
// Equation 1.
//
// Properties (§3.2): no sub-stream is overlooked regardless of popularity;
// no advance knowledge of sub-stream statistics is needed; sampling is
// on-the-fly (no batch materialization); and the algorithm adapts to
// fluctuating arrival rates because Ci is re-counted every interval.
//
// OASRS is not safe for concurrent use; for parallel execution see
// DistributedOASRS.
type OASRS struct {
	budget int
	policy SizePolicy
	rng    *xrand.Rand

	reservoirs map[string]*Reservoir
	order      []string // strata in first-seen order, for stable iteration

	// expected is the stratum count observed in the previous interval;
	// Algorithm 3 re-derives the per-stratum size Ni each interval from
	// the updated sub-stream set S, so reservoir sizing converges to
	// budget/|S| after the first interval instead of over-allocating the
	// first-seen stratum.
	expected int
}

// NewOASRS returns an OASRS sampler with the given total sample-size
// budget per interval. policy may be nil, in which case EqualShare is
// used.
func NewOASRS(budget int, policy SizePolicy, rng *xrand.Rand) *OASRS {
	if policy == nil {
		policy = EqualShare{}
	}
	if budget < 1 {
		budget = 1
	}
	return &OASRS{
		budget:     budget,
		policy:     policy,
		rng:        rng,
		reservoirs: make(map[string]*Reservoir),
	}
}

var _ Sampler = (*OASRS)(nil)
var _ BatchSampler = (*OASRS)(nil)

// SetBudget adjusts the total sample-size budget. It takes effect for
// strata first seen after the call (existing reservoirs keep their size
// until the next interval), mirroring the paper's per-interval budget
// re-evaluation (Algorithm 2: the cost function runs once per interval).
func (o *OASRS) SetBudget(budget int) {
	if budget < 1 {
		budget = 1
	}
	o.budget = budget
}

// Budget returns the current total sample-size budget.
func (o *OASRS) Budget() int { return o.budget }

// Add offers one item to the sampler.
func (o *OASRS) Add(e stream.Event) {
	res, ok := o.reservoirs[e.Stratum]
	if !ok {
		// New sub-stream Si: determine its sample size Ni adaptively,
		// assuming at least as many strata as the previous interval saw.
		n := len(o.order) + 1
		if o.expected > n {
			n = o.expected
		}
		res = NewReservoir(o.policy.StratumSize(o.budget, n), o.rng)
		o.reservoirs[e.Stratum] = res
		o.order = append(o.order, e.Stratum)
	}
	res.Add(e)
}

// Finish returns the weighted sample for the interval and resets the
// sampler for the next one. Reservoir sizes are re-derived at the start of
// the next interval, so arrival-rate changes and budget changes are picked
// up automatically.
func (o *OASRS) Finish() *Sample {
	strata := make([]StratumSample, 0, len(o.order))
	for _, key := range o.order {
		res := o.reservoirs[key]
		items := res.Items()
		strata = append(strata, StratumSample{
			Stratum: key,
			Items:   items,
			Count:   res.Seen(),
			Weight:  weightFor(res.Seen(), len(items)),
		})
	}
	sortStrata(strata)
	o.expected = len(o.order)
	o.reservoirs = make(map[string]*Reservoir)
	o.order = o.order[:0]
	return &Sample{Strata: strata}
}

// SampleBatch implements BatchSampler by feeding the whole batch through
// Add and finishing. It exists so OASRS can slot into batch-style engines
// for comparison, although its real advantage is sampling before batch
// formation.
func (o *OASRS) SampleBatch(events []stream.Event) *Sample {
	for _, e := range events {
		o.Add(e)
	}
	return o.Finish()
}
