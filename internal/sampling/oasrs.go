package sampling

import (
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// SizePolicy determines the per-stratum reservoir size Ni given the total
// sample-size budget from the cost function and the set of strata seen so
// far in the interval (the paper's getSampleSize step in Algorithm 3).
type SizePolicy interface {
	// StratumSize returns Ni for a (possibly new) stratum when numStrata
	// sub-streams have been observed in the current interval.
	StratumSize(totalBudget, numStrata int) int
}

// EqualShare divides the total budget equally among the strata observed so
// far, with a floor of one item per stratum. This is the paper's default:
// each sub-stream gets a fixed-size reservoir regardless of its arrival
// rate, which is exactly what makes OASRS cheaper than proportional STS.
type EqualShare struct{}

// StratumSize implements SizePolicy.
func (EqualShare) StratumSize(totalBudget, numStrata int) int {
	if numStrata <= 0 {
		numStrata = 1
	}
	n := totalBudget / numStrata
	if n < 1 {
		n = 1
	}
	return n
}

// FixedPerStratum gives every stratum the same constant reservoir size,
// ignoring the total budget. Useful when the budget is expressed directly
// as "keep N items per sub-stream".
type FixedPerStratum struct{ N int }

// StratumSize implements SizePolicy.
func (f FixedPerStratum) StratumSize(int, int) int {
	if f.N < 1 {
		return 1
	}
	return f.N
}

// OASRS implements Online Adaptive Stratified Reservoir Sampling (paper
// Algorithm 3). It stratifies the input stream by Event.Stratum, runs an
// independent reservoir per stratum, counts arrivals per stratum (Ci), and
// on Finish emits the weighted sample of the interval with weights per
// Equation 1.
//
// Properties (§3.2): no sub-stream is overlooked regardless of popularity;
// no advance knowledge of sub-stream statistics is needed; sampling is
// on-the-fly (no batch materialization); and the algorithm adapts to
// fluctuating arrival rates because Ci is re-counted every interval.
//
// OASRS is not safe for concurrent use; for parallel execution see
// DistributedOASRS.
type OASRS struct {
	budget int
	policy SizePolicy
	rng    *xrand.Rand

	reservoirs map[string]*Reservoir
	order      []string // strata in first-seen order, for stable iteration

	// expected is the stratum count observed in the previous interval;
	// Algorithm 3 re-derives the per-stratum size Ni each interval from
	// the updated sub-stream set S, so reservoir sizing converges to
	// budget/|S| after the first interval instead of over-allocating the
	// first-seen stratum.
	expected int

	// lastKey/lastRes short-circuit the reservoirs map probe for the
	// scalar Add path: sub-streams arrive in runs, so consecutive events
	// overwhelmingly share a stratum.
	lastKey string
	lastRes *Reservoir

	// dense is AddBatch's per-call reservoir table indexed by the
	// batch-local dictionary ID, so a batch's records resolve their
	// stratum through the map once per distinct stratum per call.
	dense []*Reservoir
}

// NewOASRS returns an OASRS sampler with the given total sample-size
// budget per interval. policy may be nil, in which case EqualShare is
// used.
func NewOASRS(budget int, policy SizePolicy, rng *xrand.Rand) *OASRS {
	if policy == nil {
		policy = EqualShare{}
	}
	if budget < 1 {
		budget = 1
	}
	return &OASRS{
		budget:     budget,
		policy:     policy,
		rng:        rng,
		reservoirs: make(map[string]*Reservoir),
	}
}

var _ Sampler = (*OASRS)(nil)
var _ BatchSampler = (*OASRS)(nil)

// SetBudget adjusts the total sample-size budget. It takes effect for
// strata first seen after the call (existing reservoirs keep their size
// until the next interval), mirroring the paper's per-interval budget
// re-evaluation (Algorithm 2: the cost function runs once per interval).
func (o *OASRS) SetBudget(budget int) {
	if budget < 1 {
		budget = 1
	}
	o.budget = budget
}

// Budget returns the current total sample-size budget.
func (o *OASRS) Budget() int { return o.budget }

// Add offers one item to the sampler.
func (o *OASRS) Add(e stream.Event) {
	if o.lastRes != nil && e.Stratum == o.lastKey {
		o.lastRes.Add(e)
		return
	}
	res := o.resolve(e.Stratum)
	o.lastKey, o.lastRes = e.Stratum, res
	res.Add(e)
}

// resolve returns the stratum's reservoir, creating it on first sight
// per Algorithm 3: a new sub-stream Si gets its sample size Ni
// adaptively, assuming at least as many strata as the previous interval
// saw.
func (o *OASRS) resolve(stratum string) *Reservoir {
	res, ok := o.reservoirs[stratum]
	if !ok {
		n := len(o.order) + 1
		if o.expected > n {
			n = o.expected
		}
		res = NewReservoir(o.policy.StratumSize(o.budget, n), o.rng)
		o.reservoirs[stratum] = res
		o.order = append(o.order, stratum)
	}
	return res
}

// AddBatch offers records [from, to) of a columnar batch. Records are
// processed in runs of equal stratum ID; each run resolves its
// reservoir once (through a dense table indexed by the batch-local
// dictionary ID, so even alternating strata cost one map probe per
// distinct stratum per call) and is bulk-offered via Reservoir.AddBatch.
// The sampled distribution is identical to feeding each record through
// Add in order.
func (o *OASRS) AddBatch(b *stream.EventBatch, from, to int) {
	if from >= to {
		return
	}
	dense := o.dense
	if cap(dense) < len(b.Dict) {
		dense = make([]*Reservoir, len(b.Dict))
		o.dense = dense
	}
	dense = dense[:len(b.Dict)]
	// Dictionary IDs are batch-local, so the table cannot be trusted
	// across calls (pooled batches recycle pointers); clearing it is a
	// few words per distinct stratum.
	clear(dense)
	for i := from; i < to; {
		id := b.Strata[i]
		j := i + 1
		for j < to && b.Strata[j] == id {
			j++
		}
		res := dense[id]
		if res == nil {
			res = o.resolve(b.Dict[id])
			dense[id] = res
		}
		res.AddBatch(b, i, j)
		i = j
	}
}

// Finish returns the weighted sample for the interval and resets the
// sampler for the next one. Reservoir sizes are re-derived at the start of
// the next interval, so arrival-rate changes and budget changes are picked
// up automatically.
func (o *OASRS) Finish() *Sample {
	strata := make([]StratumSample, 0, len(o.order))
	for _, key := range o.order {
		res := o.reservoirs[key]
		items := res.Items()
		strata = append(strata, StratumSample{
			Stratum: key,
			Items:   items,
			Count:   res.Seen(),
			Weight:  weightFor(res.Seen(), len(items)),
		})
	}
	sortStrata(strata)
	o.expected = len(o.order)
	o.reservoirs = make(map[string]*Reservoir)
	o.order = o.order[:0]
	o.lastKey, o.lastRes = "", nil
	return &Sample{Strata: strata}
}

// SampleBatch implements BatchSampler by feeding the whole batch through
// Add and finishing. It exists so OASRS can slot into batch-style engines
// for comparison, although its real advantage is sampling before batch
// formation.
func (o *OASRS) SampleBatch(events []stream.Event) *Sample {
	for _, e := range events {
		o.Add(e)
	}
	return o.Finish()
}
