// Package sampling implements the sampling algorithms evaluated in the
// StreamApprox paper:
//
//   - Reservoir: classic reservoir sampling (paper Algorithm 1 / Vitter's
//     Algorithm R), plus the skip-based Algorithm L variant.
//   - OASRS: Online Adaptive Stratified Reservoir Sampling (paper
//     Algorithm 3, §3.2) — the paper's primary contribution.
//   - DistributedOASRS: the synchronization-free parallel extension of
//     OASRS (§3.2, "Distributed execution").
//   - RandomSortSRS: Spark's simple random sampling via random sort with
//     the two-threshold (p, q) optimization (§4.1.1 / Meng's ScaSRS).
//   - StratifiedSTS: Spark's stratified sampling — groupBy(strata)
//     followed by per-stratum random-sort sampling, including the shuffle
//     and cross-worker barrier that make it expensive (§4.1.1).
//
// All samplers are deterministic given an injected *xrand.Rand.
package sampling

import (
	"sort"

	"streamapprox/internal/stream"
)

// StratumSample is the per-stratum portion of a sample: the selected items,
// the total number of items observed in the stratum during the interval
// (Ci), and the weight Wi each selected item carries (Equation 1):
//
//	Wi = Ci/Ni  if Ci > Ni   (each selected item represents Ci/Ni originals)
//	Wi = 1      if Ci <= Ni  (every item was kept)
type StratumSample struct {
	Stratum string         `json:"stratum"`
	Items   []stream.Event `json:"items"`
	Count   int64          `json:"count"`
	Weight  float64        `json:"weight"`
}

// SampledCount returns Yi, the number of items actually selected.
func (s *StratumSample) SampledCount() int { return len(s.Items) }

// Sample is the output of one sampling interval: one StratumSample per
// sub-stream, ordered by stratum key for determinism.
type Sample struct {
	Strata []StratumSample
}

// TotalCount returns ΣCi, the total number of items observed across all
// strata during the interval.
func (s *Sample) TotalCount() int64 {
	var total int64
	for i := range s.Strata {
		total += s.Strata[i].Count
	}
	return total
}

// SampledCount returns ΣYi, the total number of items selected.
func (s *Sample) SampledCount() int {
	total := 0
	for i := range s.Strata {
		total += len(s.Strata[i].Items)
	}
	return total
}

// Stratum returns the StratumSample for the given key, or nil.
func (s *Sample) Stratum(key string) *StratumSample {
	for i := range s.Strata {
		if s.Strata[i].Stratum == key {
			return &s.Strata[i]
		}
	}
	return nil
}

// sortStrata orders strata by key so output is deterministic.
func sortStrata(strata []StratumSample) {
	sort.Slice(strata, func(i, j int) bool {
		return strata[i].Stratum < strata[j].Stratum
	})
}

// Sampler consumes one time interval's events one at a time ("on-the-fly",
// §3.2) and produces a weighted Sample at the end of the interval.
// Finish also resets the sampler for the next interval, matching the
// per-interval loop of the paper's Algorithm 2.
type Sampler interface {
	Add(e stream.Event)
	Finish() *Sample
}

// BatchSampler samples a fully materialized batch, the mode of operation
// of Spark's built-in sampling operators, which run on an already-formed
// RDD (§4.1.1).
type BatchSampler interface {
	SampleBatch(events []stream.Event) *Sample
}

// weightFor computes Equation 1.
func weightFor(count int64, sampled int) float64 {
	if sampled > 0 && count > int64(sampled) {
		return float64(count) / float64(sampled)
	}
	return 1
}
