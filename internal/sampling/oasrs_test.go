package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func feed(s Sampler, events []stream.Event) *Sample {
	for _, e := range events {
		s.Add(e)
	}
	return s.Finish()
}

func TestOASRSKeepsEveryStratum(t *testing.T) {
	// Three sub-streams with wildly different arrival rates; the rare one
	// must still appear in the sample — the core guarantee of OASRS.
	o := NewOASRS(30, nil, xrand.New(1))
	events := append(append(mkEvents("big", 8000), mkEvents("mid", 2000)...), mkEvents("rare", 3)...)
	sample := feed(o, events)
	if len(sample.Strata) != 3 {
		t.Fatalf("got %d strata, want 3", len(sample.Strata))
	}
	rare := sample.Stratum("rare")
	if rare == nil || len(rare.Items) != 3 {
		t.Errorf("rare stratum not fully kept: %+v", rare)
	}
}

func TestOASRSWeightsEquation1(t *testing.T) {
	o := NewOASRS(20, FixedPerStratum{N: 10}, xrand.New(2))
	events := append(mkEvents("a", 100), mkEvents("b", 5)...)
	sample := feed(o, events)

	a := sample.Stratum("a")
	if a == nil {
		t.Fatal("missing stratum a")
	}
	// Ci=100 > Ni=10 -> Wi = Ci/Yi = 100/10.
	if got, want := a.Weight, 10.0; got != want {
		t.Errorf("weight(a) = %v, want %v", got, want)
	}
	if a.Count != 100 || len(a.Items) != 10 {
		t.Errorf("a: Count=%d Items=%d", a.Count, len(a.Items))
	}

	b := sample.Stratum("b")
	// Ci=5 <= Ni=10 -> Wi = 1, all items kept.
	if b.Weight != 1 || len(b.Items) != 5 {
		t.Errorf("b: weight=%v items=%d, want weight 1 and all 5 items", b.Weight, len(b.Items))
	}
}

func TestOASRSEqualShareBudgetSplit(t *testing.T) {
	o := NewOASRS(30, EqualShare{}, xrand.New(3))
	// First stratum seen alone gets the full budget; later strata shrink
	// the allocation of strata created after them. With three strata
	// arriving interleaved from the start, sizes are 30, 15, 10.
	events := []stream.Event{
		{Stratum: "a", Value: 1}, {Stratum: "b", Value: 2}, {Stratum: "c", Value: 3},
	}
	for i := 0; i < 200; i++ {
		for _, s := range []string{"a", "b", "c"} {
			events = append(events, stream.Event{Stratum: s, Value: float64(i)})
		}
	}
	sample := feed(o, events)
	sizes := map[string]int{}
	for _, st := range sample.Strata {
		sizes[st.Stratum] = len(st.Items)
	}
	if sizes["a"] != 30 || sizes["b"] != 15 || sizes["c"] != 10 {
		t.Errorf("reservoir sizes = %v, want a:30 b:15 c:10", sizes)
	}
}

func TestOASRSFinishResets(t *testing.T) {
	o := NewOASRS(10, nil, xrand.New(4))
	feed(o, mkEvents("a", 50))
	sample := feed(o, mkEvents("b", 5))
	if len(sample.Strata) != 1 || sample.Strata[0].Stratum != "b" {
		t.Errorf("state leaked across intervals: %+v", sample.Strata)
	}
}

func TestOASRSAdaptsToArrivalRateChange(t *testing.T) {
	// Interval 1: stratum a dominant. Interval 2: stratum a nearly gone.
	// The weights must track the per-interval counts, with no memory.
	o := NewOASRS(10, FixedPerStratum{N: 5}, xrand.New(5))
	s1 := feed(o, mkEvents("a", 1000))
	s2 := feed(o, mkEvents("a", 2))
	if w := s1.Stratum("a").Weight; w != 200 {
		t.Errorf("interval 1 weight = %v, want 200", w)
	}
	if w := s2.Stratum("a").Weight; w != 1 {
		t.Errorf("interval 2 weight = %v, want 1 (rate dropped)", w)
	}
}

func TestOASRSSetBudget(t *testing.T) {
	o := NewOASRS(10, nil, xrand.New(6))
	o.SetBudget(50)
	if o.Budget() != 50 {
		t.Errorf("Budget = %d", o.Budget())
	}
	o.SetBudget(-3)
	if o.Budget() != 1 {
		t.Errorf("negative budget should clamp to 1, got %d", o.Budget())
	}
	sample := feed(o, mkEvents("a", 100))
	if got := len(sample.Stratum("a").Items); got != 1 {
		t.Errorf("budget 1 should keep 1 item, got %d", got)
	}
}

// Property: for any workload, per-stratum sampled count never exceeds Ni,
// Count always equals the number of items fed, and weight*Yi >= Ci is
// within one item of exact reconstruction when Ci > Ni.
func TestOASRSInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(sizesRaw []uint16, seed uint64) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 8 {
			sizesRaw = sizesRaw[:8]
		}
		o := NewOASRS(40, nil, xrand.New(seed))
		want := map[string]int64{}
		for si, raw := range sizesRaw {
			n := int(raw % 2000)
			key := string(rune('a' + si))
			want[key] = int64(n)
			for i := 0; i < n; i++ {
				o.Add(stream.Event{Stratum: key, Value: float64(i)})
			}
		}
		sample := o.Finish()
		for _, st := range sample.Strata {
			if st.Count != want[st.Stratum] {
				return false
			}
			yi := len(st.Items)
			if int64(yi) > st.Count {
				return false
			}
			if st.Count > int64(yi) && yi > 0 {
				// Wi*Yi must reconstruct Ci exactly (Wi = Ci/Yi).
				if math.Abs(st.Weight*float64(yi)-float64(st.Count)) > 1e-9 {
					return false
				}
			}
			if st.Count <= int64(yi) && st.Weight != 1 {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the weighted-sum estimator over an OASRS sample is unbiased.
// We check that across many trials the mean estimate converges to the true
// sum within a few standard errors.
func TestOASRSUnbiasedSumEstimate(t *testing.T) {
	rng := xrand.New(7)
	events := make([]stream.Event, 0, 3000)
	var trueSum float64
	for i := 0; i < 1000; i++ {
		for s, mu := range map[string]float64{"a": 10, "b": 1000, "c": 10000} {
			v := rng.Gaussian(mu, mu/10)
			events = append(events, stream.Event{Stratum: s, Value: v})
			trueSum += v
		}
	}
	const trials = 300
	var estSum float64
	for trial := 0; trial < trials; trial++ {
		o := NewOASRS(300, nil, rng.Split())
		sample := feed(o, events)
		for _, st := range sample.Strata {
			var s float64
			for _, it := range st.Items {
				s += it.Value
			}
			estSum += s * st.Weight
		}
	}
	avg := estSum / trials
	if rel := math.Abs(avg-trueSum) / trueSum; rel > 0.01 {
		t.Errorf("mean estimate %.0f vs true %.0f (rel err %.4f) — estimator biased?", avg, trueSum, rel)
	}
}

func TestOASRSSampleBatch(t *testing.T) {
	o := NewOASRS(10, nil, xrand.New(8))
	sample := o.SampleBatch(mkEvents("a", 100))
	if sample.TotalCount() != 100 {
		t.Errorf("TotalCount = %d", sample.TotalCount())
	}
	if sample.SampledCount() != 10 {
		t.Errorf("SampledCount = %d", sample.SampledCount())
	}
}

func TestSampleAccessors(t *testing.T) {
	s := &Sample{Strata: []StratumSample{
		{Stratum: "a", Items: mkEvents("a", 2), Count: 10, Weight: 5},
		{Stratum: "b", Items: mkEvents("b", 3), Count: 3, Weight: 1},
	}}
	if s.TotalCount() != 13 {
		t.Errorf("TotalCount = %d", s.TotalCount())
	}
	if s.SampledCount() != 5 {
		t.Errorf("SampledCount = %d", s.SampledCount())
	}
	if s.Stratum("b") == nil || s.Stratum("zzz") != nil {
		t.Error("Stratum lookup broken")
	}
	if s.Strata[0].SampledCount() != 2 {
		t.Error("StratumSample.SampledCount broken")
	}
}

func BenchmarkOASRSAdd(b *testing.B) {
	o := NewOASRS(1000, nil, xrand.New(1))
	events := [3]stream.Event{
		{Stratum: "a", Value: 1}, {Stratum: "b", Value: 2}, {Stratum: "c", Value: 3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Add(events[i%3])
	}
}
