package sampling

import (
	"math"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of unknown length (paper Algorithm 1; Vitter's Algorithm R).
// After observing i items, every item has probability min(1, N/i) of being
// in the reservoir.
//
// Reservoir is not safe for concurrent use.
type Reservoir struct {
	capacity int
	items    []stream.Event
	seen     int64
	rng      *xrand.Rand
}

// NewReservoir returns a reservoir holding at most capacity items.
// capacity must be positive.
func NewReservoir(capacity int, rng *xrand.Rand) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{
		capacity: capacity,
		items:    make([]stream.Event, 0, capacity),
		rng:      rng,
	}
}

// Add offers one item to the reservoir.
func (r *Reservoir) Add(e stream.Event) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, e)
		return
	}
	// Accept the i-th item with probability N/i, then replace a uniformly
	// random victim.
	j := r.rng.Uint64n(uint64(r.seen))
	if j < uint64(r.capacity) {
		r.items[j] = e
	}
}

// AddBatch offers records [from, to) of a columnar batch — a run of
// equal-stratum records resolved once by OASRS.AddBatch. The fill phase
// copies rows directly; past fill it uses multiplicative skip-sampling
// (Vitter-style inversion): one uniform draw v per ACCEPTED item, then a
// running product p of the per-item rejection probabilities 1 - N/i
// until p <= v. Because P(p_k <= v | p_{k-1} > v) = N/(seen+k), each
// item is accepted with exactly Algorithm R's probability N/i — the
// sampled distribution is identical, but a rejected record costs one
// multiply and compare instead of an RNG draw. A skip chain left
// unfinished at the batch boundary is simply discarded: the per-item
// acceptance events are independent, so restarting fresh next batch
// changes nothing.
func (r *Reservoir) AddBatch(b *stream.EventBatch, from, to int) {
	i := from
	for i < to && len(r.items) < r.capacity {
		r.seen++
		r.items = append(r.items, b.EventAt(i))
		i++
	}
	capF := float64(r.capacity)
	for i < to {
		v := nonZeroFloat(r.rng)
		p := 1.0
		for i < to {
			r.seen++
			p *= 1 - capF/float64(r.seen)
			i++
			if p <= v {
				r.items[r.rng.Intn(r.capacity)] = b.EventAt(i - 1)
				break
			}
		}
	}
}

// Seen returns the number of items offered so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// Capacity returns the maximum sample size N.
func (r *Reservoir) Capacity() int { return r.capacity }

// Items returns the current sample. The returned slice is a copy, so the
// caller may retain it across Reset.
func (r *Reservoir) Items() []stream.Event {
	out := make([]stream.Event, len(r.items))
	copy(out, r.items)
	return out
}

// Reset clears the reservoir for the next interval, keeping capacity.
func (r *Reservoir) Reset() {
	r.items = r.items[:0]
	r.seen = 0
}

// SkipReservoir is a reservoir sampler using Li's Algorithm L: instead of
// flipping a coin per item, it draws the number of items to skip before
// the next replacement from the correct geometric-like distribution. For
// low sampling fractions it touches the RNG O(N log(i/N)) times instead of
// O(i), which is the ablation `abl-skip` quantifies.
//
// The sampled distribution is identical to Reservoir's (uniform without
// replacement).
type SkipReservoir struct {
	capacity int
	items    []stream.Event
	seen     int64
	next     int64 // index (1-based) of the next item to admit
	w        float64
	rng      *xrand.Rand
}

// NewSkipReservoir returns a skip-based reservoir of the given capacity.
func NewSkipReservoir(capacity int, rng *xrand.Rand) *SkipReservoir {
	if capacity <= 0 {
		capacity = 1
	}
	s := &SkipReservoir{
		capacity: capacity,
		items:    make([]stream.Event, 0, capacity),
		rng:      rng,
		w:        1,
	}
	return s
}

func (s *SkipReservoir) advance() {
	// W *= U^(1/N); skip ~ floor(log(U)/log(1-W)).
	s.w *= math.Exp(math.Log(nonZeroFloat(s.rng)) / float64(s.capacity))
	skip := int64(math.Floor(math.Log(nonZeroFloat(s.rng))/math.Log(1-s.w))) + 1
	if skip < 1 {
		skip = 1
	}
	s.next += skip
}

// nonZeroFloat returns a uniform float in (0, 1).
func nonZeroFloat(r *xrand.Rand) float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Add offers one item.
func (s *SkipReservoir) Add(e stream.Event) {
	s.seen++
	if len(s.items) < s.capacity {
		s.items = append(s.items, e)
		if len(s.items) == s.capacity {
			s.next = s.seen
			s.advance()
		}
		return
	}
	if s.seen == s.next {
		s.items[s.rng.Intn(s.capacity)] = e
		s.advance()
	}
}

// Seen returns the number of items offered so far.
func (s *SkipReservoir) Seen() int64 { return s.seen }

// Items returns a copy of the current sample.
func (s *SkipReservoir) Items() []stream.Event {
	out := make([]stream.Event, len(s.items))
	copy(out, s.items)
	return out
}

// Reset clears the reservoir for the next interval.
func (s *SkipReservoir) Reset() {
	s.items = s.items[:0]
	s.seen = 0
	s.next = 0
	s.w = 1
}
