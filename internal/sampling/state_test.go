package sampling

import (
	"encoding/json"
	"testing"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func TestReservoirStateRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	r := NewReservoir(5, rng)
	for _, e := range mkEvents("a", 100) {
		r.Add(e)
	}
	st := r.State()
	if st.Capacity != 5 || st.Seen != 100 || len(st.Items) != 5 {
		t.Fatalf("state = %+v", st)
	}

	// Continue both the original and a restored copy with identical RNG
	// streams: they must stay in lockstep.
	seed := rng.Uint64()
	rngA, rngB := xrand.New(seed), xrand.New(seed)
	restored := RestoreReservoir(st, rngB)
	contA := RestoreReservoir(st, rngA) // fresh twin of the original state
	for _, e := range mkEvents("a", 500) {
		contA.Add(e)
		restored.Add(e)
	}
	a, b := contA.Items(), restored.Items()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored reservoir diverged at %d", i)
		}
	}
}

func TestReservoirStateClampsOversizedItems(t *testing.T) {
	st := ReservoirState{Capacity: 2, Seen: 10, Items: mkEvents("a", 5)}
	r := RestoreReservoir(st, xrand.New(2))
	if len(r.Items()) != 2 {
		t.Errorf("restored %d items into capacity 2", len(r.Items()))
	}
}

func TestOASRSStateRoundTripJSON(t *testing.T) {
	rng := xrand.New(3)
	o := NewOASRS(20, nil, rng)
	for _, e := range mkEvents("a", 100) {
		o.Add(e)
	}
	for _, e := range mkEvents("b", 5) {
		o.Add(e)
	}
	st := o.State()

	// The state must survive JSON serialization, since the public
	// Session snapshot uses it that way.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back OASRSState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	restored := RestoreOASRS(back, nil, xrand.New(4))
	sample := restored.Finish()
	a := sample.Stratum("a")
	if a == nil || a.Count != 100 {
		t.Fatalf("stratum a lost in round trip: %+v", a)
	}
	b := sample.Stratum("b")
	if b == nil || b.Count != 5 || len(b.Items) != 5 || b.Weight != 1 {
		t.Fatalf("stratum b lost in round trip: %+v", b)
	}
}

func TestOASRSStatePreservesExpected(t *testing.T) {
	o := NewOASRS(30, nil, xrand.New(5))
	for _, e := range mkEvents("a", 10) {
		o.Add(e)
	}
	for _, e := range mkEvents("b", 10) {
		o.Add(e)
	}
	_ = o.Finish() // expected = 2 strata
	st := o.State()
	if st.Expected != 2 {
		t.Fatalf("Expected = %d", st.Expected)
	}
	restored := RestoreOASRS(st, nil, xrand.New(6))
	// A new interval's first stratum must get budget/2, not the full
	// budget — the adaptation state survived.
	restored.Add(stream.Event{Stratum: "a", Value: 1})
	for i := 0; i < 100; i++ {
		restored.Add(stream.Event{Stratum: "a", Value: float64(i)})
	}
	sample := restored.Finish()
	if got := len(sample.Stratum("a").Items); got != 15 {
		t.Errorf("restored first-stratum reservoir = %d, want 15 (= 30/2)", got)
	}
}

func TestXrandStateRoundTrip(t *testing.T) {
	r := xrand.New(7)
	_ = r.NormFloat64() // populate the Box-Muller cache
	st := r.State()
	twin := xrand.New(0)
	twin.SetState(st)
	for i := 0; i < 100; i++ {
		if r.NormFloat64() != twin.NormFloat64() {
			t.Fatalf("restored RNG diverged at step %d", i)
		}
	}
}
