package sampling

import (
	"sync"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// DistributedOASRS runs OASRS across w workers with no synchronization
// during sampling (§3.2, "Distributed execution"): each worker samples an
// equal portion of every sub-stream into a local reservoir of size at most
// ⌈Ni/w⌉ and keeps a local arrival counter. Merging is pure concatenation
// plus weight computation from the summed counters — there is no shuffle,
// no sort, and no barrier on the data path, which is the architectural
// reason StreamApprox outperforms Spark's stratified sampling.
//
// Events are distributed to workers round-robin per stratum, modelling the
// paper's "each worker node samples an equal portion of items from this
// sub-stream".
type DistributedOASRS struct {
	workers []*workerOASRS
	rr      map[string]int // per-stratum round-robin cursor
}

type workerOASRS struct {
	mu      sync.Mutex
	sampler *OASRS
}

// NewDistributedOASRS returns a sampler with w parallel workers sharing a
// total per-interval budget. Each worker receives budget/w (minimum 1).
// rng seeds are split per worker so streams are decorrelated.
func NewDistributedOASRS(budget, w int, policy SizePolicy, rng *xrand.Rand) *DistributedOASRS {
	if w < 1 {
		w = 1
	}
	perWorker := budget / w
	if perWorker < 1 {
		perWorker = 1
	}
	workers := make([]*workerOASRS, w)
	for i := range workers {
		workers[i] = &workerOASRS{sampler: NewOASRS(perWorker, policy, rng.Split())}
	}
	return &DistributedOASRS{workers: workers, rr: make(map[string]int)}
}

// Workers returns the number of parallel workers.
func (d *DistributedOASRS) Workers() int { return len(d.workers) }

// SetBudget updates the total per-interval budget, dividing it equally
// among workers. It takes effect for reservoirs created afterwards (i.e.
// from the next interval), like OASRS.SetBudget.
func (d *DistributedOASRS) SetBudget(budget int) {
	perWorker := budget / len(d.workers)
	if perWorker < 1 {
		perWorker = 1
	}
	for _, w := range d.workers {
		w.mu.Lock()
		w.sampler.SetBudget(perWorker)
		w.mu.Unlock()
	}
}

// Add routes one item to a worker. Add itself is not safe for concurrent
// use (routing state); use AddAt from concurrent pipelines, where each
// pipeline owns a fixed worker index.
func (d *DistributedOASRS) Add(e stream.Event) {
	i := d.rr[e.Stratum]
	d.rr[e.Stratum] = (i + 1) % len(d.workers)
	d.AddAt(i, e)
}

// AddAt offers one item directly to worker i. Safe for concurrent use by
// distinct goroutines (each worker is independently locked; goroutines
// pinned to distinct workers never contend).
func (d *DistributedOASRS) AddAt(i int, e stream.Event) {
	w := d.workers[i%len(d.workers)]
	w.mu.Lock()
	w.sampler.Add(e)
	w.mu.Unlock()
}

// Finish merges the workers' local samples into the interval's global
// weighted sample and resets all workers. Per stratum: items are
// concatenated, counters summed, and the weight recomputed from the merged
// totals (Equation 1 applied to ΣCi over Σ|items|).
func (d *DistributedOASRS) Finish() *Sample {
	merged := make(map[string]*StratumSample)
	var order []string
	for _, w := range d.workers {
		w.mu.Lock()
		local := w.sampler.Finish()
		w.mu.Unlock()
		for i := range local.Strata {
			ls := &local.Strata[i]
			g, ok := merged[ls.Stratum]
			if !ok {
				g = &StratumSample{Stratum: ls.Stratum}
				merged[ls.Stratum] = g
				order = append(order, ls.Stratum)
			}
			g.Items = append(g.Items, ls.Items...)
			g.Count += ls.Count
		}
	}
	strata := make([]StratumSample, 0, len(order))
	for _, key := range order {
		g := merged[key]
		g.Weight = weightFor(g.Count, len(g.Items))
		strata = append(strata, *g)
	}
	sortStrata(strata)
	d.rr = make(map[string]int)
	return &Sample{Strata: strata}
}

var _ Sampler = (*DistributedOASRS)(nil)
