package sampling

import (
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// This file provides checkpoint/restore state for the samplers, the
// basis of the public Session.Snapshot fault-tolerance API. States are
// plain data with JSON tags; restoring a state yields a sampler that
// continues exactly where the original left off (given the captured RNG
// state is restored alongside, which the Session does).

// ReservoirState is a Reservoir's serializable state.
type ReservoirState struct {
	Capacity int            `json:"capacity"`
	Seen     int64          `json:"seen"`
	Items    []stream.Event `json:"items"`
}

// State captures the reservoir's contents and counters.
func (r *Reservoir) State() ReservoirState {
	return ReservoirState{Capacity: r.capacity, Seen: r.seen, Items: r.Items()}
}

// RestoreReservoir rebuilds a reservoir from a state.
func RestoreReservoir(st ReservoirState, rng *xrand.Rand) *Reservoir {
	r := NewReservoir(st.Capacity, rng)
	r.seen = st.Seen
	r.items = append(r.items[:0], st.Items...)
	if len(r.items) > r.capacity {
		r.items = r.items[:r.capacity]
	}
	return r
}

// OASRSState is an OASRS sampler's serializable state.
type OASRSState struct {
	Budget     int                       `json:"budget"`
	Expected   int                       `json:"expected"`
	Order      []string                  `json:"order"`
	Reservoirs map[string]ReservoirState `json:"reservoirs"`
}

// State captures the sampler's per-stratum reservoirs and counters.
func (o *OASRS) State() OASRSState {
	st := OASRSState{
		Budget:     o.budget,
		Expected:   o.expected,
		Order:      append([]string(nil), o.order...),
		Reservoirs: make(map[string]ReservoirState, len(o.reservoirs)),
	}
	for key, res := range o.reservoirs {
		st.Reservoirs[key] = res.State()
	}
	return st
}

// RestoreOASRS rebuilds an OASRS sampler from a state. policy may be nil
// for the default EqualShare.
func RestoreOASRS(st OASRSState, policy SizePolicy, rng *xrand.Rand) *OASRS {
	o := NewOASRS(st.Budget, policy, rng)
	o.expected = st.Expected
	o.order = append(o.order[:0], st.Order...)
	for key, rs := range st.Reservoirs {
		o.reservoirs[key] = RestoreReservoir(rs, rng)
	}
	return o
}
