package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func TestSRSExactSize(t *testing.T) {
	for _, tc := range []struct {
		n        int
		fraction float64
		want     int
	}{
		{1000, 0.6, 600},
		{1000, 0.1, 100},
		{1000, 1.0, 1000},
		{1000, 0.0, 0},
		{7, 0.5, 4}, // ceil(3.5)
		{0, 0.5, 0},
	} {
		s := NewRandomSortSRS(tc.fraction, xrand.New(1))
		sample := s.SampleBatch(mkEvents("a", tc.n))
		if got := sample.SampledCount(); got != tc.want {
			t.Errorf("n=%d f=%v: sampled %d, want %d", tc.n, tc.fraction, got, tc.want)
		}
		if sample.TotalCount() != int64(tc.n) {
			t.Errorf("n=%d: TotalCount=%d", tc.n, sample.TotalCount())
		}
	}
}

func TestSRSFractionClamping(t *testing.T) {
	s := NewRandomSortSRS(1.7, xrand.New(2))
	if got := s.SampleBatch(mkEvents("a", 10)).SampledCount(); got != 10 {
		t.Errorf("fraction>1 should keep all, got %d", got)
	}
	s = NewRandomSortSRS(-0.5, xrand.New(2))
	if got := s.SampleBatch(mkEvents("a", 10)).SampledCount(); got != 0 {
		t.Errorf("fraction<0 should keep none, got %d", got)
	}
}

func TestSRSWeightReconstructsPopulation(t *testing.T) {
	s := NewRandomSortSRS(0.25, xrand.New(3))
	sample := s.SampleBatch(mkEvents("a", 1000))
	st := sample.Strata[0]
	if st.Stratum != SRSPseudoStratum {
		t.Errorf("stratum = %q", st.Stratum)
	}
	if got := st.Weight * float64(len(st.Items)); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Wi*Yi = %v, want 1000", got)
	}
}

// SRS is uniform: each item should be selected with probability ~fraction.
func TestSRSUniformity(t *testing.T) {
	const n, trials = 200, 3000
	const fraction = 0.3
	counts := make([]int, n)
	rng := xrand.New(4)
	events := mkEvents("a", n)
	for trial := 0; trial < trials; trial++ {
		s := NewRandomSortSRS(fraction, rng.Split())
		for _, it := range s.SampleBatch(events).Strata[0].Items {
			counts[int(it.Value)]++
		}
	}
	want := fraction * trials
	sd := math.Sqrt(want * (1 - fraction))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Errorf("item %d selected %d times, want %.0f±%.0f", i, c, want, 3*sd)
		}
	}
}

// Property: SRS always returns exactly ceil(f*n) items for any batch.
func TestSRSSizeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(nRaw uint16, fRaw uint8, seed uint64) bool {
		n := int(nRaw % 5000)
		f := float64(fRaw%101) / 100
		s := NewRandomSortSRS(f, xrand.New(seed))
		got := s.SampleBatch(mkEvents("a", n)).SampledCount()
		return got == int(math.Ceil(f*float64(n)))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestSRSCanMissRareStratum(t *testing.T) {
	// Demonstrates the documented SRS failure mode: with a 10% fraction
	// and a 3-item rare stratum among 10000, the rare stratum is usually
	// under- or un-represented in at least some trials.
	rng := xrand.New(5)
	events := append(mkEvents("big", 10000), mkEvents("rare", 3)...)
	missed := 0
	for trial := 0; trial < 50; trial++ {
		s := NewRandomSortSRS(0.1, rng.Split())
		sample := s.SampleBatch(events)
		rare := 0
		for _, it := range sample.Strata[0].Items {
			if it.Stratum == "rare" {
				rare++
			}
		}
		if rare == 0 {
			missed++
		}
	}
	if missed == 0 {
		t.Error("SRS never missed the rare stratum across 50 trials; expected misses (P(miss)≈0.73)")
	}
}

func TestSTSSamplesEveryStratumProportionally(t *testing.T) {
	s := NewStratifiedSTS(0.5, 4, true, xrand.New(6))
	events := append(append(mkEvents("a", 1000), mkEvents("b", 100)...), mkEvents("c", 10)...)
	sample := s.SampleBatch(events)
	if len(sample.Strata) != 3 {
		t.Fatalf("got %d strata, want 3", len(sample.Strata))
	}
	wants := map[string]int{"a": 500, "b": 50, "c": 5}
	for _, st := range sample.Strata {
		if got := len(st.Items); got != wants[st.Stratum] {
			t.Errorf("stratum %s: sampled %d, want %d (exact mode)", st.Stratum, got, wants[st.Stratum])
		}
	}
}

func TestSTSCountsAndWeights(t *testing.T) {
	s := NewStratifiedSTS(0.1, 2, true, xrand.New(7))
	sample := s.SampleBatch(mkEvents("x", 1000))
	st := sample.Stratum("x")
	if st == nil || st.Count != 1000 {
		t.Fatalf("stratum x: %+v", st)
	}
	if got := st.Weight * float64(len(st.Items)); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Wi*Yi = %v, want 1000", got)
	}
}

func TestSTSBernoulliMode(t *testing.T) {
	s := NewStratifiedSTS(0.5, 2, false, xrand.New(8))
	sample := s.SampleBatch(mkEvents("x", 10000))
	got := float64(sample.SampledCount())
	if math.Abs(got-5000) > 300 {
		t.Errorf("Bernoulli mode sampled %v items, want ~5000", got)
	}
}

func TestSTSFullFractionKeepsAll(t *testing.T) {
	s := NewStratifiedSTS(1.0, 3, true, xrand.New(9))
	sample := s.SampleBatch(mkEvents("x", 123))
	if sample.SampledCount() != 123 {
		t.Errorf("fraction 1 kept %d, want 123", sample.SampledCount())
	}
	if sample.Stratum("x").Weight != 1 {
		t.Errorf("weight = %v, want 1", sample.Stratum("x").Weight)
	}
}

func TestSTSEmptyBatch(t *testing.T) {
	s := NewStratifiedSTS(0.5, 4, true, xrand.New(10))
	sample := s.SampleBatch(nil)
	if len(sample.Strata) != 0 {
		t.Errorf("empty batch produced strata: %+v", sample.Strata)
	}
}

// Property: STS preserves all strata and never drops or duplicates counts
// through the shuffle.
func TestSTSShufflePreservesCounts(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(sizes []uint8, workersRaw uint8, seed uint64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 10 {
			sizes = sizes[:10]
		}
		workers := int(workersRaw%8) + 1
		var events []stream.Event
		want := map[string]int64{}
		for si, n := range sizes {
			key := string(rune('a' + si))
			want[key] += int64(n)
			events = append(events, mkEvents(key, int(n))...)
		}
		s := NewStratifiedSTS(0.5, workers, true, xrand.New(seed))
		sample := s.SampleBatch(events)
		for _, st := range sample.Strata {
			if st.Count != want[st.Stratum] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistributedOASRSMergesCounters(t *testing.T) {
	d := NewDistributedOASRS(40, 4, nil, xrand.New(11))
	for _, e := range mkEvents("a", 1000) {
		d.Add(e)
	}
	for _, e := range mkEvents("b", 8) {
		d.Add(e)
	}
	sample := d.Finish()
	a := sample.Stratum("a")
	if a == nil || a.Count != 1000 {
		t.Fatalf("stratum a: %+v", a)
	}
	// 4 workers x 10 per-worker budget (EqualShare with 1-2 strata varies);
	// just require sane bounds and exact reconstruction.
	if len(a.Items) == 0 || int64(len(a.Items)) > a.Count {
		t.Errorf("a sampled %d of %d", len(a.Items), a.Count)
	}
	if math.Abs(a.Weight*float64(len(a.Items))-1000) > 1e-9 {
		t.Errorf("weight does not reconstruct population: W=%v Yi=%d", a.Weight, len(a.Items))
	}
	b := sample.Stratum("b")
	if b == nil || b.Count != 8 || len(b.Items) != 8 || b.Weight != 1 {
		t.Errorf("rare stratum b mishandled: %+v", b)
	}
}

func TestDistributedOASRSConcurrentAddAt(t *testing.T) {
	d := NewDistributedOASRS(100, 4, nil, xrand.New(12))
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 5000; i++ {
				d.AddAt(w, stream.Event{Stratum: "s", Value: float64(i)})
			}
		}(w)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	sample := d.Finish()
	if got := sample.Stratum("s").Count; got != 20000 {
		t.Errorf("concurrent adds lost items: Count=%d, want 20000", got)
	}
}

func TestDistributedOASRSWorkerClamp(t *testing.T) {
	d := NewDistributedOASRS(10, 0, nil, xrand.New(13))
	if d.Workers() != 1 {
		t.Errorf("Workers = %d, want 1", d.Workers())
	}
}

// The distributed sampler must agree statistically with the single-node
// sampler: equal expected per-stratum representation.
func TestDistributedOASRSStatisticalAgreement(t *testing.T) {
	rng := xrand.New(14)
	events := make([]stream.Event, 0, 4000)
	var trueSum float64
	for i := 0; i < 2000; i++ {
		v := rng.Gaussian(100, 10)
		events = append(events, stream.Event{Stratum: "a", Value: v})
		trueSum += v
		v = rng.Gaussian(10000, 100)
		events = append(events, stream.Event{Stratum: "b", Value: v})
		trueSum += v
	}
	const trials = 200
	var est float64
	for trial := 0; trial < trials; trial++ {
		d := NewDistributedOASRS(200, 4, nil, rng.Split())
		for _, e := range events {
			d.Add(e)
		}
		sample := d.Finish()
		for _, st := range sample.Strata {
			var s float64
			for _, it := range st.Items {
				s += it.Value
			}
			est += s * st.Weight
		}
	}
	avg := est / trials
	if rel := math.Abs(avg-trueSum) / trueSum; rel > 0.01 {
		t.Errorf("distributed estimate %.0f vs true %.0f (rel %.4f)", avg, trueSum, rel)
	}
}

func BenchmarkSRSSampleBatch(b *testing.B) {
	events := mkEvents("a", 100000)
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRandomSortSRS(0.6, rng).SampleBatch(events)
	}
}

func BenchmarkSTSSampleBatch(b *testing.B) {
	events := mkEvents("a", 100000)
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewStratifiedSTS(0.6, 4, true, rng).SampleBatch(events)
	}
}

func BenchmarkOASRSSampleBatch(b *testing.B) {
	events := mkEvents("a", 100000)
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewOASRS(60000, nil, rng).SampleBatch(events)
	}
}
