package sampling

import (
	"math"
	"sort"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// RandomSortSRS reproduces Apache Spark's simple random sampling operator
// (`sample`, §4.1.1): every item is tagged with a uniform random key, and
// the k items with the smallest keys form the sample. Because sorting a
// whole batch is expensive, Spark bounds the sort with two thresholds
// (Meng's ScaSRS): items with key < q2 are accepted outright, items with
// key > q1 are rejected outright, and only the "waitlist" in between is
// sorted. We implement exactly that, so the baseline pays exactly the
// costs Spark pays.
//
// SRS is oblivious to strata: the resulting Sample has a single pseudo
// stratum with a uniform weight n/k. That is precisely why SRS "loses the
// capability of considering each sub-stream fairly" (§5.2) — rare but
// significant sub-streams may not be represented at all.
type RandomSortSRS struct {
	fraction float64
	delta    float64
	rng      *xrand.Rand
}

// SRSPseudoStratum is the stratum key under which RandomSortSRS reports
// its (stratification-free) sample.
const SRSPseudoStratum = "__srs__"

// NewRandomSortSRS returns an SRS batch sampler selecting the given
// fraction of each batch. The failure probability for the threshold bounds
// is fixed at 1e-4, matching Spark's SamplingUtils default.
func NewRandomSortSRS(fraction float64, rng *xrand.Rand) *RandomSortSRS {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	return &RandomSortSRS{fraction: fraction, delta: 1e-4, rng: rng}
}

var _ BatchSampler = (*RandomSortSRS)(nil)

// thresholds computes the accept/reject key thresholds (q2, q1) for
// selecting k = ceil(f*n) out of n items with failure probability delta.
func (s *RandomSortSRS) thresholds(n int) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	f := s.fraction
	g1 := -math.Log(s.delta) / float64(n)
	g2 := -2 * math.Log(s.delta) / (3 * float64(n))
	hi = math.Min(1, f+g1+math.Sqrt(g1*g1+2*g1*f))
	lo = math.Max(0, f+g2-math.Sqrt(g2*g2+3*g2*f))
	return lo, hi
}

type keyed struct {
	key float64
	ev  stream.Event
}

// SampleBatch selects ceil(fraction*len(events)) items via bounded random
// sort and returns them as a single pseudo-stratum sample weighted n/k.
func (s *RandomSortSRS) SampleBatch(events []stream.Event) *Sample {
	n := len(events)
	k := int(math.Ceil(s.fraction * float64(n)))
	if k >= n {
		items := make([]stream.Event, n)
		copy(items, events)
		return &Sample{Strata: []StratumSample{{
			Stratum: SRSPseudoStratum, Items: items, Count: int64(n), Weight: 1,
		}}}
	}
	if k == 0 {
		return &Sample{Strata: []StratumSample{{
			Stratum: SRSPseudoStratum, Count: int64(n), Weight: 1,
		}}}
	}

	lo, hi := s.thresholds(n)
	accepted := make([]stream.Event, 0, k)
	waitlist := make([]keyed, 0, n/16+8)
	for _, e := range events {
		key := s.rng.Float64()
		switch {
		case key < lo:
			accepted = append(accepted, e)
		case key < hi:
			waitlist = append(waitlist, keyed{key: key, ev: e})
		}
	}
	if len(accepted) < k {
		// Sort only the waitlist — this is the step whose cost Spark's
		// thresholds bound but cannot eliminate.
		sort.Slice(waitlist, func(i, j int) bool { return waitlist[i].key < waitlist[j].key })
		need := k - len(accepted)
		if need > len(waitlist) {
			need = len(waitlist)
		}
		for i := 0; i < need; i++ {
			accepted = append(accepted, waitlist[i].ev)
		}
	} else if len(accepted) > k {
		// Thresholding overshot (probability <= delta); trim uniformly.
		s.rng.Shuffle(len(accepted), func(i, j int) {
			accepted[i], accepted[j] = accepted[j], accepted[i]
		})
		accepted = accepted[:k]
	}

	return &Sample{Strata: []StratumSample{{
		Stratum: SRSPseudoStratum,
		Items:   accepted,
		Count:   int64(n),
		Weight:  weightFor(int64(n), len(accepted)),
	}}}
}
