package sampling

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// StratifiedSTS reproduces Apache Spark's stratified sampling
// (`sampleByKey` / `sampleByKeyExact`, §4.1.1): the batch is first grouped
// by stratum with a groupBy(strata) shuffle, then simple random sampling
// via random sort runs on each stratum with a per-stratum sampling
// fraction proportional to the stratum's size.
//
// Crucially, the implementation executes — not simulates — the two costs
// the paper identifies (§4.1, §5.2):
//
//  1. The shuffle: input partitions are re-partitioned by stratum hash
//     across workers, requiring every worker to exchange data with every
//     other worker and to synchronize on a barrier before sampling can
//     begin (Spark's expensive join/groupByKey synchronization).
//  2. The sort: each stratum is sampled by the random-sort method, whose
//     sort step dominates for large strata.
//
// Unlike OASRS, the per-stratum sample size is proportional to the
// stratum's size (fraction * Ci), so a stratum with a high arrival rate
// costs proportionally more to process — the reason STS throughput trails
// OASRS even at the same accuracy (§5.2).
type StratifiedSTS struct {
	fraction float64
	workers  int
	exact    bool
	rng      *xrand.Rand
}

// NewStratifiedSTS returns an STS batch sampler selecting the given
// fraction of every stratum, executing the shuffle across `workers`
// parallel workers. exact selects sampleByKeyExact semantics (full random
// sort per stratum, exactly ceil(f*Ci) items) rather than the Bernoulli
// approximation.
func NewStratifiedSTS(fraction float64, workers int, exact bool, rng *xrand.Rand) *StratifiedSTS {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	if workers < 1 {
		workers = 1
	}
	return &StratifiedSTS{fraction: fraction, workers: workers, exact: exact, rng: rng}
}

var _ BatchSampler = (*StratifiedSTS)(nil)

func stratumWorker(stratum string, workers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(stratum))
	return int(h.Sum32()) % workers
}

// SampleBatch runs the full groupBy-shuffle-sort pipeline and returns the
// per-stratum sample with weights Ci/Yi.
func (s *StratifiedSTS) SampleBatch(events []stream.Event) *Sample {
	// Stage 0: the batch arrives split across input partitions, as it
	// would from the engine.
	inputs := stream.PartitionRoundRobin(events, s.workers)

	// Stage 1: shuffle. Every worker scans its input partition and routes
	// each item to the worker owning the item's stratum. outboxes[from][to]
	// collects the exchange; a WaitGroup barrier separates the map side
	// from the reduce side, exactly like Spark's stage boundary.
	outboxes := make([][][]stream.Event, s.workers)
	var mapWG sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		outboxes[w] = make([][]stream.Event, s.workers)
		mapWG.Add(1)
		go func(w int) {
			defer mapWG.Done()
			for _, e := range inputs[w] {
				dst := stratumWorker(e.Stratum, s.workers)
				outboxes[w][dst] = append(outboxes[w][dst], e)
			}
		}(w)
	}
	mapWG.Wait() // <- the synchronization barrier the paper calls out

	// Stage 2: each worker gathers its strata and samples them by random
	// sort. Workers use split RNGs so the stage is deterministic given the
	// parent seed.
	results := make([][]StratumSample, s.workers)
	rngs := make([]*xrand.Rand, s.workers)
	for w := 0; w < s.workers; w++ {
		rngs[w] = s.rng.Split()
	}
	var reduceWG sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		reduceWG.Add(1)
		go func(w int) {
			defer reduceWG.Done()
			// Gather this worker's inbox from every sender.
			var inbox []stream.Event
			for from := 0; from < s.workers; from++ {
				inbox = append(inbox, outboxes[from][w]...)
			}
			groups := stream.PartitionByStratum(inbox)
			rng := rngs[w]
			for stratum, items := range groups {
				results[w] = append(results[w], s.sampleStratum(stratum, items, rng))
			}
		}(w)
	}
	reduceWG.Wait() // <- second barrier before results can be merged

	var strata []StratumSample
	for _, rs := range results {
		strata = append(strata, rs...)
	}
	sortStrata(strata)
	return &Sample{Strata: strata}
}

// sampleStratum applies random-sort SRS to one stratum.
func (s *StratifiedSTS) sampleStratum(stratum string, items []stream.Event, rng *xrand.Rand) StratumSample {
	ci := int64(len(items))
	k := int(math.Ceil(s.fraction * float64(len(items))))
	if k >= len(items) {
		kept := make([]stream.Event, len(items))
		copy(kept, items)
		return StratumSample{Stratum: stratum, Items: kept, Count: ci, Weight: 1}
	}
	var selected []stream.Event
	if s.exact {
		// sampleByKeyExact: assign keys, fully sort, take the k smallest.
		ks := make([]keyed, len(items))
		for i, e := range items {
			ks[i] = keyed{key: rng.Float64(), ev: e}
		}
		sortKeyed(ks)
		selected = make([]stream.Event, 0, k)
		for i := 0; i < k; i++ {
			selected = append(selected, ks[i].ev)
		}
	} else {
		// sampleByKey: independent Bernoulli(fraction) per item.
		selected = make([]stream.Event, 0, k+k/4+1)
		for _, e := range items {
			if rng.Bool(s.fraction) {
				selected = append(selected, e)
			}
		}
	}
	return StratumSample{
		Stratum: stratum,
		Items:   selected,
		Count:   ci,
		Weight:  weightFor(ci, len(selected)),
	}
}

// sortKeyed sorts by key ascending.
func sortKeyed(ks []keyed) {
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
}
