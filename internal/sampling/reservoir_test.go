package sampling

import (
	"math"
	"testing"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func mkEvents(stratum string, n int) []stream.Event {
	out := make([]stream.Event, n)
	for i := range out {
		out[i] = stream.Event{Stratum: stratum, Value: float64(i)}
	}
	return out
}

func TestReservoirFillsBelowCapacity(t *testing.T) {
	r := NewReservoir(10, xrand.New(1))
	for _, e := range mkEvents("a", 5) {
		r.Add(e)
	}
	if got := len(r.Items()); got != 5 {
		t.Errorf("got %d items, want 5 (all kept when under capacity)", got)
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %d, want 5", r.Seen())
	}
}

func TestReservoirCapsAtCapacity(t *testing.T) {
	r := NewReservoir(10, xrand.New(2))
	for _, e := range mkEvents("a", 10000) {
		r.Add(e)
	}
	if got := len(r.Items()); got != 10 {
		t.Errorf("got %d items, want exactly 10", got)
	}
	if r.Seen() != 10000 {
		t.Errorf("Seen = %d, want 10000", r.Seen())
	}
}

func TestReservoirNonPositiveCapacity(t *testing.T) {
	r := NewReservoir(0, xrand.New(3))
	r.Add(stream.Event{Value: 1})
	if r.Capacity() != 1 || len(r.Items()) != 1 {
		t.Error("capacity <= 0 should clamp to 1")
	}
}

// TestReservoirUniformity verifies the defining invariant of reservoir
// sampling: after the stream ends, every item has equal probability N/n of
// being in the sample. We run many trials and chi-square-ish check the
// per-item selection frequencies.
func TestReservoirUniformity(t *testing.T) {
	const n, capN, trials = 100, 10, 20000
	counts := make([]int, n)
	rng := xrand.New(42)
	events := mkEvents("a", n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(capN, rng)
		for _, e := range events {
			r.Add(e)
		}
		for _, it := range r.Items() {
			counts[int(it.Value)]++
		}
	}
	want := float64(trials) * capN / n // expected selections per item
	sd := math.Sqrt(want * (1 - float64(capN)/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Errorf("item %d selected %d times, want %.0f±%.0f", i, c, want, 3*sd)
		}
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(5, xrand.New(4))
	for _, e := range mkEvents("a", 20) {
		r.Add(e)
	}
	r.Reset()
	if r.Seen() != 0 || len(r.Items()) != 0 {
		t.Error("Reset did not clear state")
	}
	r.Add(stream.Event{Value: 9})
	if got := r.Items(); len(got) != 1 || got[0].Value != 9 {
		t.Error("reservoir unusable after Reset")
	}
}

func TestReservoirItemsIsACopy(t *testing.T) {
	r := NewReservoir(2, xrand.New(5))
	r.Add(stream.Event{Value: 1})
	items := r.Items()
	items[0].Value = 99
	if r.Items()[0].Value != 1 {
		t.Error("Items leaked internal state")
	}
}

func TestSkipReservoirMatchesSemantics(t *testing.T) {
	s := NewSkipReservoir(10, xrand.New(6))
	for _, e := range mkEvents("a", 10000) {
		s.Add(e)
	}
	if got := len(s.Items()); got != 10 {
		t.Errorf("got %d items, want 10", got)
	}
	if s.Seen() != 10000 {
		t.Errorf("Seen = %d", s.Seen())
	}
}

func TestSkipReservoirUnderfill(t *testing.T) {
	s := NewSkipReservoir(10, xrand.New(7))
	for _, e := range mkEvents("a", 4) {
		s.Add(e)
	}
	if got := len(s.Items()); got != 4 {
		t.Errorf("got %d items, want all 4", got)
	}
}

// TestSkipReservoirUniformity checks Algorithm L yields the same uniform
// marginal selection probabilities as Algorithm R.
func TestSkipReservoirUniformity(t *testing.T) {
	const n, capN, trials = 100, 10, 20000
	counts := make([]int, n)
	rng := xrand.New(43)
	events := mkEvents("a", n)
	for trial := 0; trial < trials; trial++ {
		s := NewSkipReservoir(capN, rng)
		for _, e := range events {
			s.Add(e)
		}
		for _, it := range s.Items() {
			counts[int(it.Value)]++
		}
	}
	want := float64(trials) * capN / n
	sd := math.Sqrt(want * (1 - float64(capN)/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Errorf("item %d selected %d times, want %.0f±%.0f", i, c, want, 3*sd)
		}
	}
}

func TestSkipReservoirReset(t *testing.T) {
	s := NewSkipReservoir(5, xrand.New(8))
	for _, e := range mkEvents("a", 100) {
		s.Add(e)
	}
	s.Reset()
	if s.Seen() != 0 || len(s.Items()) != 0 {
		t.Error("Reset did not clear state")
	}
	for _, e := range mkEvents("a", 100) {
		s.Add(e)
	}
	if len(s.Items()) != 5 {
		t.Error("skip reservoir broken after Reset")
	}
}

func BenchmarkReservoirAdd(b *testing.B) {
	r := NewReservoir(1000, xrand.New(1))
	e := stream.Event{Stratum: "a", Value: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(e)
	}
}

func BenchmarkSkipReservoirAdd(b *testing.B) {
	r := NewSkipReservoir(1000, xrand.New(1))
	e := stream.Event{Stratum: "a", Value: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(e)
	}
}
