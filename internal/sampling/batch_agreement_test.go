package sampling

import (
	"math"
	"testing"
	"time"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// These tests pin the vectorized sampling path to the scalar one: the
// deterministic bookkeeping (seen counts, strata discovered, reservoir
// sizes, weights) must agree exactly, and the random part (which items
// survive) must agree in distribution.

func batchOf(events []stream.Event) *stream.EventBatch {
	b := stream.GetEventBatch()
	for _, e := range events {
		b.AppendEvent(e)
	}
	return b
}

// feedBatches offers events through AddBatch in randomly sized chunks,
// exercising the skip-chain discard at every chunk boundary.
func feedBatches(o *OASRS, events []stream.Event, rng *xrand.Rand) {
	for i := 0; i < len(events); {
		j := i + 1 + rng.Intn(40)
		if j > len(events) {
			j = len(events)
		}
		b := batchOf(events[i:j])
		o.AddBatch(b, 0, b.Len())
		b.Release()
		i = j
	}
}

func TestReservoirAddBatchBookkeepingMatchesAdd(t *testing.T) {
	events := mkEvents("a", 5000)
	b := batchOf(events)
	defer b.Release()

	ra := NewReservoir(64, xrand.New(1))
	for _, e := range events {
		ra.Add(e)
	}
	rb := NewReservoir(64, xrand.New(2))
	rb.AddBatch(b, 0, b.Len())

	if ra.Seen() != rb.Seen() {
		t.Errorf("Seen: Add %d, AddBatch %d", ra.Seen(), rb.Seen())
	}
	if len(ra.Items()) != len(rb.Items()) {
		t.Errorf("sample size: Add %d, AddBatch %d", len(ra.Items()), len(rb.Items()))
	}
	// Below capacity both paths are fully deterministic: every item kept
	// in arrival order.
	small := batchOf(events[:10])
	defer small.Release()
	rs := NewReservoir(64, xrand.New(3))
	rs.AddBatch(small, 0, small.Len())
	for i, it := range rs.Items() {
		if it != events[i] {
			t.Fatalf("fill phase reordered items: got %+v at %d", it, i)
		}
	}
}

// TestReservoirAddBatchUniformity is the distributional half of the
// equivalence claim: the skip-sampling loop must leave every stream item
// with the same marginal selection probability N/n as Algorithm R,
// including when the stream arrives as many small batches whose
// boundaries discard in-progress skip chains.
func TestReservoirAddBatchUniformity(t *testing.T) {
	const n, capN, trials = 100, 10, 20000
	counts := make([]int, n)
	rng := xrand.New(44)
	split := xrand.New(45)
	events := mkEvents("a", n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(capN, rng)
		for i := 0; i < n; {
			j := i + 1 + split.Intn(17)
			if j > n {
				j = n
			}
			b := batchOf(events[i:j])
			r.AddBatch(b, 0, b.Len())
			b.Release()
			i = j
		}
		for _, it := range r.Items() {
			counts[int(it.Value)]++
		}
	}
	want := float64(trials) * capN / n
	sd := math.Sqrt(want * (1 - float64(capN)/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sd {
			t.Errorf("item %d selected %d times, want %.0f±%.0f", i, c, want, 3*sd)
		}
	}
}

// mixedStream builds an interleaved multi-stratum stream with skewed
// arrival rates — the workload OASRS exists for.
func mixedStream(n int, rng *xrand.Rand) []stream.Event {
	strata := []string{"heavy", "heavy", "heavy", "medium", "medium", "rare"}
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Event, n)
	for i := range out {
		out[i] = stream.Event{
			Stratum: strata[rng.Intn(len(strata))],
			Value:   float64(rng.Intn(1000)),
			Time:    base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

func TestOASRSAddBatchBookkeepingMatchesAdd(t *testing.T) {
	events := mixedStream(20000, xrand.New(7))
	scalar := NewOASRS(120, nil, xrand.New(8))
	for _, e := range events {
		scalar.Add(e)
	}
	vec := NewOASRS(120, nil, xrand.New(9))
	feedBatches(vec, events, xrand.New(10))

	sa, sb := scalar.Finish(), vec.Finish()
	if len(sa.Strata) != len(sb.Strata) {
		t.Fatalf("strata: Add %d, AddBatch %d", len(sa.Strata), len(sb.Strata))
	}
	for i := range sa.Strata {
		a, b := sa.Strata[i], sb.Strata[i]
		if a.Stratum != b.Stratum {
			t.Errorf("stratum %d: Add %q, AddBatch %q", i, a.Stratum, b.Stratum)
		}
		if a.Count != b.Count {
			t.Errorf("stratum %q count: Add %d, AddBatch %d", a.Stratum, a.Count, b.Count)
		}
		if len(a.Items) != len(b.Items) {
			t.Errorf("stratum %q sample size: Add %d, AddBatch %d", a.Stratum, len(a.Items), len(b.Items))
		}
		if a.Weight != b.Weight {
			t.Errorf("stratum %q weight: Add %g, AddBatch %g", a.Stratum, a.Weight, b.Weight)
		}
	}
}

// TestOASRSAddBatchUnbiasedEstimates is the end-to-end statistical
// agreement check: across many intervals, the weighted-sum estimator
// over AddBatch samples must be unbiased for the true interval sum,
// exactly like the scalar path (paper Equation 1).
func TestOASRSAddBatchUnbiasedEstimates(t *testing.T) {
	const trials = 300
	var scalarErr, vecErr float64
	rng := xrand.New(21)
	for trial := 0; trial < trials; trial++ {
		events := mixedStream(4000, xrand.New(uint64(100+trial)))
		var truth float64
		for _, e := range events {
			truth += e.Value
		}
		est := func(s *Sample) float64 {
			var sum float64
			for _, st := range s.Strata {
				for _, it := range st.Items {
					sum += st.Weight * it.Value
				}
			}
			return sum
		}
		scalar := NewOASRS(90, nil, xrand.New(uint64(200+trial)))
		for _, e := range events {
			scalar.Add(e)
		}
		vec := NewOASRS(90, nil, xrand.New(uint64(300+trial)))
		feedBatches(vec, events, rng)
		scalarErr += (est(scalar.Finish()) - truth) / truth
		vecErr += (est(vec.Finish()) - truth) / truth
	}
	// Mean relative error of an unbiased estimator over 300 trials stays
	// well under 2%; a biased skip loop (off-by-one in the acceptance
	// probability) shows up as several percent.
	if m := math.Abs(scalarErr) / trials; m > 0.02 {
		t.Errorf("scalar path mean relative error %.4f, want ~0", m)
	}
	if m := math.Abs(vecErr) / trials; m > 0.02 {
		t.Errorf("batch path mean relative error %.4f, want ~0", m)
	}
}

// TestOASRSScalarRunCacheResetsOnFinish guards the Add fast path: the
// cached (stratum, reservoir) pair must not leak across intervals, or
// the first run of the next interval lands in a reservoir Finish
// already emptied.
func TestOASRSScalarRunCacheResetsOnFinish(t *testing.T) {
	o := NewOASRS(10, nil, xrand.New(31))
	for i := 0; i < 50; i++ {
		o.Add(stream.Event{Stratum: "a", Value: float64(i)})
	}
	_ = o.Finish()
	o.Add(stream.Event{Stratum: "a", Value: 99})
	s := o.Finish()
	if len(s.Strata) != 1 || s.Strata[0].Count != 1 {
		t.Fatalf("stale run cache: second interval sample = %+v", s.Strata)
	}
}

// TestOASRSAddBatchDictCollisionAcrossBatches guards the dense table:
// dictionary IDs are batch-local, so ID 0 meaning "a" in one batch and
// "b" in the next must still route records to the right reservoirs.
func TestOASRSAddBatchDictCollisionAcrossBatches(t *testing.T) {
	o := NewOASRS(100, FixedPerStratum{N: 50}, xrand.New(32))
	b1 := batchOf(mkEvents("a", 7))
	o.AddBatch(b1, 0, b1.Len())
	b1.Release()
	b2 := batchOf(mkEvents("b", 5)) // "b" gets dictionary ID 0 here too
	o.AddBatch(b2, 0, b2.Len())
	b2.Release()
	s := o.Finish()
	if len(s.Strata) != 2 {
		t.Fatalf("got %d strata, want 2: %+v", len(s.Strata), s.Strata)
	}
	counts := map[string]int64{}
	for _, st := range s.Strata {
		counts[st.Stratum] = st.Count
	}
	if counts["a"] != 7 || counts["b"] != 5 {
		t.Errorf("per-stratum counts %v, want a:7 b:5", counts)
	}
}

func BenchmarkOASRSAddBatch(b *testing.B) {
	events := mixedStream(4096, xrand.New(51))
	batch := batchOf(events)
	defer batch.Release()
	o := NewOASRS(200, nil, xrand.New(52))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.AddBatch(batch, 0, batch.Len())
	}
}

func BenchmarkOASRSAddScalar(b *testing.B) {
	events := mixedStream(4096, xrand.New(51))
	o := NewOASRS(200, nil, xrand.New(52))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range events {
			o.Add(e)
		}
	}
}
