package broker

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	b := New()
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(srv.Close)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return srv, cli
}

func TestTCPRoundTrip(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	n, err := cli.Produce("in", recs("tcp", 25))
	if err != nil || n != 25 {
		t.Fatalf("produce = %d, %v", n, err)
	}
	var fetched int
	for p := 0; p < 2; p++ {
		got, err := cli.Fetch("in", p, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		fetched += len(got)
	}
	if fetched != 25 {
		t.Errorf("fetched %d records over TCP, want 25", fetched)
	}
}

func TestTCPErrorsPropagate(t *testing.T) {
	_, cli := startServer(t)
	if _, err := cli.Fetch("missing", 0, 0, 10); err == nil ||
		!strings.Contains(err.Error(), "unknown topic") {
		t.Errorf("fetch from missing topic: %v", err)
	}
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.CreateTopic("t", 1); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate create over TCP: %v", err)
	}
}

func TestTCPHighWatermarkAndOffsets(t *testing.T) {
	_, cli := startServer(t)
	_ = cli.CreateTopic("in", 1)
	_, _ = cli.Produce("in", recs("k", 5))
	hwm, err := cli.HighWatermark("in", 0)
	if err != nil || hwm != 5 {
		t.Errorf("hwm = %d, %v", hwm, err)
	}
	if err := cli.Commit("g", "in", 0, 3); err != nil {
		t.Fatal(err)
	}
	off, err := cli.Committed("g", "in", 0)
	if err != nil || off != 3 {
		t.Errorf("committed = %d, %v", off, err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	cli0, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli0.Close()
	if err := cli0.CreateTopic("in", 4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cli.Close()
			for i := 0; i < 50; i++ {
				if _, err := cli.Produce("in", recs("key", 2)); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	for p := 0; p < 4; p++ {
		hwm, err := cli0.HighWatermark("in", p)
		if err != nil {
			t.Fatal(err)
		}
		total += hwm
	}
	if total != 4*50*2 {
		t.Errorf("total = %d, want %d", total, 4*50*2)
	}
}

func TestTCPRecordFidelity(t *testing.T) {
	_, cli := startServer(t)
	_ = cli.CreateTopic("in", 1)
	when := time.Date(2017, 12, 11, 1, 2, 3, 0, time.UTC)
	_, err := cli.Produce("in", []Record{{Key: "tcp", Value: 123.456, Time: when}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cli.Fetch("in", 0, 0, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("fetch: %v (%d)", err, len(got))
	}
	r := got[0]
	if r.Key != "tcp" || r.Value != 123.456 || !r.Time.Equal(when) || r.Offset != 0 {
		t.Errorf("record mangled in transit: %+v", r)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, cli := startServer(t)
	_ = cli.CreateTopic("in", 1)
	srv.Close()
	if _, err := cli.Produce("in", recs("k", 1)); err == nil {
		t.Error("produce after server close should fail")
	}
}
