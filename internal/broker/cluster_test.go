package broker

import (
	"fmt"
	"testing"
	"time"
)

// ---- in-process cluster harness ----

// testCluster is N broker servers with attached cluster nodes, all on
// loopback listeners.
type testCluster struct {
	t       *testing.T
	brokers []*Broker
	servers []*Server
	nodes   []*ClusterNode
	ids     []string
	addrs   []string
	killed  []bool
}

// startCluster boots an n-member cluster. All nodes are attached before
// any starts heartbeating, mirroring how the daemons come up.
func startCluster(t *testing.T, n int, tune func(*NodeConfig)) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, killed: make([]bool, n)}
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		b := New()
		srv, err := Serve(b, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		peers[id] = srv.Addr()
		tc.brokers = append(tc.brokers, b)
		tc.servers = append(tc.servers, srv)
		tc.ids = append(tc.ids, id)
		tc.addrs = append(tc.addrs, srv.Addr())
	}
	for i := 0; i < n; i++ {
		cfg := NodeConfig{
			ID:             tc.ids[i],
			Peers:          peers,
			Replicas:       2,
			MinISR:         2,
			HeartbeatEvery: 10 * time.Millisecond,
			FailAfter:      2,
		}
		if tune != nil {
			tune(&cfg)
		}
		node, err := NewClusterNode(tc.brokers[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.servers[i].AttachNode(node)
		tc.nodes = append(tc.nodes, node)
	}
	for _, node := range tc.nodes {
		node.Start()
	}
	t.Cleanup(tc.stopAll)
	return tc
}

// kill fail-stops one member: its node, server and broker all go away.
func (tc *testCluster) kill(i int) {
	if tc.killed[i] {
		return
	}
	tc.killed[i] = true
	tc.nodes[i].Close()
	tc.servers[i].Close()
	tc.brokers[i].Close()
}

func (tc *testCluster) stopAll() {
	for i := range tc.servers {
		tc.kill(i)
	}
}

// indexOf maps a member id back to its slot.
func (tc *testCluster) indexOf(id string) int {
	for i, nid := range tc.ids {
		if nid == id {
			return i
		}
	}
	tc.t.Fatalf("unknown node id %q", id)
	return -1
}

// dialCluster opens a fast-retrying routing client on the cluster.
func (tc *testCluster) dialCluster() *ClusterClient {
	tc.t.Helper()
	cc, err := DialClusterWithOptions(tc.addrs, ClusterClientOptions{
		Retries: 20,
		Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.t.Cleanup(func() { _ = cc.Close() })
	return cc
}

// keylessRecs builds n keyless records with distinct values v0..v0+n-1.
func keylessRecs(v0, n int) []Record {
	out := make([]Record, n)
	base := time.Unix(0, 0).UTC()
	for i := range out {
		out[i] = Record{Value: float64(v0 + i), Time: base.Add(time.Duration(v0+i) * time.Millisecond)}
	}
	return out
}

// fetchAllValues drains every partition through the routing client and
// returns value -> occurrence count.
func fetchAllValues(t *testing.T, cc *ClusterClient, topic string) map[float64]int {
	t.Helper()
	parts, err := cc.Partitions(topic)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[float64]int)
	for p := 0; p < parts; p++ {
		hwm, err := cc.HighWatermark(topic, p)
		if err != nil {
			t.Fatalf("hwm p%d: %v", p, err)
		}
		off := int64(0)
		for off < hwm {
			recs, err := cc.Fetch(topic, p, off, 4096)
			if err != nil {
				t.Fatalf("fetch p%d@%d: %v", p, off, err)
			}
			if len(recs) == 0 {
				t.Fatalf("fetch p%d@%d returned nothing below hwm %d", p, off, hwm)
			}
			for i, r := range recs {
				if r.Offset != off+int64(i) {
					t.Fatalf("p%d: offset %d at position %d (want %d)", p, r.Offset, i, off+int64(i))
				}
				got[r.Value]++
			}
			off += int64(len(recs))
		}
	}
	return got
}

// ---- placement ----

func TestReplicasForDeterministicAndSpread(t *testing.T) {
	members := []string{"n0", "n1", "n2", "n3", "n4"}
	lead := make(map[string]int)
	for p := 0; p < 64; p++ {
		a := replicasFor("t", p, members, 3)
		b := replicasFor("t", p, members, 3)
		if len(a) != 3 {
			t.Fatalf("partition %d: %d replicas", p, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("placement not deterministic at partition %d", p)
			}
		}
		seen := map[string]bool{}
		for _, id := range a {
			if seen[id] {
				t.Fatalf("partition %d: duplicate replica %s", p, id)
			}
			seen[id] = true
		}
		lead[a[0]]++
	}
	// Rendezvous hashing should spread leadership; no member may own
	// everything or nothing across 64 partitions.
	for _, id := range members {
		if lead[id] == 0 || lead[id] == 64 {
			t.Fatalf("leadership skew: %v", lead)
		}
	}
}

func TestReplicasForStableUnderMembership(t *testing.T) {
	// The replica SET of a partition is a function of the full member
	// list only: a death never moves data, just leadership.
	members := []string{"a", "b", "c"}
	for p := 0; p < 16; p++ {
		first := replicasFor("x", p, members, 2)
		again := replicasFor("x", p, members, 2)
		for i := range first {
			if first[i] != again[i] {
				t.Fatal("unstable placement")
			}
		}
	}
}

// ---- data path ----

func TestClusterProduceFetchReplicates(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	const total = 4000
	for off := 0; off < total; off += 500 {
		if _, err := cc.Produce("t", keylessRecs(off, 500)); err != nil {
			t.Fatal(err)
		}
	}
	got := fetchAllValues(t, cc, "t")
	if len(got) != total {
		t.Fatalf("fetched %d distinct values, want %d", len(got), total)
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("value %v appeared %d times", v, c)
		}
	}
	// Every partition's log must exist identically on BOTH replicas.
	for p := 0; p < 4; p++ {
		reps := replicasFor("t", p, tc.ids, 2)
		var hwms []int64
		for _, id := range reps {
			b := tc.brokers[tc.indexOf(id)]
			hwm, err := b.HighWatermark("t", p)
			if err != nil {
				t.Fatal(err)
			}
			hwms = append(hwms, hwm)
		}
		if hwms[0] != hwms[1] {
			t.Fatalf("partition %d replicas diverge: %v on %v", p, hwms, reps)
		}
		// Non-replicas must hold nothing.
		for _, id := range tc.ids {
			if id == reps[0] || id == reps[1] {
				continue
			}
			hwm, _ := tc.brokers[tc.indexOf(id)].HighWatermark("t", p)
			if hwm != 0 {
				t.Fatalf("non-replica %s has %d records of partition %d", id, hwm, p)
			}
		}
	}
}

func TestNotLeaderRedirectCarriesHint(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	m, err := cc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	leader := m.LeaderOf("t", 0)
	if leader == "" {
		t.Fatal("no leader in meta")
	}
	// A raw client pointed at a non-leader replica must get a NotLeader
	// rejection naming the real leader.
	reps := replicasFor("t", 0, tc.ids, 2)
	follower := reps[1]
	if follower == leader {
		t.Fatalf("placement broken: leader %s == follower %s", leader, follower)
	}
	cli, err := Dial(tc.addrs[tc.indexOf(follower)])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	_, err = cli.ProducePartition("t", 0, 0, 0, keylessRecs(0, 1))
	if !IsNotLeader(err) {
		t.Fatalf("produce at follower: err = %v, want NotLeader", err)
	}
	if hint := leaderHint(err); hint != leader {
		t.Fatalf("leader hint = %q, want %q", hint, leader)
	}
	// And fetch at a non-replica must also redirect.
	for _, id := range tc.ids {
		if id != reps[0] && id != reps[1] {
			cli2, err := Dial(tc.addrs[tc.indexOf(id)])
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = cli2.Close() }()
			if _, err := cli2.Fetch("t", 0, 0, 10); !IsNotLeader(err) {
				t.Fatalf("fetch at non-replica: err = %v, want NotLeader", err)
			}
		}
	}
}

func TestClusterClientWorksAgainstSoloServer(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cc, err := DialCluster([]string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cc.Close() }()
	if _, err := cc.Produce("t", keylessRecs(0, 100)); err != nil {
		t.Fatal(err)
	}
	got := fetchAllValues(t, cc, "t")
	if len(got) != 100 {
		t.Fatalf("fetched %d values, want 100", len(got))
	}
	if err := cc.Commit("g", "t", 0, 42); err != nil {
		t.Fatal(err)
	}
	if off, err := cc.Committed("g", "t", 0); err != nil || off != 42 {
		t.Fatalf("committed = %d, %v", off, err)
	}
}

func TestProducerDedupAcrossRetries(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	m, _ := cc.Meta()
	leader := m.LeaderOf("t", 0)
	cli, err := Dial(tc.addrs[tc.indexOf(leader)])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	batch := keylessRecs(0, 10)
	// The same (pid, seq) delivered three times must append once.
	for i := 0; i < 3; i++ {
		if _, err := cli.ProducePartition("t", 0, 77, 1, batch); err != nil {
			t.Fatal(err)
		}
	}
	hwm, err := cc.HighWatermark("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if hwm != 10 {
		t.Fatalf("hwm = %d after duplicate produces, want 10", hwm)
	}
	// A new sequence appends again.
	if _, err := cli.ProducePartition("t", 0, 77, 2, batch); err != nil {
		t.Fatal(err)
	}
	if hwm, _ = cc.HighWatermark("t", 0); hwm != 20 {
		t.Fatalf("hwm = %d after seq 2, want 20", hwm)
	}
}

// TestLeaderRoutedCommitsExact pins the consumer-group commit path:
// commits route through the partition leader and replicate to its
// follower replicas, so Committed is exact (reads at the leader) and
// survives a leader failover — including a commit that moves
// BACKWARDS, which the old best-effort max-over-members fan-out could
// never represent.
func TestLeaderRoutedCommitsExact(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Produce("t", keylessRecs(0, 500)); err != nil {
		t.Fatal(err)
	}
	if err := cc.Commit("g", "t", 0, 400); err != nil {
		t.Fatal(err)
	}
	// A rewind (seek back) must stick: exact semantics, not max.
	if err := cc.Commit("g", "t", 0, 250); err != nil {
		t.Fatal(err)
	}
	if off, err := cc.Committed("g", "t", 0); err != nil || off != 250 {
		t.Fatalf("committed = %d, %v (want the rewound 250)", off, err)
	}
	// A non-replica answers Committed with a NotLeader redirect rather
	// than a stale local value.
	reps := replicasFor("t", 0, tc.ids, 2)
	for _, id := range tc.ids {
		if id == reps[0] || id == reps[1] {
			continue
		}
		cli, err := Dial(tc.addrs[tc.indexOf(id)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Committed("g", "t", 0); !IsNotLeader(err) {
			t.Fatalf("committed at non-replica: %v, want NotLeader", err)
		}
		_ = cli.Close()
	}
	// The committed offset survives the leader's death: the promoted
	// follower holds the replicated copy.
	m, _ := cc.Meta()
	leader := m.LeaderOf("t", 0)
	tc.kill(tc.indexOf(leader))
	deadline := time.Now().Add(5 * time.Second)
	for {
		off, err := cc.Committed("g", "t", 0)
		if err == nil && off == 250 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("committed after failover = %d, %v (want 250)", off, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- failover ----

func TestClusterFailoverPromotesFollowerNoLossNoDup(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	m, err := cc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	oldLeader := m.LeaderOf("t", 0)
	if oldLeader == "" {
		t.Fatal("no leader for partition 0")
	}

	const batches, per = 40, 100
	for i := 0; i < batches; i++ {
		if i == batches/2 {
			// Kill partition 0's leader mid-stream. The produce stream
			// must continue through promotion with no loss and no dup.
			tc.kill(tc.indexOf(oldLeader))
		}
		if _, err := cc.Produce("t", keylessRecs(i*per, per)); err != nil {
			t.Fatalf("produce batch %d: %v", i, err)
		}
	}

	// The survivors must have promoted a different leader for any
	// partition the dead node led.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err = cc.Meta()
		if err == nil && m.LeaderOf("t", 0) != oldLeader && m.LeaderOf("t", 0) != "" &&
			m.LeaderOf("t", 1) != oldLeader && m.LeaderOf("t", 1) != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion: meta %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	got := fetchAllValues(t, cc, "t")
	total := batches * per
	var missing, dup int
	for v := 0; v < total; v++ {
		switch got[float64(v)] {
		case 0:
			missing++
		case 1:
		default:
			dup++
		}
	}
	if missing != 0 || dup != 0 {
		t.Fatalf("after failover: %d missing, %d duplicated of %d records", missing, dup, total)
	}
}

func TestClusterSurvivesFollowerDeath(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	m, _ := cc.Meta()
	reps := replicasFor("t", 0, tc.ids, 2)
	follower := reps[1]
	if follower == m.LeaderOf("t", 0) {
		follower = reps[0]
	}
	if _, err := cc.Produce("t", keylessRecs(0, 200)); err != nil {
		t.Fatal(err)
	}
	tc.kill(tc.indexOf(follower))
	// Produce must keep working: MinISR shrinks to the live replica
	// count once the death is detected.
	for i := 0; i < 5; i++ {
		if _, err := cc.Produce("t", keylessRecs(200+i*100, 100)); err != nil {
			t.Fatalf("produce after follower death: %v", err)
		}
	}
	got := fetchAllValues(t, cc, "t")
	if len(got) != 700 {
		t.Fatalf("fetched %d values, want 700", len(got))
	}
}

// TestBackfillCarriesOtherProducersDedup pins the failover-dedup edge:
// a batch that reaches a follower inside ANOTHER producer's backfill
// must still install the original producer's dedup entry there, so a
// retry of that batch against the promoted follower is suppressed. A
// chunk the follower gap-skips must install nothing.
func TestBackfillCarriesOtherProducersDedup(t *testing.T) {
	tc := startCluster(t, 2, func(cfg *NodeConfig) {
		cfg.Replicas = 2
		cfg.MinISR = 2
	})
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	m, _ := cc.Meta()
	leader := m.LeaderOf("t", 0)
	li := tc.indexOf(leader)
	follower := tc.ids[0]
	if follower == leader {
		follower = tc.ids[1]
	}
	fi := tc.indexOf(follower)

	// Producer A's batch lands in the LEADER's log + journal only — as
	// if the push to the follower failed transiently mid-produce.
	batchA := keylessRecs(0, 10)
	if _, err := tc.brokers[li].producePartition("t", 0, batchA); err != nil {
		t.Fatal(err)
	}
	tc.nodes[li].noteBatch(tpKey("t", 0), batchMeta{pid: 11, seq: 1, base: 0, end: 10})

	// Producer B produces normally: the follower is at 0, the chunk
	// base is 10 → gap → the leader backfills [0, 20) carrying BOTH
	// producers' journal entries.
	cliL, err := Dial(tc.addrs[li])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cliL.Close() }()
	if _, err := cliL.ProducePartition("t", 0, 22, 1, keylessRecs(10, 10)); err != nil {
		t.Fatal(err)
	}
	if hwm, _ := tc.brokers[fi].HighWatermark("t", 0); hwm != 20 {
		t.Fatalf("follower hwm = %d, want 20 (backfill)", hwm)
	}

	// Leader dies; producer A retries its batch against the promoted
	// follower, which must recognize (pid 11, seq 1) from the backfill.
	tc.kill(li)
	cliF, err := Dial(tc.addrs[fi])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cliF.Close() }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = cliF.ProducePartition("t", 0, 11, 1, batchA); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("promoted follower never accepted the retry: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if hwm, err := cliF.HighWatermark("t", 0); err != nil || hwm != 20 {
		t.Fatalf("hwm after retry = %d, %v — want 20 (dedup suppressed the re-append)", hwm, err)
	}
}

// TestDeposedLeaderDemotesAndRejoins pins the fencing/liveness
// separation under the fail-recover membership model: when the
// majority deposes a leader, the deposed node's replicates are
// rejected — and those ANSWERED rejections must not feed its failure
// detector (a deposed leader must never "detect" the healthy majority
// as dead and commit solo). On learning of its deposal it demotes
// itself to the joining state, truncates its unacked tail back to the
// promoted leader's committed watermark, and re-announces with a
// status version above the accusation. Through the whole episode every
// produce it ACKED must be visible exactly once.
func TestDeposedLeaderDemotesAndRejoins(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Produce("t", keylessRecs(0, 100)); err != nil {
		t.Fatal(err)
	}
	m, _ := cc.Meta()
	leader := m.LeaderOf("t", 0)
	li := tc.indexOf(leader)

	// The other two members declare the leader dead, as they would
	// after it stalled through its heartbeat deadline.
	for i, node := range tc.nodes {
		if i != li {
			node.mergeView(node.epoch+1, map[string]PeerStatus{leader: {Dead: true, Ver: 1}})
		}
	}

	// The deposed leader keeps trying to produce fresh batches. While
	// fenced, every replicate is rejected (answered) and the produce
	// fails under-replicated; meanwhile its heartbeats bring back the
	// deposal, it demotes, resyncs, re-announces, and completes the
	// takeover handshake — after which produces succeed, REPLICATED.
	// (Whether the first attempts land in the fenced window is timing;
	// the invariants — every ack exactly-once, never a solo commit
	// that survives as a divergent log — are asserted below.)
	cliL, err := Dial(tc.addrs[li])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cliL.Close() }()
	acked := map[int]bool{}
	fenced := 0
	deadline := time.Now().Add(10 * time.Second)
	seq, batch := uint64(0), -1
	for {
		seq++
		batch++
		v0 := 1000 + batch*10
		if _, err := cliL.ProducePartition("t", 0, 33, seq, keylessRecs(v0, 10)); err == nil {
			acked[v0] = true
			break
		}
		fenced++
		if time.Now().After(deadline) {
			t.Fatal("deposed leader never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("%d produce attempts fenced before the rejoin", fenced)

	// The fencing rejections must not have poisoned its view: it never
	// declared the healthy majority dead.
	if _, dead := tc.nodes[li].viewSnapshot(); len(dead) != 0 {
		t.Fatalf("deposed leader marked peers dead off fencing rejections: %v", dead)
	}

	// Acked ⇒ exactly once; everything ⇒ at most once. (A FAILED
	// produce may still become visible — either truncated at rejoin or
	// committed by a later round's backfill; produce errors are
	// at-least-once, exactly as before this refactor.)
	got := fetchAllValues(t, cc, "t")
	for v := 0; v < 100; v++ {
		if got[float64(v)] != 1 {
			t.Fatalf("pre-deposal record %d appears %d times", v, got[float64(v)])
		}
	}
	for v0 := range acked {
		for i := 0; i < 10; i++ {
			if got[float64(v0+i)] != 1 {
				t.Fatalf("acked record %d appears %d times", v0+i, got[float64(v0+i)])
			}
		}
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("record %v appears %d times", v, c)
		}
	}
	// Both replicas converge to the same log.
	reps := replicasFor("t", 0, tc.ids, 2)
	deadline = time.Now().Add(5 * time.Second)
	for {
		h0, _ := tc.brokers[tc.indexOf(reps[0])].HighWatermark("t", 0)
		h1, _ := tc.brokers[tc.indexOf(reps[1])].HighWatermark("t", 0)
		if h0 == h1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverge after rejoin: %d vs %d", h0, h1)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
