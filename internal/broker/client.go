package broker

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamapprox/internal/broker/storage"
	"streamapprox/internal/stream"
)

// Client is a TCP client for a broker Server. Methods mirror Broker's.
// It is safe for concurrent use.
//
// On dial the client negotiates the binary codec with a "hello" control
// op. Against a binary-capable server the client runs pipelined: every
// request carries a correlation ID, a dedicated reader goroutine
// matches responses back to waiters, and any number of goroutines can
// have requests in flight on the one connection. Against an older
// JSON-only server the client falls back to the legacy lockstep
// protocol, serializing one round-trip at a time under a mutex.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	binary bool // negotiated at dial; immutable afterwards
	v2     bool // peer accepts trace-carrying v2 request headers
	frames bool // peer accepts the raw-frame (zero-copy) ops
	batch  bool // peer accepts the multi-partition replicate batch op

	// trace is the ID stamped on every subsequent binary request (0 =
	// untraced). Connection-scoped on purpose: the ingest plane owns a
	// dedicated connection per partition pipeline, so the stamp follows
	// the pipeline without widening every method signature.
	trace atomic.Uint64

	// reqTimeout is the connection's default per-request deadline in
	// nanoseconds (0 = none); cluster-internal ops that need a tighter
	// bound (heartbeat probes) pass an explicit override.
	reqTimeout atomic.Int64

	// mu serializes whole round-trips in lockstep mode, and just the
	// write+flush of a frame in pipelined mode.
	mu sync.Mutex

	// Pipelined-mode state: pending maps in-flight correlation IDs to
	// their waiters. The reader goroutine owns c.br.
	pendMu  sync.Mutex
	pending map[uint64]chan *frameBuf
	nextID  uint64
	readErr error
	closed  bool
}

// ClientOptions tunes a client connection's dialing and deadline
// behaviour. The zero value means the defaults below.
type ClientOptions struct {
	// DialTimeout bounds TCP connect: a blackholed host (SYNs dropped,
	// no RST) must not stall the caller for the kernel's multi-minute
	// connect timeout. Default DefaultDialTimeout; negative disables.
	DialTimeout time.Duration
	// RequestTimeout bounds every RPC round-trip on the connection —
	// frame write, server turnaround and response read. A stalled or
	// blackholed peer turns into an error instead of a wedged
	// goroutine. Default DefaultRequestTimeout; negative disables.
	RequestTimeout time.Duration
}

const (
	// DefaultDialTimeout is the TCP connect bound when ClientOptions
	// leaves DialTimeout zero.
	DefaultDialTimeout = 3 * time.Second
	// DefaultRequestTimeout is the per-RPC bound when ClientOptions
	// leaves RequestTimeout zero: generous enough for the largest batch
	// over a congested link, small enough that nothing wedges forever.
	DefaultRequestTimeout = 30 * time.Second
)

func (o ClientOptions) dialTimeout() time.Duration {
	switch {
	case o.DialTimeout < 0:
		return 0
	case o.DialTimeout == 0:
		return DefaultDialTimeout
	}
	return o.DialTimeout
}

func (o ClientOptions) requestTimeout() time.Duration {
	switch {
	case o.RequestTimeout < 0:
		return 0
	case o.RequestTimeout == 0:
		return DefaultRequestTimeout
	}
	return o.RequestTimeout
}

// Dial connects to a broker server with default options, negotiating
// the fastest protocol the server supports.
func Dial(addr string) (*Client, error) {
	return DialWithOptions(addr, ClientOptions{})
}

// DialWithOptions is Dial with explicit timeouts.
func DialWithOptions(addr string, opts ClientOptions) (*Client, error) {
	c, err := dial(addr, opts)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&wireRequest{Op: opHello})
	switch {
	case err == nil && resp.N >= int(binVersion):
		c.binary = true
		c.v2 = resp.N >= int(binVersion2)
		c.frames = resp.N >= helloFrames
		c.batch = resp.N >= helloBatch
		c.pending = make(map[uint64]chan *frameBuf)
		go c.readLoop()
	case err != nil && isUnknownOp(err):
		// Pre-codec server: stay on the JSON lockstep protocol.
	case err != nil:
		_ = c.conn.Close()
		return nil, fmt.Errorf("broker hello: %w", err)
	}
	return c, nil
}

// DialJSON connects using only the legacy JSON lockstep protocol, even
// to a binary-capable server. It exists for talking to very old peers
// explicitly and for benchmarking the binary codec against its JSON
// baseline in the same run.
func DialJSON(addr string) (*Client, error) { return dial(addr, ClientOptions{}) }

func dial(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("broker dial: %w", err)
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	c.reqTimeout.Store(int64(opts.requestTimeout()))
	return c, nil
}

// isUnknownOp reports whether err is a server rejecting an op it does
// not know — the signature of a pre-codec peer answering hello.
func isUnknownOp(err error) bool { return strings.Contains(err.Error(), "unknown op") }

// SetTraceID stamps id on every subsequent request sent over this
// connection (0 clears it). Against a peer that has not negotiated the
// v2 header the stamp is kept locally but never put on the wire, so
// old servers keep decoding every frame.
func (c *Client) SetTraceID(id uint64) { c.trace.Store(id) }

// SetRequestTimeout replaces the connection's per-request deadline for
// every subsequent RPC (d <= 0 disables it) — the per-op override for
// callers that own the connection, mirroring SetTraceID.
func (c *Client) SetRequestTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.reqTimeout.Store(int64(d))
}

// timeout returns the connection's current per-request deadline.
func (c *Client) timeout() time.Duration { return time.Duration(c.reqTimeout.Load()) }

// errTimeout builds the deadline error for one timed-out request. It
// wraps os.ErrDeadlineExceeded so callers can distinguish "peer
// stalled" (a transport failure feeding failure detection) from an
// answered rejection; it is NOT a remoteError.
func errTimeout(what string, d time.Duration) error {
	return fmt.Errorf("broker: %s timed out after %v: %w", what, d, os.ErrDeadlineExceeded)
}

// traceFor returns the trace ID to encode into the next frame: the
// connection's stamp when the peer speaks v2, zero otherwise.
func (c *Client) traceFor() uint64 {
	if !c.v2 {
		return 0
	}
	return c.trace.Load()
}

// checkTopic guards the binary encoding's uint16 topic-length field.
func checkTopic(topic string) error {
	if len(topic) > 1<<16-1 {
		return fmt.Errorf("broker: topic name too long (%d bytes)", len(topic))
	}
	return nil
}

// errClientClosed is returned for requests on a closed client when the
// underlying cause is unknown.
var errClientClosed = errors.New("broker: client closed")

// Close closes the connection. In pipelined mode the reader goroutine
// fails any in-flight requests and exits.
func (c *Client) Close() error {
	c.pendMu.Lock()
	c.closed = true
	c.pendMu.Unlock()
	return c.conn.Close()
}

// roundTrip performs one lockstep JSON request/response under the
// connection's default deadline. It is the only I/O path in JSON mode,
// and carries the hello during dial.
func (c *Client) roundTrip(req *wireRequest) (*wireResponse, error) {
	return c.roundTripT(c.timeout(), req)
}

// roundTripT is roundTrip with an explicit deadline covering the whole
// round-trip. A deadline error poisons the lockstep stream (a partial
// frame may sit half-read), so the connection is closed: fail fast
// beats decoding garbage.
func (c *Client) roundTripT(timeout time.Duration, req *wireRequest) (*wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	fail := func(err error) (*wireResponse, error) {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			_ = c.conn.Close()
			return nil, errTimeout("request", timeout)
		}
		return nil, err
	}
	if err := writeFrame(c.bw, req); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	var resp wireResponse
	if err := readFrame(c.br, &resp); err != nil {
		return fail(err)
	}
	if resp.Err != "" {
		return nil, &remoteError{msg: resp.Err}
	}
	return &resp, nil
}

// callBinary sends one binary request under the connection's default
// deadline. encode must fill fb with a complete frame carrying corr.
// The returned frame is owned by the caller, who must putFrame it.
func (c *Client) callBinary(encode func(fb *frameBuf, corr uint64)) (*frameBuf, error) {
	return c.callBinaryT(c.timeout(), encode)
}

// callBinaryT is callBinary with an explicit deadline. The deadline
// covers the frame write AND the wait for the matched response. A
// write failure aborts the whole connection — a half-written frame
// corrupts the pipelined stream for every other in-flight request. A
// response timeout only abandons this request's waiter: the stream is
// intact, a late response is dropped as a stray by correlation ID.
func (c *Client) callBinaryT(timeout time.Duration, encode func(fb *frameBuf, corr uint64)) (*frameBuf, error) {
	ch := make(chan *frameBuf, 1)
	c.pendMu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.pendMu.Unlock()
		if err == nil {
			err = errClientClosed
		}
		return nil, err
	}
	corr := c.nextID
	c.nextID++
	c.pending[corr] = ch
	c.pendMu.Unlock()

	fb := getFrame()
	encode(fb, corr)
	c.mu.Lock()
	if timeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	err := writeRawFrame(c.bw, fb.b)
	if err == nil {
		err = c.bw.Flush()
	}
	if timeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	c.mu.Unlock()
	putFrame(fb)
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			err = errTimeout("request write", timeout)
		}
		_ = c.conn.Close()
		c.failPending(err)
		return nil, err
	}

	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		expired = timer.C
		defer timer.Stop()
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.pendMu.Lock()
			err := c.readErr
			c.pendMu.Unlock()
			if err == nil {
				err = errClientClosed
			}
			return nil, err
		}
		return resp, nil
	case <-expired:
		c.pendMu.Lock()
		delete(c.pending, corr)
		c.pendMu.Unlock()
		return nil, errTimeout("request", timeout)
	}
}

// readLoop is the pipelined reader: it owns c.br, matches each response
// frame to its waiter by correlation ID, and on connection failure
// fails every in-flight request.
func (c *Client) readLoop() {
	for {
		fb := getFrame()
		if err := readFrameInto(c.br, fb); err != nil {
			putFrame(fb)
			c.failPending(err)
			return
		}
		corr, ok := corrIDOf(fb.b)
		if !ok {
			putFrame(fb)
			c.failPending(errors.New("broker: malformed binary response"))
			return
		}
		c.pendMu.Lock()
		ch, ok := c.pending[corr]
		delete(c.pending, corr)
		c.pendMu.Unlock()
		if !ok {
			putFrame(fb) // stray response; drop
			continue
		}
		ch <- fb
	}
}

func (c *Client) failPending(err error) {
	c.pendMu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	for corr, ch := range c.pending {
		delete(c.pending, corr)
		close(ch)
	}
	c.pendMu.Unlock()
}

// controlRoundTrip routes a rare control op: a plain JSON round-trip in
// lockstep mode, or a JSON document inside the binary envelope on a
// pipelined connection (so control ops never block behind the mutex-free
// data path, and one codec version byte governs the whole dialect).
func (c *Client) controlRoundTrip(req *wireRequest) (*wireResponse, error) {
	return c.controlRoundTripT(c.timeout(), req)
}

// controlRoundTripT is controlRoundTrip with an explicit deadline —
// the per-op override used by heartbeat probes, which need a bound far
// tighter than the connection default.
func (c *Client) controlRoundTripT(timeout time.Duration, req *wireRequest) (*wireResponse, error) {
	if !c.binary {
		return c.roundTripT(timeout, req)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	fb, err := c.callBinaryT(timeout, func(fb *frameBuf, corr uint64) {
		encodeJSONReq(fb, corr, c.traceFor(), payload)
	})
	if err != nil {
		return nil, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return nil, err
	}
	var resp wireResponse
	if err := json.Unmarshal(cur.rest(), &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &remoteError{msg: resp.Err}
	}
	return &resp, nil
}

// CreateTopic creates a topic on the remote broker.
func (c *Client) CreateTopic(name string, partitions int) error {
	_, err := c.controlRoundTrip(&wireRequest{Op: opCreate, Topic: name, Partitions: partitions})
	return err
}

// Produce appends records to a remote topic.
func (c *Client) Produce(topicName string, recs []Record) (int, error) {
	if !c.binary {
		resp, err := c.roundTrip(&wireRequest{Op: opProduce, Topic: topicName, Records: recs})
		if err != nil {
			return 0, err
		}
		return resp.N, nil
	}
	if err := checkTopic(topicName); err != nil {
		return 0, err
	}
	// Against a frames-capable server the batch is encoded as CRC
	// frames right here — the only encode the records will ever get:
	// the broker appends, replicates and serves these exact bytes.
	enc := encodeProduceReq
	if c.frames {
		enc = encodeProduceFramesReq
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		enc(fb, corr, c.traceFor(), topicName, recs)
	})
	if err != nil {
		return 0, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return 0, err
	}
	n := int(cur.u32())
	if cur.err != nil {
		return 0, cur.err
	}
	return n, nil
}

// Fetch reads records from a remote partition.
func (c *Client) Fetch(topicName string, partition int, offset int64, max int) ([]Record, error) {
	if !c.binary {
		resp, err := c.roundTrip(&wireRequest{
			Op: opFetch, Topic: topicName, Partition: partition, Offset: offset, Max: max,
		})
		if err != nil {
			return nil, err
		}
		return resp.Records, nil
	}
	if err := checkTopic(topicName); err != nil {
		return nil, err
	}
	if c.frames {
		// Frame fetch: the server ships raw storage bytes; the records
		// are decoded (and their CRCs verified) exactly once, here.
		fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
			encodeFetchFramesReq(fb, corr, c.traceFor(), topicName, partition, offset, max)
		})
		if err != nil {
			return nil, err
		}
		defer putFrame(fb)
		cur, err := decodeRespHeader(fb)
		if err != nil {
			return nil, err
		}
		return decodeFetchFramesResp(cur, topicName, partition)
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		encodeFetchReq(fb, corr, c.traceFor(), topicName, partition, offset, max)
	})
	if err != nil {
		return nil, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return nil, err
	}
	return decodeFetchResp(cur, topicName, partition)
}

// FetchBatch reads records from a remote partition directly into a
// columnar batch. Against a frames-capable peer the response's frame
// chunk is CRC-verified once and decoded column-wise — no intermediate
// []Record is materialized; against older peers it falls back to the
// record fetch and converts, so callers can use the batch surface
// unconditionally.
func (c *Client) FetchBatch(topicName string, partition int, offset int64, max int, b *stream.EventBatch) (int, error) {
	if !c.binary || !c.frames {
		recs, err := c.Fetch(topicName, partition, offset, max)
		if err != nil {
			return 0, err
		}
		return recordsToBatch(recs, offset, b), nil
	}
	if err := checkTopic(topicName); err != nil {
		return 0, err
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		encodeFetchFramesReq(fb, corr, c.traceFor(), topicName, partition, offset, max)
	})
	if err != nil {
		return 0, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return 0, err
	}
	base := int64(cur.u64())
	count := int(cur.u32())
	if cur.err != nil {
		return 0, cur.err
	}
	frames := cur.rest()
	n, err := storage.ValidateFrames(frames)
	if err != nil {
		return 0, err
	}
	if n != count {
		return 0, errTruncatedFrame
	}
	return framesToBatch(frames, base, b), nil
}

// HighWatermark returns the remote partition's next write offset.
func (c *Client) HighWatermark(topicName string, partition int) (int64, error) {
	if !c.binary {
		resp, err := c.roundTrip(&wireRequest{Op: opHWM, Topic: topicName, Partition: partition})
		if err != nil {
			return 0, err
		}
		return resp.Offset, nil
	}
	if err := checkTopic(topicName); err != nil {
		return 0, err
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		encodeHWMReq(fb, corr, c.traceFor(), topicName, partition)
	})
	if err != nil {
		return 0, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return 0, err
	}
	hwm := int64(cur.u64())
	if cur.err != nil {
		return 0, cur.err
	}
	return hwm, nil
}

// Commit persists a group offset remotely.
func (c *Client) Commit(group, topicName string, partition int, offset int64) error {
	_, err := c.controlRoundTrip(&wireRequest{
		Op: opCommit, Group: group, Topic: topicName, Partition: partition, Offset: offset,
	})
	return err
}

// Partitions returns the remote topic's partition count.
func (c *Client) Partitions(topicName string) (int, error) {
	resp, err := c.controlRoundTrip(&wireRequest{Op: opParts, Topic: topicName})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Committed reads a group's committed offset remotely.
func (c *Client) Committed(group, topicName string, partition int) (int64, error) {
	resp, err := c.controlRoundTrip(&wireRequest{
		Op: opCommitted, Group: group, Topic: topicName, Partition: partition,
	})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Meta fetches the cluster metadata view of the connected broker. A
// plain (non-clustered) server answers with a synthetic single-member
// view, so routing clients work against it unchanged.
func (c *Client) Meta() (*ClusterMeta, error) {
	resp, err := c.controlRoundTrip(&wireRequest{Op: opMeta})
	if err != nil {
		return nil, err
	}
	if resp.Meta == nil {
		return nil, errors.New("broker: empty meta response")
	}
	return resp.Meta, nil
}

// ping exchanges failure-detector views with a cluster peer. The
// explicit timeout overrides the connection default: a probe that
// cannot answer within a few heartbeats IS the failure signal, so
// waiting the full RPC deadline would only slow detection.
func (c *Client) ping(timeout time.Duration, node string, epoch int64, view map[string]PeerStatus) (int64, map[string]PeerStatus, error) {
	resp, err := c.controlRoundTripT(timeout, &wireRequest{Op: opPing, Node: node, Epoch: epoch, View: view})
	if err != nil {
		return 0, nil, err
	}
	return resp.Epoch, resp.View, nil
}

// replicaFetch reads committed records from a fellow cluster member
// regardless of partition leadership — the rejoin catch-up surface.
func (c *Client) replicaFetch(sender, topic string, partition int, offset int64, max int) ([]Record, error) {
	resp, err := c.controlRoundTrip(&wireRequest{
		Op: opRFetch, Node: sender, Topic: topic, Partition: partition, Offset: offset, Max: max,
	})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// replicaFetchFrames is replicaFetch on the binary raw-frame dialect:
// the catch-up chunk arrives as validated CRC frames appended onto buf,
// ready for replicateAppendFrames verbatim — a rejoining replica pulls
// committed history at memcpy speed instead of through two JSON codecs.
// The caller must check supportsFrames first.
func (c *Client) replicaFetchFrames(sender, topic string, partition int, offset int64, max int, buf []byte) ([]byte, int, error) {
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		encodeRFetchReq(fb, corr, c.traceFor(), sender, topic, partition, offset, max)
	})
	if err != nil {
		return buf, 0, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return buf, 0, err
	}
	_ = cur.u64() // base echoes the requested offset
	count := int(cur.u32())
	if cur.err != nil {
		return buf, 0, cur.err
	}
	frames := cur.rest()
	n, err := storage.ValidateFrames(frames)
	if err != nil {
		return buf, 0, err
	}
	if n != count {
		return buf, 0, errTruncatedFrame
	}
	return append(buf, frames...), count, nil
}

// supportsFrames reports whether the peer negotiated the raw-frame ops.
func (c *Client) supportsFrames() bool { return c.frames }

// supportsBatchReplicate reports whether the peer negotiated the
// multi-partition replicate batch op.
func (c *Client) supportsBatchReplicate() bool { return c.batch }

// replicateMF ships one coalesced batch of per-partition frame chunks
// to a follower in a single RPC and returns the follower's resulting
// high watermark per section, in request order. Callers check
// supportsBatchReplicate first; peers below helloBatch take the
// per-partition replicate fallback instead, producing identical logs at
// one round-trip per chunk.
func (c *Client) replicateMF(trace uint64, epoch int64, sender string, secs []replSection) ([]int64, error) {
	if !c.batch {
		return nil, errors.New("broker: peer does not support batched replicate")
	}
	if !c.v2 {
		trace = 0
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		encodeReplicateMFReq(fb, corr, trace, epoch, sender, secs)
	})
	if err != nil {
		return nil, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return nil, err
	}
	n := int(cur.u32())
	if cur.err == nil && (n != len(secs) || n*8 > cur.remaining()) {
		return nil, errTruncatedFrame
	}
	if cur.err != nil {
		return nil, cur.err
	}
	hwms := make([]int64, n)
	for i := range hwms {
		hwms[i] = int64(cur.u64())
	}
	return hwms, cur.err
}

// replicaHWM reads a member's known committed watermark for a
// partition, leadership-independent. Frames-capable peers answer the
// compact binary op; older peers the JSON control dialect.
func (c *Client) replicaHWM(sender, topic string, partition int) (int64, error) {
	if c.frames {
		fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
			encodeRHWMReq(fb, corr, c.traceFor(), sender, topic, partition)
		})
		if err != nil {
			return 0, err
		}
		defer putFrame(fb)
		cur, err := decodeRespHeader(fb)
		if err != nil {
			return 0, err
		}
		hwm := int64(cur.u64())
		if cur.err != nil {
			return 0, cur.err
		}
		return hwm, nil
	}
	resp, err := c.controlRoundTrip(&wireRequest{
		Op: opRHWM, Node: sender, Topic: topic, Partition: partition,
	})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// commitRep replicates a consumer-group commit from a partition leader
// to a follower replica.
func (c *Client) commitRep(epoch int64, sender, group, topic string, partition int, offset int64) error {
	_, err := c.controlRoundTrip(&wireRequest{
		Op: opCommitRep, Node: sender, Epoch: epoch,
		Group: group, Topic: topic, Partition: partition, Offset: offset,
	})
	return err
}

// ProducePartition appends records to one explicit partition, carrying
// a producer id + sequence number for idempotent retries (pid 0
// disables deduplication). Against a cluster member this must reach the
// partition leader; non-leaders answer with a NotLeader redirect.
func (c *Client) ProducePartition(topicName string, partition int, pid, seq uint64, recs []Record) (int, error) {
	if !c.binary {
		resp, err := c.roundTrip(&wireRequest{
			Op: opProducePart, Topic: topicName, Partition: partition,
			PID: pid, Seq: seq, Records: recs,
		})
		if err != nil {
			return 0, err
		}
		return resp.N, nil
	}
	if err := checkTopic(topicName); err != nil {
		return 0, err
	}
	enc := encodeProducePartReq
	if c.frames {
		enc = encodeProducePartFramesReq
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		enc(fb, corr, c.traceFor(), topicName, partition, pid, seq, recs)
	})
	if err != nil {
		return 0, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return 0, err
	}
	n := int(cur.u32())
	if cur.err != nil {
		return 0, cur.err
	}
	return n, nil
}

// producePartitionFrames forwards an already-validated frame chunk to a
// partition leader — the node→node hop of a routed produce, shipping
// the producer's bytes verbatim. Falls back to the record encoding
// against a peer that has not negotiated the frame ops.
func (c *Client) producePartitionFrames(topicName string, partition int, pid, seq uint64, frames []byte, count int) (int, error) {
	if !c.frames {
		return c.ProducePartition(topicName, partition, pid, seq, framesToRecords(frames, count, topicName, partition, 0))
	}
	if err := checkTopic(topicName); err != nil {
		return 0, err
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		encodeProducePartFwdReq(fb, corr, c.traceFor(), topicName, partition, pid, seq, frames, count)
	})
	if err != nil {
		return 0, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return 0, err
	}
	n := int(cur.u32())
	if cur.err != nil {
		return 0, cur.err
	}
	return n, nil
}

// replicate streams one leader-appended chunk to a follower as the
// verbatim frame bytes the leader holds, returning the follower's
// resulting high watermark. Cluster peers always speak the binary
// codec; against a peer that has not negotiated the frame ops the chunk
// is decoded once and sent in the record encoding. The explicit trace
// parameter forwards the producer request's trace across the
// leader→follower hop (the connection stamp would attribute every chunk
// to whichever request dialed first).
func (c *Client) replicate(trace uint64, epoch int64, sender, topic string, partition int, base, committed int64, metas []batchMeta, frames []byte, count int) (int64, error) {
	if !c.binary {
		return 0, errors.New("broker: replicate requires the binary codec")
	}
	if !c.v2 {
		trace = 0
	}
	fb, err := c.callBinary(func(fb *frameBuf, corr uint64) {
		if c.frames {
			encodeReplicateFramesReq(fb, corr, trace, epoch, sender, topic, partition, base, committed, metas, frames, count)
		} else {
			recs := framesToRecords(frames, count, topic, partition, base)
			encodeReplicateReq(fb, corr, trace, epoch, sender, topic, partition, base, committed, metas, recs)
		}
	})
	if err != nil {
		return 0, err
	}
	defer putFrame(fb)
	cur, err := decodeRespHeader(fb)
	if err != nil {
		return 0, err
	}
	hwm := int64(cur.u64())
	if cur.err != nil {
		return 0, cur.err
	}
	return hwm, nil
}
