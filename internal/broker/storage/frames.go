package storage

// Raw-frame chunk helpers: the zero-copy currency of the data plane.
//
// A "frame chunk" is a byte slice holding consecutive CRC-framed records
// in exactly the segment file layout (see FileLog):
//
//	frame   = [4]payloadLen [4]crc32(payload) payload
//	payload = [4]keyLen key [8]float64-bits(value) [8]unixNanos(time)
//
// Because the wire codec's record batch uses the same field layout, a
// chunk validated once at the wire decode boundary can be appended to a
// log, forwarded leader→follower, and served back to consumers without
// ever being re-encoded — every hop is a memcpy. Offsets are never part
// of a frame (a record's offset is its position in the log), which is
// what makes verbatim forwarding possible: the same bytes are valid at
// any base offset.
//
// Trust model: ValidateFrames is the one full check (structure + CRC);
// it runs where bytes enter the process. Everything downstream —
// AppendFrames, SkipFrames, FrameIter, FrameFields — re-walks structure
// only (cheap: header arithmetic), so corrupt lengths can never walk out
// of bounds, while the CRC is carried along untouched for the next
// process to verify.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// minFramePayload is the payload size of a record with an empty key:
// keyLen + value bits + time nanos.
const minFramePayload = 4 + 8 + 8

// Frame chunk errors.
var (
	ErrBadFrame = errors.New("storage: malformed record frame")
	ErrFrameCRC = errors.New("storage: record frame CRC mismatch")
)

// AppendFrame appends one record's CRC frame to b and returns the
// extended slice. The inverse of FrameFields.
func AppendFrame(b []byte, r *Record) []byte { return encodeFrame(b, r) }

// AppendRecordFrames encodes a whole record batch as one frame chunk
// appended to b — the bridge from the decoded-record world (JSON
// dialect, pre-frames peers) into the raw-frame path.
func AppendRecordFrames(b []byte, recs []Record) []byte {
	for i := range recs {
		b = encodeFrame(b, &recs[i])
	}
	return b
}

// ValidateFrames fully checks a frame chunk — header bounds, payload
// shape, and CRC of every frame — and returns the frame count. This is
// the single validation gate of the zero-copy path: bytes that pass it
// are safe to append and forward verbatim.
func ValidateFrames(b []byte) (int, error) {
	count := 0
	for off := 0; off < len(b); {
		if len(b)-off < frameHdrLen {
			return count, ErrBadFrame
		}
		plen := int(binary.BigEndian.Uint32(b[off:]))
		want := binary.BigEndian.Uint32(b[off+4:])
		if plen < minFramePayload || plen > maxFramePayload || len(b)-off-frameHdrLen < plen {
			return count, ErrBadFrame
		}
		payload := b[off+frameHdrLen : off+frameHdrLen+plen]
		if crc32.ChecksumIEEE(payload) != want {
			return count, ErrFrameCRC
		}
		if klen := int(binary.BigEndian.Uint32(payload)); klen < 0 || 4+klen+16 != plen {
			return count, ErrBadFrame
		}
		count++
		off += frameHdrLen + plen
	}
	return count, nil
}

// CountFrames walks a chunk's frame structure (no CRC work) and returns
// the frame count. Logs use it to pre-check boundaries before mutating,
// so a structurally corrupt chunk is rejected without partial appends.
func CountFrames(b []byte) (int, error) {
	count := 0
	for off := 0; off < len(b); {
		n := frameSize(b[off:])
		if n < 0 {
			return count, ErrBadFrame
		}
		count++
		off += n
	}
	return count, nil
}

// SkipFrames returns b with its first n frames removed — how the
// replicate path trims an already-applied duplicate prefix at frame
// boundaries without decoding.
func SkipFrames(b []byte, n int) ([]byte, error) {
	for ; n > 0; n-- {
		sz := frameSize(b)
		if sz < 0 {
			return nil, ErrBadFrame
		}
		b = b[sz:]
	}
	return b, nil
}

// frameSize returns the byte length of the frame opening b, or -1 when
// the header is short or out of bounds.
func frameSize(b []byte) int {
	if len(b) < frameHdrLen {
		return -1
	}
	plen := int(binary.BigEndian.Uint32(b))
	if plen < minFramePayload || plen > maxFramePayload || len(b)-frameHdrLen < plen {
		return -1
	}
	return frameHdrLen + plen
}

// FrameIter iterates a frame chunk structurally, exposing each whole
// frame (header included, for verbatim forwarding) and its payload (for
// field access). Zero value is done; construct with IterFrames.
type FrameIter struct {
	rest    []byte
	frame   []byte
	payload []byte
	err     error
}

// IterFrames returns an iterator over the frames of b.
func IterFrames(b []byte) FrameIter { return FrameIter{rest: b} }

// Next advances to the next frame, returning false at the end of the
// chunk or on structural corruption (check Err to tell apart).
func (it *FrameIter) Next() bool {
	if it.err != nil || len(it.rest) == 0 {
		return false
	}
	sz := frameSize(it.rest)
	if sz < 0 {
		it.err = ErrBadFrame
		return false
	}
	it.frame = it.rest[:sz]
	it.payload = it.frame[frameHdrLen:]
	it.rest = it.rest[sz:]
	return true
}

// Frame returns the current whole frame, header and CRC included.
func (it *FrameIter) Frame() []byte { return it.frame }

// Payload returns the current frame's payload.
func (it *FrameIter) Payload() []byte { return it.payload }

// Err returns the structural error that stopped iteration, if any.
func (it *FrameIter) Err() error { return it.err }

// FrameKey returns the key bytes of a structurally valid frame payload
// (as produced by FrameIter) — enough for partition routing without
// allocating a string.
func FrameKey(payload []byte) []byte {
	klen := int(binary.BigEndian.Uint32(payload))
	return payload[4 : 4+klen]
}

// FrameFields splits a structurally valid frame payload into its raw
// fields: key bytes, float64 value bits, and the time-nanos sentinel
// form (see TimeFromNanos).
func FrameFields(payload []byte) (key []byte, valueBits uint64, nanos int64) {
	klen := int(binary.BigEndian.Uint32(payload))
	return payload[4 : 4+klen],
		binary.BigEndian.Uint64(payload[4+klen:]),
		int64(binary.BigEndian.Uint64(payload[4+klen+8:]))
}

// TimeFromNanos converts a frame's time field to a time.Time, mapping
// the math.MinInt64 sentinel back to the zero time.
func TimeFromNanos(nanos int64) time.Time {
	if nanos == zeroTimeNanos {
		return time.Time{}
	}
	return time.Unix(0, nanos).UTC()
}

// growBytes extends b by n bytes (reallocating as needed) and returns
// the extended slice — the caller fills b[len(b)-n:] in place.
func growBytes(b []byte, n int) []byte {
	if len(b)+n <= cap(b) {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*(len(b)+n))
	copy(nb, b)
	return nb
}

// checkFrameCount verifies a chunk's structure and that it holds exactly
// count frames — the shared precondition of every AppendFrames.
func checkFrameCount(frames []byte, count int) error {
	n, err := CountFrames(frames)
	if err != nil {
		return err
	}
	if n != count {
		return fmt.Errorf("storage: frame chunk holds %d records, caller declared %d", n, count)
	}
	return nil
}
