package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SaveJSON atomically replaces path with the JSON encoding of v: write
// to a temp file in the same directory, optionally fsync, rename. A
// crash mid-save leaves the previous state intact — a state file is
// either the old version or the new one, never a torn mix.
func SaveJSON(path string, v any, fsync bool) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("storage: marshal %s: %w", filepath.Base(path), err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		_ = os.Remove(name)
		return fmt.Errorf("storage: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// LoadJSON reads path into v. A missing file is not an error; it
// returns (false, nil) so callers can treat it as "no saved state".
func LoadJSON(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("storage: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("storage: unmarshal %s: %w", filepath.Base(path), err)
	}
	return true, nil
}
