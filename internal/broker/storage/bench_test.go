package storage

import (
	"fmt"
	"testing"
	"time"
)

// Microbenchmarks for the storage engine: the durable FileLog against
// the in-memory MemLog baseline, across fsync policies.
//
//	go test ./internal/broker/storage -bench . -benchtime 1s

func benchRecs(n int) []Record {
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Key:   "sensor-42",
			Value: float64(i) * 1.5,
			Time:  base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

func reportItems(b *testing.B, items int64) {
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(items)/elapsed, "items/s")
	}
}

func BenchmarkFileLogAppend(b *testing.B) {
	const batch = 1000
	for _, policy := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			l, err := OpenFileLog(b.TempDir(), FileConfig{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = l.Close() }()
			recs := benchRecs(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(recs); err != nil {
					b.Fatal(err)
				}
			}
			reportItems(b, int64(b.N)*batch)
		})
	}
}

func BenchmarkFileLogRead(b *testing.B) {
	const batch = 1000
	l, err := OpenFileLog(b.TempDir(), FileConfig{Policy: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	const loaded = 1 << 17
	for i := 0; i < loaded/4096; i++ {
		if _, err := l.Append(benchRecs(4096)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64((i * 7919) % (loaded - batch))
		recs, err := l.Read(off, batch)
		if err != nil || len(recs) != batch {
			b.Fatalf("read %d records, %v", len(recs), err)
		}
	}
	reportItems(b, int64(b.N)*batch)
}

func BenchmarkFileLogRecover(b *testing.B) {
	for _, segs := range []int{4, 32} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			dir := b.TempDir()
			l, err := OpenFileLog(dir, FileConfig{Policy: SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < segs; i++ {
				if _, err := l.Append(benchRecs(4096)); err != nil {
					b.Fatal(err)
				}
			}
			_ = l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := OpenFileLog(dir, FileConfig{Policy: SyncNone})
				if err != nil {
					b.Fatal(err)
				}
				if re.HighWatermark() != int64(segs)*4096 {
					b.Fatal("short recovery")
				}
				b.StopTimer()
				_ = re.Close()
				b.StartTimer()
			}
			reportItems(b, int64(b.N)*int64(segs)*4096)
		})
	}
}
