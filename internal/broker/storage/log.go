// Package storage is the partition-log storage engine under the broker
// tier: an append-only record log addressed by offset, behind a Log
// interface with two implementations — the chunked in-memory MemLog the
// broker always had, and the segmented on-disk FileLog that makes a
// broker restartable (recover segments, truncate a torn tail, rejoin
// the cluster).
//
// The storage layer owns the Record type; the broker package aliases it
// so the public API is unchanged. A Log stamps consecutive offsets onto
// appended records — a record's offset IS its position, so reads never
// scan — and supports truncation from the tail, which the cluster layer
// uses to discard a rejoining replica's divergent uncommitted records.
package storage

import (
	"errors"
	"sync"
	"time"
)

// Record is one message in a partition log.
type Record struct {
	Topic     string    `json:"topic"`
	Partition int       `json:"partition"`
	Offset    int64     `json:"offset"`
	Key       string    `json:"key"`
	Value     float64   `json:"value"`
	Time      time.Time `json:"time"`
}

// Errors returned by log operations.
var (
	ErrOffsetOutOfRange = errors.New("broker: offset out of range")
	ErrLogClosed        = errors.New("broker: log closed")
)

// Log is one partition's append-only record log.
//
// Append stamps consecutive offsets onto recs (which the caller must
// own) and returns the base offset. Read returns up to max records
// starting at offset. HighWatermark is the next offset to be written.
// TruncateTo discards every record at offset >= hwm (a no-op when the
// log is already shorter); the next append continues at hwm. Sync
// forces buffered appends to stable storage (a no-op for MemLog).
type Log interface {
	Append(recs []Record) (int64, error)
	Read(offset int64, max int) ([]Record, error)
	HighWatermark() int64
	TruncateTo(hwm int64) error
	Sync() error
	Close() error
}

// memChunkSize is the record capacity of one in-memory log chunk,
// mirrored by FileLog's default segment capacity.
const memChunkSize = 4096

// MemLog is the in-memory Log: fixed-capacity chunks, bulk appends into
// the tail chunk (never reallocating earlier history, unlike a single
// growing slice), and reads that locate their chunk by division and
// bulk-copy out. It is the implementation behind broker.New() and
// `brokerd -data-dir ""`.
type MemLog struct {
	mu     sync.RWMutex
	chunks [][]Record
	n      int64 // total records; the high watermark
}

// NewMemLog returns an empty in-memory log. The optional base is the
// offset the first append starts at (used after a truncate-everything).
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (m *MemLog) Append(recs []Record) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	base := m.n
	for i := range recs {
		recs[i].Offset = base + int64(i)
	}
	for rest := recs; len(rest) > 0; {
		if len(m.chunks) == 0 || len(m.chunks[len(m.chunks)-1]) == memChunkSize {
			m.chunks = append(m.chunks, make([]Record, 0, memChunkSize))
		}
		tail := len(m.chunks) - 1
		take := memChunkSize - len(m.chunks[tail])
		if take > len(rest) {
			take = len(rest)
		}
		m.chunks[tail] = append(m.chunks[tail], rest[:take]...)
		rest = rest[take:]
	}
	m.n = base + int64(len(recs))
	return base, nil
}

// Read implements Log.
func (m *MemLog) Read(offset int64, max int) ([]Record, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if offset < 0 || offset > m.n {
		return nil, ErrOffsetOutOfRange
	}
	end := offset + int64(max)
	if end > m.n {
		end = m.n
	}
	// The log's base is m.n minus the records actually held: after a
	// truncate-to-zero followed by appends at a non-zero watermark the
	// first chunk starts at that watermark, not offset 0.
	base := m.base()
	if offset < base {
		return nil, ErrOffsetOutOfRange
	}
	out := make([]Record, end-offset)
	for filled := int64(0); offset+filled < end; {
		at := offset + filled - base
		chunk := m.chunks[at/memChunkSize]
		filled += int64(copy(out[filled:], chunk[at%memChunkSize:]))
	}
	return out, nil
}

// base returns the offset of the first held record (mu held).
func (m *MemLog) base() int64 {
	held := int64(0)
	for _, c := range m.chunks {
		held += int64(len(c))
	}
	return m.n - held
}

// HighWatermark implements Log.
func (m *MemLog) HighWatermark() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// TruncateTo implements Log.
func (m *MemLog) TruncateTo(hwm int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hwm < 0 {
		hwm = 0
	}
	if hwm >= m.n {
		return nil
	}
	base := m.base()
	if hwm <= base {
		m.chunks = nil
		m.n = hwm
		return nil
	}
	keep := hwm - base
	full := keep / memChunkSize
	rem := keep % memChunkSize
	chunks := m.chunks[:full]
	if rem > 0 {
		tail := m.chunks[full][:rem]
		chunks = append(chunks, tail)
	}
	m.chunks = chunks
	m.n = hwm
	return nil
}

// Sync implements Log (no-op in memory).
func (m *MemLog) Sync() error { return nil }

// Close implements Log (no-op in memory).
func (m *MemLog) Close() error { return nil }
