// Package storage is the partition-log storage engine under the broker
// tier: an append-only record log addressed by offset, behind a Log
// interface with two implementations — the chunked in-memory MemLog the
// broker always had, and the segmented on-disk FileLog that makes a
// broker restartable (recover segments, truncate a torn tail, rejoin
// the cluster).
//
// The storage layer owns the Record type; the broker package aliases it
// so the public API is unchanged. A Log stamps consecutive offsets onto
// appended records — a record's offset IS its position, so reads never
// scan — and supports truncation from the tail, which the cluster layer
// uses to discard a rejoining replica's divergent uncommitted records.
//
// Both implementations store records as CRC frames in the segment
// layout (see FileLog and frames.go), so the raw-frame surface —
// AppendFrames / ReadFrames — is a straight memcpy against storage: the
// zero-copy produce/replicate/fetch paths ship those bytes verbatim.
package storage

import (
	"errors"
	"math"
	"sync"
	"time"
)

// Record is one message in a partition log.
type Record struct {
	Topic     string    `json:"topic"`
	Partition int       `json:"partition"`
	Offset    int64     `json:"offset"`
	Key       string    `json:"key"`
	Value     float64   `json:"value"`
	Time      time.Time `json:"time"`
}

// Errors returned by log operations.
var (
	ErrOffsetOutOfRange = errors.New("broker: offset out of range")
	ErrLogClosed        = errors.New("broker: log closed")
)

// Log is one partition's append-only record log.
//
// Append stamps consecutive offsets onto recs (which the caller must
// own) and returns the base offset. Read returns up to max records
// starting at offset. HighWatermark is the next offset to be written.
// TruncateTo discards every record at offset >= hwm (a no-op when the
// log is already shorter); the next append continues at hwm. Sync
// forces buffered appends to stable storage (a no-op for MemLog).
//
// The raw-frame surface is the zero-copy fast path. AppendFrames
// appends a chunk of count CRC-framed records verbatim; the caller
// vouches for the CRCs (ValidateFrames at the wire boundary), and the
// log re-walks only the structure to find record boundaries, so a
// structurally corrupt chunk is rejected whole before any mutation.
// ReadFrames appends up to max records' frames onto buf and returns the
// extended buffer and the record count — the bytes are exactly what
// AppendFrames (or Append) stored, CRCs included.
type Log interface {
	Append(recs []Record) (int64, error)
	AppendFrames(frames []byte, count int) (int64, error)
	Read(offset int64, max int) ([]Record, error)
	ReadFrames(offset int64, max int, buf []byte) ([]byte, int, error)
	HighWatermark() int64
	TruncateTo(hwm int64) error
	Sync() error
	Close() error
}

// memChunkSize is the record capacity of one in-memory log chunk,
// mirrored by FileLog's default segment capacity.
const memChunkSize = 4096

// memChunk is one fixed-capacity chunk of encoded frames: buf holds up
// to memChunkSize consecutive frames, ends[i] is the byte offset in buf
// just past frame i (so frame i spans buf[ends[i-1]:ends[i]]).
type memChunk struct {
	buf  []byte
	ends []int
}

// MemLog is the in-memory Log: fixed-capacity chunks of ENCODED frames
// (the same CRC framing FileLog writes to disk), bulk appends into the
// tail chunk (never reallocating earlier history, unlike a single
// growing slice), and reads that locate their chunk by division. It is
// the implementation behind broker.New() and `brokerd -data-dir ""`.
//
// Storing frames rather than Record structs is what makes the raw-frame
// surface zero-copy in memory too: AppendFrames and ReadFrames are
// memcpys, and a fetch response is assembled without touching a Record.
type MemLog struct {
	mu     sync.RWMutex
	chunks []*memChunk
	n      int64 // total records; the high watermark

	// topic/partition are stamped onto records decoded by Read,
	// mirroring FileConfig.Topic/Partition (frames don't store them).
	topic     string
	partition int
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// NewMemLogFor returns an empty in-memory log that stamps topic and
// partition onto records returned by Read, like FileLog does from its
// FileConfig (the frames themselves never store either).
func NewMemLogFor(topic string, partition int) *MemLog {
	return &MemLog{topic: topic, partition: partition}
}

// tailChunk returns the chunk accepting the next append (mu held). A
// fresh chunk preallocates its frame buffer to the size the previous
// chunk ended at — under a steady record shape the buffer never
// regrows, so appends are single memcpys instead of repeated
// reallocation copies.
func (m *MemLog) tailChunk() *memChunk {
	if k := len(m.chunks); k == 0 || len(m.chunks[k-1].ends) == memChunkSize {
		hint := 0
		if k > 0 {
			hint = len(m.chunks[k-1].buf)
		}
		m.chunks = append(m.chunks, &memChunk{buf: make([]byte, 0, hint), ends: make([]int, 0, memChunkSize)})
	}
	return m.chunks[len(m.chunks)-1]
}

// Append implements Log: encode each record as a CRC frame into the
// tail chunk, rolling to a fresh chunk at capacity.
func (m *MemLog) Append(recs []Record) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	base := m.n
	for i := range recs {
		recs[i].Offset = base + int64(i)
		c := m.tailChunk()
		c.buf = encodeFrame(c.buf, &recs[i])
		c.ends = append(c.ends, len(c.buf))
	}
	m.n = base + int64(len(recs))
	return base, nil
}

// AppendFrames implements Log: memcpy the pre-validated chunk into the
// tail chunks — one bulk copy per run of frames landing in the same
// chunk (a per-frame append would pay a slice regrow on every record),
// with a cheap header walk to record the frame boundaries.
func (m *MemLog) AppendFrames(frames []byte, count int) (int64, error) {
	if err := checkFrameCount(frames, count); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	base := m.n
	rest := frames
	for remaining := count; remaining > 0; {
		c := m.tailChunk()
		take := memChunkSize - len(c.ends)
		if take > remaining {
			take = remaining
		}
		off := len(c.buf)
		nbytes := 0
		for i := 0; i < take; i++ {
			nbytes += frameSize(rest[nbytes:])
			c.ends = append(c.ends, off+nbytes)
		}
		c.buf = append(c.buf, rest[:nbytes]...)
		rest = rest[nbytes:]
		remaining -= take
	}
	m.n = base + int64(count)
	return base, nil
}

// Read implements Log: decode the requested frames back into records,
// interning repeated keys so a hot key costs one allocation per read.
func (m *MemLog) Read(offset int64, max int) ([]Record, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if offset < 0 || offset > m.n {
		return nil, ErrOffsetOutOfRange
	}
	end := offset + int64(max)
	if end > m.n {
		end = m.n
	}
	// The log's base is m.n minus the records actually held: after a
	// truncate-to-zero followed by appends at a non-zero watermark the
	// first chunk starts at that watermark, not offset 0.
	base := m.base()
	if offset < base {
		return nil, ErrOffsetOutOfRange
	}
	out := make([]Record, 0, end-offset)
	var intern map[string]string
	for at := offset; at < end; {
		rel := at - base
		c := m.chunks[rel/memChunkSize]
		for ri := int(rel % memChunkSize); ri < len(c.ends) && at < end; ri++ {
			start := 0
			if ri > 0 {
				start = c.ends[ri-1]
			}
			payload := c.buf[start+frameHdrLen : c.ends[ri]]
			kb, bits, nanos := FrameFields(payload)
			key := ""
			if len(kb) > 0 {
				if intern == nil {
					intern = make(map[string]string, 8)
				}
				s, ok := intern[string(kb)]
				if !ok {
					s = string(kb)
					intern[s] = s
				}
				key = s
			}
			out = append(out, Record{
				Topic:     m.topic,
				Partition: m.partition,
				Offset:    at,
				Key:       key,
				Value:     math.Float64frombits(bits),
				Time:      TimeFromNanos(nanos),
			})
			at++
		}
	}
	return out, nil
}

// ReadFrames implements Log: bulk-copy the requested frames onto buf —
// whole runs per chunk, no per-record work at all.
func (m *MemLog) ReadFrames(offset int64, max int, buf []byte) ([]byte, int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if offset < 0 || offset > m.n {
		return buf, 0, ErrOffsetOutOfRange
	}
	if max < 0 {
		max = 0
	}
	end := offset + int64(max)
	if end > m.n {
		end = m.n
	}
	base := m.base()
	if offset < base {
		return buf, 0, ErrOffsetOutOfRange
	}
	count := 0
	for at := offset; at < end; {
		rel := at - base
		c := m.chunks[rel/memChunkSize]
		ri := int(rel % memChunkSize)
		take := len(c.ends) - ri
		if int64(take) > end-at {
			take = int(end - at)
		}
		start := 0
		if ri > 0 {
			start = c.ends[ri-1]
		}
		buf = append(buf, c.buf[start:c.ends[ri+take-1]]...)
		count += take
		at += int64(take)
	}
	return buf, count, nil
}

// base returns the offset of the first held record (mu held).
func (m *MemLog) base() int64 {
	held := int64(0)
	for _, c := range m.chunks {
		held += int64(len(c.ends))
	}
	return m.n - held
}

// HighWatermark implements Log.
func (m *MemLog) HighWatermark() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// TruncateTo implements Log.
func (m *MemLog) TruncateTo(hwm int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hwm < 0 {
		hwm = 0
	}
	if hwm >= m.n {
		return nil
	}
	base := m.base()
	if hwm <= base {
		m.chunks = nil
		m.n = hwm
		return nil
	}
	keep := hwm - base
	full := int(keep / memChunkSize)
	rem := int(keep % memChunkSize)
	chunks := m.chunks[:full]
	if rem > 0 {
		tail := m.chunks[full]
		tail.buf = tail.buf[:tail.ends[rem-1]]
		tail.ends = tail.ends[:rem]
		chunks = append(chunks, tail)
	}
	m.chunks = chunks
	m.n = hwm
	return nil
}

// Sync implements Log (no-op in memory).
func (m *MemLog) Sync() error { return nil }

// Close implements Log (no-op in memory).
func (m *MemLog) Close() error { return nil }
