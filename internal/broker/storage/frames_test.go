package storage

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"
)

// frameRecs builds a deterministic record batch covering the key shapes
// the frame layout distinguishes: empty keys, short keys, a long key.
func frameRecs(n int) []Record {
	base := time.Unix(0, 1700000000000000000).UTC()
	out := make([]Record, n)
	for i := range out {
		key := ""
		switch i % 3 {
		case 1:
			key = "sensor-" + string(rune('a'+i%26))
		case 2:
			key = string(bytes.Repeat([]byte{byte('k')}, 100))
		}
		out[i] = Record{
			Key:   key,
			Value: float64(i) * 1.25,
			Time:  base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

// TestReencodeVerbatimEquivalence is the round-trip property behind the
// zero-copy path: encoding records into a log via Append and appending
// the producer's verbatim frame chunk via AppendFrames must yield
// byte-identical storage, and both must read back as the same records.
func TestReencodeVerbatimEquivalence(t *testing.T) {
	recs := frameRecs(300)
	chunk := AppendRecordFrames(nil, recs)
	n, err := ValidateFrames(chunk)
	if err != nil || n != len(recs) {
		t.Fatalf("ValidateFrames = %d, %v; want %d, nil", n, err, len(recs))
	}

	viaAppend := NewMemLogFor("t", 0)
	if _, err := viaAppend.Append(append([]Record(nil), recs...)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	viaFrames := NewMemLogFor("t", 0)
	if _, err := viaFrames.AppendFrames(chunk, n); err != nil {
		t.Fatalf("AppendFrames: %v", err)
	}

	for name, l := range map[string]Log{"append": viaAppend, "frames": viaFrames} {
		got, cnt, err := l.ReadFrames(0, len(recs), nil)
		if err != nil || cnt != len(recs) {
			t.Fatalf("%s: ReadFrames = %d, %v", name, cnt, err)
		}
		if !bytes.Equal(got, chunk) {
			t.Errorf("%s: stored bytes differ from the producer's chunk", name)
		}
		back, err := l.Read(0, len(recs))
		if err != nil || len(back) != len(recs) {
			t.Fatalf("%s: Read = %d recs, %v", name, len(back), err)
		}
		for i, r := range back {
			w := recs[i]
			if r.Key != w.Key || r.Value != w.Value || !r.Time.Equal(w.Time) || r.Offset != int64(i) {
				t.Fatalf("%s: record %d = %+v, want key=%q value=%v time=%v", name, i, r, w.Key, w.Value, w.Time)
			}
		}
	}
}

// TestFileLogVerbatimFramesSurviveRestart: the frame chunk a leader
// forwards is exactly what a durable follower's disk stores, across a
// close/reopen cycle.
func TestFileLogVerbatimFramesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	recs := frameRecs(50)
	chunk := AppendRecordFrames(nil, recs)
	cfg := FileConfig{Topic: "t", Partition: 0}
	fl, err := OpenFileLog(dir, cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := fl.AppendFrames(chunk, len(recs)); err != nil {
		t.Fatalf("AppendFrames: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	fl, err = OpenFileLog(dir, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fl.Close()
	got, n, err := fl.ReadFrames(0, len(recs), nil)
	if err != nil || n != len(recs) {
		t.Fatalf("ReadFrames after restart = %d, %v", n, err)
	}
	if !bytes.Equal(got, chunk) {
		t.Errorf("restarted FileLog bytes differ from the forwarded chunk")
	}
}

// TestValidateFramesRejectsCorruption flips every byte of a valid chunk
// in turn and truncates it at every non-boundary length: each mutation
// must fail validation, so a corrupted forward can never pass the wire
// gate. (A flip in a length header breaks structure; anywhere else it
// breaks the CRC.)
func TestValidateFramesRejectsCorruption(t *testing.T) {
	recs := frameRecs(7)
	chunk := AppendRecordFrames(nil, recs)
	for i := range chunk {
		mut := append([]byte(nil), chunk...)
		mut[i] ^= 0x40
		if _, err := ValidateFrames(mut); err == nil {
			t.Fatalf("flip at byte %d validated", i)
		}
	}
	bounds := map[int]bool{0: true}
	off := 0
	for off < len(chunk) {
		off += frameSize(chunk[off:])
		bounds[off] = true
	}
	for cut := 0; cut < len(chunk); cut++ {
		n, err := ValidateFrames(chunk[:cut])
		if bounds[cut] {
			if err != nil {
				t.Fatalf("boundary truncation at %d: %v", cut, err)
			}
		} else if err == nil {
			t.Fatalf("truncation at %d validated %d frames", cut, n)
		}
	}
}

// FuzzValidateFrames drives arbitrary bytes through the validation
// gate. Whatever passes must be structurally coherent end to end:
// CountFrames agrees, iteration reassembles the exact input, and a
// MemLog accepts and round-trips it byte for byte.
func FuzzValidateFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecordFrames(nil, frameRecs(1)))
	f.Add(AppendRecordFrames(nil, frameRecs(5)))
	f.Add([]byte{0, 0, 0, 20, 1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		n, err := ValidateFrames(b)
		if err != nil {
			return
		}
		if cn, cerr := CountFrames(b); cerr != nil || cn != n {
			t.Fatalf("CountFrames = %d, %v after ValidateFrames = %d", cn, cerr, n)
		}
		var rejoined []byte
		it := IterFrames(b)
		for it.Next() {
			rejoined = append(rejoined, it.Frame()...)
		}
		if it.Err() != nil {
			t.Fatalf("IterFrames: %v", it.Err())
		}
		if !bytes.Equal(rejoined, b) {
			t.Fatal("iterated frames do not reassemble the chunk")
		}
		l := NewMemLog()
		if _, aerr := l.AppendFrames(b, n); aerr != nil {
			t.Fatalf("AppendFrames rejected a validated chunk: %v", aerr)
		}
		got, rn, rerr := l.ReadFrames(0, n, nil)
		if rerr != nil || rn != n || !bytes.Equal(got, b) {
			t.Fatalf("ReadFrames = %d, %v; round trip broken", rn, rerr)
		}
	})
}

// FuzzMemLogAppendFrames feeds arbitrary (frames, count) pairs to the
// raw append surface: it must never panic or partially mutate — either
// the chunk is rejected whole or the watermark advances by count and
// the bytes read back verbatim.
func FuzzMemLogAppendFrames(f *testing.F) {
	valid := AppendRecordFrames(nil, frameRecs(3))
	f.Add(valid, 3)
	f.Add(valid, 2)
	f.Add(valid[:len(valid)-1], 3)
	f.Add([]byte{}, 0)
	f.Add(bytes.Repeat([]byte{7}, 40), 1)
	f.Fuzz(func(t *testing.T, frames []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		l := NewMemLog()
		if _, err := l.AppendFrames(frames, count); err != nil {
			if l.HighWatermark() != 0 {
				t.Fatalf("watermark %d after rejected append", l.HighWatermark())
			}
			return
		}
		if hwm := l.HighWatermark(); hwm != int64(count) {
			t.Fatalf("watermark %d after appending %d frames", hwm, count)
		}
		got, n, err := l.ReadFrames(0, count, nil)
		if err != nil || n != count || !bytes.Equal(got, frames) {
			t.Fatalf("ReadFrames = %d, %v; bytes mismatch %v", n, err, !bytes.Equal(got, frames))
		}
	})
}

// TestAppendFramesRejectsCountMismatch pins the structural precheck: a
// frame count that disagrees with the chunk must be rejected before
// any mutation, and a structurally broken chunk fails with ErrBadFrame.
func TestAppendFramesRejectsCountMismatch(t *testing.T) {
	chunk := AppendRecordFrames(nil, frameRecs(4))
	for _, count := range []int{0, 3, 5, -1} {
		l := NewMemLog()
		if _, err := l.AppendFrames(chunk, count); err == nil {
			t.Errorf("count %d: append accepted", count)
		}
		if l.HighWatermark() != 0 {
			t.Errorf("count %d: log mutated", count)
		}
	}
	l := NewMemLog()
	if _, err := l.AppendFrames(chunk[:len(chunk)-2], 4); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated chunk: err = %v, want ErrBadFrame", err)
	}
}

// TestFrameFieldsRoundTrip pins the payload field layout the whole
// zero-copy path relies on, including NaN value bits surviving intact.
func TestFrameFieldsRoundTrip(t *testing.T) {
	r := Record{Key: "k1", Value: math.NaN(), Time: time.Unix(0, 42).UTC()}
	frame := AppendFrame(nil, &r)
	if n, err := ValidateFrames(frame); n != 1 || err != nil {
		t.Fatalf("ValidateFrames = %d, %v", n, err)
	}
	key, bits, nanos := FrameFields(frame[frameHdrLen:])
	if string(key) != "k1" || bits != math.Float64bits(math.NaN()) || nanos != 42 {
		t.Fatalf("FrameFields = %q, %x, %d", key, bits, nanos)
	}
}
