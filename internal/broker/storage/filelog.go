package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamapprox/internal/metrics"
)

// Instruments carries the storage engine's observability hooks: the
// fsync-latency histogram and the crash-recovery counters. Every field
// is optional; nil instruments cost nothing.
type Instruments struct {
	// FsyncSeconds observes the latency of each fsync pass over the
	// dirty segments (the tail of every SyncAlways append).
	FsyncSeconds *metrics.Histogram
	// TornTails counts torn segment tails truncated during recovery —
	// partial frames from an append cut short by a crash.
	TornTails *metrics.Counter
	// SegmentsDropped counts whole segment files deleted during
	// recovery because they sat past a torn tail.
	SegmentsDropped *metrics.Counter
}

// FileLog is the durable Log: an append-only sequence of fixed-capacity
// segment files mirroring MemLog's 4096-record chunks.
//
// Layout: the directory holds files named by the offset of their first
// record, `<base>.seg` with base zero-padded to 20 digits so the
// lexical order is the offset order. Each segment is a sequence of
// CRC-framed records reusing the wire codec's field layout:
//
//	frame   = [4]payloadLen [4]crc32(payload) payload
//	payload = [4]keyLen key [8]float64-bits(value) [8]unixNanos(time)
//
// A record's offset is its position (segment base + index within the
// segment), so nothing but the fields is stored; a per-segment sparse
// index (file position of every 64th record) keeps reads from scanning
// whole segments. The zero time.Time uses the math.MinInt64 sentinel,
// exactly as on the wire.
//
// Crash recovery: opening a log scans every segment, validating frame
// lengths and CRCs. A torn tail — a partial or corrupt frame from an
// append cut short by a crash — is truncated at the last valid record,
// and any later segments (unreachable without the torn one's records)
// are deleted. What survives is exactly the durable prefix.
//
// Durability is governed by the sync policy: SyncAlways fsyncs after
// every append (an acked record survives kill -9), SyncInterval batches
// fsyncs on a timer, SyncNone leaves flushing to the OS.
type FileLog struct {
	dir string
	cfg FileConfig

	mu    sync.RWMutex
	segs  []*segment
	n     int64 // high watermark; next append offset
	dirty bool  // unsynced appends (SyncInterval bookkeeping)

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    bool
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives process death. The no-loss crash guarantee requires it.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (FileConfig.SyncEvery): bounded
	// loss window, near-memory append throughput.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes when it wants.
	SyncNone
)

// ParseSyncPolicy parses the flag form: "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return SyncAlways, fmt.Errorf("storage: unknown fsync policy %q (want always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "none"
	}
}

// FileConfig tunes a FileLog.
type FileConfig struct {
	// Topic and Partition are stamped onto records returned by Read
	// (they are implied by the directory, not stored per record).
	Topic     string
	Partition int
	// SegmentRecords is the record capacity of one segment file
	// (default 4096, mirroring the in-memory chunk size).
	SegmentRecords int
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 50ms).
	SyncEvery time.Duration
	// Instruments receives durability observations (optional).
	Instruments Instruments
	// FS is the backing filesystem (default OSFS). Tests and the chaos
	// harness swap in a fault-injecting one.
	FS FS
}

// indexEvery is the sparse-index stride: one file position kept per
// this many records.
const indexEvery = 64

// frameHdrLen is the per-record on-disk overhead: length + CRC.
const frameHdrLen = 8

// maxFramePayload guards recovery against a corrupt length prefix.
const maxFramePayload = 64 << 20

// zeroTimeNanos marks the zero time.Time on disk (math.MinInt64, the
// same sentinel the wire codec uses).
const zeroTimeNanos = math.MinInt64

// segment is one open segment file.
type segment struct {
	base  int64 // offset of the first record
	count int   // records held
	size  int64 // file size in bytes
	f     File
	index []int64 // file position of records base, base+64, base+128, ...
	dirty bool    // has writes (or a truncation) not yet fsynced
}

func segName(base int64) string { return fmt.Sprintf("%020d.seg", base) }

// OpenFileLog opens (creating or recovering) the log stored in dir.
func OpenFileLog(dir string, cfg FileConfig) (*FileLog, error) {
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = memChunkSize
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 50 * time.Millisecond
	}
	if cfg.FS == nil {
		cfg.FS = OSFS
	}
	if err := cfg.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	l := &FileLog{dir: dir, cfg: cfg, done: make(chan struct{})}
	if err := l.recover(); err != nil {
		l.closeSegs()
		return nil, err
	}
	if cfg.Policy == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// recover scans the segment files in offset order, validating every
// frame, building the sparse indexes, and truncating at the first torn
// or corrupt frame (dropping any segments past it).
func (l *FileLog) recover() error {
	entries, err := l.cfg.FS.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	var bases []int64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.ParseInt(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	torn := false
	for _, base := range bases {
		path := filepath.Join(l.dir, segName(base))
		if torn {
			// Unreachable past a torn segment: offsets would be
			// discontiguous. Drop it.
			_ = l.cfg.FS.Remove(path)
			if c := l.cfg.Instruments.SegmentsDropped; c != nil {
				c.Inc()
			}
			continue
		}
		f, err := l.cfg.FS.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		seg := &segment{base: base, f: f}
		validSize, err := scanSegment(f, seg)
		if err != nil {
			_ = f.Close()
			return err
		}
		if st, err := f.Stat(); err == nil && st.Size() > validSize {
			// Torn tail: cut the file back to the last whole record.
			if err := f.Truncate(validSize); err != nil {
				_ = f.Close()
				return fmt.Errorf("storage: truncate torn tail: %w", err)
			}
			torn = true
			if c := l.cfg.Instruments.TornTails; c != nil {
				c.Inc()
			}
		}
		seg.size = validSize
		if seg.count == 0 && torn {
			// The torn frame was the segment's only content.
			_ = f.Close()
			_ = l.cfg.FS.Remove(path)
			if c := l.cfg.Instruments.SegmentsDropped; c != nil {
				c.Inc()
			}
			continue
		}
		if len(l.segs) > 0 {
			prev := l.segs[len(l.segs)-1]
			if base != prev.base+int64(prev.count) {
				_ = f.Close()
				return fmt.Errorf("storage: segment %d leaves a gap after %d+%d", base, prev.base, prev.count)
			}
		}
		l.segs = append(l.segs, seg)
		l.n = base + int64(seg.count)
	}
	return nil
}

// scanSegment walks a segment file frame by frame, filling count and
// the sparse index, and returns the size of the valid prefix. A short
// or corrupt frame ends the scan without error — the caller truncates.
func scanSegment(f File, seg *segment) (int64, error) {
	r := bufio.NewReaderSize(f, 64<<10)
	scratch := make([]byte, 0, 4096)
	pos := int64(0)
	var hdr [frameHdrLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return pos, nil
			}
			return 0, fmt.Errorf("storage: %w", err)
		}
		plen := binary.BigEndian.Uint32(hdr[:4])
		want := binary.BigEndian.Uint32(hdr[4:])
		if plen > maxFramePayload {
			return pos, nil
		}
		if cap(scratch) < int(plen) {
			scratch = make([]byte, plen)
		}
		buf := scratch[:plen]
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return pos, nil
			}
			return 0, fmt.Errorf("storage: %w", err)
		}
		if crc32.ChecksumIEEE(buf) != want {
			return pos, nil
		}
		if !decodePayload(buf, &Record{}) {
			return pos, nil
		}
		if seg.count%indexEvery == 0 {
			seg.index = append(seg.index, pos)
		}
		seg.count++
		pos += frameHdrLen + int64(plen)
	}
}

// encodeFrame appends one record's frame to b.
func encodeFrame(b []byte, r *Record) []byte {
	plen := 4 + len(r.Key) + 16
	b = binary.BigEndian.AppendUint32(b, uint32(plen))
	crcAt := len(b)
	b = binary.BigEndian.AppendUint32(b, 0) // CRC placeholder
	payloadAt := len(b)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Key)))
	b = append(b, r.Key...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.Value))
	nanos := int64(zeroTimeNanos)
	if !r.Time.IsZero() {
		nanos = r.Time.UnixNano()
	}
	b = binary.BigEndian.AppendUint64(b, uint64(nanos))
	binary.BigEndian.PutUint32(b[crcAt:], crc32.ChecksumIEEE(b[payloadAt:]))
	return b
}

// decodePayload decodes one frame payload into r, returning false on a
// structurally invalid payload.
func decodePayload(buf []byte, r *Record) bool {
	if len(buf) < 20 {
		return false
	}
	klen := int(binary.BigEndian.Uint32(buf))
	if klen < 0 || 4+klen+16 != len(buf) {
		return false
	}
	r.Key = string(buf[4 : 4+klen])
	r.Value = math.Float64frombits(binary.BigEndian.Uint64(buf[4+klen:]))
	nanos := int64(binary.BigEndian.Uint64(buf[4+klen+8:]))
	if nanos == zeroTimeNanos {
		r.Time = time.Time{}
	} else {
		r.Time = time.Unix(0, nanos).UTC()
	}
	return true
}

// Append implements Log: encode the batch, write it segment by segment
// (rolling to a fresh segment at capacity), fsync per policy.
func (l *FileLog) Append(recs []Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	base := l.n
	for i := range recs {
		recs[i].Offset = base + int64(i)
	}
	for rest := recs; len(rest) > 0; {
		seg := l.tailSegment()
		if seg == nil || seg.count >= l.cfg.SegmentRecords {
			var err error
			if seg, err = l.newSegment(l.n); err != nil {
				return 0, err
			}
		}
		take := l.cfg.SegmentRecords - seg.count
		if take > len(rest) {
			take = len(rest)
		}
		var buf []byte
		pos := seg.size
		for i := 0; i < take; i++ {
			if seg.count%indexEvery == 0 {
				seg.index = append(seg.index, pos+int64(len(buf)))
			}
			buf = encodeFrame(buf, &rest[i])
			seg.count++
		}
		if _, err := seg.f.WriteAt(buf, pos); err != nil {
			// Roll back the failed chunk's bookkeeping, then cut the log
			// back to the pre-append watermark: a batch that spanned a
			// segment roll must not leave its first chunk behind, or a
			// producer retry of the whole batch would duplicate it.
			seg.count -= take
			for len(seg.index) > 0 && seg.index[len(seg.index)-1] >= pos {
				seg.index = seg.index[:len(seg.index)-1]
			}
			werr := fmt.Errorf("storage: append: %w", err)
			if rbErr := l.truncateToLocked(base); rbErr != nil {
				return 0, fmt.Errorf("%w (rollback also failed: %v)", werr, rbErr)
			}
			return 0, werr
		}
		seg.size = pos + int64(len(buf))
		seg.dirty = true
		l.n += int64(take)
		rest = rest[take:]
	}
	l.dirty = true
	if l.cfg.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return base, nil
}

// AppendFrames implements Log: write the pre-validated frame chunk
// verbatim, segment by segment — the frame layout IS the segment
// layout, so replication lands follower appends with zero re-encoding,
// just header walks for the sparse index and one WriteAt per segment.
func (l *FileLog) AppendFrames(frames []byte, count int) (int64, error) {
	if err := checkFrameCount(frames, count); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	base := l.n
	for rest, remaining := frames, count; remaining > 0; {
		seg := l.tailSegment()
		if seg == nil || seg.count >= l.cfg.SegmentRecords {
			var err error
			if seg, err = l.newSegment(l.n); err != nil {
				return 0, err
			}
		}
		take := l.cfg.SegmentRecords - seg.count
		if take > remaining {
			take = remaining
		}
		pos := seg.size
		nbytes := 0
		for i := 0; i < take; i++ {
			if seg.count%indexEvery == 0 {
				seg.index = append(seg.index, pos+int64(nbytes))
			}
			nbytes += frameHdrLen + int(binary.BigEndian.Uint32(rest[nbytes:]))
			seg.count++
		}
		if _, err := seg.f.WriteAt(rest[:nbytes], pos); err != nil {
			// Same rollback contract as Append: cut back to the
			// pre-append watermark so a retry cannot duplicate the
			// chunk's first records.
			seg.count -= take
			for len(seg.index) > 0 && seg.index[len(seg.index)-1] >= pos {
				seg.index = seg.index[:len(seg.index)-1]
			}
			werr := fmt.Errorf("storage: append: %w", err)
			if rbErr := l.truncateToLocked(base); rbErr != nil {
				return 0, fmt.Errorf("%w (rollback also failed: %v)", werr, rbErr)
			}
			return 0, werr
		}
		seg.size = pos + int64(nbytes)
		seg.dirty = true
		l.n += int64(take)
		rest = rest[nbytes:]
		remaining -= take
	}
	l.dirty = true
	if l.cfg.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return base, nil
}

func (l *FileLog) tailSegment() *segment {
	if len(l.segs) == 0 {
		return nil
	}
	return l.segs[len(l.segs)-1]
}

func (l *FileLog) newSegment(base int64) (*segment, error) {
	f, err := l.cfg.FS.OpenFile(filepath.Join(l.dir, segName(base)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	seg := &segment{base: base, f: f}
	l.segs = append(l.segs, seg)
	return seg, nil
}

// Read implements Log.
func (l *FileLog) Read(offset int64, max int) ([]Record, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, ErrLogClosed
	}
	if offset < 0 || offset > l.n {
		return nil, ErrOffsetOutOfRange
	}
	end := offset + int64(max)
	if end > l.n {
		end = l.n
	}
	if offset == end {
		return []Record{}, nil
	}
	if len(l.segs) == 0 || offset < l.segs[0].base {
		return nil, ErrOffsetOutOfRange // truncated-away prefix
	}
	out := make([]Record, 0, end-offset)
	// Locate the segment holding offset: the last one with base <= offset.
	si := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].base > offset }) - 1
	for at := offset; at < end; si++ {
		seg := l.segs[si]
		recs, err := seg.read(at, end)
		if err != nil {
			return nil, err
		}
		for i := range recs {
			recs[i].Topic = l.cfg.Topic
			recs[i].Partition = l.cfg.Partition
		}
		out = append(out, recs...)
		at = seg.base + int64(seg.count)
	}
	return out, nil
}

// read returns the records of [offset, end) that live in this segment
// (the caller continues into the next segment for the rest).
func (s *segment) read(offset, end int64) ([]Record, error) {
	stop := s.base + int64(s.count)
	if end < stop {
		stop = end
	}
	rel := offset - s.base
	ie := rel / indexEvery
	if ie >= int64(len(s.index)) {
		return nil, fmt.Errorf("storage: sparse index short for offset %d", offset)
	}
	pos := s.index[ie]
	skip := rel % indexEvery
	br := bufio.NewReaderSize(io.NewSectionReader(s.f, pos, s.size-pos), 32<<10)
	out := make([]Record, 0, stop-offset)
	var hdr [frameHdrLen]byte
	payload := make([]byte, 0, 64)
	for at := offset - skip; at < stop; at++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("storage: read frame at %d: %w", at, err)
		}
		plen := int(binary.BigEndian.Uint32(hdr[:4]))
		if plen > maxFramePayload {
			return nil, fmt.Errorf("storage: corrupt frame length at %d", at)
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		buf := payload[:plen]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("storage: read frame at %d: %w", at, err)
		}
		if at < offset {
			continue // skipping from the sparse-index anchor
		}
		var r Record
		if !decodePayload(buf, &r) {
			return nil, fmt.Errorf("storage: corrupt frame at %d", at)
		}
		r.Offset = at
		out = append(out, r)
	}
	return out, nil
}

// ReadFrames implements Log: append the requested records' frames onto
// buf exactly as stored — header, CRC, payload — without decoding. The
// CRC is NOT re-verified here; it rides along for the consumer (or the
// rejoining follower) to verify at its own decode boundary, so disk
// corruption is caught end to end rather than trusted after one hop.
func (l *FileLog) ReadFrames(offset int64, max int, buf []byte) ([]byte, int, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return buf, 0, ErrLogClosed
	}
	if offset < 0 || offset > l.n {
		return buf, 0, ErrOffsetOutOfRange
	}
	if max < 0 {
		max = 0
	}
	end := offset + int64(max)
	if end > l.n {
		end = l.n
	}
	if offset == end {
		return buf, 0, nil
	}
	if len(l.segs) == 0 || offset < l.segs[0].base {
		return buf, 0, ErrOffsetOutOfRange // truncated-away prefix
	}
	count := 0
	si := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].base > offset }) - 1
	for at := offset; at < end; si++ {
		seg := l.segs[si]
		var n int
		var err error
		buf, n, err = seg.readFrames(at, end, buf)
		if err != nil {
			return buf, count, err
		}
		count += n
		at = seg.base + int64(seg.count)
	}
	return buf, count, nil
}

// readFrames appends the frames of [offset, end) that live in this
// segment onto buf, returning the extended buffer and the frame count.
func (s *segment) readFrames(offset, end int64, buf []byte) ([]byte, int, error) {
	stop := s.base + int64(s.count)
	if end < stop {
		stop = end
	}
	rel := offset - s.base
	ie := rel / indexEvery
	if ie >= int64(len(s.index)) {
		return buf, 0, fmt.Errorf("storage: sparse index short for offset %d", offset)
	}
	pos := s.index[ie]
	skip := rel % indexEvery
	br := bufio.NewReaderSize(io.NewSectionReader(s.f, pos, s.size-pos), 32<<10)
	count := 0
	var hdr [frameHdrLen]byte
	for at := offset - skip; at < stop; at++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return buf, count, fmt.Errorf("storage: read frame at %d: %w", at, err)
		}
		plen := int(binary.BigEndian.Uint32(hdr[:4]))
		if plen > maxFramePayload {
			return buf, count, fmt.Errorf("storage: corrupt frame length at %d", at)
		}
		if at < offset {
			// Skipping from the sparse-index anchor.
			if _, err := br.Discard(plen); err != nil {
				return buf, count, fmt.Errorf("storage: read frame at %d: %w", at, err)
			}
			continue
		}
		buf = append(buf, hdr[:]...)
		fill := len(buf)
		buf = growBytes(buf, plen)
		if _, err := io.ReadFull(br, buf[fill:]); err != nil {
			return buf[:fill-frameHdrLen], count, fmt.Errorf("storage: read frame at %d: %w", at, err)
		}
		count++
	}
	return buf, count, nil
}

// HighWatermark implements Log.
func (l *FileLog) HighWatermark() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.n
}

// Stats reports the log's segment count and total bytes on disk — the
// scrape-time source of the broker's per-partition disk gauges.
func (l *FileLog) Stats() (segments int, bytes int64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, seg := range l.segs {
		bytes += seg.size
	}
	return len(l.segs), bytes
}

// TruncateTo implements Log: discard every record at offset >= hwm.
// Whole segments past the point are deleted; the segment containing it
// is cut at the record boundary. The next append continues at hwm.
func (l *FileLog) TruncateTo(hwm int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if err := l.truncateToLocked(hwm); err != nil {
		return err
	}
	if l.cfg.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// truncateToLocked is TruncateTo's body (mu held, no fsync).
func (l *FileLog) truncateToLocked(hwm int64) error {
	if hwm < 0 {
		hwm = 0
	}
	if hwm >= l.n {
		return nil
	}
	keep := l.segs[:0]
	for _, seg := range l.segs {
		switch {
		case seg.base+int64(seg.count) <= hwm:
			keep = append(keep, seg)
		case seg.base >= hwm:
			name := seg.f.Name()
			_ = seg.f.Close()
			if err := l.cfg.FS.Remove(name); err != nil {
				return fmt.Errorf("storage: truncate: %w", err)
			}
		default:
			// Cut inside this segment: find the file position of hwm by
			// walking frames from the nearest index anchor.
			pos, err := seg.posOf(hwm)
			if err != nil {
				return err
			}
			if err := seg.f.Truncate(pos); err != nil {
				return fmt.Errorf("storage: truncate: %w", err)
			}
			seg.count = int(hwm - seg.base)
			seg.size = pos
			seg.dirty = true
			ie := (hwm - seg.base + indexEvery - 1) / indexEvery
			if ie < int64(len(seg.index)) {
				seg.index = seg.index[:ie]
			}
			keep = append(keep, seg)
		}
	}
	l.segs = keep
	l.n = hwm
	l.dirty = true
	return nil
}

// posOf returns the file position of the record at offset (mu held).
func (s *segment) posOf(offset int64) (int64, error) {
	rel := offset - s.base
	ie := rel / indexEvery
	if ie >= int64(len(s.index)) {
		return 0, fmt.Errorf("storage: sparse index short for offset %d", offset)
	}
	pos := s.index[ie]
	var hdr [4]byte
	for at := ie * indexEvery; at < rel; at++ {
		if _, err := s.f.ReadAt(hdr[:], pos); err != nil {
			return 0, fmt.Errorf("storage: %w", err)
		}
		pos += frameHdrLen + int64(binary.BigEndian.Uint32(hdr[:]))
	}
	return pos, nil
}

// Sync implements Log: fsync every segment with unflushed writes.
// Usually that is just the tail, but an append that fills a segment
// and rolls into a fresh one dirties BOTH — syncing only the tail
// would leave the filled segment's last records in the page cache, and
// a crash would tear them (taking every later segment with them at
// recovery).
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	return l.syncLocked()
}

func (l *FileLog) syncLocked() error {
	start := time.Now()
	synced := false
	for _, seg := range l.segs {
		if !seg.dirty {
			continue
		}
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
		seg.dirty = false
		synced = true
	}
	l.dirty = false
	if synced {
		if h := l.cfg.Instruments.FsyncSeconds; h != nil {
			h.Observe(time.Since(start).Seconds())
		}
	}
	return nil
}

func (l *FileLog) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
		}
		l.mu.Lock()
		if l.dirty && !l.closed {
			_ = l.syncLocked()
		}
		l.mu.Unlock()
	}
}

// Close implements Log: final sync, stop the flush loop, close files.
func (l *FileLog) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.done)
		l.wg.Wait()
		l.mu.Lock()
		err = l.syncLocked()
		l.closeSegs()
		l.closed = true
		l.mu.Unlock()
	})
	return err
}

func (l *FileLog) closeSegs() {
	for _, seg := range l.segs {
		_ = seg.f.Close()
	}
}
