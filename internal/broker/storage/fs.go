package storage

import (
	"io"
	"os"
)

// File is the slice of *os.File the storage engine actually uses. It is
// an interface so a fault-injecting filesystem (internal/faults) can be
// layered under FileLog — torn writes, ENOSPC, slow fsync — without the
// engine knowing.
type File interface {
	io.Reader
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the filesystem surface FileLog needs. The zero value of
// FileConfig/StorageConfig uses OSFS, the real thing.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
}

// OSFS is the passthrough FS backed by package os.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
