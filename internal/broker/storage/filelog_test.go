package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecs(v0, n int) []Record {
	out := make([]Record, n)
	base := time.Unix(0, 0).UTC()
	for i := range out {
		out[i] = Record{
			Key:   fmt.Sprintf("k%d", (v0+i)%7),
			Value: float64(v0 + i),
			Time:  base.Add(time.Duration(v0+i) * time.Millisecond),
		}
	}
	return out
}

func openTestLog(t *testing.T, dir string, cfg FileConfig) *FileLog {
	t.Helper()
	l, err := OpenFileLog(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

// verifyRange reads [0, hwm) in mixed-size slices and checks offsets
// and values are contiguous and exact.
func verifyRange(t *testing.T, l Log, hwm int64) {
	t.Helper()
	if got := l.HighWatermark(); got != hwm {
		t.Fatalf("hwm = %d, want %d", got, hwm)
	}
	for _, step := range []int{1, 7, 100, 5000} {
		for off := int64(0); off < hwm; {
			recs, err := l.Read(off, step)
			if err != nil {
				t.Fatalf("read %d@%d: %v", step, off, err)
			}
			if len(recs) == 0 {
				t.Fatalf("empty read below hwm at %d", off)
			}
			for i, r := range recs {
				want := off + int64(i)
				if r.Offset != want {
					t.Fatalf("offset %d at position %d, want %d", r.Offset, i, want)
				}
				if r.Value != float64(want) {
					t.Fatalf("value %v at offset %d, want %d", r.Value, want, want)
				}
				if wantKey := fmt.Sprintf("k%d", want%7); r.Key != wantKey {
					t.Fatalf("key %q at offset %d, want %q", r.Key, want, wantKey)
				}
			}
			off += int64(len(recs))
		}
	}
}

func TestFileLogAppendReadRoundTrip(t *testing.T) {
	l := openTestLog(t, t.TempDir(), FileConfig{Topic: "t", Partition: 3, SegmentRecords: 100})
	total := int64(0)
	for _, n := range []int{1, 99, 250, 1, 4096} {
		base, err := l.Append(testRecs(int(total), n))
		if err != nil {
			t.Fatal(err)
		}
		if base != total {
			t.Fatalf("append base = %d, want %d", base, total)
		}
		total += int64(n)
	}
	verifyRange(t, l, total)
	recs, err := l.Read(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Topic != "t" || recs[0].Partition != 3 {
		t.Fatalf("topic/partition not stamped: %+v", recs[0])
	}
	if _, err := l.Read(total+1, 1); err == nil {
		t.Fatal("read past hwm succeeded")
	}
	// Zero time and NaN-free floats round-trip; empty key too.
	if _, err := l.Append([]Record{{Key: "", Value: 1.5}}); err != nil {
		t.Fatal(err)
	}
	got, err := l.Read(total, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("read appended: %v", err)
	}
	if !got[0].Time.IsZero() || got[0].Key != "" || got[0].Value != 1.5 {
		t.Fatalf("round-trip mangled record: %+v", got[0])
	}
}

func TestFileLogReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, FileConfig{SegmentRecords: 64})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(testRecs(i*100, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTestLog(t, dir, FileConfig{SegmentRecords: 64})
	verifyRange(t, re, 1000)
	// Appends continue at the recovered watermark.
	if base, err := re.Append(testRecs(1000, 5)); err != nil || base != 1000 {
		t.Fatalf("append after reopen: base %d, %v", base, err)
	}
	verifyRange(t, re, 1005)
}

func TestFileLogTruncateTo(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, FileConfig{SegmentRecords: 64})
	if _, err := l.Append(testRecs(0, 1000)); err != nil {
		t.Fatal(err)
	}
	// Cut inside a segment (not on a boundary), then re-append the same
	// values so the verify helper still lines up.
	if err := l.TruncateTo(777); err != nil {
		t.Fatal(err)
	}
	if got := l.HighWatermark(); got != 777 {
		t.Fatalf("hwm after truncate = %d, want 777", got)
	}
	if base, err := l.Append(testRecs(777, 223)); err != nil || base != 777 {
		t.Fatalf("append after truncate: base %d, %v", base, err)
	}
	verifyRange(t, l, 1000)
	// Truncation and re-append must survive a reopen.
	_ = l.Close()
	re := openTestLog(t, dir, FileConfig{SegmentRecords: 64})
	verifyRange(t, re, 1000)
	// Truncate to a segment boundary and to zero.
	if err := re.TruncateTo(64); err != nil {
		t.Fatal(err)
	}
	verifyRange(t, re, 64)
	if err := re.TruncateTo(0); err != nil {
		t.Fatal(err)
	}
	if got := re.HighWatermark(); got != 0 {
		t.Fatalf("hwm after truncate-to-zero = %d", got)
	}
	if base, err := re.Append(testRecs(0, 10)); err != nil || base != 0 {
		t.Fatalf("append after truncate-to-zero: base %d, %v", base, err)
	}
	verifyRange(t, re, 10)
}

func TestFileLogTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, FileConfig{SegmentRecords: 1 << 20})
	if _, err := l.Append(testRecs(0, 500)); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	// Tear the tail: append half of a valid frame to the segment file.
	seg := filepath.Join(dir, segName(0))
	frame := encodeFrame(nil, &Record{Key: "torn", Value: 42})
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-5]); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	re := openTestLog(t, dir, FileConfig{SegmentRecords: 1 << 20})
	verifyRange(t, re, 500)
	// The torn bytes are gone from disk; appending works again.
	if base, err := re.Append(testRecs(500, 10)); err != nil || base != 500 {
		t.Fatalf("append after torn recovery: base %d, %v", base, err)
	}
	verifyRange(t, re, 510)
}

func TestFileLogCorruptMiddleDropsSuffixSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, FileConfig{SegmentRecords: 100})
	if _, err := l.Append(testRecs(0, 350)); err != nil { // segments 0,100,200,300
		t.Fatal(err)
	}
	_ = l.Close()
	// Flip a byte mid-way through segment 100: recovery must cut that
	// segment at the corruption and delete segments 200 and 300.
	seg := filepath.Join(dir, segName(100))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTestLog(t, dir, FileConfig{SegmentRecords: 100})
	hwm := re.HighWatermark()
	if hwm <= 100 || hwm >= 200 {
		t.Fatalf("hwm after mid-corruption = %d, want inside (100, 200)", hwm)
	}
	verifyRange(t, re, hwm)
	if _, err := os.Stat(filepath.Join(dir, segName(200))); !os.IsNotExist(err) {
		t.Fatalf("segment past corruption not deleted: %v", err)
	}
}

func TestMemLogTruncateAndReappend(t *testing.T) {
	m := NewMemLog()
	if _, err := m.Append(testRecs(0, 10000)); err != nil {
		t.Fatal(err)
	}
	if err := m.TruncateTo(4100); err != nil { // inside chunk 2
		t.Fatal(err)
	}
	if _, err := m.Append(testRecs(4100, 5900)); err != nil {
		t.Fatal(err)
	}
	verifyRange(t, m, 10000)
	// Truncate below the held base after a full truncation cycle.
	if err := m.TruncateTo(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(testRecs(0, 5)); err != nil {
		t.Fatal(err)
	}
	verifyRange(t, m, 5)
}

func TestSaveLoadJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	type st struct{ N int }
	var got st
	if ok, err := LoadJSON(path, &got); ok || err != nil {
		t.Fatalf("load missing: ok=%v err=%v", ok, err)
	}
	if err := SaveJSON(path, st{N: 7}, true); err != nil {
		t.Fatal(err)
	}
	if ok, err := LoadJSON(path, &got); !ok || err != nil || got.N != 7 {
		t.Fatalf("load: ok=%v err=%v got=%+v", ok, err, got)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}
