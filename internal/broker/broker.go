// Package broker implements the stream aggregator of Figure 1: a
// Kafka-like partitioned, append-only message log that combines incoming
// data items from disjoint sub-streams into the single input stream
// StreamApprox consumes.
//
// The model follows Kafka's essentials: named topics split into
// partitions; producers append records (partitioned by key hash or round
// robin); consumers fetch by (partition, offset); consumer groups share
// the partitions of a topic and track committed offsets. Two transports
// are provided: direct in-process calls (this file) and a length-prefixed
// TCP protocol (transport.go) served by cmd/brokerd.
//
// Partition logs live behind the storage engine in internal/broker/
// storage: in-memory chunked logs by default (broker.New), segmented
// append-only files under a data directory when opened with
// broker.Open — the durable mode that lets a killed broker recover its
// logs and rejoin a running cluster (node.go).
package broker

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"streamapprox/internal/broker/storage"
	"streamapprox/internal/metrics"
	"streamapprox/internal/stream"
)

// Errors returned by broker operations.
var (
	ErrTopicExists      = errors.New("broker: topic already exists")
	ErrUnknownTopic     = errors.New("broker: unknown topic")
	ErrBadPartition     = errors.New("broker: partition out of range")
	ErrOffsetOutOfRange = storage.ErrOffsetOutOfRange
	ErrClosed           = errors.New("broker: closed")
)

// Record is one message in a partition log. The type is owned by the
// storage engine; the alias keeps the broker API unchanged.
type Record = storage.Record

// partition is one partition's log plus the mutex that makes
// check-then-append sequences (replicateAppend's dedup trim) atomic
// against concurrent appends. Reads go straight to the log, which is
// internally synchronized, so they never serialize behind appends.
type partition struct {
	appendMu sync.Mutex
	log      storage.Log
}

// topic is a named set of partitions.
type topic struct {
	name       string
	partitions []*partition
	rr         uint64 // round-robin cursor for keyless records
	rrMu       sync.Mutex
}

// StorageConfig selects where a broker keeps its partition logs.
type StorageConfig struct {
	// Dir is the data directory ("" = in-memory, nothing survives the
	// process). Layout: <dir>/<topic>/<partition>/<base>.seg plus
	// state files alongside the segments.
	Dir string
	// Policy is the fsync policy for appended records (default
	// SyncAlways; see storage.SyncPolicy).
	Policy storage.SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 50ms).
	SyncEvery time.Duration
	// SegmentRecords is the record capacity of one segment file
	// (default 4096).
	SegmentRecords int
	// FS is the backing filesystem for the partition logs (default the
	// real one). The chaos harness injects disk faults through it.
	FS storage.FS
}

// Broker is an in-process message broker.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
	closed bool

	scfg StorageConfig
	reg  *metrics.Registry

	groupMu sync.Mutex
	groups  map[string]*groupState // committed offsets per consumer group
}

type groupState struct {
	offsets map[string][]int64 // topic -> per-partition committed offset
}

// New returns an empty in-memory broker.
func New() *Broker {
	b := &Broker{
		topics: make(map[string]*topic),
		groups: make(map[string]*groupState),
		reg:    metrics.NewRegistry(),
	}
	b.reg.OnScrape(b.scrapeLogs)
	return b
}

// Metrics returns the broker's metric registry — storage counters and
// histograms accumulate here, per-partition log gauges are computed at
// scrape time, and the TCP server and cluster node add their families
// to the same registry so one /metrics endpoint covers the process.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// scrapeLogs publishes the per-partition log gauges: log-end offset
// for every partition, plus segment count and disk bytes for durable
// logs (any log implementing Stats).
func (b *Broker) scrapeLogs() {
	for _, name := range b.TopicsSorted() {
		t, err := b.topic(name)
		if err != nil {
			return // closed broker; keep the last rendered values
		}
		for p, part := range t.partitions {
			lbl := metrics.Labels{"topic": name, "partition": strconv.Itoa(p)}
			b.reg.Gauge("broker_partition_log_end_offset",
				"next offset to be written in the partition log", lbl).Set(float64(part.log.HighWatermark()))
			if st, ok := part.log.(interface{ Stats() (int, int64) }); ok {
				segs, bytes := st.Stats()
				b.reg.Gauge("broker_log_segments",
					"segment files held by the partition log", lbl).Set(float64(segs))
				b.reg.Gauge("broker_log_disk_bytes",
					"bytes on disk held by the partition log", lbl).Set(float64(bytes))
			}
		}
	}
}

// Open returns a durable broker backed by cfg.Dir, recovering every
// topic, partition log (truncating torn tails) and consumer-group
// offset a previous process left there. With cfg.Dir == "" it is
// equivalent to New.
func Open(cfg StorageConfig) (*Broker, error) {
	b := New()
	b.scfg = cfg
	if cfg.Dir == "" {
		return b, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		parts, err := recoverPartitionCount(filepath.Join(cfg.Dir, name))
		if err != nil {
			return nil, err
		}
		if parts == 0 {
			continue
		}
		if err := b.createTopic(name, parts); err != nil {
			return nil, err
		}
	}
	var jg jsonGroups
	if ok, err := storage.LoadJSON(b.groupsPath(), &jg); err != nil {
		return nil, err
	} else if ok {
		b.groups = jg.toGroups()
	}
	return b, nil
}

// recoverPartitionCount counts the numeric partition subdirectories of
// one recovered topic directory (0..N-1 must all exist).
func recoverPartitionCount(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("broker: %w", err)
	}
	max := -1
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		p, err := strconv.Atoi(e.Name())
		if err != nil || p < 0 {
			continue
		}
		if p > max {
			max = p
		}
	}
	return max + 1, nil
}

// Dir returns the broker's data directory ("" when in-memory).
func (b *Broker) Dir() string { return b.scfg.Dir }

// SyncAlways reports whether the broker fsyncs every append — the mode
// in which state files are fsynced too.
func (b *Broker) syncAlways() bool {
	return b.scfg.Dir != "" && b.scfg.Policy == storage.SyncAlways
}

// PartitionDir returns the directory holding one partition's segments
// ("" for an in-memory broker). Cluster state files live next to them.
func (b *Broker) PartitionDir(topicName string, p int) string {
	if b.scfg.Dir == "" {
		return ""
	}
	return filepath.Join(b.scfg.Dir, topicName, strconv.Itoa(p))
}

func (b *Broker) groupsPath() string {
	return filepath.Join(b.scfg.Dir, "groups.json")
}

// jsonGroups is the on-disk form of the consumer-group offset table.
type jsonGroups struct {
	Groups map[string]map[string][]int64 `json:"groups"` // group -> topic -> offsets
}

func (jg *jsonGroups) toGroups() map[string]*groupState {
	out := make(map[string]*groupState, len(jg.Groups))
	for g, topics := range jg.Groups {
		gs := &groupState{offsets: make(map[string][]int64, len(topics))}
		for t, offs := range topics {
			gs.offsets[t] = append([]int64(nil), offs...)
		}
		out[g] = gs
	}
	return out
}

// saveGroupsLocked persists the group table (groupMu held). Best
// effort off the commit path is not enough: the commit is acked only
// after the write, so a restart resumes from it.
func (b *Broker) saveGroupsLocked() error {
	if b.scfg.Dir == "" {
		return nil
	}
	jg := jsonGroups{Groups: make(map[string]map[string][]int64, len(b.groups))}
	for g, gs := range b.groups {
		topics := make(map[string][]int64, len(gs.offsets))
		for t, offs := range gs.offsets {
			topics[t] = append([]int64(nil), offs...)
		}
		jg.Groups[g] = topics
	}
	return storage.SaveJSON(b.groupsPath(), &jg, b.syncAlways())
}

// Close marks the broker closed and syncs + closes every partition
// log; subsequent operations fail with ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, t := range b.topics {
		for _, p := range t.partitions {
			_ = p.log.Close()
		}
	}
}

// newLog builds the storage for one partition per the broker's config.
func (b *Broker) newLog(topicName string, p int) (storage.Log, error) {
	if b.scfg.Dir == "" {
		return storage.NewMemLogFor(topicName, p), nil
	}
	return storage.OpenFileLog(b.PartitionDir(topicName, p), storage.FileConfig{
		Topic:          topicName,
		Partition:      p,
		SegmentRecords: b.scfg.SegmentRecords,
		Policy:         b.scfg.Policy,
		SyncEvery:      b.scfg.SyncEvery,
		FS:             b.scfg.FS,
		Instruments: storage.Instruments{
			FsyncSeconds: b.reg.Histogram("broker_fsync_seconds",
				"fsync latency of partition-log flushes in seconds", nil),
			TornTails: b.reg.Counter("broker_storage_torn_tails_total",
				"torn segment tails truncated during crash recovery", nil),
			SegmentsDropped: b.reg.Counter("broker_storage_segments_dropped_total",
				"segment files dropped past a torn tail during crash recovery", nil),
		},
	})
}

// CreateTopic creates a topic with the given partition count.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions < 1 {
		partitions = 1
	}
	return b.createTopic(name, partitions)
}

func (b *Broker) createTopic(name string, partitions int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return ErrTopicExists
	}
	parts := make([]*partition, partitions)
	for i := range parts {
		log, err := b.newLog(name, i)
		if err != nil {
			for _, p := range parts[:i] {
				_ = p.log.Close()
			}
			return err
		}
		parts[i] = &partition{log: log}
	}
	b.topics[name] = &topic{name: name, partitions: parts}
	return nil
}

// Topics returns the topic names, unordered.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// TopicsSorted returns the topic names in lexical order.
func (b *Broker) TopicsSorted() []string {
	out := b.Topics()
	sort.Strings(out)
	return out
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	t, err := b.topic(name)
	if err != nil {
		return 0, err
	}
	return len(t.partitions), nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// partitionFor picks the partition for a record: FNV hash of the key, or
// round-robin when the key is empty. Keyed partitioning keeps each
// sub-stream on a stable partition, the property DistributedOASRS uses to
// pin strata to workers.
func (t *topic) partitionFor(key string) int {
	if key == "" {
		t.rrMu.Lock()
		defer t.rrMu.Unlock()
		p := int(t.rr % uint64(len(t.partitions)))
		t.rr++
		return p
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32()) % len(t.partitions)
}

// partitionForBytes is partitionFor for a byte-slice key — the routing
// used when splitting a raw frame chunk, where the key is a view into
// the frame and must not be copied into a string just to hash it.
func (t *topic) partitionForBytes(key []byte) int {
	if len(key) == 0 {
		t.rrMu.Lock()
		defer t.rrMu.Unlock()
		p := int(t.rr % uint64(len(t.partitions)))
		t.rr++
		return p
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32()) % len(t.partitions)
}

// append stamps topic/partition onto a caller-owned batch and appends
// it under the partition's append mutex, returning the base offset.
func (p *partition) append(batch []Record) (int64, error) {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	return p.log.Append(batch)
}

// appendFrames appends a pre-validated frame chunk under the
// partition's append mutex, returning the base offset.
func (p *partition) appendFrames(frames []byte, count int) (int64, error) {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	return p.log.AppendFrames(frames, count)
}

// Produce appends records to a topic, routing each by its key. It returns
// the number of records appended.
func (b *Broker) Produce(topicName string, recs []Record) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	// Copy into per-partition batches (append stamps offsets in
	// place, so the caller's slice must stay untouched), then append
	// each batch in one bulk operation.
	if len(t.partitions) == 1 {
		batch := make([]Record, len(recs))
		for i, r := range recs {
			r.Topic = topicName
			r.Partition = 0
			batch[i] = r
		}
		if _, err := t.partitions[0].append(batch); err != nil {
			return 0, err
		}
		return len(recs), nil
	}
	byPart := make([][]Record, len(t.partitions))
	for _, r := range recs {
		r.Topic = topicName
		p := t.partitionFor(r.Key)
		r.Partition = p
		byPart[p] = append(byPart[p], r)
	}
	for p, batch := range byPart {
		if len(batch) > 0 {
			if _, err := t.partitions[p].append(batch); err != nil {
				return 0, err
			}
		}
	}
	return len(recs), nil
}

// ProduceFrames appends a pre-validated frame chunk to a topic, routing
// each frame by the key read in place — the zero-copy form of Produce:
// no record is ever materialized, the single-partition fast path is one
// memcpy (or one WriteAt), and the multi-partition path splits frames
// at their structural boundaries. Returns the number of records
// appended.
func (b *Broker) ProduceFrames(topicName string, frames []byte, count int) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if len(t.partitions) == 1 {
		if _, err := t.partitions[0].appendFrames(frames, count); err != nil {
			return 0, err
		}
		return count, nil
	}
	byPart := make([][]byte, len(t.partitions))
	counts := make([]int, len(t.partitions))
	it := storage.IterFrames(frames)
	for it.Next() {
		p := t.partitionForBytes(storage.FrameKey(it.Payload()))
		byPart[p] = append(byPart[p], it.Frame()...)
		counts[p]++
	}
	if err := it.Err(); err != nil {
		return 0, err
	}
	total := 0
	for p, chunk := range byPart {
		if counts[p] == 0 {
			continue
		}
		if _, err := t.partitions[p].appendFrames(chunk, counts[p]); err != nil {
			return total, err
		}
		total += counts[p]
	}
	return total, nil
}

// producePartition appends records to one explicit partition, bypassing
// key routing — the data path of a routing client that partitions on its
// side and sends each batch straight to the partition leader. It returns
// the base offset of the appended batch.
func (b *Broker) producePartition(topicName string, partition int, recs []Record) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	batch := make([]Record, len(recs))
	for i, r := range recs {
		r.Topic = topicName
		r.Partition = partition
		batch[i] = r
	}
	return t.partitions[partition].append(batch)
}

// producePartitionFrames is producePartition for a pre-validated frame
// chunk: the bytes land in the log verbatim.
func (b *Broker) producePartitionFrames(topicName string, partition int, frames []byte, count int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	return t.partitions[partition].appendFrames(frames, count)
}

// replicateAppend applies a leader's replicated batch at an exact base
// offset. It is idempotent and gap-safe: a batch already covered by the
// local log is skipped, an overlapping batch has its duplicate prefix
// trimmed, and a batch starting beyond the local high watermark appends
// nothing (the caller backfills from the returned watermark). It always
// returns the partition's resulting high watermark.
func (b *Broker) replicateAppend(topicName string, partition int, base int64, recs []Record) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	p := t.partitions[partition]
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	hwm := p.log.HighWatermark()
	if base > hwm {
		return hwm, nil // gap: leader must resend from our watermark
	}
	if skip := hwm - base; skip >= int64(len(recs)) {
		return hwm, nil // fully duplicate batch
	} else if skip > 0 {
		recs = recs[skip:]
	}
	batch := make([]Record, len(recs))
	for i, r := range recs {
		r.Topic = topicName
		r.Partition = partition
		batch[i] = r
	}
	if _, err := p.log.Append(batch); err != nil {
		return hwm, err
	}
	return p.log.HighWatermark(), nil
}

// replicateAppendFrames is replicateAppend for a pre-validated frame
// chunk: same idempotence and gap safety, with the duplicate prefix
// trimmed at frame boundaries instead of slicing records, and the
// remainder appended verbatim.
func (b *Broker) replicateAppendFrames(topicName string, partition int, base int64, frames []byte, count int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	p := t.partitions[partition]
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	hwm := p.log.HighWatermark()
	if base > hwm {
		return hwm, nil // gap: leader must resend from our watermark
	}
	if skip := hwm - base; skip >= int64(count) {
		return hwm, nil // fully duplicate batch
	} else if skip > 0 {
		if frames, err = storage.SkipFrames(frames, int(skip)); err != nil {
			return hwm, err
		}
		count -= int(skip)
	}
	if _, err := p.log.AppendFrames(frames, count); err != nil {
		return hwm, err
	}
	return p.log.HighWatermark(), nil
}

// replicateAppendSections applies a coalesced multi-partition replicate
// batch — the follower half of group-commit replication: every
// section's chunk lands through the same idempotent gap-safe append as
// a lone replicate, in batch order, returning the resulting high
// watermark per section. Sections of the same partition arrive
// contiguous (the leader merges them), so later sections see the
// watermark earlier ones produced.
func (b *Broker) replicateAppendSections(secs []replSection) ([]int64, error) {
	hwms := make([]int64, len(secs))
	for i := range secs {
		s := &secs[i]
		hwm, err := b.replicateAppendFrames(s.topic, s.partition, s.base, s.frames, s.count)
		if err != nil {
			return nil, err
		}
		hwms[i] = hwm
	}
	return hwms, nil
}

// truncatePartition discards every record at offset >= hwm — the rejoin
// path's divergence cut, applied before a recovered replica re-enters
// the cluster.
func (b *Broker) truncatePartition(topicName string, partition int, hwm int64) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return ErrBadPartition
	}
	p := t.partitions[partition]
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	return p.log.TruncateTo(hwm)
}

// Fetch reads up to max records from one partition starting at offset.
func (b *Broker) Fetch(topicName string, partition int, offset int64, max int) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return nil, ErrBadPartition
	}
	if max <= 0 {
		max = 1024
	}
	return t.partitions[partition].log.Read(offset, max)
}

// FetchFrames reads up to max records from one partition as a raw frame
// chunk appended onto buf, returning the extended buffer and the record
// count — the zero-copy form of Fetch, used to assemble fetch responses
// directly into the server's pooled write buffer.
func (b *Broker) FetchFrames(topicName string, partition int, offset int64, max int, buf []byte) ([]byte, int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return buf, 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return buf, 0, ErrBadPartition
	}
	if max <= 0 {
		max = 1024
	}
	return t.partitions[partition].log.ReadFrames(offset, max, buf)
}

// FetchBatch reads up to max records from one partition directly into a
// columnar batch — the in-process form of the vectorized fetch path.
// The partition log's frames were validated when they entered the
// process, so the decode is a structural walk plus column appends.
func (b *Broker) FetchBatch(topicName string, partition int, offset int64, max int, eb *stream.EventBatch) (int, error) {
	fb := getFrame()
	defer putFrame(fb)
	frames, _, err := b.FetchFrames(topicName, partition, offset, max, fb.b[:0])
	fb.b = frames[:0]
	if err != nil {
		return 0, err
	}
	return framesToBatch(frames, offset, eb), nil
}

// HighWatermark returns the next offset to be written in a partition.
func (b *Broker) HighWatermark(topicName string, partition int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	return t.partitions[partition].log.HighWatermark(), nil
}

// Commit records a consumer group's committed offset for a partition.
// On a durable broker the offset table is persisted (atomically) before
// the commit is acked, so a restarted process resumes from it.
func (b *Broker) Commit(group, topicName string, partition int, offset int64) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return ErrBadPartition
	}
	b.groupMu.Lock()
	defer b.groupMu.Unlock()
	g, ok := b.groups[group]
	if !ok {
		g = &groupState{offsets: make(map[string][]int64)}
		b.groups[group] = g
	}
	offs, ok := g.offsets[topicName]
	if !ok || len(offs) < len(t.partitions) {
		grown := make([]int64, len(t.partitions))
		copy(grown, offs)
		offs = grown
		g.offsets[topicName] = offs
	}
	offs[partition] = offset
	return b.saveGroupsLocked()
}

// Committed returns a consumer group's committed offset for a partition
// (zero if never committed).
func (b *Broker) Committed(group, topicName string, partition int) (int64, error) {
	if _, err := b.topic(topicName); err != nil {
		return 0, err
	}
	b.groupMu.Lock()
	defer b.groupMu.Unlock()
	g, ok := b.groups[group]
	if !ok {
		return 0, nil
	}
	offs, ok := g.offsets[topicName]
	if !ok || partition >= len(offs) {
		return 0, nil
	}
	return offs[partition], nil
}
