// Package broker implements the stream aggregator of Figure 1: a
// Kafka-like partitioned, append-only message log that combines incoming
// data items from disjoint sub-streams into the single input stream
// StreamApprox consumes.
//
// The model follows Kafka's essentials: named topics split into
// partitions; producers append records (partitioned by key hash or round
// robin); consumers fetch by (partition, offset); consumer groups share
// the partitions of a topic and track committed offsets. Two transports
// are provided: direct in-process calls (this file) and a length-prefixed
// TCP protocol (transport.go) served by cmd/brokerd.
package broker

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Errors returned by broker operations.
var (
	ErrTopicExists      = errors.New("broker: topic already exists")
	ErrUnknownTopic     = errors.New("broker: unknown topic")
	ErrBadPartition     = errors.New("broker: partition out of range")
	ErrOffsetOutOfRange = errors.New("broker: offset out of range")
	ErrClosed           = errors.New("broker: closed")
)

// Record is one message in a partition log.
type Record struct {
	Topic     string    `json:"topic"`
	Partition int       `json:"partition"`
	Offset    int64     `json:"offset"`
	Key       string    `json:"key"`
	Value     float64   `json:"value"`
	Time      time.Time `json:"time"`
}

// logChunkSize is the record capacity of one partition-log chunk.
const logChunkSize = 4096

// partitionLog is one partition's append-only record log, stored as
// fixed-capacity chunks. Appends bulk-copy into the tail chunk (never
// reallocating earlier history, unlike a single growing slice), and
// reads locate their chunk by division and bulk-copy out — a record's
// offset is its position, so no scanning is ever needed.
type partitionLog struct {
	mu     sync.RWMutex
	chunks [][]Record
	n      int64 // total records; the high watermark
}

// append stamps consecutive offsets onto recs (which the caller must
// own) and bulk-copies them into the log. It returns the base offset.
func (p *partitionLog) append(recs []Record) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.appendLocked(recs)
}

// appendLocked is append with p.mu already held.
func (p *partitionLog) appendLocked(recs []Record) int64 {
	base := p.n
	for i := range recs {
		recs[i].Offset = base + int64(i)
	}
	for rest := recs; len(rest) > 0; {
		if len(p.chunks) == 0 || len(p.chunks[len(p.chunks)-1]) == logChunkSize {
			p.chunks = append(p.chunks, make([]Record, 0, logChunkSize))
		}
		tail := len(p.chunks) - 1
		take := logChunkSize - len(p.chunks[tail])
		if take > len(rest) {
			take = len(rest)
		}
		p.chunks[tail] = append(p.chunks[tail], rest[:take]...)
		rest = rest[take:]
	}
	p.n = base + int64(len(recs))
	return base
}

// read returns up to max records starting at offset.
func (p *partitionLog) read(offset int64, max int) ([]Record, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if offset < 0 || offset > p.n {
		return nil, ErrOffsetOutOfRange
	}
	end := offset + int64(max)
	if end > p.n {
		end = p.n
	}
	out := make([]Record, end-offset)
	for filled := int64(0); offset+filled < end; {
		at := offset + filled
		chunk := p.chunks[at/logChunkSize]
		filled += int64(copy(out[filled:], chunk[at%logChunkSize:]))
	}
	return out, nil
}

func (p *partitionLog) highWatermark() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.n
}

// topic is a named set of partitions.
type topic struct {
	name       string
	partitions []*partitionLog
	rr         uint64 // round-robin cursor for keyless records
	rrMu       sync.Mutex
}

// Broker is an in-process message broker.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
	closed bool

	groupMu sync.Mutex
	groups  map[string]*groupState // committed offsets per consumer group
}

type groupState struct {
	offsets map[string][]int64 // topic -> per-partition committed offset
}

// New returns an empty broker.
func New() *Broker {
	return &Broker{
		topics: make(map[string]*topic),
		groups: make(map[string]*groupState),
	}
}

// Close marks the broker closed; subsequent operations fail with
// ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

// CreateTopic creates a topic with the given partition count.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions < 1 {
		partitions = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return ErrTopicExists
	}
	parts := make([]*partitionLog, partitions)
	for i := range parts {
		parts[i] = &partitionLog{}
	}
	b.topics[name] = &topic{name: name, partitions: parts}
	return nil
}

// Topics returns the topic names, unordered.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	t, err := b.topic(name)
	if err != nil {
		return 0, err
	}
	return len(t.partitions), nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// partitionFor picks the partition for a record: FNV hash of the key, or
// round-robin when the key is empty. Keyed partitioning keeps each
// sub-stream on a stable partition, the property DistributedOASRS uses to
// pin strata to workers.
func (t *topic) partitionFor(key string) int {
	if key == "" {
		t.rrMu.Lock()
		defer t.rrMu.Unlock()
		p := int(t.rr % uint64(len(t.partitions)))
		t.rr++
		return p
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32()) % len(t.partitions)
}

// Produce appends records to a topic, routing each by its key. It returns
// the number of records appended.
func (b *Broker) Produce(topicName string, recs []Record) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	// Copy into per-partition batches (append stamps offsets in
	// place, so the caller's slice must stay untouched), then append
	// each batch in one bulk operation.
	if len(t.partitions) == 1 {
		batch := make([]Record, len(recs))
		for i, r := range recs {
			r.Topic = topicName
			r.Partition = 0
			batch[i] = r
		}
		t.partitions[0].append(batch)
		return len(recs), nil
	}
	byPart := make([][]Record, len(t.partitions))
	for _, r := range recs {
		r.Topic = topicName
		p := t.partitionFor(r.Key)
		r.Partition = p
		byPart[p] = append(byPart[p], r)
	}
	for p, batch := range byPart {
		if len(batch) > 0 {
			t.partitions[p].append(batch)
		}
	}
	return len(recs), nil
}

// producePartition appends records to one explicit partition, bypassing
// key routing — the data path of a routing client that partitions on its
// side and sends each batch straight to the partition leader. It returns
// the base offset of the appended batch.
func (b *Broker) producePartition(topicName string, partition int, recs []Record) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	batch := make([]Record, len(recs))
	for i, r := range recs {
		r.Topic = topicName
		r.Partition = partition
		batch[i] = r
	}
	return t.partitions[partition].append(batch), nil
}

// replicateAppend applies a leader's replicated batch at an exact base
// offset. It is idempotent and gap-safe: a batch already covered by the
// local log is skipped, an overlapping batch has its duplicate prefix
// trimmed, and a batch starting beyond the local high watermark appends
// nothing (the caller backfills from the returned watermark). It always
// returns the partition's resulting high watermark.
func (b *Broker) replicateAppend(topicName string, partition int, base int64, recs []Record) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	p := t.partitions[partition]
	p.mu.Lock()
	defer p.mu.Unlock()
	if base > p.n {
		return p.n, nil // gap: leader must resend from our watermark
	}
	if skip := p.n - base; skip >= int64(len(recs)) {
		return p.n, nil // fully duplicate batch
	} else if skip > 0 {
		recs = recs[skip:]
	}
	batch := make([]Record, len(recs))
	for i, r := range recs {
		r.Topic = topicName
		r.Partition = partition
		batch[i] = r
	}
	p.appendLocked(batch)
	return p.n, nil
}

// Fetch reads up to max records from one partition starting at offset.
func (b *Broker) Fetch(topicName string, partition int, offset int64, max int) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return nil, ErrBadPartition
	}
	if max <= 0 {
		max = 1024
	}
	return t.partitions[partition].read(offset, max)
}

// HighWatermark returns the next offset to be written in a partition.
func (b *Broker) HighWatermark(topicName string, partition int) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	return t.partitions[partition].highWatermark(), nil
}

// Commit records a consumer group's committed offset for a partition.
func (b *Broker) Commit(group, topicName string, partition int, offset int64) error {
	t, err := b.topic(topicName)
	if err != nil {
		return err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return ErrBadPartition
	}
	b.groupMu.Lock()
	defer b.groupMu.Unlock()
	g, ok := b.groups[group]
	if !ok {
		g = &groupState{offsets: make(map[string][]int64)}
		b.groups[group] = g
	}
	offs, ok := g.offsets[topicName]
	if !ok {
		offs = make([]int64, len(t.partitions))
		g.offsets[topicName] = offs
	}
	offs[partition] = offset
	return nil
}

// Committed returns a consumer group's committed offset for a partition
// (zero if never committed).
func (b *Broker) Committed(group, topicName string, partition int) (int64, error) {
	if _, err := b.topic(topicName); err != nil {
		return 0, err
	}
	b.groupMu.Lock()
	defer b.groupMu.Unlock()
	g, ok := b.groups[group]
	if !ok {
		return 0, nil
	}
	offs, ok := g.offsets[topicName]
	if !ok || partition >= len(offs) {
		return 0, nil
	}
	return offs[partition], nil
}
