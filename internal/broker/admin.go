package broker

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// AdminHandler serves the broker's operational plane: Prometheus metrics,
// an ISR-aware readiness probe, and the standard pprof endpoints. node may
// be nil for a standalone (non-clustered) broker, in which case /healthz
// reports ready as long as the broker is open.
func AdminHandler(b *Broker, node *ClusterNode) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		b.Metrics().WriteTo(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if node != nil {
			if err := node.Ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "not ready: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
