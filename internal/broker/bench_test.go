package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamapprox/internal/broker/storage"
)

// Microbenchmarks for the broker data plane. The json/binary pairs
// measure the same TCP operation through the legacy lockstep JSON
// protocol and the pipelined binary codec — the items/s ratio is the
// wire-format win the bench-broker runner records in BENCH_broker.json.
//
//	go test ./internal/broker -bench Wire -benchtime 2s

const benchBatch = 1000

func benchRecords(n int) []Record {
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Key:   "sensor-42",
			Value: float64(i) * 1.5,
			Time:  base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

// benchDial starts a server and connects with the requested codec.
func benchDial(b *testing.B, mode string) (*Broker, *Client) {
	b.Helper()
	bk := New()
	srv, err := Serve(bk, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	var cli *Client
	if mode == "json" {
		cli, err = DialJSON(srv.Addr())
	} else {
		cli, err = Dial(srv.Addr())
	}
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = cli.Close() })
	return bk, cli
}

func BenchmarkWireProduce(b *testing.B) {
	for _, mode := range []string{"json", "binary"} {
		b.Run(mode, func(b *testing.B) {
			_, cli := benchDial(b, mode)
			if err := cli.CreateTopic("bench", 1); err != nil {
				b.Fatal(err)
			}
			batch := benchRecords(benchBatch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.Produce("bench", batch); err != nil {
					b.Fatal(err)
				}
			}
			reportItems(b, int64(b.N)*benchBatch)
		})
	}
}

func BenchmarkWireFetch(b *testing.B) {
	for _, mode := range []string{"json", "binary"} {
		b.Run(mode, func(b *testing.B) {
			bk, cli := benchDial(b, mode)
			if err := bk.CreateTopic("bench", 1); err != nil {
				b.Fatal(err)
			}
			const preload = 64 * benchBatch
			if _, err := bk.Produce("bench", benchRecords(preload)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(i%64) * benchBatch
				recs, err := cli.Fetch("bench", 0, off, benchBatch)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != benchBatch {
					b.Fatalf("fetched %d of %d", len(recs), benchBatch)
				}
			}
			reportItems(b, int64(b.N)*benchBatch)
		})
	}
}

// BenchmarkWireRoundTrip produces a batch and fetches it back — the
// full data-plane round trip one shard iteration costs.
func BenchmarkWireRoundTrip(b *testing.B) {
	for _, mode := range []string{"json", "binary"} {
		b.Run(mode, func(b *testing.B) {
			_, cli := benchDial(b, mode)
			if err := cli.CreateTopic("bench", 1); err != nil {
				b.Fatal(err)
			}
			batch := benchRecords(benchBatch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.Produce("bench", batch); err != nil {
					b.Fatal(err)
				}
				recs, err := cli.Fetch("bench", 0, int64(i)*benchBatch, benchBatch)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != benchBatch {
					b.Fatalf("fetched %d of %d", len(recs), benchBatch)
				}
			}
			reportItems(b, 2*int64(b.N)*benchBatch)
		})
	}
}

// BenchmarkWirePipelinedFetch measures concurrent fetches sharing one
// connection: the pipelined binary client keeps them all in flight,
// the JSON client serializes them behind its mutex.
func BenchmarkWirePipelinedFetch(b *testing.B) {
	for _, mode := range []string{"json", "binary"} {
		b.Run(mode, func(b *testing.B) {
			bk, cli := benchDial(b, mode)
			if err := bk.CreateTopic("bench", 1); err != nil {
				b.Fatal(err)
			}
			const preload = 64 * benchBatch
			if _, err := bk.Produce("bench", benchRecords(preload)); err != nil {
				b.Fatal(err)
			}
			const workers = 4
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			var mu sync.Mutex
			var firstErr error
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						off := int64((w*per+i)%64) * benchBatch
						if _, err := cli.Fetch("bench", 0, off, benchBatch); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if firstErr != nil {
				b.Fatal(firstErr)
			}
			reportItems(b, int64(workers)*int64(per)*benchBatch)
		})
	}
}

// BenchmarkLogAppend measures the chunked partition log's in-memory
// append path (no wire) at several batch sizes.
func BenchmarkLogAppend(b *testing.B) {
	for _, batch := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			p := storage.NewMemLog()
			recs := benchRecords(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Append(recs); err != nil {
					b.Fatal(err)
				}
			}
			reportItems(b, int64(b.N)*int64(batch))
		})
	}
}

// BenchmarkLogRead measures chunked random reads from a loaded log.
func BenchmarkLogRead(b *testing.B) {
	p := storage.NewMemLog()
	const loaded = 1 << 18
	for i := 0; i < loaded/4096; i++ {
		if _, err := p.Append(benchRecords(4096)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64((i * 7919) % (loaded - benchBatch))
		recs, err := p.Read(off, benchBatch)
		if err != nil || len(recs) != benchBatch {
			b.Fatalf("read %d records, %v", len(recs), err)
		}
	}
	reportItems(b, int64(b.N)*benchBatch)
}

func reportItems(b *testing.B, items int64) {
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(items)/elapsed, "items/s")
	}
}
