package broker

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"streamapprox/internal/xrand"
)

// encodeDecodeProduce round-trips records through the produce-request
// encoder, the path every produced record takes.
func encodeDecodeProduce(t *testing.T, topic string, in []Record) []Record {
	t.Helper()
	fb := getFrame()
	defer putFrame(fb)
	encodeProduceReq(fb, 42, 0, topic, in)
	req, err := decodeBinRequest(fb.b)
	if err != nil {
		t.Fatalf("decode produce: %v", err)
	}
	if req.op != binOpProduce || req.corr != 42 || req.topic != topic {
		t.Fatalf("decoded header (op=%d corr=%d topic=%q)", req.op, req.corr, req.topic)
	}
	return req.recs
}

// sameRecord compares the wire-carried fields, treating NaN as equal to
// itself (bit-level value fidelity is the codec's contract).
func sameRecord(a, b Record) bool {
	return a.Key == b.Key &&
		math.Float64bits(a.Value) == math.Float64bits(b.Value) &&
		a.Time.Equal(b.Time) && a.Time.IsZero() == b.Time.IsZero()
}

func TestBinaryCodecRoundTripEdgeCases(t *testing.T) {
	when := time.Date(2017, 12, 11, 1, 2, 3, 456789, time.UTC)
	cases := []Record{
		{Key: "sensor-1", Value: 123.456, Time: when},
		{Key: "", Value: 0, Time: when},                 // empty key
		{Key: "zero-time", Value: 1, Time: time.Time{}}, // zero time sentinel
		{Key: "nan", Value: math.NaN(), Time: when},     // JSON cannot carry this
		{Key: "+inf", Value: math.Inf(1), Time: when},   // nor this
		{Key: "-inf", Value: math.Inf(-1), Time: when},  // nor this
		{Key: "neg-zero", Value: math.Copysign(0, -1), Time: when},
		{Key: strings.Repeat("k", 4096), Value: -1e300, Time: when.Add(-time.Hour)},
		{Key: "epoch", Value: 1, Time: time.Unix(0, 0).UTC()},
		{Key: "pre-epoch", Value: 1, Time: time.Unix(-1, 999).UTC()},
	}
	got := encodeDecodeProduce(t, "edge", cases)
	if len(got) != len(cases) {
		t.Fatalf("decoded %d records, want %d", len(got), len(cases))
	}
	for i := range cases {
		if !sameRecord(cases[i], got[i]) {
			t.Errorf("record %d mangled: %+v -> %+v", i, cases[i], got[i])
		}
	}
}

// TestBinaryCodecRoundTripProperty hammers the codec with random
// records: encode→decode must be the identity on key, value bits and
// instant for any input.
func TestBinaryCodecRoundTripProperty(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		n := int(rng.Uint64()%64) + 1
		in := make([]Record, n)
		for i := range in {
			keyLen := int(rng.Uint64() % 16)
			var sb strings.Builder
			for k := 0; k < keyLen; k++ {
				sb.WriteRune(rune('a' + rng.Uint64()%26))
			}
			in[i] = Record{
				Key:   sb.String(),
				Value: math.Float64frombits(rng.Uint64()),
				Time:  time.Unix(0, int64(rng.Uint64()%uint64(1e18))).UTC(),
			}
			if rng.Uint64()%10 == 0 {
				in[i].Time = time.Time{}
			}
		}
		got := encodeDecodeProduce(t, "prop", in)
		if len(got) != len(in) {
			t.Fatalf("trial %d: decoded %d of %d", trial, len(got), len(in))
		}
		for i := range in {
			if !sameRecord(in[i], got[i]) {
				t.Fatalf("trial %d record %d: %+v -> %+v", trial, i, in[i], got[i])
			}
		}
	}
}

// FuzzBinaryRecordCodec is the fuzz form of the round-trip property for
// a single record through produce encode→decode and fetch encode→decode.
func FuzzBinaryRecordCodec(f *testing.F) {
	f.Add("key", 1.5, int64(1512954123456789), false)
	f.Add("", 0.0, int64(0), true)
	f.Add("nan", math.NaN(), int64(-1), false)
	f.Add(strings.Repeat("x", 100), math.Inf(-1), int64(math.MaxInt64/2), false)
	f.Fuzz(func(t *testing.T, key string, value float64, nanos int64, zeroTime bool) {
		when := time.Unix(0, nanos).UTC()
		if zeroTime {
			when = time.Time{}
		}
		in := Record{Key: key, Value: value, Time: when}

		// produce path
		fb := getFrame()
		encodeProduceReq(fb, 7, 0, "fuzz", []Record{in})
		req, err := decodeBinRequest(fb.b)
		putFrame(fb)
		if err != nil {
			t.Fatalf("produce decode: %v", err)
		}
		if len(req.recs) != 1 || !sameRecord(in, req.recs[0]) {
			t.Fatalf("produce round trip: %+v -> %+v", in, req.recs)
		}

		// fetch path (offsets stamped server-side)
		stamped := in
		stamped.Topic, stamped.Partition, stamped.Offset = "fuzz", 3, 17
		fb = getFrame()
		encodeFetchResp(fb, 7, 17, []Record{stamped})
		cur, err := decodeRespHeader(fb)
		if err != nil {
			putFrame(fb)
			t.Fatalf("fetch header: %v", err)
		}
		out, err := decodeFetchResp(cur, "fuzz", 3)
		putFrame(fb)
		if err != nil {
			t.Fatalf("fetch decode: %v", err)
		}
		if len(out) != 1 || !sameRecord(in, out[0]) || out[0].Offset != 17 ||
			out[0].Topic != "fuzz" || out[0].Partition != 3 {
			t.Fatalf("fetch round trip: %+v -> %+v", stamped, out)
		}
	})
}

// FuzzBinaryRequestDecode feeds arbitrary bytes to the server-side
// request decoder: it must reject garbage with an error, never panic or
// over-read.
func FuzzBinaryRequestDecode(f *testing.F) {
	fb := getFrame()
	encodeProduceReq(fb, 1, 0, "t", recs("k", 3))
	f.Add(append([]byte(nil), fb.b...))
	encodeFetchReq(fb, 2, 0, "t", 0, 0, 10)
	f.Add(append([]byte(nil), fb.b...))
	putFrame(fb)
	f.Add([]byte{binVersion, binOpProduce})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		_, _ = decodeBinRequest(payload) // must not panic
	})
}

// TestBinaryClientFallsBackToJSONOnlyServer proves the mixed-version
// path: a codec-negotiating client against a pre-codec (JSON-only)
// server lands on the legacy protocol and every op still works.
func TestBinaryClientFallsBackToJSONOnlyServer(t *testing.T) {
	b := New()
	srv, err := ServeWithOptions(b, "127.0.0.1:0", ServerOptions{JSONOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial against JSON-only server: %v", err)
	}
	defer cli.Close()
	if cli.binary {
		t.Fatal("client negotiated binary against a JSON-only server")
	}
	exerciseAllOps(t, cli)
}

// TestJSONClientAgainstBinaryServer proves the other mixed-version
// direction: a legacy JSON client against a binary-capable server.
func TestJSONClientAgainstBinaryServer(t *testing.T) {
	srv, _ := startServer(t)
	cli, err := DialJSON(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.binary {
		t.Fatal("DialJSON negotiated binary")
	}
	exerciseAllOps(t, cli)
}

// TestBinaryClientNegotiates sanity-checks that Dial against a current
// server does pick the binary codec and all ops work over it.
func TestBinaryClientNegotiates(t *testing.T) {
	srv, _ := startServer(t)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if !cli.binary {
		t.Fatal("client did not negotiate the binary codec")
	}
	exerciseAllOps(t, cli)
}

// exerciseAllOps drives every client op against a fresh topic and
// checks record fidelity end to end.
func exerciseAllOps(t *testing.T, cli *Client) {
	t.Helper()
	if err := cli.CreateTopic("mixed", 2); err != nil {
		t.Fatal(err)
	}
	if n, err := cli.Partitions("mixed"); err != nil || n != 2 {
		t.Fatalf("partitions = %d, %v", n, err)
	}
	when := time.Date(2017, 12, 11, 8, 0, 0, 0, time.UTC)
	in := []Record{
		{Key: "a", Value: 1.25, Time: when},
		{Key: "a", Value: -2.5, Time: when.Add(time.Second)},
		{Key: "b", Value: 3.75, Time: when.Add(2 * time.Second)},
	}
	if n, err := cli.Produce("mixed", in); err != nil || n != 3 {
		t.Fatalf("produce = %d, %v", n, err)
	}
	var got []Record
	for p := 0; p < 2; p++ {
		recs, err := cli.Fetch("mixed", p, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		hwm, err := cli.HighWatermark("mixed", p)
		if err != nil || hwm != int64(len(recs)) {
			t.Fatalf("hwm(p=%d) = %d, %v (fetched %d)", p, hwm, err, len(recs))
		}
		got = append(got, recs...)
	}
	if len(got) != 3 {
		t.Fatalf("fetched %d records, want 3", len(got))
	}
	for _, r := range got {
		var want *Record
		for i := range in {
			if in[i].Time.Equal(r.Time) {
				want = &in[i]
			}
		}
		if want == nil || r.Key != want.Key || r.Value != want.Value {
			t.Errorf("record mangled in transit: %+v", r)
		}
	}
	if err := cli.Commit("g", "mixed", 1, 2); err != nil {
		t.Fatal(err)
	}
	if off, err := cli.Committed("g", "mixed", 1); err != nil || off != 2 {
		t.Fatalf("committed = %d, %v", off, err)
	}
	if _, err := cli.Fetch("absent", 0, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown topic") {
		t.Errorf("error lost in transit: %v", err)
	}
}

// TestPipelinedClientConcurrentStress runs many goroutines over one
// pipelined connection mixing every op; run under -race it checks the
// correlation-ID matching and pooled buffers for unsynchronized access,
// and afterwards verifies no response was delivered to the wrong waiter
// (every produced record must be fetchable exactly once per goroutine's
// private topic).
func TestPipelinedClientConcurrentStress(t *testing.T) {
	srv, _ := startServer(t)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if !cli.binary {
		t.Fatal("stress test needs the pipelined client")
	}
	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			topic := "stress-" + string(rune('a'+g))
			if err := cli.CreateTopic(topic, 1); err != nil {
				errs <- err
				return
			}
			for i := 0; i < rounds; i++ {
				want := float64(g*rounds + i)
				if _, err := cli.Produce(topic, []Record{{Key: "k", Value: want}}); err != nil {
					errs <- err
					return
				}
				got, err := cli.Fetch(topic, 0, int64(i), 1)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 1 || got[0].Value != want {
					errs <- errTruncatedFrame
					return
				}
				if hwm, err := cli.HighWatermark(topic, 0); err != nil || hwm != int64(i+1) {
					errs <- err
					return
				}
				if err := cli.Commit("g", topic, 0, int64(i+1)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("stress: %v", err)
		}
	}
	// Cross-check: every goroutine's topic holds exactly its records.
	for g := 0; g < goroutines; g++ {
		topic := "stress-" + string(rune('a'+g))
		recs, err := cli.Fetch(topic, 0, 0, rounds*2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != rounds {
			t.Fatalf("topic %s holds %d records, want %d", topic, len(recs), rounds)
		}
		for i, r := range recs {
			if r.Value != float64(g*rounds+i) {
				t.Fatalf("topic %s record %d = %v (responses crossed)", topic, i, r.Value)
			}
		}
	}
}

// TestPipelinedClientServerClose checks in-flight and subsequent
// requests fail cleanly when the server goes away.
func TestPipelinedClientServerClose(t *testing.T) {
	srv, cli := startServer(t)
	if err := cli.CreateTopic("in", 1); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Produce("in", recs("k", 1)); err == nil {
		t.Error("produce after server close should fail")
	}
	if _, err := cli.Fetch("in", 0, 0, 1); err == nil {
		t.Error("fetch after server close should fail")
	}
}

func TestCodecV2TraceRoundTrip(t *testing.T) {
	fb := getFrame()
	defer putFrame(fb)
	encodeProduceReq(fb, 99, 0xdeadbeefcafe, "traced", recs("k", 2))
	if fb.b[0] != binVersion2 {
		t.Fatalf("version byte = %#x, want v2", fb.b[0])
	}
	if got, ok := corrIDOf(fb.b); !ok || got != 99 {
		t.Fatalf("corrIDOf = %d, %v", got, ok)
	}
	req, err := decodeBinRequest(fb.b)
	if err != nil {
		t.Fatal(err)
	}
	if req.trace != 0xdeadbeefcafe {
		t.Fatalf("trace = %#x, want 0xdeadbeefcafe", req.trace)
	}
	if req.corr != 99 || req.topic != "traced" || len(req.recs) != 2 {
		t.Fatalf("bad decode: %+v", req)
	}

	// trace == 0 must stay on the v1 header so old peers keep decoding.
	fb2 := getFrame()
	defer putFrame(fb2)
	encodeFetchReq(fb2, 7, 0, "t", 0, 0, 10)
	if fb2.b[0] != binVersion {
		t.Fatalf("version byte = %#x, want v1 when trace is zero", fb2.b[0])
	}
}
