package broker

import (
	"errors"
	"sync"
	"testing"
	"time"

	"streamapprox/internal/stream"
)

func recs(key string, n int) []Record {
	out := make([]Record, n)
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	for i := range out {
		out[i] = Record{Key: key, Value: float64(i), Time: base.Add(time.Duration(i) * time.Millisecond)}
	}
	return out
}

func TestCreateTopic(t *testing.T) {
	b := New()
	if err := b.CreateTopic("in", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("in", 4); !errors.Is(err, ErrTopicExists) {
		t.Errorf("duplicate create: %v", err)
	}
	n, err := b.Partitions("in")
	if err != nil || n != 4 {
		t.Errorf("Partitions = %d, %v", n, err)
	}
	if _, err := b.Partitions("nope"); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("unknown topic: %v", err)
	}
	if got := b.Topics(); len(got) != 1 || got[0] != "in" {
		t.Errorf("Topics = %v", got)
	}
}

func TestCreateTopicClampsPartitions(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := b.Partitions("t"); n != 1 {
		t.Errorf("partitions = %d, want 1", n)
	}
}

func TestProduceFetchRoundTrip(t *testing.T) {
	b := New()
	if err := b.CreateTopic("in", 1); err != nil {
		t.Fatal(err)
	}
	n, err := b.Produce("in", recs("tcp", 10))
	if err != nil || n != 10 {
		t.Fatalf("Produce = %d, %v", n, err)
	}
	got, err := b.Fetch("in", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("fetched %d", len(got))
	}
	for i, r := range got {
		if r.Offset != int64(i) {
			t.Errorf("record %d offset %d", i, r.Offset)
		}
		if r.Topic != "in" || r.Partition != 0 {
			t.Errorf("record metadata not stamped: %+v", r)
		}
	}
}

func TestFetchPagination(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 1)
	_, _ = b.Produce("in", recs("k", 10))
	page1, err := b.Fetch("in", 0, 0, 4)
	if err != nil || len(page1) != 4 {
		t.Fatalf("page1 = %d, %v", len(page1), err)
	}
	page2, err := b.Fetch("in", 0, 4, 100)
	if err != nil || len(page2) != 6 {
		t.Fatalf("page2 = %d, %v", len(page2), err)
	}
	if page2[0].Offset != 4 {
		t.Errorf("page2 starts at %d", page2[0].Offset)
	}
}

func TestFetchErrors(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 2)
	if _, err := b.Fetch("in", 5, 0, 10); !errors.Is(err, ErrBadPartition) {
		t.Errorf("bad partition: %v", err)
	}
	if _, err := b.Fetch("in", 0, 99, 10); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Errorf("bad offset: %v", err)
	}
	if _, err := b.Fetch("in", 0, -1, 10); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestKeyedPartitioningIsStable(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 4)
	_, _ = b.Produce("in", recs("tcp", 50))
	_, _ = b.Produce("in", recs("udp", 50))
	// All records with the same key must land in one partition.
	perPartKeys := make([]map[string]bool, 4)
	total := 0
	for p := 0; p < 4; p++ {
		perPartKeys[p] = map[string]bool{}
		got, err := b.Fetch("in", p, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		total += len(got)
		for _, r := range got {
			perPartKeys[p][r.Key] = true
		}
	}
	if total != 100 {
		t.Fatalf("total fetched %d", total)
	}
	seen := map[string]int{}
	for _, keys := range perPartKeys {
		for k := range keys {
			seen[k]++
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %q spread over %d partitions", k, n)
		}
	}
}

func TestRoundRobinForEmptyKey(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 3)
	_, _ = b.Produce("in", recs("", 9))
	for p := 0; p < 3; p++ {
		got, _ := b.Fetch("in", p, 0, 100)
		if len(got) != 3 {
			t.Errorf("partition %d has %d records, want 3 (round robin)", p, len(got))
		}
	}
}

func TestHighWatermark(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 1)
	if hwm, _ := b.HighWatermark("in", 0); hwm != 0 {
		t.Errorf("empty hwm = %d", hwm)
	}
	_, _ = b.Produce("in", recs("k", 7))
	if hwm, _ := b.HighWatermark("in", 0); hwm != 7 {
		t.Errorf("hwm = %d, want 7", hwm)
	}
}

func TestCommitCommitted(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 2)
	if off, _ := b.Committed("g", "in", 0); off != 0 {
		t.Errorf("initial committed = %d", off)
	}
	if err := b.Commit("g", "in", 0, 42); err != nil {
		t.Fatal(err)
	}
	if off, _ := b.Committed("g", "in", 0); off != 42 {
		t.Errorf("committed = %d, want 42", off)
	}
	if off, _ := b.Committed("g", "in", 1); off != 0 {
		t.Errorf("other partition committed = %d, want 0", off)
	}
	if err := b.Commit("g", "in", 9, 1); !errors.Is(err, ErrBadPartition) {
		t.Errorf("bad partition commit: %v", err)
	}
}

func TestClosedBroker(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 1)
	b.Close()
	if err := b.CreateTopic("x", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("create on closed: %v", err)
	}
	if _, err := b.Produce("in", recs("k", 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("produce on closed: %v", err)
	}
}

func TestConcurrentProducers(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := b.Produce("in", recs("key", 5)); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for p := 0; p < 4; p++ {
		hwm, _ := b.HighWatermark("in", p)
		total += hwm
	}
	if total != 8*100*5 {
		t.Errorf("total records %d, want %d", total, 8*100*5)
	}
}

func TestConsumerGroupPartitionAssignment(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 4)
	c0, err := NewConsumer(b, "g", "in", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := NewConsumer(b, "g", "in", 1, 2)
	p0, p1 := c0.Partitions(), c1.Partitions()
	if len(p0)+len(p1) != 4 {
		t.Fatalf("assignments %v + %v do not cover 4 partitions", p0, p1)
	}
	seen := map[int]bool{}
	for _, p := range append(p0, p1...) {
		if seen[p] {
			t.Fatalf("partition %d assigned twice", p)
		}
		seen[p] = true
	}
}

func TestConsumerPollAndLag(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 2)
	_, _ = b.Produce("in", recs("a", 10))
	_, _ = b.Produce("in", recs("b", 10))
	c, err := NewConsumer(b, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lag, _ := c.Lag(); lag != 20 {
		t.Errorf("lag = %d, want 20", lag)
	}
	got, err := c.Poll()
	if err != nil || len(got) != 20 {
		t.Fatalf("poll = %d, %v", len(got), err)
	}
	// Poll output must be time-ordered.
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("poll output not time-ordered")
		}
	}
	if lag, _ := c.Lag(); lag != 0 {
		t.Errorf("post-poll lag = %d", lag)
	}
	if again, _ := c.Poll(); len(again) != 0 {
		t.Errorf("second poll returned %d records", len(again))
	}
}

func TestConsumerCommitResume(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 1)
	_, _ = b.Produce("in", recs("a", 10))
	c, _ := NewConsumer(b, "g", "in", 0, 1)
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// A new consumer in the same group resumes past the committed offset.
	c2, _ := NewConsumer(b, "g", "in", 0, 1)
	got, _ := c2.Poll()
	if len(got) != 0 {
		t.Errorf("resumed consumer re-read %d records", len(got))
	}
}

func TestEventConversion(t *testing.T) {
	e := stream.Event{Stratum: "tcp", Value: 42, Time: time.Unix(100, 0)}
	r := FromEvent(e)
	if r.Key != "tcp" || r.Value != 42 || !r.Time.Equal(e.Time) {
		t.Errorf("FromEvent = %+v", r)
	}
	back := ToEvent(r)
	if back != e {
		t.Errorf("round trip = %+v, want %+v", back, e)
	}
}

func TestProduceEventsAndEventSource(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 2)
	events := make([]stream.Event, 100)
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	for i := range events {
		events[i] = stream.Event{Stratum: "s", Value: float64(i), Time: base.Add(time.Duration(i) * time.Millisecond)}
	}
	if n, err := ProduceEvents(b, "in", events); err != nil || n != 100 {
		t.Fatalf("ProduceEvents = %d, %v", n, err)
	}
	c, _ := NewConsumer(b, "g", "in", 0, 1)
	src := NewEventSource(c, 2, 0)
	drained := stream.Drain(src)
	if len(drained) != 100 {
		t.Errorf("drained %d events, want 100", len(drained))
	}
}
