package broker

import (
	"sort"
	"sync"
	"time"

	"streamapprox/internal/stream"
)

// Cluster is the read/commit surface a consumer needs from a broker. It
// is satisfied both by the in-process *Broker and by the TCP *Client, so
// the same consumer-group machinery works against a local aggregator and
// a remote brokerd.
type Cluster interface {
	Partitions(topic string) (int, error)
	Fetch(topic string, partition int, offset int64, max int) ([]Record, error)
	HighWatermark(topic string, partition int) (int64, error)
	Commit(group, topic string, partition int, offset int64) error
	Committed(group, topic string, partition int) (int64, error)
}

var (
	_ Cluster = (*Broker)(nil)
	_ Cluster = (*Client)(nil)
)

// BatchFetcher is the optional vectorized fetch surface: a broker that
// can decode one partition fetch straight into a columnar EventBatch
// (frame chunk → columns, no intermediate []Record). The in-process
// *Broker, the TCP *Client, and the routing *ClusterClient all
// implement it; wrappers around a Cluster should forward it to keep the
// consumer's batch path lit.
type BatchFetcher interface {
	FetchBatch(topic string, partition int, offset int64, max int, b *stream.EventBatch) (int, error)
}

var (
	_ BatchFetcher = (*Broker)(nil)
	_ BatchFetcher = (*Client)(nil)
	_ BatchFetcher = (*ClusterClient)(nil)
)

// recordsToBatch converts a row-form record slice into a columnar
// batch — the compatibility bridge for brokers without a native
// FetchBatch. base is the offset of recs[0].
func recordsToBatch(recs []Record, base int64, b *stream.EventBatch) int {
	for i := range recs {
		r := &recs[i]
		b.Append(b.Intern(r.Key), r.Value, timeToNanos(r.Time))
	}
	b.Base = base
	return len(recs)
}

// Consumer reads one topic from a broker as part of a consumer group,
// owning a fixed subset of partitions (static assignment: member i of m
// owns partitions p with p % m == i, Kafka's range-free analogue that
// needs no coordinator for a fixed membership).
//
// A consumer is single-threaded by default. StartPrefetch switches it
// to a double-buffered mode where a background goroutine fetches batch
// N+1 while the caller drains batch N.
type Consumer struct {
	broker    Cluster
	group     string
	topicName string
	parts     []int
	fetchMax  int

	// mu guards offsets (the delivered positions) against the
	// prefetcher applying advances concurrently with Offsets/Commit.
	mu      sync.Mutex
	offsets map[int]int64

	pre *prefetcher
	// batchMode switches the prefetcher to columnar rounds
	// (fetchAllBatch/PollBatch); set by StartBatchPrefetch.
	batchMode bool
}

// prefetcher is the background double-buffer: one batch queued in ch,
// one being fetched — so the broker round-trip for batch N+1 overlaps
// the caller processing batch N.
type prefetcher struct {
	ch        chan prefetchBatch
	done      chan struct{}
	closeOnce sync.Once
}

// prefetchBatch carries one fetched round plus the per-partition
// positions after it, applied to the consumer's offsets on delivery so
// Commit never covers records the caller has not yet seen. Exactly one
// of recs/batch is set, matching the consumer's prefetch mode.
type prefetchBatch struct {
	recs  []Record
	batch *stream.EventBatch
	pos   map[int]int64
	err   error
}

// NewConsumer returns a consumer for member `member` of `members` total in
// the group. Offsets resume from the group's committed positions.
func NewConsumer(b Cluster, group, topicName string, member, members int) (*Consumer, error) {
	n, err := b.Partitions(topicName)
	if err != nil {
		return nil, err
	}
	if members < 1 {
		members = 1
	}
	c := &Consumer{
		broker:    b,
		group:     group,
		topicName: topicName,
		offsets:   make(map[int]int64),
		fetchMax:  4096,
	}
	for p := 0; p < n; p++ {
		if p%members == member%members {
			c.parts = append(c.parts, p)
			off, err := b.Committed(group, topicName, p)
			if err != nil {
				return nil, err
			}
			c.offsets[p] = off
		}
	}
	return c, nil
}

// NewPartitionConsumer returns a consumer pinned to exactly one
// partition of a topic — the attach surface of a shared ingest plane,
// where one prefetching consumer per (topic, partition) serves every
// registered query. Offsets resume from the group's committed position
// for that partition; use Seek to override before StartPrefetch.
func NewPartitionConsumer(b Cluster, group, topicName string, partition int) (*Consumer, error) {
	n, err := b.Partitions(topicName)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= n {
		return nil, ErrBadPartition
	}
	off, err := b.Committed(group, topicName, partition)
	if err != nil {
		return nil, err
	}
	return &Consumer{
		broker:    b,
		group:     group,
		topicName: topicName,
		parts:     []int{partition},
		offsets:   map[int]int64{partition: off},
		fetchMax:  4096,
	}, nil
}

// SetFetchMax bounds the record count of each fetch round (default
// 4096). A catch-up consumer chasing a live plane uses it to stop
// exactly at the handoff offset instead of overshooting into records
// the plane will deliver. Must be called before StartPrefetch and not
// concurrently with Poll.
func (c *Consumer) SetFetchMax(n int) {
	if n > 0 {
		c.fetchMax = n
	}
}

// Partitions returns the partitions this consumer owns.
func (c *Consumer) Partitions() []int {
	out := make([]int, len(c.parts))
	copy(out, c.parts)
	return out
}

// Offsets returns the consumer's current (uncommitted) position per owned
// partition.
func (c *Consumer) Offsets() map[int]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int64, len(c.offsets))
	for p, off := range c.offsets {
		out[p] = off
	}
	return out
}

// Seek moves the consumer's position for an owned partition; it is a
// no-op for partitions the consumer does not own. Used to resume from a
// checkpointed offset instead of the group's committed one. Seek must
// be called before StartPrefetch: a running prefetcher has batches in
// flight at the old position.
func (c *Consumer) Seek(partition int, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.offsets[partition]; !ok {
		return
	}
	if offset < 0 {
		offset = 0
	}
	c.offsets[partition] = offset
}

// fetchAll performs one fetch round across the consumer's partitions at
// the positions in pos, returning the records in event-time order — so
// the window buffer sees a near-sorted stream, as a time-synchronized
// aggregator would deliver. pos advances only when the whole round
// succeeds: a mid-round error discards the round's records, so
// advancing for the partitions fetched before the failure would lose
// them.
func (c *Consumer) fetchAll(pos map[int]int64) ([]Record, error) {
	var out []Record
	adv := make(map[int]int64, len(c.parts))
	for _, p := range c.parts {
		recs, err := c.broker.Fetch(c.topicName, p, pos[p], c.fetchMax)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			adv[p] = int64(len(recs))
			out = append(out, recs...)
		}
	}
	for p, n := range adv {
		pos[p] += n
	}
	// Detect the overwhelmingly common already-ordered round (a single
	// partition's append-ordered records) with one linear scan, so the
	// per-batch sort and its closure run only on an actual inversion.
	if !recordsTimeOrdered(out) {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	}
	return out, nil
}

// recordsTimeOrdered reports whether recs' times are non-decreasing.
func recordsTimeOrdered(recs []Record) bool {
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			return false
		}
	}
	return true
}

// fetchAllBatch is fetchAll's columnar form for a single-partition
// consumer: one fetch round decoded straight into a pooled EventBatch
// (natively when the broker implements BatchFetcher, through the record
// bridge otherwise). Returns nil on an empty round; the caller owns the
// returned batch's reference.
func (c *Consumer) fetchAllBatch(pos map[int]int64) (*stream.EventBatch, error) {
	p := c.parts[0]
	base := pos[p]
	b := stream.GetEventBatch()
	var n int
	if bf, ok := c.broker.(BatchFetcher); ok {
		var err error
		n, err = bf.FetchBatch(c.topicName, p, base, c.fetchMax, b)
		if err != nil {
			b.Release()
			return nil, err
		}
	} else {
		recs, err := c.broker.Fetch(c.topicName, p, base, c.fetchMax)
		if err != nil {
			b.Release()
			return nil, err
		}
		n = recordsToBatch(recs, base, b)
	}
	if n == 0 {
		b.Release()
		return nil, nil
	}
	pos[p] += int64(n)
	// Deliver in event-time order like fetchAll; a no-op scan on the
	// already-ordered common case.
	b.SortByTime()
	return b, nil
}

// Poll returns the next batch of records across the consumer's partitions
// and advances (but does not commit) its offsets. It returns nil when no
// new records are available. With a prefetcher running the batch was
// fetched (and sorted) ahead of time by the background goroutine.
func (c *Consumer) Poll() ([]Record, error) {
	if c.pre != nil {
		select {
		case b := <-c.pre.ch:
			if b.err != nil {
				return nil, b.err
			}
			c.mu.Lock()
			for p, off := range b.pos {
				c.offsets[p] = off
			}
			c.mu.Unlock()
			return b.recs, nil
		case <-c.pre.done:
			return nil, ErrClosed
		}
	}
	// Fetch outside the lock (it may be a network round trip) against a
	// snapshot, then re-apply — Offsets/Commit from another goroutine
	// never stall behind the fetch.
	c.mu.Lock()
	pos := make(map[int]int64, len(c.offsets))
	for p, off := range c.offsets {
		pos[p] = off
	}
	c.mu.Unlock()
	recs, err := c.fetchAll(pos)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for p, off := range pos {
		c.offsets[p] = off
	}
	c.mu.Unlock()
	return recs, nil
}

// PollBatch is Poll's columnar form: it returns the next fetch round as
// a pooled EventBatch (nil when no new records are available) and
// advances the consumer's offsets. The caller owns the batch's
// reference and must Release it (after Retaining for any further
// consumers it fans the batch out to). Only single-partition consumers
// support PollBatch — a batch's offsets are consecutive from its Base.
// With a batch prefetcher running (StartBatchPrefetch) the batch was
// fetched, decoded, and time-ordered ahead of time.
func (c *Consumer) PollBatch() (*stream.EventBatch, error) {
	if c.pre != nil {
		select {
		case pb := <-c.pre.ch:
			if pb.err != nil {
				return nil, pb.err
			}
			c.mu.Lock()
			for p, off := range pb.pos {
				c.offsets[p] = off
			}
			c.mu.Unlock()
			return pb.batch, nil
		case <-c.pre.done:
			return nil, ErrClosed
		}
	}
	if len(c.parts) != 1 {
		return nil, ErrBadPartition
	}
	c.mu.Lock()
	pos := make(map[int]int64, len(c.offsets))
	for p, off := range c.offsets {
		pos[p] = off
	}
	c.mu.Unlock()
	b, err := c.fetchAllBatch(pos)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for p, off := range pos {
		c.offsets[p] = off
	}
	c.mu.Unlock()
	return b, nil
}

// StartPrefetch launches the background prefetcher. It is a no-op if
// one is already running. Stop it with Close.
func (c *Consumer) StartPrefetch() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pre != nil {
		return
	}
	pos := make(map[int]int64, len(c.offsets))
	for p, off := range c.offsets {
		pos[p] = off
	}
	c.pre = &prefetcher{
		ch:   make(chan prefetchBatch, 1),
		done: make(chan struct{}),
	}
	go c.prefetchLoop(c.pre, pos)
}

// StartBatchPrefetch launches the background prefetcher in columnar
// mode: rounds are fetched and decoded into pooled EventBatches for
// PollBatch. Valid only for single-partition consumers; a no-op if a
// prefetcher is already running.
func (c *Consumer) StartBatchPrefetch() {
	if len(c.parts) != 1 {
		c.StartPrefetch()
		return
	}
	c.mu.Lock()
	if c.pre == nil {
		c.batchMode = true
	}
	c.mu.Unlock()
	c.StartPrefetch()
}

// prefetchLoop owns pos, the fetch frontier, which runs ahead of
// c.offsets by the batches still queued. An empty or failed round is
// still delivered (the caller's poll cadence paces retries — the loop
// blocks handing over each batch, so it never spins the broker). On
// error fetchAll leaves pos untouched, so the frontier stays exactly
// "delivered plus queued" and the retry refetches only the failed
// round — never a batch already in the channel.
func (c *Consumer) prefetchLoop(pre *prefetcher, pos map[int]int64) {
	for {
		select {
		case <-pre.done:
			return
		default:
		}
		var pb prefetchBatch
		if c.batchMode {
			pb.batch, pb.err = c.fetchAllBatch(pos)
		} else {
			pb.recs, pb.err = c.fetchAll(pos)
		}
		snap := make(map[int]int64, len(pos))
		for p, off := range pos {
			snap[p] = off
		}
		pb.pos = snap
		select {
		case pre.ch <- pb:
		case <-pre.done:
			if pb.batch != nil {
				pb.batch.Release()
			}
			return
		}
	}
}

// Close stops the prefetcher, if any. The consumer must not be polled
// afterwards.
func (c *Consumer) Close() error {
	c.mu.Lock()
	pre := c.pre
	c.mu.Unlock()
	if pre != nil {
		pre.closeOnce.Do(func() { close(pre.done) })
	}
	return nil
}

// Commit persists the consumer's current offsets to the group. With a
// prefetcher running this covers exactly the batches delivered by Poll,
// never records still sitting in the prefetch buffer.
func (c *Consumer) Commit() error {
	for _, p := range c.parts {
		c.mu.Lock()
		off := c.offsets[p]
		c.mu.Unlock()
		if err := c.broker.Commit(c.group, c.topicName, p, off); err != nil {
			return err
		}
	}
	return nil
}

// Lag returns the total number of records between the consumer's position
// and the high watermark across its partitions.
func (c *Consumer) Lag() (int64, error) {
	var lag int64
	for _, p := range c.parts {
		hw, err := c.broker.HighWatermark(c.topicName, p)
		if err != nil {
			return 0, err
		}
		c.mu.Lock()
		off := c.offsets[p]
		c.mu.Unlock()
		lag += hw - off
	}
	return lag, nil
}

// ToEvent converts a record to the engine's event type: the record key is
// the stratum (sub-stream id).
func ToEvent(r Record) stream.Event {
	return stream.Event{Stratum: r.Key, Value: r.Value, Time: r.Time}
}

// FromEvent converts an engine event to a broker record.
func FromEvent(e stream.Event) Record {
	return Record{Key: e.Stratum, Value: e.Value, Time: e.Time}
}

// ProduceEvents is a convenience producer: it converts events to records
// and appends them to the topic.
func ProduceEvents(b *Broker, topicName string, events []stream.Event) (int, error) {
	recs := make([]Record, len(events))
	for i, e := range events {
		recs[i] = FromEvent(e)
	}
	return b.Produce(topicName, recs)
}

// EventSource adapts a Consumer to the stream.Source interface: Next
// returns records one at a time, polling the broker when its buffer runs
// dry and giving up after `idle` empty polls (treating the stream as
// exhausted — appropriate for replayed finite datasets).
type EventSource struct {
	consumer *Consumer
	buf      []Record
	pos      int
	idle     int
	maxIdle  int
	backoff  time.Duration
}

// NewEventSource wraps a consumer. maxIdle is the number of consecutive
// empty polls after which the source reports end-of-stream; backoff is
// the pause between empty polls (0 for busy polling in tests).
func NewEventSource(c *Consumer, maxIdle int, backoff time.Duration) *EventSource {
	if maxIdle < 1 {
		maxIdle = 1
	}
	return &EventSource{consumer: c, maxIdle: maxIdle, backoff: backoff}
}

var _ stream.Source = (*EventSource)(nil)

// Next implements stream.Source.
func (s *EventSource) Next() (stream.Event, bool) {
	for s.pos >= len(s.buf) {
		recs, err := s.consumer.Poll()
		if err != nil {
			return stream.Event{}, false
		}
		if len(recs) == 0 {
			s.idle++
			if s.idle >= s.maxIdle {
				return stream.Event{}, false
			}
			if s.backoff > 0 {
				time.Sleep(s.backoff)
			}
			continue
		}
		s.idle = 0
		s.buf = recs
		s.pos = 0
	}
	e := ToEvent(s.buf[s.pos])
	s.pos++
	return e, true
}
