package broker

import (
	"sort"
	"time"

	"streamapprox/internal/stream"
)

// Cluster is the read/commit surface a consumer needs from a broker. It
// is satisfied both by the in-process *Broker and by the TCP *Client, so
// the same consumer-group machinery works against a local aggregator and
// a remote brokerd.
type Cluster interface {
	Partitions(topic string) (int, error)
	Fetch(topic string, partition int, offset int64, max int) ([]Record, error)
	HighWatermark(topic string, partition int) (int64, error)
	Commit(group, topic string, partition int, offset int64) error
	Committed(group, topic string, partition int) (int64, error)
}

var (
	_ Cluster = (*Broker)(nil)
	_ Cluster = (*Client)(nil)
)

// Consumer reads one topic from a broker as part of a consumer group,
// owning a fixed subset of partitions (static assignment: member i of m
// owns partitions p with p % m == i, Kafka's range-free analogue that
// needs no coordinator for a fixed membership).
type Consumer struct {
	broker    Cluster
	group     string
	topicName string
	parts     []int
	offsets   map[int]int64
	fetchMax  int
}

// NewConsumer returns a consumer for member `member` of `members` total in
// the group. Offsets resume from the group's committed positions.
func NewConsumer(b Cluster, group, topicName string, member, members int) (*Consumer, error) {
	n, err := b.Partitions(topicName)
	if err != nil {
		return nil, err
	}
	if members < 1 {
		members = 1
	}
	c := &Consumer{
		broker:    b,
		group:     group,
		topicName: topicName,
		offsets:   make(map[int]int64),
		fetchMax:  4096,
	}
	for p := 0; p < n; p++ {
		if p%members == member%members {
			c.parts = append(c.parts, p)
			off, err := b.Committed(group, topicName, p)
			if err != nil {
				return nil, err
			}
			c.offsets[p] = off
		}
	}
	return c, nil
}

// Partitions returns the partitions this consumer owns.
func (c *Consumer) Partitions() []int {
	out := make([]int, len(c.parts))
	copy(out, c.parts)
	return out
}

// Offsets returns the consumer's current (uncommitted) position per owned
// partition.
func (c *Consumer) Offsets() map[int]int64 {
	out := make(map[int]int64, len(c.offsets))
	for p, off := range c.offsets {
		out[p] = off
	}
	return out
}

// Seek moves the consumer's position for an owned partition; it is a
// no-op for partitions the consumer does not own. Used to resume from a
// checkpointed offset instead of the group's committed one.
func (c *Consumer) Seek(partition int, offset int64) {
	if _, ok := c.offsets[partition]; !ok {
		return
	}
	if offset < 0 {
		offset = 0
	}
	c.offsets[partition] = offset
}

// Poll fetches the next batch of records across the consumer's partitions
// and advances (but does not commit) its offsets. It returns nil when no
// new records are available.
func (c *Consumer) Poll() ([]Record, error) {
	var out []Record
	for _, p := range c.parts {
		recs, err := c.broker.Fetch(c.topicName, p, c.offsets[p], c.fetchMax)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			c.offsets[p] += int64(len(recs))
			out = append(out, recs...)
		}
	}
	// Present records in event-time order so the window buffer sees a
	// near-sorted stream, as a time-synchronized aggregator would deliver.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

// Commit persists the consumer's current offsets to the group.
func (c *Consumer) Commit() error {
	for _, p := range c.parts {
		if err := c.broker.Commit(c.group, c.topicName, p, c.offsets[p]); err != nil {
			return err
		}
	}
	return nil
}

// Lag returns the total number of records between the consumer's position
// and the high watermark across its partitions.
func (c *Consumer) Lag() (int64, error) {
	var lag int64
	for _, p := range c.parts {
		hw, err := c.broker.HighWatermark(c.topicName, p)
		if err != nil {
			return 0, err
		}
		lag += hw - c.offsets[p]
	}
	return lag, nil
}

// ToEvent converts a record to the engine's event type: the record key is
// the stratum (sub-stream id).
func ToEvent(r Record) stream.Event {
	return stream.Event{Stratum: r.Key, Value: r.Value, Time: r.Time}
}

// FromEvent converts an engine event to a broker record.
func FromEvent(e stream.Event) Record {
	return Record{Key: e.Stratum, Value: e.Value, Time: e.Time}
}

// ProduceEvents is a convenience producer: it converts events to records
// and appends them to the topic.
func ProduceEvents(b *Broker, topicName string, events []stream.Event) (int, error) {
	recs := make([]Record, len(events))
	for i, e := range events {
		recs[i] = FromEvent(e)
	}
	return b.Produce(topicName, recs)
}

// EventSource adapts a Consumer to the stream.Source interface: Next
// returns records one at a time, polling the broker when its buffer runs
// dry and giving up after `idle` empty polls (treating the stream as
// exhausted — appropriate for replayed finite datasets).
type EventSource struct {
	consumer *Consumer
	buf      []Record
	pos      int
	idle     int
	maxIdle  int
	backoff  time.Duration
}

// NewEventSource wraps a consumer. maxIdle is the number of consecutive
// empty polls after which the source reports end-of-stream; backoff is
// the pause between empty polls (0 for busy polling in tests).
func NewEventSource(c *Consumer, maxIdle int, backoff time.Duration) *EventSource {
	if maxIdle < 1 {
		maxIdle = 1
	}
	return &EventSource{consumer: c, maxIdle: maxIdle, backoff: backoff}
}

var _ stream.Source = (*EventSource)(nil)

// Next implements stream.Source.
func (s *EventSource) Next() (stream.Event, bool) {
	for s.pos >= len(s.buf) {
		recs, err := s.consumer.Poll()
		if err != nil {
			return stream.Event{}, false
		}
		if len(recs) == 0 {
			s.idle++
			if s.idle >= s.maxIdle {
				return stream.Event{}, false
			}
			if s.backoff > 0 {
				time.Sleep(s.backoff)
			}
			continue
		}
		s.idle = 0
		s.buf = recs
		s.pos = 0
	}
	e := ToEvent(s.buf[s.pos])
	s.pos++
	return e, true
}
