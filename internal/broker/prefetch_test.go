package broker

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestConsumerPrefetchDeliversAll checks the double-buffered prefetcher
// delivers every record exactly once and that commits after Poll cover
// only delivered batches.
func TestConsumerPrefetchDeliversAll(t *testing.T) {
	b := New()
	if err := b.CreateTopic("in", 3); err != nil {
		t.Fatal(err)
	}
	const total = 10000
	if _, err := b.Produce("in", recs("k", total)); err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(b, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons.StartPrefetch()
	defer cons.Close()

	seen := make(map[int]map[int64]bool)
	got := 0
	for got < total {
		recs, err := cons.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			// Prefetcher raced ahead of the first produce round; with a
			// static dataset an empty poll means records were dropped.
			t.Fatalf("empty poll after %d of %d records", got, total)
		}
		for _, r := range recs {
			if seen[r.Partition] == nil {
				seen[r.Partition] = make(map[int64]bool)
			}
			if seen[r.Partition][r.Offset] {
				t.Fatalf("record (p=%d, off=%d) delivered twice", r.Partition, r.Offset)
			}
			seen[r.Partition][r.Offset] = true
		}
		got += len(recs)
		// Offsets and commits must track delivery, not the fetch frontier.
		if err := cons.Commit(); err != nil {
			t.Fatal(err)
		}
		var delivered int64
		for _, off := range cons.Offsets() {
			delivered += off
		}
		if delivered != int64(got) {
			t.Fatalf("offsets cover %d records, delivered %d", delivered, got)
		}
	}
	if got != total {
		t.Fatalf("delivered %d of %d", got, total)
	}
	for p := 0; p < 3; p++ {
		committed, err := b.Committed("g", "in", p)
		if err != nil {
			t.Fatal(err)
		}
		hwm, _ := b.HighWatermark("in", p)
		if committed != hwm {
			t.Errorf("partition %d committed %d of %d", p, committed, hwm)
		}
	}
}

// flakyCluster fails every third Fetch with a transient error.
type flakyCluster struct {
	Cluster
	mu sync.Mutex
	n  int
}

var errFlaky = errors.New("transient fetch failure")

func (f *flakyCluster) Fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	f.mu.Lock()
	f.n++
	fail := f.n%3 == 0
	f.mu.Unlock()
	if fail {
		return nil, errFlaky
	}
	return f.Cluster.Fetch(topic, partition, offset, max)
}

// TestConsumerPrefetchTransientErrors checks exactly-once delivery
// through the prefetcher when fetches fail intermittently: a failed
// round must be refetched on retry (no loss) without re-delivering a
// batch that was already queued when the error hit (no duplicates).
func TestConsumerPrefetchTransientErrors(t *testing.T) {
	b := New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	const total = 20000
	if _, err := b.Produce("in", recs("k", total)); err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(&flakyCluster{Cluster: b}, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons.StartPrefetch()
	defer cons.Close()

	seen := make(map[int64]bool, total)
	got := 0
	polls := 0
	for got < total {
		polls++
		if polls > 10*total/1024 {
			t.Fatalf("no progress: %d of %d after %d polls", got, total, polls)
		}
		recs, err := cons.Poll()
		if err != nil {
			continue // transient; the next poll retries the round
		}
		for _, r := range recs {
			id := int64(r.Partition)<<32 | r.Offset
			if seen[id] {
				t.Fatalf("record (p=%d, off=%d) delivered twice after a transient error",
					r.Partition, r.Offset)
			}
			seen[id] = true
		}
		got += len(recs)
	}
	if got != total {
		t.Fatalf("delivered %d of %d", got, total)
	}
}

// TestConsumerPrefetchOverTCP runs the prefetcher against a remote
// broker through the pipelined client, the deployment shape saproxd
// shards use.
func TestConsumerPrefetchOverTCP(t *testing.T) {
	srv, cli := startServer(t)
	if err := cli.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Produce("in", recs("k", 5000)); err != nil {
		t.Fatal(err)
	}
	cli2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	cons, err := NewConsumer(cli2, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons.StartPrefetch()
	defer cons.Close()
	got := 0
	for got < 5000 {
		recs, err := cons.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatalf("empty poll after %d records", got)
		}
		got += len(recs)
	}
	if got != 5000 {
		t.Fatalf("delivered %d of 5000", got)
	}
}

// TestConsumerCloseUnblocksPoll checks Poll returns ErrClosed once the
// prefetcher is stopped and its buffer drained.
func TestConsumerCloseUnblocksPoll(t *testing.T) {
	b := New()
	if err := b.CreateTopic("in", 1); err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(b, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons.StartPrefetch()
	_ = cons.Close()
	deadline := time.After(5 * time.Second)
	done := make(chan error, 1)
	go func() {
		for {
			recs, err := cons.Poll()
			if err != nil {
				done <- err
				return
			}
			if len(recs) == 0 && err == nil {
				continue // buffered empty batch from before Close
			}
		}
	}()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Poll after Close = %v, want ErrClosed", err)
		}
	case <-deadline:
		t.Fatal("Poll did not unblock after Close")
	}
}
