package broker

// Cluster metadata: broker membership, epochs, and partition placement.
//
// A broker cluster has STATIC membership (every node is started with the
// full id→addr map) and a thin, broker-hosted control plane: each node
// keeps its own view of which peers are alive, detected by heartbeats
// and failed replication calls, and views converge by gossip (pings
// carry the sender's epoch and dead set; receivers merge by union/max).
//
// Partition placement is rendezvous hashing over the FULL member list,
// so the replica set of a partition never moves when nodes die — only
// LEADERSHIP moves, to the first live replica in rendezvous order.
// Every node computes the same placement from the same inputs, so there
// is no assignment state to replicate; the epoch (bumped on every
// membership change) lets clients prefer the freshest view.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// NodeInfo describes one cluster member in a metadata response.
type NodeInfo struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
}

// PartitionInfo is one partition's placement: the static replica set in
// rendezvous order and the current leader (first live replica).
type PartitionInfo struct {
	Leader   string   `json:"leader"`
	Replicas []string `json:"replicas"`
}

// TopicInfo is the placement of every partition of one topic.
type TopicInfo struct {
	Partitions []PartitionInfo `json:"partitions"`
}

// ClusterMeta is the control-plane snapshot served by the "meta" op:
// membership, liveness, and partition→leader/replica assignment as seen
// by the answering node. Clients cache it and refresh on NotLeader
// redirects, preferring responses with higher epochs.
type ClusterMeta struct {
	Epoch  int64                `json:"epoch"`
	Nodes  []NodeInfo           `json:"nodes"`
	Topics map[string]TopicInfo `json:"topics"`
}

// soloNodeID is the synthetic member id a non-clustered broker server
// reports from the "meta" op, so ClusterClient works unchanged against
// a single plain brokerd.
const soloNodeID = "_solo"

// replicasFor returns the replica set of (topic, partition): the
// highest-random-weight `replicas` members of the full (sorted) member
// list. Rank order is the promotion order — the first LIVE entry leads.
func replicasFor(topic string, partition int, members []string, replicas int) []string {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(members) {
		replicas = len(members)
	}
	type scored struct {
		id    string
		score uint64
	}
	sc := make([]scored, 0, len(members))
	for _, id := range members {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s#%d#%s", topic, partition, id)
		sc = append(sc, scored{id: id, score: h.Sum64()})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].id < sc[j].id
	})
	out := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		out[i] = sc[i].id
	}
	return out
}

// LeaderOf returns the current leader of a partition per this metadata
// view ("" when the topic or partition is unknown or no replica lives).
func (m *ClusterMeta) LeaderOf(topic string, partition int) string {
	t, ok := m.Topics[topic]
	if !ok || partition < 0 || partition >= len(t.Partitions) {
		return ""
	}
	return t.Partitions[partition].Leader
}

// ReplicasOf returns a partition's replica set in rendezvous (promotion)
// order, nil when the topic or partition is unknown.
func (m *ClusterMeta) ReplicasOf(topic string, partition int) []string {
	t, ok := m.Topics[topic]
	if !ok || partition < 0 || partition >= len(t.Partitions) {
		return nil
	}
	return t.Partitions[partition].Replicas
}

// AddrOf returns a member's address ("" if unknown).
func (m *ClusterMeta) AddrOf(nodeID string) string {
	for _, n := range m.Nodes {
		if n.ID == nodeID {
			return n.Addr
		}
	}
	return ""
}

// Cluster errors. NotLeader travels as a structured error string so the
// routing client can extract the redirect hint after a TCP round trip.
var (
	// ErrNotLeader is returned when an op that requires partition
	// leadership reaches a non-leader replica.
	ErrNotLeader = errors.New("broker: not the partition leader")
	// ErrNoReplica is returned when no live replica remains.
	ErrNoReplica = errors.New("broker: no live replica for partition")
	// ErrUnderReplicated is returned when a produce cannot reach the
	// required in-sync replica count.
	ErrUnderReplicated = errors.New("broker: insufficient in-sync replicas")
)

// notLeaderPrefix opens the wire form of a NotLeader rejection; the
// token after it is the rejecting node's current leader hint (possibly
// empty).
const notLeaderPrefix = "NOT_LEADER"

// notLeaderError formats the wire form carrying a leader hint.
func notLeaderError(leaderID string) error {
	return fmt.Errorf("%s %s", notLeaderPrefix, leaderID)
}

// IsNotLeader reports whether err is a NotLeader rejection (local or
// decoded from the wire).
func IsNotLeader(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrNotLeader) || strings.Contains(err.Error(), notLeaderPrefix)
}

// leaderHint extracts the redirect hint from a wire NotLeader error
// ("" when absent).
func leaderHint(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	i := strings.Index(msg, notLeaderPrefix)
	if i < 0 {
		return ""
	}
	rest := strings.TrimSpace(msg[i+len(notLeaderPrefix):])
	if j := strings.IndexAny(rest, " \t\n"); j >= 0 {
		rest = rest[:j]
	}
	return rest
}
