package broker

import (
	"testing"

	"streamapprox/internal/broker/storage"
)

// chunkFor encodes a count-prefixed frame chunk the way the producing
// client does.
func chunkFor(recs []Record) []byte {
	return appendRecFrameChunk(nil, recs)
}

// TestDecodeFrameChunkRejectsCorruption drives the zero-copy path's
// single validation gate with every corruption a forwarded chunk can
// suffer in transit: bit flips anywhere in the frames, truncation, and
// a count prefix that disagrees with the bytes. Each must fail HERE,
// before any append or forward sees the chunk.
func TestDecodeFrameChunkRejectsCorruption(t *testing.T) {
	recs := recs("crc", 5)
	chunk := chunkFor(recs)

	cur := &wireCursor{b: chunk}
	n, frames := decodeFrameChunk(cur)
	if cur.err != nil || n != len(recs) {
		t.Fatalf("valid chunk: n=%d err=%v", n, cur.err)
	}
	if cn, err := storage.ValidateFrames(frames); err != nil || cn != n {
		t.Fatalf("decoded frames invalid: %d, %v", cn, err)
	}

	// Flip one bit at every position past the count prefix.
	for i := 4; i < len(chunk); i++ {
		mut := append([]byte(nil), chunk...)
		mut[i] ^= 0x10
		cur := &wireCursor{b: mut}
		if _, _ = decodeFrameChunk(cur); cur.err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", i)
		}
	}
	// Truncate at every length that still covers the count prefix.
	for cut := 4; cut < len(chunk); cut++ {
		cur := &wireCursor{b: chunk[:cut]}
		if _, _ = decodeFrameChunk(cur); cur.err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	// A lying count prefix: declared > actual and declared < actual.
	for _, declared := range []uint32{4, 6, 0} {
		mut := append([]byte(nil), chunk...)
		mut[0], mut[1], mut[2], mut[3] = byte(declared>>24), byte(declared>>16), byte(declared>>8), byte(declared)
		cur := &wireCursor{b: mut}
		if _, _ = decodeFrameChunk(cur); cur.err == nil {
			t.Fatalf("count lie %d decoded cleanly", declared)
		}
	}
}

// TestCorruptProduceRejectedBeforeAppend sends a produce request whose
// frame chunk carries a broken CRC through a real server connection.
// The server treats an invalid chunk as protocol-level garbage: the
// connection is dropped at the decode gate and NOTHING is appended —
// the log never sees a byte of the corrupted batch.
func TestCorruptProduceRejectedBeforeAppend(t *testing.T) {
	srv, cli := startServer(t)
	if err := cli.CreateTopic("in", 1); err != nil {
		t.Fatal(err)
	}
	if !cli.frames {
		t.Fatal("client did not negotiate the frame ops")
	}
	batch := recs("crc", 10)
	_, err := cli.callBinary(func(fb *frameBuf, corr uint64) {
		encodeProduceFramesReq(fb, corr, 0, "in", batch)
		// Corrupt one payload byte of the last frame, after the CRCs
		// were computed — exactly what line noise on a forward does.
		fb.b[len(fb.b)-1] ^= 0x01
	})
	if err == nil {
		t.Fatal("corrupt produce was accepted")
	}
	if hwm, herr := srv.broker.HighWatermark("in", 0); herr != nil || hwm != 0 {
		t.Fatalf("watermark after corrupt produce = %d, %v; want 0", hwm, herr)
	}
	// A fresh connection works and the topic is intact.
	cli2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer cli2.Close()
	if n, err := cli2.Produce("in", batch); err != nil || n != len(batch) {
		t.Fatalf("clean produce after rejection = %d, %v", n, err)
	}
	if hwm, err := srv.broker.HighWatermark("in", 0); err != nil || hwm != int64(len(batch)) {
		t.Fatalf("watermark after clean produce = %d, %v", hwm, err)
	}
}
