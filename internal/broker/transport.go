package broker

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamapprox/internal/metrics"
	"streamapprox/internal/obs"
)

// The wire protocol frames every message as a 4-byte big-endian length
// followed by a payload. The payload's first byte selects the codec:
// '{' opens a legacy JSON document (lockstep request/response), while
// binVersion opens a compact binary message with a correlation ID (see
// codec.go) so many requests can be pipelined on one connection. A
// client discovers binary support with the "hello" control op; servers
// that predate the codec answer it with an unknown-op error and the
// client stays on JSON. Max frame size guards against corrupt length
// prefixes.
const maxFrame = 64 << 20

// request operations (JSON dialect; binary uses the op codes in codec.go).
const (
	opCreate    = "create"
	opProduce   = "produce"
	opFetch     = "fetch"
	opHWM       = "hwm"
	opCommit    = "commit"
	opCommitted = "committed"
	opParts     = "parts"
	opHello     = "hello" // codec negotiation: response N carries the binary version
	// Cluster control ops. "meta" is answered by plain servers too (a
	// synthetic single-member view), so the routing client works
	// unchanged against a solo brokerd.
	opMeta        = "meta"
	opPing        = "ping"
	opProducePart = "producep"  // JSON fallback of binOpProducePart
	opCommitRep   = "commitrep" // leader→follower replicated group commit
	// Replica catch-up ops: committed reads between cluster members,
	// not gated on leadership (rejoin pulls, takeover handshake).
	opRFetch = "rfetch"
	opRHWM   = "rhwm"
)

type wireRequest struct {
	Op         string   `json:"op"`
	Topic      string   `json:"topic,omitempty"`
	Partitions int      `json:"partitions,omitempty"`
	Partition  int      `json:"partition,omitempty"`
	Offset     int64    `json:"offset,omitempty"`
	Max        int      `json:"max,omitempty"`
	Group      string   `json:"group,omitempty"`
	Records    []Record `json:"records,omitempty"`

	// Cluster fields: ping carries the sender's versioned status view;
	// producep the idempotent-producer identity.
	Node  string                `json:"node,omitempty"`
	Epoch int64                 `json:"epoch,omitempty"`
	View  map[string]PeerStatus `json:"view,omitempty"`
	PID   uint64                `json:"pid,omitempty"`
	Seq   uint64                `json:"seq,omitempty"`
}

type wireResponse struct {
	Err     string   `json:"err,omitempty"`
	N       int      `json:"n,omitempty"`
	Offset  int64    `json:"offset,omitempty"`
	Records []Record `json:"records,omitempty"`

	// Cluster fields.
	Meta  *ClusterMeta          `json:"meta,omitempty"`
	Epoch int64                 `json:"epoch,omitempty"`
	View  map[string]PeerStatus `json:"view,omitempty"`
}

func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("marshal frame: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// ServerOptions tunes a broker server.
type ServerOptions struct {
	// JSONOnly disables the binary codec, emulating a pre-codec peer:
	// hello is answered with an unknown-op error and every frame is
	// parsed as JSON. Used for mixed-version testing and as an escape
	// hatch against codec bugs.
	JSONOnly bool
	// HelloLevel caps the feature level the hello op advertises (0 =
	// newest, currently helloBatch). Mixed-version tests pin a server at
	// an older level so negotiation fallbacks stay exercised against a
	// peer that genuinely refuses the newer ops.
	HelloLevel int
	// Node, when set, makes this server a cluster member: produce and
	// fetch are gated by partition leadership and replicated, and the
	// meta/ping/replicate ops are served. Can also be attached after
	// Serve with AttachNode (needed when peer addresses are only known
	// once every listener is bound).
	Node *ClusterNode
	// Metrics, when set, receives per-op request counters and latency
	// histograms at the wire-dispatch layer (broker_requests_total,
	// broker_request_seconds). Instruments are resolved once at startup
	// so the hot path never takes the registry lock.
	Metrics *metrics.Registry
	// Log, when set, emits a structured debug line per traced request —
	// the broker-side leg of following one saproxd pipeline by trace ID.
	Log *obs.Logger
	// IdleTimeout closes a connection that has not delivered a complete
	// request for this long. Zero disables it — long-lived consumer and
	// peer connections idle legitimately between polls and pushes.
	IdleTimeout time.Duration
	// WriteTimeout bounds the writes of each response burst (default
	// DefaultWriteTimeout; negative disables). A blackholed client that
	// stops draining cannot pin a handler goroutine (and its buffers)
	// forever once its TCP window fills.
	WriteTimeout time.Duration
}

// DefaultWriteTimeout is the response-write bound when ServerOptions
// leaves WriteTimeout zero.
const DefaultWriteTimeout = 30 * time.Second

func (o ServerOptions) writeTimeout() time.Duration {
	switch {
	case o.WriteTimeout < 0:
		return 0
	case o.WriteTimeout == 0:
		return DefaultWriteTimeout
	}
	return o.WriteTimeout
}

// Server exposes a Broker over TCP.
type Server struct {
	broker *Broker
	ln     net.Listener
	opts   ServerOptions
	node   atomic.Pointer[ClusterNode]
	instr  *serverInstruments
	log    *obs.Logger

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// opReplicate names binOpReplicate in metric labels; it has no JSON
// dialect equivalent.
const opReplicate = "replicate"

// errNotClusterMember rejects cluster-only ops on a solo server.
var errNotClusterMember = errors.New("broker: not a cluster member")

// serverInstruments is the wire-dispatch instrumentation: one request
// counter and one latency histogram per op, resolved from the registry
// once at startup. A nil *serverInstruments is valid and free, so the
// handlers need no guards.
type serverInstruments struct {
	reqs map[string]*metrics.Counter
	lat  map[string]*metrics.Histogram
}

func newServerInstruments(reg *metrics.Registry) *serverInstruments {
	si := &serverInstruments{
		reqs: make(map[string]*metrics.Counter),
		lat:  make(map[string]*metrics.Histogram),
	}
	for _, op := range []string{
		opCreate, opProduce, opFetch, opHWM, opCommit, opCommitted,
		opParts, opHello, opMeta, opPing, opProducePart, opCommitRep,
		opRFetch, opRHWM, opReplicate, "other",
	} {
		si.reqs[op] = reg.Counter("broker_requests_total",
			"requests served, by wire op", metrics.Labels{"op": op})
		si.lat[op] = reg.Histogram("broker_request_seconds",
			"request service latency in seconds, by wire op", metrics.Labels{"op": op})
	}
	return si
}

// observe records one served request. Unknown ops (a newer client
// against this server) land under "other" rather than allocating
// unbounded series.
func (si *serverInstruments) observe(op string, start time.Time) {
	if si == nil {
		return
	}
	c, ok := si.reqs[op]
	if !ok {
		op = "other"
		c = si.reqs[op]
	}
	c.Inc()
	si.lat[op].Observe(time.Since(start).Seconds())
}

// binOpName maps a binary op code to its metric/log label. The
// raw-frame ops share their record-op labels on purpose: they are the
// same logical operation in a faster encoding, and keeping the label
// set stable keeps dashboards and rate() queries comparable across the
// codec migration.
func binOpName(op byte) string {
	switch op {
	case binOpProduce, binOpProduceF:
		return opProduce
	case binOpFetch, binOpFetchF:
		return opFetch
	case binOpHWM:
		return opHWM
	case binOpProducePart, binOpProducePartF:
		return opProducePart
	case binOpReplicate, binOpReplicateF, binOpReplicateMF:
		return opReplicate
	case binOpRFetchF:
		return opRFetch
	case binOpRHWMB:
		return opRHWM
	case binOpJSON:
		return "json"
	}
	return "other"
}

// AttachNode attaches (or replaces) the server's cluster node. Ops
// observe it on their next dispatch.
func (s *Server) AttachNode(n *ClusterNode) { s.node.Store(n) }

// clusterNode returns the attached node, nil when the server runs solo.
func (s *Server) clusterNode() *ClusterNode { return s.node.Load() }

// Serve starts serving the broker on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound. Stop the server with Close.
func Serve(b *Broker, addr string) (*Server, error) {
	return ServeWithOptions(b, addr, ServerOptions{})
}

// ServeWithOptions is Serve with explicit options.
func ServeWithOptions(b *Broker, addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker listen: %w", err)
	}
	s := &Server{
		broker: b,
		ln:     ln,
		opts:   opts,
		log:    opts.Log,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	if opts.Metrics != nil {
		s.instr = newServerInstruments(opts.Metrics)
	}
	if opts.Node != nil {
		s.node.Store(opts.Node)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections, closes live ones, and waits for the
// handler goroutines to exit. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept error (EMFILE, ECONNABORTED, ...): back
			// off exponentially instead of spinning a core on a sick
			// listener, and reset once accepts succeed again.
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff < time.Second {
				backoff *= 2
			}
			t := time.NewTimer(backoff)
			select {
			case <-s.done:
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		backoff = 0
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	fb := getFrame()
	defer putFrame(fb)
	wt := s.opts.writeTimeout()
	for {
		if s.opts.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if err := readFrameInto(br, fb); err != nil {
			return // EOF, idle timeout or broken connection
		}
		// One write deadline covers everything the request's handling
		// writes (including bufio spills mid-handling): a client that
		// stops draining shows up as a write error, not a wedged
		// handler.
		if wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		var err error
		if !s.opts.JSONOnly && len(fb.b) > 0 && (fb.b[0] == binVersion || fb.b[0] == binVersion2) {
			err = s.handleBinary(fb.b, bw)
		} else {
			err = s.handleJSON(fb.b, bw)
		}
		if err != nil {
			return
		}
		// Don't let one oversized frame pin its buffer for the
		// connection's lifetime; drop it and let the next read
		// right-size.
		if cap(fb.b) > maxPooledFrame {
			fb.b = nil
		}
		// Flush only when no further request is already buffered: a
		// pipelining client gets its burst of responses in one write.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handleJSON serves one legacy JSON frame.
func (s *Server) handleJSON(payload []byte, bw *bufio.Writer) error {
	var req wireRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	resp := s.dispatch(&req)
	return writeFrame(bw, resp)
}

// handleBinary serves one binary frame, echoing its correlation ID.
// Broker-level failures become error responses; protocol-level garbage
// closes the connection.
func (s *Server) handleBinary(payload []byte, bw *bufio.Writer) error {
	req, err := decodeBinRequest(payload)
	if err != nil {
		return err
	}
	start := time.Now()
	out := getFrame()
	defer putFrame(out)
	node := s.clusterNode()
	switch req.op {
	case binOpProduce:
		var n int
		var err error
		if node != nil {
			n, err = node.produceRouted(req.trace, req.topic, req.recs)
		} else {
			n, err = s.broker.Produce(req.topic, req.recs)
		}
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeProduceResp(out, req.corr, n)
		}
	case binOpProducePart:
		n, err := s.producePart(node, &req)
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeProducePartResp(out, req.corr, n)
		}
	case binOpReplicate:
		if node == nil {
			encodeErrResp(out, req.op, req.corr, "broker: not a cluster member")
			break
		}
		hwm, err := node.applyReplicate(req.epoch, req.sender, req.topic, req.partition, req.base, req.committed, req.metas, req.recs)
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeReplicateResp(out, req.corr, hwm)
		}
	case binOpFetch:
		var recs []Record
		var err error
		if node != nil {
			recs, err = node.fetch(req.topic, req.partition, req.offset, req.max)
		} else {
			recs, err = s.broker.Fetch(req.topic, req.partition, req.offset, req.max)
		}
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeFetchResp(out, req.corr, req.offset, recs)
		}
	case binOpHWM:
		var hwm int64
		var err error
		if node != nil {
			hwm, err = node.hwm(req.topic, req.partition)
		} else {
			hwm, err = s.broker.HighWatermark(req.topic, req.partition)
		}
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeHWMResp(out, req.corr, hwm)
		}
	case binOpProduceF:
		var n int
		var err error
		if node != nil {
			n, err = node.produceRoutedFrames(req.trace, req.topic, req.frames, req.count)
		} else {
			n, err = s.broker.ProduceFrames(req.topic, req.frames, req.count)
		}
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeCountResp(out, req.op, req.corr, n)
		}
	case binOpProducePartF:
		var n int
		var err error
		if node != nil {
			n, err = node.producePartFrames(req.trace, req.topic, req.partition, req.pid, req.seq, req.frames, req.count)
		} else if _, err = s.broker.producePartitionFrames(req.topic, req.partition, req.frames, req.count); err == nil {
			n = req.count
		}
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeCountResp(out, req.op, req.corr, n)
		}
	case binOpReplicateF:
		if node == nil {
			encodeErrResp(out, req.op, req.corr, "broker: not a cluster member")
			break
		}
		hwm, err := node.applyReplicateFrames(req.epoch, req.sender, req.topic, req.partition, req.base, req.committed, req.metas, req.frames, req.count)
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeWatermarkResp(out, req.op, req.corr, hwm)
		}
	case binOpReplicateMF:
		if node == nil {
			encodeErrResp(out, req.op, req.corr, "broker: not a cluster member")
			break
		}
		hwms, err := node.applyReplicateBatch(req.epoch, req.sender, req.sections)
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeReplicateMFResp(out, req.corr, hwms)
		}
	case binOpFetchF, binOpRFetchF:
		// The scatter path of the tentpole: the response is assembled
		// directly in the pooled output buffer — header and base first,
		// then the log's ReadFrames appends the raw segment bytes onto
		// it, then the count placeholder is patched. No record structs,
		// no intermediate buffer, no re-encoding.
		at := beginFetchFramesResp(out, req.op, req.corr, req.offset)
		var n int
		var err error
		switch {
		case req.op == binOpRFetchF:
			if node == nil {
				err = errNotClusterMember
			} else {
				out.b, n, err = node.replicaFetchFrames(req.sender, req.topic, req.partition, req.offset, req.max, out.b)
			}
		case node != nil:
			out.b, n, err = node.fetchFrames(req.topic, req.partition, req.offset, req.max, out.b)
		default:
			out.b, n, err = s.broker.FetchFrames(req.topic, req.partition, req.offset, req.max, out.b)
		}
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			patchFrameCount(out, at, n)
		}
	case binOpRHWMB:
		if node == nil {
			encodeErrResp(out, req.op, req.corr, "broker: not a cluster member")
			break
		}
		hwm, err := node.replicaHWM(req.sender, req.topic, req.partition)
		if err != nil {
			encodeErrResp(out, req.op, req.corr, err.Error())
		} else {
			encodeWatermarkResp(out, req.op, req.corr, hwm)
		}
	case binOpJSON:
		var jreq wireRequest
		if err := json.Unmarshal(req.jsonBody, &jreq); err != nil {
			return err
		}
		resp := s.dispatch(&jreq)
		if err := encodeJSONResp(out, req.corr, &resp); err != nil {
			return err
		}
	}
	// dispatch instruments the wrapped JSON op itself; observing the
	// envelope too would double-count the request.
	if req.op != binOpJSON {
		s.instr.observe(binOpName(req.op), start)
	}
	if req.trace != 0 && s.log.Enabled(obs.LevelDebug) {
		s.log.Debug("wire request",
			"op", binOpName(req.op), "trace", obs.TraceHex(req.trace),
			"topic", req.topic, "partition", req.partition,
			"records", len(req.recs)+req.count, "dur_us", time.Since(start).Microseconds())
	}
	return writeRawFrame(bw, out.b)
}

// producePart serves a partitioned produce: via the cluster node when
// attached (leadership + replication), straight to the local partition
// log otherwise.
func (s *Server) producePart(node *ClusterNode, req *binRequest) (int, error) {
	if node != nil {
		return node.producePart(req.trace, req.topic, req.partition, req.pid, req.seq, req.recs)
	}
	if _, err := s.broker.producePartition(req.topic, req.partition, req.recs); err != nil {
		return 0, err
	}
	return len(req.recs), nil
}

// soloMeta synthesizes a single-member metadata view for a server
// running without a cluster node, so ClusterClient can route to it.
func (s *Server) soloMeta() *ClusterMeta {
	m := &ClusterMeta{
		Nodes:  []NodeInfo{{ID: soloNodeID, Addr: s.ln.Addr().String(), Alive: true}},
		Topics: make(map[string]TopicInfo),
	}
	for _, t := range s.broker.Topics() {
		parts, err := s.broker.Partitions(t)
		if err != nil {
			continue
		}
		ti := TopicInfo{Partitions: make([]PartitionInfo, parts)}
		for p := range ti.Partitions {
			ti.Partitions[p] = PartitionInfo{Leader: soloNodeID, Replicas: []string{soloNodeID}}
		}
		m.Topics[t] = ti
	}
	return m
}

// dispatch serves one JSON-dialect request, instrumenting it under its
// op string (shared with the binary envelope via binOpJSON).
func (s *Server) dispatch(req *wireRequest) wireResponse {
	start := time.Now()
	resp := s.dispatchOp(req)
	s.instr.observe(req.Op, start)
	return resp
}

func (s *Server) dispatchOp(req *wireRequest) wireResponse {
	node := s.clusterNode()
	switch req.Op {
	case opCreate:
		if err := s.broker.CreateTopic(req.Topic, req.Partitions); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{}
	case opProduce:
		var n int
		var err error
		if node != nil {
			n, err = node.produceRouted(0, req.Topic, req.Records)
		} else {
			n, err = s.broker.Produce(req.Topic, req.Records)
		}
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{N: n}
	case opProducePart:
		breq := binRequest{topic: req.Topic, partition: req.Partition, pid: req.PID, seq: req.Seq, recs: req.Records}
		n, err := s.producePart(node, &breq)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{N: n}
	case opFetch:
		var recs []Record
		var err error
		if node != nil {
			recs, err = node.fetch(req.Topic, req.Partition, req.Offset, req.Max)
		} else {
			recs, err = s.broker.Fetch(req.Topic, req.Partition, req.Offset, req.Max)
		}
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Records: recs, N: len(recs)}
	case opHWM:
		var hwm int64
		var err error
		if node != nil {
			hwm, err = node.hwm(req.Topic, req.Partition)
		} else {
			hwm, err = s.broker.HighWatermark(req.Topic, req.Partition)
		}
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Offset: hwm}
	case opMeta:
		if node != nil {
			return wireResponse{Meta: node.meta()}
		}
		return wireResponse{Meta: s.soloMeta()}
	case opPing:
		if node == nil {
			return wireResponse{Err: "broker: not a cluster member"}
		}
		epoch, view := node.handlePing(req.Node, req.Epoch, req.View)
		return wireResponse{Epoch: epoch, View: view}
	case opCommit:
		// Clustered: group commits route through the partition leader
		// and replicate to its followers, so Committed is exact and the
		// offset survives a failover.
		var err error
		if node != nil {
			err = node.commitGroup(req.Group, req.Topic, req.Partition, req.Offset)
		} else {
			err = s.broker.Commit(req.Group, req.Topic, req.Partition, req.Offset)
		}
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{}
	case opCommitRep:
		if node == nil {
			return wireResponse{Err: "broker: not a cluster member"}
		}
		if err := node.applyGroupCommit(req.Epoch, req.Node, req.Group, req.Topic, req.Partition, req.Offset); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{}
	case opCommitted:
		var off int64
		var err error
		if node != nil {
			off, err = node.committedGroup(req.Group, req.Topic, req.Partition)
		} else {
			off, err = s.broker.Committed(req.Group, req.Topic, req.Partition)
		}
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Offset: off}
	case opRFetch:
		if node == nil {
			return wireResponse{Err: "broker: not a cluster member"}
		}
		recs, err := node.replicaFetch(req.Node, req.Topic, req.Partition, req.Offset, req.Max)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Records: recs, N: len(recs)}
	case opRHWM:
		if node == nil {
			return wireResponse{Err: "broker: not a cluster member"}
		}
		hwm, err := node.replicaHWM(req.Node, req.Topic, req.Partition)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Offset: hwm}
	case opParts:
		n, err := s.broker.Partitions(req.Topic)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{N: n}
	case opHello:
		if s.opts.JSONOnly {
			// Mimic a pre-codec server so negotiating clients fall back.
			return wireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
		}
		n := helloBatch
		if s.opts.HelloLevel > 0 && s.opts.HelloLevel < n {
			n = s.opts.HelloLevel
		}
		return wireResponse{N: n}
	default:
		return wireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
