package broker

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The wire protocol is deliberately simple: each message is a 4-byte
// big-endian length followed by a JSON document. Requests carry an Op and
// op-specific fields; responses carry either the result or an Err string.
// Max frame size guards against corrupt length prefixes.
const maxFrame = 64 << 20

// request operations.
const (
	opCreate    = "create"
	opProduce   = "produce"
	opFetch     = "fetch"
	opHWM       = "hwm"
	opCommit    = "commit"
	opCommitted = "committed"
	opParts     = "parts"
)

type wireRequest struct {
	Op         string   `json:"op"`
	Topic      string   `json:"topic,omitempty"`
	Partitions int      `json:"partitions,omitempty"`
	Partition  int      `json:"partition,omitempty"`
	Offset     int64    `json:"offset,omitempty"`
	Max        int      `json:"max,omitempty"`
	Group      string   `json:"group,omitempty"`
	Records    []Record `json:"records,omitempty"`
}

type wireResponse struct {
	Err     string   `json:"err,omitempty"`
	N       int      `json:"n,omitempty"`
	Offset  int64    `json:"offset,omitempty"`
	Records []Record `json:"records,omitempty"`
}

func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("marshal frame: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// Server exposes a Broker over TCP.
type Server struct {
	broker *Broker
	ln     net.Listener

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// Serve starts serving the broker on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound. Stop the server with Close.
func Serve(b *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker listen: %w", err)
	}
	s := &Server{
		broker: b,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections, closes live ones, and waits for the
// handler goroutines to exit. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error; keep serving.
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var req wireRequest
		if err := readFrame(br, &req); err != nil {
			return // EOF or broken connection
		}
		resp := s.dispatch(&req)
		if err := writeFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *wireRequest) wireResponse {
	switch req.Op {
	case opCreate:
		if err := s.broker.CreateTopic(req.Topic, req.Partitions); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{}
	case opProduce:
		n, err := s.broker.Produce(req.Topic, req.Records)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{N: n}
	case opFetch:
		recs, err := s.broker.Fetch(req.Topic, req.Partition, req.Offset, req.Max)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Records: recs, N: len(recs)}
	case opHWM:
		hwm, err := s.broker.HighWatermark(req.Topic, req.Partition)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Offset: hwm}
	case opCommit:
		if err := s.broker.Commit(req.Group, req.Topic, req.Partition, req.Offset); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{}
	case opCommitted:
		off, err := s.broker.Committed(req.Group, req.Topic, req.Partition)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Offset: off}
	case opParts:
		n, err := s.broker.Partitions(req.Topic)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{N: n}
	default:
		return wireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a TCP client for a broker Server. Methods mirror Broker's.
// Client serializes requests over one connection; it is safe for
// concurrent use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a broker server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker dial: %w", err)
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *wireRequest) (*wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	var resp wireResponse
	if err := readFrame(c.br, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// CreateTopic creates a topic on the remote broker.
func (c *Client) CreateTopic(name string, partitions int) error {
	_, err := c.roundTrip(&wireRequest{Op: opCreate, Topic: name, Partitions: partitions})
	return err
}

// Produce appends records to a remote topic.
func (c *Client) Produce(topicName string, recs []Record) (int, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opProduce, Topic: topicName, Records: recs})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Fetch reads records from a remote partition.
func (c *Client) Fetch(topicName string, partition int, offset int64, max int) ([]Record, error) {
	resp, err := c.roundTrip(&wireRequest{
		Op: opFetch, Topic: topicName, Partition: partition, Offset: offset, Max: max,
	})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// HighWatermark returns the remote partition's next write offset.
func (c *Client) HighWatermark(topicName string, partition int) (int64, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opHWM, Topic: topicName, Partition: partition})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Commit persists a group offset remotely.
func (c *Client) Commit(group, topicName string, partition int, offset int64) error {
	_, err := c.roundTrip(&wireRequest{
		Op: opCommit, Group: group, Topic: topicName, Partition: partition, Offset: offset,
	})
	return err
}

// Partitions returns the remote topic's partition count.
func (c *Client) Partitions(topicName string) (int, error) {
	resp, err := c.roundTrip(&wireRequest{Op: opParts, Topic: topicName})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Committed reads a group's committed offset remotely.
func (c *Client) Committed(group, topicName string, partition int) (int64, error) {
	resp, err := c.roundTrip(&wireRequest{
		Op: opCommitted, Group: group, Topic: topicName, Partition: partition,
	})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}
