package broker

import (
	"errors"
	"os"
	"testing"
	"time"

	"streamapprox/internal/faults"
)

// proxiedServer starts a broker server with a chaos proxy in front and
// returns the proxy (dial p.Addr() to go through it).
func proxiedServer(t *testing.T) *faults.Proxy {
	t.Helper()
	b := New()
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	p, err := faults.NewProxy("127.0.0.1:0", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// expectDeadline asserts err is the client timeout (wrapping
// os.ErrDeadlineExceeded) and that it surfaced within bound.
func expectDeadline(t *testing.T, err error, took, bound time.Duration) {
	t.Helper()
	if err == nil {
		t.Fatal("RPC through blackhole succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got: %v", err)
	}
	if took > bound {
		t.Fatalf("timeout took %v, want <= %v", took, bound)
	}
}

// TestClientTimeoutPipelined blackholes a binary-codec connection and
// asserts the RPC fails with the deadline error within its budget
// instead of blocking forever.
func TestClientTimeoutPipelined(t *testing.T) {
	p := proxiedServer(t)
	cli, err := DialWithOptions(p.Addr(), ClientOptions{RequestTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if !cli.binary {
		t.Fatal("expected binary codec")
	}
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}

	p.Set(faults.Both, faults.Faults{Blackhole: true})
	start := time.Now()
	_, err = cli.HighWatermark("t", 0)
	expectDeadline(t, err, time.Since(start), 2*time.Second)

	// The timeout poisons the pipelined connection (a half-delivered
	// frame cannot be resynchronized): later calls fail fast, they do
	// not hang for another timeout.
	start = time.Now()
	if _, err := cli.HighWatermark("t", 0); err == nil {
		t.Fatal("call on timed-out connection succeeded")
	} else if took := time.Since(start); took > time.Second {
		t.Fatalf("call on dead connection took %v", took)
	}
}

// TestClientTimeoutLockstep covers the JSON lockstep protocol, where
// the deadline is a raw connection deadline.
func TestClientTimeoutLockstep(t *testing.T) {
	p := proxiedServer(t)
	cli, err := DialJSON(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetRequestTimeout(250 * time.Millisecond)
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}

	p.Set(faults.Both, faults.Faults{Blackhole: true})
	start := time.Now()
	_, err = cli.HighWatermark("t", 0)
	expectDeadline(t, err, time.Since(start), 2*time.Second)
}

// TestPingProbeTimeout exercises the per-op override: a heartbeat probe
// carries its own (short) deadline regardless of the connection
// default, so failure detection keeps its cadence even when the
// default RPC budget is generous.
func TestPingProbeTimeout(t *testing.T) {
	p := proxiedServer(t)
	cli, err := DialWithOptions(p.Addr(), ClientOptions{RequestTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	p.Set(faults.Both, faults.Faults{Blackhole: true})
	start := time.Now()
	_, _, err = cli.ping(200*time.Millisecond, "n1", 1, nil)
	expectDeadline(t, err, time.Since(start), 2*time.Second)
}

// TestClientTimeoutIsTransportError pins the classification contract:
// a timeout must NOT look like an answered rejection (remoteError),
// because cluster failure accounting counts only transport errors —
// that is what ejects a stalled follower from the ISR.
func TestClientTimeoutIsTransportError(t *testing.T) {
	p := proxiedServer(t)
	cli, err := DialWithOptions(p.Addr(), ClientOptions{RequestTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	p.Set(faults.Both, faults.Faults{Blackhole: true})
	_, err = cli.HighWatermark("t", 0)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if isRemoteErr(err) {
		t.Fatalf("timeout classified as remote (answered) error: %v", err)
	}
}
