package broker

// ClusterNode turns one broker process into a member of a multi-broker
// cluster. The cluster has no external coordinator: every node is
// started with the same static id→addr member map, placement is a pure
// function of it (cluster.go), and each node maintains its own liveness
// view via heartbeats + gossip, promoting the next replica of a
// partition the moment its leader is observed dead.
//
// Data-plane roles per partition:
//
//   - the LEADER accepts produce, appends locally, then streams the
//     appended chunk to every live follower over the binary `replicate`
//     op, acking the producer only once MinISR replicas (counting
//     itself, shrunk to the live replica count) hold the records. The
//     offset acked that way is the partition's COMMITTED watermark; the
//     leader serves fetches only up to it, so consumers can never
//     observe records that a failover could lose. Replication is
//     group-committed: each leader keeps one coalescing session per
//     follower, and pending chunks from EVERY partition led to that
//     follower drain into a single multi-partition replicate RPC whose
//     one batched ack wakes all parked producers — the fixed per-RPC
//     cost (syscalls, scheduler wakeups, follower CRC verify) is paid
//     per drain, not per (partition, chunk). There is no linger timer:
//     only what is already queued coalesces, so an isolated produce
//     still ships immediately. Followers apply out-of-order arrivals
//     via the gap/backfill protocol below.
//   - a FOLLOWER applies replicated chunks at their exact base offset
//     (idempotently: duplicate prefixes are trimmed, gaps answered with
//     the local watermark so the leader backfills) and tracks producer
//     sequence numbers, so after a promotion it can deduplicate a
//     producer's retry of a batch the dead leader already replicated.
//     Each chunk carries the leader's committed watermark, which the
//     follower persists — the truncation point of its next restart.
//
// Failure model: fail-recover. Liveness is a per-member versioned
// status (SWIM-style incarnations): declaring a peer dead bumps its
// status version, and only the peer itself can announce itself alive
// again, with a HIGHER version — so gossip converges on the newest
// observation and a resurrection cannot be undone by a stale dead set.
// A node boots (and re-enters after being deposed) in a JOINING state:
// it takes no leadership and accepts no replication until it has
// fetched the cluster's current view, created any topics it missed,
// truncated its recovered logs back to each partition leader's
// committed watermark (discarding divergent uncommitted tails), and
// announced itself with a bumped version. Catch-up then rides the
// ordinary replication backfill. The no-loss guarantee holds when
// MinISR == Replicas; with fewer required acks, records on the
// minority side of a failover can be lost, exactly as in Kafka with
// acks < all.

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamapprox/internal/broker/storage"
	"streamapprox/internal/metrics"
)

// PeerStatus is one member's liveness in a node's view: Dead plus the
// status version (incarnation) of the observation. Higher versions win
// on merge; only a member itself announces its own resurrection.
type PeerStatus struct {
	Dead bool  `json:"dead,omitempty"`
	Ver  int64 `json:"ver,omitempty"`
}

// NodeConfig configures one broker's membership in a cluster.
type NodeConfig struct {
	// ID is this node's member id; it must be a key of Peers.
	ID string
	// Peers maps every member id (including this node's) to its
	// advertised broker address.
	Peers map[string]string
	// Replicas is the replication factor for every partition (default
	// 2, capped at the member count).
	Replicas int
	// MinISR is the number of replicas (counting the leader) that must
	// hold a produced batch before it is acked and becomes fetchable.
	// It shrinks to the live replica count, so a partition stays
	// writable after failures (default Replicas).
	MinISR int
	// HeartbeatEvery is the peer probe interval (default 250ms).
	HeartbeatEvery time.Duration
	// FailAfter is the number of consecutive failed probes (heartbeats
	// or replication calls) after which a peer is declared dead
	// (default 3).
	FailAfter int
	// StartupGrace is how long failures against a peer that was NEVER
	// seen alive are forgiven (default 10s) — cluster members boot at
	// different times.
	StartupGrace time.Duration
	// ReplWindow bounds the chunks one follower-session drain coalesces
	// into a single multi-partition replicate RPC (default 32). The
	// session queue itself is unbounded — its natural bound is the
	// number of produce handlers parked on their acks.
	ReplWindow int
	// DialTimeout bounds TCP connect to a peer (default
	// DefaultDialTimeout). A blackholed peer must not wedge dialers.
	DialTimeout time.Duration
	// ProbeTimeout bounds one heartbeat ping RPC (default
	// 4×HeartbeatEvery, floor 1s). A probe that cannot answer within a
	// few heartbeats IS the failure signal; waiting longer only slows
	// detection of stalled-but-connected peers.
	ProbeTimeout time.Duration
	// RPCTimeout bounds every other peer RPC — replication pushes,
	// rejoin catch-up fetches, meta pulls (default 10s). A replication
	// push into a stalled follower times out, counts as a probe
	// failure, and after FailAfter failures the follower is declared
	// dead and drops out of the ISR — instead of wedging the leader's
	// send window forever.
	RPCTimeout time.Duration
	// StateFlushEvery is the write-behind interval for the hot-path
	// state.json rewrites (committed watermark + producer dedup table),
	// default 25ms: produce and replicated-append mark the partition
	// dirty and a background loop coalesces the rewrites. Control-plane
	// transitions (rejoin truncation, takeover) still write
	// synchronously, and under SyncEvery "always" every state write is
	// synchronous — the acked-means-durable guarantee needs the
	// watermark on disk before the ack.
	StateFlushEvery time.Duration
	// Logf, when set, receives membership and replication log lines.
	Logf func(format string, args ...any)
}

// prodSeq is the last applied produce of one producer on one partition,
// kept on every replica so a post-failover retry deduplicates.
type prodSeq struct {
	seq  uint64
	base int64
	end  int64
}

// batchMeta identifies one idempotent producer batch inside a partition
// log. Replicas keep a bounded journal of recent batches and ship the
// entries covering each replicated chunk alongside it, so a follower
// learns the dedup state for EVERY producer whose records reach it —
// including records that arrived inside another producer's backfill —
// and a promotion never forgets a batch it physically holds.
type batchMeta struct {
	pid  uint64
	seq  uint64
	base int64
	end  int64
}

// metaJournalCap bounds the per-partition batch journal. Backfills
// deeper than this many batches lose dedup coverage for the oldest
// entries, which only matters for a follower that lagged that far
// without being declared dead.
const metaJournalCap = 256

// deadProbeEvery is how many heartbeat ticks pass between probes of a
// peer marked dead — the channel through which mutually-partitioned
// halves exchange views again once the network heals.
const deadProbeEvery = 8

// partLead is the leader-side state of one partition: the committed
// watermark and a mutex serializing the dedup-check + append + journal
// section of a produce (replication happens outside it). leading
// tracks whether this node currently serves the partition as leader —
// every ACQUISITION of leadership re-adopts the local log's high
// watermark as committed (promotion by fiat), not just the first.
type partLead struct {
	mu        sync.Mutex
	committed atomic.Int64
	init      atomic.Bool
	leading   atomic.Bool
}

// stateSaver serializes the persisted cluster-state writes of one
// partition so a slower older snapshot can never overwrite a newer one.
type stateSaver struct{ mu sync.Mutex }

// partitionState is the on-disk cluster state of one partition, stored
// as state.json next to its segments: the committed watermark (the
// restart truncation point) and the producer dedup table and journal.
// (Consumer-group offsets live in the broker's groups.json, written
// durably by Commit itself.)
type partitionState struct {
	Committed int64           `json:"committed"`
	Producers []producerEntry `json:"producers,omitempty"`
	Journal   []producerEntry `json:"journal,omitempty"`
}

type producerEntry struct {
	PID  uint64 `json:"pid"`
	Seq  uint64 `json:"seq"`
	Base int64  `json:"base"`
	End  int64  `json:"end"`
}

// ClusterNode is one broker's cluster brain, attached to its TCP server.
type ClusterNode struct {
	cfg     NodeConfig
	b       *Broker
	members []string // all member ids, sorted

	started time.Time

	mu          sync.Mutex
	epoch       int64
	view        map[string]PeerStatus // liveness per member (missing = alive, ver 0)
	selfDeadVer int64                 // highest version anyone declared US dead at
	joining     bool                  // not yet announced: no leadership, no replication in
	miss        map[string]int
	seen        map[string]bool // peers observed alive at least once
	conns       map[string]*Client
	leads       map[string]*partLead
	seqs        map[string]map[uint64]prodSeq // topic/partition -> pid -> last batch
	metas       map[string][]batchMeta        // topic/partition -> recent batch journal
	remoteHWM   map[string]int64              // topic/partition -> committed heard from the leader
	followHWM   map[string]map[string]int64   // topic/partition -> follower -> last acked watermark
	sess        map[string]*replSess          // follower id -> coalescing replication session
	replEpochs  map[string]int64              // topic/partition -> highest epoch an inbound replicate carried
	savers      map[string]*stateSaver

	// reg is the metrics registry handed to RegisterMetrics (nil until
	// then); session drains observe their coalescing histograms on it.
	reg atomic.Pointer[metrics.Registry]

	stateMu    sync.Mutex
	stateDirty map[string]tpRef // partitions awaiting a write-behind state flush

	placeMu sync.RWMutex
	place   map[string][]string // topic/partition -> cached rendezvous replica set

	commitMus map[string]*sync.Mutex // topic/partition -> group-commit round lock
	probing   map[string]bool        // dead peers with a slow probe in flight
	pendAlive map[string]PeerStatus  // gossiped resurrections awaiting probe proof

	syncing map[string]bool // topic/partition mid-takeover: no leadership yet

	rejoinWake chan struct{} // signaled when a deposal demotes us mid-run

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewClusterNode validates the config and returns a node. On a durable
// broker it also loads the persisted per-partition cluster state and
// truncates each recovered log back to its persisted committed
// watermark — records past it were never acked and may diverge from
// the cluster. Call Start (once the node is attached to a serving
// Server) to run the join handshake and begin heartbeating.
func NewClusterNode(b *Broker, cfg NodeConfig) (*ClusterNode, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("broker: cluster node needs an id")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("broker: node id %q missing from peer map", cfg.ID)
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Peers) {
		cfg.Replicas = len(cfg.Peers)
	}
	if cfg.MinISR < 1 || cfg.MinISR > cfg.Replicas {
		cfg.MinISR = cfg.Replicas
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.FailAfter < 1 {
		cfg.FailAfter = 3
	}
	if cfg.StartupGrace <= 0 {
		cfg.StartupGrace = 10 * time.Second
	}
	if cfg.ReplWindow < 1 {
		cfg.ReplWindow = 32
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 4 * cfg.HeartbeatEvery
		if cfg.ProbeTimeout < time.Second {
			cfg.ProbeTimeout = time.Second
		}
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	if cfg.StateFlushEvery <= 0 {
		cfg.StateFlushEvery = 25 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	members := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		members = append(members, id)
	}
	sort.Strings(members)
	n := &ClusterNode{
		cfg:        cfg,
		b:          b,
		members:    members,
		started:    time.Now(),
		view:       make(map[string]PeerStatus),
		joining:    true,
		miss:       make(map[string]int),
		seen:       make(map[string]bool),
		conns:      make(map[string]*Client),
		leads:      make(map[string]*partLead),
		seqs:       make(map[string]map[uint64]prodSeq),
		metas:      make(map[string][]batchMeta),
		remoteHWM:  make(map[string]int64),
		followHWM:  make(map[string]map[string]int64),
		sess:       make(map[string]*replSess),
		replEpochs: make(map[string]int64),
		savers:     make(map[string]*stateSaver),
		stateDirty: make(map[string]tpRef),
		place:      make(map[string][]string),
		commitMus:  make(map[string]*sync.Mutex),
		probing:    make(map[string]bool),
		pendAlive:  make(map[string]PeerStatus),
		syncing:    make(map[string]bool),
		rejoinWake: make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	if err := n.loadState(); err != nil {
		return nil, err
	}
	return n, nil
}

// loadState recovers the persisted cluster state of every local
// partition and applies the restart truncation rule.
func (n *ClusterNode) loadState() error {
	if n.b.Dir() == "" {
		return nil
	}
	for _, t := range n.b.TopicsSorted() {
		parts, err := n.b.Partitions(t)
		if err != nil {
			continue
		}
		for p := 0; p < parts; p++ {
			var st partitionState
			ok, err := storage.LoadJSON(n.statePath(t, p), &st)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := n.b.truncatePartition(t, p, st.Committed); err != nil {
				return fmt.Errorf("broker: recover %s/%d: %w", t, p, err)
			}
			tp := tpKey(t, p)
			n.remoteHWM[tp] = st.Committed
			for _, pe := range st.Producers {
				if pe.End > st.Committed {
					continue // covered records were truncated away
				}
				m, ok := n.seqs[tp]
				if !ok {
					m = make(map[uint64]prodSeq)
					n.seqs[tp] = m
				}
				m[pe.PID] = prodSeq{seq: pe.Seq, base: pe.Base, end: pe.End}
			}
			for _, pe := range st.Journal {
				if pe.End <= st.Committed {
					n.metas[tp] = append(n.metas[tp], batchMeta{pid: pe.PID, seq: pe.Seq, base: pe.Base, end: pe.End})
				}
			}
			n.cfg.Logf("cluster %s: recovered %s committed=%d", n.cfg.ID, tp, st.Committed)
		}
	}
	return nil
}

func (n *ClusterNode) statePath(topic string, partition int) string {
	return filepath.Join(n.b.PartitionDir(topic, partition), "state.json")
}

// ID returns the node's member id.
func (n *ClusterNode) ID() string { return n.cfg.ID }

// Start launches the join handshake and the heartbeat loop. Safe to
// call once, after the node's server is accepting connections.
func (n *ClusterNode) Start() {
	n.wg.Add(3)
	go n.joinLoop()
	go n.heartbeatLoop()
	go n.stateFlushLoop()
}

// Close stops heartbeating and closes peer connections.
func (n *ClusterNode) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.wg.Wait()
		n.mu.Lock()
		for id, c := range n.conns {
			_ = c.Close()
			delete(n.conns, id)
		}
		n.mu.Unlock()
	})
}

func tpKey(topic string, partition int) string {
	return topic + "/" + strconv.Itoa(partition)
}

// replicas returns the partition's static replica set, cached: with
// static membership, rendezvous placement never changes for the life of
// the node, and recomputing the hash ranking on every produce/replicate
// is measurable on the hot path. Callers must not mutate the result.
func (n *ClusterNode) replicas(topic string, partition int) []string {
	tp := tpKey(topic, partition)
	n.placeMu.RLock()
	reps, ok := n.place[tp]
	n.placeMu.RUnlock()
	if ok {
		return reps
	}
	reps = replicasFor(topic, partition, n.members, n.cfg.Replicas)
	n.placeMu.Lock()
	n.place[tp] = reps
	n.placeMu.Unlock()
	return reps
}

// ---- membership view ----

func (n *ClusterNode) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	tick := 0
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
		}
		tick++
		for _, id := range n.members {
			if id == n.cfg.ID {
				continue
			}
			if n.isDead(id) {
				// Slow-probe dead peers to catch healed partitions — in
				// the background, because dialing an address that is
				// actually down can block for the full dial timeout and
				// must not stall liveness probing of healthy peers.
				if tick%deadProbeEvery == 0 {
					n.probeDeadAsync(id)
				}
				continue
			}
			n.probe(id)
		}
	}
}

// probeDeadAsync probes one dead peer off the heartbeat loop, at most
// one probe in flight per peer.
func (n *ClusterNode) probeDeadAsync(id string) {
	n.mu.Lock()
	if n.probing[id] {
		n.mu.Unlock()
		return
	}
	n.probing[id] = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.probe(id)
		n.mu.Lock()
		delete(n.probing, id)
		n.mu.Unlock()
	}()
}

// probe heartbeats one peer, exchanging views: the request carries our
// epoch + status view, the response the peer's, and both sides merge.
func (n *ClusterNode) probe(id string) {
	cli, err := n.peerClient(id)
	if err != nil {
		n.markFailure(id, err)
		return
	}
	epoch, view := n.viewCopy()
	repoch, rview, err := cli.ping(n.cfg.ProbeTimeout, n.cfg.ID, epoch, view)
	if err != nil {
		// Ping IS the liveness probe, so any failure counts — but only a
		// transport failure taints the connection.
		if !isRemoteErr(err) {
			n.dropConn(id, cli)
		}
		n.markFailure(id, err)
		return
	}
	n.adoptPendingAlive(id)
	n.markAlive(id)
	n.mergeView(repoch, rview)
}

// adoptPendingAlive completes a gossiped resurrection once this node
// has proof it can actually reach the peer (a probe just succeeded).
func (n *ClusterNode) adoptPendingAlive(id string) {
	n.mu.Lock()
	st, ok := n.pendAlive[id]
	if !ok {
		n.mu.Unlock()
		return
	}
	delete(n.pendAlive, id)
	if !n.view[id].Dead || st.Ver <= n.view[id].Ver {
		n.mu.Unlock()
		return
	}
	n.view[id] = st
	n.miss[id] = 0
	n.epoch++
	epoch := n.epoch
	n.mu.Unlock()
	n.cfg.Logf("cluster %s: %s rejoined (ver %d, probe-verified, epoch %d)", n.cfg.ID, id, st.Ver, epoch)
}

// viewCopy returns the current epoch and a copy of the status view,
// always including this node's own entry (its self-announcement).
func (n *ClusterNode) viewCopy() (int64, map[string]PeerStatus) {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]PeerStatus, len(n.view)+1)
	for id, st := range n.view {
		out[id] = st
	}
	if _, ok := out[n.cfg.ID]; !ok {
		out[n.cfg.ID] = PeerStatus{}
	}
	return n.epoch, out
}

// viewSnapshot returns the current epoch and dead-member list.
func (n *ClusterNode) viewSnapshot() (int64, []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var dead []string
	for id, st := range n.view {
		if st.Dead {
			dead = append(dead, id)
		}
	}
	sort.Strings(dead)
	return n.epoch, dead
}

// mergeView folds a peer's view into ours: per-member entries with a
// higher status version win; epochs take the max. One exception: a
// dead→alive transition is never adopted on hearsay — it parks in
// pendAlive until our own probe of that peer succeeds. A node never
// adopts "dead" for ITSELF — instead, learning that the cluster deposed it
// demotes it back to joining, so it resyncs its log and re-announces
// with a version above the accusation.
func (n *ClusterNode) mergeView(epoch int64, remote map[string]PeerStatus) {
	n.mu.Lock()
	demoted := false
	var verify []string
	for id, st := range remote {
		if id == n.cfg.ID {
			if st.Dead && st.Ver > n.selfDeadVer {
				n.selfDeadVer = st.Ver
			}
			if st.Dead && !n.joining && st.Ver >= n.view[n.cfg.ID].Ver {
				n.joining = true
				demoted = true
			}
			continue
		}
		cur := n.view[id]
		if st.Ver > cur.Ver {
			if cur.Dead && !st.Dead {
				// Gossiped resurrection: do NOT adopt it on hearsay. Under
				// an asymmetric partition the unreachable node can still
				// talk OUT, so its rejoin announcements keep arriving while
				// every probe of it times out — adopting here would flap
				// leadership back onto a node nobody can reach. Stash the
				// offer and verify with our own probe (adoptPendingAlive).
				if p := n.pendAlive[id]; st.Ver > p.Ver {
					n.pendAlive[id] = st
					verify = append(verify, id)
				}
				continue
			}
			n.view[id] = st
			if st.Dead != cur.Dead {
				n.epoch++
				if st.Dead {
					n.cfg.Logf("cluster %s: learned %s is dead (gossip, ver %d)", n.cfg.ID, id, st.Ver)
					if c := n.conns[id]; c != nil {
						_ = c.Close()
						delete(n.conns, id)
					}
				}
			}
		}
	}
	if epoch > n.epoch {
		n.epoch = epoch
	}
	n.mu.Unlock()
	for _, id := range verify {
		n.probeDeadAsync(id)
	}
	if demoted {
		n.cfg.Logf("cluster %s: deposed by the cluster; demoting to rejoin", n.cfg.ID)
		// Leadership is gone: tear down the follower sessions so a
		// chunk queued under the old reign cannot be delivered after the
		// takeover handshake (queued producers get an error and retry
		// against the new leader; a batch already on the wire is fenced
		// by the follower's per-partition replication epoch).
		n.closeSessions()
		select {
		case n.rejoinWake <- struct{}{}:
		default:
		}
	}
}

// handlePing serves the "ping" control op: merge the sender's view,
// answer with ours. An inbound ping proves the sender has booted and
// can reach US — it does NOT prove we can reach the sender, so it must
// not reset the probe-failure counter: under an asymmetric partition
// (the peer's inbound traffic blackholed, its outbound fine) its pings
// keep arriving while our probes of it all time out, and resetting the
// counter here would mask the partition forever. Liveness is earned
// only by answering OUR probes; resurrection of a dead peer flows
// through mergeView's version bumps.
func (n *ClusterNode) handlePing(sender string, epoch int64, view map[string]PeerStatus) (int64, map[string]PeerStatus) {
	n.mergeView(epoch, view)
	if sender != "" {
		n.markSeen(sender)
	}
	return n.viewCopy()
}

func (n *ClusterNode) isDead(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view[id].Dead
}

func (n *ClusterNode) isJoining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.joining
}

// markFailure counts one failed probe or replication call against a
// peer; FailAfter consecutive failures declare it dead (bumping its
// status version and the epoch), which moves leadership of its
// partitions to the next replica.
func (n *ClusterNode) markFailure(id string, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.view[id].Dead {
		return
	}
	if !n.seen[id] && time.Since(n.started) < n.cfg.StartupGrace {
		return // peer may simply not have booted yet
	}
	n.miss[id]++
	if n.miss[id] < n.cfg.FailAfter {
		return
	}
	n.view[id] = PeerStatus{Dead: true, Ver: n.view[id].Ver + 1}
	n.epoch++
	if c := n.conns[id]; c != nil {
		_ = c.Close()
		delete(n.conns, id)
	}
	n.cfg.Logf("cluster %s: peer %s declared dead (epoch %d): %v", n.cfg.ID, id, n.epoch, err)
}

func (n *ClusterNode) markAlive(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.view[id].Dead {
		n.miss[id] = 0
		n.seen[id] = true
	}
}

// markSeen records that a peer has demonstrably booted (it contacted
// us), ending its StartupGrace — without vouching for our ability to
// reach it (see handlePing).
func (n *ClusterNode) markSeen(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seen[id] = true
}

// peerClient returns (dialing if needed) the connection to a peer.
func (n *ClusterNode) peerClient(id string) (*Client, error) {
	n.mu.Lock()
	if c, ok := n.conns[id]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.cfg.Peers[id]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("broker: unknown peer %q", id)
	}
	// Peer RPCs (replication pushes, rejoin fetches, meta) run under
	// RPCTimeout as the connection default; probes override per-op.
	c, err := DialWithOptions(addr, ClientOptions{
		DialTimeout:    n.cfg.DialTimeout,
		RequestTimeout: n.cfg.RPCTimeout,
	})
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if prev, ok := n.conns[id]; ok { // lost the dial race; keep the first
		n.mu.Unlock()
		_ = c.Close()
		return prev, nil
	}
	n.conns[id] = c
	n.mu.Unlock()
	return c, nil
}

// dropConn discards a broken peer connection (only if still current).
func (n *ClusterNode) dropConn(id string, c *Client) {
	n.mu.Lock()
	if n.conns[id] == c {
		delete(n.conns, id)
	}
	n.mu.Unlock()
	_ = c.Close()
}

// ---- join / rejoin ----

// joinLoop runs the join handshake at startup and again whenever the
// node is demoted (deposed by the cluster's failure detector).
func (n *ClusterNode) joinLoop() {
	defer n.wg.Done()
	for {
		n.syncAndJoin()
		select {
		case <-n.done:
			return
		case <-n.rejoinWake:
		}
	}
}

// syncAndJoin brings a joining node up to date and announces it:
//
//  1. exchange views with every reachable peer (learning the highest
//     version at which anyone declared us dead, and the freshest
//     metadata view by epoch), and create any topic the cluster grew
//     while we were away;
//  2. for every partition we replicate, truncate our log back to the
//     current leader's committed watermark (records past it were never
//     acked and may diverge from what the cluster committed) and pull
//     the committed records we missed;
//  3. announce ourselves alive with a status version above every
//     accusation, leaving the joining state;
//  4. for partitions whose leadership falls back to us (we are the
//     first live replica in rendezvous order), keep pulling from the
//     interim leader until it has adopted our announcement and
//     deferred — only then serve leadership. Without this handshake a
//     produce the interim leader acked between our catch-up and its
//     handoff could be overwritten at the same offsets.
//
// Follower catch-up beyond that rides the ordinary replication
// backfill on the next produce.
func (n *ClusterNode) syncAndJoin() {
	// Leadership from a previous incarnation is void: every partition
	// re-adopts its (possibly truncated) watermark when leadership is
	// next acquired, and any replication sessions of the old reign are
	// torn down (no-op at first boot; sessions are rebuilt lazily when
	// leadership returns).
	n.mu.Lock()
	for _, pl := range n.leads {
		pl.leading.Store(false)
	}
	n.mu.Unlock()
	n.closeSessions()
	var bestMeta *ClusterMeta
	for _, id := range n.members {
		if id == n.cfg.ID {
			continue
		}
		cli, err := n.peerClient(id)
		if err != nil {
			continue
		}
		epoch, view := n.viewCopy()
		if repoch, rview, err := cli.ping(n.cfg.ProbeTimeout, n.cfg.ID, epoch, view); err == nil {
			n.mergeView(repoch, rview)
		} else {
			if !isRemoteErr(err) {
				n.dropConn(id, cli)
			}
			continue
		}
		if m, err := cli.Meta(); err == nil {
			if bestMeta == nil || m.Epoch > bestMeta.Epoch {
				bestMeta = m
			}
		}
	}
	var takeovers []takeover
	if bestMeta != nil {
		n.mu.Lock()
		if bestMeta.Epoch > n.epoch {
			n.epoch = bestMeta.Epoch
		}
		n.mu.Unlock()
		// Topics created while we were down: create them locally so
		// replication to us has somewhere to land.
		for t, ti := range bestMeta.Topics {
			if _, err := n.b.Partitions(t); err != nil {
				if err := n.b.CreateTopic(t, len(ti.Partitions)); err != nil {
					n.cfg.Logf("cluster %s: rejoin create topic %s: %v", n.cfg.ID, t, err)
				}
			}
		}
		takeovers = n.resyncPartitions(bestMeta)
	}
	n.mu.Lock()
	ver := n.view[n.cfg.ID].Ver
	if n.selfDeadVer >= ver {
		ver = n.selfDeadVer + 1
	}
	n.view[n.cfg.ID] = PeerStatus{Dead: false, Ver: ver}
	n.joining = false
	n.epoch++
	epoch := n.epoch
	n.mu.Unlock()
	n.cfg.Logf("cluster %s: joined (ver %d, epoch %d, %d takeovers pending)", n.cfg.ID, ver, epoch, len(takeovers))
	n.finishTakeovers(takeovers)
}

// takeover is one partition whose leadership falls back to this node
// once its rejoin announcement spreads.
type takeover struct {
	topic     string
	partition int
	oldLeader string
}

// resyncPartitions runs the pre-announce log repair for every local
// replica partition: truncate divergence back to the current leader's
// committed watermark, then pull the committed records we missed. It
// returns the partitions whose leadership will fall back to us, after
// marking them as syncing (no leadership until the handshake is done).
func (n *ClusterNode) resyncPartitions(m *ClusterMeta) []takeover {
	var takeovers []takeover
	for t, ti := range m.Topics {
		for p := range ti.Partitions {
			ldr := ti.Partitions[p].Leader
			if ldr == "" || ldr == n.cfg.ID {
				continue
			}
			selfReplica := false
			for _, id := range ti.Partitions[p].Replicas {
				if id == n.cfg.ID {
					selfReplica = true
				}
			}
			if !selfReplica {
				continue
			}
			committed, err := n.leaderCommitted(ldr, t, p)
			if err != nil {
				n.cfg.Logf("cluster %s: rejoin %s/%d: leader %s unreachable: %v", n.cfg.ID, t, p, ldr, err)
				continue
			}
			n.truncateDivergence(t, p, ldr, committed)
			if err := n.pullCommitted(ldr, t, p); err != nil {
				n.cfg.Logf("cluster %s: rejoin pull %s/%d from %s: %v", n.cfg.ID, t, p, ldr, err)
			}
			// Will leadership fall back to us once we are alive again?
			// (First replica in rendezvous order that is live in our
			// merged view, counting ourselves.)
			first := ""
			for _, id := range ti.Partitions[p].Replicas {
				if id == n.cfg.ID || !n.isDead(id) {
					first = id
					break
				}
			}
			if first == n.cfg.ID {
				tp := tpKey(t, p)
				n.mu.Lock()
				n.syncing[tp] = true
				n.mu.Unlock()
				takeovers = append(takeovers, takeover{topic: t, partition: p, oldLeader: ldr})
			}
		}
	}
	return takeovers
}

// leaderCommitted asks a (possibly former) leader for its committed
// watermark of a partition via the replica-fetch surface, which is not
// leadership-gated.
func (n *ClusterNode) leaderCommitted(ldr, t string, p int) (int64, error) {
	cli, err := n.peerClient(ldr)
	if err != nil {
		return 0, err
	}
	return cli.replicaHWM(n.cfg.ID, t, p)
}

// truncateDivergence cuts one local partition log back to the leader's
// committed watermark and drops dedup state past the cut.
func (n *ClusterNode) truncateDivergence(t string, p int, ldr string, committed int64) {
	local, err := n.b.HighWatermark(t, p)
	if err != nil || local <= committed {
		return
	}
	if err := n.b.truncatePartition(t, p, committed); err != nil {
		n.cfg.Logf("cluster %s: rejoin truncate %s/%d: %v", n.cfg.ID, t, p, err)
		return
	}
	tp := tpKey(t, p)
	n.mu.Lock()
	if pl, ok := n.leads[tp]; ok {
		pl.leading.Store(false)
		if pl.committed.Load() > committed {
			pl.committed.Store(committed) // the cut discarded those records
		}
	}
	if n.remoteHWM[tp] > committed {
		n.remoteHWM[tp] = committed
	}
	if m := n.seqs[tp]; m != nil {
		for pid, ps := range m {
			if ps.end > committed {
				delete(m, pid)
			}
		}
	}
	kept := n.metas[tp][:0]
	for _, bm := range n.metas[tp] {
		if bm.end <= committed {
			kept = append(kept, bm)
		}
	}
	n.metas[tp] = kept
	n.mu.Unlock()
	n.saveClusterState(t, p)
	n.cfg.Logf("cluster %s: rejoin truncated %s/%d from %d to leader %s committed %d",
		n.cfg.ID, t, p, local, ldr, committed)
}

// pullCommitted drains the committed records this replica is missing
// from a peer via replica-fetch, applying them through the idempotent
// replicated-append path. Against a frames-dialect peer the rounds run
// over the binary rfetch op: raw frame chunks, one buffer reused across
// rounds, appended verbatim. The JSON control-dialect fetch remains as
// the fallback for catch-up from an old peer.
func (n *ClusterNode) pullCommitted(ldr, t string, p int) error {
	cli, err := n.peerClient(ldr)
	if err != nil {
		return err
	}
	tp := tpKey(t, p)
	var buf []byte
	for {
		local, err := n.b.HighWatermark(t, p)
		if err != nil {
			return err
		}
		var frames []byte
		var count int
		if cli.supportsFrames() {
			// replicaFetch always serves from the requested offset, so the
			// chunk's base is `local` — frames carry no offsets of their own.
			frames, count, err = cli.replicaFetchFrames(n.cfg.ID, t, p, local, 4096, buf[:0])
			if err != nil {
				return err
			}
		} else {
			recs, err := cli.replicaFetch(n.cfg.ID, t, p, local, 4096)
			if err != nil {
				return err
			}
			frames, count = storage.AppendRecordFrames(buf[:0], recs), len(recs)
		}
		buf = frames[:0]
		if count == 0 {
			n.saveClusterState(t, p)
			return nil
		}
		hwm, err := n.b.replicateAppendFrames(t, p, local, frames, count)
		if err != nil {
			return err
		}
		n.mu.Lock()
		if hwm > n.remoteHWM[tp] {
			n.remoteHWM[tp] = hwm
		}
		n.mu.Unlock()
	}
}

// finishTakeovers completes the leadership handoff of each pending
// takeover: keep pulling the interim leader's committed records until
// it has adopted our rejoin announcement and deferred (its own
// metadata names us leader), then serve. If the interim leader dies
// mid-handshake, we promote with what we hold — the same guarantee as
// any failover.
func (n *ClusterNode) finishTakeovers(takeovers []takeover) {
	deadline := time.Now().Add(30 * time.Second)
	for _, to := range takeovers {
		tp := tpKey(to.topic, to.partition)
		for !n.isDead(to.oldLeader) && !time.Now().After(deadline) {
			deferred := false
			if cli, err := n.peerClient(to.oldLeader); err == nil {
				if m, err := cli.Meta(); err == nil {
					deferred = m.LeaderOf(to.topic, to.partition) == n.cfg.ID
				}
			}
			err := n.pullCommitted(to.oldLeader, to.topic, to.partition)
			if err == nil && deferred {
				// The old leader had already deferred before this pull,
				// so its committed watermark was final and is drained.
				break
			}
			select {
			case <-n.done:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		n.mu.Lock()
		delete(n.syncing, tp)
		n.mu.Unlock()
		n.saveClusterState(to.topic, to.partition)
		n.cfg.Logf("cluster %s: took over leadership of %s from %s", n.cfg.ID, tp, to.oldLeader)
	}
}

// ---- placement ----

// leaderFor returns the current leader of a partition in this node's
// view: the first live replica in rendezvous order ("" if none live).
// While this node is joining, or mid-takeover of the partition, it
// never claims leadership.
func (n *ClusterNode) leaderFor(topic string, partition int) string {
	reps := n.replicas(topic, partition)
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, id := range reps {
		if id == n.cfg.ID && (n.joining || n.syncing[tpKey(topic, partition)]) {
			continue
		}
		if !n.view[id].Dead {
			return id
		}
	}
	return ""
}

// meta builds the metadata snapshot the "meta" control op serves.
func (n *ClusterNode) meta() *ClusterMeta {
	n.mu.Lock()
	epoch := n.epoch
	joining := n.joining
	syncing := make(map[string]bool, len(n.syncing))
	for tp := range n.syncing {
		syncing[tp] = true
	}
	dead := make(map[string]bool, len(n.view))
	for id, st := range n.view {
		if st.Dead {
			dead[id] = true
		}
	}
	n.mu.Unlock()
	m := &ClusterMeta{Epoch: epoch, Topics: make(map[string]TopicInfo)}
	for _, id := range n.members {
		m.Nodes = append(m.Nodes, NodeInfo{ID: id, Addr: n.cfg.Peers[id], Alive: !dead[id]})
	}
	for _, t := range n.b.Topics() {
		parts, err := n.b.Partitions(t)
		if err != nil {
			continue
		}
		ti := TopicInfo{Partitions: make([]PartitionInfo, parts)}
		for p := 0; p < parts; p++ {
			reps := n.replicas(t, p)
			leader := ""
			for _, id := range reps {
				if id == n.cfg.ID && (joining || syncing[tpKey(t, p)]) {
					continue
				}
				if !dead[id] {
					leader = id
					break
				}
			}
			ti.Partitions[p] = PartitionInfo{Leader: leader, Replicas: reps}
		}
		m.Topics[t] = ti
	}
	return m
}

// ---- leader data path ----

// lead returns (creating and initializing if needed) the leader-side
// state of a partition.
func (n *ClusterNode) lead(topic string, partition int) (*partLead, error) {
	key := tpKey(topic, partition)
	n.mu.Lock()
	pl, ok := n.leads[key]
	if !ok {
		pl = &partLead{}
		n.leads[key] = pl
	}
	n.mu.Unlock()
	if !pl.init.Load() {
		pl.mu.Lock()
		if !pl.init.Load() {
			hwm, err := n.b.HighWatermark(topic, partition)
			if err != nil {
				pl.mu.Unlock()
				return nil, err
			}
			pl.committed.Store(hwm)
			pl.init.Store(true)
		}
		pl.mu.Unlock()
	}
	return pl, nil
}

// markLeading records that this node now serves the partition as
// leader. On each ACQUISITION of leadership the committed watermark
// adopts the local log's high watermark: everything a promoted replica
// holds was replicated to it and becomes committed by fiat, the
// classic bounded-by-the-replicated-HWM promotion rule. (The flag is
// cleared when replication from another leader arrives, or on a
// demotion — so a RE-promotion adopts again.)
func (n *ClusterNode) markLeading(pl *partLead, topic string, partition int) {
	if pl.leading.Load() {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.leading.Load() {
		return
	}
	hwm, err := n.b.HighWatermark(topic, partition)
	if err != nil {
		return
	}
	if hwm > pl.committed.Load() {
		pl.committed.Store(hwm)
	}
	pl.leading.Store(true)
}

func (n *ClusterNode) lastSeq(tp string, pid uint64) (prodSeq, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps, ok := n.seqs[tp][pid]
	return ps, ok
}

// noteBatch records a producer's batch — in the dedup table (if newer
// than what is known) and in the partition's bounded replication
// journal.
func (n *ClusterNode) noteBatch(tp string, bm batchMeta) {
	if bm.pid == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.seqs[tp]
	if !ok {
		m = make(map[uint64]prodSeq)
		n.seqs[tp] = m
	}
	if cur, ok := m[bm.pid]; !ok || bm.seq > cur.seq {
		m[bm.pid] = prodSeq{seq: bm.seq, base: bm.base, end: bm.end}
	}
	j := append(n.metas[tp], bm)
	if len(j) > metaJournalCap {
		j = j[len(j)-metaJournalCap:]
	}
	n.metas[tp] = j
}

// metasInRange returns the journal entries overlapping [from, to) — the
// dedup state shipped with a replicated chunk of that range.
func (n *ClusterNode) metasInRange(tp string, from, to int64) []batchMeta {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []batchMeta
	for _, bm := range n.metas[tp] {
		if bm.end > from && bm.base < to {
			out = append(out, bm)
		}
	}
	return out
}

// producePart is the record-typed produce-partition entry point; it
// encodes the batch into wire/disk frames once and delegates to the
// frame-blind primary path below.
func (n *ClusterNode) producePart(trace uint64, topic string, partition int, pid, seq uint64, recs []Record) (int, error) {
	return n.producePartFrames(trace, topic, partition, pid, seq, storage.AppendRecordFrames(nil, recs), len(recs))
}

// producePartFrames is the leader-side handling of a partitioned
// produce, operating on a validated frame chunk: dedup by (pid, seq),
// append the bytes verbatim, replicate the same bytes, ack once MinISR
// (shrunk to the live replica count) replicas hold them. The chunk is
// never re-encoded — the CRCs computed where the bytes entered the
// process travel to disk and to every follower untouched. Only the
// dedup-check + append runs under the partition lock; replication is
// pipelined across in-flight batches. trace is the producer request's
// trace ID, forwarded on every replicate so a follower's wire log shows
// the same ID the edge minted (0 = untraced).
func (n *ClusterNode) producePartFrames(trace uint64, topic string, partition int, pid, seq uint64, frames []byte, count int) (int, error) {
	ldr := n.leaderFor(topic, partition)
	if ldr == "" {
		return 0, ErrNoReplica
	}
	if ldr != n.cfg.ID {
		return 0, notLeaderError(ldr)
	}
	pl, err := n.lead(topic, partition)
	if err != nil {
		return 0, err
	}
	n.markLeading(pl, topic, partition)
	tp := tpKey(topic, partition)

	var base, end int64
	redrive := false
	pl.mu.Lock()
	if n.isJoining() { // deposed between the leadership check and here
		pl.mu.Unlock()
		return 0, notLeaderError("")
	}
	if pid != 0 {
		if ps, ok := n.lastSeq(tp, pid); ok && seq <= ps.seq {
			if seq < ps.seq || pl.committed.Load() >= ps.end {
				// Already appended and committed: a duplicate retry.
				pl.mu.Unlock()
				return count, nil
			}
			// Retry of the latest batch, appended but not yet committed
			// (e.g. the previous attempt failed its replica acks): the
			// records are in the log, so re-drive replication only.
			base, end, redrive = ps.base, ps.end, true
		}
	}
	if !redrive {
		base, err = n.b.producePartitionFrames(topic, partition, frames, count)
		if err != nil {
			pl.mu.Unlock()
			return 0, err
		}
		end = base + int64(count)
		n.noteBatch(tp, batchMeta{pid: pid, seq: seq, base: base, end: end})
	}
	pl.mu.Unlock()
	if redrive {
		// The retried batch is already in the log; re-read its exact
		// frames and drive replication again.
		var fn int
		if frames, fn, err = n.b.FetchFrames(topic, partition, base, int(end-base), nil); err != nil {
			return 0, err
		}
		if int64(fn) < end-base {
			return 0, fmt.Errorf("broker: redrive short read at %d", base)
		}
	}
	if err := n.replicateOut(trace, pl, topic, partition, base, end, frames); err != nil {
		return 0, err
	}
	n.noteStateDirty(topic, partition)
	return count, nil
}

// ---- per-follower replication sessions (group commit) ----

// replBatchMaxBytes caps the frame payload one session drain packs into
// a single multi-partition RPC — well under maxFrame, with headroom for
// headers and journal metas.
const replBatchMaxBytes = 8 << 20

// errReplSessionClosed fails chunks still parked on a session torn down
// by a demotion or shutdown before the follower acked them. It is a
// local error, not an answered rejection, and never feeds the failure
// detector.
var errReplSessionClosed = errors.New("broker: replication session closed")

// replItem is one appended chunk parked on a follower session, its
// producer blocked on done until the follower acks (or the session
// fails it). frames is a view into the producer request's connection
// buffer — valid only while that producer is parked — so the drainer
// must be completely done with the bytes before signaling done.
type replItem struct {
	trace     uint64
	pl        *partLead
	topic     string
	partition int
	base, end int64
	frames    []byte
	done      chan error
}

// replPipeline caps concurrent drains per follower session. One slot
// would force pure group commit — maximal coalescing, but every chunk
// arriving mid-RPC waits a full round trip it used to overlap; the
// extra slot keeps the old pipelining for the uncontended case while a
// queue that outruns both slots still coalesces into the next drain.
const replPipeline = 2

// replSess is one leader→follower replication session: a coalescing
// queue drained by the producing handlers themselves (combining lock —
// no dedicated goroutine, no handoff on the uncontended path). The
// queue is a mutex-guarded slice, not a channel: close must atomically
// cut off enqueues AND claim the backlog to fail it, which a buffered
// channel cannot do without racing senders (an item landing after the
// final drain would park its producer forever).
type replSess struct {
	id       string
	mu       sync.Mutex
	wait     []*replItem
	closed   bool
	inflight int // drains currently holding a send slot
}

// enqueue parks one chunk on the session, reporting false if the
// session is already closed (the caller fails the chunk locally).
func (s *replSess) enqueue(it *replItem) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wait = append(s.wait, it)
	return true
}

// tryAcquire claims a send slot; false means enough drains are already
// in flight — one of their holders will re-check the queue after
// releasing, so a refused caller may safely walk away.
func (s *replSess) tryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight >= replPipeline {
		return false
	}
	s.inflight++
	return true
}

func (s *replSess) release() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

func (s *replSess) empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.wait) == 0
}

// take claims up to max queued chunks in FIFO order, bounded also by
// total frame bytes so one drain can never overflow the wire frame
// limit (a lone oversized chunk still ships alone — produce requests
// are themselves frame-limited, so it fits).
func (s *replSess) take(max, maxBytes int) []*replItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	count, bytes := 0, 0
	for count < len(s.wait) && count < max {
		bytes += len(s.wait[count].frames)
		if count > 0 && bytes > maxBytes {
			break
		}
		count++
	}
	batch := s.wait[:count:count]
	s.wait = s.wait[count:]
	return batch
}

// close marks the session closed and returns whatever was still queued
// for the caller to fail. Idempotent; later calls return nothing.
func (s *replSess) close() []*replItem {
	s.mu.Lock()
	rest := s.wait
	s.wait = nil
	s.closed = true
	s.mu.Unlock()
	return rest
}

// session returns (creating if needed) the replication session to a
// follower. Sessions are created lazily on the first chunk routed to
// the follower and torn down on demotion or Close.
func (n *ClusterNode) session(id string) *replSess {
	n.mu.Lock()
	s, ok := n.sess[id]
	if !ok {
		s = &replSess{id: id}
		n.sess[id] = s
	}
	n.mu.Unlock()
	return s
}

// failSession closes a session and fails everything still queued — the
// demotion drain: parked producers get an answer (and retry against the
// current leader) instead of a stale batch being delivered under a new
// leader's reign.
func (n *ClusterNode) failSession(s *replSess) {
	for _, it := range s.close() {
		it.done <- errReplSessionClosed
	}
}

// closeSessions tears down every follower session. Called on demotion
// and when rejoining; an in-flight RPC still completes and answers its
// producers normally (the follower-side replication epoch fence is the
// backstop for batches already on the wire). Sessions are rebuilt
// lazily if leadership returns.
func (n *ClusterNode) closeSessions() {
	n.mu.Lock()
	sess := n.sess
	n.sess = make(map[string]*replSess)
	n.mu.Unlock()
	for _, s := range sess {
		n.failSession(s)
	}
}

// driveSession is the combining loop a producer runs after enqueueing:
// claim a send slot, take EVERYTHING queued (group commit — no linger
// timer, only what is already waiting coalesces), ship it as one batch,
// wake every parked producer in one pass, repeat while work remains. A
// caller refused a slot walks away: its item will ride a current slot
// holder's next round, because every holder re-checks the queue AFTER
// releasing — an enqueue that lost the slot race is therefore always
// visible to some holder's re-check, so no item strands.
func (n *ClusterNode) driveSession(s *replSess) {
	for {
		if !s.tryAcquire() {
			return
		}
		batch := s.take(n.cfg.ReplWindow, replBatchMaxBytes)
		if len(batch) > 0 {
			n.sendBatch(s, batch)
		}
		s.release()
		if s.empty() {
			return
		}
	}
}

// sendSection is one wire section of a drained batch plus the queue
// items it answers for: contiguous chunks of one partition merged in
// queue order.
type sendSection struct {
	sec   replSection
	pl    *partLead
	trace uint64
	items []*replItem
}

// buildSections folds a claimed batch into wire sections, merging an
// item into the previous section when it extends the same partition
// contiguously (prev.end == next.base) — this is the leader-side
// produce coalescing: chunks appended while the previous round was in
// flight ride the next round as one section. Merged frames are copied
// into a fresh buffer (each item's frames are only valid while ITS
// producer is parked); a lone item's frames ship as the view the
// producer handed in, copy-free.
func buildSections(batch []*replItem) []*sendSection {
	secs := make([]*sendSection, 0, len(batch))
	for _, it := range batch {
		if len(secs) > 0 {
			last := secs[len(secs)-1]
			tail := last.items[len(last.items)-1]
			if tail.topic == it.topic && tail.partition == it.partition && tail.end == it.base {
				last.items = append(last.items, it)
				continue
			}
		}
		secs = append(secs, &sendSection{pl: it.pl, trace: it.trace, items: []*replItem{it}})
	}
	for _, sec := range secs {
		first := sec.items[0]
		last := sec.items[len(sec.items)-1]
		sec.sec = replSection{
			topic:     first.topic,
			partition: first.partition,
			base:      first.base,
			count:     int(last.end - first.base),
		}
		if len(sec.items) == 1 {
			sec.sec.frames = first.frames
		} else {
			merged := make([]byte, 0, replItemsBytes(sec.items))
			for _, it := range sec.items {
				merged = append(merged, it.frames...)
			}
			sec.sec.frames = merged
		}
	}
	return secs
}

func replItemsBytes(items []*replItem) int {
	total := 0
	for _, it := range items {
		total += len(it.frames)
	}
	return total
}

// sendBatch ships one drained batch to the follower and answers every
// parked producer. Failure-detector bookkeeping happens here ONCE per
// drain — a coalesced RPC is one probe of the follower however many
// producers it carried, so a single timeout cannot burn through
// FailAfter on its own. Only transport failures feed the detector; an
// answered rejection (fencing, unknown topic, ...) proves the peer
// alive — a deposed leader must not "detect" the healthy majority as
// dead off its own fenced pushes.
func (n *ClusterNode) sendBatch(s *replSess, batch []*replItem) {
	secs := buildSections(batch)
	errs := make([]error, len(secs))
	cli, err := n.peerClient(s.id)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
	} else {
		errs = n.shipBatch(cli, s.id, secs)
	}
	var transportErr error
	var answered bool
	for _, e := range errs {
		switch {
		case e == nil:
			answered = true
		case isRemoteErr(e):
			answered = true
		default:
			transportErr = e
		}
	}
	switch {
	case transportErr != nil:
		if cli != nil {
			n.dropConn(s.id, cli) // transport failure: the conn is suspect
		}
		n.markFailure(s.id, transportErr)
	case answered:
		n.markAlive(s.id)
	}
	n.observeBatch(s.id, secs, len(batch))
	// The group-commit wakeup: one pass over the round's producers.
	// After a done send an item's frames belong to its producer again —
	// nothing may touch them past this point.
	for i, sec := range secs {
		for _, it := range sec.items {
			it.done <- errs[i]
		}
	}
}

// shipBatch delivers the sections to one follower: a single replicateMF
// round-trip against a batch-capable peer (with per-section
// backfill-converge repairs when the batched ack reports a section
// short), or sequential per-partition replicate calls against an older
// peer — the resulting logs are identical either way, only the
// round-trip count differs. Returns one error slot per section.
func (n *ClusterNode) shipBatch(cli *Client, id string, secs []*sendSection) []error {
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	errs := make([]error, len(secs))
	if !cli.supportsBatchReplicate() {
		for i, sec := range secs {
			end := sec.sec.base + int64(sec.sec.count)
			errs[i] = n.pushSection(cli, id, epoch, sec.pl, sec.trace, sec.sec.topic, sec.sec.partition, sec.sec.base, end, sec.sec.frames)
		}
		return errs
	}
	wire := make([]replSection, len(secs))
	for i, sec := range secs {
		sec.sec.committed = sec.pl.committed.Load()
		tp := tpKey(sec.sec.topic, sec.sec.partition)
		sec.sec.metas = n.metasInRange(tp, sec.sec.base, sec.sec.base+int64(sec.sec.count))
		wire[i] = sec.sec
	}
	// One trace can ride the one RPC; the first section's producer wins.
	hwms, err := cli.replicateMF(secs[0].trace, epoch, n.cfg.ID, wire)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i, sec := range secs {
		end := sec.sec.base + int64(sec.sec.count)
		tp := tpKey(sec.sec.topic, sec.sec.partition)
		n.noteFollowerHWM(tp, id, hwms[i])
		if hwms[i] < end {
			errs[i] = n.convergeSection(cli, id, epoch, sec.pl, sec.trace, sec.sec.topic, sec.sec.partition, hwms[i], end)
		}
	}
	return errs
}

// convergeSection repairs one short-acked section of a batch: re-read
// the missing range from the local log and drive the per-partition
// converge loop from the follower's acked watermark.
func (n *ClusterNode) convergeSection(cli *Client, id string, epoch int64, pl *partLead, trace uint64, topic string, partition int, hwm, end int64) error {
	fill, fn, err := n.b.FetchFrames(topic, partition, hwm, int(end-hwm), nil)
	if err != nil {
		return err
	}
	if int64(fn) < end-hwm {
		return fmt.Errorf("broker: backfill short read at %d", hwm)
	}
	return n.pushSection(cli, id, epoch, pl, trace, topic, partition, hwm, end, fill)
}

// pushSection replicates one partition's chunk covering [base, end) to
// one follower, backfilling from the follower's own watermark when it
// is behind (restart, missed round, or interleaved batches) — the
// backfill bytes are read straight out of the local segment chunks,
// never decoded into records. Each chunk ships the journal entries
// covering its range, so the follower's dedup table tracks every
// producer whose records it receives, plus the leader's committed
// watermark, which the follower persists as its restart truncation
// point.
func (n *ClusterNode) pushSection(cli *Client, id string, epoch int64, pl *partLead, trace uint64, topic string, partition int, base, end int64, frames []byte) error {
	tp := tpKey(topic, partition)
	count := int(end - base)
	for tries := 0; tries < 8; tries++ {
		metas := n.metasInRange(tp, base, end)
		hwm, err := cli.replicate(trace, epoch, n.cfg.ID, topic, partition, base, pl.committed.Load(), metas, frames, count)
		if err != nil {
			return err
		}
		n.noteFollowerHWM(tp, id, hwm)
		if hwm >= end {
			return nil
		}
		fill, fn, err := n.b.FetchFrames(topic, partition, hwm, int(end-hwm), nil)
		if err != nil {
			return err
		}
		if int64(fn) < end-hwm {
			return fmt.Errorf("broker: backfill short read at %d", hwm)
		}
		base, frames, count = hwm, fill, fn
	}
	return fmt.Errorf("broker: replication to %s did not converge", id)
}

// observeBatch records one drain's coalescing metrics: distinct
// partition sections and payload bytes per batched RPC, and the
// producers woken by its single ack pass. A registry lock per drain is
// noise next to the RPC the drain just paid for.
func (n *ClusterNode) observeBatch(id string, secs []*sendSection, woken int) {
	reg := n.reg.Load()
	if reg == nil {
		return
	}
	lbl := metrics.Labels{"follower": id}
	bytes := 0
	for _, sec := range secs {
		bytes += len(sec.sec.frames)
	}
	reg.Histogram("broker_replicate_batch_partitions", "partition sections coalesced into one replicate batch", lbl).Observe(float64(len(secs)))
	reg.Histogram("broker_replicate_batch_bytes", "frame payload bytes shipped in one replicate batch", lbl).Observe(float64(bytes))
	reg.Counter("broker_replicate_group_wakeups_total", "producers woken by batched replication acks", lbl).Add(float64(woken))
	reg.Counter("broker_replicate_batches_total", "replication batches drained", lbl).Inc()
}

// replicateOut parks the frame chunk covering [base, end) on the
// session of every live follower replica and waits for the acks, then
// advances the committed watermark once enough replicas hold it. The
// enqueue is what buys the overlap: chunks for ALL partitions led to
// one follower coalesce into that session's next drain, so the fixed
// sync-ack cost is paid per drain, not per chunk. The bytes still ship
// exactly as appended locally; followers re-verify CRCs at their wire
// decode.
func (n *ClusterNode) replicateOut(trace uint64, pl *partLead, topic string, partition int, base, end int64, frames []byte) error {
	reps := n.replicas(topic, partition)
	acks, live := 1, 1
	var firstErr error
	items := make([]*replItem, 0, len(reps)-1)
	sessions := make([]*replSess, 0, len(reps)-1)
	for _, id := range reps {
		if id == n.cfg.ID || n.isDead(id) {
			continue
		}
		live++
		it := &replItem{
			trace: trace, pl: pl, topic: topic, partition: partition,
			base: base, end: end, frames: frames, done: make(chan error, 1),
		}
		s := n.session(id)
		if !s.enqueue(it) {
			if firstErr == nil {
				firstErr = errReplSessionClosed
			}
			continue
		}
		items = append(items, it)
		sessions = append(sessions, s)
	}
	// Yield once between enqueue and drive: producers that arrived in
	// the same instant (the routing client fans partitions out
	// concurrently) get to append and enqueue before the first of them
	// claims the queue, so their chunks ship as ONE batch instead of
	// pipelined singletons. This is the group-commit formation point —
	// a scheduling hint, not a linger timer: an idle session still
	// ships immediately after one scheduler pass.
	if len(items) > 0 {
		runtime.Gosched()
	}
	// Drive the sessions we just fed: the last inline (for the common
	// RF2 single-follower case this is the whole push, zero handoffs),
	// the rest concurrently so multi-follower fan-out still overlaps.
	for i, s := range sessions {
		if i == len(sessions)-1 {
			n.driveSession(s)
		} else {
			go n.driveSession(s)
		}
	}
	for _, it := range items {
		if err := <-it.done; err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		acks++
	}
	need := n.cfg.MinISR
	if live < need {
		need = live
	}
	if acks < need {
		return fmt.Errorf("%w: %d/%d acked: %v", ErrUnderReplicated, acks, need, firstErr)
	}
	for {
		cur := pl.committed.Load()
		if end <= cur || pl.committed.CompareAndSwap(cur, end) {
			break
		}
	}
	return nil
}

// noteFollowerHWM records the watermark a follower acked on its last
// replicate — the source of the per-follower replication-lag gauges.
func (n *ClusterNode) noteFollowerHWM(tp, id string, hwm int64) {
	n.mu.Lock()
	m, ok := n.followHWM[tp]
	if !ok {
		m = make(map[string]int64)
		n.followHWM[tp] = m
	}
	if hwm > m[id] {
		m[id] = hwm
	}
	n.mu.Unlock()
}

// ---- observability ----

// Ready reports whether the node can serve traffic: it must have
// finished (re)joining and every partition it currently leads must have
// at least MinISR live replicas — the ISR-aware readiness the admin
// /healthz endpoint exposes so load balancers drain a degraded leader.
func (n *ClusterNode) Ready() error {
	if n.isJoining() {
		return errors.New("joining: not yet synced and announced")
	}
	for _, t := range n.b.TopicsSorted() {
		parts, err := n.b.Partitions(t)
		if err != nil {
			continue
		}
		for p := 0; p < parts; p++ {
			if n.leaderFor(t, p) != n.cfg.ID {
				continue
			}
			if live := n.liveReplicas(t, p); live < n.cfg.MinISR {
				return fmt.Errorf("partition %s: %d/%d replicas live", tpKey(t, p), live, n.cfg.MinISR)
			}
		}
	}
	return nil
}

// liveReplicas counts the partition's replicas alive in this node's
// view (counting this node itself).
func (n *ClusterNode) liveReplicas(topic string, partition int) int {
	reps := n.replicas(topic, partition)
	n.mu.Lock()
	defer n.mu.Unlock()
	live := 0
	for _, id := range reps {
		if id == n.cfg.ID || !n.view[id].Dead {
			live++
		}
	}
	return live
}

// RegisterMetrics publishes the node's membership and per-partition
// gauges on reg, recomputed at scrape time: peer liveness and
// incarnations, leadership epoch, joining state, committed watermarks,
// ISR sizes, leadership flags, and — on partitions this node leads —
// per-follower replication lag in records.
func (n *ClusterNode) RegisterMetrics(reg *metrics.Registry) {
	n.reg.Store(reg)
	reg.OnScrape(func() { n.scrapeInto(reg) })
}

func (n *ClusterNode) scrapeInto(reg *metrics.Registry) {
	n.mu.Lock()
	epoch := n.epoch
	joining := n.joining
	view := make(map[string]PeerStatus, len(n.view))
	for id, st := range n.view {
		view[id] = st
	}
	follow := make(map[string]map[string]int64, len(n.followHWM))
	for tp, m := range n.followHWM {
		mm := make(map[string]int64, len(m))
		for id, v := range m {
			mm[id] = v
		}
		follow[tp] = mm
	}
	n.mu.Unlock()

	reg.Gauge("broker_cluster_epoch", "cluster leadership epoch in this node's view", nil).Set(float64(epoch))
	joinG := 0.0
	if joining {
		joinG = 1
	}
	reg.Gauge("broker_joining", "1 while this node is (re)joining and refusing leadership", nil).Set(joinG)
	for _, id := range n.members {
		st := view[id]
		alive := 1.0
		if st.Dead {
			alive = 0
		}
		reg.Gauge("broker_peer_alive", "1 when the peer is alive in this node's view", metrics.Labels{"peer": id}).Set(alive)
		reg.Gauge("broker_peer_incarnation", "peer status version (SWIM incarnation)", metrics.Labels{"peer": id}).Set(float64(st.Ver))
	}

	// Leadership moves between nodes, so stale lag series from a demoted
	// leader are cleared and the family rebuilt from live state.
	reg.RemoveSeries("broker_replication_lag_records", metrics.Labels{})
	for _, t := range n.b.TopicsSorted() {
		parts, err := n.b.Partitions(t)
		if err != nil {
			continue
		}
		for p := 0; p < parts; p++ {
			lbl := metrics.Labels{"topic": t, "partition": strconv.Itoa(p)}
			tp := tpKey(t, p)
			leads := 0.0
			isLeader := n.leaderFor(t, p) == n.cfg.ID
			if isLeader {
				leads = 1
			}
			reg.Gauge("broker_partition_leader", "1 when this node leads the partition", lbl).Set(leads)
			reg.Gauge("broker_partition_isr_size", "live replicas of the partition (counting this node)", lbl).Set(float64(n.liveReplicas(t, p)))
			n.mu.Lock()
			committed := n.knownCommittedLocked(tp)
			n.mu.Unlock()
			reg.Gauge("broker_partition_committed_offset", "committed (replicated + acked) watermark known here", lbl).Set(float64(committed))
			if !isLeader {
				continue
			}
			end, err := n.b.HighWatermark(t, p)
			if err != nil {
				continue
			}
			for id, hwm := range follow[tp] {
				lag := end - hwm
				if lag < 0 {
					lag = 0
				}
				fl := metrics.Labels{"topic": t, "partition": strconv.Itoa(p), "follower": id}
				reg.Gauge("broker_replication_lag_records", "records the follower trails this leader's log end by", fl).Set(float64(lag))
			}
		}
	}
}

// produceRouted handles a legacy key-routed produce arriving at any
// cluster node: it partitions locally and forwards each batch to its
// partition leader, so old producers keep working pointed at any one
// broker. Without a producer id this path is at-least-once under
// retries; ClusterClient's partitioned produce is the exactly-once one.
func (n *ClusterNode) produceRouted(trace uint64, topicName string, recs []Record) (int, error) {
	t, err := n.b.topic(topicName)
	if err != nil {
		return 0, err
	}
	byPart := make([][]Record, len(t.partitions))
	for _, r := range recs {
		p := t.partitionFor(r.Key)
		byPart[p] = append(byPart[p], r)
	}
	total := 0
	for p, batch := range byPart {
		if len(batch) == 0 {
			continue
		}
		ldr := n.leaderFor(topicName, p)
		switch {
		case ldr == "":
			return total, ErrNoReplica
		case ldr == n.cfg.ID:
			if _, err := n.producePart(trace, topicName, p, 0, 0, batch); err != nil {
				return total, err
			}
		default:
			cli, err := n.peerClient(ldr)
			if err != nil {
				return total, err
			}
			if _, err := cli.ProducePartition(topicName, p, 0, 0, batch); err != nil {
				if !isRemoteErr(err) {
					n.dropConn(ldr, cli)
				}
				return total, err
			}
		}
		total += len(batch)
	}
	return total, nil
}

// produceRoutedFrames is the frames-dialect routed produce: frames are
// split at their structural boundaries by the key read in place, and
// each partition's chunk travels to its leader verbatim — locally as a
// frame append, remotely over the frame-blind produce-partition op.
func (n *ClusterNode) produceRoutedFrames(trace uint64, topicName string, frames []byte, count int) (int, error) {
	t, err := n.b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if len(t.partitions) == 1 {
		return n.routeChunk(trace, topicName, 0, frames, count)
	}
	byPart := make([][]byte, len(t.partitions))
	counts := make([]int, len(t.partitions))
	it := storage.IterFrames(frames)
	for it.Next() {
		p := t.partitionForBytes(storage.FrameKey(it.Payload()))
		byPart[p] = append(byPart[p], it.Frame()...)
		counts[p]++
	}
	if err := it.Err(); err != nil {
		return 0, err
	}
	total := 0
	for p := range byPart {
		if counts[p] == 0 {
			continue
		}
		if _, err := n.routeChunk(trace, topicName, p, byPart[p], counts[p]); err != nil {
			return total, err
		}
		total += counts[p]
	}
	return total, nil
}

// routeChunk delivers one partition's frame chunk to its leader.
func (n *ClusterNode) routeChunk(trace uint64, topic string, p int, frames []byte, count int) (int, error) {
	ldr := n.leaderFor(topic, p)
	switch {
	case ldr == "":
		return 0, ErrNoReplica
	case ldr == n.cfg.ID:
		return n.producePartFrames(trace, topic, p, 0, 0, frames, count)
	default:
		cli, err := n.peerClient(ldr)
		if err != nil {
			return 0, err
		}
		nn, err := cli.producePartitionFrames(topic, p, 0, 0, frames, count)
		if err != nil && !isRemoteErr(err) {
			n.dropConn(ldr, cli)
		}
		return nn, err
	}
}

// fetch serves a consumer read: leaders only, and only up to the
// committed watermark, so no consumer can observe records a failover
// might lose.
func (n *ClusterNode) fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	pl, err := n.leaderState(topic, partition)
	if err != nil {
		return nil, err
	}
	committed := pl.committed.Load()
	if offset >= committed {
		if offset < 0 {
			return nil, ErrOffsetOutOfRange
		}
		return nil, nil
	}
	if max <= 0 {
		max = 1024
	}
	if int64(max) > committed-offset {
		max = int(committed - offset)
	}
	return n.b.Fetch(topic, partition, offset, max)
}

// fetchFrames is fetch for a frames-dialect consumer: the committed
// clamp is identical, but the payload is appended onto buf straight
// from the log's segment chunks — no record is materialized.
func (n *ClusterNode) fetchFrames(topic string, partition int, offset int64, max int, buf []byte) ([]byte, int, error) {
	pl, err := n.leaderState(topic, partition)
	if err != nil {
		return buf, 0, err
	}
	committed := pl.committed.Load()
	if offset >= committed {
		if offset < 0 {
			return buf, 0, ErrOffsetOutOfRange
		}
		return buf, 0, nil
	}
	if max <= 0 {
		max = 1024
	}
	if int64(max) > committed-offset {
		max = int(committed - offset)
	}
	return n.b.FetchFrames(topic, partition, offset, max, buf)
}

// hwm serves the consumer-visible high watermark: the committed offset.
func (n *ClusterNode) hwm(topic string, partition int) (int64, error) {
	pl, err := n.leaderState(topic, partition)
	if err != nil {
		return 0, err
	}
	return pl.committed.Load(), nil
}

// leaderState checks this node leads the partition and returns its
// initialized leader state.
func (n *ClusterNode) leaderState(topic string, partition int) (*partLead, error) {
	if parts, err := n.b.Partitions(topic); err != nil {
		return nil, err
	} else if partition < 0 || partition >= parts {
		return nil, ErrBadPartition
	}
	ldr := n.leaderFor(topic, partition)
	if ldr == "" {
		return nil, ErrNoReplica
	}
	if ldr != n.cfg.ID {
		return nil, notLeaderError(ldr)
	}
	pl, err := n.lead(topic, partition)
	if err != nil {
		return nil, err
	}
	n.markLeading(pl, topic, partition)
	return pl, nil
}

// knownCommittedLocked returns the highest committed watermark this
// node knows for a partition — its own leader state or the last value
// a leader shipped to it (n.mu held).
func (n *ClusterNode) knownCommittedLocked(tp string) int64 {
	c := n.remoteHWM[tp]
	if pl, ok := n.leads[tp]; ok && pl.init.Load() {
		if v := pl.committed.Load(); v > c {
			c = v
		}
	}
	return c
}

// replicaCommitted is the committed watermark this node vouches for to
// a catching-up peer. When this node currently LEADS the partition,
// that is its (promotion-adopted) leader watermark — a freshly
// promoted interim leader must answer with everything it holds, not
// the lagging value the dead leader last shipped it. Otherwise it is
// the best locally-known committed value.
func (n *ClusterNode) replicaCommitted(topic string, partition int) int64 {
	if n.leaderFor(topic, partition) == n.cfg.ID {
		if pl, err := n.lead(topic, partition); err == nil {
			n.markLeading(pl, topic, partition)
			return pl.committed.Load()
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.knownCommittedLocked(tpKey(topic, partition))
}

// replicaFetch serves committed records to a fellow cluster member
// regardless of leadership — the pull side of rejoin catch-up and of
// the leadership-takeover handshake, where the interim leader has
// already deferred and would answer a normal fetch with NotLeader.
func (n *ClusterNode) replicaFetch(sender, topic string, partition int, offset int64, max int) ([]Record, error) {
	if _, ok := n.cfg.Peers[sender]; !ok {
		return nil, fmt.Errorf("broker: replica fetch from non-member %q", sender)
	}
	if parts, err := n.b.Partitions(topic); err != nil {
		return nil, err
	} else if partition < 0 || partition >= parts {
		return nil, ErrBadPartition
	}
	committed := n.replicaCommitted(topic, partition)
	if offset >= committed {
		if offset < 0 {
			return nil, ErrOffsetOutOfRange
		}
		return nil, nil
	}
	if max <= 0 {
		max = 1024
	}
	if int64(max) > committed-offset {
		max = int(committed - offset)
	}
	return n.b.Fetch(topic, partition, offset, max)
}

// replicaFetchFrames is replicaFetch over the binary rfetch framing:
// catch-up bytes ship verbatim from the serving replica's segments,
// CRC-checked by the puller at its wire decode before they are
// re-appended.
func (n *ClusterNode) replicaFetchFrames(sender, topic string, partition int, offset int64, max int, buf []byte) ([]byte, int, error) {
	if _, ok := n.cfg.Peers[sender]; !ok {
		return buf, 0, fmt.Errorf("broker: replica fetch from non-member %q", sender)
	}
	if parts, err := n.b.Partitions(topic); err != nil {
		return buf, 0, err
	} else if partition < 0 || partition >= parts {
		return buf, 0, ErrBadPartition
	}
	committed := n.replicaCommitted(topic, partition)
	if offset >= committed {
		if offset < 0 {
			return buf, 0, ErrOffsetOutOfRange
		}
		return buf, 0, nil
	}
	if max <= 0 {
		max = 1024
	}
	if int64(max) > committed-offset {
		max = int(committed - offset)
	}
	return n.b.FetchFrames(topic, partition, offset, max, buf)
}

// replicaHWM answers a member's query for this node's committed
// watermark of a partition, leadership-independent.
func (n *ClusterNode) replicaHWM(sender, topic string, partition int) (int64, error) {
	if _, ok := n.cfg.Peers[sender]; !ok {
		return 0, fmt.Errorf("broker: replica hwm from non-member %q", sender)
	}
	if parts, err := n.b.Partitions(topic); err != nil {
		return 0, err
	} else if partition < 0 || partition >= parts {
		return 0, ErrBadPartition
	}
	return n.replicaCommitted(topic, partition), nil
}

// applyReplicate is the record-typed replicate entry point (old-dialect
// leaders); it encodes the batch into frames once and delegates.
func (n *ClusterNode) applyReplicate(epoch int64, sender, topic string, partition int, base, committed int64, metas []batchMeta, recs []Record) (int64, error) {
	return n.applyReplicateFrames(epoch, sender, topic, partition, base, committed, metas, storage.AppendRecordFrames(nil, recs), len(recs))
}

// applyReplicateFrames is the follower-side handling of a replicated
// frame chunk — a one-section batch through the group-commit apply
// path, so both dialects share the same fencing and bookkeeping.
func (n *ClusterNode) applyReplicateFrames(epoch int64, sender, topic string, partition int, base, committed int64, metas []batchMeta, frames []byte, count int) (int64, error) {
	hwms, err := n.applyReplicateBatch(epoch, sender, []replSection{{
		topic: topic, partition: partition, base: base,
		committed: committed, metas: metas, frames: frames, count: count,
	}})
	if err != nil {
		return 0, err
	}
	return hwms[0], nil
}

// fenceReplicate runs the follower-side admission checks shared by both
// replicate dialects: a (re)joining node and a deposed sender refuse
// replication, and every partition records the highest epoch an inbound
// replicate has carried — a chunk at a LOWER epoch than that is fenced
// off, so a stale session that went quiet before a takeover cannot
// deliver a late batch after the new leader (whose announcement bumped
// the epoch) has started shipping. All rejections are answered errors:
// the deposed leader learns it is fenced without poisoning its failure
// detector.
func (n *ClusterNode) fenceReplicate(epoch int64, sender string, tps []string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.joining {
		return fmt.Errorf("broker: %s is rejoining; replication refused until synced", n.cfg.ID)
	}
	if n.view[sender].Dead {
		return fmt.Errorf("broker: replicate from %s rejected: deposed in epoch %d", sender, n.epoch)
	}
	for _, tp := range tps {
		if have := n.replEpochs[tp]; epoch < have {
			return fmt.Errorf("broker: replicate %s from %s fenced: epoch %d < %d", tp, sender, epoch, have)
		}
	}
	// Admitted: record the epochs only now, so one stale section cannot
	// ratchet its siblings before the whole batch is judged.
	for _, tp := range tps {
		if epoch > n.replEpochs[tp] {
			n.replEpochs[tp] = epoch
		}
	}
	if epoch > n.epoch {
		n.epoch = epoch
	}
	return nil
}

// applyReplicateBatch is the follower side of a coalesced replicate:
// one fence decision for the whole batch, then every section lands in
// its log through the same idempotent gap-safe append a per-partition
// replicate uses — a mixed-version replica pair produces identical
// logs, only the RPC count differs. The answer is one high watermark
// per section; a failing section fails the whole batch (the leader
// re-drives per item).
func (n *ClusterNode) applyReplicateBatch(epoch int64, sender string, secs []replSection) ([]int64, error) {
	if len(secs) == 0 {
		return nil, errors.New("broker: empty replicate batch")
	}
	tps := make([]string, len(secs))
	for i := range secs {
		tps[i] = tpKey(secs[i].topic, secs[i].partition)
	}
	if err := n.fenceReplicate(epoch, sender, tps); err != nil {
		return nil, err
	}
	for i := range secs {
		reps := n.replicas(secs[i].topic, secs[i].partition)
		isReplica := false
		for _, id := range reps {
			if id == sender {
				isReplica = true
				break
			}
		}
		if !isReplica {
			return nil, fmt.Errorf("broker: %s is not a replica of %s", sender, tps[i])
		}
	}
	n.markAlive(sender)
	// Replication from a live peer proves we lead none of these
	// partitions: a later RE-promotion must re-adopt the watermark.
	n.mu.Lock()
	for _, tp := range tps {
		if pl, ok := n.leads[tp]; ok {
			pl.leading.Store(false)
		}
	}
	n.mu.Unlock()
	hwms, err := n.b.replicateAppendSections(secs)
	if err != nil {
		return nil, err
	}
	for i := range secs {
		s := &secs[i]
		hwm := hwms[i]
		tp := tps[i]
		// Adopt dedup state only for batches the local log now fully
		// holds: a gap-skipped chunk (hwm < base) must not leave seq
		// entries for records that are not here, or a promoted follower
		// would answer a producer retry as a duplicate without having
		// the data.
		for _, bm := range s.metas {
			if bm.end <= hwm {
				n.noteBatch(tp, bm)
			}
		}
		// Track the leader's committed watermark, clamped to what we
		// hold: it is this replica's restart truncation point.
		committed := s.committed
		if committed > hwm {
			committed = hwm
		}
		n.mu.Lock()
		advanced := committed > n.remoteHWM[tp]
		if advanced {
			n.remoteHWM[tp] = committed
		}
		n.mu.Unlock()
		if advanced || s.count > 0 {
			n.noteStateDirty(s.topic, s.partition)
		}
	}
	return hwms, nil
}

// ---- consumer-group commits ----

// commitGroup is the leader-side handling of a consumer-group commit:
// store + persist locally, then replicate to every live follower
// replica, acking under the same shrunk-MinISR rule as produce. Routing
// commits through the partition leader (instead of best-effort fan-out
// to all members) makes Committed exact: the leader always answers with
// the newest acked offset, and a failover inherits it from a replica.
func (n *ClusterNode) commitGroup(group, topic string, partition int, offset int64) error {
	if _, err := n.leaderState(topic, partition); err != nil {
		return err
	}
	// One commit round at a time per partition: the local apply and the
	// follower fan-out happen in the same order, so two racing commits
	// (e.g. a rewind racing a stale forward commit) cannot leave leader
	// and follower tables permanently disagreeing.
	round := n.commitLock(tpKey(topic, partition))
	round.Lock()
	defer round.Unlock()
	if err := n.b.Commit(group, topic, partition, offset); err != nil {
		return err
	}
	reps := n.replicas(topic, partition)
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	acks, live := 1, 1
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range reps {
		if id == n.cfg.ID || n.isDead(id) {
			continue
		}
		live++
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			cli, err := n.peerClient(id)
			if err == nil {
				err = cli.commitRep(epoch, n.cfg.ID, group, topic, partition, offset)
			}
			if err != nil {
				if isRemoteErr(err) {
					n.markAlive(id)
				} else {
					n.markFailure(id, err)
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			n.markAlive(id)
			mu.Lock()
			acks++
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	need := n.cfg.MinISR
	if live < need {
		need = live
	}
	if acks < need {
		return fmt.Errorf("%w: commit %d/%d acked: %v", ErrUnderReplicated, acks, need, firstErr)
	}
	return nil
}

// commitLock returns the per-partition mutex serializing group-commit
// rounds.
func (n *ClusterNode) commitLock(tp string) *sync.Mutex {
	n.mu.Lock()
	defer n.mu.Unlock()
	mu, ok := n.commitMus[tp]
	if !ok {
		mu = &sync.Mutex{}
		n.commitMus[tp] = mu
	}
	return mu
}

// committedGroup answers a Committed query at the partition leader.
func (n *ClusterNode) committedGroup(group, topic string, partition int) (int64, error) {
	if _, err := n.leaderState(topic, partition); err != nil {
		return 0, err
	}
	return n.b.Committed(group, topic, partition)
}

// applyGroupCommit is the follower side of a replicated group commit.
func (n *ClusterNode) applyGroupCommit(epoch int64, sender, group, topic string, partition int, offset int64) error {
	n.mu.Lock()
	if n.joining {
		n.mu.Unlock()
		return fmt.Errorf("broker: %s is rejoining; commit replication refused", n.cfg.ID)
	}
	if n.view[sender].Dead {
		ep := n.epoch
		n.mu.Unlock()
		return fmt.Errorf("broker: commit from %s rejected: deposed in epoch %d", sender, ep)
	}
	if epoch > n.epoch {
		n.epoch = epoch
	}
	n.mu.Unlock()
	n.markAlive(sender)
	// b.Commit persists groups.json before returning, so the replicated
	// offset is durable here once acked.
	return n.b.Commit(group, topic, partition, offset)
}

// ---- persisted cluster state ----

// tpRef names one partition in the dirty-state set.
type tpRef struct {
	topic     string
	partition int
}

// noteStateDirty schedules a partition's cluster state for the next
// write-behind flush: the hot data path (produce acks, replicated
// appends) marks instead of rewriting state.json per batch, so a burst
// of watermark advances coalesces into one write per StateFlushEvery.
// Under SyncEvery "always" the write happens inline — there the acked
// batch must be recoverable, which requires the committed watermark on
// disk before the ack returns. Control-plane transitions (rejoin
// truncation, takeover completion) keep calling saveClusterState
// directly: they are rare and their persisted state gates correctness
// of the next restart.
func (n *ClusterNode) noteStateDirty(topic string, partition int) {
	if n.b.Dir() == "" {
		return
	}
	if n.b.syncAlways() {
		n.saveClusterState(topic, partition)
		return
	}
	n.stateMu.Lock()
	n.stateDirty[tpKey(topic, partition)] = tpRef{topic: topic, partition: partition}
	n.stateMu.Unlock()
}

// flushDirtyState writes every partition state marked since the last
// flush.
func (n *ClusterNode) flushDirtyState() {
	n.stateMu.Lock()
	if len(n.stateDirty) == 0 {
		n.stateMu.Unlock()
		return
	}
	dirty := n.stateDirty
	n.stateDirty = make(map[string]tpRef)
	n.stateMu.Unlock()
	for _, ref := range dirty {
		n.saveClusterState(ref.topic, ref.partition)
	}
}

// stateFlushLoop drains the dirty set every StateFlushEvery, and once
// more on shutdown so a clean Close loses no watermark advance.
func (n *ClusterNode) stateFlushLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.StateFlushEvery)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			n.flushDirtyState()
			return
		case <-t.C:
			n.flushDirtyState()
		}
	}
}

func (n *ClusterNode) saver(tp string) *stateSaver {
	n.mu.Lock()
	defer n.mu.Unlock()
	sv, ok := n.savers[tp]
	if !ok {
		sv = &stateSaver{}
		n.savers[tp] = sv
	}
	return sv
}

// saveClusterState persists one partition's cluster state (committed
// watermark, producer dedup table + journal, group offsets) next to
// its segments. No-op on an in-memory broker. Saves of one partition
// are serialized and always snapshot the freshest state, so a slow
// older write cannot clobber a newer one.
func (n *ClusterNode) saveClusterState(topic string, partition int) {
	dir := n.b.PartitionDir(topic, partition)
	if dir == "" {
		return
	}
	tp := tpKey(topic, partition)
	sv := n.saver(tp)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	n.mu.Lock()
	committed := n.remoteHWM[tp]
	if pl, ok := n.leads[tp]; ok && pl.init.Load() {
		if c := pl.committed.Load(); c > committed {
			committed = c
		}
	}
	st := partitionState{Committed: committed}
	for pid, ps := range n.seqs[tp] {
		st.Producers = append(st.Producers, producerEntry{PID: pid, Seq: ps.seq, Base: ps.base, End: ps.end})
	}
	for _, bm := range n.metas[tp] {
		st.Journal = append(st.Journal, producerEntry{PID: bm.pid, Seq: bm.seq, Base: bm.base, End: bm.end})
	}
	n.mu.Unlock()
	sort.Slice(st.Producers, func(i, j int) bool { return st.Producers[i].PID < st.Producers[j].PID })
	if err := storage.SaveJSON(n.statePath(topic, partition), &st, n.b.syncAlways()); err != nil {
		n.cfg.Logf("cluster %s: save state %s: %v", n.cfg.ID, tp, err)
	}
}
