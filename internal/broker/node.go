package broker

// ClusterNode turns one broker process into a member of a multi-broker
// cluster. The cluster has no external coordinator: every node is
// started with the same static id→addr member map, placement is a pure
// function of it (cluster.go), and each node maintains its own liveness
// view via heartbeats + gossip, promoting the next replica of a
// partition the moment its leader is observed dead.
//
// Data-plane roles per partition:
//
//   - the LEADER accepts produce, appends locally, then streams the
//     appended chunk to every live follower over the binary `replicate`
//     op, acking the producer only once MinISR replicas (counting
//     itself, shrunk to the live replica count) hold the records. The
//     offset acked that way is the partition's COMMITTED watermark; the
//     leader serves fetches only up to it, so consumers can never
//     observe records that a failover could lose.
//   - a FOLLOWER applies replicated chunks at their exact base offset
//     (idempotently: duplicate prefixes are trimmed, gaps answered with
//     the local watermark so the leader backfills) and tracks producer
//     sequence numbers, so after a promotion it can deduplicate a
//     producer's retry of a batch the dead leader already replicated.
//
// Failure model: fail-stop. A node marked dead stays dead for the
// cluster's lifetime (rejoin requires restarting the cluster); this
// keeps fencing trivial — replicas reject replication from deposed
// leaders by their dead set — at the price of no automated re-entry.
// The no-loss guarantee holds when MinISR == Replicas; with fewer
// required acks, records on the minority side of a failover can be
// lost, exactly as in Kafka with acks < all.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NodeConfig configures one broker's membership in a cluster.
type NodeConfig struct {
	// ID is this node's member id; it must be a key of Peers.
	ID string
	// Peers maps every member id (including this node's) to its
	// advertised broker address.
	Peers map[string]string
	// Replicas is the replication factor for every partition (default
	// 2, capped at the member count).
	Replicas int
	// MinISR is the number of replicas (counting the leader) that must
	// hold a produced batch before it is acked and becomes fetchable.
	// It shrinks to the live replica count, so a partition stays
	// writable after failures (default Replicas).
	MinISR int
	// HeartbeatEvery is the peer probe interval (default 250ms).
	HeartbeatEvery time.Duration
	// FailAfter is the number of consecutive failed probes (heartbeats
	// or replication calls) after which a peer is declared dead
	// (default 3).
	FailAfter int
	// StartupGrace is how long failures against a peer that was NEVER
	// seen alive are forgiven (default 10s) — cluster members boot at
	// different times, and a node marked dead stays dead.
	StartupGrace time.Duration
	// Logf, when set, receives membership and replication log lines.
	Logf func(format string, args ...any)
}

// prodSeq is the last applied produce of one producer on one partition,
// kept on every replica so a post-failover retry deduplicates.
type prodSeq struct {
	seq  uint64
	base int64
	end  int64
}

// batchMeta identifies one idempotent producer batch inside a partition
// log. Replicas keep a bounded journal of recent batches and ship the
// entries covering each replicated chunk alongside it, so a follower
// learns the dedup state for EVERY producer whose records reach it —
// including records that arrived inside another producer's backfill —
// and a promotion never forgets a batch it physically holds.
type batchMeta struct {
	pid  uint64
	seq  uint64
	base int64
	end  int64
}

// metaJournalCap bounds the per-partition batch journal. Backfills
// deeper than this many batches lose dedup coverage for the oldest
// entries, which only matters for a follower that lagged that far
// without being declared dead.
const metaJournalCap = 256

// partLead is the leader-side state of one partition: the committed
// watermark and a mutex serializing produce+replicate rounds.
type partLead struct {
	mu        sync.Mutex // serializes append→replicate→commit rounds
	committed atomic.Int64
	init      atomic.Bool
}

// ClusterNode is one broker's cluster brain, attached to its TCP server.
type ClusterNode struct {
	cfg     NodeConfig
	b       *Broker
	members []string // all member ids, sorted

	started time.Time

	mu    sync.Mutex
	epoch int64
	dead  map[string]bool
	miss  map[string]int
	seen  map[string]bool // peers observed alive at least once
	conns map[string]*Client
	leads map[string]*partLead
	seqs  map[string]map[uint64]prodSeq // topic/partition -> pid -> last batch
	metas map[string][]batchMeta        // topic/partition -> recent batch journal

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewClusterNode validates the config and returns a node. Call Start to
// begin heartbeating once the node is attached to a serving Server.
func NewClusterNode(b *Broker, cfg NodeConfig) (*ClusterNode, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("broker: cluster node needs an id")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("broker: node id %q missing from peer map", cfg.ID)
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Peers) {
		cfg.Replicas = len(cfg.Peers)
	}
	if cfg.MinISR < 1 || cfg.MinISR > cfg.Replicas {
		cfg.MinISR = cfg.Replicas
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.FailAfter < 1 {
		cfg.FailAfter = 3
	}
	if cfg.StartupGrace <= 0 {
		cfg.StartupGrace = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	members := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		members = append(members, id)
	}
	sort.Strings(members)
	return &ClusterNode{
		cfg:     cfg,
		b:       b,
		members: members,
		started: time.Now(),
		dead:    make(map[string]bool),
		miss:    make(map[string]int),
		seen:    make(map[string]bool),
		conns:   make(map[string]*Client),
		leads:   make(map[string]*partLead),
		seqs:    make(map[string]map[uint64]prodSeq),
		metas:   make(map[string][]batchMeta),
		done:    make(chan struct{}),
	}, nil
}

// ID returns the node's member id.
func (n *ClusterNode) ID() string { return n.cfg.ID }

// Start launches the heartbeat loop. Safe to call once.
func (n *ClusterNode) Start() {
	n.wg.Add(1)
	go n.heartbeatLoop()
}

// Close stops heartbeating and closes peer connections.
func (n *ClusterNode) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.wg.Wait()
		n.mu.Lock()
		for id, c := range n.conns {
			_ = c.Close()
			delete(n.conns, id)
		}
		n.mu.Unlock()
	})
}

func tpKey(topic string, partition int) string {
	return fmt.Sprintf("%s/%d", topic, partition)
}

// ---- membership view ----

func (n *ClusterNode) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
		}
		for _, id := range n.members {
			if id == n.cfg.ID || n.isDead(id) {
				continue
			}
			n.probe(id)
		}
	}
}

// probe heartbeats one peer, exchanging views: the request carries our
// epoch + dead set, the response the peer's, and both sides merge.
func (n *ClusterNode) probe(id string) {
	cli, err := n.peerClient(id)
	if err != nil {
		n.markFailure(id, err)
		return
	}
	epoch, dead := n.viewSnapshot()
	repoch, rdead, err := cli.ping(n.cfg.ID, epoch, dead)
	if err != nil {
		// Ping IS the liveness probe, so any failure counts — but only a
		// transport failure taints the connection.
		if !isRemoteErr(err) {
			n.dropConn(id, cli)
		}
		n.markFailure(id, err)
		return
	}
	n.markAlive(id)
	n.mergeView(repoch, rdead)
}

// viewSnapshot returns the current epoch and dead set.
func (n *ClusterNode) viewSnapshot() (int64, []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	dead := make([]string, 0, len(n.dead))
	for id := range n.dead {
		dead = append(dead, id)
	}
	sort.Strings(dead)
	return n.epoch, dead
}

// mergeView folds a peer's view into ours: dead sets union (never
// marking ourselves), epochs take the max.
func (n *ClusterNode) mergeView(epoch int64, dead []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, id := range dead {
		if id != n.cfg.ID && !n.dead[id] {
			n.dead[id] = true
			n.cfg.Logf("cluster %s: learned %s is dead (gossip)", n.cfg.ID, id)
		}
	}
	if epoch > n.epoch {
		n.epoch = epoch
	}
}

// handlePing serves the "ping" control op: merge the sender's view,
// answer with ours. A ping also proves the sender booted.
func (n *ClusterNode) handlePing(sender string, epoch int64, dead []string) (int64, []string) {
	n.mergeView(epoch, dead)
	if sender != "" {
		n.markAlive(sender)
	}
	return n.viewSnapshot()
}

func (n *ClusterNode) isDead(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dead[id]
}

// markFailure counts one failed probe or replication call against a
// peer; FailAfter consecutive failures declare it dead and bump the
// epoch, which moves leadership of its partitions to the next replica.
func (n *ClusterNode) markFailure(id string, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead[id] {
		return
	}
	if !n.seen[id] && time.Since(n.started) < n.cfg.StartupGrace {
		return // peer may simply not have booted yet
	}
	n.miss[id]++
	if n.miss[id] < n.cfg.FailAfter {
		return
	}
	n.dead[id] = true
	n.epoch++
	if c := n.conns[id]; c != nil {
		_ = c.Close()
		delete(n.conns, id)
	}
	n.cfg.Logf("cluster %s: peer %s declared dead (epoch %d): %v", n.cfg.ID, id, n.epoch, err)
}

func (n *ClusterNode) markAlive(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.dead[id] {
		n.miss[id] = 0
		n.seen[id] = true
	}
}

// peerClient returns (dialing if needed) the connection to a peer.
func (n *ClusterNode) peerClient(id string) (*Client, error) {
	n.mu.Lock()
	if c, ok := n.conns[id]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.cfg.Peers[id]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("broker: unknown peer %q", id)
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if prev, ok := n.conns[id]; ok { // lost the dial race; keep the first
		n.mu.Unlock()
		_ = c.Close()
		return prev, nil
	}
	n.conns[id] = c
	n.mu.Unlock()
	return c, nil
}

// dropConn discards a broken peer connection (only if still current).
func (n *ClusterNode) dropConn(id string, c *Client) {
	n.mu.Lock()
	if n.conns[id] == c {
		delete(n.conns, id)
	}
	n.mu.Unlock()
	_ = c.Close()
}

// ---- placement ----

// leaderFor returns the current leader of a partition in this node's
// view: the first live replica in rendezvous order ("" if none live).
func (n *ClusterNode) leaderFor(topic string, partition int) string {
	reps := replicasFor(topic, partition, n.members, n.cfg.Replicas)
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, id := range reps {
		if !n.dead[id] {
			return id
		}
	}
	return ""
}

// meta builds the metadata snapshot the "meta" control op serves.
func (n *ClusterNode) meta() *ClusterMeta {
	n.mu.Lock()
	epoch := n.epoch
	dead := make(map[string]bool, len(n.dead))
	for id := range n.dead {
		dead[id] = true
	}
	n.mu.Unlock()
	m := &ClusterMeta{Epoch: epoch, Topics: make(map[string]TopicInfo)}
	for _, id := range n.members {
		m.Nodes = append(m.Nodes, NodeInfo{ID: id, Addr: n.cfg.Peers[id], Alive: !dead[id]})
	}
	for _, t := range n.b.Topics() {
		parts, err := n.b.Partitions(t)
		if err != nil {
			continue
		}
		ti := TopicInfo{Partitions: make([]PartitionInfo, parts)}
		for p := 0; p < parts; p++ {
			reps := replicasFor(t, p, n.members, n.cfg.Replicas)
			leader := ""
			for _, id := range reps {
				if !dead[id] {
					leader = id
					break
				}
			}
			ti.Partitions[p] = PartitionInfo{Leader: leader, Replicas: reps}
		}
		m.Topics[t] = ti
	}
	return m
}

// ---- leader data path ----

// lead returns (creating and initializing if needed) the leader-side
// state of a partition. On first touch after a promotion the committed
// watermark adopts the local log's high watermark: everything a
// promoted follower holds was replicated to it and becomes committed by
// fiat, the classic bounded-by-the-replicated-HWM promotion rule.
func (n *ClusterNode) lead(topic string, partition int) (*partLead, error) {
	key := tpKey(topic, partition)
	n.mu.Lock()
	pl, ok := n.leads[key]
	if !ok {
		pl = &partLead{}
		n.leads[key] = pl
	}
	n.mu.Unlock()
	if !pl.init.Load() {
		pl.mu.Lock()
		if !pl.init.Load() {
			hwm, err := n.b.HighWatermark(topic, partition)
			if err != nil {
				pl.mu.Unlock()
				return nil, err
			}
			pl.committed.Store(hwm)
			pl.init.Store(true)
		}
		pl.mu.Unlock()
	}
	return pl, nil
}

func (n *ClusterNode) lastSeq(tp string, pid uint64) (prodSeq, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps, ok := n.seqs[tp][pid]
	return ps, ok
}

// noteBatch records a producer's batch — in the dedup table (if newer
// than what is known) and in the partition's bounded replication
// journal.
func (n *ClusterNode) noteBatch(tp string, bm batchMeta) {
	if bm.pid == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.seqs[tp]
	if !ok {
		m = make(map[uint64]prodSeq)
		n.seqs[tp] = m
	}
	if cur, ok := m[bm.pid]; !ok || bm.seq > cur.seq {
		m[bm.pid] = prodSeq{seq: bm.seq, base: bm.base, end: bm.end}
	}
	j := append(n.metas[tp], bm)
	if len(j) > metaJournalCap {
		j = j[len(j)-metaJournalCap:]
	}
	n.metas[tp] = j
}

// metasInRange returns the journal entries overlapping [from, to) — the
// dedup state shipped with a replicated chunk of that range.
func (n *ClusterNode) metasInRange(tp string, from, to int64) []batchMeta {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []batchMeta
	for _, bm := range n.metas[tp] {
		if bm.end > from && bm.base < to {
			out = append(out, bm)
		}
	}
	return out
}

// producePart is the leader-side handling of a partitioned produce:
// dedup by (pid, seq), append locally, replicate synchronously, ack
// once MinISR (shrunk to the live replica count) replicas hold it.
func (n *ClusterNode) producePart(topic string, partition int, pid, seq uint64, recs []Record) (int, error) {
	ldr := n.leaderFor(topic, partition)
	if ldr == "" {
		return 0, ErrNoReplica
	}
	if ldr != n.cfg.ID {
		return 0, notLeaderError(ldr)
	}
	pl, err := n.lead(topic, partition)
	if err != nil {
		return 0, err
	}
	tp := tpKey(topic, partition)
	pl.mu.Lock()
	defer pl.mu.Unlock()

	count := len(recs)
	var base, end int64
	redrive := false
	if pid != 0 {
		if ps, ok := n.lastSeq(tp, pid); ok && seq <= ps.seq {
			if seq < ps.seq || pl.committed.Load() >= ps.end {
				// Already appended and committed: a duplicate retry.
				return count, nil
			}
			// Retry of the latest batch, appended but not yet committed
			// (e.g. the previous attempt failed its replica acks): the
			// records are in the log, so re-drive replication only.
			base, end, redrive = ps.base, ps.end, true
		}
	}
	if !redrive {
		base, err = n.b.producePartition(topic, partition, recs)
		if err != nil {
			return 0, err
		}
		end = base + int64(count)
		n.noteBatch(tp, batchMeta{pid: pid, seq: seq, base: base, end: end})
	} else {
		recs, err = n.b.Fetch(topic, partition, base, int(end-base))
		if err != nil {
			return 0, err
		}
	}
	if err := n.replicateOut(pl, topic, partition, base, end, recs); err != nil {
		return 0, err
	}
	return count, nil
}

// replicateOut pushes [base, end) to every live follower replica —
// concurrently, so the wait is the slowest single follower, not the
// sum — and advances the committed watermark once enough replicas
// acked.
func (n *ClusterNode) replicateOut(pl *partLead, topic string, partition int, base, end int64, recs []Record) error {
	reps := replicasFor(topic, partition, n.members, n.cfg.Replicas)
	acks, live := 1, 1
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range reps {
		if id == n.cfg.ID || n.isDead(id) {
			continue
		}
		live++
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := n.pushToFollower(id, topic, partition, base, end, recs); err != nil {
				// Only TRANSPORT failures feed the failure detector. An
				// answered rejection (fencing, unknown topic, ...) proves
				// the peer is alive — a deposed leader must not "detect"
				// the healthy majority as dead off its own fenced pushes.
				if isRemoteErr(err) {
					n.markAlive(id)
				} else {
					n.markFailure(id, err)
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			n.markAlive(id)
			mu.Lock()
			acks++
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	need := n.cfg.MinISR
	if live < need {
		need = live
	}
	if acks < need {
		return fmt.Errorf("%w: %d/%d acked: %v", ErrUnderReplicated, acks, need, firstErr)
	}
	if end > pl.committed.Load() {
		pl.committed.Store(end)
	}
	return nil
}

// pushToFollower replicates [base, end) to one follower, backfilling
// from the follower's own watermark when it is behind (restart, missed
// round, or interleaved batches). Each chunk ships the journal entries
// covering its range, so the follower's dedup table tracks every
// producer whose records it receives.
func (n *ClusterNode) pushToFollower(id, topic string, partition int, base, end int64, recs []Record) error {
	cli, err := n.peerClient(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	tp := tpKey(topic, partition)
	for tries := 0; tries < 8; tries++ {
		metas := n.metasInRange(tp, base, base+int64(len(recs)))
		hwm, err := cli.replicate(epoch, n.cfg.ID, topic, partition, base, metas, recs)
		if err != nil {
			if !isRemoteErr(err) {
				n.dropConn(id, cli) // transport failure: the conn is suspect
			}
			return err
		}
		if hwm >= end {
			return nil
		}
		fill, err := n.b.Fetch(topic, partition, hwm, int(end-hwm))
		if err != nil {
			return err
		}
		if int64(len(fill)) < end-hwm {
			return fmt.Errorf("broker: backfill short read at %d", hwm)
		}
		base, recs = hwm, fill
	}
	return fmt.Errorf("broker: replication to %s did not converge", id)
}

// produceRouted handles a legacy key-routed produce arriving at any
// cluster node: it partitions locally and forwards each batch to its
// partition leader, so old producers keep working pointed at any one
// broker. Without a producer id this path is at-least-once under
// retries; ClusterClient's partitioned produce is the exactly-once one.
func (n *ClusterNode) produceRouted(topicName string, recs []Record) (int, error) {
	t, err := n.b.topic(topicName)
	if err != nil {
		return 0, err
	}
	byPart := make([][]Record, len(t.partitions))
	for _, r := range recs {
		p := t.partitionFor(r.Key)
		byPart[p] = append(byPart[p], r)
	}
	total := 0
	for p, batch := range byPart {
		if len(batch) == 0 {
			continue
		}
		ldr := n.leaderFor(topicName, p)
		switch {
		case ldr == "":
			return total, ErrNoReplica
		case ldr == n.cfg.ID:
			if _, err := n.producePart(topicName, p, 0, 0, batch); err != nil {
				return total, err
			}
		default:
			cli, err := n.peerClient(ldr)
			if err != nil {
				return total, err
			}
			if _, err := cli.ProducePartition(topicName, p, 0, 0, batch); err != nil {
				if !isRemoteErr(err) {
					n.dropConn(ldr, cli)
				}
				return total, err
			}
		}
		total += len(batch)
	}
	return total, nil
}

// fetch serves a consumer read: leaders only, and only up to the
// committed watermark, so no consumer can observe records a failover
// might lose.
func (n *ClusterNode) fetch(topic string, partition int, offset int64, max int) ([]Record, error) {
	pl, err := n.leaderState(topic, partition)
	if err != nil {
		return nil, err
	}
	committed := pl.committed.Load()
	if offset >= committed {
		if offset < 0 {
			return nil, ErrOffsetOutOfRange
		}
		return nil, nil
	}
	if max <= 0 {
		max = 1024
	}
	if int64(max) > committed-offset {
		max = int(committed - offset)
	}
	return n.b.Fetch(topic, partition, offset, max)
}

// hwm serves the consumer-visible high watermark: the committed offset.
func (n *ClusterNode) hwm(topic string, partition int) (int64, error) {
	pl, err := n.leaderState(topic, partition)
	if err != nil {
		return 0, err
	}
	return pl.committed.Load(), nil
}

// leaderState checks this node leads the partition and returns its
// initialized leader state.
func (n *ClusterNode) leaderState(topic string, partition int) (*partLead, error) {
	if parts, err := n.b.Partitions(topic); err != nil {
		return nil, err
	} else if partition < 0 || partition >= parts {
		return nil, ErrBadPartition
	}
	ldr := n.leaderFor(topic, partition)
	if ldr == "" {
		return nil, ErrNoReplica
	}
	if ldr != n.cfg.ID {
		return nil, notLeaderError(ldr)
	}
	return n.lead(topic, partition)
}

// applyReplicate is the follower-side handling of a replicated chunk.
func (n *ClusterNode) applyReplicate(epoch int64, sender, topic string, partition int, base int64, metas []batchMeta, recs []Record) (int64, error) {
	n.mu.Lock()
	if n.dead[sender] {
		ep := n.epoch
		n.mu.Unlock()
		return 0, fmt.Errorf("broker: replicate from %s rejected: deposed in epoch %d", sender, ep)
	}
	if epoch > n.epoch {
		n.epoch = epoch
	}
	n.mu.Unlock()
	reps := replicasFor(topic, partition, n.members, n.cfg.Replicas)
	isReplica := false
	for _, id := range reps {
		if id == sender {
			isReplica = true
			break
		}
	}
	if !isReplica {
		return 0, fmt.Errorf("broker: %s is not a replica of %s", sender, tpKey(topic, partition))
	}
	n.markAlive(sender)
	hwm, err := n.b.replicateAppend(topic, partition, base, recs)
	if err != nil {
		return 0, err
	}
	// Adopt dedup state only for batches the local log now fully holds:
	// a gap-skipped chunk (hwm < base) must not leave seq entries for
	// records that are not here, or a promoted follower would answer a
	// producer retry as a duplicate without having the data.
	tp := tpKey(topic, partition)
	for _, bm := range metas {
		if bm.end <= hwm {
			n.noteBatch(tp, bm)
		}
	}
	return hwm, nil
}
