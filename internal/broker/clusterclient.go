package broker

// ClusterClient is the routing client of the broker cluster: it fetches
// and caches the partition→leader map, routes produce and fetch per
// partition to the leader, follows NotLeader redirects, and fails over
// transparently when a broker dies — so consumers and the serving tier
// work against a cluster with nothing but a list of seed addresses.
//
// It implements the same Cluster interface as the in-process Broker and
// the single-connection Client, and additionally partitions produce
// batches on the client side, attaching a producer id + per-partition
// sequence number so a batch retried across a leader failover is
// appended exactly once.

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	mrand "math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamapprox/internal/stream"
)

// ClusterClientOptions tunes routing retries and per-member deadlines.
type ClusterClientOptions struct {
	// Retries is the number of retry rounds per partition op after the
	// first attempt (default 8). Each round refreshes the metadata
	// cache, so the budget must cover the cluster's failure-detection
	// time.
	Retries int
	// Backoff is the initial pause between rounds, doubled each round
	// up to 2s with ±50% jitter (default 25ms). Jitter keeps a fleet of
	// clients retrying into a recovering cluster from arriving in
	// lockstep waves.
	Backoff time.Duration
	// DialTimeout bounds TCP connect per member (default
	// DefaultDialTimeout; negative disables).
	DialTimeout time.Duration
	// RequestTimeout bounds every RPC issued to a member (default
	// DefaultRequestTimeout; negative disables). A blackholed leader
	// turns into a timed-out round that the retry loop reroutes after
	// failover, instead of a produce wedged forever.
	RequestTimeout time.Duration
}

// ClusterClient routes broker ops across cluster members. It is safe
// for concurrent use.
type ClusterClient struct {
	opts  ClusterClientOptions
	seeds []string
	pid   uint64

	// done closes on Close, waking any retry backoff mid-sleep so a
	// closing client never sits out a full backoff round.
	done chan struct{}

	rng   *mrand.Rand // backoff jitter
	rngMu sync.Mutex

	mu     sync.Mutex
	meta   *ClusterMeta
	conns  map[string]*Client // by lane key (address, or address#lane)
	seqs   map[string]uint64  // topic/partition -> last assigned seq
	prodMu map[string]*sync.Mutex
	rr     uint64
	trace  uint64 // trace ID stamped on every member connection
	closed bool
}

// clientLanes is how many connections the routing client spreads one
// broker's partition traffic across. A broker serves each connection's
// requests in arrival order, so two partitions sharing a connection
// serialize their full produce cycles — including the leader's
// synchronous replication wait. Separate lanes let same-leader
// partitions overlap, which is also what feeds the leader's group
// commit: chunks can only coalesce into one replicate batch if they
// are in flight together.
const clientLanes = 4

// laneKey names one lane's connection. Lane 0 keeps the bare address
// as its key, so control-path callers that dial and drop by address
// keep working untouched.
func laneKey(addr string, lane int) string {
	if lane == 0 {
		return addr
	}
	return addr + "#" + strconv.Itoa(lane)
}

// SetTraceID stamps a trace ID on every current and future member
// connection, so all wire requests this routing client issues carry it
// (on peers that negotiated the v2 header).
func (cc *ClusterClient) SetTraceID(id uint64) {
	cc.mu.Lock()
	cc.trace = id
	conns := make([]*Client, 0, len(cc.conns))
	for _, c := range cc.conns {
		conns = append(conns, c)
	}
	cc.mu.Unlock()
	for _, c := range conns {
		c.SetTraceID(id)
	}
}

var _ Cluster = (*ClusterClient)(nil)

// DialCluster connects to a broker cluster via any reachable seed
// address and loads the initial metadata.
func DialCluster(addrs []string) (*ClusterClient, error) {
	return DialClusterWithOptions(addrs, ClusterClientOptions{})
}

// DialClusterWithOptions is DialCluster with explicit retry tuning.
func DialClusterWithOptions(addrs []string, opts ClusterClientOptions) (*ClusterClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("broker: no cluster addresses")
	}
	if opts.Retries <= 0 {
		opts.Retries = 8
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 25 * time.Millisecond
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, fmt.Errorf("broker: producer id: %w", err)
	}
	cc := &ClusterClient{
		opts:   opts,
		seeds:  append([]string(nil), addrs...),
		pid:    binary.BigEndian.Uint64(b[:]) | 1, // never 0 (0 = dedup off)
		done:   make(chan struct{}),
		rng:    mrand.New(mrand.NewPCG(mrand.Uint64(), mrand.Uint64())),
		conns:  make(map[string]*Client),
		seqs:   make(map[string]uint64),
		prodMu: make(map[string]*sync.Mutex),
	}
	if err := cc.refreshMeta(); err != nil {
		cc.Close()
		return nil, err
	}
	return cc, nil
}

// Close closes all member connections and interrupts any retry loop
// sleeping out a backoff round.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	if !cc.closed {
		cc.closed = true
		close(cc.done)
	}
	conns := cc.conns
	cc.conns = make(map[string]*Client)
	cc.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

// conn returns (dialing if needed) the lane-0 connection to one
// address — the control-path lane (metadata, topic admin, offsets).
func (cc *ClusterClient) conn(addr string) (*Client, error) {
	return cc.connLane(addr, 0)
}

// connLane returns (dialing if needed) one lane's connection to an
// address.
func (cc *ClusterClient) connLane(addr string, lane int) (*Client, error) {
	key := laneKey(addr, lane)
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil, errClientClosed
	}
	if c, ok := cc.conns[key]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	cc.mu.Unlock()
	c, err := DialWithOptions(addr, ClientOptions{
		DialTimeout:    cc.opts.DialTimeout,
		RequestTimeout: cc.opts.RequestTimeout,
	})
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	if cc.trace != 0 {
		c.SetTraceID(cc.trace)
	}
	if cc.closed {
		cc.mu.Unlock()
		_ = c.Close()
		return nil, errClientClosed
	}
	if prev, ok := cc.conns[key]; ok {
		cc.mu.Unlock()
		_ = c.Close()
		return prev, nil
	}
	cc.conns[key] = c
	cc.mu.Unlock()
	return c, nil
}

// dropConn discards a broken connection by its lane key.
func (cc *ClusterClient) dropConn(key string) {
	cc.mu.Lock()
	c := cc.conns[key]
	delete(cc.conns, key)
	cc.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// candidateAddrs is every address worth asking for metadata: the seeds
// plus all members of the cached view.
func (cc *ClusterClient) candidateAddrs() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	cc.mu.Lock()
	meta := cc.meta
	cc.mu.Unlock()
	for _, a := range cc.seeds {
		add(a)
	}
	if meta != nil {
		for _, n := range meta.Nodes {
			add(n.Addr)
		}
	}
	return out
}

// refreshMeta polls every reachable member and keeps the view with the
// highest epoch, so a deposed leader's stale view cannot mask a
// promotion it has not heard about yet.
func (cc *ClusterClient) refreshMeta() error {
	var best *ClusterMeta
	var lastErr error
	for _, addr := range cc.candidateAddrs() {
		cli, err := cc.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		m, err := cli.Meta()
		if err != nil {
			if !isRemoteErr(err) {
				cc.dropConn(addr)
			}
			lastErr = err
			continue
		}
		// A solo server reports a synthetic member whose advertised
		// address may be unroutable (e.g. a 0.0.0.0 listener); the
		// address we just dialed is authoritative.
		for i := range m.Nodes {
			if m.Nodes[i].ID == soloNodeID {
				m.Nodes[i].Addr = addr
			}
		}
		if best == nil || m.Epoch > best.Epoch {
			best = m
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = errors.New("broker: no cluster member reachable")
		}
		return lastErr
	}
	cc.mu.Lock()
	if cc.meta == nil || best.Epoch >= cc.meta.Epoch {
		cc.meta = best
	}
	cc.mu.Unlock()
	return nil
}

// metaView returns the cached metadata, fetching it if absent.
func (cc *ClusterClient) metaView() (*ClusterMeta, error) {
	cc.mu.Lock()
	m := cc.meta
	cc.mu.Unlock()
	if m != nil {
		return m, nil
	}
	if err := cc.refreshMeta(); err != nil {
		return nil, err
	}
	cc.mu.Lock()
	m = cc.meta
	cc.mu.Unlock()
	return m, nil
}

// Meta returns the client's current cluster view (refreshing if it has
// none yet).
func (cc *ClusterClient) Meta() (*ClusterMeta, error) { return cc.metaView() }

// Refresh forces a metadata refresh, polling every reachable member —
// the reroute lever for callers that detect a stall out of band, like
// the ingest plane's partition watchdog.
func (cc *ClusterClient) Refresh() error { return cc.refreshMeta() }

// jitter spreads d uniformly over [d/2, 3d/2).
func (cc *ClusterClient) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	cc.rngMu.Lock()
	j := time.Duration(cc.rng.Int64N(int64(d)))
	cc.rngMu.Unlock()
	return d/2 + j
}

// sleep pauses for d, returning false immediately if the client is
// closed (or closes mid-sleep).
func (cc *ClusterClient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cc.done:
		return false
	}
}

// leaderConn resolves the leader of a partition and returns a
// connection to it. A non-empty hint (from a NotLeader redirect)
// overrides the cached view's leader.
func (cc *ClusterClient) leaderConn(topic string, partition int, hint string) (*Client, string, error) {
	m, err := cc.metaView()
	if err != nil {
		return nil, "", err
	}
	ldr := hint
	if ldr == "" || m.AddrOf(ldr) == "" {
		ldr = m.LeaderOf(topic, partition)
	}
	if ldr == "" {
		// Topic unknown to the cached view (or no live replica): refresh
		// once before giving up.
		if err := cc.refreshMeta(); err != nil {
			return nil, "", err
		}
		cc.mu.Lock()
		m = cc.meta
		cc.mu.Unlock()
		if ldr = m.LeaderOf(topic, partition); ldr == "" {
			return nil, "", fmt.Errorf("%w: %s", ErrNoReplica, tpKey(topic, partition))
		}
	}
	addr := m.AddrOf(ldr)
	if addr == "" {
		return nil, "", fmt.Errorf("broker: no address for node %q", ldr)
	}
	// Spread partitions across lanes so same-leader partitions don't
	// serialize behind one connection's request-at-a-time handling. The
	// returned key identifies the lane for dropConn on failure.
	lane := partition % clientLanes
	cli, err := cc.connLane(addr, lane)
	return cli, laneKey(addr, lane), err
}

// permanentErrs are broker rejections no retry can fix.
var permanentErrs = []string{
	"unknown topic",
	"partition out of range",
	"offset out of range",
	"topic name too long",
	"topic already exists",
}

func isPermanent(err error) bool {
	msg := err.Error()
	for _, p := range permanentErrs {
		if strings.Contains(msg, p) {
			return true
		}
	}
	return false
}

// withLeaderRetry runs op against the partition leader, retrying on
// NotLeader redirects (following the rejecting node's leader hint
// immediately, without a backoff round), broken connections, and
// transient under-replication until the retry budget runs out.
func (cc *ClusterClient) withLeaderRetry(topic string, partition int, op func(cli *Client) error) error {
	backoff := cc.opts.Backoff
	var lastErr error
	hint := ""
	followedHint := false
	for attempt := 0; attempt <= cc.opts.Retries; attempt++ {
		if attempt > 0 && hint == "" {
			if !cc.sleep(cc.jitter(backoff)) {
				return errClientClosed
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			_ = cc.refreshMeta() // a stale cache may still route correctly
		}
		cli, addr, err := cc.leaderConn(topic, partition, hint)
		followedHint = hint != ""
		hint = ""
		if err != nil {
			lastErr = err
			continue
		}
		if err = op(cli); err == nil {
			return nil
		}
		lastErr = err
		if isPermanent(err) {
			return err
		}
		if IsNotLeader(err) {
			// Route straight to the named leader — but at most one hop,
			// so two stale views naming each other cannot ping-pong away
			// the retry budget without ever refreshing.
			if !followedHint {
				hint = leaderHint(err)
			}
		} else if !isRemoteErr(err) {
			// Transport failure: the connection is suspect; reconnect
			// next round. Answered rejections (e.g. transient
			// under-replication) keep the healthy connection.
			cc.dropConn(addr)
		}
	}
	return lastErr
}

// partitionForKey mirrors the broker's keyed routing (FNV-32a), with a
// client-local round-robin cursor for keyless records.
func (cc *ClusterClient) partitionForKey(key string, parts int) int {
	if key == "" {
		cc.mu.Lock()
		p := int(cc.rr % uint64(parts))
		cc.rr++
		cc.mu.Unlock()
		return p
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32()) % parts
}

// produceLock returns the per-partition mutex serializing produce
// batches, which keeps producer sequence numbers arriving in order —
// the invariant the leader's dedup table relies on.
func (cc *ClusterClient) produceLock(tp string) *sync.Mutex {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	mu, ok := cc.prodMu[tp]
	if !ok {
		mu = &sync.Mutex{}
		cc.prodMu[tp] = mu
	}
	return mu
}

// Produce partitions records by key and sends each batch to its
// partition leader with an idempotent (pid, seq) identity: a batch
// retried across redirects or a failover is appended exactly once.
// Per-partition batches go out concurrently — paired with the leaders'
// pipelined replication, the produce cost of one call is the slowest
// single partition, not the sum over partitions.
func (cc *ClusterClient) Produce(topicName string, recs []Record) (int, error) {
	parts, err := cc.Partitions(topicName)
	if err != nil {
		return 0, err
	}
	byPart := make([][]Record, parts)
	if parts == 1 {
		byPart[0] = recs
	} else {
		per := len(recs)/parts + len(recs)/(parts*4) + 1 // headroom over an even spread
		for _, r := range recs {
			p := cc.partitionForKey(r.Key, parts)
			if byPart[p] == nil {
				byPart[p] = make([]Record, 0, per)
			}
			byPart[p] = append(byPart[p], r)
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int
		firstErr error
	)
	for p, batch := range byPart {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int, batch []Record) {
			defer wg.Done()
			err := cc.producePartition(topicName, p, batch)
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				total += len(batch)
			}
			mu.Unlock()
		}(p, batch)
	}
	wg.Wait()
	return total, firstErr
}

// producePartition sends one partition's batch under the partition's
// produce lock with a fresh sequence number.
func (cc *ClusterClient) producePartition(topicName string, partition int, batch []Record) error {
	tp := tpKey(topicName, partition)
	mu := cc.produceLock(tp)
	mu.Lock()
	defer mu.Unlock()
	cc.mu.Lock()
	cc.seqs[tp]++
	seq := cc.seqs[tp]
	cc.mu.Unlock()
	return cc.withLeaderRetry(topicName, partition, func(cli *Client) error {
		_, err := cli.ProducePartition(topicName, partition, cc.pid, seq, batch)
		return err
	})
}

// Fetch reads records from the partition leader.
func (cc *ClusterClient) Fetch(topicName string, partition int, offset int64, max int) ([]Record, error) {
	var out []Record
	err := cc.withLeaderRetry(topicName, partition, func(cli *Client) error {
		recs, err := cli.Fetch(topicName, partition, offset, max)
		if err == nil {
			out = recs
		}
		return err
	})
	return out, err
}

// FetchBatch reads records from the partition leader directly into a
// columnar batch. The batch is reset before every attempt, so a
// mid-fetch failover retry never leaves a partially decoded round.
func (cc *ClusterClient) FetchBatch(topicName string, partition int, offset int64, max int, b *stream.EventBatch) (int, error) {
	var out int
	err := cc.withLeaderRetry(topicName, partition, func(cli *Client) error {
		b.Reset()
		n, err := cli.FetchBatch(topicName, partition, offset, max, b)
		if err == nil {
			out = n
		}
		return err
	})
	return out, err
}

// HighWatermark returns the partition's committed watermark (the
// leader's consumer-visible offset frontier).
func (cc *ClusterClient) HighWatermark(topicName string, partition int) (int64, error) {
	var hwm int64
	err := cc.withLeaderRetry(topicName, partition, func(cli *Client) error {
		h, err := cli.HighWatermark(topicName, partition)
		if err == nil {
			hwm = h
		}
		return err
	})
	return hwm, err
}

// Partitions returns the topic's partition count from the cached view.
func (cc *ClusterClient) Partitions(topicName string) (int, error) {
	m, err := cc.metaView()
	if err != nil {
		return 0, err
	}
	if t, ok := m.Topics[topicName]; ok {
		return len(t.Partitions), nil
	}
	if err := cc.refreshMeta(); err != nil {
		return 0, err
	}
	cc.mu.Lock()
	m = cc.meta
	cc.mu.Unlock()
	if t, ok := m.Topics[topicName]; ok {
		return len(t.Partitions), nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
}

// CreateTopic creates the topic on every live member (partition logs
// live on all nodes; placement decides which hold data). Members that
// already have it are fine, but a live member that cannot be reached
// fails the call: a member silently missing the topic would later have
// every replication to it rejected, so partial creation must be
// retried, not masked.
func (cc *ClusterClient) CreateTopic(name string, partitions int) error {
	m, err := cc.metaView()
	if err != nil {
		return err
	}
	required := make([]string, 0, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.Alive {
			required = append(required, n.Addr)
		}
	}
	if len(required) == 0 {
		return errors.New("broker: no live cluster member")
	}
	for _, addr := range required {
		cli, err := cc.conn(addr)
		if err != nil {
			return fmt.Errorf("create topic on %s: %w", addr, err)
		}
		err = cli.CreateTopic(name, partitions)
		if err != nil && !strings.Contains(err.Error(), "already exists") {
			if !isRemoteErr(err) {
				cc.dropConn(addr)
			}
			return fmt.Errorf("create topic on %s: %w", addr, err)
		}
	}
	_ = cc.refreshMeta() // pick up the new topic in the cached view
	return nil
}

// Commit routes the group offset to the partition leader, which
// replicates it to the partition's follower replicas exactly like
// record data — the position survives a failover and Committed is
// exact, not a best-effort max over members.
func (cc *ClusterClient) Commit(group, topicName string, partition int, offset int64) error {
	return cc.withLeaderRetry(topicName, partition, func(cli *Client) error {
		return cli.Commit(group, topicName, partition, offset)
	})
}

// Committed reads the group's committed offset from the partition
// leader — the authoritative copy.
func (cc *ClusterClient) Committed(group, topicName string, partition int) (int64, error) {
	var off int64
	err := cc.withLeaderRetry(topicName, partition, func(cli *Client) error {
		o, err := cli.Committed(group, topicName, partition)
		if err == nil {
			off = o
		}
		return err
	})
	return off, err
}
