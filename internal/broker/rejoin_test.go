package broker

// Restart/rejoin tests for the durable broker tier: a killed cluster
// member restarted with the same -data-dir must recover its segments,
// rejoin as a follower in a new status incarnation, truncate any log
// divergence, catch up, and re-enter the ISR — with no record lost or
// duplicated across the whole episode.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamapprox/internal/broker/storage"
)

// durableCluster is an n-member broker cluster whose members keep
// their partition logs in per-member temp directories, so a killed
// member can be restarted against the same data.
type durableCluster struct {
	t       *testing.T
	brokers []*Broker
	servers []*Server
	nodes   []*ClusterNode
	ids     []string
	addrs   []string
	dirs    []string
	peers   map[string]string
	tune    func(*NodeConfig)
	killed  []bool
}

func startDurableCluster(t *testing.T, n int, tune func(*NodeConfig)) *durableCluster {
	t.Helper()
	dc := &durableCluster{t: t, tune: tune, killed: make([]bool, n), peers: make(map[string]string, n)}
	for i := 0; i < n; i++ {
		dir := t.TempDir()
		b, err := Open(StorageConfig{Dir: dir, Policy: storage.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(b, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		dc.peers[id] = srv.Addr()
		dc.brokers = append(dc.brokers, b)
		dc.servers = append(dc.servers, srv)
		dc.ids = append(dc.ids, id)
		dc.addrs = append(dc.addrs, srv.Addr())
		dc.dirs = append(dc.dirs, dir)
	}
	for i := 0; i < n; i++ {
		node, err := NewClusterNode(dc.brokers[i], dc.nodeConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		dc.servers[i].AttachNode(node)
		dc.nodes = append(dc.nodes, node)
	}
	for _, node := range dc.nodes {
		node.Start()
	}
	t.Cleanup(func() {
		for i := range dc.servers {
			dc.kill(i)
		}
	})
	return dc
}

func (dc *durableCluster) nodeConfig(i int) NodeConfig {
	cfg := NodeConfig{
		ID:             dc.ids[i],
		Peers:          dc.peers,
		Replicas:       2,
		MinISR:         2,
		HeartbeatEvery: 10 * time.Millisecond,
		FailAfter:      2,
	}
	if dc.tune != nil {
		dc.tune(&cfg)
	}
	return cfg
}

// kill fail-stops one member. The broker is NOT flushed or closed:
// with the always-fsync policy everything acked is already on disk,
// exactly as after a kill -9.
func (dc *durableCluster) kill(i int) {
	if dc.killed[i] {
		return
	}
	dc.killed[i] = true
	dc.nodes[i].Close()
	dc.servers[i].Close()
}

// restart boots a member again from its data directory, on its
// original address (the static peer map names it).
func (dc *durableCluster) restart(i int) {
	dc.t.Helper()
	if !dc.killed[i] {
		dc.t.Fatal("restarting a live member")
	}
	b, err := Open(StorageConfig{Dir: dc.dirs[i], Policy: storage.SyncAlways})
	if err != nil {
		dc.t.Fatal(err)
	}
	node, err := NewClusterNode(b, dc.nodeConfig(i))
	if err != nil {
		dc.t.Fatal(err)
	}
	srv, err := ServeWithOptions(b, dc.addrs[i], ServerOptions{Node: node})
	if err != nil {
		dc.t.Fatal(err)
	}
	node.Start()
	dc.brokers[i], dc.servers[i], dc.nodes[i] = b, srv, node
	dc.killed[i] = false
}

func (dc *durableCluster) indexOf(id string) int {
	for i, nid := range dc.ids {
		if nid == id {
			return i
		}
	}
	dc.t.Fatalf("unknown node id %q", id)
	return -1
}

func (dc *durableCluster) dialCluster() *ClusterClient {
	dc.t.Helper()
	cc, err := DialClusterWithOptions(dc.addrs, ClusterClientOptions{
		Retries: 25,
		Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		dc.t.Fatal(err)
	}
	dc.t.Cleanup(func() { _ = cc.Close() })
	return cc
}

// waitConverged waits until both replicas of every partition hold the
// same log length.
func (dc *durableCluster) waitConverged(topic string, parts int) {
	dc.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for p := 0; p < parts; p++ {
			reps := replicasFor(topic, p, dc.ids, 2)
			h0, err0 := dc.brokers[dc.indexOf(reps[0])].HighWatermark(topic, p)
			h1, err1 := dc.brokers[dc.indexOf(reps[1])].HighWatermark(topic, p)
			if err0 != nil || err1 != nil || h0 != h1 {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for p := 0; p < parts; p++ {
				reps := replicasFor(topic, p, dc.ids, 2)
				h0, _ := dc.brokers[dc.indexOf(reps[0])].HighWatermark(topic, p)
				h1, _ := dc.brokers[dc.indexOf(reps[1])].HighWatermark(topic, p)
				dc.t.Logf("partition %d: %s=%d %s=%d", p, reps[0], h0, reps[1], h1)
			}
			dc.t.Fatal("replicas never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDurableClusterRejoinAfterKill is the cluster-layer acceptance
// test of the storage refactor: kill a partition leader mid-stream,
// keep producing through the failover, restart the dead member from
// its data directory, and verify it rejoins as a follower, syncs its
// log, re-enters the ISR (RF2 produce needs both replicas again), and
// the full record set is exactly-once.
func TestDurableClusterRejoinAfterKill(t *testing.T) {
	dc := startDurableCluster(t, 3, nil)
	cc := dc.dialCluster()
	if err := cc.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	const per = 100
	produce := func(from, to int) {
		t.Helper()
		for v := from; v < to; v += per {
			if _, err := cc.Produce("t", keylessRecs(v, per)); err != nil {
				t.Fatalf("produce at %d: %v", v, err)
			}
		}
	}
	produce(0, 2000)

	// A consumer-group position committed before the kill must survive
	// it (leader-routed commits are replicated with the partition).
	if err := cc.Commit("g", "t", 0, 123); err != nil {
		t.Fatal(err)
	}

	m, err := cc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	victim := m.LeaderOf("t", 0)
	if victim == "" {
		t.Fatal("no leader for partition 0")
	}
	vi := dc.indexOf(victim)
	dc.kill(vi)
	produce(2000, 4000) // rides through detection + promotion

	dc.restart(vi)
	// The restarted member must re-enter: wait until every peer's view
	// has it alive and it leads partition 0 again (it is the first
	// rendezvous replica, so leadership falls back after the takeover
	// handshake).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := cc.refreshMeta(); err == nil {
			if m, err := cc.Meta(); err == nil && m.LeaderOf("t", 0) == victim {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted member never took its leadership back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	produce(4000, 6000)

	got := fetchAllValues(t, cc, "t")
	if len(got) != 6000 {
		t.Fatalf("fetched %d distinct values, want 6000", len(got))
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("value %v appears %d times", v, c)
		}
	}
	// ISR re-entry: both replicas of both partitions hold identical
	// logs again (MinISR=2 produce above already required the restarted
	// member's acks).
	dc.waitConverged("t", 2)

	// The pre-kill commit survived the restart and is exact.
	if off, err := cc.Committed("g", "t", 0); err != nil || off != 123 {
		t.Fatalf("committed after rejoin = %d, %v (want 123)", off, err)
	}
}

// TestDurableClusterFollowerRestartCatchesUp kills a FOLLOWER, streams
// more records, restarts it, and verifies it drains the gap (rejoin
// pull + push backfill) without disturbing the leader.
func TestDurableClusterFollowerRestartCatchesUp(t *testing.T) {
	dc := startDurableCluster(t, 3, nil)
	cc := dc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Produce("t", keylessRecs(0, 1000)); err != nil {
		t.Fatal(err)
	}
	m, _ := cc.Meta()
	reps := replicasFor("t", 0, dc.ids, 2)
	follower := reps[1]
	if follower == m.LeaderOf("t", 0) {
		follower = reps[0]
	}
	fi := dc.indexOf(follower)
	dc.kill(fi)
	// Produce while the follower is down (MinISR shrinks after
	// detection), then bring it back and keep producing.
	for v := 1000; v < 3000; v += 100 {
		if _, err := cc.Produce("t", keylessRecs(v, 100)); err != nil {
			t.Fatalf("produce at %d: %v", v, err)
		}
	}
	dc.restart(fi)
	// Wait until the leader resurrects the follower in its view, so
	// the next produces require (and exercise) its acks again.
	li := dc.indexOf(m.LeaderOf("t", 0))
	deadline := time.Now().Add(10 * time.Second)
	for dc.nodes[li].isDead(follower) {
		if time.Now().After(deadline) {
			t.Fatal("leader never resurrected the restarted follower")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for v := 3000; v < 4000; v += 100 {
		if _, err := cc.Produce("t", keylessRecs(v, 100)); err != nil {
			t.Fatalf("produce at %d: %v", v, err)
		}
	}
	got := fetchAllValues(t, cc, "t")
	if len(got) != 4000 {
		t.Fatalf("fetched %d distinct values, want 4000", len(got))
	}
	dc.waitConverged("t", 1)
}

// TestDurableSoloBrokerRestart pins the standalone durable path: a
// plain brokerd with -data-dir recovers its topics, records and
// consumer-group offsets across a restart.
func TestDurableSoloBrokerRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(StorageConfig{Dir: dir, Policy: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Produce("t", recs("a", 500)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit("g", "t", 1, 42); err != nil {
		t.Fatal(err)
	}
	b.Close()

	re, err := Open(StorageConfig{Dir: dir, Policy: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if parts, err := re.Partitions("t"); err != nil || parts != 2 {
		t.Fatalf("recovered partitions = %d, %v", parts, err)
	}
	total := 0
	for p := 0; p < 2; p++ {
		hwm, err := re.HighWatermark("t", p)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := re.Fetch("t", p, 0, int(hwm)+10)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(rs)) != hwm {
			t.Fatalf("partition %d: fetched %d of %d", p, len(rs), hwm)
		}
		for i, r := range rs {
			if r.Offset != int64(i) || r.Topic != "t" || r.Partition != p {
				t.Fatalf("bad recovered record %+v at %d", r, i)
			}
		}
		total += len(rs)
	}
	if total != 500 {
		t.Fatalf("recovered %d records, want 500", total)
	}
	if off, err := re.Committed("g", "t", 1); err != nil || off != 42 {
		t.Fatalf("recovered committed = %d, %v", off, err)
	}
	// A topic that exists already is reported as such (brokerd
	// tolerates this on restart).
	if err := re.CreateTopic("t", 2); err != ErrTopicExists {
		t.Fatalf("recreate recovered topic: %v", err)
	}
}

// TestBrokerCrashRecoveryProperty is the crash-recovery property test:
// repeatedly "kill -9" a durable solo broker mid-stream (abandon it
// without closing, sometimes tearing the tail of a segment file by
// direct manipulation, as a crash mid-write would), restart it from
// the same directory, and assert that every acked record is served
// exactly once, at its original offset, with no duplicates — across
// many random batch patterns.
func TestBrokerCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dir := t.TempDir()
	acked := 0
	b, err := Open(StorageConfig{Dir: dir, Policy: storage.SyncAlways, SegmentRecords: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 25; iter++ {
		// Produce a random number of random-size batches.
		for rounds := rng.Intn(4); rounds >= 0; rounds-- {
			n := 1 + rng.Intn(300)
			if _, err := b.Produce("t", keylessRecs(acked, n)); err != nil {
				t.Fatal(err)
			}
			acked += n
		}
		// Crash: abandon the broker (no Close, no final sync), and in
		// some iterations tear the last segment's tail as an
		// interrupted write would.
		switch rng.Intn(3) {
		case 1:
			tearSegmentTail(t, b, rng, validFramePrefix)
		case 2:
			tearSegmentTail(t, b, rng, garbageBytes)
		}
		re, err := Open(StorageConfig{Dir: dir, Policy: storage.SyncAlways, SegmentRecords: 128})
		if err != nil {
			t.Fatalf("iteration %d: reopen: %v", iter, err)
		}
		hwm, err := re.HighWatermark("t", 0)
		if err != nil {
			t.Fatal(err)
		}
		if hwm != int64(acked) {
			t.Fatalf("iteration %d: recovered hwm %d, want %d acked", iter, hwm, acked)
		}
		seen := make(map[float64]bool, acked)
		for off := int64(0); off < hwm; {
			rs, err := re.Fetch("t", 0, off, 1000)
			if err != nil || len(rs) == 0 {
				t.Fatalf("iteration %d: fetch@%d: %d recs, %v", iter, off, len(rs), err)
			}
			for i, r := range rs {
				if r.Offset != off+int64(i) {
					t.Fatalf("iteration %d: offset %d at %d+%d", iter, r.Offset, off, i)
				}
				if seen[r.Value] {
					t.Fatalf("iteration %d: value %v served twice", iter, r.Value)
				}
				if int(r.Value) != int(r.Offset) {
					t.Fatalf("iteration %d: value %v at offset %d", iter, r.Value, r.Offset)
				}
				seen[r.Value] = true
			}
			off += int64(len(rs))
		}
		if len(seen) != acked {
			t.Fatalf("iteration %d: served %d distinct records, want %d", iter, len(seen), acked)
		}
		b = re
	}
	b.Close()
}

// validFramePrefix is a torn write: the first bytes of a well-formed
// record frame (length + CRC + partial payload), as a crash mid-write
// leaves behind.
func validFramePrefix(rng *rand.Rand) []byte {
	payload := make([]byte, 0, 24)
	key := "torn"
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(key)))
	payload = append(payload, key...)
	payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(99))
	payload = binary.BigEndian.AppendUint64(payload, uint64(time.Now().UnixNano()))
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	return frame[:1+rng.Intn(len(frame)-1)]
}

// garbageBytes is a corrupt write: random bytes that parse as neither
// a frame header nor a payload.
func garbageBytes(rng *rand.Rand) []byte {
	buf := make([]byte, 1+rng.Intn(64))
	rng.Read(buf)
	return buf
}

// tearSegmentTail appends torn bytes to the newest segment file of the
// broker's only partition, simulating a write cut short by the crash.
func tearSegmentTail(t *testing.T, b *Broker, rng *rand.Rand, torn func(*rand.Rand) []byte) {
	t.Helper()
	entries, err := os.ReadDir(b.PartitionDir("t", 0))
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		return // nothing on disk yet
	}
	f, err := os.OpenFile(filepath.Join(b.PartitionDir("t", 0), last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if _, err := f.Write(torn(rng)); err != nil {
		t.Fatal(err)
	}
}
