package broker

// Binary wire codec (version 1) for the broker's hot data-plane ops.
//
// The TCP framing stays "4-byte big-endian length + payload", but the
// payload's first byte now selects the codec: '{' (a JSON document) is
// the legacy lockstep protocol, binVersion introduces a compact binary
// message. Binary messages carry a correlation ID so many requests can
// be in flight on one connection (see client.go); the hot ops
// (produce/fetch/hwm) encode records as fixed fields — length-prefixed
// key, float64 value bits, int64 unix-nano time — while the rare
// control ops (create/parts/commit/committed) ride through as JSON
// documents wrapped in a binary envelope, so only one wire dialect
// needs versioning.
//
//	request  = [1]version [1]op [8]corrID  op-specific-body
//	response = [1]version [1]op [8]corrID [1]status  body
//	record   = [4]keyLen key [8]float64-bits(value) [8]unixNanos(time)
//
// status 0 is success; any other status means the body is an error
// message. The zero time.Time is encoded as the math.MinInt64 sentinel
// (its UnixNano is undefined); NaN and ±Inf values round-trip exactly
// via their bit patterns, which the JSON codec cannot represent at all.
// Times outside the int64 unix-nano range (years ≲1678 or ≳2262) are
// not representable; stream timestamps are always inside it.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"streamapprox/internal/broker/storage"
	"streamapprox/internal/stream"
)

// binVersion is the codec version byte opening every binary frame. It
// must never collide with '{' (0x7B), the first byte of a JSON frame.
const binVersion byte = 0x01

// binVersion2 extends the request header with an 8-byte trace ID after
// the correlation ID — the wire leg of cross-process request tracing.
// A client only sends v2 frames to a peer whose hello answered with
// version >= 2, and only for requests that actually carry a non-zero
// trace, so old peers never see a header they cannot parse. Responses
// stay v1: the client correlates them by ID and already knows the
// trace it stamped on the request.
const binVersion2 byte = 0x02

// Binary op codes.
const (
	binOpProduce byte = 1
	binOpFetch   byte = 2
	binOpHWM     byte = 3
	binOpJSON    byte = 4 // JSON control request wrapped in a binary envelope
	// binOpProducePart appends to one explicit partition: the cluster
	// routing client partitions on its side and sends each batch to the
	// partition leader, carrying a producer id + sequence number so a
	// retried batch after a leader failover is deduplicated.
	binOpProducePart byte = 5
	// binOpReplicate is the leader→follower hot op: an appended chunk
	// streamed at an explicit base offset, answered with the follower's
	// resulting high watermark (short answers drive backfill).
	binOpReplicate byte = 6

	// Raw-frame ("F") ops: the record batch travels as a chunk of CRC
	// frames in the storage engine's segment layout (storage/frames.go)
	// instead of the bare record encoding above. The chunk is validated
	// once — structure + CRC — where it enters the process, then
	// appended to the log, forwarded leader→follower, and served back to
	// consumers verbatim; no hop re-encodes a record. Clients use them
	// against peers whose hello answered version >= helloFrames and fall
	// back to the record ops otherwise.
	binOpProduceF     byte = 7  // produce, key-routed frame chunk
	binOpProducePartF byte = 8  // partitioned produce with pid/seq dedup
	binOpReplicateF   byte = 9  // leader→follower verbatim chunk
	binOpFetchF       byte = 10 // fetch answered as a frame chunk
	binOpRFetchF      byte = 11 // replica catch-up fetch, frame chunk
	binOpRHWMB        byte = 12 // replica high watermark (binary form)

	// binOpReplicateMF is the group-commit replication op: one leader→
	// follower RPC carrying the pending frame chunks of SEVERAL
	// partitions as length-prefixed sections (each section the exact
	// body of a binOpReplicateF — the frames still travel verbatim, the
	// batch only amortizes the round-trip), answered with one batched
	// ack of per-section high watermarks.
	binOpReplicateMF byte = 13
)

// helloFrames is the feature level advertised by the hello op: 1 =
// binary codec, 2 = trace-carrying v2 request headers, 3 = raw-frame
// ops. The request/response header versions stay binVersion/binVersion2
// — frames change the BODY encoding, not the header.
const helloFrames = 3

// helloBatch is the feature level adding the multi-partition replicate
// batch op (binOpReplicateMF): a leader may coalesce pending chunks for
// every partition it leads to one follower into a single RPC. Peers
// answering a lower level get per-partition binOpReplicateF instead —
// same resulting logs, one round-trip per chunk.
const helloBatch = 4

const (
	binReqHdrLen        = 10 // version + op + corrID
	binReqHdrLenV2      = 18 // version + op + corrID + traceID
	binRespHdrLen       = 11 // version + op + corrID + status
	binStatusOK    byte = 0
	binStatusErr   byte = 1
)

// minWireRecord is the smallest encoded record (empty key), used to
// sanity-check record counts before allocating.
const minWireRecord = 4 + 8 + 8

// minWireFrame is the smallest CRC frame (empty key): the 8-byte
// length+CRC header plus the minimal payload.
const minWireFrame = 8 + minWireRecord

// zeroTimeNanos marks the zero time.Time on the wire.
const zeroTimeNanos = math.MinInt64

func timeToNanos(t time.Time) int64 {
	if t.IsZero() {
		return zeroTimeNanos
	}
	return t.UnixNano()
}

func nanosToTime(n int64) time.Time {
	if n == zeroTimeNanos {
		return time.Time{}
	}
	// Normalize to UTC: the wire carries an instant, not a zone, and
	// the JSON codec's RFC3339 "Z" timestamps also decode to UTC.
	return time.Unix(0, n).UTC()
}

// frameBuf is a pooled frame encode/decode buffer. Steady-state
// produce/fetch reuses these, so the per-record wire cost is a copy
// into an already-allocated buffer rather than fresh garbage.
type frameBuf struct{ b []byte }

// maxPooledFrame bounds the buffers kept in the pool so one giant
// frame does not pin memory forever.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} }}

func getFrame() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrame(fb *frameBuf) {
	if cap(fb.b) > maxPooledFrame {
		return
	}
	fb.b = fb.b[:0]
	framePool.Put(fb)
}

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// writeRawFrame writes one length-prefixed frame from an encoded payload.
func writeRawFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameInto reads one length-prefixed frame into fb, reusing its
// backing array when large enough.
func readFrameInto(r io.Reader, fb *frameBuf) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(fb.b)) < n {
		fb.b = make([]byte, n)
	} else {
		fb.b = fb.b[:n]
	}
	_, err := io.ReadFull(r, fb.b)
	return err
}

// errTruncatedFrame reports a binary payload shorter than its own
// structure claims.
var errTruncatedFrame = errors.New("broker: truncated binary frame")

// wireCursor is a bounds-checked reader over a binary payload. After
// the first short read every accessor returns zero values and err is
// set, so decoders can check once at the end.
type wireCursor struct {
	b   []byte
	off int
	err error
}

func (c *wireCursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if c.off+n > len(c.b) {
		c.err = errTruncatedFrame
		return false
	}
	return true
}

func (c *wireCursor) u8() byte {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *wireCursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *wireCursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *wireCursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *wireCursor) str(n int) string {
	if n < 0 || !c.need(n) {
		if c.err == nil {
			c.err = errTruncatedFrame
		}
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// bytes returns a view of the next n payload bytes, valid only until
// the frame buffer is reused.
func (c *wireCursor) bytes(n int) []byte {
	if n < 0 || !c.need(n) {
		if c.err == nil {
			c.err = errTruncatedFrame
		}
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

// rest returns the unread remainder of the payload.
func (c *wireCursor) rest() []byte {
	if c.err != nil {
		return nil
	}
	return c.b[c.off:]
}

func (c *wireCursor) remaining() int { return len(c.b) - c.off }

// ---- request encoding (client side) ----

// appendBinReqHeader emits the smallest header that carries the
// request's metadata: the v1 form when there is no trace to propagate,
// the v2 form (with the trace ID after the correlation ID) otherwise.
// Callers guarantee trace is zero when the peer has not negotiated v2.
func appendBinReqHeader(b []byte, op byte, corr, trace uint64) []byte {
	if trace == 0 {
		b = append(b, binVersion, op)
		return appendU64(b, corr)
	}
	b = append(b, binVersion2, op)
	b = appendU64(b, corr)
	return appendU64(b, trace)
}

func appendRecord(b []byte, r *Record) []byte {
	b = appendU32(b, uint32(len(r.Key)))
	b = append(b, r.Key...)
	b = appendU64(b, math.Float64bits(r.Value))
	return appendU64(b, uint64(timeToNanos(r.Time)))
}

// encodeProduceReq encodes a produce request. Only key/value/time are
// shipped: the server routes and stamps topic, partition and offset.
func encodeProduceReq(fb *frameBuf, corr, trace uint64, topic string, recs []Record) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpProduce, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(len(recs)))
	for i := range recs {
		fb.b = appendRecord(fb.b, &recs[i])
	}
}

func encodeFetchReq(fb *frameBuf, corr, trace uint64, topic string, partition int, offset int64, max int) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpFetch, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, uint64(offset))
	if max < 0 {
		max = 0
	}
	fb.b = appendU32(fb.b, uint32(max))
}

func encodeHWMReq(fb *frameBuf, corr, trace uint64, topic string, partition int) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpHWM, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
}

// encodeJSONReq wraps a marshalled JSON control request in the binary
// envelope so it shares the pipelined connection and correlation IDs.
func encodeJSONReq(fb *frameBuf, corr, trace uint64, payload []byte) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpJSON, corr, trace)
	fb.b = append(fb.b, payload...)
}

// encodeProducePartReq encodes a partitioned produce: explicit target
// partition plus the producer id / sequence pair for idempotent retries
// (pid 0 disables deduplication).
func encodeProducePartReq(fb *frameBuf, corr, trace uint64, topic string, partition int, pid, seq uint64, recs []Record) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpProducePart, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, pid)
	fb.b = appendU64(fb.b, seq)
	fb.b = appendU32(fb.b, uint32(len(recs)))
	for i := range recs {
		fb.b = appendRecord(fb.b, &recs[i])
	}
}

// encodeReplicateReq encodes one leader→follower replicated chunk. The
// sender id and epoch fence stale leaders; base is the exact offset the
// chunk starts at in the leader's log; committed is the leader's
// committed watermark (the follower persists it as its restart
// truncation point); metas are the producer-batch journal entries
// covering the chunk's range, so the follower can adopt dedup state
// for every producer whose records it receives.
func encodeReplicateReq(fb *frameBuf, corr, trace uint64, epoch int64, sender, topic string, partition int, base, committed int64, metas []batchMeta, recs []Record) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpReplicate, corr, trace)
	fb.b = appendU64(fb.b, uint64(epoch))
	fb.b = appendU16(fb.b, uint16(len(sender)))
	fb.b = append(fb.b, sender...)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, uint64(base))
	fb.b = appendU64(fb.b, uint64(committed))
	fb.b = appendU32(fb.b, uint32(len(metas)))
	for _, bm := range metas {
		fb.b = appendU64(fb.b, bm.pid)
		fb.b = appendU64(fb.b, bm.seq)
		fb.b = appendU64(fb.b, uint64(bm.base))
		fb.b = appendU64(fb.b, uint64(bm.end))
	}
	fb.b = appendU32(fb.b, uint32(len(recs)))
	for i := range recs {
		fb.b = appendRecord(fb.b, &recs[i])
	}
}

// ---- raw-frame request encoding (client side) ----

// appendFrameChunk emits a count-prefixed raw frame chunk verbatim —
// the forwarding form, used when the sender already holds validated
// frames (leader→follower replication, node→leader routing).
func appendFrameChunk(b []byte, frames []byte, count int) []byte {
	b = appendU32(b, uint32(count))
	return append(b, frames...)
}

// appendRecFrameChunk encodes a record batch as a count-prefixed frame
// chunk — the producing client's entry into the zero-copy path: the
// frames (CRCs included) are computed HERE, once, and every subsequent
// hop ships these exact bytes.
func appendRecFrameChunk(b []byte, recs []Record) []byte {
	b = appendU32(b, uint32(len(recs)))
	for i := range recs {
		b = storage.AppendFrame(b, &recs[i])
	}
	return b
}

// encodeProduceFramesReq is encodeProduceReq in the raw-frame dialect.
func encodeProduceFramesReq(fb *frameBuf, corr, trace uint64, topic string, recs []Record) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpProduceF, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendRecFrameChunk(fb.b, recs)
}

// encodeProducePartFramesReq is encodeProducePartReq in the raw-frame
// dialect.
func encodeProducePartFramesReq(fb *frameBuf, corr, trace uint64, topic string, partition int, pid, seq uint64, recs []Record) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpProducePartF, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, pid)
	fb.b = appendU64(fb.b, seq)
	fb.b = appendRecFrameChunk(fb.b, recs)
}

// encodeProducePartFwdReq forwards an already-validated frame chunk to
// a partition leader (the routed-produce hop between nodes).
func encodeProducePartFwdReq(fb *frameBuf, corr, trace uint64, topic string, partition int, pid, seq uint64, frames []byte, count int) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpProducePartF, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, pid)
	fb.b = appendU64(fb.b, seq)
	fb.b = appendFrameChunk(fb.b, frames, count)
}

// encodeReplicateFramesReq is encodeReplicateReq with the chunk shipped
// as the verbatim frames the leader appended — the tentpole hop: what
// the producer encoded is what the follower's disk receives.
func encodeReplicateFramesReq(fb *frameBuf, corr, trace uint64, epoch int64, sender, topic string, partition int, base, committed int64, metas []batchMeta, frames []byte, count int) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpReplicateF, corr, trace)
	fb.b = appendU64(fb.b, uint64(epoch))
	fb.b = appendU16(fb.b, uint16(len(sender)))
	fb.b = append(fb.b, sender...)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, uint64(base))
	fb.b = appendU64(fb.b, uint64(committed))
	fb.b = appendU32(fb.b, uint32(len(metas)))
	for _, bm := range metas {
		fb.b = appendU64(fb.b, bm.pid)
		fb.b = appendU64(fb.b, bm.seq)
		fb.b = appendU64(fb.b, uint64(bm.base))
		fb.b = appendU64(fb.b, uint64(bm.end))
	}
	fb.b = appendFrameChunk(fb.b, frames, count)
}

// replSection is one partition's contiguous frame chunk inside a
// multi-partition replicate batch (binOpReplicateMF): the same fields a
// per-partition replicate carries, minus epoch and sender, which are
// hoisted to the batch header — one fencing decision covers the whole
// batch.
type replSection struct {
	topic     string
	partition int
	base      int64
	committed int64
	metas     []batchMeta
	frames    []byte
	count     int
}

// encodeReplicateMFReq encodes a coalesced multi-partition replicate:
// epoch + sender once, then each section with an explicit frame byte
// length (sections are concatenated, so unlike a lone replicate the
// chunk cannot simply run to the payload's end).
func encodeReplicateMFReq(fb *frameBuf, corr, trace uint64, epoch int64, sender string, secs []replSection) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpReplicateMF, corr, trace)
	fb.b = appendU64(fb.b, uint64(epoch))
	fb.b = appendU16(fb.b, uint16(len(sender)))
	fb.b = append(fb.b, sender...)
	fb.b = appendU32(fb.b, uint32(len(secs)))
	for i := range secs {
		s := &secs[i]
		fb.b = appendU16(fb.b, uint16(len(s.topic)))
		fb.b = append(fb.b, s.topic...)
		fb.b = appendU32(fb.b, uint32(int32(s.partition)))
		fb.b = appendU64(fb.b, uint64(s.base))
		fb.b = appendU64(fb.b, uint64(s.committed))
		fb.b = appendU32(fb.b, uint32(len(s.metas)))
		for _, bm := range s.metas {
			fb.b = appendU64(fb.b, bm.pid)
			fb.b = appendU64(fb.b, bm.seq)
			fb.b = appendU64(fb.b, uint64(bm.base))
			fb.b = appendU64(fb.b, uint64(bm.end))
		}
		fb.b = appendU32(fb.b, uint32(s.count))
		fb.b = appendU32(fb.b, uint32(len(s.frames)))
		fb.b = append(fb.b, s.frames...)
	}
}

// encodeFetchFramesReq asks for a fetch answered as a raw frame chunk.
func encodeFetchFramesReq(fb *frameBuf, corr, trace uint64, topic string, partition int, offset int64, max int) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpFetchF, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, uint64(offset))
	if max < 0 {
		max = 0
	}
	fb.b = appendU32(fb.b, uint32(max))
}

// encodeRFetchReq is the binary form of the "rfetch" replica catch-up
// op: like a fetch but carrying the requesting replica's id (clamping
// is by replica rules, not consumer rules) and answered as frames.
func encodeRFetchReq(fb *frameBuf, corr, trace uint64, sender, topic string, partition int, offset int64, max int) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpRFetchF, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(sender)))
	fb.b = append(fb.b, sender...)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
	fb.b = appendU64(fb.b, uint64(offset))
	if max < 0 {
		max = 0
	}
	fb.b = appendU32(fb.b, uint32(max))
}

// encodeRHWMReq is the binary form of the "rhwm" replica watermark op.
func encodeRHWMReq(fb *frameBuf, corr, trace uint64, sender, topic string, partition int) {
	fb.b = appendBinReqHeader(fb.b[:0], binOpRHWMB, corr, trace)
	fb.b = appendU16(fb.b, uint16(len(sender)))
	fb.b = append(fb.b, sender...)
	fb.b = appendU16(fb.b, uint16(len(topic)))
	fb.b = append(fb.b, topic...)
	fb.b = appendU32(fb.b, uint32(int32(partition)))
}

// ---- request decoding (server side) ----

type binRequest struct {
	op        byte
	corr      uint64
	trace     uint64 // request trace ID (0 = untraced / v1 frame)
	topic     string
	partition int
	offset    int64
	max       int
	recs      []Record
	jsonBody  []byte

	// Raw-frame ops: the validated chunk (a view into the request
	// buffer, valid until the next read on the connection) and its
	// frame count. Whatever reaches a handler here has passed
	// ValidateFrames — structure and CRC — so it is safe to append and
	// forward verbatim.
	frames []byte
	count  int

	// Cluster fields (producePart / replicate).
	pid       uint64
	seq       uint64
	epoch     int64
	sender    string
	base      int64
	committed int64
	metas     []batchMeta

	// Multi-partition replicate batch (binOpReplicateMF): each
	// section's frames are a view into the request buffer and have
	// passed ValidateFrames, like the single-partition frames field.
	sections []replSection
}

func decodeBinRequest(payload []byte) (binRequest, error) {
	cur := &wireCursor{b: payload}
	var req binRequest
	ver := cur.u8()
	if ver != binVersion && ver != binVersion2 {
		return req, errors.New("broker: bad binary version")
	}
	req.op = cur.u8()
	req.corr = cur.u64()
	if ver == binVersion2 {
		req.trace = cur.u64()
	}
	switch req.op {
	case binOpProduce:
		req.topic = cur.str(int(cur.u16()))
		req.recs = decodeRecordBatch(cur)
	case binOpFetch:
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
		req.offset = int64(cur.u64())
		req.max = int(cur.u32())
	case binOpHWM:
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
	case binOpProducePart:
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
		req.pid = cur.u64()
		req.seq = cur.u64()
		req.recs = decodeRecordBatch(cur)
	case binOpReplicate:
		req.epoch = int64(cur.u64())
		req.sender = cur.str(int(cur.u16()))
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
		req.base = int64(cur.u64())
		req.committed = int64(cur.u64())
		nmetas := int(cur.u32())
		if cur.err == nil && nmetas*32 > cur.remaining() {
			return req, errTruncatedFrame
		}
		if cur.err == nil && nmetas > 0 {
			req.metas = make([]batchMeta, nmetas)
			for i := range req.metas {
				req.metas[i] = batchMeta{
					pid:  cur.u64(),
					seq:  cur.u64(),
					base: int64(cur.u64()),
					end:  int64(cur.u64()),
				}
			}
		}
		req.recs = decodeRecordBatch(cur)
	case binOpJSON:
		req.jsonBody = cur.rest()
	case binOpProduceF:
		req.topic = cur.str(int(cur.u16()))
		req.count, req.frames = decodeFrameChunk(cur)
	case binOpProducePartF:
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
		req.pid = cur.u64()
		req.seq = cur.u64()
		req.count, req.frames = decodeFrameChunk(cur)
	case binOpReplicateF:
		req.epoch = int64(cur.u64())
		req.sender = cur.str(int(cur.u16()))
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
		req.base = int64(cur.u64())
		req.committed = int64(cur.u64())
		nmetas := int(cur.u32())
		if cur.err == nil && nmetas*32 > cur.remaining() {
			return req, errTruncatedFrame
		}
		if cur.err == nil && nmetas > 0 {
			req.metas = make([]batchMeta, nmetas)
			for i := range req.metas {
				req.metas[i] = batchMeta{
					pid:  cur.u64(),
					seq:  cur.u64(),
					base: int64(cur.u64()),
					end:  int64(cur.u64()),
				}
			}
		}
		req.count, req.frames = decodeFrameChunk(cur)
	case binOpReplicateMF:
		req.epoch = int64(cur.u64())
		req.sender = cur.str(int(cur.u16()))
		nsecs := int(cur.u32())
		// Each section costs at least its fixed header; a count that
		// cannot fit is a truncated or hostile frame, reject before
		// allocating.
		if cur.err == nil && nsecs*(2+4+8+8+4+4+4) > cur.remaining() {
			return req, errTruncatedFrame
		}
		if cur.err == nil && nsecs > 0 {
			req.sections = make([]replSection, 0, nsecs)
			for i := 0; i < nsecs && cur.err == nil; i++ {
				var s replSection
				s.topic = cur.str(int(cur.u16()))
				s.partition = int(int32(cur.u32()))
				s.base = int64(cur.u64())
				s.committed = int64(cur.u64())
				nmetas := int(cur.u32())
				if cur.err == nil && nmetas*32 > cur.remaining() {
					return req, errTruncatedFrame
				}
				if cur.err == nil && nmetas > 0 {
					s.metas = make([]batchMeta, nmetas)
					for j := range s.metas {
						s.metas[j] = batchMeta{
							pid:  cur.u64(),
							seq:  cur.u64(),
							base: int64(cur.u64()),
							end:  int64(cur.u64()),
						}
					}
				}
				// The single validation gate applies per section: every
				// chunk entering the process is structure+CRC checked
				// exactly once, batched or not.
				declared := int(cur.u32())
				s.frames = cur.bytes(int(cur.u32()))
				if cur.err != nil {
					break
				}
				n, err := storage.ValidateFrames(s.frames)
				if err != nil {
					cur.err = err
					break
				}
				if n != declared {
					cur.err = errTruncatedFrame
					break
				}
				s.count = n
				req.sections = append(req.sections, s)
			}
		}
	case binOpFetchF:
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
		req.offset = int64(cur.u64())
		req.max = int(cur.u32())
	case binOpRFetchF:
		req.sender = cur.str(int(cur.u16()))
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
		req.offset = int64(cur.u64())
		req.max = int(cur.u32())
	case binOpRHWMB:
		req.sender = cur.str(int(cur.u16()))
		req.topic = cur.str(int(cur.u16()))
		req.partition = int(int32(cur.u32()))
	default:
		return req, fmt.Errorf("broker: unknown binary op %d", req.op)
	}
	return req, cur.err
}

// decodeFrameChunk decodes a count-prefixed raw frame chunk, fully
// validating it — structure and CRC of every frame, count matching the
// prefix. This is the zero-copy path's single validation gate: a
// corrupted or truncated chunk is rejected HERE, before any append or
// forward, and everything downstream trusts the bytes structurally.
func decodeFrameChunk(cur *wireCursor) (int, []byte) {
	declared := int(cur.u32())
	if cur.err != nil {
		return 0, nil
	}
	if declared*minWireFrame > cur.remaining() {
		cur.err = errTruncatedFrame
		return 0, nil
	}
	frames := cur.rest()
	cur.off = len(cur.b)
	n, err := storage.ValidateFrames(frames)
	if err != nil {
		cur.err = err
		return 0, nil
	}
	if n != declared {
		cur.err = errTruncatedFrame
		return 0, nil
	}
	return n, frames
}

// framesToRecords decodes a validated frame chunk of count records —
// the consumer end of a frames fetch, and the compatibility bridge used
// when a peer has not negotiated the frame ops and must be sent the
// record encoding instead. Repeated keys are interned so a hot key
// costs one allocation per chunk.
func framesToRecords(frames []byte, count int, topic string, partition int, base int64) []Record {
	recs := make([]Record, 0, count)
	var intern map[string]string
	it := storage.IterFrames(frames)
	for i := 0; it.Next(); i++ {
		kb, bits, nanos := storage.FrameFields(it.Payload())
		key := ""
		if len(kb) > 0 {
			if intern == nil {
				intern = make(map[string]string, 8)
			}
			s, ok := intern[string(kb)]
			if !ok {
				s = string(kb)
				intern[s] = s
			}
			key = s
		}
		recs = append(recs, Record{
			Topic:     topic,
			Partition: partition,
			Offset:    base + int64(i),
			Key:       key,
			Value:     math.Float64frombits(bits),
			Time:      nanosToTime(nanos),
		})
	}
	return recs
}

// framesToBatch decodes a validated frame chunk straight into a
// columnar batch — the vectorized consumer end of a frames fetch. The
// frame time field uses the same zero-time sentinel as the batch's
// Times column, so nanos copy through unconverted, and stratum keys are
// dictionary-interned by the batch (one string allocation per distinct
// key per batch).
func framesToBatch(frames []byte, base int64, b *stream.EventBatch) int {
	n := 0
	it := storage.IterFrames(frames)
	for it.Next() {
		kb, bits, nanos := storage.FrameFields(it.Payload())
		b.Append(b.InternBytes(kb), math.Float64frombits(bits), nanos)
		n++
	}
	b.Base = base
	return n
}

// decodeRecordBatch decodes a count-prefixed record batch, leaving the
// cursor's error set on truncation.
func decodeRecordBatch(cur *wireCursor) []Record {
	count := int(cur.u32())
	if cur.err != nil {
		return nil
	}
	if count*minWireRecord > cur.remaining() {
		cur.err = errTruncatedFrame
		return nil
	}
	recs := make([]Record, count)
	intern := make(map[string]string, 8)
	for i := range recs {
		decodeRecordInto(cur, &recs[i], intern)
	}
	return recs
}

// decodeRecordInto decodes one record, interning its key through the
// per-batch map: stream keys are stratum ids drawn from a small set, so
// a batch of thousands of records costs a handful of string
// allocations instead of one each.
func decodeRecordInto(cur *wireCursor, r *Record, intern map[string]string) {
	kb := cur.bytes(int(cur.u32()))
	if s, ok := intern[string(kb)]; ok { // no alloc: compiler-optimized map lookup
		r.Key = s
	} else {
		s = string(kb)
		intern[s] = s
		r.Key = s
	}
	r.Value = math.Float64frombits(cur.u64())
	r.Time = nanosToTime(int64(cur.u64()))
}

// ---- response encoding (server side) ----

func appendBinRespHeader(b []byte, op byte, corr uint64, status byte) []byte {
	b = append(b, binVersion, op)
	b = appendU64(b, corr)
	return append(b, status)
}

func encodeErrResp(fb *frameBuf, op byte, corr uint64, msg string) {
	fb.b = appendBinRespHeader(fb.b[:0], op, corr, binStatusErr)
	fb.b = append(fb.b, msg...)
}

func encodeProduceResp(fb *frameBuf, corr uint64, n int) {
	fb.b = appendBinRespHeader(fb.b[:0], binOpProduce, corr, binStatusOK)
	fb.b = appendU32(fb.b, uint32(n))
}

func encodeProducePartResp(fb *frameBuf, corr uint64, n int) {
	fb.b = appendBinRespHeader(fb.b[:0], binOpProducePart, corr, binStatusOK)
	fb.b = appendU32(fb.b, uint32(n))
}

// encodeReplicateResp carries the follower's high watermark after
// applying (or skipping) the chunk; a watermark short of the chunk's
// base tells the leader to backfill from there.
func encodeReplicateResp(fb *frameBuf, corr uint64, hwm int64) {
	fb.b = appendBinRespHeader(fb.b[:0], binOpReplicate, corr, binStatusOK)
	fb.b = appendU64(fb.b, uint64(hwm))
}

// encodeFetchResp encodes the fetched records. Offsets in a fetch are
// consecutive from the request offset, so only the base is shipped and
// the client reconstructs topic/partition/offset per record.
func encodeFetchResp(fb *frameBuf, corr uint64, base int64, recs []Record) {
	fb.b = appendBinRespHeader(fb.b[:0], binOpFetch, corr, binStatusOK)
	fb.b = appendU64(fb.b, uint64(base))
	fb.b = appendU32(fb.b, uint32(len(recs)))
	for i := range recs {
		fb.b = appendRecord(fb.b, &recs[i])
	}
}

func encodeHWMResp(fb *frameBuf, corr uint64, hwm int64) {
	fb.b = appendBinRespHeader(fb.b[:0], binOpHWM, corr, binStatusOK)
	fb.b = appendU64(fb.b, uint64(hwm))
}

// encodeCountResp answers any produce-family op with the record count.
func encodeCountResp(fb *frameBuf, op byte, corr uint64, n int) {
	fb.b = appendBinRespHeader(fb.b[:0], op, corr, binStatusOK)
	fb.b = appendU32(fb.b, uint32(n))
}

// encodeWatermarkResp answers any watermark-carrying op (replicateF,
// rhwm) with an int64 watermark.
func encodeWatermarkResp(fb *frameBuf, op byte, corr uint64, hwm int64) {
	fb.b = appendBinRespHeader(fb.b[:0], op, corr, binStatusOK)
	fb.b = appendU64(fb.b, uint64(hwm))
}

// encodeReplicateMFResp answers a multi-partition replicate batch with
// the follower's resulting high watermark per section, in request order
// — the single batched ack whose arrival wakes every producer parked on
// the round (group commit).
func encodeReplicateMFResp(fb *frameBuf, corr uint64, hwms []int64) {
	fb.b = appendBinRespHeader(fb.b[:0], binOpReplicateMF, corr, binStatusOK)
	fb.b = appendU32(fb.b, uint32(len(hwms)))
	for _, h := range hwms {
		fb.b = appendU64(fb.b, uint64(h))
	}
}

// beginFetchFramesResp opens a raw-frame fetch response — header, base
// offset, count placeholder — and returns the index where the count is
// patched once the frames are appended. The log's ReadFrames then
// appends the chunk DIRECTLY onto fb.b: the response is assembled in
// the server's pooled write buffer with no intermediate record slice or
// scratch buffer at all.
func beginFetchFramesResp(fb *frameBuf, op byte, corr uint64, base int64) int {
	fb.b = appendBinRespHeader(fb.b[:0], op, corr, binStatusOK)
	fb.b = appendU64(fb.b, uint64(base))
	at := len(fb.b)
	fb.b = appendU32(fb.b, 0)
	return at
}

// patchFrameCount fills the count placeholder left by
// beginFetchFramesResp.
func patchFrameCount(fb *frameBuf, at, count int) {
	binary.BigEndian.PutUint32(fb.b[at:], uint32(count))
}

func encodeJSONResp(fb *frameBuf, corr uint64, resp *wireResponse) error {
	payload, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	fb.b = appendBinRespHeader(fb.b[:0], binOpJSON, corr, binStatusOK)
	fb.b = append(fb.b, payload...)
	return nil
}

// ---- response decoding (client side) ----

// remoteError is a broker-level rejection that arrived as a well-formed
// error response — proof the peer is alive and answering, as opposed to
// a transport failure. The cluster's failure detector must never count
// one as a missed probe: a deposed leader whose replicates are fenced
// off would otherwise "detect" the healthy majority as dead.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return e.msg }

// isRemoteErr reports whether err is an answered broker rejection.
func isRemoteErr(err error) bool {
	var re *remoteError
	return errors.As(err, &re)
}

// decodeRespHeader validates a binary response frame and returns a
// cursor positioned at the body. A non-OK status is surfaced as the
// remote error carried in the body.
func decodeRespHeader(fb *frameBuf) (*wireCursor, error) {
	if len(fb.b) < binRespHdrLen || fb.b[0] != binVersion {
		return nil, errors.New("broker: malformed binary response")
	}
	cur := &wireCursor{b: fb.b, off: binRespHdrLen}
	if fb.b[10] != binStatusOK {
		return nil, &remoteError{msg: string(cur.rest())}
	}
	return cur, nil
}

// corrIDOf extracts the correlation ID from an encoded binary frame of
// either codec version (the ID sits at the same offset in both).
func corrIDOf(payload []byte) (uint64, bool) {
	if len(payload) < binReqHdrLen || (payload[0] != binVersion && payload[0] != binVersion2) {
		return 0, false
	}
	return binary.BigEndian.Uint64(payload[2:10]), true
}

func decodeFetchResp(cur *wireCursor, topic string, partition int) ([]Record, error) {
	base := int64(cur.u64())
	count := int(cur.u32())
	if cur.err == nil && count*minWireRecord > cur.remaining() {
		return nil, errTruncatedFrame
	}
	if cur.err != nil {
		return nil, cur.err
	}
	if count == 0 {
		return nil, nil
	}
	recs := make([]Record, count)
	intern := make(map[string]string, 8)
	for i := range recs {
		decodeRecordInto(cur, &recs[i], intern)
		recs[i].Topic = topic
		recs[i].Partition = partition
		recs[i].Offset = base + int64(i)
	}
	return recs, cur.err
}

// decodeFetchFramesResp decodes a raw-frame fetch response into
// records, re-verifying every frame's CRC — the consumer end of the
// end-to-end integrity story: the CRC computed by the producing client
// is checked against the bytes that came off the leader's storage, so
// corruption at ANY hop (or on disk) surfaces as an error here rather
// than as silently wrong values.
func decodeFetchFramesResp(cur *wireCursor, topic string, partition int) ([]Record, error) {
	base := int64(cur.u64())
	count := int(cur.u32())
	if cur.err != nil {
		return nil, cur.err
	}
	frames := cur.rest()
	n, err := storage.ValidateFrames(frames)
	if err != nil {
		return nil, err
	}
	if n != count {
		return nil, errTruncatedFrame
	}
	if count == 0 {
		return nil, nil
	}
	return framesToRecords(frames, count, topic, partition, base), nil
}
