package broker

import (
	"strings"
	"sync"
	"testing"
	"time"

	"streamapprox/internal/broker/storage"
	"streamapprox/internal/faults"
)

// Tests for the group-commit replication path: the multi-partition
// replicate codec, per-partition epoch fencing on the follower, the
// per-partition fallback against pre-batch peers, and batch re-drive
// when a follower blackholes mid-batch.

// ---- codec ----

func TestClusterReplicateMFCodecRoundTrip(t *testing.T) {
	secs := []replSection{
		{
			topic:     "alpha",
			partition: 3,
			base:      100,
			committed: 98,
			metas:     []batchMeta{{pid: 7, seq: 2, base: 100, end: 103}},
			frames:    storage.AppendRecordFrames(nil, keylessRecs(0, 3)),
			count:     3,
		},
		{
			topic:     "beta",
			partition: 0,
			base:      0,
			committed: 0,
			frames:    storage.AppendRecordFrames(nil, keylessRecs(50, 2)),
			count:     2,
		},
	}
	fb := getFrame()
	defer putFrame(fb)
	encodeReplicateMFReq(fb, 42, 9, 17, "n0", secs)
	req, err := decodeBinRequest(fb.b)
	if err != nil {
		t.Fatalf("decode replicateMF: %v", err)
	}
	if req.op != binOpReplicateMF || req.corr != 42 || req.trace != 9 ||
		req.epoch != 17 || req.sender != "n0" {
		t.Fatalf("decoded header: %+v", req)
	}
	if len(req.sections) != len(secs) {
		t.Fatalf("decoded %d sections, want %d", len(req.sections), len(secs))
	}
	for i, want := range secs {
		got := req.sections[i]
		if got.topic != want.topic || got.partition != want.partition ||
			got.base != want.base || got.committed != want.committed ||
			got.count != want.count {
			t.Fatalf("section %d mangled: %+v -> %+v", i, want, got)
		}
		if string(got.frames) != string(want.frames) {
			t.Fatalf("section %d frame bytes differ", i)
		}
		if len(got.metas) != len(want.metas) {
			t.Fatalf("section %d: %d metas, want %d", i, len(got.metas), len(want.metas))
		}
		for j, bm := range want.metas {
			if got.metas[j] != bm {
				t.Fatalf("section %d meta %d: %+v -> %+v", i, j, bm, got.metas[j])
			}
		}
	}

	// The decoder is the single validation gate: a corrupted frame byte
	// inside any section must reject the whole request.
	fb2 := getFrame()
	defer putFrame(fb2)
	encodeReplicateMFReq(fb2, 43, 0, 17, "n0", secs)
	fb2.b[len(fb2.b)-1] ^= 0xff // last byte of the last section's frames
	if _, err := decodeBinRequest(fb2.b); err == nil {
		t.Fatal("corrupted section frames decoded without error")
	}
}

// ---- follower-side fencing ----

func TestClusterBatchFencesStaleEpoch(t *testing.T) {
	tc := startCluster(t, 2, nil)
	waitNotJoining(t, tc)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	leader := tc.nodes[0].leaderFor("t", 0)
	if leader == "" {
		t.Fatal("no leader for t/0")
	}
	fi := 1 - tc.indexOf(leader) // the follower's slot in a 2-member cluster
	fn := tc.nodes[fi]

	// A batch at a high epoch lands normally and records the fence.
	secs := []replSection{{
		topic: "t", partition: 0, base: 0, committed: 0,
		frames: storage.AppendRecordFrames(nil, keylessRecs(0, 3)), count: 3,
	}}
	hwms, err := fn.applyReplicateBatch(100, leader, secs)
	if err != nil {
		t.Fatalf("apply batch at epoch 100: %v", err)
	}
	if len(hwms) != 1 || hwms[0] != 3 {
		t.Fatalf("hwms = %v, want [3]", hwms)
	}

	// A later batch at a LOWER epoch for the same partition is a stale
	// session delivering after a takeover: fenced, nothing appended.
	stale := []replSection{{
		topic: "t", partition: 0, base: 3, committed: 3,
		frames: storage.AppendRecordFrames(nil, keylessRecs(100, 2)), count: 2,
	}}
	if _, err := fn.applyReplicateBatch(99, leader, stale); err == nil ||
		!strings.Contains(err.Error(), "fenced") {
		t.Fatalf("stale-epoch batch: err = %v, want fenced", err)
	}
	hwm, err := tc.brokers[fi].HighWatermark("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if hwm != 3 {
		t.Fatalf("fenced batch changed the log: hwm = %d, want 3", hwm)
	}
}

// ---- mixed-version fallback ----

// pairCluster is a bespoke 2-member cluster where each member's server
// options and peer address map can differ — the knobs startCluster does
// not expose (mixed hello levels, a fault proxy on one replication
// direction).
type pairCluster struct {
	brokers [2]*Broker
	servers [2]*Server
	nodes   [2]*ClusterNode
	addrs   [2]string
	proxy   *faults.Proxy // nil unless proxyN0toN1
}

type pairOpts struct {
	helloLevel1 int  // caps member 1's advertised hello level (0 = newest)
	proxyN0toN1 bool // route n0's peer traffic to n1 through a fault proxy
	tune        func(*NodeConfig)
}

func startPair(t *testing.T, o pairOpts) *pairCluster {
	t.Helper()
	pc := &pairCluster{}
	for i := 0; i < 2; i++ {
		b := New()
		opts := ServerOptions{}
		if i == 1 {
			opts.HelloLevel = o.helloLevel1
		}
		srv, err := ServeWithOptions(b, "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		pc.brokers[i] = b
		pc.servers[i] = srv
		pc.addrs[i] = srv.Addr()
	}
	real := map[string]string{"n0": pc.addrs[0], "n1": pc.addrs[1]}
	peers0 := real
	if o.proxyN0toN1 {
		proxy, err := faults.NewProxy("127.0.0.1:0", pc.addrs[1])
		if err != nil {
			t.Fatal(err)
		}
		pc.proxy = proxy
		peers0 = map[string]string{"n0": pc.addrs[0], "n1": proxy.Addr()}
	}
	for i := 0; i < 2; i++ {
		peers := real
		if i == 0 {
			peers = peers0
		}
		cfg := NodeConfig{
			ID:             []string{"n0", "n1"}[i],
			Peers:          peers,
			Replicas:       2,
			MinISR:         2,
			HeartbeatEvery: 10 * time.Millisecond,
			FailAfter:      2,
		}
		if o.tune != nil {
			o.tune(&cfg)
		}
		node, err := NewClusterNode(pc.brokers[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		pc.servers[i].AttachNode(node)
		pc.nodes[i] = node
	}
	for _, n := range pc.nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for i := 0; i < 2; i++ {
			pc.nodes[i].Close()
			pc.servers[i].Close()
			pc.brokers[i].Close()
		}
		if pc.proxy != nil {
			_ = pc.proxy.Close()
		}
	})
	return pc
}

func (pc *pairCluster) dial(t *testing.T) *ClusterClient {
	t.Helper()
	cc, err := DialClusterWithOptions(pc.addrs[:], ClusterClientOptions{
		Retries: 20,
		Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })
	return cc
}

func waitNotJoining(t *testing.T, tc *testCluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		joining := false
		for _, n := range tc.nodes {
			if n.isJoining() {
				joining = true
			}
		}
		if !joining {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster members still joining")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertLogsIdentical compares two brokers' raw partition logs record
// by record: same high watermark, same values at the same offsets.
func assertLogsIdentical(t *testing.T, a, b *Broker, topic string, partition int) {
	t.Helper()
	ha, err := a.HighWatermark(topic, partition)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.HighWatermark(topic, partition)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("p%d: high watermarks differ: %d vs %d", partition, ha, hb)
	}
	ra, err := a.Fetch(topic, partition, 0, int(ha))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Fetch(topic, partition, 0, int(hb))
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("p%d: %d vs %d records", partition, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Offset != rb[i].Offset || ra[i].Value != rb[i].Value {
			t.Fatalf("p%d record %d differs: %+v vs %+v", partition, i, ra[i], rb[i])
		}
	}
}

func TestClusterMixedVersionReplicateFallback(t *testing.T) {
	// Member 1 advertises the pre-batch frames level, so member 0's
	// leaders must fall back to per-partition replicate toward it while
	// member 1's leaders still batch toward member 0.
	pc := startPair(t, pairOpts{helloLevel1: helloFrames})
	cc := pc.dial(t)
	if err := cc.CreateTopic("t", 8); err != nil {
		t.Fatal(err)
	}
	const total = 4000
	for off := 0; off < total; off += 500 {
		if _, err := cc.Produce("t", keylessRecs(off, 500)); err != nil {
			t.Fatal(err)
		}
	}

	// Negotiation check: n0 sees n1 as pre-batch, n1 sees n0 as batch.
	toOld, err := pc.nodes[0].peerClient("n1")
	if err != nil {
		t.Fatal(err)
	}
	if toOld.supportsBatchReplicate() {
		t.Fatal("n0 negotiated batch replicate against a hello-capped peer")
	}
	toNew, err := pc.nodes[1].peerClient("n0")
	if err != nil {
		t.Fatal(err)
	}
	if !toNew.supportsBatchReplicate() {
		t.Fatal("n1 failed to negotiate batch replicate against an uncapped peer")
	}

	// MinISR=2 means every acked batch reached both members before the
	// producer returned: the dialects must have produced identical logs.
	got := make(map[float64]int)
	for p := 0; p < 8; p++ {
		assertLogsIdentical(t, pc.brokers[0], pc.brokers[1], "t", p)
		recs, err := pc.brokers[0].Fetch("t", p, 0, total)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			got[r.Value]++
		}
	}
	if len(got) != total {
		t.Fatalf("%d distinct values across partitions, want %d", len(got), total)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %v appears %d times", v, n)
		}
	}
}

// ---- chaos: blackholed follower mid-batch ----

func TestClusterBlackholedFollowerBatchRequeued(t *testing.T) {
	// n0's replication to n1 runs through a fault proxy. FailAfter is
	// huge so n1 is never declared dead: the ack requirement stays at 2
	// and a swallowed batch must surface as a produce error, not a
	// silently under-replicated success.
	pc := startPair(t, pairOpts{
		proxyN0toN1: true,
		tune: func(cfg *NodeConfig) {
			cfg.FailAfter = 1000
			cfg.RPCTimeout = 250 * time.Millisecond
		},
	})
	cc := pc.dial(t)
	if err := cc.CreateTopic("t", 16); err != nil {
		t.Fatal(err)
	}

	// Pick two partitions led by n0 — their replication crosses the
	// proxy. Placement is rendezvous-deterministic once both members
	// are in each other's live view, so poll for the membership to
	// settle rather than racing the first heartbeats.
	var mine []int
	deadline := time.Now().Add(5 * time.Second)
	for len(mine) < 2 {
		mine = mine[:0]
		for p := 0; p < 16 && len(mine) < 2; p++ {
			if pc.nodes[0].leaderFor("t", p) == "n0" {
				mine = append(mine, p)
			}
		}
		if len(mine) < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("n0 leads %d of 16 partitions, need 2", len(mine))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	cli, err := Dial(pc.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })

	// Warm up each partition (seq 1) until the cluster settles and the
	// replication sessions are live.
	const pid = 7777
	for _, p := range mine {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := cli.ProducePartition("t", p, pid, 1, keylessRecs(p*1000, 10)); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("warmup produce p%d: %v", p, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Blackhole the follower and fire one produce per partition
	// concurrently: the session coalesces what is queued, the batched
	// RPC times out, and EVERY parked producer in the drain must see
	// the failure.
	pc.proxy.Set(faults.Both, faults.Faults{Blackhole: true})
	var wg sync.WaitGroup
	errs := make([]error, len(mine))
	for i, p := range mine {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			_, errs[i] = cli.ProducePartition("t", p, pid, 2, keylessRecs(p*1000+10, 10))
		}(i, p)
	}
	wg.Wait()
	for i, p := range mine {
		if errs[i] == nil {
			t.Fatalf("produce p%d acked while the follower was blackholed", p)
		}
	}

	// Heal and retry the SAME (pid, seq) batches: the leader's dedup
	// journal re-drives the already-appended range, and the idempotent
	// follower append absorbs any late-delivered bytes from the stalled
	// batch — no loss, no duplication.
	pc.proxy.Heal()
	for _, p := range mine {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := cli.ProducePartition("t", p, pid, 2, keylessRecs(p*1000+10, 10)); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("retry produce p%d: %v", p, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	for _, p := range mine {
		assertLogsIdentical(t, pc.brokers[0], pc.brokers[1], "t", p)
		recs, err := pc.brokers[0].Fetch("t", p, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 20 {
			t.Fatalf("p%d holds %d records, want 20 (10 warmup + 10 retried)", p, len(recs))
		}
		seen := make(map[float64]int)
		for _, r := range recs {
			seen[r.Value]++
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("p%d: value %v appears %d times", p, v, n)
			}
		}
	}
}
