package broker

import (
	"testing"
	"time"

	"streamapprox/internal/stream"
)

// Failure-injection tests: the system must degrade cleanly, not hang or
// panic, when parts of the aggregator tier disappear mid-stream.

func TestEventSourceStopsOnBrokerClose(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 1)
	_, _ = b.Produce("in", recs("a", 10))
	c, err := NewConsumer(b, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := NewEventSource(c, 3, 0)
	// Drain the first event, then kill the broker under the source.
	if _, ok := src.Next(); !ok {
		t.Fatal("no first event")
	}
	b.Close()
	// The source's buffered records may still drain, but after that it
	// must report end-of-stream instead of spinning or panicking.
	for i := 0; i < 100; i++ {
		if _, ok := src.Next(); !ok {
			return
		}
	}
	t.Fatal("source kept yielding events after broker close")
}

func TestConsumerPollErrorOnClosedBroker(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 1)
	c, err := NewConsumer(b, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := c.Poll(); err == nil {
		t.Error("poll on closed broker succeeded")
	}
	if _, err := c.Lag(); err == nil {
		t.Error("lag on closed broker succeeded")
	}
}

func TestClientErrorsAfterServerClose(t *testing.T) {
	b := New()
	srv, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	if err := cli.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Fetch("t", 0, 0, 1); err == nil {
		t.Error("fetch after server close succeeded")
	}
	// Subsequent calls must keep failing fast rather than deadlocking.
	if _, err := cli.HighWatermark("t", 0); err == nil {
		t.Error("hwm after server close succeeded")
	}
}

func TestTwoGroupsSeeIndependentOffsets(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 1)
	_, _ = b.Produce("in", recs("a", 10))

	c1, _ := NewConsumer(b, "group-1", "in", 0, 1)
	c2, _ := NewConsumer(b, "group-2", "in", 0, 1)
	r1, _ := c1.Poll()
	_ = c1.Commit()
	r2, _ := c2.Poll()
	if len(r1) != 10 || len(r2) != 10 {
		t.Errorf("groups interfered: %d / %d", len(r1), len(r2))
	}
}

func TestGroupMembersSplitWorkWithoutOverlap(t *testing.T) {
	b := New()
	_ = b.CreateTopic("in", 4)
	var events []stream.Event
	for i := 0; i < 400; i++ {
		events = append(events, stream.Event{Stratum: string(rune('a' + i%7)), Value: float64(i)})
	}
	if _, err := ProduceEvents(b, "in", events); err != nil {
		t.Fatal(err)
	}
	c0, _ := NewConsumer(b, "g", "in", 0, 2)
	c1, _ := NewConsumer(b, "g", "in", 1, 2)
	r0, _ := c0.Poll()
	r1, _ := c1.Poll()
	if len(r0)+len(r1) != 400 {
		t.Fatalf("members read %d + %d, want 400 total", len(r0), len(r1))
	}
	seen := map[int64]map[int]bool{}
	for _, r := range append(r0, r1...) {
		if seen[r.Offset] == nil {
			seen[r.Offset] = map[int]bool{}
		}
		if seen[r.Offset][r.Partition] {
			t.Fatalf("record (p=%d, off=%d) read twice", r.Partition, r.Offset)
		}
		seen[r.Offset][r.Partition] = true
	}
}

// TestConsumerResumesAcrossLeaderFailover drives the consumer-group
// machinery through the routing client while the partition leader dies
// mid-stream: polls must keep delivering every record exactly once,
// resuming against the promoted follower from committed offsets.
func TestConsumerResumesAcrossLeaderFailover(t *testing.T) {
	tc := startCluster(t, 3, nil)
	cc := tc.dialCluster()
	if err := cc.CreateTopic("in", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Produce("in", keylessRecs(0, 3000)); err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(cc, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]int{}
	drain := func() {
		for {
			recs, err := cons.Poll()
			if err != nil {
				t.Fatalf("poll: %v", err)
			}
			if len(recs) == 0 {
				return
			}
			for _, r := range recs {
				seen[r.Value]++
			}
		}
	}
	drain()
	if err := cons.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3000 {
		t.Fatalf("pre-failover: saw %d records", len(seen))
	}

	m, _ := cc.Meta()
	leader := m.LeaderOf("in", 0)
	tc.kill(tc.indexOf(leader))
	if _, err := cc.Produce("in", keylessRecs(3000, 2000)); err != nil {
		t.Fatalf("produce after leader death: %v", err)
	}
	// The same consumer object keeps polling; the routing client under
	// it redirects to the promoted follower.
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < 5000 && time.Now().Before(deadline) {
		drain()
	}
	if len(seen) != 5000 {
		t.Fatalf("post-failover: saw %d distinct records, want 5000", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("record %v delivered %d times", v, c)
		}
	}
	// A fresh consumer in the same group resumes from the committed
	// offset, which survived the leader's death via commit fan-out.
	cons2, err := NewConsumer(cc, "g", "in", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	offs := cons2.Offsets()
	if offs[0] != 3000 {
		t.Fatalf("resumed offset = %d, want 3000 (committed before failover)", offs[0])
	}
}
