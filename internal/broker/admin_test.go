package broker

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streamapprox/internal/metrics"
	"streamapprox/internal/obs"
)

// syncBuf is a race-safe log sink for assertions.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrapeAdmin GETs and parses one admin handler's /metrics.
func scrapeAdmin(t *testing.T, url string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	sc, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestAdminEndToEndSmoke is the observability acceptance path: a
// 3-broker RF-2 cluster with instrumented servers and admin handlers,
// worked through the routing client, then every member's /metrics is
// scraped and the new families asserted present and coherent, and
// /healthz flips ready once the ISR is full.
func TestAdminEndToEndSmoke(t *testing.T) {
	const n = 3
	var (
		brokers []*Broker
		servers []*Server
		nodes   []*ClusterNode
		admins  []*httptest.Server
	)
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		b := New()
		srv, err := ServeWithOptions(b, "127.0.0.1:0", ServerOptions{
			Metrics: b.Metrics(),
			Log:     obs.New(io.Discard, obs.LevelInfo),
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[fmt.Sprintf("n%d", i)] = srv.Addr()
		brokers = append(brokers, b)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < n; i++ {
		node, err := NewClusterNode(brokers[i], NodeConfig{
			ID:             fmt.Sprintf("n%d", i),
			Peers:          peers,
			Replicas:       2,
			MinISR:         2,
			HeartbeatEvery: 10 * time.Millisecond,
			FailAfter:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i].AttachNode(node)
		node.RegisterMetrics(brokers[i].Metrics())
		brokers[i].Metrics().Gauge("broker_info", "identity",
			metrics.Labels{"node": fmt.Sprintf("n%d", i)}).Set(1)
		nodes = append(nodes, node)
		admins = append(admins, httptest.NewServer(AdminHandler(brokers[i], node)))
	}
	defer func() {
		for _, a := range admins {
			a.Close()
		}
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for _, nd := range nodes {
		nd.Start()
	}

	addrs := make([]string, 0, n)
	for _, s := range servers {
		addrs = append(addrs, s.Addr())
	}
	cc, err := DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cc.Close() }()
	if err := cc.CreateTopic("smoke", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Produce("smoke", keylessRecs(0, 200)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if _, err := cc.Fetch("smoke", p, 0, 1000); err != nil {
			t.Fatal(err)
		}
	}

	// /healthz: every member becomes ready once replication is settled.
	for i, a := range admins {
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(a.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never became ready", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Scrape every member and pool the cluster-wide view.
	var leaders, lagSeries, logEnd int
	sawReq, sawHist := false, false
	for i, a := range admins {
		sc := scrapeAdmin(t, a.URL)
		for _, fam := range []string{
			"broker_info", "broker_cluster_epoch", "broker_joining",
			"broker_peer_alive", "broker_partition_leader",
			"broker_partition_isr_size", "broker_partition_committed_offset",
			"broker_partition_log_end_offset",
		} {
			if len(sc.Select(fam, nil)) == 0 {
				t.Errorf("node %d: family %s missing", i, fam)
			}
		}
		if sc.Types["broker_request_seconds"] != "histogram" {
			t.Errorf("node %d: broker_request_seconds type = %q", i, sc.Types["broker_request_seconds"])
		}
		if len(sc.Select("broker_requests_total", nil)) > 0 {
			sawReq = true
		}
		if len(sc.Select("broker_request_seconds_bucket", nil)) > 0 {
			sawHist = true
		}
		for _, s := range sc.Select("broker_partition_leader", metrics.Labels{"topic": "smoke"}) {
			if s.Value >= 1 {
				leaders++
			}
		}
		lagSeries += len(sc.Select("broker_replication_lag_records", metrics.Labels{"topic": "smoke"}))
		for _, s := range sc.Select("broker_partition_log_end_offset", metrics.Labels{"topic": "smoke"}) {
			logEnd += int(s.Value)
		}
	}
	if !sawReq || !sawHist {
		t.Errorf("wire instrumentation missing: requests=%v histogram=%v", sawReq, sawHist)
	}
	if leaders != 2 {
		t.Errorf("smoke partitions report %d leaders across the cluster, want 2", leaders)
	}
	if lagSeries < 2 {
		t.Errorf("only %d replication-lag series across leaders, want one per (partition, follower) >= 2", lagSeries)
	}
	// 200 records over 2 partitions: leader + follower copies both count.
	if logEnd < 200 {
		t.Errorf("summed log-end offsets = %d, want >= 200", logEnd)
	}

	// pprof is wired on the same listener.
	resp, err := http.Get(admins[0].URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: %s", resp.Status)
	}
}

// TestTraceIDReachesBrokerLogs proves the wire-level trace propagation:
// a trace ID stamped on a client connection shows up in the broker
// server's structured debug log for the requests it issued.
func TestTraceIDReachesBrokerLogs(t *testing.T) {
	b := New()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	buf := &syncBuf{}
	srv, err := ServeWithOptions(b, "127.0.0.1:0", ServerOptions{
		Metrics: b.Metrics(),
		Log:     obs.New(buf, obs.LevelDebug),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()

	const tid = 0xabcdef0123456789
	cli.SetTraceID(tid)
	if _, err := cli.Produce("t", keylessRecs(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Fetch("t", 0, 0, 100); err != nil {
		t.Fatal(err)
	}

	logs := buf.String()
	want := obs.TraceHex(tid)
	if !strings.Contains(logs, "trace="+want) {
		t.Fatalf("broker logs do not mention trace %s:\n%s", want, logs)
	}
	if !strings.Contains(logs, "op=produce") || !strings.Contains(logs, "op=fetch") {
		t.Errorf("traced ops missing from logs:\n%s", logs)
	}

	// An untraced connection must leave no trace lines behind.
	cli.SetTraceID(0)
	if _, err := cli.Produce("t", keylessRecs(10, 5)); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "trace="); n < 2 {
		t.Errorf("expected the traced produce+fetch lines only, got %d trace lines", n)
	}
}
