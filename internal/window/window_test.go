package window

import (
	"testing"
	"time"

	"streamapprox/internal/stream"
)

var base = time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)

func at(offset time.Duration) time.Time { return base.Add(offset) }

func evAt(offset time.Duration, v float64) stream.Event {
	return stream.Event{Stratum: "s", Value: v, Time: at(offset)}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: at(0), End: at(10 * time.Second)}
	if !w.Contains(at(0)) {
		t.Error("start should be inclusive")
	}
	if w.Contains(at(10 * time.Second)) {
		t.Error("end should be exclusive")
	}
	if !w.Contains(at(5 * time.Second)) {
		t.Error("midpoint should be contained")
	}
	if w.Size() != 10*time.Second {
		t.Errorf("Size = %v", w.Size())
	}
}

func TestAssignerPaperConfig(t *testing.T) {
	// The paper's case-study config: w = 10s, δ = 5s -> each event joins
	// exactly two windows.
	a := NewAssigner(10*time.Second, 5*time.Second)
	if a.WindowsPerEvent() != 2 {
		t.Fatalf("WindowsPerEvent = %d, want 2", a.WindowsPerEvent())
	}
	ws := a.Assign(at(7 * time.Second))
	if len(ws) != 2 {
		t.Fatalf("assigned %d windows, want 2: %v", len(ws), ws)
	}
	if !ws[0].Start.Equal(at(0)) || !ws[1].Start.Equal(at(5*time.Second)) {
		t.Errorf("window starts = %v, %v", ws[0].Start, ws[1].Start)
	}
	for _, w := range ws {
		if !w.Contains(at(7 * time.Second)) {
			t.Errorf("assigned window %v does not contain the event", w)
		}
	}
}

func TestAssignerTumbling(t *testing.T) {
	a := NewAssigner(10*time.Second, 10*time.Second)
	ws := a.Assign(at(12 * time.Second))
	if len(ws) != 1 {
		t.Fatalf("tumbling window assigned %d, want 1", len(ws))
	}
	if !ws[0].Start.Equal(at(10 * time.Second)) {
		t.Errorf("start = %v", ws[0].Start)
	}
}

func TestAssignerBoundaryEvent(t *testing.T) {
	a := NewAssigner(10*time.Second, 5*time.Second)
	// An event exactly on a slide boundary starts a new window and is
	// excluded from the window that just ended.
	ws := a.Assign(at(10 * time.Second))
	for _, w := range ws {
		if !w.Contains(at(10 * time.Second)) {
			t.Errorf("window %v does not contain boundary event", w)
		}
		if w.Start.Equal(at(0)) {
			t.Error("event at t=10s wrongly assigned to window [0,10)")
		}
	}
	if len(ws) != 2 {
		t.Errorf("boundary event assigned %d windows, want 2", len(ws))
	}
}

func TestAssignerClampsBadParams(t *testing.T) {
	a := NewAssigner(time.Second, 0)
	if a.Slide() != time.Second || a.Size() != time.Second {
		t.Errorf("zero slide should become tumbling: size=%v slide=%v", a.Size(), a.Slide())
	}
	a = NewAssigner(time.Second, 5*time.Second)
	if a.Size() != 5*time.Second {
		t.Errorf("size < slide should clamp to slide, got %v", a.Size())
	}
}

func TestBufferFiresCompletedWindows(t *testing.T) {
	b := NewBuffer(NewAssigner(10*time.Second, 5*time.Second))
	var fired []Fired
	for sec := 0; sec < 21; sec++ {
		fired = append(fired, b.Add(evAt(time.Duration(sec)*time.Second, float64(sec)))...)
	}
	// Windows [-5,5) [0,10) [5,15) [10,20) all complete by t=20.
	if len(fired) != 4 {
		t.Fatalf("fired %d windows, want 4: %+v", len(fired), fired)
	}
	// Window [0, 10) holds events 0..9.
	w010 := fired[1]
	if !w010.Window.Start.Equal(at(0)) {
		t.Fatalf("second fired window starts %v", w010.Window.Start)
	}
	if len(w010.Events) != 10 {
		t.Errorf("window [0,10) has %d events, want 10", len(w010.Events))
	}
}

func TestBufferFiresInOrder(t *testing.T) {
	b := NewBuffer(NewAssigner(10*time.Second, 5*time.Second))
	var fired []Fired
	for sec := 0; sec <= 60; sec += 1 {
		fired = append(fired, b.Add(evAt(time.Duration(sec)*time.Second, 1))...)
	}
	fired = append(fired, b.Flush()...)
	for i := 1; i < len(fired); i++ {
		if fired[i].Window.Start.Before(fired[i-1].Window.Start) {
			t.Fatal("windows fired out of order")
		}
	}
}

func TestBufferDropsLateEvents(t *testing.T) {
	b := NewBuffer(NewAssigner(10*time.Second, 5*time.Second))
	b.Add(evAt(30*time.Second, 1))
	b.Add(evAt(2*time.Second, 2)) // far behind the watermark
	if b.Late() != 1 {
		t.Errorf("Late = %d, want 1", b.Late())
	}
}

func TestBufferFlush(t *testing.T) {
	b := NewBuffer(NewAssigner(10*time.Second, 5*time.Second))
	b.Add(evAt(time.Second, 1))
	fired := b.Flush()
	if len(fired) == 0 {
		t.Fatal("Flush fired nothing")
	}
	total := 0
	for _, f := range fired {
		total += len(f.Events)
	}
	if total < 1 {
		t.Error("flushed windows lost the pending event")
	}
	if len(b.Flush()) != 0 {
		t.Error("second Flush should fire nothing")
	}
}

func TestSliceGroundTruth(t *testing.T) {
	var events []stream.Event
	for sec := 0; sec < 30; sec++ {
		events = append(events, evAt(time.Duration(sec)*time.Second, 1))
	}
	fired := Slice(events, 10*time.Second, 5*time.Second)
	if len(fired) == 0 {
		t.Fatal("Slice produced no windows")
	}
	// Every full interior window must hold exactly 10 events.
	for _, f := range fired {
		if f.Window.Start.Equal(at(5*time.Second)) && len(f.Events) != 10 {
			t.Errorf("window [5,15) has %d events, want 10", len(f.Events))
		}
	}
	if got := Slice(nil, time.Second, time.Second); got != nil {
		t.Error("Slice(nil) should be nil")
	}
}

func TestEventInAllItsWindows(t *testing.T) {
	// Each event with w=20s, δ=5s joins 4 windows.
	a := NewAssigner(20*time.Second, 5*time.Second)
	if a.WindowsPerEvent() != 4 {
		t.Fatalf("WindowsPerEvent = %d", a.WindowsPerEvent())
	}
	ws := a.Assign(at(17 * time.Second))
	if len(ws) != 4 {
		t.Fatalf("assigned %d windows: %v", len(ws), ws)
	}
	for i := 1; i < len(ws); i++ {
		if !ws[i].Start.After(ws[i-1].Start) {
			t.Error("windows not earliest-first")
		}
	}
}
