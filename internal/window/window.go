// Package window implements the time-based sliding-window computation
// model both engines support (§2.2): a window of size w slides by step δ;
// newly arriving items enter the window and items older than w leave it.
// The number of items per window varies with the arrival rate.
package window

import (
	"time"

	"streamapprox/internal/stream"
)

// Window identifies one window instance by its half-open time span
// [Start, End).
type Window struct {
	Start time.Time
	End   time.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// Size returns the window length.
func (w Window) Size() time.Duration { return w.End.Sub(w.Start) }

// Assigner maps an event time to the set of sliding windows it belongs
// to. With size w and slide δ, an event belongs to ⌈w/δ⌉ windows.
type Assigner struct {
	size  time.Duration
	slide time.Duration
}

// NewAssigner returns a sliding-window assigner. slide must be positive;
// size must be >= slide (a tumbling window has size == slide).
func NewAssigner(size, slide time.Duration) *Assigner {
	if slide <= 0 {
		slide = size
	}
	if size < slide {
		size = slide
	}
	return &Assigner{size: size, slide: slide}
}

// Size returns the window size w.
func (a *Assigner) Size() time.Duration { return a.size }

// Slide returns the slide step δ.
func (a *Assigner) Slide() time.Duration { return a.slide }

// WindowsPerEvent returns ⌈w/δ⌉, the number of windows each event joins.
func (a *Assigner) WindowsPerEvent() int {
	return int((a.size + a.slide - 1) / a.slide)
}

// Assign returns every window containing t, earliest first. A window
// [start, start+size) contains t iff start <= t < start+size with start a
// multiple of the slide step.
func (a *Assigner) Assign(t time.Time) []Window {
	out := make([]Window, 0, a.WindowsPerEvent())
	// The latest window start at or before t.
	lastStart := t.Truncate(a.slide)
	// Walk backwards while the window still covers t (start > t - size).
	for start := lastStart; start.After(t.Add(-a.size)); start = start.Add(-a.slide) {
		out = append(out, Window{Start: start, End: start.Add(a.size)})
	}
	// Reverse to earliest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Buffer accumulates events and emits completed windows in event-time
// order. It is the bookkeeping both engines share: the batch engine fires
// a window when the batch timeline passes the window end; the pipelined
// engine fires on a per-item watermark.
//
// Buffer assumes events arrive in non-decreasing event-time order (the
// stream aggregator's merged order); late events are counted and dropped.
type Buffer struct {
	assigner  *Assigner
	pending   map[time.Time][]stream.Event // keyed by window start
	watermark time.Time
	late      int64
}

// NewBuffer returns an empty window buffer for the assigner.
func NewBuffer(a *Assigner) *Buffer {
	return &Buffer{assigner: a, pending: make(map[time.Time][]stream.Event)}
}

// Late returns the number of dropped late events.
func (b *Buffer) Late() int64 { return b.late }

// Add routes an event into every window it belongs to and returns the
// windows completed by the advance of event time, in ascending order.
func (b *Buffer) Add(e stream.Event) []Fired {
	if e.Time.Before(b.watermark) {
		b.late++
		return nil
	}
	for _, w := range b.assigner.Assign(e.Time) {
		b.pending[w.Start] = append(b.pending[w.Start], e)
	}
	return b.advance(e.Time)
}

// Fired is a completed window with its events.
type Fired struct {
	Window Window
	Events []stream.Event
}

// advance fires every pending window whose end is <= now.
func (b *Buffer) advance(now time.Time) []Fired {
	var fired []Fired
	for start, events := range b.pending {
		end := start.Add(b.assigner.size)
		if end.After(now) {
			continue
		}
		fired = append(fired, Fired{
			Window: Window{Start: start, End: end},
			Events: events,
		})
		delete(b.pending, start)
	}
	if len(fired) > 1 {
		sortFired(fired)
	}
	if now.After(b.watermark) {
		b.watermark = now
	}
	return fired
}

// Flush fires all remaining windows regardless of completeness — called
// at end of stream.
func (b *Buffer) Flush() []Fired {
	fired := make([]Fired, 0, len(b.pending))
	for start, events := range b.pending {
		fired = append(fired, Fired{
			Window: Window{Start: start, End: start.Add(b.assigner.size)},
			Events: events,
		})
		delete(b.pending, start)
	}
	sortFired(fired)
	return fired
}

func sortFired(fired []Fired) {
	for i := 1; i < len(fired); i++ {
		for j := i; j > 0 && fired[j].Window.Start.Before(fired[j-1].Window.Start); j-- {
			fired[j], fired[j-1] = fired[j-1], fired[j]
		}
	}
}

// Slice splits a fully materialized, time-ordered event slice into
// consecutive sliding windows — the offline evaluation path used by the
// experiment harness to compute ground truth.
func Slice(events []stream.Event, size, slide time.Duration) []Fired {
	if len(events) == 0 {
		return nil
	}
	a := NewAssigner(size, slide)
	b := NewBuffer(a)
	var out []Fired
	for _, e := range events {
		out = append(out, b.Add(e)...)
	}
	return append(out, b.Flush()...)
}
