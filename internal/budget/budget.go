// Package budget implements the virtual cost function of §2.3/§7: it
// translates a user-specified query budget — a sampling fraction, a
// desired accuracy (confidence-interval width), a latency target, or an
// available-resource allowance — into the sample size OASRS should use
// for the next interval.
//
// The paper leaves the cost function abstract and sketches three
// realizations in §7; all three are implemented here:
//
//   - accuracy budget: invert Equation 9 / the 68-95-99.7 rule to find
//     the per-stratum sample size achieving a desired interval width;
//   - latency budget: a resource-prediction model fitted online from
//     observed (items, latency) pairs, as in Conductor/Wieder et al.;
//   - resource budget: a Pulsar-style multi-resource token bucket where
//     each item costs tokens and the refill rate is the allowance.
package budget

import (
	"math"
	"time"
)

// Budget converts a query budget into a total sample size for one
// interval, given the interval's expected item count.
type Budget interface {
	// SampleSize returns the total number of items to sample out of an
	// interval expected to carry expectedItems items.
	SampleSize(expectedItems int) int
}

// Fraction is the simplest budget: sample a fixed fraction of the input,
// the knob the paper sweeps in every throughput/accuracy experiment.
type Fraction float64

var _ Budget = Fraction(0)

// SampleSize implements Budget.
func (f Fraction) SampleSize(expectedItems int) int {
	fr := float64(f)
	if fr < 0 {
		fr = 0
	}
	if fr > 1 {
		fr = 1
	}
	n := int(math.Ceil(fr * float64(expectedItems)))
	if n < 1 {
		n = 1
	}
	return n
}

// Accuracy sizes the sample so the half-width of the confidence interval
// of the MEAN is at most Target (relative to the mean when Relative is
// true, absolute otherwise). It inverts the single-stratum simplification
// of Eq. 9 with the finite-population correction:
//
//	bound = z·s/√n·√((C−n)/C)  ≤  target
//	   n  ≥  1 / (target²/(z²·s²) + 1/C)
//
// The population stddev s and (for relative targets) the mean are taken
// from the previous interval's observations via Observe; until the first
// observation a conservative default fraction is used.
type Accuracy struct {
	Target   float64
	Relative bool
	Sigmas   float64 // z: 1, 2 or 3 per the 68-95-99.7 rule

	stddev float64
	mean   float64
	seeded bool
}

var _ Budget = (*Accuracy)(nil)

// NewAccuracy returns an accuracy budget with a z of 2 (95% confidence).
func NewAccuracy(target float64, relative bool) *Accuracy {
	return &Accuracy{Target: target, Relative: relative, Sigmas: 2}
}

// Observe feeds the previous interval's sample statistics.
func (a *Accuracy) Observe(mean, stddev float64) {
	a.mean = mean
	a.stddev = stddev
	a.seeded = true
}

// SampleSize implements Budget.
func (a *Accuracy) SampleSize(expectedItems int) int {
	if expectedItems < 1 {
		return 1
	}
	if !a.seeded || a.Target <= 0 {
		// No statistics yet: sample conservatively (60%, the paper's
		// default operating point) until Observe seeds the model.
		return Fraction(0.6).SampleSize(expectedItems)
	}
	target := a.Target
	if a.Relative {
		target *= math.Abs(a.mean)
	}
	if target <= 0 || a.stddev <= 0 {
		return expectedItems
	}
	z := a.Sigmas
	if z <= 0 {
		z = 2
	}
	c := float64(expectedItems)
	denom := target*target/(z*z*a.stddev*a.stddev) + 1/c
	n := int(math.Ceil(1 / denom))
	if n < 1 {
		n = 1
	}
	if n > expectedItems {
		n = expectedItems
	}
	return n
}

// Latency predicts how many items can be processed within a latency
// target from a per-item cost model fitted online (exponentially weighted
// mean of observed per-item processing time), following the
// resource-prediction approach of §7.
type Latency struct {
	Target time.Duration

	perItem float64 // EWMA of seconds per item
	alpha   float64
	seeded  bool
}

var _ Budget = (*Latency)(nil)

// NewLatency returns a latency budget with smoothing factor 0.3.
func NewLatency(target time.Duration) *Latency {
	return &Latency{Target: target, alpha: 0.3}
}

// Observe feeds one interval's measurement: processing `items` items took
// `elapsed`.
func (l *Latency) Observe(items int, elapsed time.Duration) {
	if items <= 0 || elapsed <= 0 {
		return
	}
	sample := elapsed.Seconds() / float64(items)
	if !l.seeded {
		l.perItem = sample
		l.seeded = true
		return
	}
	l.perItem = l.alpha*sample + (1-l.alpha)*l.perItem
}

// SampleSize implements Budget.
func (l *Latency) SampleSize(expectedItems int) int {
	if expectedItems < 1 {
		return 1
	}
	if !l.seeded || l.perItem <= 0 || l.Target <= 0 {
		return Fraction(0.6).SampleSize(expectedItems)
	}
	n := int(l.Target.Seconds() / l.perItem)
	if n < 1 {
		n = 1
	}
	if n > expectedItems {
		n = expectedItems
	}
	return n
}

// Tokens is a Pulsar-style resource budget: a token bucket refilled at
// Rate tokens per interval with capacity Burst; each sampled item costs
// CostPerItem tokens. SampleSize never exceeds the affordable item count,
// and unspent tokens roll over up to the burst cap.
type Tokens struct {
	Rate        float64
	Burst       float64
	CostPerItem float64

	balance float64
}

var _ Budget = (*Tokens)(nil)

// NewTokens returns a token budget starting with a full bucket.
func NewTokens(rate, burst, costPerItem float64) *Tokens {
	if costPerItem <= 0 {
		costPerItem = 1
	}
	if burst < rate {
		burst = rate
	}
	return &Tokens{Rate: rate, Burst: burst, CostPerItem: costPerItem, balance: burst}
}

// Balance returns the current token balance.
func (t *Tokens) Balance() float64 { return t.balance }

// SampleSize implements Budget: it spends tokens for the affordable
// sample and refills the bucket for the next interval.
func (t *Tokens) SampleSize(expectedItems int) int {
	if expectedItems < 1 {
		expectedItems = 1
	}
	affordable := int(t.balance / t.CostPerItem)
	n := affordable
	if n > expectedItems {
		n = expectedItems
	}
	if n < 1 {
		n = 1
	}
	t.balance -= float64(n) * t.CostPerItem
	if t.balance < 0 {
		t.balance = 0
	}
	t.balance += t.Rate
	if t.balance > t.Burst {
		t.balance = t.Burst
	}
	return n
}
