package budget

import (
	"testing"
	"time"
)

func TestFraction(t *testing.T) {
	for _, tc := range []struct {
		f    Fraction
		n    int
		want int
	}{
		{0.6, 1000, 600},
		{0.1, 1000, 100},
		{1.0, 1000, 1000},
		{0.0, 1000, 1},    // floor of one item
		{-0.5, 1000, 1},   // clamped
		{1.5, 1000, 1000}, // clamped
		{0.5, 7, 4},
	} {
		if got := tc.f.SampleSize(tc.n); got != tc.want {
			t.Errorf("Fraction(%v).SampleSize(%d) = %d, want %d", tc.f, tc.n, got, tc.want)
		}
	}
}

func TestAccuracyUnseededDefaults(t *testing.T) {
	a := NewAccuracy(0.01, true)
	if got := a.SampleSize(1000); got != 600 {
		t.Errorf("unseeded accuracy budget = %d, want conservative 600", got)
	}
}

func TestAccuracyShrinksWithLooserTarget(t *testing.T) {
	tight := NewAccuracy(0.001, true)
	loose := NewAccuracy(0.1, true)
	tight.Observe(100, 50)
	loose.Observe(100, 50)
	nTight := tight.SampleSize(100000)
	nLoose := loose.SampleSize(100000)
	if nTight <= nLoose {
		t.Errorf("tighter target should need a bigger sample: tight=%d loose=%d", nTight, nLoose)
	}
}

func TestAccuracyAbsoluteTarget(t *testing.T) {
	a := NewAccuracy(1.0, false) // bound mean to ±1 absolute
	a.Observe(1000, 100)
	n := a.SampleSize(1000000)
	// n ≈ z²s²/target² = 4*10000/1 = 40000 (fpc negligible at 1e6).
	if n < 30000 || n > 50000 {
		t.Errorf("absolute accuracy sample = %d, want ≈40000", n)
	}
}

func TestAccuracyCapsAtPopulation(t *testing.T) {
	a := NewAccuracy(1e-12, false)
	a.Observe(100, 50)
	if got := a.SampleSize(500); got != 500 {
		t.Errorf("impossible target should sample everything: %d", got)
	}
}

func TestAccuracyDegenerateStats(t *testing.T) {
	a := NewAccuracy(0.01, true)
	a.Observe(100, 0) // zero variance: everything is exact
	if got := a.SampleSize(1000); got != 1000 {
		t.Errorf("zero-stddev population: got %d", got)
	}
	if got := a.SampleSize(0); got != 1 {
		t.Errorf("empty interval: got %d", got)
	}
}

func TestLatencyUnseededDefaults(t *testing.T) {
	l := NewLatency(time.Second)
	if got := l.SampleSize(1000); got != 600 {
		t.Errorf("unseeded latency budget = %d, want 600", got)
	}
}

func TestLatencyFromObservations(t *testing.T) {
	l := NewLatency(100 * time.Millisecond)
	l.Observe(1000, time.Second) // 1ms per item -> 100 items fit in 100ms
	if got := l.SampleSize(10000); got != 100 {
		t.Errorf("latency budget = %d, want 100", got)
	}
}

func TestLatencyEWMASmoothing(t *testing.T) {
	l := NewLatency(time.Second)
	l.Observe(1000, time.Second)          // 1 ms/item
	l.Observe(1000, 100*time.Millisecond) // burst of speed: 0.1 ms/item
	got := l.SampleSize(1 << 30)
	// EWMA(0.3): 0.3*0.1ms + 0.7*1ms = 0.73 ms/item -> ~1369 items/sec.
	if got < 1200 || got > 1500 {
		t.Errorf("EWMA sample size = %d, want ≈1369", got)
	}
}

func TestLatencyIgnoresBadObservations(t *testing.T) {
	l := NewLatency(time.Second)
	l.Observe(0, time.Second)
	l.Observe(100, 0)
	if got := l.SampleSize(1000); got != 600 {
		t.Errorf("bad observations should leave model unseeded: %d", got)
	}
}

func TestLatencyCapsAtPopulation(t *testing.T) {
	l := NewLatency(time.Hour)
	l.Observe(1000, time.Millisecond)
	if got := l.SampleSize(500); got != 500 {
		t.Errorf("latency budget exceeded population: %d", got)
	}
}

func TestTokensSpendAndRefill(t *testing.T) {
	tk := NewTokens(100, 100, 1)
	if got := tk.SampleSize(1000); got != 100 {
		t.Errorf("first interval = %d, want 100 (full bucket)", got)
	}
	// Bucket was emptied then refilled with Rate=100.
	if got := tk.SampleSize(1000); got != 100 {
		t.Errorf("steady state = %d, want 100", got)
	}
}

func TestTokensRollover(t *testing.T) {
	tk := NewTokens(100, 300, 1)
	// Cheap interval: only 20 items available.
	if got := tk.SampleSize(20); got != 20 {
		t.Errorf("cheap interval = %d", got)
	}
	// Unspent tokens roll over: bucket was 300-20+100 = 300 (capped).
	if got := tk.SampleSize(1000); got != 300 {
		t.Errorf("rollover interval = %d, want 300", got)
	}
}

func TestTokensCostPerItem(t *testing.T) {
	tk := NewTokens(100, 100, 2)
	if got := tk.SampleSize(1000); got != 50 {
		t.Errorf("cost 2/item = %d items, want 50", got)
	}
}

func TestTokensFloorOfOne(t *testing.T) {
	tk := NewTokens(0.1, 0.1, 1)
	if got := tk.SampleSize(1000); got != 1 {
		t.Errorf("starved bucket should still sample 1, got %d", got)
	}
	if tk.Balance() < 0 {
		t.Errorf("balance went negative: %v", tk.Balance())
	}
}

func TestTokensDefensiveConstruction(t *testing.T) {
	tk := NewTokens(100, 10, 0)
	if tk.CostPerItem != 1 {
		t.Errorf("zero cost clamped to 1, got %v", tk.CostPerItem)
	}
	if tk.Burst != 100 {
		t.Errorf("burst < rate should clamp to rate, got %v", tk.Burst)
	}
}
