// Package pipeline implements the pipelined stream processing substrate
// (§2.2): the model of Apache Flink, where each data item is forwarded to
// the next operator as soon as it is ready, without forming batches.
//
// A pipeline is a linear chain of operators connected by channels of
// size one (backpressure is the channels blocking). Each operator runs in
// its own goroutine; the runner owns all goroutine lifetimes and Run
// returns only after every stage has drained and flushed.
//
// The Flink-based StreamApprox system plugs its sampling operator into
// this chain (§4.2.2): "we created a sampling operator by implementing
// the algorithm described in §3.2. This operator samples input data items
// on-the-fly."
package pipeline

import (
	"context"
	"sync"

	"streamapprox/internal/stream"
)

// Operator is one stage of a pipeline. Process receives each input event
// and emits zero or more events downstream; Flush is called exactly once
// after the upstream is exhausted, for end-of-stream work (firing partial
// windows, emitting final aggregates).
//
// An operator instance is owned by a single goroutine: implementations
// need no internal locking unless they share state externally.
type Operator interface {
	Process(e stream.Event, emit func(stream.Event))
	Flush(emit func(stream.Event))
}

// MapOp transforms each event 1:1.
type MapOp struct {
	Fn func(stream.Event) stream.Event
}

// Process implements Operator.
func (m MapOp) Process(e stream.Event, emit func(stream.Event)) { emit(m.Fn(e)) }

// Flush implements Operator.
func (MapOp) Flush(func(stream.Event)) {}

// FilterOp forwards only events for which Fn returns true.
type FilterOp struct{ Fn func(stream.Event) bool }

// Process implements Operator.
func (f FilterOp) Process(e stream.Event, emit func(stream.Event)) {
	if f.Fn(e) {
		emit(e)
	}
}

// Flush implements Operator.
func (FilterOp) Flush(func(stream.Event)) {}

// FlatMapOp transforms each event into zero or more events.
type FlatMapOp struct {
	Fn func(stream.Event, func(stream.Event))
}

// Process implements Operator.
func (f FlatMapOp) Process(e stream.Event, emit func(stream.Event)) { f.Fn(e, emit) }

// Flush implements Operator.
func (FlatMapOp) Flush(func(stream.Event)) {}

// Pipeline is a runnable operator chain.
type Pipeline struct {
	ops []Operator
}

// New returns a pipeline over the given operator chain (first operator
// receives source events).
func New(ops ...Operator) *Pipeline {
	return &Pipeline{ops: ops}
}

// chunkSize is the pipelining buffer: operators still see items one at a
// time and in order, but the channel transport moves items in small
// chunks — the analogue of Flink's network buffers, which pipeline
// records through fixed-size buffers rather than paying a handoff per
// record.
const chunkSize = 128

// Run streams src through the operator chain into sink. It blocks until
// the source is exhausted and every operator has flushed, or until ctx is
// cancelled (in which case in-flight items may be dropped). Run returns
// the number of events drawn from the source.
func (p *Pipeline) Run(ctx context.Context, src stream.Source, sink stream.Sink) int64 {
	// Channels of size one per the channel-size guideline; the pipeline
	// depth plus the chunk buffers provide all the buffering a pipelined
	// engine needs.
	chans := make([]chan []stream.Event, len(p.ops)+1)
	for i := range chans {
		chans[i] = make(chan []stream.Event, 1)
	}

	var wg sync.WaitGroup
	var produced int64

	// Source stage.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chans[0])
		buf := make([]stream.Event, 0, chunkSize)
		for {
			e, ok := src.Next()
			if !ok {
				if len(buf) > 0 {
					select {
					case chans[0] <- buf:
						produced += int64(len(buf))
					case <-ctx.Done():
					}
				}
				return
			}
			buf = append(buf, e)
			if len(buf) == chunkSize {
				select {
				case chans[0] <- buf:
					produced += chunkSize
				case <-ctx.Done():
					return
				}
				buf = make([]stream.Event, 0, chunkSize)
			}
		}
	}()

	// Operator stages.
	for i, op := range p.ops {
		wg.Add(1)
		go func(i int, op Operator) {
			defer wg.Done()
			defer close(chans[i+1])
			out := make([]stream.Event, 0, chunkSize)
			emit := func(e stream.Event) {
				out = append(out, e)
				if len(out) == chunkSize {
					select {
					case chans[i+1] <- out:
					case <-ctx.Done():
					}
					out = make([]stream.Event, 0, chunkSize)
				}
			}
			for chunk := range chans[i] {
				for _, e := range chunk {
					op.Process(e, emit)
				}
			}
			op.Flush(emit)
			if len(out) > 0 {
				select {
				case chans[i+1] <- out:
				case <-ctx.Done():
				}
			}
		}(i, op)
	}

	// Sink stage.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for chunk := range chans[len(chans)-1] {
			for _, e := range chunk {
				sink.Emit(e)
			}
		}
	}()

	wg.Wait()
	return produced
}

// RunParallel fans the source out over n identical pipeline replicas
// (round-robin) and merges their outputs into sink — task parallelism the
// way Flink parallelizes a stateless operator chain. build must return a
// fresh operator chain per replica; sink must be safe for concurrent use
// or wrapped with LockedSink.
func RunParallel(ctx context.Context, n int, src stream.Source, sink stream.Sink, build func(replica int) []Operator) int64 {
	if n < 1 {
		n = 1
	}
	feeds := make([]chan []stream.Event, n)
	for i := range feeds {
		feeds[i] = make(chan []stream.Event, 1)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pl := New(build(i)...)
			pl.Run(ctx, &chunkChanSource{ctx: ctx, ch: feeds[i]}, sink)
		}(i)
	}

	// Feed replicas chunk-at-a-time, round-robin: replica i receives every
	// n-th chunk, keeping per-replica streams time-ordered.
	var produced int64
	bufs := make([][]stream.Event, n)
	for i := range bufs {
		bufs[i] = make([]stream.Event, 0, chunkSize)
	}
	send := func(i int) bool {
		if len(bufs[i]) == 0 {
			return true
		}
		select {
		case feeds[i] <- bufs[i]:
			produced += int64(len(bufs[i]))
			bufs[i] = make([]stream.Event, 0, chunkSize)
			return true
		case <-ctx.Done():
			return false
		}
	}
	i := 0
feed:
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		r := i % n
		bufs[r] = append(bufs[r], e)
		i++
		if len(bufs[r]) == chunkSize {
			if !send(r) {
				break feed
			}
		}
	}
	for r := range feeds {
		send(r)
		close(feeds[r])
	}
	wg.Wait()
	return produced
}

// chunkChanSource adapts a channel of event chunks to stream.Source.
type chunkChanSource struct {
	ctx context.Context
	ch  <-chan []stream.Event
	buf []stream.Event
	pos int
}

var _ stream.Source = (*chunkChanSource)(nil)

// Next implements stream.Source.
func (s *chunkChanSource) Next() (stream.Event, bool) {
	for s.pos >= len(s.buf) {
		select {
		case chunk, ok := <-s.ch:
			if !ok {
				return stream.Event{}, false
			}
			s.buf = chunk
			s.pos = 0
		case <-s.ctx.Done():
			return stream.Event{}, false
		}
	}
	e := s.buf[s.pos]
	s.pos++
	return e, true
}

// LockedSink wraps a sink with a mutex for concurrent emitters.
type LockedSink struct {
	mu   sync.Mutex
	sink stream.Sink
}

// NewLockedSink returns a concurrency-safe wrapper around sink.
func NewLockedSink(sink stream.Sink) *LockedSink {
	return &LockedSink{sink: sink}
}

// Emit implements stream.Sink.
func (l *LockedSink) Emit(e stream.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink.Emit(e)
}
