package pipeline

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"streamapprox/internal/stream"
)

func seqEvents(n int) []stream.Event {
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Event, n)
	for i := range out {
		out[i] = stream.Event{
			Stratum: "s",
			Value:   float64(i),
			Time:    base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

func TestPipelineIdentity(t *testing.T) {
	var sink stream.CollectSink
	n := New().Run(context.Background(), stream.NewSliceSource(seqEvents(10)), &sink)
	if n != 10 || len(sink.Events) != 10 {
		t.Errorf("produced %d, collected %d", n, len(sink.Events))
	}
}

func TestPipelineMapFilterChain(t *testing.T) {
	var sink stream.CollectSink
	p := New(
		MapOp{Fn: func(e stream.Event) stream.Event { e.Value *= 10; return e }},
		FilterOp{Fn: func(e stream.Event) bool { return e.Value >= 50 }},
	)
	p.Run(context.Background(), stream.NewSliceSource(seqEvents(10)), &sink)
	if len(sink.Events) != 5 {
		t.Fatalf("collected %d events, want 5", len(sink.Events))
	}
	for _, e := range sink.Events {
		if e.Value < 50 {
			t.Errorf("filter leaked %v", e.Value)
		}
	}
}

func TestPipelinePreservesOrder(t *testing.T) {
	var sink stream.CollectSink
	New(MapOp{Fn: func(e stream.Event) stream.Event { return e }}).
		Run(context.Background(), stream.NewSliceSource(seqEvents(100)), &sink)
	for i, e := range sink.Events {
		if e.Value != float64(i) {
			t.Fatalf("order violated at %d: %v", i, e.Value)
		}
	}
}

func TestFlatMapOp(t *testing.T) {
	var sink stream.CollectSink
	New(FlatMapOp{Fn: func(e stream.Event, emit func(stream.Event)) {
		emit(e)
		emit(e)
	}}).Run(context.Background(), stream.NewSliceSource(seqEvents(5)), &sink)
	if len(sink.Events) != 10 {
		t.Errorf("flatmap emitted %d, want 10", len(sink.Events))
	}
}

type flushCounter struct {
	flushed     atomic.Int64
	emitOnFlush bool
}

func (f *flushCounter) Process(e stream.Event, emit func(stream.Event)) { emit(e) }
func (f *flushCounter) Flush(emit func(stream.Event)) {
	f.flushed.Add(1)
	if f.emitOnFlush {
		emit(stream.Event{Stratum: "flush", Value: -1})
	}
}

func TestFlushCalledExactlyOnce(t *testing.T) {
	op := &flushCounter{emitOnFlush: true}
	var sink stream.CollectSink
	New(op).Run(context.Background(), stream.NewSliceSource(seqEvents(3)), &sink)
	if op.flushed.Load() != 1 {
		t.Errorf("Flush called %d times", op.flushed.Load())
	}
	// The flush emission must reach the sink.
	last := sink.Events[len(sink.Events)-1]
	if last.Stratum != "flush" {
		t.Errorf("flush emission lost; last event %+v", last)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// An endless source; cancellation must unblock Run.
	endless := stream.SourceFunc(func() (stream.Event, bool) {
		return stream.Event{Value: 1}, true
	})
	var sink stream.CollectSink
	done := make(chan struct{})
	go func() {
		defer close(done)
		New(MapOp{Fn: func(e stream.Event) stream.Event { return e }}).
			Run(ctx, endless, &sink)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestRunParallelProcessesAll(t *testing.T) {
	var count atomic.Int64
	sink := stream.SinkFunc(func(stream.Event) { count.Add(1) })
	n := RunParallel(context.Background(), 4,
		stream.NewSliceSource(seqEvents(1000)), sink,
		func(int) []Operator {
			return []Operator{MapOp{Fn: func(e stream.Event) stream.Event { return e }}}
		})
	if n != 1000 {
		t.Errorf("produced %d", n)
	}
	if count.Load() != 1000 {
		t.Errorf("sink saw %d events, want 1000", count.Load())
	}
}

func TestRunParallelClampsN(t *testing.T) {
	var count atomic.Int64
	sink := stream.SinkFunc(func(stream.Event) { count.Add(1) })
	RunParallel(context.Background(), 0, stream.NewSliceSource(seqEvents(10)), sink,
		func(int) []Operator { return nil })
	if count.Load() != 10 {
		t.Errorf("sink saw %d", count.Load())
	}
}

func TestLockedSink(t *testing.T) {
	var inner stream.CollectSink
	locked := NewLockedSink(&inner)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				locked.Emit(stream.Event{Value: 1})
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if len(inner.Events) != 4000 {
		t.Errorf("locked sink lost events: %d/4000", len(inner.Events))
	}
}
