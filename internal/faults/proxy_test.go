package faults

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// startEcho runs a TCP echo server, returning its address and a stop
// function.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// echoOnce writes msg and reads it back through the echo upstream.
func echoOnce(t *testing.T, c net.Conn, msg string, timeout time.Duration) error {
	t.Helper()
	_ = c.SetDeadline(time.Now().Add(timeout))
	defer c.SetDeadline(time.Time{})
	if _, err := c.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if !bytes.Equal(buf, []byte(msg)) {
		t.Fatalf("echo mismatch: %q", buf)
	}
	return nil
}

func TestProxyPassthrough(t *testing.T) {
	p, err := NewProxy("127.0.0.1:0", startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	for i := 0; i < 10; i++ {
		if err := echoOnce(t, c, "hello world", 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProxyLatency(t *testing.T) {
	p, err := NewProxy("127.0.0.1:0", startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := echoOnce(t, c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Set(Upstream, Faults{Latency: 100 * time.Millisecond})
	start := time.Now()
	if err := echoOnce(t, c, "slow", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("expected >=100ms injected latency, echo took %v", d)
	}
}

// TestProxyBlackholeHoldsConnOpen is the core chaos primitive: bytes
// stall but the connection stays open (no error, no EOF), then flow
// resumes when healed — including bytes sent INTO the blackhole.
func TestProxyBlackholeHoldsConnOpen(t *testing.T) {
	p, err := NewProxy("127.0.0.1:0", startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := echoOnce(t, c, "before", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Set(Both, Faults{Blackhole: true})
	// The write itself succeeds (kernel buffers it); the read must time
	// out rather than error or EOF.
	err = echoOnce(t, c, "stalled", 300*time.Millisecond)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("expected read timeout through blackhole, got %v", err)
	}
	p.Heal()
	// The stalled bytes were buffered, not dropped: after healing the
	// echo of "stalled" arrives.
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, len("stalled"))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(buf) != "stalled" {
		t.Fatalf("got %q after heal", buf)
	}
}

// TestProxyAsymmetricPartition blackholes only the downstream leg:
// requests still reach the upstream, replies vanish.
func TestProxyAsymmetricPartition(t *testing.T) {
	upstream := startEcho(t)
	p, err := NewProxy("127.0.0.1:0", upstream)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := echoOnce(t, c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Set(Downstream, Faults{Blackhole: true})
	// Upstream leg still flows; the reply never comes back.
	if _, err := c.Write([]byte("oneway")); err != nil {
		t.Fatalf("write through asymmetric partition: %v", err)
	}
	_ = c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	one := make([]byte, 1)
	if _, err := c.Read(one); err == nil {
		t.Fatal("read succeeded through blackholed downstream")
	}
	p.Heal()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, len("oneway"))
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "oneway" {
		t.Fatalf("after heal: %q err=%v", buf, err)
	}
}

func TestProxyRateCap(t *testing.T) {
	p, err := NewProxy("127.0.0.1:0", startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := echoOnce(t, c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// 4 KiB through a 16 KiB/s cap should take ~250ms one way.
	p.Set(Upstream, Faults{BytesPerSec: 16 << 10})
	msg := bytes.Repeat([]byte("x"), 4<<10)
	start := time.Now()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, len(msg))); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("rate cap not applied: 4KiB at 16KiB/s took %v", d)
	}
}

func TestProxyCutAndRefuse(t *testing.T) {
	p, err := NewProxy("127.0.0.1:0", startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := echoOnce(t, c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.CutConns()
	// The severed connection errors on use (possibly after the buffered
	// read drains).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := echoOnce(t, c, "dead", 200*time.Millisecond); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived CutConns")
		}
	}
	p.Refuse(true)
	c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		// Accepted then immediately closed: the first use fails.
		defer c2.Close()
		if err := echoOnce(t, c2, "nope", 500*time.Millisecond); err == nil {
			t.Fatal("echo succeeded while refusing connections")
		}
	}
	p.Heal()
	c3 := dialProxy(t, p)
	if err := echoOnce(t, c3, "back", 2*time.Second); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

func TestProxySchedule(t *testing.T) {
	p, err := NewProxy("127.0.0.1:0", startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	p.Schedule(
		Step{After: 50 * time.Millisecond, Dir: Both, F: Faults{Blackhole: true}},
		Step{After: 350 * time.Millisecond, Dir: Both, F: Faults{}},
	)
	if err := echoOnce(t, c, "pre", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // inside the blackhole window
	if err := echoOnce(t, c, "mid", 150*time.Millisecond); err == nil {
		t.Fatal("echo succeeded inside scheduled blackhole")
	}
	time.Sleep(300 * time.Millisecond) // past the heal step
	// Drain whatever the blackhole buffered, then prove flow resumed.
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, len("mid"))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("drain after scheduled heal: %v", err)
	}
	if err := echoOnce(t, c, "post", 2*time.Second); err != nil {
		t.Fatalf("echo after scheduled heal: %v", err)
	}
}

// TestProxyConcurrentConns exercises fault switches under many live
// connections (run with -race).
func TestProxyConcurrentConns(t *testing.T) {
	p, err := NewProxy("127.0.0.1:0", startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = echoOnce(t, c, "concurrent", 100*time.Millisecond)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		switch i % 4 {
		case 0:
			p.Set(Upstream, Faults{Latency: time.Millisecond})
		case 1:
			p.Set(Both, Faults{Blackhole: true})
		case 2:
			p.Set(Downstream, Faults{BytesPerSec: 1 << 20})
		default:
			p.Heal()
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
