package faults

import (
	"os"
	"sync"
	"syscall"
	"time"

	"streamapprox/internal/broker/storage"
)

// ErrNoSpace is the injected write error: ENOSPC, what a full disk
// returns mid-batch.
var ErrNoSpace error = syscall.ENOSPC

// DiskFaults is the active fault set of a Disk. The zero value passes
// everything through.
type DiskFaults struct {
	// FailWrites makes every WriteAt fail with WriteErr (default
	// ErrNoSpace) after persisting only the first TornBytes bytes — a
	// torn write: the disk kept a prefix, the caller got an error.
	FailWrites bool
	TornBytes  int
	WriteErr   error
	// SyncErr makes every Sync fail (fsync returning EIO/ENOSPC).
	SyncErr error
	// SlowSync delays every Sync — a saturated or degraded disk.
	SlowSync time.Duration
}

// Disk is a fault-injecting storage.FS: it wraps a real filesystem and
// applies the current DiskFaults to every file opened through it,
// including files opened before the faults were set.
type Disk struct {
	inner storage.FS

	mu sync.Mutex
	f  DiskFaults
}

// NewDisk wraps inner (nil = the real filesystem).
func NewDisk(inner storage.FS) *Disk {
	if inner == nil {
		inner = storage.OSFS
	}
	return &Disk{inner: inner}
}

// Set replaces the active fault set; it applies to all future
// operations on every file of this Disk.
func (d *Disk) Set(f DiskFaults) {
	d.mu.Lock()
	d.f = f
	d.mu.Unlock()
}

// Faults returns the active fault set.
func (d *Disk) Faults() DiskFaults {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f
}

var _ storage.FS = (*Disk)(nil)

// OpenFile implements storage.FS.
func (d *Disk) OpenFile(name string, flag int, perm os.FileMode) (storage.File, error) {
	f, err := d.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, disk: d}, nil
}

// Remove implements storage.FS.
func (d *Disk) Remove(name string) error { return d.inner.Remove(name) }

// ReadDir implements storage.FS.
func (d *Disk) ReadDir(name string) ([]os.DirEntry, error) { return d.inner.ReadDir(name) }

// MkdirAll implements storage.FS.
func (d *Disk) MkdirAll(path string, perm os.FileMode) error { return d.inner.MkdirAll(path, perm) }

// faultFile applies the Disk's current faults to one file. Reads and
// truncates pass through untouched: the faults modeled are the write
// path's (full disk, torn write, slow/failed fsync).
type faultFile struct {
	storage.File
	disk *Disk
}

// WriteAt injects torn writes: under FailWrites only the first
// TornBytes bytes reach the file and the caller sees WriteErr.
func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f := ff.disk.Faults()
	if !f.FailWrites {
		return ff.File.WriteAt(p, off)
	}
	werr := f.WriteErr
	if werr == nil {
		werr = ErrNoSpace
	}
	torn := f.TornBytes
	if torn > len(p) {
		torn = len(p)
	}
	n := 0
	if torn > 0 {
		var err error
		n, err = ff.File.WriteAt(p[:torn], off)
		if err != nil {
			return n, err
		}
	}
	return n, werr
}

// Sync injects slow and failing fsyncs.
func (ff *faultFile) Sync() error {
	f := ff.disk.Faults()
	if f.SlowSync > 0 {
		time.Sleep(f.SlowSync)
	}
	if f.SyncErr != nil {
		return f.SyncErr
	}
	return ff.File.Sync()
}
