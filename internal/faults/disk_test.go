package faults

import (
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"testing"
	"time"

	"streamapprox/internal/broker/storage"
)

// TestDiskFaultsAckedExactlyOnce is the disk-fault property test: drive
// a FileLog through randomized torn writes, ENOSPC and slow fsyncs, and
// assert the durability contract — every ACKED batch survives exactly
// once at its returned offset. Unacked records may or may not exist (a
// failed fsync does not roll back), but they must never displace or
// duplicate acked ones.
func TestDiskFaultsAckedExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	disk := NewDisk(nil)
	log, err := storage.OpenFileLog(dir, storage.FileConfig{
		Topic:          "chaos",
		SegmentRecords: 16, // small segments so faults land on rolls too
		Policy:         storage.SyncAlways,
		FS:             disk,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := mrand.New(mrand.NewPCG(7, 42))
	type acked struct {
		base int64
		recs []storage.Record
	}
	var ackedBatches []acked
	var failures int

	for round := 0; round < 200; round++ {
		// Roll a fault for this round. Roughly half the rounds are clean
		// so the log keeps making progress.
		var f DiskFaults
		switch rng.IntN(6) {
		case 0: // ENOSPC before any byte lands
			f = DiskFaults{FailWrites: true}
		case 1: // torn write: a prefix of the frame bytes persists
			f = DiskFaults{FailWrites: true, TornBytes: 1 + rng.IntN(24)}
		case 2: // fsync failure: records written but must not be acked
			f = DiskFaults{SyncErr: errors.New("injected fsync failure")}
		case 3: // slow fsync: still acked, just late
			f = DiskFaults{SlowSync: time.Millisecond}
		}
		disk.Set(f)

		n := 1 + rng.IntN(8)
		recs := make([]storage.Record, n)
		for i := range recs {
			recs[i] = storage.Record{
				Key:   fmt.Sprintf("r%d-%d", round, i),
				Value: float64(round*100 + i),
			}
		}
		base, err := log.Append(recs)
		if err != nil {
			failures++
			continue
		}
		cp := make([]storage.Record, n)
		copy(cp, recs)
		ackedBatches = append(ackedBatches, acked{base: base, recs: cp})
	}
	disk.Set(DiskFaults{})
	if failures == 0 || len(ackedBatches) == 0 {
		t.Fatalf("degenerate run: %d failures, %d acked batches", failures, len(ackedBatches))
	}

	// One clean append after the storm must still work.
	tail := []storage.Record{{Key: "tail", Value: 1}}
	tailBase, err := log.Append(tail)
	if err != nil {
		t.Fatalf("append after clearing faults: %v", err)
	}
	ackedBatches = append(ackedBatches, acked{base: tailBase, recs: tail})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen through the REAL filesystem: recovery must find a clean log
	// (rollbacks removed torn bytes; nothing to truncate twice).
	re, err := storage.OpenFileLog(dir, storage.FileConfig{Topic: "chaos", SegmentRecords: 16})
	if err != nil {
		t.Fatalf("reopen after faults: %v", err)
	}
	defer re.Close()

	last := ackedBatches[len(ackedBatches)-1]
	if hwm := re.HighWatermark(); hwm < last.base+int64(len(last.recs)) {
		t.Fatalf("recovered hwm %d < last acked end %d", hwm, last.base+int64(len(last.recs)))
	}
	// Offsets are positions, so "exactly once at its offset" is checked
	// by reading each batch back at its acked base.
	for _, b := range ackedBatches {
		got, err := re.Read(b.base, len(b.recs))
		if err != nil {
			t.Fatalf("read acked batch at %d: %v", b.base, err)
		}
		if len(got) != len(b.recs) {
			t.Fatalf("batch at %d: got %d records, acked %d", b.base, len(got), len(b.recs))
		}
		for i, r := range got {
			want := b.recs[i]
			if r.Offset != b.base+int64(i) || r.Key != want.Key || r.Value != want.Value {
				t.Fatalf("record %d of batch at %d: got {off=%d key=%q val=%v}, want {off=%d key=%q val=%v}",
					i, b.base, r.Offset, r.Key, r.Value, b.base+int64(i), want.Key, want.Value)
			}
		}
	}
	t.Logf("survived %d injected failures; %d acked batches verified after reopen", failures, len(ackedBatches))
}

// TestDiskFaultsTornTailRecovered simulates a crash INSIDE a torn
// write: the partial frame stays on disk (no rollback runs) and the
// next open must truncate it, keeping every previously acked record.
func TestDiskFaultsTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	disk := NewDisk(nil)
	log, err := storage.OpenFileLog(dir, storage.FileConfig{
		Topic: "chaos", SegmentRecords: 16, Policy: storage.SyncAlways, FS: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ackedRecs []storage.Record
	for i := 0; i < 10; i++ {
		r := storage.Record{Key: fmt.Sprintf("ok%d", i), Value: float64(i)}
		if _, err := log.Append([]storage.Record{r}); err != nil {
			t.Fatal(err)
		}
		ackedRecs = append(ackedRecs, r)
	}
	// Torn write, then a "crash": the log is abandoned (not closed, no
	// rollback beyond Append's own, files left as-is). Append's rollback
	// itself is made to fail-open by breaking Truncate? — no: rollback
	// uses Truncate which passes through, so Append cleans up. To leave
	// a REAL torn tail we write garbage straight into the tail file.
	disk.Set(DiskFaults{FailWrites: true, TornBytes: 7})
	_, err = log.Append([]storage.Record{{Key: "torn", Value: 99}})
	if err == nil {
		t.Fatal("append through FailWrites succeeded")
	}
	disk.Set(DiskFaults{})
	_ = log.Close()

	// Emulate the crash remnant recovery must handle: a half-written
	// frame at the tail of the last segment.
	f, err := storage.OSFS.OpenFile(dir+"/00000000000000000000.seg", 2 /*O_RDWR*/, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0, 0, 0, 42, 1, 2, 3}, st.Size()); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	re, err := storage.OpenFileLog(dir, storage.FileConfig{Topic: "chaos", SegmentRecords: 16})
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer re.Close()
	if hwm := re.HighWatermark(); hwm != int64(len(ackedRecs)) {
		t.Fatalf("recovered hwm %d, want %d", hwm, len(ackedRecs))
	}
	got, err := re.Read(0, len(ackedRecs))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Key != ackedRecs[i].Key || r.Value != ackedRecs[i].Value {
			t.Fatalf("record %d: got %q=%v", i, r.Key, r.Value)
		}
	}
}
