// Package faults is the chaos plane: a fault-injecting TCP proxy that
// sits between any two tiers (client↔broker, broker↔broker) and a
// fault-injecting filesystem layered under the storage engine. Both
// exist to make network and disk misbehaviour — the faults that hang
// un-deadlined code forever — reproducible in tests and benchmarks.
package faults

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Direction selects which flow of a proxied connection a fault applies
// to, so partitions can be asymmetric (A can talk to B while B's
// replies vanish).
type Direction int

const (
	// Upstream is client→server bytes (toward the proxied address).
	Upstream Direction = iota
	// Downstream is server→client bytes.
	Downstream
	// Both applies a fault to both directions.
	Both
)

func (d Direction) String() string {
	switch d {
	case Upstream:
		return "upstream"
	case Downstream:
		return "downstream"
	default:
		return "both"
	}
}

// Faults is one direction's active fault set. The zero value forwards
// bytes untouched.
type Faults struct {
	// Latency delays each forwarded chunk; Jitter adds a uniform random
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BytesPerSec caps throughput (0 = unlimited).
	BytesPerSec int
	// Blackhole stops forwarding while HOLDING the connection open: no
	// FIN, no RST — the peer's writes back up in kernel buffers and its
	// reads see silence, exactly the half-open stall a mid-path failure
	// produces. Clearing the fault resumes forwarding.
	Blackhole bool
}

// Proxy is a chaos TCP proxy: it accepts on its own listener, dials the
// upstream address per connection, and pumps bytes both ways through
// the per-direction fault set. Faults apply to live connections, not
// just new ones.
type Proxy struct {
	upstream string
	ln       net.Listener

	mu      sync.Mutex
	dirs    [2]dirFaults
	refuse  bool
	conns   map[net.Conn]struct{}
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
	rngMu   sync.Mutex
	rng     *rand.Rand
	stopped []*time.Timer
}

// dirFaults is one direction's fault set plus a wake channel closed on
// every change, so a pump parked in a blackhole notices the heal.
type dirFaults struct {
	f    Faults
	wake chan struct{}
}

// NewProxy listens on listenAddr (use "127.0.0.1:0" for an ephemeral
// port) and forwards every connection to upstream.
func NewProxy(listenAddr, upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
		rng:      rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
	p.dirs[Upstream].wake = make(chan struct{})
	p.dirs[Downstream].wake = make(chan struct{})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients and peers
// should dial instead of the upstream.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Set replaces one direction's fault set (Both replaces both). It
// takes effect immediately, including for connections already pumping.
func (p *Proxy) Set(dir Direction, f Faults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range []Direction{Upstream, Downstream} {
		if dir != Both && dir != d {
			continue
		}
		p.dirs[d].f = f
		close(p.dirs[d].wake)
		p.dirs[d].wake = make(chan struct{})
	}
}

// Heal clears every fault (both directions) and stops refusing new
// connections. Severed connections stay severed — the client redials.
func (p *Proxy) Heal() {
	p.Set(Both, Faults{})
	p.mu.Lock()
	p.refuse = false
	p.mu.Unlock()
}

// Refuse makes the proxy close new connections immediately on accept
// (connection-refused-like fault, distinct from the silent blackhole).
func (p *Proxy) Refuse(on bool) {
	p.mu.Lock()
	p.refuse = on
	p.mu.Unlock()
}

// CutConns severs every live proxied connection (drop fault). New
// connections are still accepted unless Refuse is set.
func (p *Proxy) CutConns() {
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
}

// Step is one entry of a fault schedule.
type Step struct {
	// After is the delay from Schedule's call at which the step fires.
	After time.Duration
	// Dir and F are applied as by Set.
	Dir Direction
	F   Faults
	// Cut additionally severs live connections when the step fires.
	Cut bool
}

// Schedule arms a timed fault sequence. Steps fire relative to now;
// Close cancels pending steps.
func (p *Proxy) Schedule(steps ...Step) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	for _, s := range steps {
		step := s
		t := time.AfterFunc(step.After, func() {
			p.Set(step.Dir, step.F)
			if step.Cut {
				p.CutConns()
			}
		})
		p.stopped = append(p.stopped, t)
	}
}

// Close stops the proxy: listener closed, live connections severed,
// pending schedule steps cancelled.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	for _, t := range p.stopped {
		t.Stop()
	}
	err := p.ln.Close()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		p.mu.Lock()
		refuse, closed := p.refuse, p.closed
		if !refuse && !closed {
			p.conns[c] = struct{}{}
		}
		p.mu.Unlock()
		if refuse || closed {
			_ = c.Close()
			continue
		}
		p.wg.Add(1)
		go p.serve(c)
	}
}

// serve dials the upstream and runs the two pumps for one connection.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		p.forget(client)
		_ = client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = up.Close()
		p.forget(client)
		_ = client.Close()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pump(up, client, Upstream) }()
	go func() { defer wg.Done(); p.pump(client, up, Downstream) }()
	wg.Wait()
	p.forget(client)
	p.forget(up)
	_ = client.Close()
	_ = up.Close()
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// faults returns the current fault set for a direction plus the wake
// channel that closes on the next change.
func (p *Proxy) faults(dir Direction) (Faults, <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirs[dir].f, p.dirs[dir].wake
}

// pump copies src→dst applying one direction's faults chunk by chunk.
// While blackholed it neither reads src nor writes dst — the sender's
// bytes pile up against TCP flow control, the stall a real half-open
// connection produces.
func (p *Proxy) pump(dst, src net.Conn, dir Direction) {
	buf := make([]byte, 32<<10)
	for {
		f, wake := p.faults(dir)
		if f.Blackhole {
			select {
			case <-wake:
				continue
			case <-p.done:
				return
			}
		}
		// Bound the read so a fault set mid-silence is noticed without
		// waking on a channel (the next loop iteration re-reads faults).
		_ = src.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			// Re-fetch: a fault set while this pump was parked in Read must
			// apply to the chunk in hand, not the next one. A blackhole set
			// meanwhile parks here holding the chunk — it is delivered (not
			// dropped) once the fault clears, like bytes queued mid-path.
			for f, wake = p.faults(dir); f.Blackhole; f, wake = p.faults(dir) {
				select {
				case <-wake:
				case <-p.done:
					return
				}
			}
			d := p.delay(f)
			if f.BytesPerSec > 0 {
				// Pace before delivery so the cap holds even for a transfer
				// that fits in one chunk.
				d += time.Duration(float64(n) / float64(f.BytesPerSec) * float64(time.Second))
			}
			if d > 0 && !p.sleep(d) {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return
		}
	}
}

// delay computes latency plus a random jitter sample.
func (p *Proxy) delay(f Faults) time.Duration {
	d := f.Latency
	if f.Jitter > 0 {
		p.rngMu.Lock()
		d += time.Duration(p.rng.Int64N(int64(f.Jitter)))
		p.rngMu.Unlock()
	}
	return d
}

// sleep pauses for d, returning false if the proxy closed meanwhile.
func (p *Proxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}
