package adaptive

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGrowOnHighError(t *testing.T) {
	c := NewController(0.01, 0.2)
	next := c.Observe(0.05) // 5x over target
	if next <= 0.2 {
		t.Errorf("fraction did not grow: %v", next)
	}
	if c.Adjustments() != 1 {
		t.Errorf("Adjustments = %d", c.Adjustments())
	}
}

func TestShrinkOnLowError(t *testing.T) {
	c := NewController(0.01, 0.8)
	next := c.Observe(0.001) // far below target/2
	if next >= 0.8 {
		t.Errorf("fraction did not shrink: %v", next)
	}
}

func TestDeadBandHolds(t *testing.T) {
	c := NewController(0.01, 0.5)
	// Error between target/2 and target: hold steady.
	if next := c.Observe(0.008); next != 0.5 {
		t.Errorf("fraction changed inside dead band: %v", next)
	}
	if c.Adjustments() != 0 {
		t.Errorf("Adjustments = %d", c.Adjustments())
	}
}

func TestSetFractionRebases(t *testing.T) {
	c := NewController(0.01, 0.5, WithBounds(0.1, 0.9))
	c.SetFraction(0.3)
	if c.Fraction() != 0.3 {
		t.Errorf("Fraction = %v after SetFraction(0.3)", c.Fraction())
	}
	if c.Adjustments() != 0 {
		t.Errorf("SetFraction counted as adjustment: %d", c.Adjustments())
	}
	// Clamped to bounds, and the local loop continues from the new base.
	c.SetFraction(0.01)
	if c.Fraction() != 0.1 {
		t.Errorf("SetFraction below min gave %v, want 0.1", c.Fraction())
	}
	if next := c.Observe(0.05); next <= 0.1 {
		t.Errorf("controller stuck after rebase: %v", next)
	}
}

func TestBoundsRespected(t *testing.T) {
	c := NewController(0.01, 0.9, WithBounds(0.1, 0.95))
	for i := 0; i < 20; i++ {
		c.Observe(1.0) // always over target
	}
	if c.Fraction() > 0.95 {
		t.Errorf("fraction exceeded max: %v", c.Fraction())
	}
	for i := 0; i < 100; i++ {
		c.Observe(0)
	}
	if c.Fraction() < 0.1 {
		t.Errorf("fraction fell below min: %v", c.Fraction())
	}
}

func TestInitialFractionClamped(t *testing.T) {
	c := NewController(0.01, 5.0)
	if c.Fraction() != 1.0 {
		t.Errorf("initial fraction = %v, want 1.0", c.Fraction())
	}
}

func TestNegativeErrorIgnored(t *testing.T) {
	c := NewController(0.01, 0.5)
	if next := c.Observe(-1); next != 0.5 {
		t.Errorf("negative error changed fraction: %v", next)
	}
}

func TestOptions(t *testing.T) {
	c := NewController(0.01, 0.2,
		WithGrowFactor(3),
		WithShrinkStep(0.2),
		WithSlack(0.9),
	)
	if got := c.Observe(0.05); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("grow factor 3: got %v, want 0.6", got)
	}
	if got := c.Observe(0.008); math.Abs(got-0.4) > 1e-12 { // below 0.9*0.01 -> shrink 0.2
		t.Errorf("shrink step 0.2: got %v, want 0.4", got)
	}
}

func TestInvalidOptionsIgnored(t *testing.T) {
	c := NewController(0.01, 0.2, WithGrowFactor(0.5), WithShrinkStep(-1), WithSlack(2))
	if got := c.Observe(1.0); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("default grow factor should apply: %v", got)
	}
}

func TestTargetAccessor(t *testing.T) {
	if NewController(0.02, 0.5).Target() != 0.02 {
		t.Error("Target accessor broken")
	}
}

// Property: the fraction always stays within bounds regardless of the
// error sequence.
func TestFractionAlwaysBounded(t *testing.T) {
	if err := quick.Check(func(errs []float64) bool {
		c := NewController(0.01, 0.5, WithBounds(0.05, 1.0))
		for _, e := range errs {
			f := c.Observe(e)
			if f < 0.05 || f > 1.0 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// Convergence: a plant whose error is inversely proportional to the
// fraction must settle near the target.
func TestConvergesOnStationaryPlant(t *testing.T) {
	c := NewController(0.01, 0.05)
	plant := func(fraction float64) float64 {
		return 0.005 / fraction // error 0.5% at fraction 1.0, 10% at 0.05
	}
	for i := 0; i < 50; i++ {
		c.Observe(plant(c.Fraction()))
	}
	finalErr := plant(c.Fraction())
	if finalErr > c.Target()*1.5 {
		t.Errorf("did not converge: fraction=%v error=%v target=%v",
			c.Fraction(), finalErr, c.Target())
	}
}
