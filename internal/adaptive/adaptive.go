// Package adaptive implements the feedback mechanism of §4.2.1: "In cases
// where the error bound is larger than the specified target, an adaptive
// feedback mechanism is activated to increase the sample size in the
// sampling module. This way, we achieve higher accuracy in the subsequent
// epochs."
//
// Controller is a bounded multiplicative-increase / additive-decrease
// loop over the sampling fraction: when the observed relative error bound
// exceeds the target, the fraction grows by GrowFactor; when it is
// comfortably below target (under Slack·target), the fraction decays by
// ShrinkStep to reclaim throughput.
package adaptive

// Controller re-tunes the sampling fraction from observed error bounds.
// The zero value is not usable; construct with NewController.
type Controller struct {
	target     float64
	minFrac    float64
	maxFrac    float64
	growFactor float64
	shrinkStep float64
	slack      float64

	fraction    float64
	adjustments int
}

// Option configures a Controller.
type Option func(*Controller)

// WithBounds clamps the fraction to [min, max].
func WithBounds(minFrac, maxFrac float64) Option {
	return func(c *Controller) {
		c.minFrac = minFrac
		c.maxFrac = maxFrac
	}
}

// WithGrowFactor sets the multiplicative increase applied when the error
// exceeds the target (default 1.5).
func WithGrowFactor(f float64) Option {
	return func(c *Controller) {
		if f > 1 {
			c.growFactor = f
		}
	}
}

// WithShrinkStep sets the additive decrease applied when the error is
// comfortably below target (default 0.05).
func WithShrinkStep(s float64) Option {
	return func(c *Controller) {
		if s > 0 {
			c.shrinkStep = s
		}
	}
}

// WithSlack sets the fraction of the target below which the controller
// starts shrinking (default 0.5: shrink when error < target/2).
func WithSlack(s float64) Option {
	return func(c *Controller) {
		if s > 0 && s < 1 {
			c.slack = s
		}
	}
}

// NewController returns a controller targeting the given relative error
// bound (e.g. 0.01 for 1%), starting at the initial sampling fraction.
func NewController(targetError, initialFraction float64, opts ...Option) *Controller {
	c := &Controller{
		target:     targetError,
		minFrac:    0.01,
		maxFrac:    1.0,
		growFactor: 1.5,
		shrinkStep: 0.05,
		slack:      0.5,
		fraction:   initialFraction,
	}
	for _, opt := range opts {
		opt(c)
	}
	c.fraction = c.clamp(c.fraction)
	return c
}

func (c *Controller) clamp(f float64) float64 {
	if f < c.minFrac {
		return c.minFrac
	}
	if f > c.maxFrac {
		return c.maxFrac
	}
	return f
}

// Fraction returns the current sampling fraction.
func (c *Controller) Fraction() float64 { return c.fraction }

// SetFraction overrides the current fraction (clamped to the
// controller's bounds) without counting an adjustment. An external
// scheduler apportioning a shared budget across many controllers uses
// this to re-base each one at its granted share every control interval,
// so the local feedback loop continues from the granted operating point
// instead of fighting the global allocation.
func (c *Controller) SetFraction(f float64) { c.fraction = c.clamp(f) }

// Target returns the target relative error.
func (c *Controller) Target() float64 { return c.target }

// Adjustments returns how many times the fraction changed.
func (c *Controller) Adjustments() int { return c.adjustments }

// Observe feeds the relative error bound of the last interval
// (bound/|value|) and returns the fraction to use next interval.
func (c *Controller) Observe(relativeError float64) float64 {
	if relativeError < 0 {
		return c.fraction
	}
	old := c.fraction
	switch {
	case relativeError > c.target:
		c.fraction = c.clamp(c.fraction * c.growFactor)
	case relativeError < c.target*c.slack:
		c.fraction = c.clamp(c.fraction - c.shrinkStep)
	}
	if c.fraction != old {
		c.adjustments++
	}
	return c.fraction
}
