package server

import (
	"fmt"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
)

// End-to-end cluster failover: a registered query served over a
// 3-broker cluster with replication factor 2 must survive the death of
// a partition leader mid-stream with no lost or duplicated windows —
// the acceptance scenario of the multi-broker refactor.

// brokerCluster is a 3-member in-process broker cluster driven through
// the package's exported API only.
type brokerCluster struct {
	brokers []*broker.Broker
	servers []*broker.Server
	nodes   []*broker.ClusterNode
	ids     []string
	addrs   []string
	killed  []bool
}

func startBrokerCluster(t *testing.T, members int) *brokerCluster {
	t.Helper()
	bc := &brokerCluster{killed: make([]bool, members)}
	peers := make(map[string]string, members)
	for i := 0; i < members; i++ {
		b := broker.New()
		srv, err := broker.Serve(b, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		peers[id] = srv.Addr()
		bc.brokers = append(bc.brokers, b)
		bc.servers = append(bc.servers, srv)
		bc.ids = append(bc.ids, id)
		bc.addrs = append(bc.addrs, srv.Addr())
	}
	for i := 0; i < members; i++ {
		node, err := broker.NewClusterNode(bc.brokers[i], broker.NodeConfig{
			ID:             bc.ids[i],
			Peers:          peers,
			Replicas:       2,
			MinISR:         2,
			HeartbeatEvery: 10 * time.Millisecond,
			FailAfter:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		bc.servers[i].AttachNode(node)
		bc.nodes = append(bc.nodes, node)
	}
	for _, n := range bc.nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for i := range bc.servers {
			bc.kill(i)
		}
	})
	return bc
}

func (bc *brokerCluster) kill(i int) {
	if bc.killed[i] {
		return
	}
	bc.killed[i] = true
	bc.nodes[i].Close()
	bc.servers[i].Close()
	bc.brokers[i].Close()
}

func (bc *brokerCluster) indexOf(t *testing.T, id string) int {
	for i, nid := range bc.ids {
		if nid == id {
			return i
		}
	}
	t.Fatalf("unknown node id %q", id)
	return -1
}

func (bc *brokerCluster) dial(t *testing.T) *broker.ClusterClient {
	t.Helper()
	cc, err := broker.DialClusterWithOptions(bc.addrs, broker.ClusterClientOptions{
		Retries: 20,
		Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })
	return cc
}

func TestClusterFailoverQueryNoLossNoDup(t *testing.T) {
	bc := startBrokerCluster(t, 3)
	cc := bc.dial(t)
	if err := cc.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{
		Cluster: cc,
		DialShard: func() (broker.Cluster, error) {
			return broker.DialClusterWithOptions(bc.addrs, broker.ClusterClientOptions{
				Retries: 20, Backoff: 5 * time.Millisecond,
			})
		},
		Topic:       "in",
		PollBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.job(id)

	events := makeEvents(23, 24000) // 24s of event time
	toRecords := func(evs []stream.Event) []broker.Record {
		out := make([]broker.Record, len(evs))
		for i, e := range evs {
			out[i] = broker.FromEvent(e)
		}
		return out
	}

	// First half, then kill the leader of partition 0 mid-stream, then
	// the second half — the produce stream and the running query must
	// both ride through the promotion.
	half := len(events) / 2
	for off := 0; off < half; off += 1000 {
		if _, err := cc.Produce("in", toRecords(events[off:off+1000])); err != nil {
			t.Fatalf("produce: %v", err)
		}
	}
	m, err := cc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	oldLeader := m.LeaderOf("in", 0)
	if oldLeader == "" {
		t.Fatal("no leader for partition 0")
	}
	bc.kill(bc.indexOf(t, oldLeader))
	for off := half; off < len(events); off += 1000 {
		if _, err := cc.Produce("in", toRecords(events[off:off+1000])); err != nil {
			t.Fatalf("produce after leader kill: %v", err)
		}
	}

	// A follower must have been promoted for every partition the dead
	// node led.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err = cc.Meta()
		if err == nil && m.LeaderOf("in", 0) != oldLeader && m.LeaderOf("in", 0) != "" &&
			m.LeaderOf("in", 1) != oldLeader && m.LeaderOf("in", 1) != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion observed: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The query must consume every produced record exactly once...
	total := int64(len(events))
	deadline = time.Now().Add(20 * time.Second)
	for {
		var consumed int64
		for _, sh := range j.shards {
			consumed += sh.records.Load()
		}
		if consumed == total {
			break
		}
		if consumed > total {
			t.Fatalf("query consumed %d records, produced only %d (duplication)", consumed, total)
		}
		if time.Now().After(deadline) {
			t.Fatalf("query consumed %d of %d records before deadline (loss)", consumed, total)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...and its served windows must be unique and cover the stream's
	// event-time span without holes.
	deadline = time.Now().Add(10 * time.Second)
	var results []MergedWindow
	for {
		results = j.resultsSince(-1)
		if len(results) >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d windows merged", len(results))
		}
		time.Sleep(10 * time.Millisecond)
	}
	seen := map[time.Time]bool{}
	var minStart, maxStart time.Time
	for _, r := range results {
		if seen[r.Start] {
			t.Fatalf("window %v served twice", r.Start)
		}
		seen[r.Start] = true
		if minStart.IsZero() || r.Start.Before(minStart) {
			minStart = r.Start
		}
		if r.Start.After(maxStart) {
			maxStart = r.Start
		}
	}
	for at := minStart; !at.After(maxStart); at = at.Add(time.Second) {
		if !seen[at] {
			t.Fatalf("window starting %v missing between %v and %v", at, minStart, maxStart)
		}
	}
}

// TestIngestRidesOverClusterClient is the cheap sanity check that the
// shared ingest plane consumes a (healthy) cluster through the routing
// client exactly as it does a single broker.
func TestIngestRidesOverClusterClient(t *testing.T) {
	bc := startBrokerCluster(t, 3)
	cc := bc.dial(t)
	if err := cc.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: cc, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Register(Spec{Kind: "count", Window: time.Second, Slide: time.Second, Fraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.job(id)
	events := makeEvents(7, 4000)
	recs := make([]broker.Record, len(events))
	for i, e := range events {
		recs[i] = broker.FromEvent(e)
	}
	if _, err := cc.Produce("in", recs); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var consumed int64
		for _, sh := range j.shards {
			consumed += sh.records.Load()
		}
		if consumed == int64(len(events)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d of %d", consumed, len(events))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
