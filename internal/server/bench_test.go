package server

import (
	"fmt"
	"testing"
	"time"

	"streamapprox/internal/broker"
)

// BenchmarkShardedWindowThroughput measures served windowed throughput
// as the partition count (= shard workers per query) grows. One
// iteration produces a fixed dataset into an N-partition topic,
// registers a sum query and waits until every record has flowed through
// the shard sessions and the merged windows are out. The items/s metric
// should scale from 1 to 4 shards — the scale surface the serving tier
// adds.
//
//	go test ./internal/server -bench Sharded -benchtime 3x
func BenchmarkShardedWindowThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			events := makeEvents(5, 60000) // 60s of data, 16 strata
			var items int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bk := broker.New()
				if err := bk.CreateTopic("in", shards); err != nil {
					b.Fatal(err)
				}
				if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
					b.Fatal(err)
				}
				s, err := New(Config{Cluster: bk, Topic: "in", PollBackoff: 100 * time.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				id, err := s.Register(Spec{
					Kind:     "sum",
					Window:   10 * time.Second,
					Slide:    5 * time.Second,
					Fraction: 0.6,
					Seed:     uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				j, _ := s.job(id)
				deadline := time.Now().Add(30 * time.Second)
				for {
					var consumed int64
					for _, sh := range j.shards {
						consumed += sh.records.Load()
					}
					if consumed == int64(len(events)) && len(j.resultsSince(-1)) >= 5 {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("consumed %d of %d within deadline", consumed, len(events))
					}
					time.Sleep(200 * time.Microsecond)
				}
				items += int64(len(events))
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
			b.StopTimer()
			if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
				b.ReportMetric(float64(items)/elapsed, "items/s")
			}
		})
	}
}

// BenchmarkQueryConcurrency measures delivered throughput and broker
// fetch ops as the number of concurrent queries on ONE topic grows —
// the surface the shared ingest plane changes. items/s counts every
// record delivered to every query; fetches/iter shows the plane
// fetching each batch once regardless of query count.
//
//	go test ./internal/server -bench Concurrency -benchtime 3x
func BenchmarkQueryConcurrency(b *testing.B) {
	for _, queries := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("queries=%d", queries), func(b *testing.B) {
			events := makeEvents(5, 40000)
			var items, fetches int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bk := broker.New()
				if err := bk.CreateTopic("in", 4); err != nil {
					b.Fatal(err)
				}
				cc := &countingCluster{Cluster: bk}
				s, err := New(Config{Cluster: cc, Topic: "in", PollBackoff: 100 * time.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				jobs := make([]*job, 0, queries)
				for q := 0; q < queries; q++ {
					id, err := s.Register(Spec{
						Kind:     "sum",
						Window:   10 * time.Second,
						Slide:    5 * time.Second,
						Fraction: 0.6,
						Seed:     uint64(i*queries + q + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					j, _ := s.job(id)
					jobs = append(jobs, j)
				}
				b.StartTimer()
				if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
					b.Fatal(err)
				}
				deadline := time.Now().Add(60 * time.Second)
				for _, j := range jobs {
					for jobRecords(j) < int64(len(events)) {
						if time.Now().After(deadline) {
							b.Fatalf("query %s consumed %d of %d within deadline",
								j.id, jobRecords(j), len(events))
						}
						time.Sleep(100 * time.Microsecond)
					}
				}
				items += int64(queries) * int64(len(events))
				b.StopTimer()
				fetches += cc.fetches.Load()
				s.Close()
				b.StartTimer()
			}
			b.StopTimer()
			if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
				b.ReportMetric(float64(items)/elapsed, "items/s")
			}
			if b.N > 0 {
				b.ReportMetric(float64(fetches)/float64(b.N), "fetches/iter")
			}
		})
	}
}
