package server

import (
	"fmt"
	"testing"
	"time"

	"streamapprox/internal/broker"
)

// BenchmarkShardedWindowThroughput measures served windowed throughput
// as the partition count (= shard workers per query) grows. One
// iteration produces a fixed dataset into an N-partition topic,
// registers a sum query and waits until every record has flowed through
// the shard sessions and the merged windows are out. The items/s metric
// should scale from 1 to 4 shards — the scale surface the serving tier
// adds.
//
//	go test ./internal/server -bench Sharded -benchtime 3x
func BenchmarkShardedWindowThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			events := makeEvents(5, 60000) // 60s of data, 16 strata
			var items int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bk := broker.New()
				if err := bk.CreateTopic("in", shards); err != nil {
					b.Fatal(err)
				}
				if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
					b.Fatal(err)
				}
				s, err := New(Config{Cluster: bk, Topic: "in", PollBackoff: 100 * time.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				id, err := s.Register(Spec{
					Kind:     "sum",
					Window:   10 * time.Second,
					Slide:    5 * time.Second,
					Fraction: 0.6,
					Seed:     uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				j, _ := s.job(id)
				deadline := time.Now().Add(30 * time.Second)
				for {
					var consumed int64
					for _, sh := range j.shards {
						consumed += sh.records.Load()
					}
					if consumed == int64(len(events)) && len(j.resultsSince(-1)) >= 5 {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("consumed %d of %d within deadline", consumed, len(events))
					}
					time.Sleep(200 * time.Microsecond)
				}
				items += int64(len(events))
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
			b.StopTimer()
			if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
				b.ReportMetric(float64(items)/elapsed, "items/s")
			}
		})
	}
}
