package server

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
)

// TestCheckpointRestartResumes kills a server mid-stream and restarts it
// from the checkpoint directory: the query must come back without
// re-registration, resume from the saved offsets and sequence counter,
// and never emit a window twice.
func TestCheckpointRestartResumes(t *testing.T) {
	dir := t.TempDir()
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(19, 16000) // 16s of data
	half := len(events) / 2
	if _, err := broker.ProduceEvents(b, "in", events[:half]); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Cluster:         b,
		Topic:           "in",
		CheckpointDir:   dir,
		CheckpointEvery: 20 * time.Millisecond,
		PollBackoff:     time.Millisecond,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	j1, _ := s1.job(id)
	deadline := time.Now().Add(10 * time.Second)
	var before []MergedWindow
	for {
		before = j1.resultsSince(-1)
		if len(before) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first server produced only %d windows", len(before))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close checkpoints (without flushing partial windows) and stops.
	s1.Close()
	maxSeq := before[len(before)-1].Seq
	var consumed1 int64
	for _, sh := range j1.shards {
		consumed1 += sh.records.Load()
	}
	if consumed1 == 0 {
		t.Fatal("first server consumed nothing")
	}

	// Restart from the checkpoint and feed the rest of the stream.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2, ok := s2.job(id)
	if !ok {
		t.Fatalf("query %s not restored; have %v", id, s2.jobs())
	}
	if j2.spec.Kind != "sum" || j2.spec.Window != 2*time.Second {
		t.Fatalf("restored spec = %+v", j2.spec)
	}
	if _, err := broker.ProduceEvents(b, "in", events[half:]); err != nil {
		t.Fatal(err)
	}

	deadline = time.Now().Add(10 * time.Second)
	var after []MergedWindow
	for {
		after = j2.resultsSince(-1)
		if len(after) >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted server produced only %d new windows", len(after))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Sequence numbers continue past the first run's; no window start is
	// served twice across the runs.
	seen := map[time.Time]int64{}
	for _, r := range before {
		seen[r.Start] = r.Seq
	}
	for _, r := range after {
		if r.Seq <= maxSeq {
			t.Errorf("restarted window %v reuses seq %d (first run ended at %d)", r.Start, r.Seq, maxSeq)
		}
		if firstSeq, dup := seen[r.Start]; dup {
			t.Errorf("window %v served twice (seq %d and %d)", r.Start, firstSeq, r.Seq)
		}
	}

	// The two runs together must account for every produced record
	// exactly once: restored counters carry the first run's records.
	var consumed2 int64
	for _, sh := range j2.shards {
		consumed2 += sh.records.Load()
	}
	waitTotal := time.Now().Add(10 * time.Second)
	for consumed2 < int64(len(events)) && time.Now().Before(waitTotal) {
		time.Sleep(5 * time.Millisecond)
		consumed2 = 0
		for _, sh := range j2.shards {
			consumed2 += sh.records.Load()
		}
	}
	if consumed2 != int64(len(events)) {
		t.Errorf("total consumed across runs = %d, want %d (offsets not resumed)", consumed2, len(events))
	}

	// A registration after restart picks a fresh id.
	id2, err := s2.Register(Spec{Kind: "count", Window: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Errorf("restarted server reissued id %s", id)
	}
}

// TestSharedPlaneRestartNoLossNoDup is the shared-ingest recovery
// property: kill a server mid-window with three active queries plus
// one late-registered query (attached through the catch-up path),
// restart from the checkpoint directory, feed the rest of the stream,
// and assert that EVERY query accounts for every produced record
// exactly once and serves no window twice — the split into shared
// partition offsets and per-query delivery watermarks must make
// restart loss- and duplication-free even for queries that were behind
// the plane when the checkpoint was cut.
func TestSharedPlaneRestartNoLossNoDup(t *testing.T) {
	dir := t.TempDir()
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(47, 16000) // 16s of data
	half := len(events) / 2
	if _, err := broker.ProduceEvents(b, "in", events[:half]); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Cluster:         b,
		Topic:           "in",
		CheckpointDir:   dir,
		CheckpointEvery: 15 * time.Millisecond,
		PollBackoff:     time.Millisecond,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5},
		{Kind: "mean", Window: 3 * time.Second, Slide: time.Second, Fraction: 0.6},
		{Kind: "count", Window: 2 * time.Second, Slide: 2 * time.Second, Fraction: 0.4},
	}
	var ids []string
	for _, sp := range specs {
		id, err := s1.Register(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Let the three early queries get ahead, then register a late one
	// from the beginning: it restores mid-catch-up if the kill lands
	// while it is still chasing the plane.
	for _, id := range ids {
		j, _ := s1.job(id)
		deadline := time.Now().Add(10 * time.Second)
		for len(j.resultsSince(-1)) < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("query %s produced no early windows", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	lateID, err := s1.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second,
		Fraction: 0.5, From: "earliest", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, lateID)
	// Give the late query a moment to start catching up, then cut the
	// server down mid-stream (Close checkpoints without flushing).
	jLate, _ := s1.job(lateID)
	deadline := time.Now().Add(10 * time.Second)
	for jobRecords(jLate) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late query never started catching up")
		}
		time.Sleep(time.Millisecond)
	}
	before := make(map[string][]MergedWindow)
	for _, id := range ids {
		j, _ := s1.job(id)
		before[id] = j.resultsSince(-1)
	}
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range ids {
		if _, ok := s2.job(id); !ok {
			t.Fatalf("query %s not restored", id)
		}
	}
	if _, err := broker.ProduceEvents(b, "in", events[half:]); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		j, _ := s2.job(id)
		deadline := time.Now().Add(15 * time.Second)
		for jobRecords(j) < int64(len(events)) {
			if time.Now().After(deadline) {
				t.Fatalf("query %s consumed %d of %d after restart", id, jobRecords(j), len(events))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Settle, then assert exactly-once per query: over-delivery would
	// overshoot the record counters; a re-served window would reuse a
	// window start across the two runs.
	time.Sleep(100 * time.Millisecond)
	for _, id := range ids {
		j, _ := s2.job(id)
		if n := jobRecords(j); n != int64(len(events)) {
			t.Errorf("query %s consumed %d records across runs, want exactly %d", id, n, len(events))
		}
		seen := map[time.Time]int64{}
		var maxSeq int64 = -1
		for _, r := range before[id] {
			seen[r.Start] = r.Seq
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
		for _, r := range j.resultsSince(-1) {
			if r.Seq <= maxSeq {
				t.Errorf("query %s: restarted window %v reuses seq %d", id, r.Start, r.Seq)
			}
			if firstSeq, dup := seen[r.Start]; dup {
				t.Errorf("query %s: window %v served twice (seq %d and %d)", id, r.Start, firstSeq, r.Seq)
			}
		}
	}
}

// TestRestoreV1CheckpointNormalizesSpec rewrites a checkpoint into the
// version-1 shape (no weight field, as the pre-shared-plane release
// wrote) and restores it: the spec must come back re-normalized so
// fields added since — Spec.Weight in particular — get their defaults
// instead of zero values that would starve the query under the budget
// scheduler.
func TestRestoreV1CheckpointNormalizesSpec(t *testing.T) {
	dir := t.TempDir()
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: b, Topic: "in", CheckpointDir: dir,
		CheckpointEvery: time.Hour, PollBackoff: time.Millisecond}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Register(Spec{Kind: "sum", Window: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Downgrade the file to v1: strip the weight field and the version.
	path := checkpointPath(dir, id)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = 1
	delete(raw["spec"].(map[string]any), "weight")
	if data, err = json.Marshal(raw); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	cfg.GlobalBudget = 1000 // the path where Weight=0 would starve the query
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j, ok := s2.job(id)
	if !ok {
		t.Fatalf("query %s not restored from v1 checkpoint", id)
	}
	if j.spec.Weight != 1 {
		t.Errorf("restored v1 spec Weight = %v, want the default 1", j.spec.Weight)
	}
}

// TestCheckpointSurvivesEmptyPartition checkpoints a query whose topic
// has a never-written partition — its shard session must snapshot (nil
// sampler) and restore.
func TestCheckpointSurvivesEmptyPartition(t *testing.T) {
	dir := t.TempDir()
	b := broker.New()
	if err := b.CreateTopic("in", 4); err != nil {
		t.Fatal(err)
	}
	// Only one stratum → at most one active partition.
	var events []stream.Event
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4000; i++ {
		events = append(events, stream.Event{Stratum: "only", Value: 1, Time: base.Add(time.Duration(i) * time.Millisecond)})
	}
	if _, err := broker.ProduceEvents(b, "in", events); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: b, Topic: "in", CheckpointDir: dir,
		CheckpointEvery: 20 * time.Millisecond, PollBackoff: time.Millisecond}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Register(Spec{Kind: "count", Window: time.Second, Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s1.job(id)
	deadline := time.Now().Add(10 * time.Second)
	for len(j1.resultsSince(-1)) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no windows merged from a single active partition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, r := range j1.resultsSince(-1) {
		if r.Items > 0 && r.Items != 1000 && r.End.Before(base.Add(4*time.Second)) {
			t.Errorf("window %v: items %d", r.Start, r.Items)
		}
	}
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart with empty partitions: %v", err)
	}
	if _, ok := s2.job(id); !ok {
		t.Error("query not restored")
	}
	s2.Close()
}
