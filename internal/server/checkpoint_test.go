package server

import (
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
)

// TestCheckpointRestartResumes kills a server mid-stream and restarts it
// from the checkpoint directory: the query must come back without
// re-registration, resume from the saved offsets and sequence counter,
// and never emit a window twice.
func TestCheckpointRestartResumes(t *testing.T) {
	dir := t.TempDir()
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(19, 16000) // 16s of data
	half := len(events) / 2
	if _, err := broker.ProduceEvents(b, "in", events[:half]); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Cluster:         b,
		Topic:           "in",
		CheckpointDir:   dir,
		CheckpointEvery: 20 * time.Millisecond,
		PollBackoff:     time.Millisecond,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	j1, _ := s1.job(id)
	deadline := time.Now().Add(10 * time.Second)
	var before []MergedWindow
	for {
		before = j1.resultsSince(-1)
		if len(before) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first server produced only %d windows", len(before))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close checkpoints (without flushing partial windows) and stops.
	s1.Close()
	maxSeq := before[len(before)-1].Seq
	var consumed1 int64
	for _, sh := range j1.shards {
		consumed1 += sh.records.Load()
	}
	if consumed1 == 0 {
		t.Fatal("first server consumed nothing")
	}

	// Restart from the checkpoint and feed the rest of the stream.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2, ok := s2.job(id)
	if !ok {
		t.Fatalf("query %s not restored; have %v", id, s2.jobs())
	}
	if j2.spec.Kind != "sum" || j2.spec.Window != 2*time.Second {
		t.Fatalf("restored spec = %+v", j2.spec)
	}
	if _, err := broker.ProduceEvents(b, "in", events[half:]); err != nil {
		t.Fatal(err)
	}

	deadline = time.Now().Add(10 * time.Second)
	var after []MergedWindow
	for {
		after = j2.resultsSince(-1)
		if len(after) >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted server produced only %d new windows", len(after))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Sequence numbers continue past the first run's; no window start is
	// served twice across the runs.
	seen := map[time.Time]int64{}
	for _, r := range before {
		seen[r.Start] = r.Seq
	}
	for _, r := range after {
		if r.Seq <= maxSeq {
			t.Errorf("restarted window %v reuses seq %d (first run ended at %d)", r.Start, r.Seq, maxSeq)
		}
		if firstSeq, dup := seen[r.Start]; dup {
			t.Errorf("window %v served twice (seq %d and %d)", r.Start, firstSeq, r.Seq)
		}
	}

	// The two runs together must account for every produced record
	// exactly once: restored counters carry the first run's records.
	var consumed2 int64
	for _, sh := range j2.shards {
		consumed2 += sh.records.Load()
	}
	waitTotal := time.Now().Add(10 * time.Second)
	for consumed2 < int64(len(events)) && time.Now().Before(waitTotal) {
		time.Sleep(5 * time.Millisecond)
		consumed2 = 0
		for _, sh := range j2.shards {
			consumed2 += sh.records.Load()
		}
	}
	if consumed2 != int64(len(events)) {
		t.Errorf("total consumed across runs = %d, want %d (offsets not resumed)", consumed2, len(events))
	}

	// A registration after restart picks a fresh id.
	id2, err := s2.Register(Spec{Kind: "count", Window: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Errorf("restarted server reissued id %s", id)
	}
}

// TestCheckpointSurvivesEmptyPartition checkpoints a query whose topic
// has a never-written partition — its shard session must snapshot (nil
// sampler) and restore.
func TestCheckpointSurvivesEmptyPartition(t *testing.T) {
	dir := t.TempDir()
	b := broker.New()
	if err := b.CreateTopic("in", 4); err != nil {
		t.Fatal(err)
	}
	// Only one stratum → at most one active partition.
	var events []stream.Event
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4000; i++ {
		events = append(events, stream.Event{Stratum: "only", Value: 1, Time: base.Add(time.Duration(i) * time.Millisecond)})
	}
	if _, err := broker.ProduceEvents(b, "in", events); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: b, Topic: "in", CheckpointDir: dir,
		CheckpointEvery: 20 * time.Millisecond, PollBackoff: time.Millisecond}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Register(Spec{Kind: "count", Window: time.Second, Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s1.job(id)
	deadline := time.Now().Add(10 * time.Second)
	for len(j1.resultsSince(-1)) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no windows merged from a single active partition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, r := range j1.resultsSince(-1) {
		if r.Items > 0 && r.Items != 1000 && r.End.Before(base.Add(4*time.Second)) {
			t.Errorf("window %v: items %d", r.Start, r.Items)
		}
	}
	s1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart with empty partitions: %v", err)
	}
	if _, ok := s2.job(id); !ok {
		t.Error("query not restored")
	}
	s2.Close()
}
