package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"streamapprox"
)

// Spec is a registered query: the aggregate kind, the sliding window,
// and the sampling budget. It is the JSON body of POST /v1/queries and
// the unit of multi-tenancy — every registered Spec gets its own
// consumer group, shard workers and merged result stream.
type Spec struct {
	// Kind is the aggregate: sum, count, mean, groupby-sum,
	// groupby-mean, groupby-count or histogram.
	Kind string
	// Window and Slide configure the sliding window (defaults 10s/5s).
	Window time.Duration
	// Slide defaults to half the window.
	Slide time.Duration
	// Fraction is the initial sampling fraction (default 0.6).
	Fraction float64
	// TargetError, when positive, enables the per-shard adaptive
	// feedback mechanism.
	TargetError float64
	// Confidence is the error-bound level: 68, 95 or 997 (default 95).
	Confidence int
	// HistogramEdges defines bucket edges for Kind "histogram".
	HistogramEdges []float64
	// From selects the starting position in the topic: "committed"
	// (default; falls back to earliest for a fresh group), "earliest" or
	// "latest".
	From string
	// Seed makes the shard samplers reproducible (default 1); shard i
	// uses Seed+i.
	Seed uint64
	// Weight biases the cross-query budget scheduler (default 1): under
	// budget contention a query keeps a share of the global sample
	// budget proportional to its weighted demand. Ignored when the
	// server runs without a global budget.
	Weight float64
}

// wireSpec is Spec's JSON form: durations travel as Go duration strings
// ("30s") so specs are human-writable with curl.
type wireSpec struct {
	Kind           string    `json:"kind"`
	Window         string    `json:"window,omitempty"`
	Slide          string    `json:"slide,omitempty"`
	Fraction       float64   `json:"fraction,omitempty"`
	TargetError    float64   `json:"target_error,omitempty"`
	Confidence     int       `json:"confidence,omitempty"`
	HistogramEdges []float64 `json:"histogram_edges,omitempty"`
	From           string    `json:"from,omitempty"`
	Seed           uint64    `json:"seed,omitempty"`
	Weight         float64   `json:"weight,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (sp Spec) MarshalJSON() ([]byte, error) {
	w := wireSpec{
		Kind:           sp.Kind,
		Fraction:       sp.Fraction,
		TargetError:    sp.TargetError,
		Confidence:     sp.Confidence,
		HistogramEdges: sp.HistogramEdges,
		From:           sp.From,
		Seed:           sp.Seed,
		Weight:         sp.Weight,
	}
	if sp.Window > 0 {
		w.Window = sp.Window.String()
	}
	if sp.Slide > 0 {
		w.Slide = sp.Slide.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (sp *Spec) UnmarshalJSON(data []byte) error {
	var w wireSpec
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*sp = Spec{
		Kind:           w.Kind,
		Fraction:       w.Fraction,
		TargetError:    w.TargetError,
		Confidence:     w.Confidence,
		HistogramEdges: w.HistogramEdges,
		From:           w.From,
		Seed:           w.Seed,
		Weight:         w.Weight,
	}
	var err error
	if w.Window != "" {
		if sp.Window, err = time.ParseDuration(w.Window); err != nil {
			return fmt.Errorf("window: %w", err)
		}
	}
	if w.Slide != "" {
		if sp.Slide, err = time.ParseDuration(w.Slide); err != nil {
			return fmt.Errorf("slide: %w", err)
		}
	}
	return nil
}

// queryKinds maps wire names onto the public aggregate enum.
var queryKinds = map[string]streamapprox.Query{
	"sum":           streamapprox.Sum,
	"count":         streamapprox.Count,
	"mean":          streamapprox.Mean,
	"groupby-sum":   streamapprox.GroupBySum,
	"groupby-mean":  streamapprox.GroupByMean,
	"groupby-count": streamapprox.GroupByCount,
	"histogram":     streamapprox.Histogram,
}

// KindNames returns the supported kind names, sorted.
func KindNames() []string {
	out := make([]string, 0, len(queryKinds))
	for k := range queryKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// normalize validates the spec and fills defaults in place.
func (sp *Spec) normalize() error {
	if _, ok := queryKinds[sp.Kind]; !ok {
		return fmt.Errorf("unknown kind %q (want one of %v)", sp.Kind, KindNames())
	}
	if sp.Kind == "histogram" && len(sp.HistogramEdges) < 2 {
		return fmt.Errorf("histogram needs at least 2 edges")
	}
	if sp.Window < 0 || sp.Slide < 0 {
		return fmt.Errorf("window and slide must be positive")
	}
	if sp.Window == 0 {
		sp.Window = 10 * time.Second
	}
	if sp.Slide == 0 {
		sp.Slide = sp.Window / 2
	}
	if sp.Slide > sp.Window {
		return fmt.Errorf("slide %v exceeds window %v", sp.Slide, sp.Window)
	}
	if sp.Fraction < 0 || sp.Fraction > 1 {
		return fmt.Errorf("fraction %v outside (0, 1]", sp.Fraction)
	}
	if sp.Fraction == 0 {
		sp.Fraction = 0.6
	}
	if sp.TargetError < 0 {
		return fmt.Errorf("target_error must be >= 0")
	}
	switch sp.Confidence {
	case 0:
		sp.Confidence = 95
	case 68, 95, 997:
	default:
		return fmt.Errorf("confidence %d not one of 68, 95, 997", sp.Confidence)
	}
	switch sp.From {
	case "":
		sp.From = "committed"
	case "committed", "earliest", "latest":
	default:
		return fmt.Errorf("from %q not one of committed, earliest, latest", sp.From)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Weight < 0 {
		return fmt.Errorf("weight must be >= 0")
	}
	if sp.Weight == 0 {
		sp.Weight = 1
	}
	return nil
}

// query returns the public aggregate for the spec's kind.
func (sp *Spec) query() streamapprox.Query { return queryKinds[sp.Kind] }

// confidence returns the public confidence level.
func (sp *Spec) confidence() streamapprox.Confidence {
	switch sp.Confidence {
	case 68:
		return streamapprox.Confidence68
	case 997:
		return streamapprox.Confidence997
	default:
		return streamapprox.Confidence95
	}
}

// sessionConfig builds the per-shard Session configuration; shard
// sessions differ only in seed so their reservoirs are decorrelated.
func (sp *Spec) sessionConfig(shard int) streamapprox.SessionConfig {
	return streamapprox.SessionConfig{
		Query:          sp.query(),
		WindowSize:     sp.Window,
		WindowSlide:    sp.Slide,
		Fraction:       sp.Fraction,
		TargetError:    sp.TargetError,
		Confidence:     sp.confidence(),
		HistogramEdges: sp.HistogramEdges,
		Seed:           sp.Seed + uint64(shard),
	}
}
