package server

import (
	"math"
	"testing"
	"time"

	"streamapprox"
)

func testSpec(t *testing.T, kind string) *Spec {
	t.Helper()
	sp := &Spec{Kind: kind, Window: 4 * time.Second, Slide: 2 * time.Second}
	if kind == "histogram" {
		sp.HistogramEdges = []float64{0, 10, 20}
	}
	if err := sp.normalize(); err != nil {
		t.Fatal(err)
	}
	return sp
}

var t0 = time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)

func TestMergePartsSum(t *testing.T) {
	sp := testSpec(t, "sum")
	m := newMerger(sp, 2, nil)
	// Two shards: values 100±4 and 50±3 at 95% (z=2) → variances 4 and
	// 2.25, merged 150 ± 2·√6.25 = 150 ± 5.
	fw := m.offer(0, streamapprox.WindowResult{
		Start: t0, End: t0.Add(sp.Window),
		Overall: streamapprox.Estimate{Value: 100, Bound: 4, Confidence: streamapprox.Confidence95},
		Items:   80, Sampled: 40,
	})
	if fw != nil {
		t.Fatal("fired before all shards reported")
	}
	fired := m.offer(1, streamapprox.WindowResult{
		Start: t0, End: t0.Add(sp.Window),
		Overall: streamapprox.Estimate{Value: 50, Bound: 3, Confidence: streamapprox.Confidence95},
		Items:   40, Sampled: 20,
	})
	if len(fired) != 1 {
		t.Fatalf("fired %d windows, want 1", len(fired))
	}
	got := fired[0].result
	if got.Value != 150 || math.Abs(got.Error-5) > 1e-12 {
		t.Errorf("merged = %v ± %v, want 150 ± 5", got.Value, got.Error)
	}
	if got.Items != 120 || got.Sampled != 60 || got.Shards != 2 {
		t.Errorf("merged meta = %+v", got)
	}
	// A straggler for the fired window is dropped.
	if again := m.offer(0, streamapprox.WindowResult{Start: t0}); again != nil {
		t.Error("straggler re-fired a merged window")
	}
}

func TestMergePartsMeanWeightsByItems(t *testing.T) {
	sp := testSpec(t, "mean")
	m := newMerger(sp, 2, nil)
	m.offer(0, streamapprox.WindowResult{
		Start:   t0,
		Overall: streamapprox.Estimate{Value: 10, Bound: 2, Confidence: streamapprox.Confidence95},
		Items:   100,
	})
	fired := m.offer(1, streamapprox.WindowResult{
		Start:   t0,
		Overall: streamapprox.Estimate{Value: 20, Bound: 2, Confidence: streamapprox.Confidence95},
		Items:   300,
	})
	if len(fired) != 1 {
		t.Fatalf("fired %d windows", len(fired))
	}
	got := fired[0].result
	if math.Abs(got.Value-17.5) > 1e-12 {
		t.Errorf("merged mean = %v, want 17.5", got.Value)
	}
	// var = (0.25·1)² ... each part variance (2/2)²=1; ω²: 0.0625+0.5625
	wantErr := 2 * math.Sqrt(0.0625+0.5625)
	if math.Abs(got.Error-wantErr) > 1e-12 {
		t.Errorf("merged error = %v, want %v", got.Error, wantErr)
	}
}

func TestMergePartsGroupsAndBuckets(t *testing.T) {
	sp := testSpec(t, "groupby-sum")
	m := newMerger(sp, 2, nil)
	m.offer(0, streamapprox.WindowResult{
		Start:      t0,
		Groups:     map[string]streamapprox.Estimate{"tcp": {Value: 7, Bound: 2}},
		GroupItems: map[string]int64{"tcp": 10},
	})
	fired := m.offer(1, streamapprox.WindowResult{
		Start:      t0,
		Groups:     map[string]streamapprox.Estimate{"tcp": {Value: 3, Bound: 2}, "udp": {Value: 5, Bound: 1}},
		GroupItems: map[string]int64{"tcp": 4, "udp": 6},
	})
	if len(fired) != 1 {
		t.Fatalf("fired %d windows", len(fired))
	}
	groups := fired[0].result.Groups
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if g := groups["tcp"]; g.Value != 10 || math.Abs(g.Error-2*math.Sqrt(2)) > 1e-12 {
		t.Errorf("tcp = %+v", g)
	}
	if g := groups["udp"]; g.Value != 5 || g.Error != 1 {
		t.Errorf("udp = %+v", g)
	}

	hsp := testSpec(t, "histogram")
	hm := newMerger(hsp, 2, nil)
	hm.offer(0, streamapprox.WindowResult{
		Start: t0,
		Buckets: []streamapprox.HistogramBucket{
			{Lo: 0, Hi: 10, Count: streamapprox.Estimate{Value: 4, Bound: 2}},
			{Lo: 10, Hi: 20, Count: streamapprox.Estimate{Value: 1, Bound: 0}},
		},
	})
	hfired := hm.offer(1, streamapprox.WindowResult{
		Start: t0,
		Buckets: []streamapprox.HistogramBucket{
			{Lo: 0, Hi: 10, Count: streamapprox.Estimate{Value: 6, Bound: 2}},
			{Lo: 10, Hi: 20, Count: streamapprox.Estimate{Value: 2, Bound: 0}},
		},
	})
	if len(hfired) != 1 {
		t.Fatalf("histogram fired %d windows", len(hfired))
	}
	buckets := hfired[0].result.Buckets
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v", buckets)
	}
	if buckets[0].Count.Value != 10 || math.Abs(buckets[0].Count.Error-2*math.Sqrt(2)) > 1e-12 {
		t.Errorf("bucket 0 = %+v", buckets[0])
	}
	if buckets[1].Count.Value != 3 || buckets[1].Count.Error != 0 {
		t.Errorf("bucket 1 = %+v", buckets[1])
	}
}

// TestMergerWatermarkFiresPartialWindows covers the idle-partition path:
// a window only one shard contributed to fires once every shard's
// watermark passes its end by a slide.
func TestMergerWatermarkFiresPartialWindows(t *testing.T) {
	sp := testSpec(t, "sum")
	m := newMerger(sp, 3, nil)
	if fired := m.offer(0, streamapprox.WindowResult{
		Start:   t0,
		Overall: streamapprox.Estimate{Value: 9, Bound: 1},
		Items:   10,
	}); fired != nil {
		t.Fatal("premature fire")
	}
	// Two shards advance; min watermark still zero → nothing fires.
	if fired := m.advance(0, t0.Add(10*time.Second)); fired != nil {
		t.Fatal("fired with a silent shard")
	}
	if fired := m.advance(1, t0.Add(10*time.Second)); fired != nil {
		t.Fatal("fired with a silent shard")
	}
	// Third shard catches up past end+slide → the partial window fires.
	fired := m.advance(2, t0.Add(6*time.Second))
	if len(fired) != 1 {
		t.Fatalf("fired %d windows, want 1", len(fired))
	}
	if got := fired[0].result; got.Value != 9 || got.Shards != 1 {
		t.Errorf("partial merge = %+v", got)
	}
}

func TestSpecNormalizeAndJSON(t *testing.T) {
	var sp Spec
	if err := sp.UnmarshalJSON([]byte(`{"kind":"mean","window":"30s","slide":"10s","fraction":0.4}`)); err != nil {
		t.Fatal(err)
	}
	if err := sp.normalize(); err != nil {
		t.Fatal(err)
	}
	if sp.Window != 30*time.Second || sp.Slide != 10*time.Second || sp.Confidence != 95 {
		t.Errorf("normalized = %+v", sp)
	}
	data, err := sp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Window != sp.Window || back.Slide != sp.Slide || back.Kind != sp.Kind || back.Fraction != sp.Fraction {
		t.Errorf("round trip = %+v", back)
	}

	for _, bad := range []string{
		`{"kind":"median"}`,
		`{"kind":"sum","window":"1s","slide":"2s"}`,
		`{"kind":"sum","fraction":1.5}`,
		`{"kind":"sum","confidence":50}`,
		`{"kind":"histogram"}`,
		`{"kind":"sum","from":"yesterday"}`,
	} {
		var sp Spec
		if err := sp.UnmarshalJSON([]byte(bad)); err != nil {
			continue
		}
		if err := sp.normalize(); err == nil {
			t.Errorf("spec %s passed validation", bad)
		}
	}
}
