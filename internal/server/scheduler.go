package server

import (
	"time"

	"streamapprox/internal/adaptive"
	"streamapprox/internal/budget"
	"streamapprox/internal/metrics"
)

// The cross-query budget scheduler: a single sample budget (total
// sampled items per second across ALL queries, Config.GlobalBudget) is
// apportioned over the registered queries once per control interval.
// Each query gets a per-query adaptive controller (the §4.2.1 feedback
// loop lifted from shard level to query level) that grows its desired
// fraction while its observed relative error exceeds its target and
// shrinks it when comfortably below — so over-achieving queries give
// budget back and starved queries claim more. Desired fractions are
// turned into demands (desired fraction × observed arrival rate ×
// weight), the global allowance is drawn from a token bucket
// (internal/budget's Pulsar-style resource budget), and when demand
// exceeds supply every query is scaled back proportionally to its
// weighted demand. Grants are pushed into the shard sessions with
// SetFraction and take effect at the next slide segment.

// defaultSchedTarget is the relative-error target assumed for queries
// registered without one: the scheduler needs an error signal to rank
// queries, and 5% matches the paper's mid-range accuracy sweeps.
const defaultSchedTarget = 0.05

// minSchedFraction keeps every query minimally alive even under severe
// budget pressure, so its error signal (the input to next interval's
// allocation) keeps flowing.
const minSchedFraction = 0.01

type scheduler struct {
	srv      *Server
	interval time.Duration
	bucket   *budget.Tokens

	// states is touched only from the scheduler goroutine.
	states map[string]*schedState

	budgetGauge *metrics.Gauge
	demandGauge *metrics.Gauge
	grantGauge  *metrics.Gauge
}

// schedState is one query's allocation state across intervals.
type schedState struct {
	ctrl        *adaptive.Controller
	lastRecords int64
	lastSeq     int64 // result seq at the last Observe, so stale errors are not re-observed
	fracGauge   *metrics.Gauge
}

func newScheduler(srv *Server) *scheduler {
	rate := srv.cfg.GlobalBudget * srv.cfg.ScheduleEvery.Seconds()
	s := &scheduler{
		srv:      srv,
		interval: srv.cfg.ScheduleEvery,
		bucket:   budget.NewTokens(rate, 2*rate, 1),
		states:   make(map[string]*schedState),
		budgetGauge: srv.reg.Gauge("saproxd_sched_budget_items_per_s",
			"configured global sample budget", nil),
		demandGauge: srv.reg.Gauge("saproxd_sched_demand_items",
			"total sampled-item demand last control interval", nil),
		grantGauge: srv.reg.Gauge("saproxd_sched_granted_items",
			"total sampled-item grant last control interval", nil),
	}
	s.budgetGauge.Set(srv.cfg.GlobalBudget)
	return s
}

// loop reapportions the budget every interval until the server closes.
func (s *scheduler) loop() {
	defer s.srv.wg.Done()
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.srv.done:
			return
		case <-tick.C:
			s.tick()
		}
	}
}

// tick runs one control interval: observe, demand, grant, apply.
func (s *scheduler) tick() {
	type cand struct {
		j       *job
		st      *schedState
		desired float64
		delta   float64
		demand  float64 // desired × delta (sampled items wanted this interval)
	}
	jobs := s.srv.jobs()
	live := make(map[string]bool, len(jobs))
	cands := make([]cand, 0, len(jobs))
	var total, wtotal float64
	for _, j := range jobs {
		if j.isStopped() {
			continue
		}
		live[j.id] = true
		st, ok := s.states[j.id]
		var rec int64
		for _, sh := range j.shards {
			rec += sh.records.Load()
		}
		if !ok {
			target := j.spec.TargetError
			if target <= 0 {
				target = defaultSchedTarget
			}
			st = &schedState{
				ctrl: adaptive.NewController(target, j.spec.Fraction,
					adaptive.WithBounds(minSchedFraction, 1)),
				// Seed the arrival baseline at the current counters: a
				// restored query carries its lifetime total, which must
				// not read as one interval's phantom demand spike.
				lastRecords: rec,
				fracGauge: s.srv.reg.Gauge("saproxd_sched_fraction",
					"sampling fraction granted by the budget scheduler",
					metrics.Labels{"query": j.id}),
			}
			st.fracGauge.Set(j.spec.Fraction)
			s.states[j.id] = st
		}
		delta := float64(rec - st.lastRecords)
		st.lastRecords = rec
		desired := st.ctrl.Fraction()
		// Feed the controller only when a NEW window has merged since
		// the last tick: re-observing the same stale error every
		// interval would couple the loop gain to the tick rate instead
		// of the window cadence (one adjustment per fresh observation).
		if re, seq, seen := j.observedError(); seen && seq > st.lastSeq {
			desired = st.ctrl.Observe(re)
			st.lastSeq = seq
		}
		demand := desired * delta
		cands = append(cands, cand{j: j, st: st, desired: desired, delta: delta, demand: demand})
		total += demand
		wtotal += demand * j.spec.Weight
	}
	for id := range s.states {
		if !live[id] {
			delete(s.states, id) // gauge series cleanup happens in Deregister
		}
	}

	granted := total
	if total >= 1 {
		granted = float64(s.bucket.SampleSize(int(total)))
	}
	for _, c := range cands {
		f := grantFraction(c.desired, c.j.spec.Weight, c.delta, c.demand, granted, total, wtotal)
		c.st.ctrl.SetFraction(f)
		c.j.setFraction(f)
		c.st.fracGauge.Set(f)
	}
	s.demandGauge.Set(total)
	s.grantGauge.Set(granted)
}

// grantFraction converts one query's share of the global grant into
// its sampling fraction. With supply to spare every query runs at its
// controller's desired operating point; under contention each gets
// the slice of the grant proportional to its WEIGHTED demand,
// converted back to a fraction of its own arrivals and never above
// desired — so Weight biases the split only when the budget actually
// binds. The result is clamped to [minSchedFraction, 1].
func grantFraction(desired, weight, delta, demand, granted, total, wtotal float64) float64 {
	f := desired
	if granted < total && wtotal > 0 && delta > 0 {
		share := granted * (demand * weight) / wtotal
		if sf := share / delta; sf < f {
			f = sf
		}
	}
	if f < minSchedFraction {
		f = minSchedFraction
	}
	if f > 1 {
		f = 1
	}
	return f
}
