package server

import (
	"io"
	"strconv"
	"sync"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
	"streamapprox/internal/obs"
	"streamapprox/internal/stream"
)

// traceSetter is implemented by broker connections that can stamp a
// wire-level trace ID on their requests (*broker.Client and
// *broker.ClusterClient; the in-process broker has no wire and no-ops).
type traceSetter interface{ SetTraceID(uint64) }

// The shared ingest plane: exactly one prefetching consumer per
// (topic, partition) regardless of how many queries are registered.
// Each partition loop fetches a batch once, decodes it once, and fans
// the (event-time sorted, read-only) records out to every attached
// query's per-shard Session sink. Broker fetch work is O(partitions),
// not O(queries × partitions) — the property that lets one middle tier
// serve thousands of concurrent queries over a single topic read.
//
// Queries attach and detach dynamically. A query attaching at an
// offset the plane has already passed replays the gap through a short
// private catch-up consumer and splices into the live plane exactly at
// the handoff offset (the splice happens under the plane's delivery
// lock, so no record is lost or duplicated). A query attaching ahead
// of the plane (From "latest") rides the plane immediately and drops
// records below its requested start per-sub.
//
// Fan-out is decoupled from the partition loop by a BOUNDED per-query
// delivery queue: the loop enqueues each batch (a cheap slice ref) and
// a per-(query, partition) drainer applies it to the Session. A query
// whose drainer falls a full queue behind is SHED — detached on the
// spot and re-attached through the catch-up path once its drainer
// empties — so one slow query rereads its backlog from the broker
// instead of stalling every peer on the partition loop. Catch-up work
// itself runs under a small semaphore, so a burst of late
// registrations cannot open unbounded private consumers.

// fetchMax bounds one catch-up fetch's record count; the plane's
// consumers use the same batch size internally.
const fetchMax = 4096

// idleAdvanceAfter is the number of consecutive empty polls after which
// an idle partition considers pushing its attached sinks to the peers'
// watermark. High enough that a partition that has merely caught up
// with a live producer does not race ahead and drop the producer's next
// records as late.
const idleAdvanceAfter = 10

// idleAdvanceFloor is the minimum WALL-CLOCK time a partition must stay
// empty before idle punctuation fires. Poll counts alone are a bad
// idleness signal under tight backoffs: a broker riding out a slow
// fsync or a failover replay looks identical to a truly quiet partition
// for tens of milliseconds, and punctuating then advances the shard to
// its peers' watermark — so the stalled records, when they finally
// commit, land in windows that have already fired and are dropped as
// late. The floor makes "idle" mean "idle longer than any transient
// stall the chaos plane injects", trading punctuation latency on truly
// sparse partitions (bounded, and invisible next to window slides) for
// accuracy under faults.
const idleAdvanceFloor = 250 * time.Millisecond

// watchdogAfter is the number of consecutive failed polls after which a
// partition loop declares its consumer stalled and reroutes: refresh
// the routing client's metadata, rebuild the consumer at the plane's
// delivered offset. Polls already fail fast (the broker client's
// per-request deadlines), so this bounds how long a partition pipeline
// keeps retrying a path the cluster has failed away from.
const watchdogAfter = 5

// metaRefresher is implemented by routing clients that can be told to
// re-poll cluster metadata (*broker.ClusterClient); the in-process
// broker and single-connection clients have nothing to refresh.
type metaRefresher interface{ Refresh() error }

// The per-query, per-partition delivery target is *shard: consume
// applies one batch of event-time sorted records ending at offset next
// (exclusive; the slice is shared across queries and treated as
// read-only), idleAdvance is the idle-partition punctuation.

// ingest is one plane: a set of partition loops over one topic.
type ingest struct {
	cluster    broker.Cluster // control-plane + catch-up connection
	topic      string
	group      string // the plane's shared consumer group
	backoff    time.Duration
	logf       func(format string, args ...any)
	reg        *metrics.Registry
	queueDepth int

	// catchupSem bounds simultaneous catch-up consumers across the
	// whole plane: a burst of late registrations queues here instead of
	// opening one private broker consumer each.
	catchupSem    chan struct{}
	catchupActive *metrics.Gauge

	parts []*partIngest
	wg    sync.WaitGroup
}

// subQueue is one query shard's bounded delivery queue on one
// partition: the plane loop enqueues, the drainer goroutine applies.
type subQueue struct {
	j  *job
	sh *shard
	ch chan planeDelivery
	// overflowAt is the resume offset recorded when the queue overflows
	// (-1 otherwise). Written under the partition lock before ch is
	// closed; the drainer reads it after draining, so the close is the
	// memory barrier.
	overflowAt int64
	done       chan struct{} // closed when the drainer has fully exited
	depth      *metrics.Gauge
	shed       *metrics.Counter
}

// planeDelivery is one fan-out unit: a shared columnar batch (the
// plane's hot path), a shared record slice (catch-up and compatibility
// deliveries), or an idle punctuation marker. A batch delivery carries
// one reference per enqueued sub; the drainer Releases it after
// applying.
type planeDelivery struct {
	batch   *stream.EventBatch
	recs    []broker.Record
	next    int64
	hwm     int64
	haveHWM bool
	idle    bool
}

// partIngest is the plane for one partition: one consumer, one loop,
// any number of attached per-query delivery queues.
type partIngest struct {
	ing     *ingest
	idx     int
	cluster broker.Cluster // dedicated connection when DialShard is set
	conn    io.Closer      // nil when sharing the control connection

	// mu guards subs and next. Enqueueing happens with mu held so a
	// catch-up splice (pos == next, attach) is atomic against the loop
	// advancing next; the enqueue itself never blocks.
	mu         sync.Mutex
	subs       map[*shard]*subQueue
	next       int64 // next offset the plane will deliver
	positioned bool  // next is meaningful (restored or first attach)
	started    bool
	stopped    bool
	cons       *broker.Consumer // set by the loop; closed by stop to unblock Poll
	done       chan struct{}

	recordsMetric *metrics.Counter
	queriesGauge  *metrics.Gauge
	lagGauge      *metrics.Gauge
	throughput    *metrics.Meter
	batchHist     *metrics.Histogram // records per delivered columnar batch
	decodeHist    *metrics.Histogram // seconds blocked fetching+decoding a round
}

// newIngest builds a plane with one (not yet started) partition loop
// per partition. When dial is non-nil each partition gets a dedicated
// broker connection, closed on stop. extra labels distinguish private
// per-query planes from the shared one in /metrics. queueDepth bounds
// each query's per-partition delivery queue (in batches) and
// catchupWorkers the simultaneous catch-up consumers.
func newIngest(cluster broker.Cluster, dial func() (broker.Cluster, error),
	topic, group string, parts int, backoff time.Duration, queueDepth, catchupWorkers int,
	logf func(string, ...any), reg *metrics.Registry, extra metrics.Labels) (*ingest, error) {
	if queueDepth < 1 {
		queueDepth = 64
	}
	if catchupWorkers < 1 {
		catchupWorkers = 4
	}
	ing := &ingest{
		cluster: cluster, topic: topic, group: group, backoff: backoff, logf: logf,
		reg: reg, queueDepth: queueDepth,
		catchupSem: make(chan struct{}, catchupWorkers),
		catchupActive: reg.Gauge("saproxd_catchup_active",
			"late-registration catch-up consumers currently running", extra),
	}
	for p := 0; p < parts; p++ {
		pc := cluster
		var closer io.Closer
		if dial != nil {
			c, err := dial()
			if err != nil {
				ing.closeConns()
				return nil, err
			}
			pc = c
			closer, _ = c.(io.Closer)
			// Each partition pipeline owns this connection, so a trace ID
			// stamped here follows every fetch the pipeline issues and can
			// be grepped out of broker-side logs.
			if ts, ok := pc.(traceSetter); ok {
				tid := obs.NewTraceID()
				ts.SetTraceID(tid)
				logf("ingest pipeline %s/%d: trace=%s", topic, p, obs.TraceHex(tid))
			}
		}
		l := metrics.Labels{"partition": strconv.Itoa(p)}
		for k, v := range extra {
			l[k] = v
		}
		pi := &partIngest{
			ing:     ing,
			idx:     p,
			cluster: pc,
			conn:    closer,
			subs:    make(map[*shard]*subQueue),
			done:    make(chan struct{}),
			recordsMetric: reg.Counter("saproxd_ingest_records_total",
				"records fetched once and fanned out to all queries, per partition", l),
			queriesGauge: reg.Gauge("saproxd_ingest_queries",
				"queries attached to the partition's shared plane", l),
			lagGauge: reg.Gauge("saproxd_ingest_lag_records",
				"records between the plane position and the partition high watermark", l),
			batchHist: reg.Histogram("saproxd_ingest_batch_records",
				"records per columnar batch fanned out by the partition loop", l),
			decodeHist: reg.Histogram("saproxd_ingest_decode_seconds",
				"seconds the partition loop blocked on fetch+decode of one round", l),
		}
		pi.throughput = metrics.NewMeter(0, reg.Gauge("saproxd_ingest_throughput_items_per_s",
			"smoothed per-partition ingest rate", l))
		ing.parts = append(ing.parts, pi)
	}
	return ing, nil
}

// position seeds partition offsets from a restored checkpoint. Must be
// called before any attach. Offsets < 0 leave the partition
// unpositioned (first attacher decides).
func (ing *ingest) position(offsets []int64) {
	for i, off := range offsets {
		if i >= len(ing.parts) || off < 0 {
			continue
		}
		pi := ing.parts[i]
		pi.mu.Lock()
		pi.next = off
		pi.positioned = true
		pi.mu.Unlock()
	}
}

// offsets snapshots the plane position per partition (-1 when the
// partition was never positioned) — the shared half of a checkpoint.
func (ing *ingest) offsets() []int64 {
	out := make([]int64, len(ing.parts))
	for i, pi := range ing.parts {
		pi.mu.Lock()
		if pi.positioned {
			out[i] = pi.next
		} else {
			out[i] = -1
		}
		pi.mu.Unlock()
	}
	return out
}

// commit mirrors the plane offsets into its broker consumer group so
// lag is observable with broker tooling. Best effort.
func (ing *ingest) commit() {
	for _, pi := range ing.parts {
		pi.mu.Lock()
		off, ok := pi.next, pi.positioned
		pi.mu.Unlock()
		if ok {
			_ = ing.cluster.Commit(ing.group, ing.topic, pi.idx, off)
		}
	}
}

// newSub builds a shard's bounded delivery queue (not yet registered).
func (pi *partIngest) newSub(j *job, sh *shard) *subQueue {
	labels := metrics.Labels{"query": j.id, "partition": strconv.Itoa(pi.idx)}
	return &subQueue{
		j:          j,
		sh:         sh,
		ch:         make(chan planeDelivery, pi.ing.queueDepth),
		overflowAt: -1,
		done:       make(chan struct{}),
		depth: pi.ing.reg.Gauge("saproxd_delivery_queue_depth",
			"batches queued between the partition loop and the query's drainer", labels),
		shed: pi.ing.reg.Counter("saproxd_delivery_shed_total",
			"times the query overflowed its delivery queue and was shed to catch-up", labels),
	}
}

// register adds a sub to the partition (callers hold pi.mu) and starts
// its drainer.
func (pi *partIngest) register(sub *subQueue) {
	pi.subs[sub.sh] = sub
	pi.queriesGauge.Set(float64(len(pi.subs)))
	go pi.drain(sub)
}

// drain is the per-(query, partition) delivery worker: it applies
// queued batches to the shard's Session in order. If the sub was shed
// on overflow, the drainer finishes the queued prefix and then replays
// the rest through the catch-up path, re-splicing into the live plane.
func (pi *partIngest) drain(sub *subQueue) {
	for d := range sub.ch {
		sub.depth.Set(float64(len(sub.ch)))
		switch {
		case d.idle:
			sub.sh.idleAdvance()
		case d.batch != nil:
			sub.sh.consumeBatch(d.batch, d.next, d.hwm, d.haveHWM)
			d.batch.Release()
		default:
			sub.sh.consume(d.recs, d.next, d.hwm, d.haveHWM)
		}
	}
	resume := sub.overflowAt // safe: written before close(sub.ch)
	close(sub.done)
	if resume >= 0 {
		// j.wg.Add happened at shed time, under pi.mu; catchUp calls Done.
		pi.catchUp(sub.j, sub.sh, resume)
	}
}

// attach joins one query shard to a partition plane, starting the loop
// on first use. from is the shard's delivery watermark: behind the
// plane it is replayed through a catch-up goroutine (tracked in the
// job's WaitGroup) before splicing live; at or ahead of the plane the
// shard attaches immediately, skipping records below from.
func (ing *ingest) attach(j *job, sh *shard, from int64) {
	pi := ing.parts[sh.idx]
	pi.mu.Lock()
	if !pi.positioned {
		pi.next = from
		pi.positioned = true
	}
	if !pi.started && !pi.stopped {
		pi.started = true
		ing.wg.Add(1)
		go pi.loop(pi.next)
	}
	if from >= pi.next {
		sh.setSkip(from)
		pi.register(pi.newSub(j, sh))
		pi.mu.Unlock()
		return
	}
	pi.mu.Unlock()
	j.wg.Add(1)
	go pi.catchUp(j, sh, from)
}

// detach removes a shard's queue and waits for its drainer, so no
// consume call can follow detach. A shard mid-catch-up (or shed) has no
// registered queue; its goroutine is tracked by the job's WaitGroup and
// aborts on the job's done channel.
func (ing *ingest) detach(sh *shard) {
	pi := ing.parts[sh.idx]
	pi.mu.Lock()
	sub, ok := pi.subs[sh]
	if ok {
		delete(pi.subs, sh)
		pi.queriesGauge.Set(float64(len(pi.subs)))
		close(sub.ch)
	}
	pi.mu.Unlock()
	if ok {
		<-sub.done
	}
}

// stop halts every partition loop, drains every attached queue, and
// closes dedicated connections. Attached shards receive no further
// plane deliveries once stop returns (catch-up goroutines are the
// job's, stopped by job.stop).
func (ing *ingest) stop() {
	for _, pi := range ing.parts {
		pi.mu.Lock()
		if !pi.stopped {
			pi.stopped = true
			close(pi.done)
		}
		cons := pi.cons
		pi.mu.Unlock()
		if cons != nil {
			_ = cons.Close() // unblock a Poll stuck on the prefetcher
		}
	}
	ing.wg.Wait()
	// With the loops stopped nothing enqueues anymore; close the queues
	// and wait out the drainers so every delivered batch is applied.
	var waits []*subQueue
	for _, pi := range ing.parts {
		pi.mu.Lock()
		for sh, sub := range pi.subs {
			delete(pi.subs, sh)
			close(sub.ch)
			waits = append(waits, sub)
		}
		pi.queriesGauge.Set(0)
		pi.mu.Unlock()
	}
	for _, sub := range waits {
		<-sub.done
	}
	ing.closeConns()
}

func (ing *ingest) closeConns() {
	for _, pi := range ing.parts {
		if pi.conn != nil {
			_ = pi.conn.Close()
			pi.conn = nil
		}
	}
}

// loop is the partition's single consumer: a prefetching
// broker.Consumer seeked to the plane position, double-buffering batch
// N+1 while batch N fans out. With no sinks attached the loop idles
// without advancing, so a future attacher at the current offset joins
// seamlessly.
func (pi *partIngest) loop(start int64) {
	defer pi.ing.wg.Done()
	var cons *broker.Consumer
	for {
		var err error
		cons, err = broker.NewPartitionConsumer(pi.cluster, pi.ing.group, pi.ing.topic, pi.idx)
		if err == nil {
			break
		}
		pi.ing.logf("ingest partition %d: consumer: %v", pi.idx, err)
		if !sleepOrDone(pi.done, pi.ing.backoff) {
			return
		}
	}
	cons.Seek(pi.idx, start)
	cons.StartBatchPrefetch()
	defer func() { _ = cons.Close() }()
	pi.mu.Lock()
	if pi.stopped {
		pi.mu.Unlock()
		return
	}
	pi.cons = cons
	pi.mu.Unlock()

	idle, fails := 0, 0
	var idleSince time.Time
	for {
		select {
		case <-pi.done:
			return
		default:
		}
		pi.mu.Lock()
		nsubs := len(pi.subs)
		pi.mu.Unlock()
		if nsubs == 0 {
			// Nobody listening: pause without advancing the plane.
			if !sleepOrDone(pi.done, pi.ing.backoff) {
				return
			}
			continue
		}
		t0 := time.Now()
		b, err := cons.PollBatch()
		pi.decodeHist.Observe(time.Since(t0).Seconds())
		if err != nil {
			select {
			case <-pi.done:
				return
			default:
			}
			fails++
			if fails >= watchdogAfter {
				fails = 0
				if nc := pi.reroute(cons); nc != nil {
					cons = nc
				}
			}
			if !sleepOrDone(pi.done, pi.ing.backoff) {
				return
			}
			continue
		}
		fails = 0
		if b == nil {
			if idle == 0 {
				idleSince = time.Now()
			}
			idle++
			// Punctuate only a CONFIRMED-idle partition: enough empty
			// polls, enough wall-clock silence, and the broker agrees
			// there is nothing committed left to read. The drain check
			// costs one RPC, so it runs every idleAdvanceAfter polls,
			// not every poll.
			if idle%idleAdvanceAfter == 0 &&
				time.Since(idleSince) >= idleAdvanceFloor && pi.drained() {
				pi.idleAdvance()
			}
			if !sleepOrDone(pi.done, pi.ing.backoff) {
				return
			}
			continue
		}
		idle = 0
		// One high-watermark read per shared batch (best effort), where
		// the per-query model paid one per query per batch.
		hwm, herr := pi.cluster.HighWatermark(pi.ing.topic, pi.idx)
		pi.deliverBatch(b, hwm, herr == nil)
	}
}

// reroute is the partition watchdog's action: force a cluster-metadata
// refresh (so the routing layer learns about a failover the stalled
// path masked), then rebuild the consumer at the plane's delivered
// offset. Returns the replacement consumer, or nil when the rebuild
// failed or the partition is stopping (the old, now-closed consumer
// stays in place; its fast-failing polls bring the loop back here).
func (pi *partIngest) reroute(old *broker.Consumer) *broker.Consumer {
	if r, ok := pi.cluster.(metaRefresher); ok {
		if err := r.Refresh(); err != nil {
			pi.ing.logf("ingest partition %d: watchdog refresh: %v", pi.idx, err)
		}
	}
	pi.mu.Lock()
	at := pi.next
	stopped := pi.stopped
	pi.mu.Unlock()
	if stopped {
		return nil
	}
	_ = old.Close()
	cons, err := broker.NewPartitionConsumer(pi.cluster, pi.ing.group, pi.ing.topic, pi.idx)
	if err != nil {
		pi.ing.logf("ingest partition %d: watchdog rebuild: %v", pi.idx, err)
		return nil
	}
	cons.Seek(pi.idx, at)
	cons.StartBatchPrefetch()
	pi.mu.Lock()
	if pi.stopped {
		pi.mu.Unlock()
		_ = cons.Close()
		return nil
	}
	pi.cons = cons
	pi.mu.Unlock()
	pi.ing.logf("ingest partition %d: watchdog rerouted consumer at offset %d", pi.idx, at)
	return cons
}

// deliver fans one batch out to every attached query's delivery queue
// and advances the plane position. It runs under pi.mu so catch-up
// splices are atomic, but never blocks: the enqueue is a slice ref, and
// a query whose bounded queue is full is shed — detached here, with its
// drainer re-entering through the catch-up path at the offset where
// delivery stopped — so one slow query cannot stall the partition loop
// or its peers.
func (pi *partIngest) deliver(recs []broker.Record, hwm int64, haveHWM bool) {
	n := int64(len(recs))
	pi.recordsMetric.Add(float64(n))
	pi.throughput.Mark(n)
	pi.mu.Lock()
	base := pi.next
	next := base + n
	pi.next = next
	d := planeDelivery{recs: recs, next: next, hwm: hwm, haveHWM: haveHWM}
	for sh, sub := range pi.subs {
		select {
		case sub.ch <- d:
			sub.depth.Set(float64(len(sub.ch)))
		default:
			// Queue full: shed this query. Its drainer has applied (or
			// still holds queued) everything below base, so base is
			// exactly where its catch-up must resume.
			delete(pi.subs, sh)
			sub.overflowAt = base
			sub.j.wg.Add(1) // the drainer's catch-up continuation
			close(sub.ch)
			sub.shed.Inc()
			pi.queriesGauge.Set(float64(len(pi.subs)))
			pi.ing.logf("query %s partition %d: delivery queue full at offset %d; shedding to catch-up",
				sub.j.id, pi.idx, base)
		}
	}
	pi.mu.Unlock()
	if haveHWM {
		pi.lagGauge.Set(float64(hwm - next))
	}
}

// deliverBatch is deliver's columnar form: one pooled EventBatch fans
// out by reference to every attached query. The batch's Base is stamped
// with the plane offset before the first enqueue (the channel send is
// the memory barrier), each successful enqueue carries one Retained
// reference the drainer Releases after applying, a shed sub's reference
// is returned immediately, and the loop's own reference from PollBatch
// is dropped once fan-out finishes — so the batch goes back to the pool
// the moment the last drainer is done with it.
func (pi *partIngest) deliverBatch(b *stream.EventBatch, hwm int64, haveHWM bool) {
	n := int64(b.Len())
	pi.recordsMetric.Add(float64(n))
	pi.throughput.Mark(n)
	pi.batchHist.Observe(float64(n))
	pi.mu.Lock()
	base := pi.next
	next := base + n
	pi.next = next
	b.Base = base // shards compute skip positions relative to Base
	d := planeDelivery{batch: b, next: next, hwm: hwm, haveHWM: haveHWM}
	for sh, sub := range pi.subs {
		b.Retain()
		select {
		case sub.ch <- d:
			sub.depth.Set(float64(len(sub.ch)))
		default:
			// Queue full: shed this query. Its drainer has applied (or
			// still holds queued) everything below base, so base is
			// exactly where its catch-up must resume.
			b.Release() // the shed sub never takes its reference
			delete(pi.subs, sh)
			sub.overflowAt = base
			sub.j.wg.Add(1) // the drainer's catch-up continuation
			close(sub.ch)
			sub.shed.Inc()
			pi.queriesGauge.Set(float64(len(pi.subs)))
			pi.ing.logf("query %s partition %d: delivery queue full at offset %d; shedding to catch-up",
				sub.j.id, pi.idx, base)
		}
	}
	pi.mu.Unlock()
	b.Release() // the loop's reference from PollBatch
	if haveHWM {
		pi.lagGauge.Set(float64(hwm - next))
	}
}

// drained reports whether the plane has delivered every record the
// broker will currently serve: the committed high watermark has not
// moved past the delivered offset. Best effort — an unreachable broker
// (failover in progress) reads as NOT drained, which is exactly when
// punctuating would be wrong.
func (pi *partIngest) drained() bool {
	hwm, err := pi.cluster.HighWatermark(pi.ing.topic, pi.idx)
	if err != nil {
		return false
	}
	pi.mu.Lock()
	next := pi.next
	pi.mu.Unlock()
	return next >= hwm
}

// idleAdvance enqueues an idle punctuation for every attached query,
// pushing event-time watermarks forward on a quiet partition so windows
// a sparsely keyed partition would hold back still merge. Best effort:
// a full queue skips the marker (the next one fires again).
func (pi *partIngest) idleAdvance() {
	pi.mu.Lock()
	for _, sub := range pi.subs {
		select {
		case sub.ch <- planeDelivery{idle: true}:
		default:
		}
	}
	pi.mu.Unlock()
}

// catchUp replays [from, plane position) to one late-attaching (or
// shed) shard through a private consumer, then splices it into the live
// plane at the handoff offset. The splice check runs under pi.mu: when
// pos has reached pi.next the plane cannot advance concurrently, so
// attaching there is exactly-once. The chase is abandoned when the job
// stops. Admission runs through the plane's catch-up semaphore, so a
// burst of late registrations is worked off a few consumers at a time.
func (pi *partIngest) catchUp(j *job, sh *shard, from int64) {
	defer j.wg.Done()
	select {
	case pi.ing.catchupSem <- struct{}{}:
	case <-j.done:
		return
	}
	pi.ing.catchupActive.Add(1)
	defer func() {
		pi.ing.catchupActive.Add(-1)
		<-pi.ing.catchupSem
	}()
	var cons *broker.Consumer
	for {
		var err error
		cons, err = broker.NewPartitionConsumer(pi.ing.cluster, j.group(), pi.ing.topic, pi.idx)
		if err == nil {
			break
		}
		// Transient broker trouble must not strand the shard detached
		// forever (its merger would wait on the missing part for every
		// window) — retry like the plane loop does, until the job stops.
		pi.ing.logf("catch-up %s partition %d: %v", j.id, pi.idx, err)
		if !sleepOrDone(j.done, pi.ing.backoff) {
			return
		}
	}
	cons.Seek(pi.idx, from)
	pos := from
	for {
		select {
		case <-j.done:
			return
		default:
		}
		pi.mu.Lock()
		target := pi.next
		if pos >= target {
			if !j.isStopped() {
				pi.register(pi.newSub(j, sh))
			}
			pi.mu.Unlock()
			return
		}
		pi.mu.Unlock()
		// Bound the round so the chase stops exactly at the handoff
		// offset, never overshooting into records the plane delivers.
		max := fetchMax
		if int64(max) > target-pos {
			max = int(target - pos)
		}
		cons.SetFetchMax(max)
		recs, err := cons.Poll() // returned in event-time order
		if err != nil || len(recs) == 0 {
			if err != nil {
				pi.ing.logf("catch-up %s partition %d: poll: %v", j.id, pi.idx, err)
			}
			if !sleepOrDone(j.done, pi.ing.backoff) {
				return
			}
			continue
		}
		pos += int64(len(recs))
		sh.consume(recs, pos, -1, false)
	}
}
