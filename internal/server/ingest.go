package server

import (
	"io"
	"strconv"
	"sync"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
)

// The shared ingest plane: exactly one prefetching consumer per
// (topic, partition) regardless of how many queries are registered.
// Each partition loop fetches a batch once, decodes it once, and fans
// the (event-time sorted, read-only) records out to every attached
// query's per-shard Session sink. Broker fetch work is O(partitions),
// not O(queries × partitions) — the property that lets one middle tier
// serve thousands of concurrent queries over a single topic read.
//
// Queries attach and detach dynamically. A query attaching at an
// offset the plane has already passed replays the gap through a short
// private catch-up consumer and splices into the live plane exactly at
// the handoff offset (the splice happens under the plane's delivery
// lock, so no record is lost or duplicated). A query attaching ahead
// of the plane (From "latest") rides the plane immediately and drops
// records below its requested start per-sub.

// fetchMax bounds one catch-up fetch's record count; the plane's
// consumers use the same batch size internally.
const fetchMax = 4096

// idleAdvanceAfter is the number of consecutive empty polls after which
// an idle partition pushes its attached sinks to the peers' watermark.
// High enough that a partition that has merely caught up with a live
// producer does not race ahead and drop the producer's next records as
// late.
const idleAdvanceAfter = 10

// ingestSink is the per-query, per-partition delivery target the plane
// fans out to (implemented by *shard).
type ingestSink interface {
	// consume applies one batch of event-time sorted records ending at
	// offset next (exclusive). The slice is shared across sinks and
	// must be treated as read-only. hwm is the partition high watermark
	// when haveHWM is true.
	consume(recs []broker.Record, next int64, hwm int64, haveHWM bool)
	// idleAdvance is the idle-partition punctuation: adopt the peers'
	// event-time progress so gap windows still merge.
	idleAdvance()
}

// ingest is one plane: a set of partition loops over one topic.
type ingest struct {
	cluster broker.Cluster // control-plane + catch-up connection
	topic   string
	group   string // the plane's shared consumer group
	backoff time.Duration
	logf    func(format string, args ...any)

	parts []*partIngest
	wg    sync.WaitGroup
}

// partIngest is the plane for one partition: one consumer, one loop,
// any number of attached sinks.
type partIngest struct {
	ing     *ingest
	idx     int
	cluster broker.Cluster // dedicated connection when DialShard is set
	conn    io.Closer      // nil when sharing the control connection

	// mu guards subs and next. Delivery happens with mu held so a
	// catch-up splice (pos == next, attach) is atomic against the loop
	// advancing next.
	mu         sync.Mutex
	subs       map[ingestSink]struct{}
	next       int64 // next offset the plane will deliver
	positioned bool  // next is meaningful (restored or first attach)
	started    bool
	stopped    bool
	cons       *broker.Consumer // set by the loop; closed by stop to unblock Poll
	done       chan struct{}

	recordsMetric *metrics.Counter
	queriesGauge  *metrics.Gauge
	lagGauge      *metrics.Gauge
	throughput    *metrics.Meter
}

// newIngest builds a plane with one (not yet started) partition loop
// per partition. When dial is non-nil each partition gets a dedicated
// broker connection, closed on stop. extra labels distinguish private
// per-query planes from the shared one in /metrics.
func newIngest(cluster broker.Cluster, dial func() (broker.Cluster, error),
	topic, group string, parts int, backoff time.Duration,
	logf func(string, ...any), reg *metrics.Registry, extra metrics.Labels) (*ingest, error) {
	ing := &ingest{cluster: cluster, topic: topic, group: group, backoff: backoff, logf: logf}
	for p := 0; p < parts; p++ {
		pc := cluster
		var closer io.Closer
		if dial != nil {
			c, err := dial()
			if err != nil {
				ing.closeConns()
				return nil, err
			}
			pc = c
			closer, _ = c.(io.Closer)
		}
		l := metrics.Labels{"partition": strconv.Itoa(p)}
		for k, v := range extra {
			l[k] = v
		}
		pi := &partIngest{
			ing:     ing,
			idx:     p,
			cluster: pc,
			conn:    closer,
			subs:    make(map[ingestSink]struct{}),
			done:    make(chan struct{}),
			recordsMetric: reg.Counter("saproxd_ingest_records_total",
				"records fetched once and fanned out to all queries, per partition", l),
			queriesGauge: reg.Gauge("saproxd_ingest_queries",
				"queries attached to the partition's shared plane", l),
			lagGauge: reg.Gauge("saproxd_ingest_lag_records",
				"records between the plane position and the partition high watermark", l),
		}
		pi.throughput = metrics.NewMeter(0, reg.Gauge("saproxd_ingest_throughput_items_per_s",
			"smoothed per-partition ingest rate", l))
		ing.parts = append(ing.parts, pi)
	}
	return ing, nil
}

// position seeds partition offsets from a restored checkpoint. Must be
// called before any attach. Offsets < 0 leave the partition
// unpositioned (first attacher decides).
func (ing *ingest) position(offsets []int64) {
	for i, off := range offsets {
		if i >= len(ing.parts) || off < 0 {
			continue
		}
		pi := ing.parts[i]
		pi.mu.Lock()
		pi.next = off
		pi.positioned = true
		pi.mu.Unlock()
	}
}

// offsets snapshots the plane position per partition (-1 when the
// partition was never positioned) — the shared half of a checkpoint.
func (ing *ingest) offsets() []int64 {
	out := make([]int64, len(ing.parts))
	for i, pi := range ing.parts {
		pi.mu.Lock()
		if pi.positioned {
			out[i] = pi.next
		} else {
			out[i] = -1
		}
		pi.mu.Unlock()
	}
	return out
}

// commit mirrors the plane offsets into its broker consumer group so
// lag is observable with broker tooling. Best effort.
func (ing *ingest) commit() {
	for _, pi := range ing.parts {
		pi.mu.Lock()
		off, ok := pi.next, pi.positioned
		pi.mu.Unlock()
		if ok {
			_ = ing.cluster.Commit(ing.group, ing.topic, pi.idx, off)
		}
	}
}

// attach joins one query shard to a partition plane, starting the loop
// on first use. from is the shard's delivery watermark: behind the
// plane it is replayed through a catch-up goroutine (tracked in the
// job's WaitGroup) before splicing live; at or ahead of the plane the
// shard attaches immediately, skipping records below from.
func (ing *ingest) attach(j *job, sh *shard, from int64) {
	pi := ing.parts[sh.idx]
	pi.mu.Lock()
	if !pi.positioned {
		pi.next = from
		pi.positioned = true
	}
	if !pi.started && !pi.stopped {
		pi.started = true
		ing.wg.Add(1)
		go pi.loop(pi.next)
	}
	if from >= pi.next {
		sh.setSkip(from)
		pi.subs[sh] = struct{}{}
		pi.queriesGauge.Set(float64(len(pi.subs)))
		pi.mu.Unlock()
		return
	}
	pi.mu.Unlock()
	j.wg.Add(1)
	go pi.catchUp(j, sh, from)
}

// detach removes a sink. After detach returns no further consume call
// will be made for it (delivery holds the same lock).
func (ing *ingest) detach(sh *shard) {
	pi := ing.parts[sh.idx]
	pi.mu.Lock()
	delete(pi.subs, sh)
	pi.queriesGauge.Set(float64(len(pi.subs)))
	pi.mu.Unlock()
}

// stop halts every partition loop and closes dedicated connections.
// Attached sinks receive no further deliveries once stop returns.
func (ing *ingest) stop() {
	for _, pi := range ing.parts {
		pi.mu.Lock()
		if !pi.stopped {
			pi.stopped = true
			close(pi.done)
		}
		cons := pi.cons
		pi.mu.Unlock()
		if cons != nil {
			_ = cons.Close() // unblock a Poll stuck on the prefetcher
		}
	}
	ing.wg.Wait()
	ing.closeConns()
}

func (ing *ingest) closeConns() {
	for _, pi := range ing.parts {
		if pi.conn != nil {
			_ = pi.conn.Close()
			pi.conn = nil
		}
	}
}

// loop is the partition's single consumer: a prefetching
// broker.Consumer seeked to the plane position, double-buffering batch
// N+1 while batch N fans out. With no sinks attached the loop idles
// without advancing, so a future attacher at the current offset joins
// seamlessly.
func (pi *partIngest) loop(start int64) {
	defer pi.ing.wg.Done()
	var cons *broker.Consumer
	for {
		var err error
		cons, err = broker.NewPartitionConsumer(pi.cluster, pi.ing.group, pi.ing.topic, pi.idx)
		if err == nil {
			break
		}
		pi.ing.logf("ingest partition %d: consumer: %v", pi.idx, err)
		if !sleepOrDone(pi.done, pi.ing.backoff) {
			return
		}
	}
	cons.Seek(pi.idx, start)
	cons.StartPrefetch()
	defer func() { _ = cons.Close() }()
	pi.mu.Lock()
	if pi.stopped {
		pi.mu.Unlock()
		return
	}
	pi.cons = cons
	pi.mu.Unlock()

	idle := 0
	for {
		select {
		case <-pi.done:
			return
		default:
		}
		pi.mu.Lock()
		nsubs := len(pi.subs)
		pi.mu.Unlock()
		if nsubs == 0 {
			// Nobody listening: pause without advancing the plane.
			if !sleepOrDone(pi.done, pi.ing.backoff) {
				return
			}
			continue
		}
		recs, err := cons.Poll()
		if err != nil {
			select {
			case <-pi.done:
				return
			default:
			}
			if !sleepOrDone(pi.done, pi.ing.backoff) {
				return
			}
			continue
		}
		if len(recs) == 0 {
			idle++
			if idle >= idleAdvanceAfter {
				pi.idleAdvance()
			}
			if !sleepOrDone(pi.done, pi.ing.backoff) {
				return
			}
			continue
		}
		idle = 0
		// One high-watermark read per shared batch (best effort), where
		// the per-query model paid one per query per batch.
		hwm, herr := pi.cluster.HighWatermark(pi.ing.topic, pi.idx)
		pi.deliver(recs, hwm, herr == nil)
	}
}

// parallelDeliverMin is the batch size below which fan-out stays
// sequential: live-tailing produces many tiny batches, and per-batch
// goroutine churn would cost more than the session pushes it overlaps.
const parallelDeliverMin = 256

// deliver fans one batch out to every attached sink and advances the
// plane position. It runs under pi.mu so catch-up splices are atomic;
// for large batches with several sinks the fan-out runs them
// concurrently (each sink locks only its own shard) and joins before
// releasing the lock.
func (pi *partIngest) deliver(recs []broker.Record, hwm int64, haveHWM bool) {
	n := int64(len(recs))
	pi.recordsMetric.Add(float64(n))
	pi.throughput.Mark(n)
	pi.mu.Lock()
	next := pi.next + n
	pi.next = next
	if len(pi.subs) <= 1 || len(recs) < parallelDeliverMin {
		for sink := range pi.subs {
			sink.consume(recs, next, hwm, haveHWM)
		}
	} else {
		var wg sync.WaitGroup
		for sink := range pi.subs {
			wg.Add(1)
			go func(s ingestSink) {
				defer wg.Done()
				s.consume(recs, next, hwm, haveHWM)
			}(sink)
		}
		wg.Wait()
	}
	pi.mu.Unlock()
	if haveHWM {
		pi.lagGauge.Set(float64(hwm - next))
	}
}

// idleAdvance pushes every attached sink's event-time watermark forward
// on a quiet partition, flushing windows a sparsely keyed partition
// would otherwise hold back forever.
func (pi *partIngest) idleAdvance() {
	pi.mu.Lock()
	sinks := make([]ingestSink, 0, len(pi.subs))
	for s := range pi.subs {
		sinks = append(sinks, s)
	}
	pi.mu.Unlock()
	for _, s := range sinks {
		s.idleAdvance()
	}
}

// catchUp replays [from, plane position) to one late-attaching shard
// through a private consumer, then splices it into the live plane at
// the handoff offset. The splice check runs under pi.mu: when pos has
// reached pi.next the plane cannot advance concurrently, so attaching
// there is exactly-once. The chase is abandoned when the job stops.
func (pi *partIngest) catchUp(j *job, sh *shard, from int64) {
	defer j.wg.Done()
	var cons *broker.Consumer
	for {
		var err error
		cons, err = broker.NewPartitionConsumer(pi.ing.cluster, j.group(), pi.ing.topic, pi.idx)
		if err == nil {
			break
		}
		// Transient broker trouble must not strand the shard detached
		// forever (its merger would wait on the missing part for every
		// window) — retry like the plane loop does, until the job stops.
		pi.ing.logf("catch-up %s partition %d: %v", j.id, pi.idx, err)
		if !sleepOrDone(j.done, pi.ing.backoff) {
			return
		}
	}
	cons.Seek(pi.idx, from)
	pos := from
	for {
		select {
		case <-j.done:
			return
		default:
		}
		pi.mu.Lock()
		target := pi.next
		if pos >= target {
			if !j.isStopped() {
				pi.subs[sh] = struct{}{}
				pi.queriesGauge.Set(float64(len(pi.subs)))
			}
			pi.mu.Unlock()
			return
		}
		pi.mu.Unlock()
		// Bound the round so the chase stops exactly at the handoff
		// offset, never overshooting into records the plane delivers.
		max := fetchMax
		if int64(max) > target-pos {
			max = int(target - pos)
		}
		cons.SetFetchMax(max)
		recs, err := cons.Poll() // returned in event-time order
		if err != nil || len(recs) == 0 {
			if err != nil {
				pi.ing.logf("catch-up %s partition %d: poll: %v", j.id, pi.idx, err)
			}
			if !sleepOrDone(j.done, pi.ing.backoff) {
				return
			}
			continue
		}
		pos += int64(len(recs))
		sh.consume(recs, pos, -1, false)
	}
}
