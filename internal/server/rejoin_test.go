package server

import (
	"fmt"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/broker/storage"
	"streamapprox/internal/stream"
)

// End-to-end restart/rejoin: a registered query served over a 3-broker
// RF2 cluster with DURABLE partition logs must survive a partition
// leader being killed mid-stream AND restarted from its data directory
// — the dead member rejoins as a follower, syncs its log, re-enters
// the ISR, takes its leadership back, and the query observes no lost
// or duplicated windows. This is the acceptance scenario of the
// storage-engine refactor.

// durableBrokerCluster is a 3-member durable broker cluster driven
// through the broker package's exported API only.
type durableBrokerCluster struct {
	t       *testing.T
	brokers []*broker.Broker
	servers []*broker.Server
	nodes   []*broker.ClusterNode
	ids     []string
	addrs   []string
	dirs    []string
	peers   map[string]string
	killed  []bool
}

func startDurableBrokerCluster(t *testing.T, members int) *durableBrokerCluster {
	t.Helper()
	bc := &durableBrokerCluster{t: t, killed: make([]bool, members), peers: make(map[string]string, members)}
	for i := 0; i < members; i++ {
		dir := t.TempDir()
		b, err := broker.Open(broker.StorageConfig{Dir: dir, Policy: storage.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := broker.Serve(b, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		bc.peers[id] = srv.Addr()
		bc.brokers = append(bc.brokers, b)
		bc.servers = append(bc.servers, srv)
		bc.ids = append(bc.ids, id)
		bc.addrs = append(bc.addrs, srv.Addr())
		bc.dirs = append(bc.dirs, dir)
	}
	for i := 0; i < members; i++ {
		node, err := broker.NewClusterNode(bc.brokers[i], bc.nodeConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		bc.servers[i].AttachNode(node)
		bc.nodes = append(bc.nodes, node)
	}
	for _, n := range bc.nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for i := range bc.servers {
			bc.kill(i)
		}
	})
	return bc
}

func (bc *durableBrokerCluster) nodeConfig(i int) broker.NodeConfig {
	return broker.NodeConfig{
		ID:             bc.ids[i],
		Peers:          bc.peers,
		Replicas:       2,
		MinISR:         2,
		HeartbeatEvery: 10 * time.Millisecond,
		FailAfter:      2,
	}
}

// kill fail-stops a member without flushing anything: with the
// always-fsync policy the on-disk state equals a kill -9's.
func (bc *durableBrokerCluster) kill(i int) {
	if bc.killed[i] {
		return
	}
	bc.killed[i] = true
	bc.nodes[i].Close()
	bc.servers[i].Close()
}

// restart boots a member from its data directory on its original
// address.
func (bc *durableBrokerCluster) restart(i int) {
	bc.t.Helper()
	b, err := broker.Open(broker.StorageConfig{Dir: bc.dirs[i], Policy: storage.SyncAlways})
	if err != nil {
		bc.t.Fatal(err)
	}
	node, err := broker.NewClusterNode(b, bc.nodeConfig(i))
	if err != nil {
		bc.t.Fatal(err)
	}
	srv, err := broker.ServeWithOptions(b, bc.addrs[i], broker.ServerOptions{Node: node})
	if err != nil {
		bc.t.Fatal(err)
	}
	node.Start()
	bc.brokers[i], bc.servers[i], bc.nodes[i] = b, srv, node
	bc.killed[i] = false
}

func (bc *durableBrokerCluster) indexOf(t *testing.T, id string) int {
	for i, nid := range bc.ids {
		if nid == id {
			return i
		}
	}
	t.Fatalf("unknown node id %q", id)
	return -1
}

func (bc *durableBrokerCluster) dial(t *testing.T) *broker.ClusterClient {
	t.Helper()
	cc, err := broker.DialClusterWithOptions(bc.addrs, broker.ClusterClientOptions{
		Retries: 25,
		Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })
	return cc
}

func TestClusterRestartRejoinQueryNoLossNoDup(t *testing.T) {
	bc := startDurableBrokerCluster(t, 3)
	cc := bc.dial(t)
	if err := cc.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{
		Cluster: cc,
		DialShard: func() (broker.Cluster, error) {
			return broker.DialClusterWithOptions(bc.addrs, broker.ClusterClientOptions{
				Retries: 25, Backoff: 5 * time.Millisecond,
			})
		},
		Topic:       "in",
		PollBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.job(id)

	events := makeEvents(29, 24000) // 24s of event time
	toRecords := func(evs []stream.Event) []broker.Record {
		out := make([]broker.Record, len(evs))
		for i, e := range evs {
			out[i] = broker.FromEvent(e)
		}
		return out
	}
	produce := func(from, to int) {
		t.Helper()
		for off := from; off < to; off += 1000 {
			if _, err := cc.Produce("in", toRecords(events[off:off+1000])); err != nil {
				t.Fatalf("produce at %d: %v", off, err)
			}
		}
	}

	// First third of the stream, then kill partition 0's leader.
	third := len(events) / 3
	produce(0, third)
	m, err := cc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	victim := m.LeaderOf("in", 0)
	if victim == "" {
		t.Fatal("no leader for partition 0")
	}
	vi := bc.indexOf(t, victim)
	bc.kill(vi)

	// Second third rides through detection + promotion, the query keeps
	// consuming from the interim leader.
	produce(third, 2*third)

	// Restart the dead member from its data directory: it must rejoin
	// as follower, sync its log, and take partition 0's leadership back
	// (it is the first rendezvous replica). Its own metadata advertises
	// the leadership only once the takeover handshake finished.
	bc.restart(vi)
	probe, err := broker.Dial(bc.addrs[vi])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = probe.Close() }()
	deadline := time.Now().Add(15 * time.Second)
	for {
		m, err := probe.Meta()
		if err == nil && m.LeaderOf("in", 0) == victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted broker never rejoined as leader of partition 0: %+v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Final third is served by the rejoined member again.
	produce(2*third, len(events))

	// ISR re-entry: both replicas of both partitions converge to the
	// same log (every produce above needed MinISR=2 acks once the
	// restarted member was live again).
	deadline = time.Now().Add(10 * time.Second)
	for p := 0; p < 2; p++ {
		for {
			var hwms []int64
			m, err := cc.Meta()
			if err != nil {
				t.Fatal(err)
			}
			for _, rid := range m.Topics["in"].Partitions[p].Replicas {
				h, err := bc.brokers[bc.indexOf(t, rid)].HighWatermark("in", p)
				if err != nil {
					t.Fatal(err)
				}
				hwms = append(hwms, h)
			}
			if len(hwms) == 2 && hwms[0] == hwms[1] {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("partition %d replicas never converged: %v", p, hwms)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The query consumed every produced record exactly once...
	total := int64(len(events))
	deadline = time.Now().Add(20 * time.Second)
	for {
		var consumed int64
		for _, sh := range j.shards {
			consumed += sh.records.Load()
		}
		if consumed == total {
			break
		}
		if consumed > total {
			t.Fatalf("query consumed %d records, produced only %d (duplication)", consumed, total)
		}
		if time.Now().After(deadline) {
			t.Fatalf("query consumed %d of %d records before deadline (loss)", consumed, total)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...and its served windows are unique and hole-free across the
	// stream's event-time span.
	deadline = time.Now().Add(10 * time.Second)
	var results []MergedWindow
	for {
		results = j.resultsSince(-1)
		if len(results) >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d windows merged", len(results))
		}
		time.Sleep(10 * time.Millisecond)
	}
	seen := map[time.Time]bool{}
	var minStart, maxStart time.Time
	for _, r := range results {
		if seen[r.Start] {
			t.Fatalf("window %v served twice", r.Start)
		}
		seen[r.Start] = true
		if minStart.IsZero() || r.Start.Before(minStart) {
			minStart = r.Start
		}
		if r.Start.After(maxStart) {
			maxStart = r.Start
		}
	}
	for at := minStart; !at.After(maxStart); at = at.Add(time.Second) {
		if !seen[at] {
			t.Fatalf("window starting %v missing between %v and %v", at, minStart, maxStart)
		}
	}
}
