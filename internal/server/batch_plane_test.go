package server

import (
	"strconv"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
)

// TestBatchPlaneSharesOneBatchAcrossQueries is the vectorized plane's
// aliasing test, meant to run under -race: the partition loop hands ONE
// pooled columnar batch to eight queries' drainers, which apply it to
// their sessions concurrently while the loop Releases its own
// reference. A write to a shared batch, a premature pool return, or a
// missed Retain shows up as a race report or as diverging per-window
// item counts (a recycled batch overwritten mid-read).
func TestBatchPlaneSharesOneBatchAcrossQueries(t *testing.T) {
	bk := broker.New()
	if err := bk.CreateTopic("in", 1); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(41, 20000)
	if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: bk, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const queries = 8
	var jobs []*job
	for i := 0; i < queries; i++ {
		id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second,
			Fraction: 0.5, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		j, _ := s.job(id)
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitJobRecords(t, j, int64(len(events)), 30*time.Second)
	}
	time.Sleep(50 * time.Millisecond)
	for _, j := range jobs {
		if n := jobRecords(j); n != int64(len(events)) {
			t.Fatalf("query %s consumed %d of %d records", j.id, n, len(events))
		}
	}

	// Every query read the same shared batches, so their per-window item
	// counts must agree exactly.
	items := map[time.Time]int64{}
	for _, r := range jobs[0].resultsSince(-1) {
		items[r.Start] = r.Items
	}
	for _, j := range jobs[1:] {
		for _, r := range j.resultsSince(-1) {
			if want, ok := items[r.Start]; ok && r.Items != want {
				t.Errorf("window %v: query %s saw %d items, query %s saw %d",
					r.Start, j.id, r.Items, jobs[0].id, want)
			}
		}
	}

	// The run must actually have used the columnar path: the in-process
	// broker implements BatchFetcher, so the batch-shape histogram has
	// observations and accounts for the full record count.
	h := s.reg.Histogram("saproxd_ingest_batch_records",
		"records per columnar batch fanned out by the partition loop",
		metrics.Labels{"partition": strconv.Itoa(0)})
	if h.Count() == 0 {
		t.Fatal("batch histogram empty: plane did not take the columnar path")
	}
	if got := int64(h.Sum()); got != int64(len(events)) {
		t.Errorf("batch histogram accounted %d records, want %d", got, len(events))
	}
}
