// Package server implements saproxd, the serving tier on top of the
// stream-aggregator (broker) tier: a sharded, multi-tenant
// approximate-query service.
//
// Figure 1 of the paper ends at a single in-process computation; this
// package makes that computation a long-running, horizontally sharded
// service. Clients register queries (aggregate kind, sliding window,
// sampling budget) over HTTP/JSON. A SHARED INGEST PLANE owns exactly
// one prefetching consumer per (topic, partition) regardless of query
// count: each batch is fetched and decoded once and fanned out to
// every registered query's per-shard OASRS Session — the paper's
// synchronization-free parallel sampling with the broker read
// amortized across all tenants, so N queries cost one topic read, not
// N. Per-shard windows are merged into a single "result ± error"
// stream with a combined error bound (internal/estimate's
// disjoint-population merge), and an optional cross-query budget
// scheduler apportions a global sample budget over the queries from
// their observed errors. Liveness and load are observable at /healthz
// and a Prometheus-style /metrics endpoint, and periodic checkpoints
// (shared partition offsets + per-query delivery watermarks) make the
// whole daemon crash-restartable.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
	"streamapprox/internal/obs"
)

// Config configures a Server.
type Config struct {
	// Cluster is the broker to consume: the in-process *broker.Broker or
	// a TCP *broker.Client pointed at brokerd.
	Cluster broker.Cluster
	// DialShard, when set, opens a dedicated broker connection per
	// ingest partition loop, so partition fetches run concurrently
	// instead of queueing on one connection. Connections implementing
	// io.Closer are closed when the plane stops. When nil the plane
	// shares Cluster — right for the in-process broker.
	DialShard func() (broker.Cluster, error)
	// Topic is the input topic all queries consume.
	Topic string
	// Group prefixes the per-query consumer groups (default "saproxd").
	Group string
	// CheckpointDir enables periodic shard checkpoints and restart
	// recovery when non-empty.
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval (default 5s).
	CheckpointEvery time.Duration
	// PollBackoff is the ingest idle-poll pause (default 10ms).
	PollBackoff time.Duration
	// QueueDepth bounds each query's per-partition delivery queue, in
	// batches (default 64). A query that falls a full queue behind is
	// shed to the catch-up path instead of stalling the partition loop.
	QueueDepth int
	// CatchUpWorkers bounds simultaneous late-registration catch-up
	// consumers per ingest plane (default 4), so a burst of late
	// queries cannot open unbounded private consumers.
	CatchUpWorkers int
	// GlobalBudget, when positive, enables the cross-query budget
	// scheduler: the total sampled items per second shared by all
	// registered queries, reapportioned every ScheduleEvery from each
	// query's observed relative error (and Spec.Weight).
	GlobalBudget float64
	// ScheduleEvery is the scheduler control interval (default 2s).
	ScheduleEvery time.Duration
	// PerQueryIngest reverts to one private ingest plane per query —
	// the pre-shared-plane execution model, where broker work scales
	// O(queries × partitions). Kept as a benchmark baseline.
	PerQueryIngest bool
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server is the multi-tenant approximate-query service.
type Server struct {
	cfg   Config
	parts int
	reg   *metrics.Registry
	mux   *http.ServeMux
	ing   *ingest    // shared ingest plane (nil under PerQueryIngest)
	sched *scheduler // cross-query budget scheduler (nil without GlobalBudget)

	mu      sync.Mutex
	queries map[string]*job
	nextID  int
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup

	activeGauge    *metrics.Gauge
	checkpoints    *metrics.Counter
	checkpointErrs *metrics.Counter
}

// New connects to the topic, restores any checkpointed queries from
// cfg.CheckpointDir, and starts the checkpoint loop. Close stops it.
func New(cfg Config) (*Server, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("server: nil cluster")
	}
	if cfg.Topic == "" {
		return nil, fmt.Errorf("server: empty topic")
	}
	if cfg.Group == "" {
		cfg.Group = "saproxd"
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 5 * time.Second
	}
	if cfg.PollBackoff <= 0 {
		cfg.PollBackoff = 10 * time.Millisecond
	}
	if cfg.ScheduleEvery <= 0 {
		cfg.ScheduleEvery = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	parts, err := cfg.Cluster.Partitions(cfg.Topic)
	if err != nil {
		return nil, fmt.Errorf("server: topic %q: %w", cfg.Topic, err)
	}
	s := &Server{
		cfg:     cfg,
		parts:   parts,
		reg:     metrics.NewRegistry(),
		queries: make(map[string]*job),
		done:    make(chan struct{}),
	}
	s.activeGauge = s.reg.Gauge("saproxd_queries_active", "registered queries", nil)
	s.checkpoints = s.reg.Counter("saproxd_checkpoints_total", "successful checkpoints", nil)
	s.checkpointErrs = s.reg.Counter("saproxd_checkpoint_errors_total", "failed checkpoints", nil)
	s.buildMux()
	if !cfg.PerQueryIngest {
		s.ing, err = newIngest(cfg.Cluster, cfg.DialShard, cfg.Topic, cfg.Group+"-ingest",
			parts, cfg.PollBackoff, cfg.QueueDepth, cfg.CatchUpWorkers, cfg.Logf, s.reg, nil)
		if err != nil {
			return nil, fmt.Errorf("server: ingest plane: %w", err)
		}
	}

	// fail releases everything the constructor has already stood up —
	// plane connections and restored (unstarted) jobs with their
	// private planes — so an error return leaks nothing.
	fail := func(err error) (*Server, error) {
		for _, j := range s.queries {
			j.stop(false)
		}
		if s.ing != nil {
			s.ing.stop()
		}
		return nil, err
	}

	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return fail(fmt.Errorf("server: checkpoint dir: %w", err))
		}
		// Re-position the shared plane before any query attaches, so
		// restored queries splice against the checkpointed offsets
		// instead of re-deciding them.
		if s.ing != nil {
			offsets, err := loadIngestState(cfg.CheckpointDir, cfg.Topic)
			if err != nil {
				return fail(fmt.Errorf("server: load ingest state: %w", err))
			}
			s.ing.position(offsets)
		}
		cfs, err := loadCheckpoints(cfg.CheckpointDir)
		if err != nil {
			return fail(fmt.Errorf("server: load checkpoints: %w", err))
		}
		// Restore everything before starting anything so a bad
		// checkpoint cannot leave earlier queries' workers running
		// behind the returned error.
		for _, cf := range cfs {
			// Re-normalize the restored spec: fields added since the
			// checkpoint was written (e.g. Weight) restore as zero and
			// need their defaults before the scheduler sees them.
			if err := cf.Spec.normalize(); err != nil {
				return fail(fmt.Errorf("server: restore query %s: spec: %w", cf.ID, err))
			}
			j, err := newJob(cf.ID, cf.Spec, s, cf)
			if err != nil {
				return fail(fmt.Errorf("server: restore query %s: %w", cf.ID, err))
			}
			s.queries[cf.ID] = j
			if n, err := strconv.Atoi(strings.TrimPrefix(cf.ID, "q-")); err == nil && n >= s.nextID {
				s.nextID = n + 1
			}
		}
		for _, j := range s.jobs() {
			j.start()
			cfg.Logf("restored query %s (%s) from checkpoint", j.id, j.spec.Kind)
		}
		s.activeGauge.Set(float64(len(s.queries)))
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	if cfg.GlobalBudget > 0 {
		s.sched = newScheduler(s)
		s.wg.Add(1)
		go s.sched.loop()
	}
	return s, nil
}

// Partitions returns the consumed topic's partition count (= shards per
// query).
func (s *Server) Partitions() int { return s.parts }

// Registry exposes the server's metric registry (for embedding tests).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Stats reports one query's consumed-record and served-window counters
// — the progress surface embedding benchmarks poll.
func (s *Server) Stats(id string) (records, windows int64, ok bool) {
	j, ok := s.job(id)
	if !ok {
		return 0, 0, false
	}
	for _, sh := range j.shards {
		records += sh.records.Load()
	}
	j.mu.Lock()
	windows = j.seq
	j.mu.Unlock()
	return records, windows, true
}

// Handler returns the HTTP API handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Register adds a query and starts its shard workers, returning the
// assigned id.
func (s *Server) Register(spec Spec) (string, error) {
	if err := spec.normalize(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", fmt.Errorf("server closed")
	}
	id := "q-" + strconv.Itoa(s.nextID)
	s.nextID++
	s.mu.Unlock()

	// Stamp the control-plane connection with this registration's
	// request ID, so the offset lookups newJob issues carry it onto the
	// broker's wire logs. Concurrent registrations may overwrite each
	// other's stamp; the misattribution is benign and short-lived.
	rid := obs.NewTraceID()
	if ts, ok := s.cfg.Cluster.(traceSetter); ok {
		ts.SetTraceID(rid)
	}

	j, err := newJob(id, spec, s, nil)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.stop(false)
		return "", fmt.Errorf("server closed")
	}
	s.queries[id] = j
	s.activeGauge.Set(float64(len(s.queries)))
	s.mu.Unlock()
	j.start()
	s.cfg.Logf("registered query %s: %s over %v/%v, fraction %v, trace=%s",
		id, spec.Kind, spec.Window, spec.Slide, spec.Fraction, obs.TraceHex(rid))
	return id, nil
}

// Deregister flushes and removes a query and deletes its checkpoint.
func (s *Server) Deregister(id string) error {
	s.mu.Lock()
	j, ok := s.queries[id]
	if ok {
		delete(s.queries, id)
		s.activeGauge.Set(float64(len(s.queries)))
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	j.stop(true)
	if s.cfg.CheckpointDir != "" {
		_ = os.Remove(checkpointPath(s.cfg.CheckpointDir, id))
	}
	// Drop the tenant's metric series so the registry does not grow
	// without bound as queries come and go.
	s.reg.RemoveMatching(metrics.Labels{"query": id})
	s.cfg.Logf("deregistered query %s", id)
	return nil
}

// job looks up a registered query.
func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.queries[id]
	return j, ok
}

// jobs returns the registered queries sorted by id.
func (s *Server) jobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.queries))
	for _, j := range s.queries {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// Close shuts the server down in quiesce-then-flush order: first the
// control loops (scheduler, periodic checkpointer), then the ingest
// plane — so no delivery is in flight — then the jobs (waiting out any
// catch-up goroutines), and only then the final checkpoint of every
// query plus the shared plane offsets. Partial windows are not
// flushed, so a restarted server resumes seamlessly without
// double-emitting; nothing mid-merge is dropped because all merging
// finished before the checkpoint was cut.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	if s.ing != nil {
		s.ing.stop()
	}
	for _, j := range s.jobs() {
		j.stop(false)
	}
	s.checkpointAll()
}

// checkpointLoop checkpoints all queries on a ticker until Close.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			s.checkpointAll()
		}
	}
}

// checkpointAll persists every query's state plus the shared plane
// offsets, and mirrors both into the broker's consumer groups.
func (s *Server) checkpointAll() {
	if s.cfg.CheckpointDir == "" {
		return
	}
	s.mu.Lock()
	closing := s.closed
	s.mu.Unlock()
	if s.ing != nil {
		if err := saveIngestState(s.cfg.CheckpointDir, s.cfg.Topic, s.ing.offsets()); err != nil {
			s.checkpointErrs.Inc()
			s.cfg.Logf("checkpoint ingest state: %v", err)
		}
		s.ing.commit()
	}
	for _, j := range s.jobs() {
		if j.isStopped() && !closing {
			continue // being deregistered; don't resurrect its file
		}
		cf, err := j.checkpoint()
		if err == nil {
			err = saveCheckpoint(s.cfg.CheckpointDir, cf)
		}
		if err != nil {
			s.checkpointErrs.Inc()
			s.cfg.Logf("checkpoint %s: %v", j.id, err)
			continue
		}
		s.checkpoints.Inc()
		// A Deregister racing this save may have already removed the
		// file; re-check and undo so a deleted query cannot come back
		// on restart.
		if _, ok := s.job(j.id); !ok {
			_ = os.Remove(checkpointPath(s.cfg.CheckpointDir, j.id))
		}
	}
}

// ---- HTTP API ----

// queryInfo is the wire form of a registered query's status.
type queryInfo struct {
	ID      string  `json:"id"`
	Spec    Spec    `json:"spec"`
	Shards  int     `json:"shards"`
	Windows int64   `json:"windows"`
	Records []int64 `json:"shard_records"`
	Sampled []int64 `json:"shard_sampled"`
}

func (s *Server) info(j *job) queryInfo {
	j.mu.Lock()
	seq := j.seq
	j.mu.Unlock()
	qi := queryInfo{ID: j.id, Spec: j.spec, Shards: len(j.shards), Windows: seq}
	for _, sh := range j.shards {
		qi.Records = append(qi.Records, sh.records.Load())
		qi.Sampled = append(qi.Sampled, sh.sampled.Load())
	}
	return qi
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/queries", s.handleRegister)
	mux.HandleFunc("GET /v1/queries", s.handleList)
	mux.HandleFunc("GET /v1/queries/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/queries/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/queries/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/queries/{id}/stream", s.handleStream)
	s.mux = mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.queries)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"topic":      s.cfg.Topic,
		"partitions": s.parts,
		"queries":    n,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = s.reg.WriteTo(w)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	id, err := s.Register(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, ok := s.job(id)
	if !ok { // deregistered concurrently before we could report it
		writeError(w, http.StatusGone, "query %s was deleted", id)
		return
	}
	writeJSON(w, http.StatusCreated, s.info(j))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs()
	out := make([]queryInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, s.info(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.info(j))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Deregister(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// handleResults returns merged windows with seq > ?since (default -1:
// everything retained). ?wait=500ms long-polls until a result arrives or
// the wait expires.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	since := int64(-1)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "since: %v", err)
			return
		}
		since = n
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "wait: %v", err)
			return
		}
		wait = d
	}
	results := j.resultsSince(since)
	if len(results) == 0 && wait > 0 {
		// Subscribe before re-checking so a window merged between the
		// first check and the subscription still wakes (or is seen by)
		// this request.
		ch, cancel := j.subscribe()
		defer cancel()
		if results = j.resultsSince(since); len(results) == 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-t.C:
			case <-r.Context().Done():
			case <-ch:
			}
			results = j.resultsSince(since)
		}
	}
	writeJSON(w, http.StatusOK, results)
}

// handleStream streams merged windows as NDJSON: first the retained
// backlog after ?since (default: none), then live results as they merge,
// until the client disconnects or the query is deleted.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush() // push headers so clients can start reading
	}
	enc := json.NewEncoder(w)

	last := int64(-1)
	send := func(mw MergedWindow) bool {
		if mw.Seq <= last {
			return true
		}
		if err := enc.Encode(mw); err != nil {
			return false
		}
		last = mw.Seq
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	// Subscribe before draining the backlog so no window is missed
	// between the two; send dedups by seq.
	ch, cancel := j.subscribe()
	defer cancel()
	since := int64(-1)
	if v := r.URL.Query().Get("since"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			since = n
		}
	} else {
		j.mu.Lock()
		since = j.seq - 1
		j.mu.Unlock()
	}
	for _, mw := range j.resultsSince(since) {
		if !send(mw) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case _, ok := <-ch:
			if !ok {
				return
			}
			// The channel is only a wake-up: re-drain from the retained
			// ring so windows dropped on a full subscriber buffer are
			// still delivered in order.
			for _, mw := range j.resultsSince(last) {
				if !send(mw) {
					return
				}
			}
		}
	}
}
