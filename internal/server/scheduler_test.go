package server

import (
	"strings"
	"testing"
	"time"

	"streamapprox/internal/broker"
)

// currentFraction reads a query's live sampling fraction from its
// first shard session.
func currentFraction(j *job) float64 {
	sh := j.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sess.Fraction()
}

// jobSampled sums a query's sampled items across shards.
func jobSampled(j *job) int64 {
	var n int64
	for _, sh := range j.shards {
		n += sh.sampled.Load()
	}
	return n
}

// TestSchedulerEnforcesGlobalBudget runs two greedy queries under a
// global sample budget far below their combined demand: the scheduler
// must cut their fractions well below the requested 0.8, and the
// realized sampling ratio must land far under the unscheduled one.
func TestSchedulerEnforcesGlobalBudget(t *testing.T) {
	bk := broker.New()
	if err := bk.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(41, 30000) // 30s of data
	s, err := New(Config{
		Cluster:       bk,
		Topic:         "in",
		PollBackoff:   time.Millisecond,
		GlobalBudget:  2000, // items/s shared by all queries — far below demand
		ScheduleEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var jobs []*job
	for i := 0; i < 2; i++ {
		id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second,
			Fraction: 0.8, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		j, _ := s.job(id)
		jobs = append(jobs, j)
	}
	// Throttle the feed across ~30 control intervals so the scheduler
	// keeps seeing live demand against the budget while data flows.
	go func() {
		for chunk := 0; chunk < len(events); chunk += 1000 {
			end := chunk + 1000
			if end > len(events) {
				end = len(events)
			}
			_, _ = broker.ProduceEvents(bk, "in", events[chunk:end])
			time.Sleep(15 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	squeezed := false
	for {
		done := true
		for _, j := range jobs {
			if jobRecords(j) < int64(len(events)) {
				done = false
			}
			if currentFraction(j) < 0.2 {
				squeezed = true
			}
		}
		if done && squeezed {
			break
		}
		if time.Now().After(deadline) {
			for _, j := range jobs {
				t.Logf("query %s: records %d, fraction %v", j.id, jobRecords(j), currentFraction(j))
			}
			t.Fatal("budget scheduler never squeezed the fractions below 0.2")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Unscheduled, every window would sample ~0.8 of its items. Under
	// the squeeze, all but the first couple of windows sample at the
	// granted sliver, so the aggregate window-level ratio collapses.
	var items, sampled int64
	for _, j := range jobs {
		for _, r := range j.resultsSince(-1) {
			items += r.Items
			sampled += int64(r.Sampled)
		}
	}
	if items == 0 || sampled == 0 {
		t.Fatalf("items %d, sampled %d — nothing merged", items, sampled)
	}
	if ratio := float64(sampled) / float64(items); ratio > 0.5 {
		t.Errorf("aggregate window sampling ratio %.3f, want well under the requested 0.8", ratio)
	}

	// The allocation surface is observable.
	text := s.Registry().Render()
	for _, want := range []string{
		"saproxd_sched_budget_items_per_s 2000",
		"saproxd_sched_fraction",
		"saproxd_sched_demand_items",
		"saproxd_sched_granted_items",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestGrantFraction pins the allocation algebra deterministically:
// weights must bias the split only while the budget binds, contended
// shares must follow weighted demand, and no query is granted above
// its desired fraction or below the survival floor.
func TestGrantFraction(t *testing.T) {
	const delta = 10000.0
	// Uncontended (granted == total): weight must not matter.
	for _, w := range []float64{0.5, 1, 4} {
		if f := grantFraction(0.5, w, delta, 0.5*delta, 5000, 5000, w*0.5*delta); f != 0.5 {
			t.Errorf("uncontended weight %v: fraction %v, want the desired 0.5", w, f)
		}
	}
	// Contended, equal weights: two identical queries split the grant
	// evenly — each gets (granted/2)/delta.
	total := 2 * 0.5 * delta
	if f := grantFraction(0.5, 1, delta, 0.5*delta, total/2, total, total); f != 0.25 {
		t.Errorf("contended even split: fraction %v, want 0.25", f)
	}
	// Contended, weight 3 vs 1: the heavy query gets 3/4 of the grant,
	// capped at its desired fraction; the light one gets 1/4.
	granted := total / 2
	wtotal := 3*0.5*delta + 1*0.5*delta
	heavy := grantFraction(0.5, 3, delta, 0.5*delta, granted, total, wtotal)
	light := grantFraction(0.5, 1, delta, 0.5*delta, granted, total, wtotal)
	if want := 0.375; heavy != want {
		t.Errorf("heavy query fraction %v, want %v", heavy, want)
	}
	if want := 0.125; light != want {
		t.Errorf("light query fraction %v, want %v", light, want)
	}
	// A grant share above desired is capped at desired.
	if f := grantFraction(0.2, 100, delta, 0.2*delta, granted, total, wtotal); f != 0.2 {
		t.Errorf("over-weighted query fraction %v, want cap at desired 0.2", f)
	}
	// Severe contention never starves a query below the floor.
	if f := grantFraction(0.5, 1, delta, 0.5*delta, 1, total, total); f != minSchedFraction {
		t.Errorf("starved query fraction %v, want floor %v", f, minSchedFraction)
	}
	// Idle queries (no arrivals) keep their desired fraction.
	if f := grantFraction(0.7, 1, 0, 0, granted, total, wtotal); f != 0.7 {
		t.Errorf("idle query fraction %v, want desired 0.7", f)
	}
}

// TestSchedulerGrowsStarvedQuery checks the feedback direction: with a
// generous budget and a tight error target, the scheduler must grow a
// query's fraction above its initial operating point when the observed
// error exceeds the target (the §4.2.1 loop lifted to query level).
func TestSchedulerGrowsStarvedQuery(t *testing.T) {
	bk := broker.New()
	if err := bk.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(43, 30000)
	if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Cluster:       bk,
		Topic:         "in",
		PollBackoff:   time.Millisecond,
		GlobalBudget:  1e9, // effectively unconstrained
		ScheduleEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A 30% sampling fraction on a noisy sum leaves a real, positive
	// error bound (at very small fractions single-sample strata report
	// a degenerate zero bound); an unreachably tight target then keeps
	// the query-level controller growing.
	id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second,
		Fraction: 0.3, TargetError: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.job(id)
	deadline := time.Now().Add(20 * time.Second)
	for currentFraction(j) <= 0.3 {
		if time.Now().After(deadline) {
			t.Fatalf("fraction stuck at %v despite error above target", currentFraction(j))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
