package server

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
)

// TestMetricsExpositionFormat is the golden test for saproxd's /metrics
// payload: a live server with one merged query must render every core
// family with correct HELP/TYPE metadata, well-formed sample lines, and
// internally consistent histogram series — and the whole payload must
// round-trip through the package's own parser, which is what `saprox
// status` consumes.
func TestMetricsExpositionFormat(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(3, 6000)
	if _, err := broker.ProduceEvents(b, "in", events); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: b, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qi := postQuery(t, ts.URL, `{"kind":"sum","window":"2s","slide":"1s","fraction":0.5,"seed":5,"target_error":0.04}`)
	waitForResults(t, ts.URL, qi.ID, 2, 15*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var raw strings.Builder
	sc, err := metrics.ParseText(io.TeeReader(resp.Body, &raw))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	text := raw.String()

	// Golden family metadata: every core family with its TYPE.
	wantTypes := map[string]string{
		"saproxd_queries_active":           "gauge",
		"saproxd_windows_merged_total":     "counter",
		"saproxd_window_merge_seconds":     "histogram",
		"saproxd_query_observed_rel_error": "gauge",
		"saproxd_query_target_rel_error":   "gauge",
		"saproxd_query_lag_records":        "gauge",
		"saproxd_shard_records_total":      "counter",
		"saproxd_ingest_records_total":     "counter",
		"saproxd_delivery_queue_depth":     "gauge",
	}
	for fam, typ := range wantTypes {
		if got := sc.Types[fam]; got != typ {
			t.Errorf("TYPE %s = %q, want %q", fam, got, typ)
		}
		if sc.Help[fam] == "" {
			t.Errorf("HELP %s missing", fam)
		}
	}

	// Golden line shapes: exact exposition syntax for the key families.
	for _, re := range []string{
		`(?m)^saproxd_queries_active 1$`,
		`(?m)^saproxd_windows_merged_total\{query="` + qi.ID + `"\} \d+$`,
		`(?m)^saproxd_query_target_rel_error\{query="` + qi.ID + `"\} 0\.04$`,
		`(?m)^saproxd_window_merge_seconds_bucket\{le="\+Inf",query="` + qi.ID + `"\} \d+$`,
		`(?m)^saproxd_window_merge_seconds_count\{query="` + qi.ID + `"\} \d+$`,
		`(?m)^saproxd_window_merge_seconds_sum\{query="` + qi.ID + `"\} `,
	} {
		if !regexp.MustCompile(re).MatchString(text) {
			t.Errorf("exposition missing line matching %s", re)
		}
	}

	// Histogram coherence: buckets cumulative and non-decreasing, +Inf
	// bucket equals _count, and the quantile helper works on the scrape.
	m := metrics.Labels{"query": qi.ID}
	buckets := sc.Select("saproxd_window_merge_seconds_bucket", m)
	if len(buckets) < 2 {
		t.Fatalf("only %d merge-latency buckets", len(buckets))
	}
	sort.Slice(buckets, func(i, j int) bool {
		li, _ := parseLe(buckets[i].Labels["le"])
		lj, _ := parseLe(buckets[j].Labels["le"])
		return li < lj
	})
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Value < buckets[i-1].Value {
			t.Fatalf("bucket counts not cumulative: %v then %v", buckets[i-1], buckets[i])
		}
	}
	count, ok := sc.Value("saproxd_window_merge_seconds_count", m)
	if !ok || count <= 0 {
		t.Fatalf("merge histogram count = %v, ok=%v", count, ok)
	}
	if inf := buckets[len(buckets)-1]; inf.Labels["le"] != "+Inf" || inf.Value != count {
		t.Fatalf("+Inf bucket %v != count %v", inf, count)
	}
	if p99, ok := sc.Quantile("saproxd_window_merge_seconds", m, 0.99); !ok || p99 < 0 {
		t.Fatalf("p99 = %v, ok=%v", p99, ok)
	}

	// Observed error gauge is live and plausible (a relative error).
	if v, ok := sc.Value("saproxd_query_observed_rel_error", m); !ok || v <= 0 || v > 1 {
		t.Errorf("observed rel error = %v, ok=%v", v, ok)
	}

	// Deregistering must drop every per-query series from the payload.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/"+qi.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = dresp.Body.Close()
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	sc2, err := metrics.ParseText(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"saproxd_windows_merged_total",
		"saproxd_window_merge_seconds_bucket",
		"saproxd_query_observed_rel_error",
	} {
		if left := sc2.Select(fam, m); len(left) != 0 {
			t.Errorf("deregistered query still exposes %s: %v", fam, left)
		}
	}
}

// parseLe parses a bucket's le label ("+Inf" included).
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
