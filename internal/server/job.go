package server

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamapprox"
	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
	"streamapprox/internal/stream"
)

// A job is one registered query: one OASRS Session sink per partition
// fed by the shared ingest plane, and one merger fanning shard windows
// into the served result stream. Shards share nothing on the data path
// — the paper's synchronization-free parallel sampling — and the plane
// delivers every partition batch to all queries from a single topic
// read.
type job struct {
	id   string
	spec Spec
	srv  *Server

	// plane is the ingest plane the shards attach to: the server's
	// shared plane, or a private one under Config.PerQueryIngest (the
	// pre-shared-plane execution model, kept as a benchmark baseline).
	plane   *ingest
	private bool // plane is owned by this job

	shards []*shard
	done   chan struct{}
	// wg tracks catch-up goroutines launched for late attachment; stop
	// waits for them before flushing so no push races the flush.
	wg sync.WaitGroup

	// mu guards the merger and the served result state.
	mu      sync.Mutex
	merger  *merger
	results []MergedWindow // ring of recent results for /results polling
	seq     int64          // seq of the next merged window
	subs    map[int]chan MergedWindow
	nextSub int
	stopped bool
	relErr  float64 // EWMA of merged windows' relative error bound
	relSeen bool

	windowsMerged *metrics.Counter
	mergeLatency  *metrics.Gauge
	mergeHist     *metrics.Histogram
	partsDropped  *metrics.Counter
	lagGauge      *metrics.Gauge
	obsErrGauge   *metrics.Gauge
	targetGauge   *metrics.Gauge
}

// maxKept bounds the per-query result ring.
const maxKept = 4096

// shard is one partition's delivery sink for one query: the plane (or
// a catch-up consumer) pushes batches into its Session. It tracks the
// query's private delivery watermark — the next offset it needs —
// which is what checkpoints persist per query now that partition
// offsets are shared.
type shard struct {
	job *job
	idx int // shard index == partition

	// mu guards sess, offset, skipUntil and the watermark against the
	// checkpointer. records/sampled/lag are atomic so the merge path
	// and lag aggregation never nest shard and job locks.
	mu        sync.Mutex
	sess      *streamapprox.Session
	offset    int64 // delivery watermark: next offset to apply
	skipUntil int64 // drop plane records below this offset (late attach ahead of plane)
	watermark time.Time
	records   atomic.Int64
	sampled   atomic.Int64
	lag       atomic.Int64

	recordsMetric *metrics.Counter
	sampledMetric *metrics.Counter
	lateMetric    *metrics.Gauge
	lagMetric     *metrics.Gauge
}

// newJob builds a job and its shards. When restore is non-nil the
// shards resume from checkpointed sessions and delivery watermarks and
// the merger resumes its pending windows; otherwise shards start per
// spec.From.
func newJob(id string, spec Spec, srv *Server, restore *checkpointFile) (*job, error) {
	j := &job{
		id:    id,
		spec:  spec,
		srv:   srv,
		plane: srv.ing,
		done:  make(chan struct{}),
		subs:  make(map[int]chan MergedWindow),

		windowsMerged: srv.reg.Counter("saproxd_windows_merged_total",
			"windows merged across shards", metrics.Labels{"query": id}),
		mergeLatency: srv.reg.Gauge("saproxd_window_merge_latency_seconds",
			"wall-clock latency from first shard part to merged emission, last window",
			metrics.Labels{"query": id}),
		partsDropped: srv.reg.Counter("saproxd_window_parts_dropped_total",
			"shard window parts arriving after their window merged", metrics.Labels{"query": id}),
		lagGauge: srv.reg.Gauge("saproxd_query_lag_records",
			"records between the query's delivery watermarks and the partition high watermarks",
			metrics.Labels{"query": id}),
		mergeHist: srv.reg.Histogram("saproxd_window_merge_seconds",
			"wall-clock latency from first shard part to merged emission",
			metrics.Labels{"query": id}),
		obsErrGauge: srv.reg.Gauge("saproxd_query_observed_rel_error",
			"EWMA of merged windows' relative error bound", metrics.Labels{"query": id}),
		targetGauge: srv.reg.Gauge("saproxd_query_target_rel_error",
			"relative-error target the query was registered with", metrics.Labels{"query": id}),
	}
	target := spec.TargetError
	if target <= 0 {
		target = defaultSchedTarget
	}
	j.targetGauge.Set(target)
	if srv.cfg.PerQueryIngest {
		plane, err := newIngest(srv.cfg.Cluster, srv.cfg.DialShard, srv.cfg.Topic,
			j.group()+"-ingest", srv.parts, srv.cfg.PollBackoff,
			srv.cfg.QueueDepth, srv.cfg.CatchUpWorkers, srv.cfg.Logf,
			srv.reg, metrics.Labels{"query": id})
		if err != nil {
			return nil, fmt.Errorf("private ingest: %w", err)
		}
		j.plane = plane
		j.private = true
	}
	j.merger = newMerger(&j.spec, srv.parts, nil)
	for p := 0; p < srv.parts; p++ {
		sh := &shard{job: j, idx: p}
		labels := metrics.Labels{"query": id, "shard": strconv.Itoa(p)}
		sh.recordsMetric = srv.reg.Counter("saproxd_shard_records_total",
			"records consumed per shard", labels)
		sh.sampledMetric = srv.reg.Counter("saproxd_shard_samples_total",
			"items sampled into emitted windows per shard", labels)
		sh.lateMetric = srv.reg.Gauge("saproxd_shard_late_events",
			"late events dropped per shard", labels)
		sh.lagMetric = srv.reg.Gauge("saproxd_shard_lag_records",
			"records between shard position and partition high watermark", labels)
		j.shards = append(j.shards, sh)
	}

	if restore != nil {
		if err := j.restore(restore); err != nil {
			j.stopPrivatePlane()
			return nil, err
		}
		return j, nil
	}
	for _, sh := range j.shards {
		sh.sess = streamapprox.NewSession(j.sessionConfig(sh.idx))
		var err error
		switch spec.From {
		case "earliest":
			sh.offset = 0
		case "latest":
			sh.offset, err = srv.cfg.Cluster.HighWatermark(srv.cfg.Topic, sh.idx)
		default: // committed: resume the query's mirrored position (0 for fresh queries)
			sh.offset, err = srv.cfg.Cluster.Committed(j.group(), srv.cfg.Topic, sh.idx)
		}
		if err != nil {
			j.stopPrivatePlane()
			return nil, fmt.Errorf("shard %d start offset: %w", sh.idx, err)
		}
	}
	return j, nil
}

// sessionConfig is the spec's session config for one shard. With the
// cross-query budget scheduler enabled the per-shard adaptive
// controllers are disabled: the scheduler owns the feedback loop and a
// second, per-shard loop would fight its allocations.
func (j *job) sessionConfig(shard int) streamapprox.SessionConfig {
	cfg := j.spec.sessionConfig(shard)
	if j.srv.cfg.GlobalBudget > 0 {
		cfg.TargetError = 0
	}
	return cfg
}

// group is the job's consumer-group name on the broker (delivery
// watermarks are mirrored there for broker-tooling visibility).
func (j *job) group() string { return j.srv.cfg.Group + "-" + j.id }

// start attaches the shards to the ingest plane.
func (j *job) start() {
	for _, sh := range j.shards {
		sh.mu.Lock()
		from := sh.offset
		sh.mu.Unlock()
		j.plane.attach(j, sh, from)
	}
}

// stop detaches the shards from the plane and halts catch-up work.
// When flush is true every in-progress session segment and pending
// merge is forced out to subscribers first — the DELETE path; graceful
// server shutdown keeps them pending so a restart resumes from the
// checkpoint without double-emitting windows.
func (j *job) stop(flush bool) {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return
	}
	j.stopped = true
	j.mu.Unlock()
	close(j.done)
	for _, sh := range j.shards {
		j.plane.detach(sh)
	}
	j.wg.Wait()
	j.stopPrivatePlane()
	if flush {
		for _, sh := range j.shards {
			sh.mu.Lock()
			sh.deliver(sh.sess.Close(), time.Time{})
			sh.mu.Unlock()
		}
		j.mu.Lock()
		for _, fw := range j.merger.flush() {
			j.emitLocked(fw)
		}
		j.mu.Unlock()
	}
	j.mu.Lock()
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	j.mu.Unlock()
}

// stopPrivatePlane stops a per-query plane (no-op for the shared one).
func (j *job) stopPrivatePlane() {
	if j.private {
		j.plane.stop()
	}
}

// setFraction pushes a scheduler-granted sampling fraction into every
// shard session, taking effect at each session's next slide segment.
func (j *job) setFraction(f float64) {
	for _, sh := range j.shards {
		sh.mu.Lock()
		sh.sess.SetFraction(f)
		sh.mu.Unlock()
	}
}

// observedError returns the EWMA of merged windows' relative error
// bound, the current result sequence (so a caller can tell whether any
// NEW window contributed since it last looked), and whether any window
// has been observed at all.
func (j *job) observedError() (re float64, seq int64, seen bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.relErr, j.seq, j.relSeen
}

// emitLocked assigns the next sequence number and publishes one merged
// window. Callers hold j.mu.
func (j *job) emitLocked(fw firedWindow) {
	fw.result.Seq = j.seq
	fw.result.Query = j.id
	j.seq++
	j.results = append(j.results, fw.result)
	if len(j.results) > maxKept {
		j.results = j.results[len(j.results)-maxKept:]
	}
	j.windowsMerged.Inc()
	j.mergeLatency.Set(fw.latency.Seconds())
	j.mergeHist.Observe(fw.latency.Seconds())
	if v := math.Abs(fw.result.Value); v > 0 {
		re := fw.result.Error / v
		if j.relSeen {
			j.relErr = 0.5*re + 0.5*j.relErr
		} else {
			j.relErr = re
			j.relSeen = true
		}
		j.obsErrGauge.Set(j.relErr)
	}
	for _, ch := range j.subs {
		select {
		case ch <- fw.result:
		default: // slow subscriber: drop rather than stall the shard path
		}
	}
}

// isStopped reports whether stop has begun.
func (j *job) isStopped() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stopped
}

// resultsSince returns served results with Seq > since, oldest first.
func (j *job) resultsSince(since int64) []MergedWindow {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]MergedWindow, 0, len(j.results))
	for _, r := range j.results {
		if r.Seq > since {
			out = append(out, r)
		}
	}
	return out
}

// subscribe registers a live result channel; the returned cancel
// unregisters it. The channel is closed when the job stops.
func (j *job) subscribe() (<-chan MergedWindow, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextSub
	j.nextSub++
	ch := make(chan MergedWindow, 64)
	if j.stopped {
		close(ch)
		return ch, func() {}
	}
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
}

// maxWatermark returns the highest event-time watermark across shards.
func (j *job) maxWatermark() time.Time {
	var max time.Time
	for _, sh := range j.shards {
		sh.mu.Lock()
		if sh.watermark.After(max) {
			max = sh.watermark
		}
		sh.mu.Unlock()
	}
	return max
}

// setSkip arms the shard to drop plane records below offset — the
// From "latest" attach path, where the query joins the plane behind
// its requested start.
func (sh *shard) setSkip(offset int64) {
	sh.mu.Lock()
	if offset > sh.skipUntil {
		sh.skipUntil = offset
	}
	sh.mu.Unlock()
}

// consume implements ingestSink: apply one event-time sorted batch to
// the session and hand completed windows to the merger. The batch
// slice is shared with other queries' sinks and is never mutated. The
// whole application (push + watermark advance + merger delivery) runs
// under one sh.mu hold, so a checkpoint observes either all of a batch
// or none of it (no torn checkpoint).
func (sh *shard) consume(recs []broker.Record, next int64, hwm int64, haveHWM bool) {
	sh.mu.Lock()
	delivered := 0
	for i := range recs {
		r := &recs[i]
		if r.Offset < sh.skipUntil {
			continue
		}
		_ = sh.sess.Push(streamapprox.Event(broker.ToEvent(*r)))
		if r.Time.After(sh.watermark) {
			sh.watermark = r.Time
		}
		delivered++
	}
	sh.offset = next
	if sh.offset < sh.skipUntil {
		// Still skipping ahead to the requested start: the watermark to
		// resume from after a restart is the start, not the plane position.
		sh.offset = sh.skipUntil
	}
	if delivered > 0 {
		sh.records.Add(int64(delivered))
		sh.recordsMetric.Add(float64(delivered))
		sh.lateMetric.Set(float64(sh.sess.Late()))
		sh.sess.Advance(sh.watermark)
		sh.deliver(sh.sess.Poll(), sh.watermark)
	}
	offset := sh.offset
	sh.mu.Unlock()
	if haveHWM {
		lag := hwm - offset
		if lag < 0 {
			lag = 0
		}
		sh.lag.Store(lag)
		sh.lagMetric.Set(float64(lag))
		var total int64
		for _, peer := range sh.job.shards {
			total += peer.lag.Load()
		}
		sh.job.lagGauge.Set(float64(total))
	}
}

// consumeBatch is consume's columnar form: the shared, read-only
// EventBatch flows into the session's vectorized PushBatch instead of
// one Push per record. The skip-ahead clamp uses the batch's Base
// (plane offsets are consecutive within a batch): it drops exactly
// skipUntil-Base records, which is the same SET of records consume's
// per-offset check drops whenever the batch is in offset order — the
// overwhelmingly common case, since producers append in event-time
// order and a time sort then never permutes. A time-permuted batch can
// swap individual records across the attach boundary within the one
// straddling batch; counts, offsets and watermarks stay exact.
func (sh *shard) consumeBatch(b *stream.EventBatch, next int64, hwm int64, haveHWM bool) {
	n := b.Len()
	sh.mu.Lock()
	from := 0
	if sh.skipUntil > b.Base {
		from = int(sh.skipUntil - b.Base)
		if from > n {
			from = n
		}
	}
	delivered := n - from
	if delivered > 0 {
		_ = sh.sess.PushBatch(b, from, n)
		if mark := b.MaxTime(from, n); mark.After(sh.watermark) {
			sh.watermark = mark
		}
	}
	sh.offset = next
	if sh.offset < sh.skipUntil {
		// Still skipping ahead to the requested start: the watermark to
		// resume from after a restart is the start, not the plane position.
		sh.offset = sh.skipUntil
	}
	if delivered > 0 {
		sh.records.Add(int64(delivered))
		sh.recordsMetric.Add(float64(delivered))
		sh.lateMetric.Set(float64(sh.sess.Late()))
		sh.sess.Advance(sh.watermark)
		sh.deliver(sh.sess.Poll(), sh.watermark)
	}
	offset := sh.offset
	sh.mu.Unlock()
	if haveHWM {
		lag := hwm - offset
		if lag < 0 {
			lag = 0
		}
		sh.lag.Store(lag)
		sh.lagMetric.Set(float64(lag))
		var total int64
		for _, peer := range sh.job.shards {
			total += peer.lag.Load()
		}
		sh.job.lagGauge.Set(float64(total))
	}
}

// idleAdvance implements ingestSink: push an idle shard's session
// forward to the job-wide maximum watermark, flushing windows a
// sparsely keyed partition would otherwise hold back forever.
func (sh *shard) idleAdvance() {
	mark := sh.job.maxWatermark()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !mark.After(sh.watermark) {
		return
	}
	sh.watermark = mark
	sh.sess.Advance(mark)
	sh.deliver(sh.sess.Poll(), mark)
}

// deliver hands window results and the shard's watermark to the merger
// and publishes whatever fires. Callers hold sh.mu; deliver nests j.mu
// inside it (the lock order is plane → shard → job, and the
// checkpointer takes shard and job locks one at a time, so the order
// stays acyclic).
func (sh *shard) deliver(results []streamapprox.WindowResult, mark time.Time) {
	j := sh.job
	j.mu.Lock()
	for _, wr := range results {
		sh.noteSampled(wr)
		if j.merger.fired[wr.Start] {
			j.partsDropped.Inc()
			continue
		}
		for _, fw := range j.merger.offer(sh.idx, wr) {
			j.emitLocked(fw)
		}
	}
	if !mark.IsZero() {
		for _, fw := range j.merger.advance(sh.idx, mark) {
			j.emitLocked(fw)
		}
	}
	j.mu.Unlock()
}

// noteSampled accounts a window's sampled items to the shard metrics.
func (sh *shard) noteSampled(wr streamapprox.WindowResult) {
	sh.sampled.Add(int64(wr.Sampled))
	sh.sampledMetric.Add(float64(wr.Sampled))
}

// sleepOrDone pauses for d, returning false if done closed.
func sleepOrDone(done chan struct{}, d time.Duration) bool {
	if d <= 0 {
		select {
		case <-done:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}
