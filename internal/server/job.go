package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamapprox"
	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
)

// A job is one registered query: one consumer group on the topic, one
// shard worker per partition (each running its own OASRS Session), and
// one merger fanning shard windows into the served result stream. Shards
// share nothing on the data path — the paper's synchronization-free
// parallel sampling, stretched across consumer-group partitions.
type job struct {
	id   string
	spec Spec
	srv  *Server

	shards []*shard
	done   chan struct{}
	wg     sync.WaitGroup

	// fetchWG tracks in-flight prefetch goroutines, which may outlive
	// their shard loop; stop waits for them after closing the broker
	// connections (the close is what unblocks a stuck fetch).
	fetchWG sync.WaitGroup

	// mu guards the merger and the served result state.
	mu      sync.Mutex
	merger  *merger
	results []MergedWindow // ring of recent results for /results polling
	seq     int64          // seq of the next merged window
	subs    map[int]chan MergedWindow
	nextSub int
	stopped bool

	windowsMerged *metrics.Counter
	mergeLatency  *metrics.Gauge
	partsDropped  *metrics.Counter
}

// maxKept bounds the per-query result ring.
const maxKept = 4096

// shard is one partition worker feeding one Session. It manages its
// single partition's offset directly so the blocking Fetch can run
// outside sh.mu — only applying a fetched batch (push + offset advance +
// merger delivery) needs to be atomic against the checkpointer.
type shard struct {
	job     *job
	idx     int // shard index == partition
	cluster broker.Cluster
	conn    io.Closer // dedicated broker connection, nil when shared

	// mu guards sess, offset and the watermark against the
	// checkpointer. records/sampled are atomic so the merge path never
	// nests shard and job locks. offset is written only by the shard
	// loop (and restore, before start).
	mu        sync.Mutex
	sess      *streamapprox.Session
	offset    int64
	watermark time.Time
	records   atomic.Int64
	sampled   atomic.Int64

	recordsMetric *metrics.Counter
	sampledMetric *metrics.Counter
	lateMetric    *metrics.Gauge
	lagMetric     *metrics.Gauge
}

// newJob builds a job and its shards. When restore is non-nil the shards
// resume from checkpointed sessions and offsets and the merger resumes
// its pending windows; otherwise shards start per spec.From.
func newJob(id string, spec Spec, srv *Server, restore *checkpointFile) (*job, error) {
	j := &job{
		id:   id,
		spec: spec,
		srv:  srv,
		done: make(chan struct{}),
		subs: make(map[int]chan MergedWindow),

		windowsMerged: srv.reg.Counter("saproxd_windows_merged_total",
			"windows merged across shards", metrics.Labels{"query": id}),
		mergeLatency: srv.reg.Gauge("saproxd_window_merge_latency_seconds",
			"wall-clock latency from first shard part to merged emission, last window",
			metrics.Labels{"query": id}),
		partsDropped: srv.reg.Counter("saproxd_window_parts_dropped_total",
			"shard window parts arriving after their window merged", metrics.Labels{"query": id}),
	}
	j.merger = newMerger(&j.spec, srv.parts, nil)
	for p := 0; p < srv.parts; p++ {
		cluster := srv.cfg.Cluster
		var closer io.Closer
		if srv.cfg.DialShard != nil {
			c, err := srv.cfg.DialShard()
			if err != nil {
				j.closeShardConns()
				return nil, fmt.Errorf("shard %d dial: %w", p, err)
			}
			cluster = c
			closer, _ = c.(io.Closer)
		}
		sh := &shard{job: j, idx: p, cluster: cluster, conn: closer}
		labels := metrics.Labels{"query": id, "shard": strconv.Itoa(p)}
		sh.recordsMetric = srv.reg.Counter("saproxd_shard_records_total",
			"records consumed per shard", labels)
		sh.sampledMetric = srv.reg.Counter("saproxd_shard_samples_total",
			"items sampled into emitted windows per shard", labels)
		sh.lateMetric = srv.reg.Gauge("saproxd_shard_late_events",
			"late events dropped per shard", labels)
		sh.lagMetric = srv.reg.Gauge("saproxd_shard_lag_records",
			"records between shard position and partition high watermark", labels)
		j.shards = append(j.shards, sh)
	}

	if restore != nil {
		if err := j.restore(restore); err != nil {
			j.closeShardConns()
			return nil, err
		}
		return j, nil
	}
	for _, sh := range j.shards {
		sh.sess = streamapprox.NewSession(spec.sessionConfig(sh.idx))
		var err error
		switch spec.From {
		case "earliest":
			sh.offset = 0
		case "latest":
			sh.offset, err = sh.cluster.HighWatermark(srv.cfg.Topic, sh.idx)
		default: // committed: resume the group position (0 for fresh groups)
			sh.offset, err = sh.cluster.Committed(j.group(), srv.cfg.Topic, sh.idx)
		}
		if err != nil {
			j.closeShardConns()
			return nil, fmt.Errorf("shard %d start offset: %w", sh.idx, err)
		}
	}
	return j, nil
}

// group is the job's consumer-group name on the broker.
func (j *job) group() string { return j.srv.cfg.Group + "-" + j.id }

// start launches the shard workers.
func (j *job) start() {
	for _, sh := range j.shards {
		j.wg.Add(1)
		go sh.loop()
	}
}

// stop halts the shard workers. When flush is true every in-progress
// session segment and pending merge is forced out to subscribers first —
// the DELETE path; graceful server shutdown keeps them pending so a
// restart resumes from the checkpoint without double-emitting windows.
func (j *job) stop(flush bool) {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return
	}
	j.stopped = true
	j.mu.Unlock()
	close(j.done)
	j.wg.Wait()
	if flush {
		for _, sh := range j.shards {
			sh.mu.Lock()
			sh.deliver(sh.sess.Close(), time.Time{})
			sh.mu.Unlock()
		}
		j.mu.Lock()
		for _, fw := range j.merger.flush() {
			j.emitLocked(fw)
		}
		j.mu.Unlock()
	}
	j.mu.Lock()
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	j.mu.Unlock()
	j.closeShardConns()
	j.fetchWG.Wait()
}

// closeShardConns closes any dedicated per-shard broker connections.
func (j *job) closeShardConns() {
	for _, sh := range j.shards {
		if sh.conn != nil {
			_ = sh.conn.Close()
			sh.conn = nil
		}
	}
}

// emitLocked assigns the next sequence number and publishes one merged
// window. Callers hold j.mu.
func (j *job) emitLocked(fw firedWindow) {
	fw.result.Seq = j.seq
	fw.result.Query = j.id
	j.seq++
	j.results = append(j.results, fw.result)
	if len(j.results) > maxKept {
		j.results = j.results[len(j.results)-maxKept:]
	}
	j.windowsMerged.Inc()
	j.mergeLatency.Set(fw.latency.Seconds())
	for _, ch := range j.subs {
		select {
		case ch <- fw.result:
		default: // slow subscriber: drop rather than stall the shard path
		}
	}
}

// isStopped reports whether stop has begun.
func (j *job) isStopped() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stopped
}

// resultsSince returns served results with Seq > since, oldest first.
func (j *job) resultsSince(since int64) []MergedWindow {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]MergedWindow, 0, len(j.results))
	for _, r := range j.results {
		if r.Seq > since {
			out = append(out, r)
		}
	}
	return out
}

// subscribe registers a live result channel; the returned cancel
// unregisters it. The channel is closed when the job stops.
func (j *job) subscribe() (<-chan MergedWindow, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextSub
	j.nextSub++
	ch := make(chan MergedWindow, 64)
	if j.stopped {
		close(ch)
		return ch, func() {}
	}
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
}

// maxWatermark returns the highest event-time watermark across shards.
func (j *job) maxWatermark() time.Time {
	var max time.Time
	for _, sh := range j.shards {
		sh.mu.Lock()
		if sh.watermark.After(max) {
			max = sh.watermark
		}
		sh.mu.Unlock()
	}
	return max
}

// fetchMax bounds one fetch's record count.
const fetchMax = 4096

// fetchResult is one completed (pre)fetch round for a shard.
type fetchResult struct {
	recs []broker.Record
	err  error
}

// loop is the shard worker: fetch the partition (no locks held — the
// fetch may be a network round trip), apply the batch to the session,
// and hand completed windows to the merger. Fetches are double
// buffered: as soon as a batch lands, the fetch for the next offset is
// issued in the background so the broker round-trip for batch N+1
// overlaps pushing batch N through the session (the pipelined broker
// client lets both requests share one connection). On an idle partition
// the shard adopts the peers' watermark so gap windows still merge
// (idle-partition punctuation).
func (sh *shard) loop() {
	defer sh.job.wg.Done()
	cfg := sh.job.srv.cfg
	idle := 0
	results := make(chan fetchResult, 1)
	inflight := false
	issue := func(offset int64) {
		inflight = true
		sh.job.fetchWG.Add(1)
		go func() {
			defer sh.job.fetchWG.Done()
			recs, err := sh.cluster.Fetch(cfg.Topic, sh.idx, offset, fetchMax)
			results <- fetchResult{recs: recs, err: err}
		}()
	}
	sh.mu.Lock()
	next := sh.offset
	sh.mu.Unlock()
	for {
		if !inflight {
			issue(next)
		}
		var fr fetchResult
		select {
		case <-sh.job.done:
			return
		case fr = <-results:
			inflight = false
		}
		if fr.err != nil {
			if !sleepOrDone(sh.job.done, cfg.PollBackoff) {
				return
			}
			continue
		}
		if len(fr.recs) == 0 {
			idle++
			if idle >= idleAdvanceAfter {
				sh.advanceIdle()
			}
			if !sleepOrDone(sh.job.done, cfg.PollBackoff) {
				return
			}
			continue
		}
		idle = 0
		recs := fr.recs
		offset := next
		next += int64(len(recs))
		// Prefetch the next batch before touching this one.
		issue(next)

		// Present the batch in event-time order, as a time-synchronized
		// aggregator would deliver it.
		sort.SliceStable(recs, func(i, k int) bool { return recs[i].Time.Before(recs[k].Time) })

		// Apply atomically w.r.t. the checkpointer: push + offset
		// advance + merger delivery under one sh.mu hold, so a window
		// drained from the session already sits in the merger when a
		// checkpoint can observe either (no torn checkpoint).
		sh.mu.Lock()
		for _, r := range recs {
			_ = sh.sess.Push(streamapprox.Event(broker.ToEvent(r)))
			if r.Time.After(sh.watermark) {
				sh.watermark = r.Time
			}
		}
		sh.offset = offset + int64(len(recs))
		sh.records.Add(int64(len(recs)))
		sh.recordsMetric.Add(float64(len(recs)))
		sh.lateMetric.Set(float64(sh.sess.Late()))
		sh.sess.Advance(sh.watermark)
		sh.deliver(sh.sess.Poll(), sh.watermark)
		sh.mu.Unlock()

		if hwm, err := sh.cluster.HighWatermark(cfg.Topic, sh.idx); err == nil {
			sh.lagMetric.Set(float64(hwm - (offset + int64(len(recs)))))
		}
	}
}

// idleAdvanceAfter is the number of consecutive empty polls after which
// an idle shard adopts the peers' watermark. High enough that a shard
// that has merely caught up with a live producer does not race ahead and
// drop the producer's next records as late.
const idleAdvanceAfter = 10

// advanceIdle pushes an idle shard's session forward to the job-wide
// maximum watermark, flushing windows a sparsely keyed partition would
// otherwise hold back forever.
func (sh *shard) advanceIdle() {
	mark := sh.job.maxWatermark()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !mark.After(sh.watermark) {
		return
	}
	sh.watermark = mark
	sh.sess.Advance(mark)
	sh.deliver(sh.sess.Poll(), mark)
}

// deliver hands window results and the shard's watermark to the merger
// and publishes whatever fires. Callers hold sh.mu; deliver nests j.mu
// inside it (the one place the two locks nest — the checkpointer takes
// them one at a time, so the order stays acyclic).
func (sh *shard) deliver(results []streamapprox.WindowResult, mark time.Time) {
	j := sh.job
	j.mu.Lock()
	for _, wr := range results {
		sh.noteSampled(wr)
		if j.merger.fired[wr.Start] {
			j.partsDropped.Inc()
			continue
		}
		for _, fw := range j.merger.offer(sh.idx, wr) {
			j.emitLocked(fw)
		}
	}
	if !mark.IsZero() {
		for _, fw := range j.merger.advance(sh.idx, mark) {
			j.emitLocked(fw)
		}
	}
	j.mu.Unlock()
}

// noteSampled accounts a window's sampled items to the shard metrics.
func (sh *shard) noteSampled(wr streamapprox.WindowResult) {
	sh.sampled.Add(int64(wr.Sampled))
	sh.sampledMetric.Add(float64(wr.Sampled))
}

// sleepOrDone pauses for d, returning false if the job stopped.
func sleepOrDone(done chan struct{}, d time.Duration) bool {
	if d <= 0 {
		select {
		case <-done:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}
