package server

import (
	"fmt"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/faults"
	"streamapprox/internal/stream"
)

// The chaos acceptance test: a 3-broker cluster where EVERY byte —
// client→broker and broker→broker — crosses a faults.Proxy, so one
// member can be asymmetrically partitioned (its inbound traffic
// stalled with connections held open, the failure mode kill() cannot
// produce) while a live query and a produce stream ride through.

// chaosCluster is a proxy-fronted brokerCluster: peers and clients are
// given the PROXY addresses, never the real listen addresses.
type chaosCluster struct {
	brokers []*broker.Broker
	servers []*broker.Server
	nodes   []*broker.ClusterNode
	proxies []*faults.Proxy
	ids     []string
	addrs   []string // proxy addresses — the cluster's advertised identity
}

// Short timeouts everywhere: the point of the chaos plane is that no
// RPC outlives its deadline, so detection depends on these, not on TCP
// giving up.
const (
	chaosHeartbeat    = 20 * time.Millisecond
	chaosProbeTimeout = 200 * time.Millisecond
	chaosRPCTimeout   = 500 * time.Millisecond
)

func startChaosCluster(t *testing.T, members int) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{}
	peers := make(map[string]string, members)
	for i := 0; i < members; i++ {
		b := broker.New()
		srv, err := broker.Serve(b, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p, err := faults.NewProxy("127.0.0.1:0", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		peers[id] = p.Addr()
		cc.brokers = append(cc.brokers, b)
		cc.servers = append(cc.servers, srv)
		cc.proxies = append(cc.proxies, p)
		cc.ids = append(cc.ids, id)
		cc.addrs = append(cc.addrs, p.Addr())
	}
	for i := 0; i < members; i++ {
		node, err := broker.NewClusterNode(cc.brokers[i], broker.NodeConfig{
			ID:             cc.ids[i],
			Peers:          peers,
			Replicas:       2,
			MinISR:         2,
			HeartbeatEvery: chaosHeartbeat,
			FailAfter:      3,
			ProbeTimeout:   chaosProbeTimeout,
			RPCTimeout:     chaosRPCTimeout,
			DialTimeout:    chaosRPCTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		cc.servers[i].AttachNode(node)
		cc.nodes = append(cc.nodes, node)
	}
	for _, n := range cc.nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for i := range cc.servers {
			cc.nodes[i].Close()
			cc.servers[i].Close()
			cc.brokers[i].Close()
			_ = cc.proxies[i].Close()
		}
	})
	return cc
}

func (cc *chaosCluster) indexOf(t *testing.T, id string) int {
	for i, nid := range cc.ids {
		if nid == id {
			return i
		}
	}
	t.Fatalf("unknown node id %q", id)
	return -1
}

func (cc *chaosCluster) clientOptions() broker.ClusterClientOptions {
	return broker.ClusterClientOptions{
		Retries:        30,
		Backoff:        5 * time.Millisecond,
		DialTimeout:    chaosRPCTimeout,
		RequestTimeout: chaosRPCTimeout,
	}
}

func (cc *chaosCluster) dial(t *testing.T) *broker.ClusterClient {
	t.Helper()
	c, err := broker.DialClusterWithOptions(cc.addrs, cc.clientOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestClusterAsymmetricPartitionNoLossNoDup blackholes the partition-0
// leader's proxy mid-stream: its connections stay open but every byte
// in or out of it stalls. The cluster must detect the silence through
// probe deadlines (not connection errors — there are none), promote a
// follower within a bounded time, and the live query must end with no
// lost and no duplicated windows while no produce call wedges.
func TestClusterAsymmetricPartitionNoLossNoDup(t *testing.T) {
	bc := startChaosCluster(t, 3)
	cc := bc.dial(t)
	if err := cc.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{
		Cluster: cc,
		DialShard: func() (broker.Cluster, error) {
			return broker.DialClusterWithOptions(bc.addrs, bc.clientOptions())
		},
		Topic:       "in",
		PollBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.job(id)

	events := makeEvents(31, 24000)
	toRecords := func(evs []stream.Event) []broker.Record {
		out := make([]broker.Record, len(evs))
		for i, e := range evs {
			out[i] = broker.FromEvent(e)
		}
		return out
	}
	// Every produce call must finish inside the client's retry budget:
	// per-attempt work is bounded by the request timeout, backoff is
	// capped, so a stalled leader costs seconds — never a wedge.
	const produceBound = 20 * time.Second
	var maxProduce time.Duration
	produce := func(evs []stream.Event) {
		t.Helper()
		start := time.Now()
		if _, err := cc.Produce("in", toRecords(evs)); err != nil {
			t.Fatalf("produce: %v", err)
		}
		if d := time.Since(start); d > maxProduce {
			maxProduce = d
			if d > produceBound {
				t.Fatalf("produce blocked %v (> %v): deadline not enforced", d, produceBound)
			}
		}
	}

	half := len(events) / 2
	for off := 0; off < half; off += 1000 {
		produce(events[off : off+1000])
	}

	m, err := cc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	oldLeader := m.LeaderOf("in", 0)
	if oldLeader == "" {
		t.Fatal("no leader for partition 0")
	}
	victim := bc.indexOf(t, oldLeader)
	faultAt := time.Now()
	bc.proxies[victim].Set(faults.Both, faults.Faults{Blackhole: true})
	t.Logf("blackholed %s (proxy %s), connections held open", oldLeader, bc.addrs[victim])

	// The produce stream rides straight through the partition: stalled
	// RPCs hit their deadlines, the client refreshes its metadata and
	// retries against the promoted leader.
	for off := half; off < len(events); off += 1000 {
		produce(events[off : off+1000])
	}

	// Promotion must be observed within a bounded window for every
	// partition the silenced node led. The detector has no RST or EOF
	// to go on — only probes timing out — so this asserts the deadline
	// path end to end.
	const failoverBound = 10 * time.Second
	deadline := time.Now().Add(failoverBound)
	for {
		m, err = cc.Meta()
		if err == nil {
			l0, l1 := m.LeaderOf("in", 0), m.LeaderOf("in", 1)
			if l0 != oldLeader && l0 != "" && l1 != oldLeader && l1 != "" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion within %v of blackhole: %+v", failoverBound, m)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("failover completed %v after blackhole (max produce latency %v)",
		time.Since(faultAt).Round(time.Millisecond), maxProduce.Round(time.Millisecond))

	// The query must consume every produced record exactly once — the
	// ingest watchdog reroutes the stalled partition consumer; acked
	// records replicated to the survivors are all there.
	total := int64(len(events))
	deadline = time.Now().Add(30 * time.Second)
	for {
		var consumed int64
		for _, sh := range j.shards {
			consumed += sh.records.Load()
		}
		if consumed == total {
			break
		}
		if consumed > total {
			t.Fatalf("query consumed %d records, produced only %d (duplication)", consumed, total)
		}
		if time.Now().After(deadline) {
			t.Fatalf("query consumed %d of %d records before deadline (loss)", consumed, total)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Served windows: unique, and gap-free across the covered span.
	deadline = time.Now().Add(10 * time.Second)
	var results []MergedWindow
	for {
		results = j.resultsSince(-1)
		if len(results) >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d windows merged", len(results))
		}
		time.Sleep(10 * time.Millisecond)
	}
	seen := map[time.Time]bool{}
	var minStart, maxStart time.Time
	for _, r := range results {
		if seen[r.Start] {
			t.Fatalf("window %v served twice", r.Start)
		}
		seen[r.Start] = true
		if minStart.IsZero() || r.Start.Before(minStart) {
			minStart = r.Start
		}
		if r.Start.After(maxStart) {
			maxStart = r.Start
		}
	}
	for at := minStart; !at.After(maxStart); at = at.Add(time.Second) {
		if !seen[at] {
			t.Fatalf("window starting %v missing between %v and %v", at, minStart, maxStart)
		}
	}
}

// TestClusterFollowerStallShrinksISR slows a FOLLOWER to a crawl (its
// proxy stalls inbound replication pushes). The leader's bounded push
// must time out, count failures, and eject the follower from the ISR
// instead of wedging every produce behind the slow replica.
func TestClusterFollowerStallShrinksISR(t *testing.T) {
	bc := startChaosCluster(t, 3)
	cc := bc.dial(t)
	if err := cc.CreateTopic("in", 1); err != nil {
		t.Fatal(err)
	}
	warm := makeEvents(5, 1000)
	recs := make([]broker.Record, len(warm))
	for i, e := range warm {
		recs[i] = broker.FromEvent(e)
	}
	if _, err := cc.Produce("in", recs); err != nil {
		t.Fatal(err)
	}
	m, err := cc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	leader := m.LeaderOf("in", 0)
	if leader == "" {
		t.Fatal("no leader")
	}
	// Pick the partition's follower: a replica of partition 0 that is
	// not the leader.
	var follower string
	for _, r := range m.ReplicasOf("in", 0) {
		if r != leader {
			follower = r
			break
		}
	}
	if follower == "" {
		t.Fatal("no follower for partition 0")
	}
	bc.proxies[bc.indexOf(t, follower)].Set(faults.Both, faults.Faults{Blackhole: true})

	// Produces must keep completing: the stalled follower is ejected
	// after its pushes exhaust their deadlines, not waited on forever.
	// (MinISR is 2 of 2, so produces stall-then-succeed once the dead
	// follower's partitions re-replicate to the third member.)
	deadline := time.Now().Add(20 * time.Second)
	for {
		start := time.Now()
		_, err := cc.Produce("in", recs[:100])
		if took := time.Since(start); took > 20*time.Second {
			t.Fatalf("produce blocked %v behind a stalled follower", took)
		}
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("produce never recovered after follower stall: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
