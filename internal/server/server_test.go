package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// makeEvents builds a deterministic ms-spaced stream with enough strata
// to touch every partition of a 4-way topic.
func makeEvents(seed uint64, n int) []stream.Event {
	rng := xrand.New(seed)
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	events := make([]stream.Event, n)
	for i := range events {
		events[i] = stream.Event{
			Stratum: fmt.Sprintf("s%02d", i%16),
			Value:   rng.Gaussian(100, 15),
			Time:    base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return events
}

// exactWindowSums computes the ground-truth sliding-window sums.
func exactWindowSums(events []stream.Event, size, slide time.Duration) map[time.Time]float64 {
	out := make(map[time.Time]float64)
	for _, e := range events {
		last := e.Time.Truncate(slide)
		for start := last; start.After(e.Time.Add(-size)); start = start.Add(-slide) {
			out[start] += e.Value
		}
	}
	return out
}

func postQuery(t *testing.T, url string, spec string) queryInfo {
	t.Helper()
	resp, err := http.Post(url+"/v1/queries", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %s: %s", resp.Status, body)
	}
	var qi queryInfo
	if err := json.Unmarshal(body, &qi); err != nil {
		t.Fatal(err)
	}
	return qi
}

func getResults(t *testing.T, url, id string, since int64) []MergedWindow {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/queries/%s/results?since=%d", url, id, since))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var out []MergedWindow
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func waitForResults(t *testing.T, url, id string, min int, deadline time.Duration) []MergedWindow {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		results := getResults(t, url, id, -1)
		if len(results) >= min {
			return results
		}
		if time.Now().After(stop) {
			t.Fatalf("only %d results after %v, want >= %d", len(results), deadline, min)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServedSumQueryMergesShards is the acceptance path: a 4-partition
// topic, one OASRS worker per partition, merged per-window sums with
// combined error bounds, verified against ground truth, with /healthz
// and per-shard /metrics reporting.
func TestServedSumQueryMergesShards(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", 4); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(11, 20000) // 20s of data
	if _, err := broker.ProduceEvents(b, "in", events); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Cluster: b, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Partitions() != 4 {
		t.Fatalf("partitions = %d", s.Partitions())
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qi := postQuery(t, ts.URL, `{"kind":"sum","window":"4s","slide":"2s","fraction":0.5,"seed":7}`)
	if qi.Shards != 4 {
		t.Fatalf("query info = %+v", qi)
	}

	results := waitForResults(t, ts.URL, qi.ID, 5, 15*time.Second)
	exact := exactWindowSums(events, 4*time.Second, 2*time.Second)
	base := events[0].Time
	last := events[len(events)-1].Time
	checked := 0
	for _, r := range results {
		want, ok := exact[r.Start]
		if !ok || r.Start.Before(base) || r.End.After(last) {
			continue // edge windows see a truncated population
		}
		checked++
		if r.Error <= 0 {
			t.Errorf("window %v: error bound %v not positive", r.Start, r.Error)
		}
		if loss := math.Abs(r.Value-want) / want; loss > 0.1 {
			t.Errorf("window %v: merged %v vs exact %v (loss %.3f)", r.Start, r.Value, want, loss)
		}
		if r.Items != 4000 {
			t.Errorf("window %v: items %d, want 4000 (events lost across shards)", r.Start, r.Items)
		}
		if r.Sampled <= 0 || r.Sampled >= int(r.Items) {
			t.Errorf("window %v: sampled %d of %d — not approximating", r.Start, r.Sampled, r.Items)
		}
		if r.Shards != 4 {
			t.Errorf("window %v: merged from %d shards, want 4", r.Start, r.Shards)
		}
	}
	if checked < 4 {
		t.Fatalf("checked only %d interior windows", checked)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Seq != results[i-1].Seq+1 {
			t.Errorf("seq gap: %d then %d", results[i-1].Seq, results[i].Seq)
		}
		if results[i].Start.Equal(results[i-1].Start) {
			t.Errorf("window %v emitted twice", results[i].Start)
		}
	}

	// Health and metrics surfaces.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&health)
	_ = resp.Body.Close()
	if health["status"] != "ok" || health["partitions"] != float64(4) {
		t.Errorf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	for shard := 0; shard < 4; shard++ {
		want := fmt.Sprintf(`saproxd_shard_records_total{query=%q,shard="%d"}`, qi.ID, shard)
		if !bytes.Contains(metricsText, []byte(want)) {
			t.Errorf("metrics missing %s", want)
		}
		wantSamples := fmt.Sprintf(`saproxd_shard_samples_total{query=%q,shard="%d"}`, qi.ID, shard)
		if !bytes.Contains(metricsText, []byte(wantSamples)) {
			t.Errorf("metrics missing %s", wantSamples)
		}
	}
	for _, want := range []string{
		"saproxd_windows_merged_total",
		"saproxd_window_merge_latency_seconds",
		"saproxd_queries_active 1",
	} {
		if !bytes.Contains(metricsText, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Deletion flushes and removes the query.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/queries/"+qi.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %s", resp.Status)
	}
	if _, ok := s.job(qi.ID); ok {
		t.Error("query still registered after delete")
	}
	// The tenant's metric series must be gone after deregistration.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if bytes.Contains(metricsText, []byte(`query="`+qi.ID+`"`)) {
		t.Errorf("metrics still carry series for deleted %s", qi.ID)
	}
}

// TestServedGroupByMeanMergesGroups checks the group-by path across
// shards: keyed partitioning pins each stratum to one partition, and the
// merged result must carry every group.
func TestServedGroupByMeanMergesGroups(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", 4); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(13, 12000)
	if _, err := broker.ProduceEvents(b, "in", events); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: b, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qi := postQuery(t, ts.URL, `{"kind":"groupby-mean","window":"4s","slide":"4s","fraction":0.6}`)
	results := waitForResults(t, ts.URL, qi.ID, 2, 15*time.Second)
	interior := 0
	for _, r := range results {
		if r.Items < 3000 {
			continue
		}
		interior++
		if len(r.Groups) != 16 {
			t.Errorf("window %v: %d groups, want 16", r.Start, len(r.Groups))
		}
		for k, g := range r.Groups {
			if math.Abs(g.Value-100) > 15 {
				t.Errorf("window %v group %s: mean %v far from 100", r.Start, k, g.Value)
			}
		}
	}
	if interior == 0 {
		t.Fatal("no full windows merged")
	}
}

// TestResultsLongPollWakesOnMerge checks ?wait: a request arriving
// before any window has merged must block and return results once the
// first merge lands, not time out empty.
func TestResultsLongPollWakesOnMerge(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: b, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qi := postQuery(t, ts.URL, `{"kind":"sum","window":"2s","slide":"1s","fraction":0.8}`)
	done := make(chan []MergedWindow, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/queries/" + qi.ID + "/results?since=-1&wait=10s")
		if err != nil {
			done <- nil
			return
		}
		defer func() { _ = resp.Body.Close() }()
		var out []MergedWindow
		_ = json.NewDecoder(resp.Body).Decode(&out)
		done <- out
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park
	if _, err := broker.ProduceEvents(b, "in", makeEvents(29, 6000)); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-done:
		if len(out) == 0 {
			t.Fatal("long poll returned empty after results merged")
		}
	case <-time.After(12 * time.Second):
		t.Fatal("long poll never returned")
	}
}

// TestStreamEndpointDeliversLiveResults exercises /stream: results
// produced after the subscription must arrive as NDJSON lines.
func TestStreamEndpointDeliversLiveResults(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: b, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qi := postQuery(t, ts.URL, `{"kind":"mean","window":"2s","slide":"1s","fraction":0.8}`)

	resp, err := http.Get(ts.URL + "/v1/queries/" + qi.ID + "/stream?since=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()

	// Produce after the stream is open.
	if _, err := broker.ProduceEvents(b, "in", makeEvents(17, 8000)); err != nil {
		t.Fatal(err)
	}

	type lineResult struct {
		ok  bool
		mws []MergedWindow
	}
	ch := make(chan lineResult, 1)
	go func() {
		dec := json.NewDecoder(resp.Body)
		var got []MergedWindow
		for len(got) < 3 {
			var mw MergedWindow
			if err := dec.Decode(&mw); err != nil {
				ch <- lineResult{false, got}
				return
			}
			got = append(got, mw)
		}
		ch <- lineResult{true, got}
	}()
	select {
	case lr := <-ch:
		if !lr.ok {
			t.Fatalf("stream ended after %d results", len(lr.mws))
		}
		for i, mw := range lr.mws {
			if mw.Seq != int64(i) {
				t.Errorf("stream seq[%d] = %d", i, mw.Seq)
			}
			if mw.Query != qi.ID {
				t.Errorf("stream result for %q", mw.Query)
			}
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no streamed results within deadline")
	}
}
