package server

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/metrics"
)

// countingCluster wraps a Cluster and counts broker fetch operations —
// the cost the shared ingest plane exists to amortize.
type countingCluster struct {
	broker.Cluster
	fetches atomic.Int64
}

func (c *countingCluster) Fetch(topic string, partition int, offset int64, max int) ([]broker.Record, error) {
	c.fetches.Add(1)
	return c.Cluster.Fetch(topic, partition, offset, max)
}

// jobRecords sums a query's consumed records across shards.
func jobRecords(j *job) int64 {
	var n int64
	for _, sh := range j.shards {
		n += sh.records.Load()
	}
	return n
}

// waitJobRecords blocks until the query has consumed want records.
func waitJobRecords(t *testing.T, j *job, want int64, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		if n := jobRecords(j); n >= want {
			return
		}
		if time.Now().After(stop) {
			t.Fatalf("query %s consumed %d of %d within %v", j.id, jobRecords(j), want, deadline)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fetchOpsForQueries runs n identical queries over the same produced
// topic until all have consumed everything, and returns the broker
// fetch-op count at that point.
func fetchOpsForQueries(t *testing.T, n int, perQuery bool) int64 {
	t.Helper()
	bk := broker.New()
	if err := bk.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(23, 12000)
	if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
		t.Fatal(err)
	}
	cc := &countingCluster{Cluster: bk}
	s, err := New(Config{Cluster: cc, Topic: "in", PollBackoff: 2 * time.Millisecond, PerQueryIngest: perQuery})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var jobs []*job
	for i := 0; i < n; i++ {
		id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second,
			Fraction: 0.5, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		j, _ := s.job(id)
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitJobRecords(t, j, int64(len(events)), 20*time.Second)
	}
	return cc.fetches.Load()
}

// TestSharedPlaneAmortizesFetches is the tentpole property: broker
// fetch work must not scale with the query count. Eight concurrent
// queries on the shared plane must cost a small multiple of one
// query's fetches (catch-up reads and idle-poll timing account for the
// slack), and far less than the per-query-consumer baseline spends for
// the same work.
func TestSharedPlaneAmortizesFetches(t *testing.T) {
	one := fetchOpsForQueries(t, 1, false)
	shared := fetchOpsForQueries(t, 8, false)
	baseline := fetchOpsForQueries(t, 8, true)
	t.Logf("fetch ops: 1 query %d, 8 queries shared %d, 8 queries per-query %d", one, shared, baseline)
	if shared > 3*one+100 {
		t.Errorf("shared plane fetches scale with queries: 1 query %d, 8 queries %d", one, shared)
	}
	if shared*2 > baseline {
		t.Errorf("shared plane (%d fetches) not clearly cheaper than per-query baseline (%d)", shared, baseline)
	}
}

// TestLateRegistrationCatchesUpAndSplices registers a second query
// after the plane has consumed the backlog: the late query must replay
// the gap through its private catch-up consumer, splice into the live
// plane without loss or duplication, and then follow new records. Item
// counts per window must match the early query's exactly — a duplicate
// or lost record would show up as a diverging count.
func TestLateRegistrationCatchesUpAndSplices(t *testing.T) {
	bk := broker.New()
	if err := bk.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(31, 16000)
	half := len(events) / 2
	if _, err := broker.ProduceEvents(bk, "in", events[:half]); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: bk, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id1, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s.job(id1)
	waitJobRecords(t, j1, int64(half), 15*time.Second)

	// The plane is now at the end of the backlog; a late query from
	// "earliest" starts entirely behind it.
	id2, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second,
		Fraction: 0.5, From: "earliest", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := s.job(id2)
	waitJobRecords(t, j2, int64(half), 15*time.Second)

	// Feed the rest: the late query must receive it via the shared
	// plane after its splice.
	if _, err := broker.ProduceEvents(bk, "in", events[half:]); err != nil {
		t.Fatal(err)
	}
	waitJobRecords(t, j1, int64(len(events)), 15*time.Second)
	waitJobRecords(t, j2, int64(len(events)), 15*time.Second)
	// Settle, then check exact counts: an over-delivery would overshoot.
	time.Sleep(50 * time.Millisecond)
	if n := jobRecords(j1); n != int64(len(events)) {
		t.Errorf("early query consumed %d records, want exactly %d", n, len(events))
	}
	if n := jobRecords(j2); n != int64(len(events)) {
		t.Errorf("late query consumed %d records, want exactly %d (catch-up lost or duplicated)", n, len(events))
	}

	// Per-window item counts must agree between the two queries.
	items1 := map[time.Time]int64{}
	for _, r := range j1.resultsSince(-1) {
		items1[r.Start] = r.Items
	}
	compared := 0
	for _, r := range j2.resultsSince(-1) {
		want, ok := items1[r.Start]
		if !ok {
			continue
		}
		compared++
		if r.Items != want {
			t.Errorf("window %v: late query saw %d items, early query %d", r.Start, r.Items, want)
		}
	}
	if compared < 4 {
		t.Fatalf("only %d overlapping windows compared", compared)
	}
}

// TestFromLatestSkipsBacklog attaches a query at the high watermark
// while the plane is still chewing the backlog for an earlier query:
// the late query rides the shared plane but must drop every record
// below its requested start.
func TestFromLatestSkipsBacklog(t *testing.T) {
	bk := broker.New()
	if err := bk.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(37, 12000)
	half := len(events) / 2
	if _, err := broker.ProduceEvents(bk, "in", events[:half]); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: bk, Topic: "in", PollBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id1, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s.job(id1)
	id2, err := s.Register(Spec{Kind: "count", Window: 2 * time.Second, Slide: time.Second,
		Fraction: 0.5, From: "latest"})
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := s.job(id2)

	if _, err := broker.ProduceEvents(bk, "in", events[half:]); err != nil {
		t.Fatal(err)
	}
	waitJobRecords(t, j1, int64(len(events)), 15*time.Second)
	waitJobRecords(t, j2, int64(half), 15*time.Second)
	time.Sleep(50 * time.Millisecond)
	if n := jobRecords(j2); n != int64(half) {
		t.Errorf("latest query consumed %d records, want exactly %d (skip leaked backlog)", n, half)
	}
}

// TestSlowQuerySheddingNoLossNoDup forces delivery-queue overflows with
// a depth-1 queue over a large backlog: the shed/catch-up/re-splice
// cycle must still deliver every record to every query exactly once,
// and the shed counter must show the path actually ran.
func TestSlowQuerySheddingNoLossNoDup(t *testing.T) {
	bk := broker.New()
	if err := bk.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(29, 40000)
	if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Cluster:     bk,
		Topic:       "in",
		PollBackoff: time.Microsecond,
		QueueDepth:  1, // every second batch overflows while a drainer works
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var jobs []*job
	for i := 0; i < 3; i++ {
		id, err := s.Register(Spec{Kind: "sum", Window: 2 * time.Second, Slide: time.Second,
			Fraction: 0.5, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		j, _ := s.job(id)
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitJobRecords(t, j, int64(len(events)), 30*time.Second)
	}
	// Exactly once: consumed counts must not exceed the produced total.
	for _, j := range jobs {
		if n := jobRecords(j); n != int64(len(events)) {
			t.Fatalf("query %s consumed %d of %d records", j.id, n, len(events))
		}
	}
	// The depth-1 queue over a 40k backlog must actually have shed; a
	// zero here means the test stopped exercising the overflow path.
	var shed float64
	for _, j := range jobs {
		for p := 0; p < 2; p++ {
			labels := metrics.Labels{"query": j.id, "partition": strconv.Itoa(p)}
			shed += s.reg.Counter("saproxd_delivery_shed_total",
				"times the query overflowed its delivery queue and was shed to catch-up", labels).Value()
		}
	}
	if shed == 0 {
		t.Fatal("no delivery-queue shed occurred; overflow path untested")
	}
}

// TestCatchUpPoolBoundsConcurrency registers several queries against a
// deep backlog with a single-slot catch-up pool: the active-catch-up
// gauge must never exceed the bound, and every query must still finish.
func TestCatchUpPoolBoundsConcurrency(t *testing.T) {
	bk := broker.New()
	if err := bk.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := makeEvents(31, 30000)
	if _, err := broker.ProduceEvents(bk, "in", events); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Cluster:        bk,
		Topic:          "in",
		PollBackoff:    time.Millisecond,
		CatchUpWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The first query positions the plane at 0 and starts it moving;
	// the rest then register behind it and must replay through the
	// single-slot catch-up pool.
	var jobs []*job
	for i := 0; i < 5; i++ {
		id, err := s.Register(Spec{Kind: "count", Window: 2 * time.Second, Slide: time.Second,
			Fraction: 0.5, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		j, _ := s.job(id)
		jobs = append(jobs, j)
		if i == 0 {
			waitJobRecords(t, j, 4096, 10*time.Second) // let the plane run ahead
		}
	}
	gauge := s.reg.Gauge("saproxd_catchup_active",
		"late-registration catch-up consumers currently running", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, j := range jobs {
			waitJobRecords(t, j, int64(len(events)), 30*time.Second)
		}
	}()
	for {
		select {
		case <-done:
			for _, j := range jobs {
				if n := jobRecords(j); n != int64(len(events)) {
					t.Fatalf("query %s consumed %d of %d", j.id, n, len(events))
				}
			}
			return
		default:
		}
		if v := gauge.Value(); v > 1 {
			t.Fatalf("catch-up pool bound violated: %v active", v)
		}
		time.Sleep(time.Millisecond)
	}
}
