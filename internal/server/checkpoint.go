package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"streamapprox"
)

// Shard checkpointing: every CheckpointEvery the server persists, per
// query, each shard's Session snapshot (the public fault-tolerance API)
// together with its consumer offset, plus the merger's partially merged
// windows and the result sequence counter. A restarted saproxd re-reads
// the checkpoint directory, re-registers every query and resumes exactly
// where the shards left off — offsets, in-flight reservoirs, pending
// windows and sequence numbers all recover.

const checkpointVersion = 1

// checkpointFile is the on-disk form of one query's state.
type checkpointFile struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	Spec    Spec   `json:"spec"`
	Seq     int64  `json:"seq"`

	Shards  []shardCheckpoint   `json:"shards"`
	Pending []pendingCheckpoint `json:"pending,omitempty"`
	Marks   []time.Time         `json:"marks,omitempty"`
	// Fired lists recently merged window starts so a restarted merger
	// keeps suppressing shard stragglers for windows already served.
	Fired []time.Time `json:"fired,omitempty"`
}

// shardCheckpoint is one shard's resumable state.
type shardCheckpoint struct {
	Partition int             `json:"partition"`
	Offset    int64           `json:"offset"`
	Watermark time.Time       `json:"watermark"`
	Records   int64           `json:"records"`
	Sampled   int64           `json:"sampled"`
	Session   json.RawMessage `json:"session"`
}

// pendingCheckpoint is one partially merged window: the per-shard parts
// received so far (nil for shards that have not reported).
type pendingCheckpoint struct {
	Start   time.Time                    `json:"start"`
	FirstAt time.Time                    `json:"firstAt"`
	Parts   []*streamapprox.WindowResult `json:"parts"`
}

// checkpoint captures the job's state. Shard locks and the job lock are
// taken one at a time, never nested, so the data path stays unblocked.
func (j *job) checkpoint() (*checkpointFile, error) {
	cf := &checkpointFile{
		Version: checkpointVersion,
		ID:      j.id,
		Spec:    j.spec,
	}
	for _, sh := range j.shards {
		sh.mu.Lock()
		snap, err := sh.sess.Snapshot()
		if err != nil {
			sh.mu.Unlock()
			return nil, fmt.Errorf("shard %d snapshot: %w", sh.idx, err)
		}
		offset := sh.offset
		wm := sh.watermark
		sh.mu.Unlock()
		cf.Shards = append(cf.Shards, shardCheckpoint{
			Partition: sh.idx,
			Offset:    offset,
			Watermark: wm,
			Records:   sh.records.Load(),
			Sampled:   sh.sampled.Load(),
			Session:   snap,
		})
		// Best effort, outside sh.mu (it is a network round trip):
		// mirror the offset into the broker group so lag is observable
		// with broker tooling.
		_ = sh.cluster.Commit(j.group(), j.srv.cfg.Topic, sh.idx, offset)
	}
	j.mu.Lock()
	cf.Seq = j.seq
	cf.Marks = append([]time.Time(nil), j.merger.marks...)
	for start := range j.merger.fired {
		cf.Fired = append(cf.Fired, start)
	}
	sort.Slice(cf.Fired, func(i, k int) bool { return cf.Fired[i].Before(cf.Fired[k]) })
	starts := make([]time.Time, 0, len(j.merger.pending))
	for start := range j.merger.pending {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, k int) bool { return starts[i].Before(starts[k]) })
	for _, start := range starts {
		pm := j.merger.pending[start]
		cf.Pending = append(cf.Pending, pendingCheckpoint{
			Start:   start,
			FirstAt: pm.firstAt,
			Parts:   append([]*streamapprox.WindowResult(nil), pm.parts...),
		})
	}
	j.mu.Unlock()
	return cf, nil
}

// restore rebuilds the job's shards and merger from a checkpoint.
func (j *job) restore(cf *checkpointFile) error {
	byPart := make(map[int]shardCheckpoint, len(cf.Shards))
	for _, sc := range cf.Shards {
		byPart[sc.Partition] = sc
	}
	for _, sh := range j.shards {
		sc, ok := byPart[sh.idx]
		if !ok {
			// Partition added since the checkpoint: start it fresh.
			sh.sess = streamapprox.NewSession(j.spec.sessionConfig(sh.idx))
			continue
		}
		sess, err := streamapprox.RestoreSession(sc.Session)
		if err != nil {
			return fmt.Errorf("shard %d session: %w", sh.idx, err)
		}
		sh.sess = sess
		sh.watermark = sc.Watermark
		sh.records.Store(sc.Records)
		sh.recordsMetric.Add(float64(sc.Records))
		sh.sampled.Store(sc.Sampled)
		sh.sampledMetric.Add(float64(sc.Sampled))
		sh.offset = sc.Offset
	}
	j.seq = cf.Seq
	for _, start := range cf.Fired {
		j.merger.fired[start] = true
	}
	for i, mark := range cf.Marks {
		if i < len(j.merger.marks) {
			j.merger.marks[i] = mark
		}
	}
	for _, pc := range cf.Pending {
		pm := &pendingMerge{
			parts:   make([]*streamapprox.WindowResult, j.srv.parts),
			firstAt: pc.FirstAt,
		}
		for i, p := range pc.Parts {
			if i >= len(pm.parts) {
				break
			}
			if p != nil {
				pm.parts[i] = p
				pm.got++
			}
		}
		j.merger.pending[pc.Start] = pm
	}
	return nil
}

// checkpointPath is dir/<id>.json.
func checkpointPath(dir, id string) string {
	return filepath.Join(dir, id+".json")
}

// saveCheckpoint writes the checkpoint atomically (temp file + rename).
func saveCheckpoint(dir string, cf *checkpointFile) error {
	data, err := json.Marshal(cf)
	if err != nil {
		return fmt.Errorf("marshal checkpoint %s: %w", cf.ID, err)
	}
	tmp, err := os.CreateTemp(dir, cf.ID+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), checkpointPath(dir, cf.ID))
}

// loadCheckpoints reads every query checkpoint in dir, sorted by id.
func loadCheckpoints(dir string) ([]*checkpointFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []*checkpointFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var cf checkpointFile
		if err := json.Unmarshal(data, &cf); err != nil {
			return nil, fmt.Errorf("checkpoint %s: %w", e.Name(), err)
		}
		if cf.Version != checkpointVersion {
			return nil, fmt.Errorf("checkpoint %s: unsupported version %d", e.Name(), cf.Version)
		}
		out = append(out, &cf)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}
