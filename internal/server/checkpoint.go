package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"streamapprox"
)

// Checkpointing under the shared ingest plane splits into two halves:
//
//   - the SHARED half (ingestStateFile): the plane's per-partition
//     offsets — one set for the whole server, since every query rides
//     the same consumer per partition;
//   - the PER-QUERY half (<id>.json): each query's delivery watermarks
//     (the next offset each shard needs), Session snapshots, and the
//     merger's partially merged windows plus the result sequence
//     counter.
//
// A restarted saproxd re-reads the directory, re-positions the plane
// from the shared offsets, re-registers every query, and re-attaches
// each one at its own watermark: queries behind the plane replay the
// gap through the catch-up path, queries ahead of it skip — so a kill
// -9 restart neither loses nor duplicates records for any query, even
// when the crash tore between the shared and per-query files.

const checkpointVersion = 2

// ingestStateFile holds the shared half; the leading underscore keeps
// it out of the per-query checkpoint glob.
const ingestStateFile = "_ingest.json"

// ingestState is the on-disk form of the shared plane position.
type ingestState struct {
	Version int     `json:"version"`
	Topic   string  `json:"topic"`
	Offsets []int64 `json:"offsets"` // per partition; -1 = never positioned
}

// checkpointFile is the on-disk form of one query's state.
type checkpointFile struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	Spec    Spec   `json:"spec"`
	Seq     int64  `json:"seq"`

	Shards  []shardCheckpoint   `json:"shards"`
	Pending []pendingCheckpoint `json:"pending,omitempty"`
	Marks   []time.Time         `json:"marks,omitempty"`
	// Fired lists recently merged window starts so a restarted merger
	// keeps suppressing shard stragglers for windows already served.
	Fired []time.Time `json:"fired,omitempty"`
}

// shardCheckpoint is one shard's resumable state. Offset is the
// query's private delivery watermark: the next offset this query needs
// from the partition (version 1 wrote the per-query consumer offset
// here, which means the same thing, so v1 files restore unchanged).
type shardCheckpoint struct {
	Partition int             `json:"partition"`
	Offset    int64           `json:"offset"`
	Watermark time.Time       `json:"watermark"`
	Records   int64           `json:"records"`
	Sampled   int64           `json:"sampled"`
	Session   json.RawMessage `json:"session"`
}

// pendingCheckpoint is one partially merged window: the per-shard parts
// received so far (nil for shards that have not reported).
type pendingCheckpoint struct {
	Start   time.Time                    `json:"start"`
	FirstAt time.Time                    `json:"firstAt"`
	Parts   []*streamapprox.WindowResult `json:"parts"`
}

// checkpoint captures the job's state. Shard locks and the job lock are
// taken one at a time, never nested, so the data path stays unblocked.
func (j *job) checkpoint() (*checkpointFile, error) {
	cf := &checkpointFile{
		Version: checkpointVersion,
		ID:      j.id,
		Spec:    j.spec,
	}
	for _, sh := range j.shards {
		sh.mu.Lock()
		snap, err := sh.sess.Snapshot()
		if err != nil {
			sh.mu.Unlock()
			return nil, fmt.Errorf("shard %d snapshot: %w", sh.idx, err)
		}
		offset := sh.offset
		wm := sh.watermark
		sh.mu.Unlock()
		cf.Shards = append(cf.Shards, shardCheckpoint{
			Partition: sh.idx,
			Offset:    offset,
			Watermark: wm,
			Records:   sh.records.Load(),
			Sampled:   sh.sampled.Load(),
			Session:   snap,
		})
		// Best effort, outside sh.mu (it is a network round trip):
		// mirror the delivery watermark into the query's broker group so
		// per-query lag is observable with broker tooling.
		_ = j.srv.cfg.Cluster.Commit(j.group(), j.srv.cfg.Topic, sh.idx, offset)
	}
	j.mu.Lock()
	cf.Seq = j.seq
	cf.Marks = append([]time.Time(nil), j.merger.marks...)
	for start := range j.merger.fired {
		cf.Fired = append(cf.Fired, start)
	}
	sort.Slice(cf.Fired, func(i, k int) bool { return cf.Fired[i].Before(cf.Fired[k]) })
	starts := make([]time.Time, 0, len(j.merger.pending))
	for start := range j.merger.pending {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, k int) bool { return starts[i].Before(starts[k]) })
	for _, start := range starts {
		pm := j.merger.pending[start]
		cf.Pending = append(cf.Pending, pendingCheckpoint{
			Start:   start,
			FirstAt: pm.firstAt,
			Parts:   append([]*streamapprox.WindowResult(nil), pm.parts...),
		})
	}
	j.mu.Unlock()
	return cf, nil
}

// restore rebuilds the job's shards and merger from a checkpoint.
func (j *job) restore(cf *checkpointFile) error {
	byPart := make(map[int]shardCheckpoint, len(cf.Shards))
	for _, sc := range cf.Shards {
		byPart[sc.Partition] = sc
	}
	for _, sh := range j.shards {
		sc, ok := byPart[sh.idx]
		if !ok {
			// Partition added since the checkpoint: start it fresh.
			sh.sess = streamapprox.NewSession(j.sessionConfig(sh.idx))
			continue
		}
		sess, err := streamapprox.RestoreSession(sc.Session)
		if err != nil {
			return fmt.Errorf("shard %d session: %w", sh.idx, err)
		}
		if j.srv.cfg.GlobalBudget > 0 {
			// Snapshots taken before the budget scheduler was enabled
			// still carry a TargetError; drop the restored per-shard
			// controller so it cannot fight the scheduler's grants
			// (mirrors j.sessionConfig for fresh sessions).
			sess.DisableAdaptive()
		}
		sh.sess = sess
		sh.watermark = sc.Watermark
		sh.records.Store(sc.Records)
		sh.recordsMetric.Add(float64(sc.Records))
		sh.sampled.Store(sc.Sampled)
		sh.sampledMetric.Add(float64(sc.Sampled))
		sh.offset = sc.Offset
	}
	j.seq = cf.Seq
	for _, start := range cf.Fired {
		j.merger.fired[start] = true
	}
	for i, mark := range cf.Marks {
		if i < len(j.merger.marks) {
			j.merger.marks[i] = mark
		}
	}
	for _, pc := range cf.Pending {
		pm := &pendingMerge{
			parts:   make([]*streamapprox.WindowResult, j.srv.parts),
			firstAt: pc.FirstAt,
		}
		for i, p := range pc.Parts {
			if i >= len(pm.parts) {
				break
			}
			if p != nil {
				pm.parts[i] = p
				pm.got++
			}
		}
		j.merger.pending[pc.Start] = pm
	}
	return nil
}

// checkpointPath is dir/<id>.json.
func checkpointPath(dir, id string) string {
	return filepath.Join(dir, id+".json")
}

// saveIngestState atomically persists the shared plane offsets.
func saveIngestState(dir, topic string, offsets []int64) error {
	data, err := json.Marshal(ingestState{Version: 1, Topic: topic, Offsets: offsets})
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, ingestStateFile, data)
}

// loadIngestState reads the shared plane offsets; a missing file or a
// topic mismatch yields nil (start unpositioned, not an error — the
// per-query watermarks alone are enough for a correct resume).
func loadIngestState(dir, topic string) ([]int64, error) {
	data, err := os.ReadFile(filepath.Join(dir, ingestStateFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var st ingestState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("ingest state: %w", err)
	}
	// An unknown version or foreign topic falls back to the documented
	// unpositioned start rather than interpreting offsets whose
	// semantics may have changed — the per-query watermarks alone are
	// enough for a correct (catch-up based) resume.
	if st.Version != 1 || st.Topic != topic {
		return nil, nil
	}
	return st.Offsets, nil
}

// saveCheckpoint writes one query's checkpoint atomically.
func saveCheckpoint(dir string, cf *checkpointFile) error {
	data, err := json.Marshal(cf)
	if err != nil {
		return fmt.Errorf("marshal checkpoint %s: %w", cf.ID, err)
	}
	return writeFileAtomic(dir, cf.ID+".json", data)
}

// writeFileAtomic writes dir/name via temp file + rename.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// loadCheckpoints reads every query checkpoint in dir, sorted by id.
// Files starting with "_" (the shared ingest state) are skipped.
func loadCheckpoints(dir string) ([]*checkpointFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []*checkpointFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var cf checkpointFile
		if err := json.Unmarshal(data, &cf); err != nil {
			return nil, fmt.Errorf("checkpoint %s: %w", e.Name(), err)
		}
		// v1 (per-query consumer offsets) restores as v2: the offset
		// fields carry the same "next offset this query needs" meaning.
		if cf.Version != checkpointVersion && cf.Version != 1 {
			return nil, fmt.Errorf("checkpoint %s: unsupported version %d", e.Name(), cf.Version)
		}
		out = append(out, &cf)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}
