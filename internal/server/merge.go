package server

import (
	"sort"
	"time"

	"streamapprox"
	"streamapprox/internal/estimate"
)

// The merger combines per-shard window results into one served result
// per window. Shards own disjoint partitions, so their windows cover
// disjoint slices of the stream and merge with the disjoint-population
// algebra of internal/estimate: totals add values and variances, means
// weight parts by observed item counts (estimate.MergeSums/MergeMeans).
//
// A window fires as soon as every shard has contributed, or — for idle
// or sparsely keyed partitions that will never contribute — once every
// shard's event-time watermark has passed the window end by a full
// slide, at which point no shard can still deliver a part for it.

// PointEstimate is one served estimate: value ± error at a confidence
// level.
type PointEstimate struct {
	Value float64 `json:"value"`
	Error float64 `json:"error"`
}

// BucketEstimate is one served histogram bucket.
type BucketEstimate struct {
	Lo    float64       `json:"lo"`
	Hi    float64       `json:"hi"`
	Count PointEstimate `json:"count"`
}

// MergedWindow is one per-window result merged across all shards — the
// unit streamed to subscribers and returned from /results.
type MergedWindow struct {
	Seq        int64                    `json:"seq"`
	Query      string                   `json:"query"`
	Start      time.Time                `json:"start"`
	End        time.Time                `json:"end"`
	Value      float64                  `json:"value"`
	Error      float64                  `json:"error"`
	Confidence string                   `json:"confidence"`
	Items      int64                    `json:"items"`
	Sampled    int                      `json:"sampled"`
	Shards     int                      `json:"shards"`
	Groups     map[string]PointEstimate `json:"groups,omitempty"`
	Buckets    []BucketEstimate         `json:"buckets,omitempty"`
}

// pendingMerge accumulates per-shard parts for one window start.
type pendingMerge struct {
	parts   []*streamapprox.WindowResult // indexed by shard
	got     int
	firstAt time.Time // wall clock of the first part, for merge latency
}

// merger is the per-query fan-in. It is not safe for concurrent use;
// the job serializes access under its own lock.
type merger struct {
	spec    *Spec
	shards  int
	pending map[time.Time]*pendingMerge
	marks   []time.Time // per-shard event-time watermark
	fired   map[time.Time]bool
	now     func() time.Time
}

func newMerger(spec *Spec, shards int, now func() time.Time) *merger {
	if now == nil {
		now = time.Now
	}
	return &merger{
		spec:    spec,
		shards:  shards,
		pending: make(map[time.Time]*pendingMerge),
		marks:   make([]time.Time, shards),
		fired:   make(map[time.Time]bool),
		now:     now,
	}
}

// mergeLatency is the wall-clock age of a fired window's oldest part.
type firedWindow struct {
	result  MergedWindow
	latency time.Duration
}

// offer adds one shard's result for a window and returns any windows the
// contribution completed.
func (m *merger) offer(shard int, wr streamapprox.WindowResult) []firedWindow {
	if m.fired[wr.Start] {
		return nil // straggler for an already-merged window
	}
	pm, ok := m.pending[wr.Start]
	if !ok {
		pm = &pendingMerge{parts: make([]*streamapprox.WindowResult, m.shards), firstAt: m.now()}
		m.pending[wr.Start] = pm
	}
	if pm.parts[shard] == nil {
		pm.got++
	}
	w := wr
	pm.parts[shard] = &w
	if pm.got == m.shards {
		return []firedWindow{m.fire(wr.Start, pm)}
	}
	return nil
}

// advance records a shard's event-time watermark and fires every pending
// window that no shard can still contribute to: end + slide at or before
// the minimum watermark (one slide of slack because a session only emits
// a window once event time enters a later segment).
func (m *merger) advance(shard int, mark time.Time) []firedWindow {
	if !mark.After(m.marks[shard]) {
		return nil
	}
	m.marks[shard] = mark
	min := m.marks[0]
	for _, t := range m.marks[1:] {
		if t.Before(min) {
			min = t
		}
	}
	if min.IsZero() {
		return nil
	}
	var out []firedWindow
	for start, pm := range m.pending {
		if !start.Add(m.spec.Window + m.spec.Slide).After(min) {
			out = append(out, m.fire(start, pm))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].result.Start.Before(out[j].result.Start) })
	m.prune(min)
	return out
}

// flush fires every pending window regardless of completeness — the
// end-of-life path when a query is deleted.
func (m *merger) flush() []firedWindow {
	out := make([]firedWindow, 0, len(m.pending))
	for start, pm := range m.pending {
		out = append(out, m.fire(start, pm))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].result.Start.Before(out[j].result.Start) })
	return out
}

func (m *merger) fire(start time.Time, pm *pendingMerge) firedWindow {
	delete(m.pending, start)
	m.fired[start] = true
	parts := make([]*streamapprox.WindowResult, 0, pm.got)
	for _, p := range pm.parts {
		if p != nil {
			parts = append(parts, p)
		}
	}
	return firedWindow{
		result:  m.mergeParts(start, parts),
		latency: m.now().Sub(pm.firstAt),
	}
}

// prune drops fired-window bookkeeping that can no longer see
// stragglers: anything older than the minimum watermark by more than a
// window plus two slides.
func (m *merger) prune(min time.Time) {
	horizon := min.Add(-(m.spec.Window + 2*m.spec.Slide))
	for start := range m.fired {
		if start.Before(horizon) {
			delete(m.fired, start)
		}
	}
}

// mergeParts combines the contributing shards' results for one window.
func (m *merger) mergeParts(start time.Time, parts []*streamapprox.WindowResult) MergedWindow {
	conf := internalConfidence(m.spec.confidence())
	out := MergedWindow{
		Start:      start,
		End:        start.Add(m.spec.Window),
		Confidence: conf.String(),
		Shards:     len(parts),
	}
	for _, p := range parts {
		out.Items += p.Items
		out.Sampled += p.Sampled
	}

	mean := m.spec.Kind == "mean" || m.spec.Kind == "groupby-mean"
	overall := make([]estimate.Estimate, len(parts))
	weights := make([]int64, len(parts))
	for i, p := range parts {
		overall[i] = toInternal(p.Overall, conf)
		weights[i] = p.Items
	}
	var merged estimate.Estimate
	if mean {
		merged = estimate.MergeMeans(overall, weights)
	} else {
		merged = estimate.MergeSums(overall)
	}
	out.Value, out.Error = merged.Value, merged.Bound

	// Group-by: merge per group key. Under keyed partitioning a stratum
	// lives on exactly one partition, so most keys see a single part;
	// same-key parts from several shards merge with the same algebra,
	// weighted by the per-group item counts the sessions report.
	keys := map[string]bool{}
	for _, p := range parts {
		for k := range p.Groups {
			keys[k] = true
		}
	}
	if len(keys) > 0 {
		out.Groups = make(map[string]PointEstimate, len(keys))
		for k := range keys {
			var ests []estimate.Estimate
			var counts []int64
			for _, p := range parts {
				g, ok := p.Groups[k]
				if !ok {
					continue
				}
				ests = append(ests, toInternal(g, conf))
				counts = append(counts, p.GroupItems[k])
			}
			var ge estimate.Estimate
			if mean {
				ge = estimate.MergeMeans(ests, counts)
			} else {
				ge = estimate.MergeSums(ests)
			}
			out.Groups[k] = PointEstimate{Value: ge.Value, Error: ge.Bound}
		}
	}

	// Histograms share bucket edges across shards: collect each bucket's
	// per-shard estimates and merge once, like the groups above.
	var bucketEsts [][]estimate.Estimate
	for _, p := range parts {
		if len(p.Buckets) == 0 {
			continue
		}
		if out.Buckets == nil {
			out.Buckets = make([]BucketEstimate, len(p.Buckets))
			bucketEsts = make([][]estimate.Estimate, len(p.Buckets))
			for i, b := range p.Buckets {
				out.Buckets[i] = BucketEstimate{Lo: b.Lo, Hi: b.Hi}
			}
		}
		for i, b := range p.Buckets {
			if i >= len(out.Buckets) {
				break
			}
			bucketEsts[i] = append(bucketEsts[i], toInternal(b.Count, conf))
		}
	}
	for i, ests := range bucketEsts {
		sum := estimate.MergeSums(ests)
		out.Buckets[i].Count = PointEstimate{Value: sum.Value, Error: sum.Bound}
	}
	return out
}

// toInternal recovers an internal estimate (with variance) from a public
// one via its bound.
func toInternal(e streamapprox.Estimate, conf estimate.Confidence) estimate.Estimate {
	return estimate.FromBound(e.Value, e.Bound, conf)
}

// internalConfidence converts the public confidence enum.
func internalConfidence(c streamapprox.Confidence) estimate.Confidence {
	switch c {
	case streamapprox.Confidence68:
		return estimate.Conf68
	case streamapprox.Confidence997:
		return estimate.Conf997
	default:
		return estimate.Conf95
	}
}
