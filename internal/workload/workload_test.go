package workload

import (
	"context"
	"math"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func TestGenerateRatesAndOrder(t *testing.T) {
	rng := xrand.New(1)
	events := Generate(rng, 2*time.Second, PaperGaussian(1000, 500, 100)...)
	if len(events) != 2*(1000+500+100) {
		t.Fatalf("generated %d events", len(events))
	}
	counts := map[string]int{}
	for i, e := range events {
		counts[e.Stratum]++
		if i > 0 && e.Time.Before(events[i-1].Time) {
			t.Fatal("events out of time order")
		}
	}
	if counts["A"] != 2000 || counts["B"] != 1000 || counts["C"] != 200 {
		t.Errorf("per-stream counts = %v", counts)
	}
}

func TestGenerateZeroRateSkipped(t *testing.T) {
	rng := xrand.New(2)
	events := Generate(rng, time.Second, Substream{Name: "x", Dist: Gaussian{Mu: 1, Sigma: 0}, Rate: 0})
	if len(events) != 0 {
		t.Errorf("zero-rate sub-stream generated %d events", len(events))
	}
}

func TestPaperGaussianMoments(t *testing.T) {
	rng := xrand.New(3)
	events := Generate(rng, 10*time.Second, PaperGaussian(3000, 3000, 3000)...)
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, e := range events {
		sums[e.Stratum] += e.Value
		counts[e.Stratum]++
	}
	wants := map[string]float64{"A": 10, "B": 1000, "C": 10000}
	for s, want := range wants {
		mean := sums[s] / counts[s]
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("sub-stream %s mean = %v, want ≈%v", s, mean, want)
		}
	}
}

func TestPaperPoissonMoments(t *testing.T) {
	rng := xrand.New(4)
	events := Generate(rng, 3*time.Second, PaperPoisson(2000, 2000, 200)...)
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, e := range events {
		sums[e.Stratum] += e.Value
		counts[e.Stratum]++
	}
	if mean := sums["A"] / counts["A"]; math.Abs(mean-10) > 0.5 {
		t.Errorf("Poisson A mean = %v", mean)
	}
	if mean := sums["C"] / counts["C"]; math.Abs(mean-1e8)/1e8 > 0.001 {
		t.Errorf("Poisson C mean = %v", mean)
	}
}

func TestSkewGaussianProportions(t *testing.T) {
	rng := xrand.New(5)
	events := Generate(rng, 5*time.Second, SkewGaussian(10000)...)
	counts := map[string]float64{}
	for _, e := range events {
		counts[e.Stratum]++
	}
	total := counts["A"] + counts["B"] + counts["C"]
	if share := counts["A"] / total; math.Abs(share-0.80) > 0.01 {
		t.Errorf("A share = %v, want 0.80", share)
	}
	if share := counts["C"] / total; math.Abs(share-0.01) > 0.005 {
		t.Errorf("C share = %v, want 0.01", share)
	}
}

func TestSkewPoissonRareStratumPresent(t *testing.T) {
	rng := xrand.New(6)
	events := Generate(rng, 10*time.Second, SkewPoisson(10000)...)
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Stratum]++
	}
	if counts["C"] == 0 {
		t.Error("rare sub-stream C absent — skew generator must keep it alive")
	}
	if counts["C"] >= counts["B"]/100 {
		t.Errorf("C not rare enough: %v vs B %v", counts["C"], counts["B"])
	}
}

func TestNetFlowMixAndSizes(t *testing.T) {
	rng := xrand.New(7)
	events := NetFlowEvents(rng, 200000, 10*time.Second)
	if len(events) != 200000 {
		t.Fatalf("generated %d", len(events))
	}
	counts := map[string]float64{}
	sums := map[string]float64{}
	for i, e := range events {
		counts[e.Stratum]++
		sums[e.Stratum] += e.Value
		if e.Value <= 0 {
			t.Fatalf("non-positive flow size %v", e.Value)
		}
		if i > 0 && e.Time.Before(events[i-1].Time) {
			t.Fatal("netflow events out of order")
		}
	}
	total := float64(len(events))
	if share := counts["tcp"] / total; math.Abs(share-0.623) > 0.01 {
		t.Errorf("tcp share = %v", share)
	}
	if share := counts["icmp"] / total; math.Abs(share-0.015) > 0.005 {
		t.Errorf("icmp share = %v", share)
	}
	// TCP mean flow size must dominate ICMP's.
	if sums["tcp"]/counts["tcp"] <= sums["icmp"]/counts["icmp"] {
		t.Error("tcp flows should be larger than icmp flows on average")
	}
}

func TestNetFlowEmpty(t *testing.T) {
	if got := NetFlowEvents(xrand.New(1), 0, time.Second); got != nil {
		t.Errorf("n=0 produced %d events", len(got))
	}
}

func TestNetFlowSubstreams(t *testing.T) {
	subs := NetFlowSubstreams(10000)
	if len(subs) != 3 {
		t.Fatalf("%d substreams", len(subs))
	}
	if subs[0].Rate != 6230 || subs[2].Rate != 150 {
		t.Errorf("rates = %d, %d", subs[0].Rate, subs[2].Rate)
	}
}

func TestTaxiBoroughSkewAndDistances(t *testing.T) {
	rng := xrand.New(8)
	events := TaxiEvents(rng, 300000, 10*time.Second)
	counts := map[string]float64{}
	sums := map[string]float64{}
	for _, e := range events {
		counts[e.Stratum]++
		sums[e.Stratum] += e.Value
		if e.Value < 0.1 {
			t.Fatalf("trip distance %v below floor", e.Value)
		}
	}
	total := float64(len(events))
	if share := counts["manhattan"] / total; share < 0.85 {
		t.Errorf("manhattan share = %v, want ≈0.878", share)
	}
	if counts["ewr"] == 0 {
		t.Error("rare borough ewr absent")
	}
	// EWR (Newark) runs must be much longer than Manhattan hops.
	if sums["ewr"]/counts["ewr"] < 3*(sums["manhattan"]/counts["manhattan"]) {
		t.Error("ewr trips should be far longer than manhattan trips")
	}
}

func TestTaxiSubstreamsAndNames(t *testing.T) {
	subs := TaxiSubstreams(100000)
	if len(subs) != 6 {
		t.Fatalf("%d substreams", len(subs))
	}
	names := BoroughNames()
	if len(names) != 6 || names[0] != "manhattan" {
		t.Errorf("BoroughNames = %v", names)
	}
	for _, s := range subs {
		if s.Rate < 1 {
			t.Errorf("substream %s has rate %d", s.Name, s.Rate)
		}
	}
}

func TestUniformAndLogNormal(t *testing.T) {
	rng := xrand.New(9)
	u := Uniform{Lo: 5, Hi: 10}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 5 || v >= 10 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	ln := LogNormal{Mu: 0, Sigma: 1}
	for i := 0; i < 1000; i++ {
		if ln.Sample(rng) <= 0 {
			t.Fatal("lognormal produced non-positive value")
		}
	}
	// Overflow guard.
	big := LogNormal{Mu: 1000, Sigma: 0}
	if v := big.Sample(rng); math.IsInf(v, 1) {
		t.Error("lognormal overflowed to +Inf")
	}
}

func TestReplayerIntoBroker(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", 2); err != nil {
		t.Fatal(err)
	}
	events := NetFlowEvents(xrand.New(10), 1000, time.Second)
	r := &Replayer{ItemsPerMessage: 200}
	n, err := r.Replay(context.Background(), b, "in", events)
	if err != nil || n != 1000 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	var total int64
	for p := 0; p < 2; p++ {
		hwm, _ := b.HighWatermark("in", p)
		total += hwm
	}
	if total != 1000 {
		t.Errorf("broker holds %d records", total)
	}
}

func TestReplayerPacing(t *testing.T) {
	b := broker.New()
	_ = b.CreateTopic("in", 1)
	events := make([]stream.Event, 30)
	for i := range events {
		events[i] = stream.Event{Stratum: "s", Value: 1, Time: Epoch}
	}
	r := &Replayer{MessagesPerSecond: 1000, ItemsPerMessage: 10}
	start := time.Now()
	if _, err := r.Replay(context.Background(), b, "in", events); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("pacing too fast: 3 messages at 1000 msg/s took %v", elapsed)
	}
}

func TestReplayerCancellation(t *testing.T) {
	b := broker.New()
	_ = b.CreateTopic("in", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	events := make([]stream.Event, 100)
	r := &Replayer{MessagesPerSecond: 10, ItemsPerMessage: 10}
	if _, err := r.Replay(ctx, b, "in", events); err == nil {
		t.Error("cancelled replay should return an error")
	}
}
