package workload

import (
	"time"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// Taxi synthesizes the NYC taxi case-study dataset (§6.3). The paper used
// the DEBS 2015 Grand Challenge dataset (all rides of 10,000 NYC taxis in
// 2013) with each trip's start coordinate mapped to one of the six
// boroughs, and the query "average trip distance per start borough per
// sliding window". The synthetic generator reproduces:
//
//   - strong borough popularity skew (Manhattan dominates NYC yellow-cab
//     pickups; EWR and Staten Island are vanishingly rare strata);
//   - per-borough trip-distance distributions (short intra-Manhattan
//     hops vs long airport runs from EWR).
//
// Stratum = start borough, Value = trip distance in miles.

// borough describes one pickup stratum.
type borough struct {
	name  string
	share float64
	dist  Distribution
}

// boroughs is ordered by descending popularity; shares sum to 1.
func boroughs() []borough {
	return []borough{
		{name: "manhattan", share: 0.8780, dist: LogNormal{Mu: 0.75, Sigma: 0.55}},    // median ≈2.1 mi
		{name: "brooklyn", share: 0.0640, dist: LogNormal{Mu: 1.10, Sigma: 0.60}},     // median ≈3.0 mi
		{name: "queens", share: 0.0500, dist: LogNormal{Mu: 2.20, Sigma: 0.45}},       // airport trips, ≈9 mi
		{name: "bronx", share: 0.0050, dist: LogNormal{Mu: 1.30, Sigma: 0.55}},        // ≈3.7 mi
		{name: "staten-island", share: 0.0020, dist: LogNormal{Mu: 1.80, Sigma: 0.5}}, // ≈6 mi
		{name: "ewr", share: 0.0010, dist: Gaussian{Mu: 17, Sigma: 3}},                // Newark runs
	}
}

// TaxiEvents generates n synthetic trip records spread uniformly over
// duration with the borough mix above.
func TaxiEvents(rng *xrand.Rand, n int, duration time.Duration) []stream.Event {
	if n <= 0 {
		return nil
	}
	gap := duration / time.Duration(n)
	if gap <= 0 {
		gap = time.Nanosecond
	}
	bs := boroughs()
	// Precompute the CDF once.
	cdf := make([]float64, len(bs))
	acc := 0.0
	for i, b := range bs {
		acc += b.share
		cdf[i] = acc
	}
	out := make([]stream.Event, n)
	for i := range out {
		u := rng.Float64()
		k := 0
		for k < len(cdf)-1 && u >= cdf[k] {
			k++
		}
		v := bs[k].dist.Sample(rng)
		if v < 0.1 {
			v = 0.1 // no negative or zero-length trips
		}
		out[i] = stream.Event{
			Stratum: bs[k].name,
			Value:   v,
			Time:    Epoch.Add(time.Duration(i) * gap),
		}
	}
	return out
}

// TaxiSubstreams returns the case study as rate-based sub-streams.
func TaxiSubstreams(totalRate int) []Substream {
	bs := boroughs()
	out := make([]Substream, len(bs))
	for i, b := range bs {
		rate := int(float64(totalRate) * b.share)
		if rate < 1 {
			rate = 1
		}
		out[i] = Substream{Name: b.name, Dist: b.dist, Rate: rate}
	}
	return out
}

// BoroughNames returns the six stratum names, most popular first.
func BoroughNames() []string {
	bs := boroughs()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.name
	}
	return out
}
