// Package workload generates the input data streams of the paper's
// evaluation: synthetic Gaussian and Poisson sub-streams (§5.1), the skew
// mixes of §5.7, and synthetic stand-ins for the two case-study datasets
// — CAIDA-like NetFlow records (§6.2) and NYC-taxi-like trip records
// (§6.3). See DESIGN.md ("Substitutions") for why the synthetic stand-ins
// preserve the behaviours the experiments measure.
package workload

import (
	"math"
	"time"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// Epoch is the fixed start time of every generated stream; experiments
// are event-time driven, so any constant works and a constant keeps runs
// reproducible.
var Epoch = time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)

// Distribution produces one sample value.
type Distribution interface {
	Sample(rng *xrand.Rand) float64
}

// Gaussian is a normal distribution N(Mu, Sigma²).
type Gaussian struct{ Mu, Sigma float64 }

// Sample implements Distribution.
func (g Gaussian) Sample(rng *xrand.Rand) float64 { return rng.Gaussian(g.Mu, g.Sigma) }

// Poisson is a Poisson distribution with mean Lambda.
type Poisson struct{ Lambda float64 }

// Sample implements Distribution.
func (p Poisson) Sample(rng *xrand.Rand) float64 { return float64(rng.Poisson(p.Lambda)) }

// Uniform is a uniform distribution over [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Distribution.
func (u Uniform) Sample(rng *xrand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// LogNormal is exp(N(Mu, Sigma²)) — the heavy-tailed distribution used
// for synthetic flow sizes.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Distribution.
func (l LogNormal) Sample(rng *xrand.Rand) float64 {
	x := rng.Gaussian(l.Mu, l.Sigma)
	if x > 700 { // avoid overflow to +Inf
		x = 700
	}
	return math.Exp(x)
}

// Substream describes one sub-stream (stratum): its name, its value
// distribution, and its arrival rate in items per second.
type Substream struct {
	Name string
	Dist Distribution
	Rate int
}

// Generate produces `duration` worth of events for the given sub-streams,
// merged into a single stream ordered by event time — the view the stream
// aggregator presents to the engine (§2.1). Items within each sub-stream
// are evenly spaced over each second.
func Generate(rng *xrand.Rand, duration time.Duration, subs ...Substream) []stream.Event {
	perSub := make([][]stream.Event, len(subs))
	for i, sub := range subs {
		if sub.Rate <= 0 {
			continue
		}
		total := int(float64(sub.Rate) * duration.Seconds())
		events := make([]stream.Event, total)
		gap := time.Second / time.Duration(sub.Rate)
		for j := 0; j < total; j++ {
			events[j] = stream.Event{
				Stratum: sub.Name,
				Value:   sub.Dist.Sample(rng),
				Time:    Epoch.Add(time.Duration(j) * gap),
			}
		}
		perSub[i] = events
	}
	return stream.Interleave(perSub...)
}

// PaperGaussian returns the three Gaussian sub-streams of §5.1 —
// A(µ=10, σ=5), B(µ=1000, σ=50), C(µ=10000, σ=500) — with the given
// arrival rates (items/second).
func PaperGaussian(rateA, rateB, rateC int) []Substream {
	return []Substream{
		{Name: "A", Dist: Gaussian{Mu: 10, Sigma: 5}, Rate: rateA},
		{Name: "B", Dist: Gaussian{Mu: 1000, Sigma: 50}, Rate: rateB},
		{Name: "C", Dist: Gaussian{Mu: 10000, Sigma: 500}, Rate: rateC},
	}
}

// PaperPoisson returns the three Poisson sub-streams of §5.1 — λ=10,
// λ=1000, λ=1e8 — with the given arrival rates.
func PaperPoisson(rateA, rateB, rateC int) []Substream {
	return []Substream{
		{Name: "A", Dist: Poisson{Lambda: 10}, Rate: rateA},
		{Name: "B", Dist: Poisson{Lambda: 1000}, Rate: rateB},
		{Name: "C", Dist: Poisson{Lambda: 1e8}, Rate: rateC},
	}
}

// SkewGaussian returns the §5.7 Gaussian skew mix: sub-stream A(µ=100,
// σ=10) carries 80% of the items, B(µ=1000, σ=100) 19%, and C(µ=10000,
// σ=1000) 1%, at the given total rate (items/second).
func SkewGaussian(totalRate int) []Substream {
	return []Substream{
		{Name: "A", Dist: Gaussian{Mu: 100, Sigma: 10}, Rate: totalRate * 80 / 100},
		{Name: "B", Dist: Gaussian{Mu: 1000, Sigma: 100}, Rate: totalRate * 19 / 100},
		{Name: "C", Dist: Gaussian{Mu: 10000, Sigma: 1000}, Rate: totalRate / 100},
	}
}

// SkewPoisson returns the §5.7 Poisson skew mix: 80% / 19.99% / 0.01% of
// items with λ = 10 / 1000 / 1e8. The rare sub-stream C has enormous
// values, which is what separates stratified from simple random sampling
// in Fig. 6(c).
func SkewPoisson(totalRate int) []Substream {
	rateC := totalRate / 10000
	if rateC < 1 {
		rateC = 1
	}
	return []Substream{
		{Name: "A", Dist: Poisson{Lambda: 10}, Rate: totalRate * 80 / 100},
		{Name: "B", Dist: Poisson{Lambda: 1000}, Rate: totalRate * 1999 / 10000},
		{Name: "C", Dist: Poisson{Lambda: 1e8}, Rate: rateC},
	}
}
