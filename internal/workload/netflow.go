package workload

import (
	"time"

	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// NetFlow synthesizes the network-traffic case-study dataset (§6.2). The
// paper used 670 GB of CAIDA 2015 backbone traces converted to NetFlow:
// 115,472,322 TCP, 67,098,852 UDP and 2,801,002 ICMP flow records, with
// the query "total size of TCP/UDP/ICMP traffic per sliding window". The
// synthetic generator reproduces what the query is sensitive to:
//
//   - the protocol mix (62.3% TCP / 36.2% UDP / 1.5% ICMP), making ICMP a
//     rare stratum that SRS under-represents;
//   - heavy-tailed flow sizes (log-normal body parameterized per
//     protocol: TCP flows are larger and more variable than UDP; ICMP
//     flows are small and regular).
//
// Stratum = protocol, Value = flow size in bytes.

// Protocol mix of the CAIDA-derived dataset, normalized.
const (
	netflowTCPShare  = 0.6230
	netflowUDPShare  = 0.3620
	netflowICMPShare = 0.0150
)

// netflowDist returns the per-protocol flow-size distribution. The
// parameters give medians of ≈4 KB (TCP), ≈300 B (UDP) and ≈84 B (ICMP)
// with realistic heavy upper tails for TCP.
func netflowDist(protocol string) Distribution {
	switch protocol {
	case "tcp":
		return LogNormal{Mu: 8.3, Sigma: 1.8}
	case "udp":
		return LogNormal{Mu: 5.7, Sigma: 1.1}
	default: // icmp
		return LogNormal{Mu: 4.43, Sigma: 0.3}
	}
}

// NetFlowEvents generates n synthetic flow records spread uniformly over
// duration, with the CAIDA protocol mix.
func NetFlowEvents(rng *xrand.Rand, n int, duration time.Duration) []stream.Event {
	if n <= 0 {
		return nil
	}
	gap := duration / time.Duration(n)
	if gap <= 0 {
		gap = time.Nanosecond
	}
	tcp, udp, icmp := netflowDist("tcp"), netflowDist("udp"), netflowDist("icmp")
	out := make([]stream.Event, n)
	for i := range out {
		u := rng.Float64()
		var proto string
		var dist Distribution
		switch {
		case u < netflowTCPShare:
			proto, dist = "tcp", tcp
		case u < netflowTCPShare+netflowUDPShare:
			proto, dist = "udp", udp
		default:
			proto, dist = "icmp", icmp
		}
		out[i] = stream.Event{
			Stratum: proto,
			Value:   dist.Sample(rng),
			Time:    Epoch.Add(time.Duration(i) * gap),
		}
	}
	return out
}

// NetFlowSubstreams returns the case study as rate-based sub-streams for
// use with Generate, for experiments that vary per-protocol rates.
func NetFlowSubstreams(totalRate int) []Substream {
	return []Substream{
		{Name: "tcp", Dist: netflowDist("tcp"), Rate: int(float64(totalRate) * netflowTCPShare)},
		{Name: "udp", Dist: netflowDist("udp"), Rate: int(float64(totalRate) * netflowUDPShare)},
		{Name: "icmp", Dist: netflowDist("icmp"), Rate: int(float64(totalRate) * netflowICMPShare)},
	}
}
