package workload

import (
	"context"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
)

// Replayer feeds a materialized dataset into a broker topic at a
// controlled rate, the methodology of §6.1: "we built a tool to
// efficiently replay the case-study dataset as the input data stream...
// we tuned the replay tool to first feed 2000 messages/second and
// continued to increase the throughput until the system was saturated.
// Each message contained 200 data items."
type Replayer struct {
	// MessagesPerSecond is the replay rate; 0 replays at full speed.
	MessagesPerSecond int
	// ItemsPerMessage is the batch size per produced message (paper: 200).
	ItemsPerMessage int
}

// producer abstracts the in-process broker and the TCP client.
type producer interface {
	Produce(topic string, recs []broker.Record) (int, error)
}

var (
	_ producer = (*broker.Broker)(nil)
	_ producer = (*broker.Client)(nil)
)

// Replay produces the events into the topic, pacing message sends to
// MessagesPerSecond. It returns the number of items produced. Replay
// stops early if ctx is cancelled.
func (r *Replayer) Replay(ctx context.Context, dst producer, topic string, events []stream.Event) (int, error) {
	itemsPerMsg := r.ItemsPerMessage
	if itemsPerMsg <= 0 {
		itemsPerMsg = 200
	}
	var tick *time.Ticker
	if r.MessagesPerSecond > 0 {
		tick = time.NewTicker(time.Second / time.Duration(r.MessagesPerSecond))
		defer tick.Stop()
	}
	produced := 0
	for start := 0; start < len(events); start += itemsPerMsg {
		end := start + itemsPerMsg
		if end > len(events) {
			end = len(events)
		}
		recs := make([]broker.Record, end-start)
		for i, e := range events[start:end] {
			recs[i] = broker.FromEvent(e)
		}
		if tick != nil {
			select {
			case <-tick.C:
			case <-ctx.Done():
				return produced, ctx.Err()
			}
		} else if ctx.Err() != nil {
			return produced, ctx.Err()
		}
		n, err := dst.Produce(topic, recs)
		if err != nil {
			return produced, err
		}
		produced += n
	}
	return produced, nil
}
