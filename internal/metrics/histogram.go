package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram is a lock-free log-bucketed latency/size histogram. Observe
// is three atomic operations (bucket increment, sum accumulate, count
// increment) and never takes a lock, so it is safe on hot paths — the
// broker's wire dispatch calls it per request. Buckets are spaced
// geometrically, histSub per power of two, so any quantile estimate
// carries a bounded RELATIVE error of one bucket width (2^(1/histSub)
// ≈ 9%) regardless of the observed magnitude — the standard trick for
// covering microseconds through minutes with a fixed, small bucket
// array (HdrHistogram, OpenTelemetry exponential histograms).
//
// The bucket range is fixed at [2^histMinExp, 2^histMaxExp]: with
// seconds as the unit that is ~1µs through ~17min. Values below the
// range (including <= 0) land in the underflow bucket, values above in
// the overflow bucket; both stay within the exposition's cumulative
// semantics. NaN and ±Inf observations are dropped entirely so one
// poisoned sample cannot corrupt the running sum.
const (
	histMinExp  = -20 // lowest bucketed magnitude: 2^-20 s ≈ 0.95µs
	histMaxExp  = 10  // highest bucketed magnitude: 2^10 s = 1024s
	histSub     = 8   // sub-buckets per octave → ≤ ~9% relative error
	histBuckets = (histMaxExp-histMinExp)*histSub + 2
)

// Histogram is one labelled histogram series. The zero value is ready
// to use; obtain registered instances via Registry.Histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     value
	buckets [histBuckets]atomic.Uint64
}

// histBucketBound returns bucket i's inclusive upper bound; the last
// bucket is +Inf.
func histBucketBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Pow(2, float64(histMinExp)+float64(i)/histSub)
}

// histBucketOf maps a value to its bucket index with le semantics: a
// value equal to a bucket's upper bound counts into that bucket.
func histBucketOf(v float64) int {
	if v <= histBucketBound(0) {
		return 0
	}
	pos := (math.Log2(v) - histMinExp) * histSub
	idx := int(math.Ceil(pos))
	if idx < 1 {
		return 1
	}
	if idx > histBuckets-1 {
		return histBuckets - 1
	}
	return idx
}

// Observe records one value. NaN and ±Inf are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.buckets[histBucketOf(v)].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.get() }

// HistogramSnapshot is a point-in-time copy of a histogram, cheap to
// query for quantiles. Counts are cumulative (Prometheus le style):
// Counts[i] is the number of observations ≤ Bounds[i].
type HistogramSnapshot struct {
	Count  uint64
	Sum    float64
	Bounds []float64 // inclusive upper bounds; last is +Inf
	Counts []uint64  // cumulative counts per bound
}

// Snapshot copies the current bucket state. Concurrent Observes may
// land between the count read and the bucket walk; the snapshot is
// internally consistent enough for monitoring (counts are monotone).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Sum:    h.sum.get(),
		Bounds: make([]float64, histBuckets),
		Counts: make([]uint64, histBuckets),
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		s.Bounds[i] = histBucketBound(i)
		s.Counts[i] = cum
	}
	s.Count = cum
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by rank-interpolating
// within the bucket where the target rank falls. The estimate is exact
// to within one bucket width: relative error ≤ 2^(1/histSub)-1 for
// values inside the bucketed range. Returns 0 for an empty histogram;
// ranks falling in the overflow bucket report the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var prevCum uint64
	for i := range s.Counts {
		if float64(s.Counts[i]) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			if math.IsInf(upper, 1) {
				return s.Bounds[len(s.Bounds)-2]
			}
			n := s.Counts[i] - prevCum
			if n == 0 {
				return upper
			}
			frac := (rank - float64(prevCum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		prevCum = s.Counts[i]
	}
	return s.Bounds[len(s.Bounds)-2]
}

// Quantile is Snapshot().Quantile(q) — the one-shot helper for status
// displays and tests.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}
