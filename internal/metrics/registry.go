package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file adds the observability surface the serving tier exposes at
// /metrics: a minimal Prometheus-style registry of labelled counters and
// gauges rendered in the text exposition format. It is dependency-free
// on purpose — the daemon must not pull a client library into the
// container image — and implements just the subset saproxd needs:
// monotonically increasing counters, settable gauges, and deterministic
// text output.

// Labels name one metric series within a family.
type Labels map[string]string

// value is a float64 stored as atomic bits so hot paths never take the
// registry lock.
type value struct {
	bits atomic.Uint64
}

func (v *value) add(delta float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing metric series.
type Counter struct{ v value }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.v.add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.get() }

// Gauge is a metric series that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge value.
func (g *Gauge) Set(x float64) { g.v.set(x) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v.get() }

// series is one labelled time series within a family.
type series struct {
	labels Labels
	metric any // *Counter or *Gauge
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter" or "gauge"
	series map[string]series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter series for (name, labels), creating family
// and series on first use. Registering the same name as a different type
// panics — that is a programming error, not an operational one.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
}

func (r *Registry) lookup(name, help, typ string, labels Labels, mk func() any) any {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]series)}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.typ, typ))
	}
	s, ok := fam.series[key]
	if !ok {
		labelsCopy := make(Labels, len(labels))
		for k, v := range labels {
			labelsCopy[k] = v
		}
		s = series{labels: labelsCopy, metric: mk()}
		fam.series[key] = s
	}
	return s.metric
}

// RemoveMatching deletes every series whose labels contain all of
// match's pairs, across all families — e.g. RemoveMatching(Labels
// {"query": "q-0"}) drops a deregistered tenant's series so a
// long-running multi-tenant daemon's registry does not grow without
// bound. Families left empty disappear from the rendered output.
func (r *Registry) RemoveMatching(match Labels) {
	if len(match) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, fam := range r.families {
		for key, s := range fam.series {
			keep := false
			for k, v := range match {
				if s.labels[k] != v {
					keep = true
					break
				}
			}
			if !keep {
				delete(fam.series, key)
			}
		}
		if len(fam.series) == 0 {
			delete(r.families, name)
		}
	}
}

// renderLabels serializes labels deterministically: {a="1",b="2"}.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders every family in the text exposition format, sorted by
// family name and series labels for deterministic scrapes.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var total int64
	for _, name := range names {
		fam := r.families[name]
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, fam.help, name, fam.typ)
		total += int64(n)
		if err != nil {
			r.mu.Unlock()
			return total, err
		}
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var v float64
			switch s := fam.series[k].metric.(type) {
			case *Counter:
				v = s.Value()
			case *Gauge:
				v = s.Value()
			}
			n, err := fmt.Fprintf(w, "%s%s %g\n", name, k, v)
			total += int64(n)
			if err != nil {
				r.mu.Unlock()
				return total, err
			}
		}
	}
	r.mu.Unlock()
	return total, nil
}

// Render returns WriteTo's output as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	_, _ = r.WriteTo(&b)
	return b.String()
}
