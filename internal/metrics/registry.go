package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file adds the observability surface the serving tier exposes at
// /metrics: a minimal Prometheus-style registry of labelled counters and
// gauges rendered in the text exposition format. It is dependency-free
// on purpose — the daemon must not pull a client library into the
// container image — and implements just the subset saproxd needs:
// monotonically increasing counters, settable gauges, and deterministic
// text output.

// Labels name one metric series within a family.
type Labels map[string]string

// value is a float64 stored as atomic bits so hot paths never take the
// registry lock.
type value struct {
	bits atomic.Uint64
}

func (v *value) add(delta float64) {
	// Reject non-finite deltas: NaN + anything is NaN, so one poisoned
	// sample would corrupt the series forever through the CAS loop.
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return
	}
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing metric series.
type Counter struct{ v value }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.v.add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.get() }

// Gauge is a metric series that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge value; non-finite values are ignored so a NaN
// from a degenerate computation (0/0 rates and the like) cannot poison
// the series.
func (g *Gauge) Set(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	g.v.set(x)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v.get() }

// series is one labelled time series within a family.
type series struct {
	labels Labels
	metric any // *Counter, *Gauge or *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge" or "histogram"
	series map[string]series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter series for (name, labels), creating family
// and series on first use. Registering the same name as a different type
// panics — that is a programming error, not an operational one.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram series for (name, labels).
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.lookup(name, help, "histogram", labels, func() any { return &Histogram{} }).(*Histogram)
}

// OnScrape registers fn to run at the start of every WriteTo, before
// the registry lock is taken — the hook for gauges that are cheaper to
// compute at scrape time than to maintain continuously (partition
// watermarks, replication lag, segment sizes). Hooks may freely call
// Gauge/Counter/Histogram/Remove* on the same registry.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

func (r *Registry) lookup(name, help, typ string, labels Labels, mk func() any) any {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]series)}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.typ, typ))
	}
	s, ok := fam.series[key]
	if !ok {
		labelsCopy := make(Labels, len(labels))
		for k, v := range labels {
			labelsCopy[k] = v
		}
		s = series{labels: labelsCopy, metric: mk()}
		fam.series[key] = s
	}
	return s.metric
}

// RemoveMatching deletes every series whose labels contain all of
// match's pairs, across all families — e.g. RemoveMatching(Labels
// {"query": "q-0"}) drops a deregistered tenant's series so a
// long-running multi-tenant daemon's registry does not grow without
// bound. Families left empty disappear from the rendered output.
func (r *Registry) RemoveMatching(match Labels) {
	if len(match) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, fam := range r.families {
		for key, s := range fam.series {
			keep := false
			for k, v := range match {
				if s.labels[k] != v {
					keep = true
					break
				}
			}
			if !keep {
				delete(fam.series, key)
			}
		}
		if len(fam.series) == 0 {
			delete(r.families, name)
		}
	}
}

// RemoveSeries deletes series whose labels contain all of match's pairs
// within ONE family — the scrape-hook companion to RemoveMatching for
// state that moves between nodes (a demoted leader clears its
// per-follower replication-lag series without touching the log gauges
// that share the topic/partition labels).
func (r *Registry) RemoveSeries(name string, match Labels) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		return
	}
	for key, s := range fam.series {
		keep := false
		for k, v := range match {
			if s.labels[k] != v {
				keep = true
				break
			}
		}
		if !keep {
			delete(fam.series, key)
		}
	}
	if len(fam.series) == 0 {
		delete(r.families, name)
	}
}

// renderLabels serializes labels deterministically: {a="1",b="2"}.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders every family in the text exposition format, sorted by
// family name and series labels for deterministic scrapes. Registered
// scrape hooks run first, before the lock is taken.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var total int64
	for _, name := range names {
		fam := r.families[name]
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(fam.help), name, fam.typ)
		total += int64(n)
		if err != nil {
			return total, err
		}
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := fam.series[k]
			var n int64
			var err error
			switch m := s.metric.(type) {
			case *Counter:
				n, err = writeSample(w, name, k, m.Value())
			case *Gauge:
				n, err = writeSample(w, name, k, m.Value())
			case *Histogram:
				n, err = writeHistogram(w, name, s.labels, m)
			}
			total += n
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func writeSample(w io.Writer, name, labelKey string, v float64) (int64, error) {
	n, err := fmt.Fprintf(w, "%s%s %g\n", name, labelKey, v)
	return int64(n), err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// for every bucket whose count differs from a neighbour (so each
// populated bucket is flanked by its true lower bound) plus the
// mandatory +Inf bucket, then _sum and _count. Skipping interior runs
// of identical cumulative counts keeps the output small (a latency
// series occupies a handful of its ~240 buckets) without changing the
// cumulative le semantics or widening scrape-side interpolation.
func writeHistogram(w io.Writer, name string, labels Labels, h *Histogram) (int64, error) {
	snap := h.Snapshot()
	var total int64
	var prev uint64
	for i, cum := range snap.Counts {
		last := i == len(snap.Counts)-1
		boundary := !last && snap.Counts[i+1] != cum
		if cum == prev && !boundary && !last {
			continue
		}
		le := "+Inf"
		if !last {
			le = fmt.Sprintf("%g", snap.Bounds[i])
		}
		n, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabelsWith(labels, "le", le), cum)
		total += int64(n)
		if err != nil {
			return total, err
		}
		prev = cum
	}
	n, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, renderLabels(labels), snap.Sum)
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), snap.Count)
	total += int64(n)
	return total, err
}

// renderLabelsWith renders labels plus one extra pair (the histogram le
// label) in the same deterministic sorted form.
func renderLabelsWith(labels Labels, key, val string) string {
	merged := make(Labels, len(labels)+1)
	for k, v := range labels {
		merged[k] = v
	}
	merged[key] = val
	return renderLabels(merged)
}

// escapeHelp escapes backslashes and newlines per the exposition format
// so multi-line help text cannot break the line-oriented output.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Render returns WriteTo's output as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	_, _ = r.WriteTo(&b)
	return b.String()
}
