package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The bucket layout guarantees a relative quantile error of one bucket
// width for values inside [2^histMinExp, 2^histMaxExp].
const histRelError = 0.10 // 2^(1/8)-1 ≈ 0.0905, rounded up for fp slack

// TestHistogramQuantileErrorBounds is the property test for the
// log-bucket layout: for random samples across six orders of magnitude,
// every estimated quantile must be within one bucket width of the true
// empirical quantile.
func TestHistogramQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		h := &Histogram{}
		n := 2000
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform over ~1µs..100s — the realistic latency range.
			vals[i] = math.Pow(10, -6+8*rng.Float64())
			h.Observe(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
			idx := int(math.Ceil(q*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			truth := vals[idx]
			got := h.Quantile(q)
			if got < truth/(1+histRelError) || got > truth*(1+histRelError) {
				t.Fatalf("trial %d q=%v: estimate %v outside ±%.0f%% of empirical %v",
					trial, q, got, histRelError*100, truth)
			}
		}
	}
}

// TestHistogramBucketLESemantics checks a value equal to a bucket's
// upper bound is counted at that le, so cumulative counts stay correct.
func TestHistogramBucketLESemantics(t *testing.T) {
	h := &Histogram{}
	bound := histBucketBound(17)
	h.Observe(bound)
	snap := h.Snapshot()
	if snap.Counts[17] != 1 {
		t.Fatalf("value at bound(17) not counted at le=bound(17): counts[16..18]=%v",
			snap.Counts[16:19])
	}
}

// TestHistogramOutOfRange pins the under/overflow behaviour: values
// outside the bucketed range are still counted, never dropped.
func TestHistogramOutOfRange(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-3)
	h.Observe(1e-12)
	h.Observe(1e12)
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	snap := h.Snapshot()
	if snap.Counts[0] != 3 {
		t.Fatalf("underflow bucket = %d, want 3", snap.Counts[0])
	}
	if snap.Counts[len(snap.Counts)-1] != 4 {
		t.Fatalf("+Inf cumulative = %d, want 4", snap.Counts[len(snap.Counts)-1])
	}
	// Non-finite observations are dropped entirely.
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if got := h.Count(); got != 4 {
		t.Fatalf("non-finite observation counted: %d", got)
	}
	if math.IsNaN(h.Sum()) {
		t.Fatal("NaN observation poisoned the sum")
	}
}

// TestHistogramConcurrentObserveLosesNothing is the -race property
// test: 16 goroutines observing concurrently must lose no samples —
// total count, sum of bucket counts, and the value sum all agree.
func TestHistogramConcurrentObserveLosesNothing(t *testing.T) {
	h := &Histogram{}
	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.001 * float64(g+1))
			}
		}(g)
	}
	wg.Wait()
	const want = goroutines * perG
	if got := h.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	snap := h.Snapshot()
	if got := snap.Counts[len(snap.Counts)-1]; got != want {
		t.Fatalf("bucket total = %d, want %d", got, want)
	}
	var wantSum float64
	for g := 1; g <= goroutines; g++ {
		wantSum += perG * 0.001 * float64(g)
	}
	if math.Abs(snap.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

// TestHistogramExposition checks the rendered text: cumulative buckets,
// mandatory +Inf, _sum/_count, and the le label merged into sorted
// label position.
func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "request latency", Labels{"op": "produce"})
	h.Observe(0.001)
	h.Observe(0.001)
	h.Observe(0.1)
	out := r.Render()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="+Inf",op="produce"} 3`,
		`req_seconds_count{op="produce"} 3`,
		`req_seconds_sum{op="produce"} 0.102`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Cumulative: the 0.1 sample's bucket line must count all three
	// prior observations below its bound plus itself.
	sc, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("render not parseable: %v", err)
	}
	q50, ok := sc.Quantile("req_seconds", Labels{"op": "produce"}, 0.5)
	if !ok {
		t.Fatal("no quantile from scraped buckets")
	}
	if q50 < 0.001/(1+histRelError) || q50 > 0.001*(1+histRelError) {
		t.Fatalf("scraped p50 = %v, want ≈ 0.001", q50)
	}
}

// TestHistogramQuantileEmpty pins the degenerate cases.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}
