package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRendersPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("saproxd_shard_records_total", "records consumed per shard", Labels{"query": "q-1", "shard": "0"})
	c.Add(41)
	c.Inc()
	r.Counter("saproxd_shard_records_total", "records consumed per shard", Labels{"query": "q-1", "shard": "1"}).Add(7)
	r.Gauge("saproxd_queries_active", "registered queries", nil).Set(2)

	out := r.Render()
	for _, want := range []string{
		"# HELP saproxd_queries_active registered queries",
		"# TYPE saproxd_queries_active gauge",
		"saproxd_queries_active 2",
		"# TYPE saproxd_shard_records_total counter",
		`saproxd_shard_records_total{query="q-1",shard="0"} 42`,
		`saproxd_shard_records_total{query="q-1",shard="1"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Each HELP/TYPE header must appear once per family, not per series.
	if got := strings.Count(out, "# TYPE saproxd_shard_records_total counter"); got != 1 {
		t.Errorf("TYPE header appears %d times", got)
	}
}

func TestRegistrySeriesIdentityAndConcurrency(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"k": "v"})
	b := r.Counter("x_total", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct series")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("x_total", "", Labels{"k": "v"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := a.Value(); got != 8000 {
		t.Fatalf("concurrent increments lost: %v", got)
	}
	a.Add(-5)
	if got := a.Value(); got != 8000 {
		t.Fatalf("counter decreased: %v", got)
	}
}

func TestRegistryRemoveMatching(t *testing.T) {
	r := NewRegistry()
	r.Counter("shard_records_total", "", Labels{"query": "q-0", "shard": "0"}).Inc()
	r.Counter("shard_records_total", "", Labels{"query": "q-1", "shard": "0"}).Inc()
	r.Gauge("merge_latency", "", Labels{"query": "q-0"}).Set(1)
	r.RemoveMatching(Labels{"query": "q-0"})
	out := r.Render()
	if strings.Contains(out, `query="q-0"`) {
		t.Errorf("q-0 series survived removal:\n%s", out)
	}
	if !strings.Contains(out, `query="q-1"`) {
		t.Errorf("q-1 series removed too:\n%s", out)
	}
	if strings.Contains(out, "merge_latency") {
		t.Errorf("emptied family still rendered:\n%s", out)
	}
	// Removal must not orphan live handles: re-requesting recreates.
	r.Counter("shard_records_total", "", Labels{"query": "q-0", "shard": "0"}).Inc()
	if !strings.Contains(r.Render(), `query="q-0"`) {
		t.Error("series not recreatable after removal")
	}
	r.RemoveMatching(nil) // no-op
}

// TestNonFiniteDeltasRejected is the regression test for the CAS-loop
// poisoning bug: one NaN or Inf delta used to corrupt the series
// forever (NaN + anything is NaN).
func TestNonFiniteDeltasRejected(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	c.Add(2)
	c.Add(math.NaN())
	c.Add(math.Inf(1))
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter poisoned by non-finite delta: %v", got)
	}
	g := r.Gauge("g", "", nil)
	g.Set(5)
	g.Add(math.NaN())
	g.Add(math.Inf(-1))
	g.Set(math.NaN())
	g.Set(math.Inf(1))
	g.Add(1)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge poisoned by non-finite value: %v", got)
	}
}

// TestOnScrapeHooksRun checks scrape hooks fire before rendering and
// may touch the registry themselves.
func TestOnScrapeHooksRun(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.OnScrape(func() {
		calls++
		r.Gauge("computed", "set at scrape time", nil).Set(float64(calls))
	})
	if out := r.Render(); !strings.Contains(out, "computed 1") {
		t.Fatalf("hook gauge missing:\n%s", out)
	}
	if out := r.Render(); !strings.Contains(out, "computed 2") {
		t.Fatalf("hook did not rerun:\n%s", out)
	}
}

func TestRemoveSeriesSingleFamily(t *testing.T) {
	r := NewRegistry()
	r.Gauge("lag", "", Labels{"topic": "t", "follower": "b"}).Set(1)
	r.Gauge("lag", "", Labels{"topic": "t", "follower": "c"}).Set(2)
	r.Gauge("end", "", Labels{"topic": "t"}).Set(9)
	r.RemoveSeries("lag", Labels{"follower": "b"})
	out := r.Render()
	if strings.Contains(out, `follower="b"`) {
		t.Errorf("removed series survived:\n%s", out)
	}
	if !strings.Contains(out, `follower="c"`) || !strings.Contains(out, "end{") {
		t.Errorf("RemoveSeries touched other series:\n%s", out)
	}
	r.RemoveSeries("absent", Labels{"a": "b"}) // no-op
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "", nil)
	r.Gauge("m", "", nil)
}
