package metrics

import (
	"sync"
	"time"
)

// Meter measures an exponentially weighted event rate (items per
// second), the serving tier's per-partition ingest-throughput signal.
// Mark is safe for concurrent use; the smoothed rate is pushed into an
// optional Gauge so it shows up in /metrics without a scrape-time hook.
type Meter struct {
	mu    sync.Mutex
	alpha float64
	last  time.Time
	rate  float64
	gauge *Gauge
	now   func() time.Time
}

// NewMeter returns a meter with smoothing factor alpha in (0, 1]
// (default 0.3). A non-nil gauge receives the smoothed rate after every
// Mark.
func NewMeter(alpha float64, gauge *Gauge) *Meter {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &Meter{alpha: alpha, gauge: gauge, now: time.Now}
}

// Mark records n events arriving now and returns the smoothed rate.
// The first Mark only seeds the clock (a rate needs an interval).
func (m *Meter) Mark(n int64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	if m.last.IsZero() {
		m.last = now
		return m.rate
	}
	dt := now.Sub(m.last).Seconds()
	if dt <= 0 {
		return m.rate
	}
	m.last = now
	sample := float64(n) / dt
	if m.rate == 0 {
		m.rate = sample
	} else {
		m.rate = m.alpha*sample + (1-m.alpha)*m.rate
	}
	if m.gauge != nil {
		m.gauge.Set(m.rate)
	}
	return m.rate
}

// Rate returns the current smoothed rate without recording events.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate
}
