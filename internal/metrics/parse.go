package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a parser for the
// Prometheus text output WriteTo produces, used by `saprox status` to
// scrape brokerd and saproxd /metrics endpoints and by the e2e smoke
// test to assert the rendered families stay parseable. It handles the
// subset the registry emits — HELP/TYPE comments, optional labels with
// backslash escapes, float values — which is also the common subset any
// conforming exporter produces.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Scrape is one parsed exposition payload.
type Scrape struct {
	Samples []Sample
	Types   map[string]string // family name → counter|gauge|histogram|...
	Help    map[string]string
}

// ParseText parses a text-exposition payload. Malformed lines abort
// with an error naming the line number, so a drifting exporter fails
// loudly instead of being silently skipped.
func ParseText(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string), Help: make(map[string]string)}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseComment(sc, line)
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("metrics: read: %w", err)
	}
	return sc, nil
}

// parseComment records HELP/TYPE metadata; other comments are ignored.
func parseComment(sc *Scrape, line string) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) >= 4 {
			sc.Types[fields[2]] = fields[3]
		}
	case "HELP":
		help := ""
		if len(fields) >= 4 {
			help = fields[3]
		}
		sc.Help[fields[2]] = help
	}
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		labels, after, err := parseLabels(rest[i:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = after
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name = rest[:sp]
		rest = rest[sp:]
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parseValue(valStr[0])
	if err != nil {
		return s, fmt.Errorf("value %q: %w", valStr[0], err)
	}
	s.Value = v
	return s, nil
}

// parseValue accepts floats plus the exposition spellings of infinity.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `{k="v",...}` starting at in[0] == '{', returning
// the labels and the remainder after the closing brace. Label values may
// contain escaped quotes, backslashes and newlines, and literal '}' and
// ',' inside quotes.
func parseLabels(in string) (Labels, string, error) {
	labels := make(Labels)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated labels in %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		// Scan the quoted value respecting backslash escapes.
		j := i + 1
		for j < len(in) {
			if in[j] == '\\' {
				j += 2
				continue
			}
			if in[j] == '"' {
				break
			}
			j++
		}
		if j >= len(in) {
			return nil, "", fmt.Errorf("unterminated label value in %q", in)
		}
		val, err := unescapeLabelValue(in[i+1 : j])
		if err != nil {
			return nil, "", err
		}
		labels[key] = val
		i = j + 1
	}
}

// unescapeLabelValue undoes the exposition escapes \\, \" and \n.
func unescapeLabelValue(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash in label value %q", s)
		}
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case '\\', '"':
			b.WriteByte(s[i])
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String(), nil
}

// matches reports whether the sample's labels contain all of match.
func (s Sample) matches(match Labels) bool {
	for k, v := range match {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the first sample of name whose labels contain all of
// match's pairs.
func (sc *Scrape) Value(name string, match Labels) (float64, bool) {
	for _, s := range sc.Samples {
		if s.Name == name && s.matches(match) {
			return s.Value, true
		}
	}
	return 0, false
}

// Select returns every sample of name whose labels contain match.
func (sc *Scrape) Select(name string, match Labels) []Sample {
	var out []Sample
	for _, s := range sc.Samples {
		if s.Name == name && s.matches(match) {
			out = append(out, s)
		}
	}
	return out
}

// Quantile estimates the q-quantile of a scraped histogram family from
// its cumulative <name>_bucket samples matching match — the scrape-side
// mirror of HistogramSnapshot.Quantile, used by `saprox status` to turn
// two counters and a pile of buckets back into a p99.
func (sc *Scrape) Quantile(name string, match Labels, q float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range sc.Select(name+"_bucket", match) {
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prev := 0.0
	prevBound := 0.0
	for i, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				return prevBound, true
			}
			n := b.cum - prev
			if n <= 0 {
				return b.le, true
			}
			lower := prevBound
			if i == 0 {
				lower = 0
			}
			return lower + (b.le-lower)*(rank-prev)/n, true
		}
		prev = b.cum
		prevBound = b.le
	}
	return prevBound, true
}
